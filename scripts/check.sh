#!/bin/sh
# The one-command gate: build everything, run the full alcotest suite
# (which includes the example smoke rules via the runtest alias), and
# exercise the flight-recorder CLI surface end to end on a tiny trace.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== trace format gate =="
# fails if v3 is not smaller than v1, or any cross-format/scanner
# differential diverges
dune exec bench/main.exe -- --format-bench > /dev/null

echo "== flight-recorder CLI smoke =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
dune exec bin/iocov.exe -- trace xfstests --binary -o "$tmp/t.bin" --seed 7 \
  --scale 0.05 > /dev/null
dune exec bin/iocov.exe -- analyze "$tmp/t.bin" --jobs 2 \
  --trace-out "$tmp/timeline.json" --progress=100 --ledger "$tmp/ledger" \
  > /dev/null 2> /dev/null
dune exec bin/iocov.exe -- analyze "$tmp/t.bin" --jobs 2 \
  --ledger "$tmp/ledger" > /dev/null 2> /dev/null
grep -q traceEvents "$tmp/timeline.json"
dune exec bin/iocov.exe -- runs list --ledger "$tmp/ledger" > /dev/null
dune exec bin/iocov.exe -- runs diff 1 2 --ledger "$tmp/ledger" \
  | grep -q "identical"

echo "all checks passed"
