#!/bin/sh
# The one-command gate: build everything, run the full alcotest suite
# (which includes the example smoke rules via the runtest alias), and
# exercise the flight-recorder CLI surface end to end on a tiny trace.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== trace format gate =="
# fails if v3 is not smaller than v1, or any cross-format/scanner
# differential diverges
dune exec bench/main.exe -- --format-bench > /dev/null

echo "== flight-recorder CLI smoke =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
dune exec bin/iocov.exe -- trace xfstests --binary -o "$tmp/t.bin" --seed 7 \
  --scale 0.05 > /dev/null
dune exec bin/iocov.exe -- analyze "$tmp/t.bin" --jobs 2 \
  --trace-out "$tmp/timeline.json" --progress=100 --ledger "$tmp/ledger" \
  > /dev/null 2> /dev/null
dune exec bin/iocov.exe -- analyze "$tmp/t.bin" --jobs 2 \
  --ledger "$tmp/ledger" > /dev/null 2> /dev/null
grep -q traceEvents "$tmp/timeline.json"
dune exec bin/iocov.exe -- runs list --ledger "$tmp/ledger" > /dev/null
dune exec bin/iocov.exe -- runs diff 1 2 --ledger "$tmp/ledger" \
  | grep -q "identical"

echo "== serve smoke =="
# daemon up, two tenants stream the same trace, queries answer from
# epoch snapshots, and the per-tenant ledger records are byte-identical
# to the offline analyze of that trace
sock="$tmp/iocov.sock"
dune exec bin/iocov.exe -- serve --socket "$sock" --ledger "$tmp/ledger" \
  > "$tmp/serve.out" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ]
dune exec bin/iocov.exe -- ingest --socket "$sock" --tenant alice "$tmp/t.bin" \
  > /dev/null
dune exec bin/iocov.exe -- ingest --socket "$sock" --tenant bob "$tmp/t.bin" \
  > /dev/null
dune exec bin/iocov.exe -- query --socket "$sock" ping | grep -q pong
dune exec bin/iocov.exe -- query --socket "$sock" --tenant alice digest stats \
  > /dev/null
dune exec bin/iocov.exe -- query --socket "$sock" shutdown > /dev/null
wait "$serve_pid"
# serve appended r3 (alice) and r4 (bob); both must cover the exact
# cells the offline analyze (r1) covered
dune exec bin/iocov.exe -- runs diff 1 3 --ledger "$tmp/ledger" \
  | grep -q "identical"
dune exec bin/iocov.exe -- runs diff 1 4 --ledger "$tmp/ledger" \
  | grep -q "identical"
dune exec bin/iocov.exe -- runs list --last 2 --ledger "$tmp/ledger" \
  | grep -q "alice"

echo "== crash oracle gate =="
# both differential directions: a clean run must report zero
# fsync-durability violations (iocov crash exits non-zero otherwise),
# and with the buggy fsync planted the oracle must catch the dropped
# data (iocov crash exits non-zero if nothing is caught); the
# bounded-vs-brute-force equivalence runs under dune runtest via
# examples/crash_replay
dune exec bin/iocov.exe -- crash --bound 2 --save "$tmp/crash.snap" \
  --ledger "$tmp/ledger" > "$tmp/crash.out"
grep -q "15/15 lit" "$tmp/crash.out"
grep -q "^crash " "$tmp/crash.snap"
dune exec bin/iocov.exe -- crash --bound 6 --workload append-fsync \
  --fault fsync_skips_data --ledger "$tmp/ledger" \
  | grep -q "bugs found, as injected"

echo "== config lattice gate =="
# matrix observe throughput, lazy shard memory, and the off-default
# errno surface (>= 5 errno cells reachable only off the default point)
dune exec bench/main.exe -- --config-bench > /dev/null

echo "== config lattice CLI smoke =="
# a two-point sweep prints the per-config matrix and the differential
# view, and its ledger records carry the lattice point
dune exec bin/iocov.exe -- suite ltp --scale 0.2 --configs default,tiny-quota \
  --config-diff --ledger "$tmp/ledger" > "$tmp/configs.out"
grep -q "Config matrix" "$tmp/configs.out"
grep -q "Config diff" "$tmp/configs.out"
dune exec bin/iocov.exe -- runs list --ledger "$tmp/ledger" | grep -q "tiny-quota"
# records 7 (default) and 8 (tiny-quota) were run under different
# configs: diff must refuse without --cross-config and work with it
if dune exec bin/iocov.exe -- runs diff 7 8 --ledger "$tmp/ledger" \
  > /dev/null 2>&1; then
  echo "error: cross-config runs diff was not refused" >&2
  exit 1
fi
dune exec bin/iocov.exe -- runs diff 7 8 --cross-config --ledger "$tmp/ledger" \
  > /dev/null

echo "all checks passed"
