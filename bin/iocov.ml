(* The iocov command-line tool.

   Subcommands mirror the paper's pipeline: run a simulated tester under
   the tracer ([suite]), analyze a stored trace ([analyze]), compare the
   two testers figure-by-figure ([compare]), evaluate TCD ([tcd]), and
   reproduce the bug study and the differential-testing demo.

   Shared flags live in [Opts]; every coverage-producing subcommand is a
   declarative [Iocov_pipe] pipeline — a source, a stage chain, and the
   sinks whose sections it prints (DESIGN.md §13). *)

open Cmdliner
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd
module Arg_class = Iocov_core.Arg_class
module Fault = Iocov_vfs.Fault
module Obs = Iocov_obs
module Pipe = Iocov_pipe
module Sink = Iocov_pipe.Sink
module Ledger = Iocov_pipe.Ledger
module Replay = Iocov_par.Replay
module Anomaly = Iocov_util.Anomaly

let die = Opts.die

let arg_class_of_name name =
  match Arg_class.of_name name with
  | Some a -> a
  | None -> die "unknown tracked argument %S (e.g. open.flags, write.count)" name

(* --jobs 1 keeps the inline path; anything else routes the event
   stream through the sharded pipeline *)
let jobs_opt jobs = if jobs = 1 then None else Some jobs

let print_sections sections = List.iter (fun (_, text) -> print_endline text) sections

(* --- the run ledger: one manifest record per completed run --- *)

let counters_name = function
  | Replay.Dense -> "dense"
  | Replay.Reference -> "reference"

(* Root spans completed so far become the record's per-stage durations;
   a failed append is a warning, never a failed run. *)
let ledger_append ~ledger ?seed ?tenant ?config ~subcommand ~label ~flags ~jobs
    ~counters ~events ~kept ~lost ~wall_s coverage =
  match ledger with
  | None -> ()
  | Some dir ->
    let stages =
      List.map (fun n -> (n.Obs.Span.name, n.Obs.Span.duration_s)) (Obs.Span.roots ())
    in
    let r =
      Ledger.make ~time:(Obs.Clock.now ()) ?seed ?tenant ?config ~subcommand ~label
        ~flags ~jobs ~counters:(counters_name counters) ~events ~kept ~lost ~wall_s
        ~stages coverage
    in
    (match Ledger.append ~dir r with
     | Ok _ -> ()
     | Error msg -> Printf.eprintf "warning: ledger: %s\n" msg)

(* --- suite --- *)

module Vconfig = Iocov_vfs.Config

(* The ledger names the lattice point the run was pinned to, and its
   config digest — `runs diff` refuses to compare across digests. *)
let ledger_config (point : Vconfig.point) =
  (point.Vconfig.pt_name, Vconfig.digest point.Vconfig.pt_config)

(* Differential sections for a multi-point sweep: the per-config matrix
   always, the gained/lost cell diff on request. *)
let print_config_sections ~config_diff rows =
  print_endline (Report.config_matrix ~target:1000.0 ~theta:10.0 rows);
  if config_diff then print_endline (Report.config_diff rows)

let check_config_diff ~config_diff points =
  if config_diff && List.length points < 2 then
    die "--config-diff needs at least two --configs points"

let print_result (r : Runner.result) =
  Printf.printf "%s: %d workloads, %s traced records (%s within the mount), %.2fs\n"
    (Runner.suite_name r.Runner.suite) r.Runner.workloads
    (Iocov_util.Ascii.si_count r.Runner.events_total)
    (Iocov_util.Ascii.si_count r.Runner.events_kept)
    r.Runner.elapsed_s;
  (match r.Runner.failures with
   | [] -> print_endline "oracle: no violations"
   | failures ->
     Printf.printf "oracle: %d violations (bugs found by the suite):\n" (List.length failures);
     List.iteri
       (fun i f -> if i < 25 then Printf.printf "  %s\n" f)
       failures;
     if List.length failures > 25 then
       Printf.printf "  ... and %d more\n" (List.length failures - 25));
  print_endline (Report.suite_summary ~name:(Runner.suite_name r.Runner.suite) r.Runner.coverage);
  print_endline (Report.untested_summary ~name:(Runner.suite_name r.Runner.suite) r.Runner.coverage)

let suite_cmd =
  let run obs suite seed scale faults jobs counters progress ledger points
      config_diff =
    Opts.with_obs obs (fun () ->
        check_config_diff ~config_diff points;
        let rows =
          Runner.run_lattice ~seed ~scale ~faults ?jobs:(jobs_opt jobs) ~counters
            ?progress:(Opts.progress_conf progress) ~points suite
        in
        let flags =
          ("scale", string_of_float scale)
          :: (match faults with
              | [] -> []
              | fs -> [ ("faults", String.concat "," (List.map Fault.to_string fs)) ])
        in
        (match rows with
         | [ (_, r) ] -> print_result r
         | rows ->
           List.iter
             (fun ((point : Vconfig.point), (r : Runner.result)) ->
               Printf.printf "config %-22s %d workloads, %s records kept, %d oracle \
                              violations, %.2fs\n"
                 point.Vconfig.pt_name r.Runner.workloads
                 (Iocov_util.Ascii.si_count r.Runner.events_kept)
                 (List.length r.Runner.failures) r.Runner.elapsed_s)
             rows;
           print_newline ();
           print_config_sections ~config_diff
             (List.map
                (fun ((point : Vconfig.point), (r : Runner.result)) ->
                  (point.Vconfig.pt_name, r.Runner.coverage))
                rows));
        List.iter
          (fun (point, (r : Runner.result)) ->
            ledger_append ~ledger ~seed ~config:(ledger_config point)
              ~subcommand:"suite" ~label:(Runner.suite_name suite) ~flags ~jobs
              ~counters ~events:r.Runner.events_total ~kept:r.Runner.events_kept
              ~lost:0 ~wall_s:r.Runner.elapsed_s r.Runner.coverage)
          rows)
  in
  let suite_pos =
    Arg.(required & pos 0 (some Opts.suite_conv) None & info [] ~docv:"SUITE")
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run one simulated tester under the tracer and report coverage.")
    Term.(
      const run $ Opts.obs_term $ suite_pos $ Opts.seed $ Opts.scale $ Opts.faults
      $ Opts.jobs $ Opts.counters $ Opts.progress_term $ Opts.ledger_term
      $ Opts.configs_term $ Opts.config_diff)

(* --- trace: run a suite and store the raw trace --- *)

let trace_cmd =
  let run obs suite seed scale file binary =
    Opts.with_obs obs @@ fun () ->
    (* Re-run the suite with a file sink attached; the trace is raw
       (unfiltered), as a kernel tracer would deliver it. *)
    let oc = if binary then open_out_bin file else open_out file in
    let coverage = Coverage.create () in
    let writer = if binary then Some (Iocov_trace.Binary_io.writer oc) else None in
    let sink =
      match writer with
      | Some w -> Iocov_trace.Binary_io.sink w
      | None -> Iocov_trace.Format_io.sink_channel oc
    in
    (match suite with
     | Runner.Crashmonkey ->
       ignore (Iocov_suites.Crashmonkey.run ~seed ~scale ~sink ~coverage ())
     | Runner.Xfstests ->
       ignore (Iocov_suites.Xfstests.run ~seed ~scale ~sink ~coverage ())
     | Runner.Ltp -> ignore (Iocov_suites.Ltp.run ~seed ~scale ~sink ~coverage ()));
    Option.iter Iocov_trace.Binary_io.flush writer;
    close_out oc;
    Printf.printf "wrote %s\n" file
  in
  let suite_pos =
    Arg.(required & pos 0 (some Opts.suite_conv) None & info [] ~docv:"SUITE")
  in
  let out_arg =
    Arg.(value & opt string "trace.txt" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ]
           ~doc:"Write the compact binary format (CTF-analogue) instead of text.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a suite and write its raw (unfiltered) trace to a file for later analysis.")
    Term.(const run $ Opts.obs_term $ suite_pos $ Opts.seed $ Opts.scale $ out_arg $ binary_arg)

(* --- analyze a stored trace --- *)

let analyze_cmd =
  let run obs file patterns mount save jobs counters ingest ckpt resume limit
      progress ledger =
    Opts.with_obs obs @@ fun () ->
    let resume =
      match resume with
      | None -> None
      | Some path -> (
        match Iocov_par.Checkpoint.load path with
        | Ok ck -> Some (path, ck)
        | Error msg -> die "cannot resume from %s: %s" path msg)
    in
    let file =
      match (file, resume) with
      | Some f, _ -> f
      | None, Some (_, ck) -> ck.Iocov_par.Checkpoint.trace
      | None, None -> die "a TRACE argument (or --resume) is required"
    in
    let filter =
      match (patterns, mount) with
      | [], None -> Iocov_trace.Filter.mount_point "/mnt/test"
      | [], Some m -> Iocov_trace.Filter.mount_point m
      | ps, _ ->
        (match Iocov_trace.Filter.create ~patterns:ps with
         | Ok f -> f
         | Error msg -> die "--filter: %s" msg)
    in
    (* The whole subcommand is one pipeline: the trace file is the
       source, the record filter a stage, and every printed section a
       sink over the single traversal's product. *)
    let header =
      Sink.custom ~name:"header" (fun p ->
          Some
            (Printf.sprintf "%s: %d records kept, %d filtered out%s" p.Sink.label
               p.Sink.kept p.Sink.dropped
               (if p.Sink.shards > 1 then Printf.sprintf " (%d shards)" p.Sink.shards
                else "")))
    in
    let sinks =
      [ header; Sink.completeness; Sink.summary; Sink.untested ]
      @ (match save with Some path -> [ Sink.snapshot ~path ] | None -> [])
      @ (match ckpt with
         | Some (path, every) -> [ Sink.checkpoint ~path ~every ]
         | None -> [])
    in
    let budget = match ingest with Replay.Lenient b -> Some b | _ -> None in
    let config =
      Pipe.Driver.config ~jobs ~counters ~ingest ?limit ?resume
        ?progress:(Opts.progress_conf ?budget progress) ()
    in
    let t0 = Obs.Clock.now () in
    match
      Pipe.Driver.run ~config ~stages:[ Pipe.Stage.filter filter ] ~sinks
        (Pipe.Source.file file)
    with
    | Ok { product; sections } ->
      print_sections sections;
      let c = product.Sink.completeness in
      let flags =
        [ ("ingest",
           match ingest with Replay.Strict -> "strict" | Replay.Lenient _ -> "lenient") ]
        @ (match limit with Some n -> [ ("limit", string_of_int n) ] | None -> [])
        @ (match resume with Some (p, _) -> [ ("resume", p) ] | None -> [])
      in
      ledger_append ~ledger ~subcommand:"analyze" ~label:product.Sink.label ~flags
        ~jobs ~counters ~events:product.Sink.events ~kept:product.Sink.kept
        ~lost:(c.Anomaly.records_skipped + c.Anomaly.events_abandoned)
        ~wall_s:(Obs.Clock.now () -. t0) product.Sink.coverage
    | Error msg -> die "%s" msg
  in
  let file_pos =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"Trace file to analyze; optional with $(b,--resume), which remembers it.")
  in
  let patterns_arg =
    Arg.(value & opt_all string [] & info [ "filter" ] ~docv:"REGEX"
           ~doc:"Keep records whose path matches (repeatable).")
  in
  let mount_arg =
    Arg.(value & opt (some string) None & info [ "mount" ] ~docv:"PATH"
           ~doc:"Keep records under this mount point (default /mnt/test).")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Write the computed coverage as a snapshot file.")
  in
  let resume_arg =
    Arg.(value & opt (some file) None
         & info [ "resume" ] ~docv:"CKPT"
             ~doc:"Continue a crashed replay from a checkpoint file; the final report is \
                   byte-identical to an uninterrupted run's.  Works at any $(b,--jobs).")
  in
  let limit_arg =
    Arg.(value & opt (some int) None
         & info [ "limit" ] ~docv:"N"
             ~doc:"Stop after $(docv) records (with $(b,--checkpoint), the final checkpoint \
                   marks the stopping point).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Compute input/output coverage from a stored trace file.")
    Term.(
      const run $ Opts.obs_term $ file_pos $ patterns_arg $ mount_arg $ save_arg
      $ Opts.jobs $ Opts.counters $ Opts.ingest_term $ Opts.checkpoint_term
      $ resume_arg $ limit_arg $ Opts.progress_term $ Opts.ledger_term)

(* --- compare: the paper's evaluation --- *)

let compare_cmd =
  let run obs seed scale jobs counters =
    Opts.with_obs obs @@ fun () ->
    let cm, xf = Runner.run_both ~seed ~scale ?jobs:(jobs_opt jobs) ~counters () in
    let name_a = "CrashMonkey" and name_b = "xfstests" in
    let cov_a = cm.Runner.coverage and cov_b = xf.Runner.coverage in
    print_endline (Report.figure2 ~name_a ~cov_a ~name_b ~cov_b);
    print_endline (Report.table1 ~name_a ~cov_a ~name_b ~cov_b);
    print_endline (Report.figure3 ~name_a ~cov_a ~name_b ~cov_b);
    print_endline (Report.figure4 ~name_a ~cov_a ~name_b ~cov_b);
    print_endline
      (Report.figure5 ~name_a ~cov_a ~name_b ~cov_b
         ~targets:(Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:1))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run CrashMonkey and xfstests and print Figures 2-5 and Table 1.")
    Term.(const run $ Opts.obs_term $ Opts.seed $ Opts.scale $ Opts.jobs $ Opts.counters)

(* --- tcd --- *)

let tcd_cmd =
  let run obs seed scale jobs counters arg_name =
    Opts.with_obs obs @@ fun () ->
    let arg = arg_class_of_name arg_name in
    let cm, xf = Runner.run_both ~seed ~scale ?jobs:(jobs_opt jobs) ~counters () in
    let freqs cov =
      Array.of_list (List.map snd (Coverage.input_series cov arg))
    in
    let f_cm = freqs cm.Runner.coverage and f_xf = freqs xf.Runner.coverage in
    List.iter
      (fun target ->
        Printf.printf "T=%-10.0f CrashMonkey %.3f   xfstests %.3f\n" target
          (Tcd.tcd_uniform ~frequencies:f_cm ~target)
          (Tcd.tcd_uniform ~frequencies:f_xf ~target))
      (Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:2);
    match Tcd.crossover ~f1:f_cm ~f2:f_xf ~lo:1.0 ~hi:1e7 with
    | Some t -> Printf.printf "crossover at T ~= %.0f\n" t
    | None -> print_endline "no crossover in [1, 1e7]"
  in
  let arg_name =
    Arg.(value & opt string "open.flags" & info [ "arg" ] ~docv:"ARG"
           ~doc:"Tracked argument (e.g. open.flags, write.count).")
  in
  Cmd.v
    (Cmd.info "tcd" ~doc:"Test Coverage Deviation sweep for one tracked argument.")
    Term.(
      const run $ Opts.obs_term $ Opts.seed $ Opts.scale $ Opts.jobs $ Opts.counters
      $ arg_name)

(* --- adequacy: the under/over-testing classifier --- *)

let adequacy_cmd =
  let run obs suite seed scale arg_name target theta =
    Opts.with_obs obs @@ fun () ->
    let arg = arg_class_of_name arg_name in
    let r = Runner.run ~seed ~scale suite in
    print_endline
      (Report.adequacy_table ~name:(Runner.suite_name suite) r.Runner.coverage ~arg ~target
         ~theta);
    let rows = Iocov_core.Adequacy.input_report r.Runner.coverage arg ~target ~theta in
    let s = Iocov_core.Adequacy.summarize rows in
    Printf.printf "\nsummary: %d untested, %d under-tested, %d adequate, %d over-tested\n"
      s.Iocov_core.Adequacy.untested s.Iocov_core.Adequacy.under
      s.Iocov_core.Adequacy.adequate s.Iocov_core.Adequacy.over;
    List.iter
      (fun hint -> print_endline ("hint: " ^ hint))
      (Iocov_core.Adequacy.rebalance_hint Iocov_core.Partition.label rows)
  in
  let suite_pos =
    Arg.(required & pos 0 (some Opts.suite_conv) None & info [] ~docv:"SUITE")
  in
  let arg_name =
    Arg.(value & opt string "open.flags" & info [ "arg" ] ~docv:"ARG"
           ~doc:"Tracked argument to classify.")
  in
  let target_arg =
    Arg.(value & opt float 1000.0 & info [ "target" ] ~docv:"T"
           ~doc:"Desired test frequency per partition.")
  in
  let theta_arg =
    Arg.(value & opt float 10.0 & info [ "theta" ] ~docv:"THETA"
           ~doc:"Tolerance factor: under below T/theta, over above T*theta.")
  in
  Cmd.v
    (Cmd.info "adequacy"
       ~doc:"Classify each partition of one argument as untested, under-tested, adequate, \
             or over-tested against a target frequency.")
    Term.(
      const run $ Opts.obs_term $ suite_pos $ Opts.seed $ Opts.scale $ arg_name
      $ target_arg $ theta_arg)

(* --- bugstudy / differential / faults --- *)

let bugstudy_cmd =
  let run () =
    print_endline (Iocov_bugstudy.Stats.render (Iocov_bugstudy.Stats.of_dataset ()));
    print_endline "Trigger syscalls across the 70 bugs:";
    List.iter
      (fun (base, n) ->
        Printf.printf "  %-10s %d\n" (Iocov_syscall.Model.base_name base) n)
      (Iocov_bugstudy.Stats.trigger_frequency Iocov_bugstudy.Dataset.all)
  in
  Cmd.v
    (Cmd.info "bugstudy" ~doc:"Reproduce the Section 2 bug-study statistics.")
    Term.(const run $ const ())

let differential_cmd =
  let run obs budget =
    Opts.with_obs obs @@ fun () ->
    let reports = Iocov_bugstudy.Differential.campaign ~budget () in
    print_endline (Iocov_bugstudy.Differential.render reports);
    Printf.printf "detection rate: code-coverage-style %.0f%%, IOCov-guided %.0f%%\n"
      (100.0
       *. Iocov_bugstudy.Differential.detection_rate reports
            Iocov_bugstudy.Differential.Code_coverage_style)
      (100.0
       *. Iocov_bugstudy.Differential.detection_rate reports
            Iocov_bugstudy.Differential.Iocov_guided)
  in
  let budget_arg =
    Arg.(value & opt int 64 & info [ "budget" ] ~docv:"N" ~doc:"Probes per strategy.")
  in
  Cmd.v
    (Cmd.info "differential"
       ~doc:"Hunt injected faults with code-coverage-style vs IOCov-guided probes.")
    Term.(const run $ Opts.obs_term $ budget_arg)

let faults_cmd =
  let run () =
    List.iter
      (fun f -> Printf.printf "%-28s %s\n" (Fault.to_string f) (Fault.describe f))
      Fault.all
  in
  Cmd.v (Cmd.info "faults" ~doc:"List injectable file-system faults.") Term.(const run $ const ())

let configs_cmd =
  let run () =
    print_string (Vconfig.print_lattice ());
    Printf.printf "# %d points, lattice digest %s\n" Vconfig.lattice_count
      Vconfig.lattice_digest
  in
  Cmd.v
    (Cmd.info "configs"
       ~doc:"List the built-in config lattice in $(b,--configs) file form: one \
             $(b,NAME CONFIG) line per point, usable as a custom-lattice template.")
    Term.(const run $ const ())

(* --- report: load and merge coverage snapshots --- *)

let report_cmd =
  let run obs files =
    Opts.with_obs obs @@ fun () ->
    let coverage = Coverage.create () in
    let ok =
      List.for_all
        (fun file ->
          match Iocov_core.Snapshot.load_file file with
          | Ok cov ->
            Coverage.merge_into ~dst:coverage cov;
            true
          | Error msg ->
            Printf.eprintf "error: %s: %s\n" file msg;
            false)
        files
    in
    if ok then begin
      let name = String.concat "+" files in
      print_endline (Report.suite_summary ~name coverage);
      print_endline (Report.untested_summary ~name coverage)
    end
  in
  let files_pos = Arg.(non_empty & pos_all file [] & info [] ~docv:"SNAPSHOT") in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Load one or more coverage snapshots (see $(b,analyze --save)), merge them, \
             and print the coverage report.")
    Term.(const run $ Opts.obs_term $ files_pos)

(* --- syz: input coverage of a Syzkaller program --- *)

let syz_cmd =
  let run obs counters ledger file =
    Opts.with_obs obs @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    let header =
      Sink.custom ~name:"header" (fun p ->
          Some
            (Printf.sprintf "%s: %d modeled calls, %d foreign syscalls skipped%s"
               p.Sink.label p.Sink.events
               (List.length p.Sink.notes)
               (String.concat ""
                  (List.map (fun note -> "\n  " ^ note) p.Sink.notes))))
    in
    let caveat =
      Sink.custom ~name:"caveat" (fun _ ->
          Some "(program logs carry no return values, so only input coverage is measured)")
    in
    let t0 = Obs.Clock.now () in
    match
      Pipe.Driver.run
        ~config:(Pipe.Driver.config ~counters ())
        ~sinks:[ header; Sink.summary; Sink.untested; caveat ]
        (Pipe.Source.syz ~label:file text)
    with
    | Ok { product; sections } ->
      print_sections sections;
      ledger_append ~ledger ~subcommand:"syz" ~label:file ~flags:[] ~jobs:1
        ~counters ~events:product.Sink.events ~kept:product.Sink.kept ~lost:0
        ~wall_s:(Obs.Clock.now () -. t0) product.Sink.coverage
    | Error msg -> Printf.eprintf "error: %s\n" msg
  in
  let file_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM") in
  Cmd.v
    (Cmd.info "syz"
       ~doc:"Measure the input coverage of a Syzkaller program log (syzlang format).")
    Term.(const run $ Opts.obs_term $ Opts.counters $ Opts.ledger_term $ file_pos)

(* --- metrics: run a suite, dump the self-observability registry --- *)

let metrics_cmd =
  let run obs suite seed scale faults jobs counters json out =
    Opts.with_obs obs @@ fun () ->
    (* Start from a clean registry so two invocations with the same
       seed/scale/faults produce identical counters (timings aside). *)
    Obs.Metrics.reset Obs.Metrics.default;
    Obs.Span.reset ();
    Obs.Log.reset_seq ();
    let r = Runner.run ~seed ~scale ~faults ?jobs:(jobs_opt jobs) ~counters suite in
    Printf.printf "%s: %d workloads, %s traced records, %.2fs\n\n"
      (Runner.suite_name r.Runner.suite) r.Runner.workloads
      (Iocov_util.Ascii.si_count r.Runner.events_total)
      r.Runner.elapsed_s;
    let spans = Obs.Span.roots () in
    List.iter (fun root -> print_string (Obs.Span.render root)) spans;
    print_newline ();
    let body =
      if json then Obs.Export.registry_report ~spans Obs.Metrics.default
      else Obs.Export.to_prometheus Obs.Metrics.default
    in
    match out with
    | Some path ->
      Out_channel.with_open_text path (fun oc -> output_string oc body);
      Printf.printf "registry written to %s\n" path
    | None -> print_string body
  in
  let suite_arg =
    Arg.(
      value
      & opt Opts.suite_conv Runner.Xfstests
      & info [ "suite" ] ~docv:"SUITE" ~doc:"Suite to run (crashmonkey|xfstests|ltp).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Combined JSON report instead of Prometheus text.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the registry to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run one suite and print the self-observability registry: pipeline counters \
             and histograms, plus the span-tree profile of the run.")
    Term.(
      const run $ Opts.obs_term $ suite_arg $ Opts.seed $ Opts.scale $ Opts.faults
      $ Opts.jobs $ Opts.counters $ json_arg $ out_arg)

(* --- runs: inspect the persistent run ledger --- *)

let runs_cmd =
  let dir_arg =
    Arg.(
      value
      & opt string Ledger.default_dir
      & info [ "ledger" ] ~docv:"DIR"
          ~doc:"Ledger directory (default $(b,.iocov)).")
  in
  let get records dir key =
    match Ledger.find records key with
    | Some r -> r
    | None -> die "no run %S in %s (try: iocov runs list)" key (Ledger.path ~dir)
  in
  let last_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N" ~doc:"Show only the newest $(docv) runs.")
  in
  let list_run dir last =
    let loaded = Ledger.load ~dir in
    let loaded =
      match last with
      | None -> loaded
      | Some n when n >= 0 -> Ledger.last n loaded
      | Some n -> die "--last %d: N must be non-negative" n
    in
    print_string (Ledger.render_list loaded)
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List every recorded run, newest last.")
      Term.(const list_run $ dir_arg $ last_arg)
  in
  let show_cmd =
    let run dir key =
      let { Ledger.records; _ } = Ledger.load ~dir in
      print_string (Ledger.render_show (get records dir key))
    in
    let key_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN") in
    Cmd.v
      (Cmd.info "show" ~doc:"Show one recorded run's full manifest.")
      Term.(const run $ dir_arg $ key_pos)
  in
  let diff_cmd =
    let run dir key_a key_b cross_config =
      let { Ledger.records; _ } = Ledger.load ~dir in
      let a = get records dir key_a and b = get records dir key_b in
      (* Cells gained under a different config are a config difference,
         not a coverage regression — comparing them silently would read
         as one.  Cross-lattice diffs must be asked for. *)
      if Ledger.config_clash a b && not cross_config then
        die
          "runs %s and %s were recorded under different configs (%s vs %s); pass \
           --cross-config to compare them anyway"
          key_a key_b (Ledger.config_name a) (Ledger.config_name b);
      print_string (Ledger.render_diff ~a ~b (Ledger.diff a b))
    in
    let a_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"A") in
    let b_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"B") in
    let cross_config_arg =
      Arg.(
        value & flag
        & info [ "cross-config" ]
            ~doc:"Allow diffing two runs recorded under different config-lattice \
                  points; by default such a diff is refused since cell deltas would \
                  mix config effects with coverage changes.")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Compare two recorded runs: coverage cells gained and lost, and \
               throughput regressions.  Runs are named by id ($(b,r3)) or 1-based \
               position.")
      Term.(const run $ dir_arg $ a_pos $ b_pos $ cross_config_arg)
  in
  Cmd.group
    (Cmd.info "runs"
       ~doc:"Inspect the persistent run ledger ($(b,.iocov/runs.jsonl)): every \
             coverage-producing run appends one manifest record; list, show, and \
             diff them.")
    ~default:Term.(const list_run $ dir_arg $ last_arg)
    [ list_cmd; show_cmd; diff_cmd ]

(* --- fuzz: feedback-comparison fuzzer --- *)

let fuzz_cmd =
  let run obs budget seed faults compare points config_diff =
    Opts.with_obs obs @@ fun () ->
    let module Fuzzer = Iocov_suites.Fuzzer in
    check_config_diff ~config_diff points;
    let show (r : Fuzzer.result) =
      Printf.printf "%s: %d executions, corpus %d, %d partitions covered%s\n"
        (Fuzzer.feedback_name r.Fuzzer.feedback)
        r.Fuzzer.executions r.Fuzzer.corpus_size
        (Fuzzer.covered_partitions r.Fuzzer.coverage)
        (if faults = [] then ""
         else Printf.sprintf ", %d deviations from the reference" r.Fuzzer.crashes)
    in
    if compare then begin
      if List.length points > 1 then
        die "--compare runs a single config; drop --configs or pick one point";
      let outcome, partition = Fuzzer.compare_feedbacks ~seed ~budget () in
      show outcome;
      show partition;
      print_endline "\ncoverage growth (executions -> partitions covered):";
      List.iter2
        (fun (e, a) (_, b) -> Printf.printf "  %6d  outcome %4d   partition %4d\n" e a b)
        outcome.Fuzzer.growth partition.Fuzzer.growth
    end
    else begin
      match points with
      | [ _ ] ->
        let r = Fuzzer.run ~seed ~budget ~faults ~feedback:Fuzzer.Partition_novelty () in
        show r;
        print_endline (Report.untested_summary ~name:"fuzzer" r.Fuzzer.coverage)
      | points ->
        let rows =
          List.map
            (fun (point : Vconfig.point) ->
              let r =
                Fuzzer.run ~seed ~budget ~faults
                  ?config:(Runner.config_of_point point)
                  ~feedback:Fuzzer.Partition_novelty ()
              in
              Printf.printf "config %-22s " point.Vconfig.pt_name;
              show r;
              (point.Vconfig.pt_name, r.Fuzzer.coverage))
            points
        in
        print_newline ();
        print_config_sections ~config_diff rows
    end
  in
  let budget_arg =
    Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"N" ~doc:"Program executions.")
  in
  let compare_arg =
    Arg.(value & flag & info [ "compare" ]
           ~doc:"Run both feedback signals and print the growth curves side by side.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the modeled file system with partition-novelty (IOCov-guided) feedback; \
             $(b,--compare) pits it against path-style outcome-novelty feedback.")
    Term.(
      const run $ Opts.obs_term $ budget_arg $ Opts.seed $ Opts.faults $ compare_arg
      $ Opts.configs_term $ Opts.config_diff)

(* --- serve: the multi-tenant coverage daemon, and its clients --- *)

module Serve_hub = Iocov_serve.Hub
module Serve_server = Iocov_serve.Server

let socket_required =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon.")

let serve_cmd =
  let run obs socket ingests follow mount batch ledger =
    Opts.with_obs obs @@ fun () ->
    let parse_ingest spec =
      match String.index_opt spec '=' with
      | Some i when i > 0 && i < String.length spec - 1 ->
        (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
      | _ -> die "--ingest %S: expected TENANT=FILE" spec
    in
    let ingests = List.map parse_ingest ingests in
    if socket = None && ingests = [] then
      die "serve needs --socket PATH and/or --ingest TENANT=FILE";
    if batch <= 0 then die "--batch must be positive";
    let config =
      { Serve_server.default_config with
        Serve_server.socket; ingests; follow; mount = Some mount; batch }
    in
    let t0 = Obs.Clock.now () in
    match Serve_server.run config with
    | Error msg -> die "%s" msg
    | Ok outcome ->
      List.iter
        (fun (o : Serve_server.tenant_outcome) ->
          let st = o.Serve_server.o_stats in
          Printf.printf
            "tenant %-12s %d events (%d kept), %d epochs published, digest %s\n"
            o.Serve_server.o_tenant st.Serve_hub.st_events st.Serve_hub.st_kept
            st.Serve_hub.st_publishes
            (Ledger.digest o.Serve_server.o_coverage);
          ledger_append ~ledger ~tenant:o.Serve_server.o_tenant
            ?config:o.Serve_server.o_config ~subcommand:"serve"
            ~label:(match socket with Some s -> s | None -> "files")
            ~flags:[ ("mount", mount) ]
            ~jobs:1 ~counters:Replay.Dense ~events:st.Serve_hub.st_events
            ~kept:st.Serve_hub.st_kept ~lost:st.Serve_hub.st_lost
            ~wall_s:(Obs.Clock.now () -. t0)
            o.Serve_server.o_coverage)
        outcome.Serve_server.o_tenants;
      Printf.printf "served %d tenant%s in %.2fs\n"
        (List.length outcome.Serve_server.o_tenants)
        (if List.length outcome.Serve_server.o_tenants = 1 then "" else "s")
        outcome.Serve_server.o_wall_s
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen for ingest and query connections on this Unix-domain socket.")
  in
  let ingest_arg =
    Arg.(
      value & opt_all string []
      & info [ "ingest" ] ~docv:"TENANT=FILE"
          ~doc:"Tail a local trace file into this tenant (repeatable).")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:"Keep tailing $(b,--ingest) files after EOF (frame-aligned appends) \
                until a shutdown request arrives.")
  in
  let mount_arg =
    Arg.(
      value & opt string "/mnt/test"
      & info [ "mount" ] ~docv:"PATH"
          ~doc:"Keep records under this mount point (default /mnt/test, matching \
                $(b,analyze)).")
  in
  let batch_arg =
    Arg.(
      value & opt int 8192
      & info [ "batch" ] ~docv:"N" ~doc:"Per-session decode batch size.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-tenant coverage daemon: concurrent trace streams fold \
             into per-tenant dense counters while queries read epoch snapshots.  \
             On shutdown, one ledger record is appended per tenant.")
    Term.(
      const run $ Opts.obs_term $ socket_arg $ ingest_arg $ follow_arg $ mount_arg
      $ batch_arg $ Opts.ledger_term)

let ingest_cmd =
  let run obs socket tenant mount config file =
    Opts.with_obs obs @@ fun () ->
    (match config with
     | Some name when Vconfig.point_named name = None ->
       die "--config %S: unknown lattice point (see iocov configs)" name
     | _ -> ());
    match Serve_server.client_ingest ~socket ~tenant ?mount ?config file with
    | Ok summary -> print_string summary
    | Error msg -> die "%s" msg
  in
  let tenant_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "tenant" ] ~docv:"ID" ~doc:"Tenant to credit the stream to.")
  in
  let mount_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mount" ] ~docv:"PATH"
          ~doc:"Per-stream mount filter override (default: the daemon's).")
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"POINT"
          ~doc:"Config-lattice point the trace was produced under; the daemon pins \
                the tenant to it and rejects streams declaring a different one.")
  in
  let file_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Stream a local trace file into a running $(b,iocov serve) daemon.")
    Term.(
      const run $ Opts.obs_term $ socket_required $ tenant_arg $ mount_arg
      $ config_arg $ file_pos)

(* Group the positional words into request lines: a new request starts
   at each request keyword, so `query adequacy open.flags 500 digest`
   is two requests without shell quoting. *)
let group_requests words =
  let keyword w =
    Result.is_ok (Iocov_serve.Protocol.parse_request w)
    || w = "tcd" || w = "adequacy"
  in
  let flush acc cur = if cur = [] then acc else String.concat " " (List.rev cur) :: acc in
  let acc, cur =
    List.fold_left
      (fun (acc, cur) w ->
        if keyword w then (flush acc cur, [ w ]) else (acc, w :: cur))
      ([], []) words
  in
  List.rev (flush acc cur)

let query_cmd =
  let run obs socket tenant requests =
    Opts.with_obs obs @@ fun () ->
    let requests =
      match group_requests requests with [] -> [ "coverage" ] | rs -> rs
    in
    match Serve_server.client_query ~socket ?tenant requests with
    | Ok payloads -> List.iter print_string payloads
    | Error msg -> die "%s" msg
  in
  let tenant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"ID" ~doc:"Default tenant for per-tenant requests.")
  in
  let requests_pos =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"Requests: coverage, tcd [ARG], adequacy [ARG [T [THETA]]], \
                completeness, digest, stats, tenants, metrics, ping, shutdown.  \
                Default: coverage.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query a running $(b,iocov serve) daemon; answers come from epoch \
             snapshots and never pause ingestion.")
    Term.(const run $ Opts.obs_term $ socket_required $ tenant_arg $ requests_pos)

(* --- crash: the crash-consistency scenario engine (DESIGN.md §17) --- *)

let crash_cmd =
  let module Engine = Iocov_crash.Engine in
  let module Vc = Iocov_vfs.Config in
  let module Partition = Iocov_core.Partition in
  let run obs workloads bound modes torn faults target theta save jobs counters
      ledger points =
    Opts.with_obs obs @@ fun () ->
    let all_scenarios = Engine.scenarios @ Iocov_suites.Crashmonkey.crash_scenarios in
    let scenarios =
      match workloads with
      | [] -> all_scenarios
      | names ->
        List.map
          (fun name ->
            match
              List.find_opt (fun s -> s.Engine.sc_name = name) all_scenarios
            with
            | Some s -> s
            | None ->
              die "unknown workload %S (known: %s)" name
                (String.concat ", "
                   (List.map (fun s -> s.Engine.sc_name) all_scenarios)))
          names
    in
    let modes = match modes with [] -> Vc.all_journal_modes | ms -> ms in
    let multi_config = List.length points > 1 in
    let reports = ref [] in
    (* The engine's workloads run as the pipeline's live source: every
       traced record flows through the same filter/sink machinery as a
       suite run, and the crash outcomes are folded into the product's
       coverage afterwards as their own output dimension.  The config
       lattice is the outermost sweep axis: each selected point's
       geometry is the base the journal modes are applied to. *)
    let feed emit =
      List.iter
        (fun (point : Vc.point) ->
          let base = Vc.with_faults faults point.Vc.pt_config in
          List.iter
            (fun mode ->
              List.iter
                (fun scenario ->
                  let config = Vc.with_journal_mode mode base in
                  let make_ops fs =
                    let tracer = Iocov_trace.Tracer.create ~comm:"crash" fs in
                    Iocov_trace.Tracer.on_event tracer emit;
                    { Engine.op_exec = Iocov_trace.Tracer.exec tracer;
                      op_exec_aux = Iocov_trace.Tracer.exec_aux tracer }
                  in
                  let report =
                    Engine.run_scenario ~make_ops ~window:bound ~torn ~config scenario
                  in
                  reports := (point.Vc.pt_name, report) :: !reports)
                scenarios)
            modes)
        points
    in
    let header =
      Sink.custom ~name:"header" (fun p ->
          Some
            (Printf.sprintf "%s: %d workload records kept, %d outside the mount"
               p.Sink.label p.Sink.kept p.Sink.dropped))
    in
    let config = Pipe.Driver.config ~jobs ~counters () in
    let t0 = Obs.Clock.now () in
    match
      Pipe.Driver.run ~config
        ~stages:[ Pipe.Stage.filter (Iocov_trace.Filter.mount_point Engine.mount) ]
        ~sinks:[ header ]
        (Pipe.Source.live ~label:"crash" feed)
    with
    | Error msg -> die "%s" msg
    | Ok { product; sections } ->
      let reports = List.rev !reports in
      let coverage = product.Sink.coverage in
      List.iter
        (fun (_, r) ->
          let mode = Engine.crash_mode_of_journal r.Engine.rp_mode in
          List.iter
            (fun (o, n) -> if n > 0 then Coverage.add_crash coverage mode o n)
            r.Engine.rp_tally)
        reports;
      print_sections sections;
      let rows =
        List.map
          (fun (cfg, r) ->
            (if multi_config then [ cfg ] else [])
            @ [ r.Engine.rp_name; Vc.journal_mode_to_string r.Engine.rp_mode;
                string_of_int r.Engine.rp_records;
                string_of_int r.Engine.rp_raw_states;
                string_of_int r.Engine.rp_states;
                (if r.Engine.rp_raw_states = 0 then "-"
                 else
                   Printf.sprintf "%.2f"
                     (float_of_int r.Engine.rp_raw_states
                      /. float_of_int (max 1 r.Engine.rp_states)));
                string_of_int r.Engine.rp_classified ])
          reports
      in
      print_endline
        (Iocov_util.Ascii.table
           ~title:(Printf.sprintf "crash-state enumeration (bound %d)" bound)
           ~headers:
             ((if multi_config then [ "config" ] else [])
              @ [ "workload"; "mode"; "records"; "states"; "images"; "dedup";
                  "cells" ])
           rows);
      let outcome_rows =
        List.map
          (fun mode ->
            let cm = Engine.crash_mode_of_journal mode in
            Vc.journal_mode_to_string mode
            :: List.map
                 (fun o -> string_of_int (Coverage.crash_count coverage cm o))
                 Partition.all_crash_outcomes)
          modes
      in
      print_endline
        (Iocov_util.Ascii.table ~title:"post-crash outcome cells"
           ~headers:
             ("mode" :: List.map Partition.crash_outcome_label Partition.all_crash_outcomes)
           outcome_rows);
      let series = Coverage.crash_series coverage in
      let frequencies = Array.of_list (List.map snd series) in
      let lit = List.length (List.filter (fun (_, n) -> n > 0) series) in
      let summary =
        Iocov_core.Adequacy.summarize
          (List.map
             (fun ((_, o), n) ->
               (o, n, Iocov_core.Adequacy.classify ~frequency:n ~target ~theta))
             series)
      in
      Printf.printf
        "crash cells: %d/%d lit   TCD(T=%.0f) %.3f   adequacy: %d untested, %d \
         under, %d adequate, %d over\n"
        lit (List.length series) target
        (Tcd.tcd_uniform ~frequencies ~target)
        summary.Iocov_core.Adequacy.untested summary.Iocov_core.Adequacy.under
        summary.Iocov_core.Adequacy.adequate summary.Iocov_core.Adequacy.over;
      let violations = List.concat_map (fun (_, r) -> r.Engine.rp_violations) reports in
      let expected = List.mem Fault.Fsync_skips_data faults in
      (match violations with
       | [] ->
         if expected then
           print_endline
             "oracle: no violations — fsync_skips_data armed but nothing caught"
         else print_endline "oracle: fsync-durability holds in every enumerated state"
       | vs ->
         Printf.printf "oracle: %d fsync-durability violation(s)%s:\n" (List.length vs)
           (if expected then " (bugs found, as injected)" else "");
         List.iteri (fun i v -> if i < 10 then Printf.printf "  %s\n" v) vs;
         if List.length vs > 10 then
           Printf.printf "  ... and %d more\n" (List.length vs - 10));
      (match save with
       | Some path ->
         Iocov_core.Snapshot.save_file path coverage;
         Printf.printf "wrote %s\n" path
       | None -> ());
      let flags =
        [ ("bound", string_of_int bound);
          ("modes",
           String.concat "," (List.map Vc.journal_mode_to_string modes)) ]
        @ (if torn then [] else [ ("torn", "off") ])
        @ (match faults with
           | [] -> []
           | fs -> [ ("faults", String.concat "," (List.map Fault.to_string fs)) ])
        @
        if multi_config then
          [ ("configs",
             String.concat "," (List.map (fun p -> p.Vc.pt_name) points)) ]
        else []
      in
      (* A single-point run is pinned to that point, so the ledger can
         name it; a multi-point sweep's coverage mixes configs and is
         recorded config-less (the points live in the flags). *)
      let config =
        match points with [ point ] -> Some (ledger_config point) | _ -> None
      in
      ledger_append ~ledger ?config ~subcommand:"crash" ~label:"crash-engine" ~flags
        ~jobs ~counters ~events:product.Sink.events ~kept:product.Sink.kept ~lost:0
        ~wall_s:(Obs.Clock.now () -. t0) coverage;
      (* unexpected violations are an engine bug; injected ones are the
         differential's success and exit clean *)
      if violations <> [] && not expected then exit 1;
      if expected && violations = [] then exit 1
  in
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match Iocov_vfs.Config.journal_mode_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg (Printf.sprintf "unknown journal mode %S" s))),
        fun ppf m ->
          Format.pp_print_string ppf (Iocov_vfs.Config.journal_mode_to_string m) )
  in
  let workloads_arg =
    Arg.(value & opt_all string []
         & info [ "workload" ] ~docv:"NAME"
             ~doc:"Scenario to run (repeatable; default: all built-in scenarios).")
  in
  let bound_arg =
    Arg.(value & opt int 2
         & info [ "bound" ] ~docv:"N"
             ~doc:"Reordering bound: journal records still volatile at the crash \
                   point.  0 enumerates pure log prefixes.")
  in
  let modes_arg =
    Arg.(value & opt_all mode_conv []
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Journal mode: writeback, ordered, or journaled (repeatable; \
                   default: all three).")
  in
  let no_torn_arg =
    Arg.(value & flag & info [ "no-torn" ] ~doc:"Disable torn-tail write states.")
  in
  let target_arg =
    Arg.(value & opt float 100.0
         & info [ "target" ] ~docv:"T" ~doc:"Adequacy target per crash cell.")
  in
  let theta_arg =
    Arg.(value & opt float 10.0 & info [ "theta" ] ~docv:"THETA" ~doc:"Adequacy tolerance.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Write the coverage (crash cells included) as a snapshot file.")
  in
  let run obs workloads bound modes no_torn faults target theta save jobs counters
      ledger points =
    run obs workloads bound modes (not no_torn) faults target theta save jobs
      counters ledger points
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Enumerate bounded crash states of scripted workloads, replay recovery, \
             and report post-crash outcome coverage.")
    Term.(
      const run $ Opts.obs_term $ workloads_arg $ bound_arg $ modes_arg $ no_torn_arg
      $ Opts.faults $ target_arg $ theta_arg $ save_arg $ Opts.jobs $ Opts.counters
      $ Opts.ledger_term $ Opts.configs_term)

let main =
  Cmd.group
    (Cmd.info "iocov" ~version:"1.0.0"
       ~doc:"Input/output coverage for file system testing (HotStorage '23 reproduction).")
    [ suite_cmd; trace_cmd; analyze_cmd; report_cmd; compare_cmd; tcd_cmd;
      adequacy_cmd; bugstudy_cmd; differential_cmd; faults_cmd; configs_cmd;
      syz_cmd; fuzz_cmd; crash_cmd; metrics_cmd; runs_cmd; serve_cmd; ingest_cmd;
      query_cmd ]

let () = exit (Cmd.eval main)
