(* Shared command-line options.

   Every subcommand that runs a pipeline takes the same knobs — seed,
   scale, jobs, counter backend, fault injection, lenient ingestion,
   checkpointing, log/metrics output.  They are defined once here so
   the flags parse, print, and document identically everywhere. *)

open Cmdliner
module Runner = Iocov_suites.Runner
module Replay = Iocov_par.Replay
module Fault = Iocov_vfs.Fault
module Obs = Iocov_obs

(* Bad user input is a diagnostic and exit 1, never a backtrace. *)
let die fmt = Printf.ksprintf (fun msg -> Printf.eprintf "error: %s\n" msg; exit 1) fmt

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let scale =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ]
        ~docv:"SCALE"
        ~doc:"Workload scale factor; 1.0 is a quick shape-complete run, larger values \
              approach the paper's absolute frequencies.")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~docv:"N"
        ~doc:"Analysis worker shards.  1 (the default) analyzes inline on the calling \
              domain; $(docv) > 1 spawns that many worker domains; 0 picks \
              $(b,Domain.recommended_domain_count).  Coverage results are byte-identical \
              at any job count.")

let counters_conv =
  let parse = function
    | "dense" -> Ok Replay.Dense
    | "reference" -> Ok Replay.Reference
    | s -> Error (`Msg (Printf.sprintf "unknown counter backend %S (dense|reference)" s))
  in
  let print ppf c =
    Format.pp_print_string ppf
      (match c with Replay.Dense -> "dense" | Replay.Reference -> "reference")
  in
  Arg.conv (parse, print)

let counters =
  Arg.(
    value
    & opt counters_conv Replay.Dense
    & info [ "counters" ]
        ~docv:"BACKEND"
        ~doc:"Coverage counter backend: $(b,dense) (the default — compiled partition \
              plan, flat integer counters on the hot path) or $(b,reference) (hashed \
              histograms — the differential oracle).  Results are byte-identical.")

let fault_conv =
  let parse s =
    match Fault.of_string s with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown fault %S (try: %s)" s
              (String.concat ", " (List.map Fault.to_string Fault.all))))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Fault.to_string f))

let faults =
  Arg.(
    value & opt_all fault_conv []
    & info [ "fault" ] ~docv:"FAULT" ~doc:"Inject a fault into the tested file system \
                                           (repeatable); see $(b,iocov faults).")

let suite_conv =
  let parse s =
    match Runner.suite_of_name s with
    | Some suite -> Ok suite
    | None -> Error (`Msg (Printf.sprintf "unknown suite %S (crashmonkey|xfstests|ltp)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Runner.suite_name s))

(* --- config lattice selection: --configs all|NAME,..|FILE --- *)

module Vconfig = Iocov_vfs.Config

let configs =
  Arg.(
    value
    & opt (some string) None
    & info [ "configs" ] ~docv:"SPEC"
        ~doc:"File-system configurations to sweep — the config-lattice dimension of \
              the coverage matrix.  $(docv) is $(b,all) (every built-in lattice \
              point), a comma-separated list of point names, or a lattice file \
              ($(b,NAME CONFIG) per line; $(b,iocov configs) prints a template).  \
              Default: the $(b,default) point only, byte-identical to a plain \
              single-config run.")

let configs_term =
  let combine spec =
    match spec with
    | None -> [ Vconfig.default_point ]
    | Some spec -> (
      let result =
        if Sys.file_exists spec && not (Sys.is_directory spec) then
          Vconfig.parse_lattice (In_channel.with_open_text spec In_channel.input_all)
        else Vconfig.points_of_spec spec
      in
      match result with
      | Ok [] -> die "--configs %s: no lattice points selected" spec
      | Ok points -> points
      | Error msg -> die "--configs: %s" msg)
  in
  Term.(const combine $ configs)

let config_diff =
  Arg.(
    value & flag
    & info [ "config-diff" ]
        ~doc:"With more than one $(b,--configs) point, print the differential view: \
              cells lit under each config but dark under the first (baseline) point, \
              and the errno output cells reachable only off-baseline.")

(* --- lenient ingestion: --lenient + --max-bad-records -> Replay.ingest --- *)

let lenient =
  Arg.(value & flag
       & info [ "lenient" ]
           ~doc:"Skip corrupt or unparsable records instead of failing — binary traces \
                 resync on the next intact frame — and report every loss in the \
                 completeness section.")

let max_bad =
  Arg.(value & opt string "none"
       & info [ "max-bad-records" ] ~docv:"N|P%"
           ~doc:"Error budget for $(b,--lenient): an absolute record count, a percentage \
                 of the trace (e.g. $(b,1%)), or $(b,none).")

let ingest_term =
  let combine lenient max_bad =
    if not lenient then Replay.Strict
    else
      match Iocov_util.Anomaly.budget_of_string max_bad with
      | Ok budget -> Replay.Lenient budget
      | Error msg -> die "--max-bad-records: %s" msg
  in
  Term.(const combine $ lenient $ max_bad)

(* --- checkpointing: --checkpoint + --checkpoint-every --- *)

let checkpoint =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Periodically write a resumable checkpoint (atomic) while replaying a \
                 binary trace; requires $(b,--jobs) 1.")

let checkpoint_every =
  Arg.(value & opt int 100_000
       & info [ "checkpoint-every" ] ~docv:"EVENTS"
           ~doc:"Events between checkpoints (default 100000).")

let checkpoint_term =
  let combine path every =
    match path with
    | None -> None
    | Some path ->
      if every <= 0 then die "--checkpoint-every must be positive"
      else Some (path, every)
  in
  Term.(const combine $ checkpoint $ checkpoint_every)

(* --- observability options, shared by every subcommand --- *)

let log_level_conv =
  let parse s =
    match Obs.Log.level_of_string s with
    | Some l -> Ok l
    | None ->
      Error (`Msg (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s))
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Obs.Log.level_to_string l))

type obs = {
  metrics_out : string option;
  trace_out : string option;  (* flight-recorder timeline (Chrome JSON) *)
}

let obs_term =
  let log_level =
    Arg.(
      value
      & opt (some log_level_conv) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Structured-log verbosity: debug, info, warn (the default), or error.")
  in
  let log_json =
    Arg.(value & flag & info [ "log-json" ] ~doc:"Emit log lines as JSON objects.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"On exit, write the metrics registry to $(docv): Prometheus text, or the \
                combined JSON report when $(docv) ends in .json.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Record a flight-recorder timeline (span, pool, batch, checkpoint, and \
                resync events) and write it to $(docv) as Chrome trace-event JSON on \
                exit — viewable in ui.perfetto.dev or chrome://tracing.")
  in
  let setup level json metrics_out trace_out =
    (match level with Some l -> Obs.Log.set_level l | None -> ());
    if json then Obs.Log.set_format Obs.Log.Json;
    { metrics_out; trace_out }
  in
  Term.(const setup $ log_level $ log_json $ metrics_out $ trace_out)

(* Run a subcommand body under the observability options; the registry
   and timeline dumps happen even when the body fails, so a crashed run
   still leaves its counters and its trace behind. *)
let with_obs obs f =
  (match obs.trace_out with Some _ -> Obs.Trace_event.start () | None -> ());
  Fun.protect f ~finally:(fun () ->
      (match obs.trace_out with
       | Some path ->
         Obs.Trace_event.stop ();
         Obs.Trace_event.write_file path
       | None -> ());
      match obs.metrics_out with
      | Some path ->
        Obs.Export.write_file ~path ~spans:(Obs.Span.roots ()) Obs.Metrics.default
      | None -> ())

(* --- live progress: --progress[=N|off] + --progress-format --- *)

let progress_format_conv =
  let parse = function
    | "text" -> Ok Iocov_pipe.Progress.Text
    | "jsonl" | "json" -> Ok Iocov_pipe.Progress.Jsonl
    | s -> Error (`Msg (Printf.sprintf "unknown progress format %S (text|jsonl)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with Iocov_pipe.Progress.Text -> "text" | Iocov_pipe.Progress.Jsonl -> "jsonl")
  in
  Arg.conv (parse, print)

let progress_term =
  let progress =
    Arg.(
      value
      & opt ~vopt:(Some "on") (some string) None
      & info [ "progress" ] ~docv:"EVERY"
          ~doc:"Emit periodic progress snapshots to stderr: events/s (windowed and \
                cumulative), cells lit, adequacy, anomaly burn, checkpoint age, and an \
                ETA for bounded sources.  $(docv) is the event interval (default \
                10000), or $(b,off).")
  in
  let progress_format =
    Arg.(
      value
      & opt progress_format_conv Iocov_pipe.Progress.Text
      & info [ "progress-format" ] ~docv:"FORMAT"
          ~doc:"Progress snapshot format: $(b,text) (the default) or $(b,jsonl).")
  in
  let combine spec format =
    match spec with
    | None | Some "off" -> None
    | Some "on" -> Some (Iocov_pipe.Progress.default_every, format)
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some (n, format)
      | _ -> die "--progress: expected a positive event interval or 'off', got %S" s)
  in
  Term.(const combine $ progress $ progress_format)

(* Build the driver's progress configuration from the parsed flag. *)
let progress_conf ?budget spec =
  Option.map
    (fun (every, format) ->
      { Iocov_pipe.Progress.every; format; emit = prerr_endline; budget })
    spec

(* --- the run ledger: --ledger DIR / --no-ledger --- *)

let ledger_term =
  let dir =
    Arg.(
      value
      & opt string Iocov_pipe.Ledger.default_dir
      & info [ "ledger" ] ~docv:"DIR"
          ~doc:"Directory of the persistent run ledger; every run appends one manifest \
                record to $(docv)/runs.jsonl (see $(b,iocov runs)).")
  in
  let off =
    Arg.(value & flag & info [ "no-ledger" ] ~doc:"Do not append this run to the ledger.")
  in
  let combine dir off = if off then None else Some dir in
  Term.(const combine $ dir $ off)
