(* Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over the
   native int: the low 32 bits hold the checksum, the table is built
   once on first use.  ~1 table lookup + 2 xors per byte — cheap enough
   to checksum every record of a multi-million-event trace. *)

let polynomial = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: substring out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)
let bytes b = string (Bytes.unsafe_to_string b)
