(* Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over the
   native int: the low 32 bits hold the checksum.

   Slicing-by-8: eight 256-entry tables let the loop fold 8 input bytes
   per iteration instead of one — the tables are derived from the
   byte-at-a-time table by [T{k+1}[n] = T0[T{k}[n] & 0xFF] ^ (T{k}[n] >> 8)].
   Bytes are combined with plain [Char.code]/[lsl] so no boxed int32/64
   is ever allocated, and table reads are [unsafe_get] behind a [land
   0xFF] mask.  This sits under every frame read and write of the
   binary trace format, where the byte-at-a-time loop was a measurable
   slice of the fused-drain record budget. *)

let polynomial = 0xEDB88320

(* tables.(k * 256 + n) is T{k}[n] *)
let tables =
  lazy
    (let t = Array.make (8 * 256) 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
       done;
       t.(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let prev = t.(((k - 1) * 256) + n) in
         t.((k * 256) + n) <- t.(prev land 0xFF) lxor (prev lsr 8)
       done
     done;
     t)

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: substring out of bounds";
  let t = Lazy.force tables in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  (* no local helper closures in the loop: without flambda they would
     allocate every iteration *)
  while !i + 8 <= stop do
    let p = !i in
    let b0 = Char.code (String.unsafe_get s p)
    and b1 = Char.code (String.unsafe_get s (p + 1))
    and b2 = Char.code (String.unsafe_get s (p + 2))
    and b3 = Char.code (String.unsafe_get s (p + 3))
    and b4 = Char.code (String.unsafe_get s (p + 4))
    and b5 = Char.code (String.unsafe_get s (p + 5))
    and b6 = Char.code (String.unsafe_get s (p + 6))
    and b7 = Char.code (String.unsafe_get s (p + 7)) in
    (* low word of the state folds with the first 4 input bytes *)
    let x = !c lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    c :=
      Array.unsafe_get t ((7 * 256) + (x land 0xFF))
      lxor Array.unsafe_get t ((6 * 256) + ((x lsr 8) land 0xFF))
      lxor Array.unsafe_get t ((5 * 256) + ((x lsr 16) land 0xFF))
      lxor Array.unsafe_get t ((4 * 256) + ((x lsr 24) land 0xFF))
      lxor Array.unsafe_get t ((3 * 256) + b4)
      lxor Array.unsafe_get t ((2 * 256) + b5)
      lxor Array.unsafe_get t (256 + b6)
      lxor Array.unsafe_get t b7;
    i := p + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)
let bytes b = string (Bytes.unsafe_to_string b)
