type kind =
  | Bad_magic
  | Corrupt_record
  | Truncated
  | Lost_reference
  | Parse_error
  | Budget_exceeded
  | Batch_abandoned
  | Shard_failed
  | Checkpoint_corrupt

let kind_name = function
  | Bad_magic -> "bad_magic"
  | Corrupt_record -> "corrupt_record"
  | Truncated -> "truncated"
  | Lost_reference -> "lost_reference"
  | Parse_error -> "parse_error"
  | Budget_exceeded -> "budget_exceeded"
  | Batch_abandoned -> "batch_abandoned"
  | Shard_failed -> "shard_failed"
  | Checkpoint_corrupt -> "checkpoint_corrupt"

type t = {
  kind : kind;
  offset : int option;
  line : int option;
  detail : string;
}

let v ?offset ?line kind detail = { kind; offset; line; detail }

let to_string a =
  let where =
    match (a.offset, a.line) with
    | Some o, _ -> Printf.sprintf "offset %d: " o
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s: %s" where (kind_name a.kind) a.detail

(* --- error budgets --- *)

type budget = Unlimited | Max_records of int | Max_fraction of float

let budget_of_string s =
  let s = String.trim s in
  match String.lowercase_ascii s with
  | "none" | "unlimited" -> Ok Unlimited
  | _ ->
    let n = String.length s in
    if n > 1 && s.[n - 1] = '%' then
      match float_of_string_opt (String.sub s 0 (n - 1)) with
      | Some p when p >= 0.0 && p <= 100.0 -> Ok (Max_fraction (p /. 100.0))
      | _ -> Error (Printf.sprintf "bad percentage %S (want 0-100%%)" s)
    else
      match int_of_string_opt s with
      | Some k when k >= 0 -> Ok (Max_records k)
      | _ -> Error (Printf.sprintf "bad record budget %S (want a count, a percentage, or \"none\")" s)

let budget_to_string = function
  | Unlimited -> "none"
  | Max_records k -> string_of_int k
  | Max_fraction f -> Printf.sprintf "%g%%" (100.0 *. f)

(* Fractional budgets can only be judged against a known denominator,
   so they are checked at end of stream ([final = true]); absolute
   budgets trip as soon as they are crossed. *)
let budget_allows budget ~bad ~total ~final =
  match budget with
  | Unlimited -> true
  | Max_records k -> bad <= k
  | Max_fraction f ->
    (not final) || bad = 0 || float_of_int bad <= (f *. float_of_int (max total 1))

(* --- run completeness --- *)

type completeness = {
  events_read : int;
  records_skipped : int;
  corrupt_regions : int;
  bytes_skipped : int;
  batches_retried : int;
  shards_failed : int;
  events_abandoned : int;
  truncated : bool;
  resumed_from : string option;
  anomalies : t list;
}

let max_kept_anomalies = 32

let clean ~events_read =
  {
    events_read;
    records_skipped = 0;
    corrupt_regions = 0;
    bytes_skipped = 0;
    batches_retried = 0;
    shards_failed = 0;
    events_abandoned = 0;
    truncated = false;
    resumed_from = None;
    anomalies = [];
  }

let is_clean c =
  c.records_skipped = 0 && c.corrupt_regions = 0 && c.bytes_skipped = 0
  && c.batches_retried = 0 && c.shards_failed = 0 && c.events_abandoned = 0
  && (not c.truncated) && c.anomalies = []

(* Pointwise sum, for combining producer-side and shard-side accounts
   of one run (or a resumed run with its checkpointed prefix).
   [resumed_from] keeps the earliest provenance; the anomaly list is
   concatenated and capped. *)
let merge a b =
  {
    events_read = a.events_read + b.events_read;
    records_skipped = a.records_skipped + b.records_skipped;
    corrupt_regions = a.corrupt_regions + b.corrupt_regions;
    bytes_skipped = a.bytes_skipped + b.bytes_skipped;
    batches_retried = a.batches_retried + b.batches_retried;
    shards_failed = a.shards_failed + b.shards_failed;
    events_abandoned = a.events_abandoned + b.events_abandoned;
    truncated = a.truncated || b.truncated;
    resumed_from = (match a.resumed_from with Some _ -> a.resumed_from | None -> b.resumed_from);
    anomalies =
      (let all = a.anomalies @ b.anomalies in
       let rec take n = function
         | [] -> []
         | _ when n = 0 -> []
         | x :: tl -> x :: take (n - 1) tl
       in
       take max_kept_anomalies all);
  }
