(** CRC-32 (IEEE 802.3, reflected, polynomial [0xEDB88320]) — the
    per-record integrity check of the v2 binary trace format.

    The checksum lives in the low 32 bits of a native [int]; values are
    always in [\[0, 2^32)].  The standard test vector holds:
    [string "123456789" = 0xCBF43926]. *)

val string : string -> int
(** Checksum of a whole string. *)

val bytes : bytes -> int

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends [crc] with a substring, so a
    checksum can be computed incrementally over fragments.  [update 0]
    of a whole string equals {!string}.  Raises [Invalid_argument] on
    an out-of-bounds substring. *)
