(** Minimal JSON reader/printer — just enough for the run ledger
    ([.iocov/runs.jsonl]) and the trace-event exporter's
    well-formedness tests, with no external dependency.

    Printing is single-line, suitable for JSON-lines files; parsing
    accepts any RFC 8259 document (escapes decoded, [\u] as UTF-8).
    Not a streaming parser: documents are read whole, which is fine for
    one-line manifest records. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering.  Integral floats print with a trailing
    [.0] so they survive a round-trip as floats. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val of_string : string -> (t, string) result
(** Parse one complete document; [Error] carries a message with the
    byte offset.  Trailing non-whitespace is an error. *)

(** {2 Accessors} — shallow, [None] on type mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
