(** The shared error taxonomy of the fault-tolerant pipeline.

    Real traces are messy — truncated files, bit-flipped records,
    mid-run worker failures.  Every recoverable defect the ingestion,
    supervision, and checkpoint layers encounter is classified here
    instead of being raised as a bare string, so the completeness
    section of a report can say exactly what was lost and where
    (DESIGN.md §12). *)

type kind =
  | Bad_magic          (** the stream is not an iocov trace at all *)
  | Corrupt_record     (** framing, CRC, or field-level decode failure *)
  | Truncated          (** the stream ends mid-record *)
  | Lost_reference     (** an intact record references a string whose
                           introduction was lost in a corrupt frame *)
  | Parse_error        (** a text trace line did not parse *)
  | Budget_exceeded    (** more corruption than [--max-bad-records] allows *)
  | Batch_abandoned    (** a work batch still failed after its retries *)
  | Shard_failed       (** a worker shard died; survivors absorbed its queue *)
  | Checkpoint_corrupt (** a checkpoint file did not load *)

val kind_name : kind -> string

type t = {
  kind : kind;
  offset : int option;  (** byte offset into the trace, binary sources *)
  line : int option;    (** line number, text sources *)
  detail : string;
}

val v : ?offset:int -> ?line:int -> kind -> string -> t
val to_string : t -> string

(** {2 Error budgets}

    How much corruption lenient ingestion tolerates before giving up. *)

type budget =
  | Unlimited
  | Max_records of int      (** absolute cap on skipped records *)
  | Max_fraction of float   (** fraction of total records, in [0,1] *)

val budget_of_string : string -> (budget, string) result
(** ["none"], a non-negative integer (["64"]), or a percentage
    (["0.5%"]). *)

val budget_to_string : budget -> string

val budget_allows : budget -> bad:int -> total:int -> final:bool -> bool
(** Absolute budgets are enforced online; fractional budgets need the
    denominator and are only enforced when [final] (end of stream). *)

(** {2 Run completeness}

    The exact account of what a fault-tolerant run read, skipped, and
    retried — rendered by {!Iocov_core.Report.completeness} and
    threaded through {!Iocov_par.Replay.outcome}. *)

type completeness = {
  events_read : int;        (** records decoded and fed to analysis *)
  records_skipped : int;    (** corrupt or unparsable records dropped *)
  corrupt_regions : int;    (** resync scans past damaged byte ranges *)
  bytes_skipped : int;      (** bytes discarded while resyncing *)
  batches_retried : int;    (** work batches retried after a worker exception *)
  shards_failed : int;      (** worker shards that died; the run degraded *)
  events_abandoned : int;   (** events lost with failed batches or shards *)
  truncated : bool;         (** the trace ended mid-record *)
  resumed_from : string option;  (** checkpoint path, for resumed runs *)
  anomalies : t list;       (** first {!max_kept_anomalies}, stream order *)
}

val max_kept_anomalies : int

val clean : events_read:int -> completeness
(** A fully-successful run's account: everything zero except
    [events_read]. *)

val is_clean : completeness -> bool

val merge : completeness -> completeness -> completeness
(** Pointwise sum (earliest [resumed_from] wins, anomaly list capped) —
    combines the producer-side and shard-side accounts of one run, or a
    resumed run with its checkpointed prefix. *)
