(* Minimal JSON: just enough for the run ledger and the trace-event
   exporter's tests.  Values parse into a plain variant; printing is
   single-line (the ledger is a JSON-lines file). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          print buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then (
    st.pos <- st.pos + n;
    v)
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "short \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Encode the code point as UTF-8; surrogates are kept as the
               replacement character — the ledger never emits them. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then (
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
            loop ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec loop () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (
        advance st;
        List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (
        advance st;
        Obj [])
      else
        let member () =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members (kv :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (kv :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors --------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None
