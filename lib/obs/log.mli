(** Structured, leveled logging for the pipeline.

    One process-global sink, configurable from the CLI ([--log-level],
    [--log-json]).  Lines are deterministic: no timestamps, only a
    monotone sequence number — so captured logs diff cleanly between
    runs.  Every emitted line also increments
    [iocov_log_lines_total{level=...}] in {!Metrics.default}. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
(** Messages below this level are suppressed.  Default: [Warn], so the
    layer is silent unless asked. *)

val level : unit -> level

type format = Text | Json

val set_format : format -> unit
(** [Text]: [#17 [info] message key=value ...].  [Json]: one JSON
    object per line with ["seq"], ["level"], ["msg"], and the fields. *)

val set_sink : (string -> unit) -> unit
(** Where finished lines go.  Default prints to [stderr].  Tests can
    capture lines in a list. *)

val set_channel : out_channel -> unit
(** Convenience: sink lines to a channel, one per line, flushed. *)

(** {1 Fields} *)

type value = Str of string | Int of int | Float of float | Bool of bool

val str : string -> value
val int : int -> value
val float : float -> value
val bool : bool -> value

(** {1 Emitting} *)

val msg : level -> ?fields:(string * value) list -> string -> unit
val debug : ?fields:(string * value) list -> string -> unit
val info : ?fields:(string * value) list -> string -> unit
val warn : ?fields:(string * value) list -> string -> unit
val error : ?fields:(string * value) list -> string -> unit

val reset_seq : unit -> unit
(** Restart the line sequence counter (between deterministic runs). *)
