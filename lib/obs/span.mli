(** Spans: nestable timed scopes over the pipeline.

    [with_ ~name f] times [f] on {!Clock.now}, records the duration
    into the registry (histogram [iocov_span_duration_ns{span=name}]
    and counter [iocov_span_total{span=name}]), and attaches the
    completed span to its enclosing span — so a run builds a profile
    tree: runner at the root, suite phases beneath it.

    The open-span stack is per-domain (a parallel worker shard times
    itself without touching the main pipeline's frames); completed
    top-level spans from every domain accumulate in the shared {!roots}
    list until {!reset}.  {!roots} sorts by (name, duration), so the
    exported span tree is stable even when parallel shards complete
    their root spans in scheduler order.

    Every span completion is also forwarded to {!Trace_event} (category
    [span]) when the flight recorder is running. *)

type node = {
  name : string;
  duration_s : float;
  children : node list;  (** in completion order *)
}

val with_ : ?registry:Metrics.t -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a span.  The span is closed (and recorded) even if
    [f] raises.  [registry] defaults to {!Metrics.default}. *)

val timed : ?registry:Metrics.t -> name:string -> (unit -> 'a) -> 'a * node
(** Like {!with_}, but also return the completed span — the single
    source of timing truth for callers that report an elapsed time. *)

val roots : unit -> node list
(** Completed top-level spans, sorted by (name, duration) for
    deterministic export at any [--jobs]. *)

val reset : unit -> unit
(** Drop completed roots (open spans are unaffected). *)

val flatten : node -> (string list * node) list
(** Preorder walk: each node with its path of span names from the
    root.  Convenient for tabular side-by-side rendering. *)

val render : node -> string
(** ASCII profile tree: one line per span with indentation, duration,
    and the share of its parent's time. *)
