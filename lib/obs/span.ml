type node = {
  name : string;
  duration_s : float;
  children : node list;
}

type frame = {
  f_name : string;
  f_start : float;
  mutable f_children : node list;  (* reverse completion order *)
}

(* Each domain keeps its own open-span stack, so a worker shard can time
   itself without seeing (or corrupting) the main pipeline's frames; a
   worker's outermost span completes into the shared root list, which a
   mutex guards together with the registry recording. *)
let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

let lock = Mutex.create ()
let completed_roots : node list ref = ref []  (* reverse completion order *)

let locked f =
  Mutex.lock lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock lock)

let record registry node =
  let labels = [ ("span", node.name) ] in
  Metrics.Counter.incr
    (Metrics.counter registry "iocov_span_total" ~labels
       ~help:"Completed spans by name.");
  Metrics.Histogram.observe
    (Metrics.histogram registry "iocov_span_duration_ns" ~labels
       ~help:"Span wall-clock durations (log2-bucketed nanoseconds).")
    (int_of_float (node.duration_s *. 1e9))

let with_ ?(registry = Metrics.default) ~name f =
  let stack = stack () in
  let frame = { f_name = name; f_start = Clock.now (); f_children = [] } in
  stack := frame :: !stack;
  let close () =
    (match !stack with
     | top :: rest when top == frame -> stack := rest
     | _ ->
       (* a child span leaked past its parent; drop frames down to ours *)
       let rec pop = function
         | top :: rest -> if top == frame then rest else pop rest
         | [] -> []
       in
       stack := pop !stack);
    let node =
      { name; duration_s = Clock.now () -. frame.f_start;
        children = List.rev frame.f_children }
    in
    Trace_event.complete ~cat:"span" ~name ~ts:frame.f_start
      ~dur:node.duration_s ();
    (match !stack with
     | parent :: _ -> parent.f_children <- node :: parent.f_children
     | [] -> locked (fun () -> completed_roots := node :: !completed_roots));
    record registry node;
    node
  in
  match f () with
  | v ->
    ignore (close ());
    v
  | exception exn ->
    ignore (close ());
    raise exn

let timed ?registry ~name f =
  let result = with_ ?registry ~name (fun () -> f ()) in
  (* the span we just closed is the newest child of the current top, or
     the newest completed root *)
  let node =
    match !(stack ()) with
    | parent :: _ -> List.hd parent.f_children
    | [] -> locked (fun () -> List.hd !completed_roots)
  in
  (result, node)

(* Completion order is scheduler-dependent when shards close their root
   spans concurrently, so export order sorts by (name, duration): two
   runs of the same workload render the same span tree regardless of
   which shard finished first. *)
let roots () =
  locked (fun () ->
      List.stable_sort
        (fun a b ->
          match String.compare a.name b.name with
          | 0 -> Float.compare a.duration_s b.duration_s
          | c -> c)
        (List.rev !completed_roots))
let reset () = locked (fun () -> completed_roots := [])

let flatten node =
  let rec go path n acc =
    let path = path @ [ n.name ] in
    List.fold_left (fun acc c -> go path c acc) ((path, n) :: acc) n.children
  in
  List.rev (go [] node [])

let render node =
  let buf = Buffer.create 256 in
  let rec go indent parent_s n =
    let share =
      if parent_s > 0.0 then Printf.sprintf "  %3.0f%%" (100.0 *. n.duration_s /. parent_s)
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %8.3fs%s\n" indent (max 1 (28 - String.length indent))
         n.name n.duration_s share);
    List.iter (go (indent ^ "  ") n.duration_s) n.children
  in
  go "" 0.0 node;
  Buffer.contents buf
