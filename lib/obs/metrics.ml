module Log2 = Iocov_util.Log2
module H = Iocov_util.Histogram

(* Counters and gauges are lock-free atomics so the parallel pipeline's
   worker domains can meter through the same handles as the sequential
   path; increments commute, so totals stay deterministic regardless of
   scheduling. *)
module Counter = struct
  type t = { v : int Atomic.t }

  let incr c = Atomic.incr c.v

  let add c n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add c.v n)

  let value c = Atomic.get c.v
end

module Gauge = struct
  type t = { v : int Atomic.t }

  let set g n = Atomic.set g.v n
  let incr g = Atomic.incr g.v
  let add g n = ignore (Atomic.fetch_and_add g.v n)
  let value g = Atomic.get g.v
end

(* Histograms mutate a hashtable; a per-histogram lock keeps them safe
   from any domain.  They sit on cold paths (span completion, tracer
   emit latency), so the uncontended lock is noise. *)
module Histogram = struct
  type t = {
    table : Log2.bucket H.t;
    mutable sum : int;
    lock : Mutex.t;
  }

  let make () =
    { table = H.create ~compare:Log2.compare_bucket; sum = 0; lock = Mutex.create () }

  let locked h f =
    Mutex.lock h.lock;
    Fun.protect f ~finally:(fun () -> Mutex.unlock h.lock)

  let observe h v =
    locked h (fun () ->
        H.add h.table (Log2.bucket_of_int v);
        h.sum <- h.sum + v)

  let count h = locked h (fun () -> H.total h.table)
  let sum h = locked h (fun () -> h.sum)
  let buckets h = locked h (fun () -> H.to_sorted h.table)

  let clear h =
    locked h (fun () ->
        H.clear h.table;
        h.sum <- 0)
end

type handle =
  | C of Counter.t
  | G of Gauge.t
  | Hist of Histogram.t

type entry = { help : string; handle : handle }

(* Key: name plus labels in registration order.  Labels are part of the
   identity, so one family name may carry many label sets. *)
type key = { k_name : string; k_labels : (string * string) list }

(* The registry lock covers the entries table only; it is taken on
   registration and whole-registry walks, never on the per-event
   increment path (handles are resolved once and cached). *)
type t = { entries : (key, entry) Hashtbl.t; lock : Mutex.t }

let create () = { entries = Hashtbl.create 64; lock = Mutex.create () }
let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let name_ok s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c -> match c with 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let validate name labels =
  if not (name_ok name) then
    invalid_arg (Printf.sprintf "Metrics: malformed metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (name_ok k) then
        invalid_arg (Printf.sprintf "Metrics: malformed label key %S on %S" k name))
    labels

let register t ~help ~labels name make describe =
  validate name labels;
  let key = { k_name = name; k_labels = labels } in
  let handle =
    locked t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some e -> e.handle
        | None ->
          let handle = make () in
          Hashtbl.add t.entries key { help; handle };
          handle)
  in
  describe handle

let kind_error name expected =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different kind (wanted %s)"
       name expected)

let counter ?(help = "") ?(labels = []) t name =
  register t ~help ~labels name
    (fun () -> C { Counter.v = Atomic.make 0 })
    (function C c -> c | _ -> kind_error name "counter")

let gauge ?(help = "") ?(labels = []) t name =
  register t ~help ~labels name
    (fun () -> G { Gauge.v = Atomic.make 0 })
    (function G g -> g | _ -> kind_error name "gauge")

let histogram ?(help = "") ?(labels = []) t name =
  register t ~help ~labels name
    (fun () -> Hist (Histogram.make ()))
    (function Hist h -> h | _ -> kind_error name "histogram")

let reset t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ e ->
          match e.handle with
          | C c -> Atomic.set c.Counter.v 0
          | G g -> Atomic.set g.Gauge.v 0
          | Hist h -> Histogram.clear h)
        t.entries)

type sample =
  | Counter_sample of int
  | Gauge_sample of int
  | Histogram_sample of {
      count : int;
      sum : int;
      buckets : (Log2.bucket * int) list;
    }

type metric = {
  name : string;
  labels : (string * string) list;
  help : string;
  sample : sample;
}

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun key e acc ->
          let sample =
            match e.handle with
            | C c -> Counter_sample (Counter.value c)
            | G g -> Gauge_sample (Gauge.value g)
            | Hist h ->
              Histogram_sample
                { count = Histogram.count h; sum = Histogram.sum h;
                  buckets = Histogram.buckets h }
          in
          { name = key.k_name; labels = key.k_labels; help = e.help; sample } :: acc)
        t.entries [])
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let is_timing m =
  let suffix = "_ns" in
  let n = String.length m.name and s = String.length suffix in
  n >= s && String.sub m.name (n - s) s = suffix
