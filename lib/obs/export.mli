(** Registry exporters.

    Two renderings of a {!Metrics.t} snapshot, both deterministic
    (stable metric order, stable label order, no timestamps):

    - Prometheus text exposition format, with log2 histograms emitted
      as cumulative [_bucket{le=...}] series plus [_sum]/[_count];
    - a single JSON object, for machine consumption (bench
      trajectories, dashboards).

    Span trees render to JSON too, so a profile can ride along with the
    registry in one artifact. *)

val to_prometheus : Metrics.t -> string
(** Text exposition per the Prometheus format spec: one
    [# HELP]/[# TYPE] pair per metric name (HELP with backslash and
    line-feed escaped), label values escaped for exactly backslash,
    double-quote and newline, histogram [_bucket] series cumulative
    and closed by a [+Inf] bucket equal to [_count]. *)

val to_json : Metrics.t -> string
(** [{"metrics":[...]}] — one entry per metric, sorted as in
    {!Metrics.snapshot}; histograms carry per-bucket [label]/[lo]/[hi]
    bounds from {!Iocov_util.Log2}. *)

val span_to_json : Span.node -> string

val registry_report : ?spans:Span.node list -> Metrics.t -> string
(** The combined JSON artifact:
    [{"metrics":[...],"spans":[...]}]. *)

val write_file : path:string -> ?spans:Span.node list -> Metrics.t -> unit
(** Write the registry to [path]; [*.json] gets {!registry_report},
    anything else the Prometheus text format. *)
