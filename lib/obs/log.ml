type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let current_level = ref Warn
let set_level l = current_level := l
let level () = !current_level

type format = Text | Json

let current_format = ref Text
let set_format f = current_format := f

let default_sink line =
  output_string stderr (line ^ "\n");
  flush stderr

let sink = ref default_sink
let set_sink f = sink := f

let set_channel oc =
  set_sink (fun line ->
      output_string oc (line ^ "\n");
      flush oc)

type value = Str of string | Int of int | Float of float | Bool of bool

let str s = Str s
let int n = Int n
let float f = Float f
let bool b = Bool b

let seq = ref 0
let reset_seq () = seq := 0

(* JSON string escaping, shared with Export via this module. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_text = function
  | Str s -> if String.exists (fun c -> c = ' ' || c = '"') s then Printf.sprintf "%S" s else s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let value_json = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let render ~seq lvl fields message =
  match !current_format with
  | Text ->
    let kv = List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (value_text v)) fields in
    Printf.sprintf "#%d [%s] %s%s" seq (level_to_string lvl) message (String.concat "" kv)
  | Json ->
    let kv =
      List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" (json_escape k) (value_json v)) fields
    in
    Printf.sprintf "{\"seq\":%d,\"level\":\"%s\",\"msg\":\"%s\"%s}" seq (level_to_string lvl)
      (json_escape message) (String.concat "" kv)

let msg lvl ?(fields = []) message =
  if severity lvl >= severity !current_level then begin
    incr seq;
    Metrics.Counter.incr
      (Metrics.counter Metrics.default "iocov_log_lines_total"
         ~labels:[ ("level", level_to_string lvl) ]
         ~help:"Log lines emitted by level.");
    !sink (render ~seq:!seq lvl fields message)
  end

let debug ?fields message = msg Debug ?fields message
let info ?fields message = msg Info ?fields message
let warn ?fields message = msg Warn ?fields message
let error ?fields message = msg Error ?fields message
