(** The observability time source.

    Every timing the layer records ({!Span} durations, sampled latency
    histograms) reads this clock, so tests can substitute a fake clock
    and obtain fully deterministic trees and buckets.  The default is
    [Unix.gettimeofday]. *)

val now : unit -> float
(** Current time in seconds (wall clock by default). *)

val set : (unit -> float) -> unit
(** Replace the time source (a test clock, a monotonic source, ...). *)

val reset : unit -> unit
(** Restore the default [Unix.gettimeofday] source. *)
