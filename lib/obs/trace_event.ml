(* The flight recorder: event capture into per-domain ring buffers,
   exported as Chrome trace-event JSON.

   Each domain writes only its own ring, so recording a batch or a
   retry from a worker shard costs one Atomic.get (the enabled check)
   plus an array store — no contention with other shards.  The global
   mutex guards only the ring *registry* (touched once per domain per
   recorder generation) and the export path (after the run). *)

type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts : float;   (* seconds since recorder start *)
  ev_dur : float;  (* seconds; 0.0 for instants *)
  ev_tid : int;    (* recording domain's id *)
  ev_args : (string * string) list;
}

type ring = {
  r_tid : int;
  r_gen : int;
  r_buf : event array;
  mutable r_len : int;
  mutable r_head : int;     (* oldest slot once the ring is full *)
  mutable r_dropped : int;  (* events overwritten *)
}

let default_capacity = 65536

let dummy =
  { ev_name = ""; ev_cat = ""; ev_ph = Instant; ev_ts = 0.0; ev_dur = 0.0;
    ev_tid = 0; ev_args = [] }

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let ring_capacity = Atomic.make default_capacity
let t0 = Atomic.make 0.0

let lock = Mutex.create ()
let rings : ring list ref = ref []

let locked f =
  Mutex.lock lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock lock)

let make_ring () =
  let r =
    { r_tid = (Domain.self () :> int);
      r_gen = Atomic.get generation;
      r_buf = Array.make (max 1 (Atomic.get ring_capacity)) dummy;
      r_len = 0; r_head = 0; r_dropped = 0 }
  in
  locked (fun () -> rings := r :: !rings);
  r

let dls : ring Domain.DLS.key = Domain.DLS.new_key make_ring

let get_ring () =
  let r = Domain.DLS.get dls in
  if r.r_gen = Atomic.get generation then r
  else begin
    (* the recorder restarted since this domain last recorded *)
    let r' = make_ring () in
    Domain.DLS.set dls r';
    r'
  end

let push r ev =
  let cap = Array.length r.r_buf in
  if r.r_len < cap then begin
    r.r_buf.((r.r_head + r.r_len) mod cap) <- ev;
    r.r_len <- r.r_len + 1
  end else begin
    r.r_buf.(r.r_head) <- ev;
    r.r_head <- (r.r_head + 1) mod cap;
    r.r_dropped <- r.r_dropped + 1
  end

let enabled () = Atomic.get enabled_flag

let clear () =
  Atomic.incr generation;   (* orphan every live ring; domains re-register *)
  locked (fun () -> rings := [])

let start ?(capacity = default_capacity) () =
  Atomic.set ring_capacity (max 1 capacity);
  clear ();
  Atomic.set t0 (Clock.now ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let complete ?(cat = "span") ?(args = []) ~name ~ts ~dur () =
  if enabled () then
    push (get_ring ())
      { ev_name = name; ev_cat = cat; ev_ph = Complete;
        ev_ts = ts -. Atomic.get t0; ev_dur = dur;
        ev_tid = (Domain.self () :> int); ev_args = args }

let instant ?(cat = "event") ?(args = []) name =
  if enabled () then
    push (get_ring ())
      { ev_name = name; ev_cat = cat; ev_ph = Instant;
        ev_ts = Clock.now () -. Atomic.get t0; ev_dur = 0.0;
        ev_tid = (Domain.self () :> int); ev_args = args }

let ring_events r =
  let cap = Array.length r.r_buf in
  List.init r.r_len (fun i -> r.r_buf.((r.r_head + i) mod cap))

let events () =
  let rs = locked (fun () -> !rings) in
  let all = List.concat_map ring_events rs in
  List.stable_sort
    (fun a b ->
      match Float.compare a.ev_ts b.ev_ts with
      | 0 -> (
          match compare a.ev_tid b.ev_tid with
          | 0 -> String.compare a.ev_name b.ev_name
          | c -> c)
      | c -> c)
    all

let dropped () =
  let rs = locked (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + r.r_dropped) 0 rs

let to_json () =
  let module J = Iocov_util.Json in
  let evs = events () in
  let tids = List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs) in
  (* thread_name metadata gives Perfetto a per-domain track label *)
  let meta =
    List.map
      (fun tid ->
        J.Obj
          [ ("name", J.String "thread_name"); ("ph", J.String "M");
            ("pid", J.Int 0); ("tid", J.Int tid);
            ("args", J.Obj [ ("name", J.String (Printf.sprintf "domain-%d" tid)) ]) ])
      tids
  in
  let ev_json e =
    let fields =
      [ ("name", J.String e.ev_name); ("cat", J.String e.ev_cat);
        ("ph", J.String (match e.ev_ph with Complete -> "X" | Instant -> "i"));
        ("ts", J.Float (e.ev_ts *. 1e6));
        ("pid", J.Int 0); ("tid", J.Int e.ev_tid) ]
    in
    let fields =
      match e.ev_ph with
      | Complete -> fields @ [ ("dur", J.Float (e.ev_dur *. 1e6)) ]
      | Instant -> fields @ [ ("s", J.String "t") ]
    in
    let fields =
      if e.ev_args = [] then fields
      else
        fields
        @ [ ("args", J.Obj (List.map (fun (k, v) -> (k, J.String v)) e.ev_args)) ]
    in
    J.Obj fields
  in
  J.to_string
    (J.Obj
       [ ("traceEvents", J.List (meta @ List.map ev_json evs));
         ("displayTimeUnit", J.String "ms") ])

let write_file path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json ());
      Out_channel.output_char oc '\n')
