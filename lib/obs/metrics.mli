(** The metrics registry — named counters, gauges, and log2-bucketed
    histograms for the IOCov pipeline itself.

    IOCov measures test suites; this registry measures IOCov.  Metric
    names follow the scheme [iocov_<stage>_<what>_<unit>]
    (e.g. [iocov_tracer_events_total], [iocov_span_duration_ns]); see
    DESIGN.md §9.  Histograms reuse {!Iocov_util.Log2} bucketing — a
    dedicated [=0] bucket plus one bucket per power of two — so the
    tool's self-measurements land in the same partition scheme the paper
    applies to syscall arguments.

    Registration returns a {e handle}; hot paths resolve their handle
    once and then increment it directly, keeping the per-event cost
    negligible next to coverage accumulation.

    Domain-safety: counters and gauges are atomics and may be driven
    from any domain (the parallel pipeline's worker shards meter
    through the same handles as the sequential path); histograms and
    registration are mutex-protected.  Counter totals are sums of
    commutative increments, so they stay deterministic under parallel
    replay.

    Determinism: counter and gauge values are pure functions of the
    work driven through the pipeline (seed, scale, faults).  Only
    metrics named with the [_ns] unit suffix record wall-clock time and
    may differ between otherwise identical runs; consumers comparing
    runs must exclude them (see {!is_timing}). *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val observe : t -> int -> unit
  (** Bucket the observation with {!Iocov_util.Log2.bucket_of_int}
      (negative and zero values land in their dedicated buckets). *)

  val count : t -> int
  val sum : t -> int
  val buckets : t -> (Iocov_util.Log2.bucket * int) list
  (** Non-empty buckets in ascending bucket order. *)
end

type t
(** A registry: a named, labeled family of metrics. *)

val create : unit -> t

val default : t
(** The process-global registry every instrumented pipeline stage
    reports into.  The CLI resets and exports this one. *)

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> Counter.t
(** [counter reg name] registers (or finds) the counter [name] with
    [labels].  Names must match [[a-z_][a-z0-9_]*]; label keys too.
    Raises [Invalid_argument] on a malformed name or if [name]+[labels]
    is already registered as a different metric kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> Gauge.t
val histogram : ?help:string -> ?labels:(string * string) list -> t -> string -> Histogram.t

val reset : t -> unit
(** Zero every value and empty every histogram, keeping all registered
    handles valid — instrumentation sites that cached a handle keep
    reporting into the same registry after a reset. *)

(** {1 Snapshots} *)

type sample =
  | Counter_sample of int
  | Gauge_sample of int
  | Histogram_sample of {
      count : int;
      sum : int;
      buckets : (Iocov_util.Log2.bucket * int) list;  (** ascending *)
    }

type metric = {
  name : string;
  labels : (string * string) list;  (** in registration order *)
  help : string;
  sample : sample;
}

val snapshot : t -> metric list
(** Stable order: sorted by name, then labels — two snapshots of equal
    registries render identically. *)

val is_timing : metric -> bool
(** True for wall-clock metrics (name ends in [_ns]) — the ones to
    exclude when comparing runs for determinism. *)
