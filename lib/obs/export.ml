module Log2 = Iocov_util.Log2

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- Prometheus text format --- *)

(* The exposition format escapes exactly three characters in a label
   value: backslash, double-quote, and line feed.  Anything else —
   tabs, carriage returns, other control bytes — passes through raw;
   JSON-style [\t] or [\uXXXX] sequences would be read back as literal
   backslash-t etc. by a conforming parser. *)
let prom_escape_label s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text escapes only backslash and line feed (no quotes — the text
   is not quoted in the exposition). *)
let prom_escape_help s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape_label v))
           labels)
    ^ "}"

(* Upper bound of a bucket as Prometheus' inclusive [le]. *)
let le_of_bucket b =
  match (b : Log2.bucket) with
  | Log2.Negative -> "-1"
  | Log2.Zero -> "0"
  | Log2.Pow2 _ -> string_of_int (Log2.bucket_hi b)

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (prom_escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (m : Metrics.metric) ->
      match m.Metrics.sample with
      | Metrics.Counter_sample v ->
        header m.Metrics.name "counter" m.Metrics.help;
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" m.Metrics.name (prom_labels m.Metrics.labels) v)
      | Metrics.Gauge_sample v ->
        header m.Metrics.name "gauge" m.Metrics.help;
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" m.Metrics.name (prom_labels m.Metrics.labels) v)
      | Metrics.Histogram_sample { count; sum; buckets } ->
        header m.Metrics.name "histogram" m.Metrics.help;
        let cumulative = ref 0 in
        List.iter
          (fun (b, n) ->
            cumulative := !cumulative + n;
            let labels = m.Metrics.labels @ [ ("le", le_of_bucket b) ] in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" m.Metrics.name (prom_labels labels)
                 !cumulative))
          buckets;
        let inf = m.Metrics.labels @ [ ("le", "+Inf") ] in
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" m.Metrics.name (prom_labels inf) count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %d\n" m.Metrics.name (prom_labels m.Metrics.labels) sum);
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" m.Metrics.name (prom_labels m.Metrics.labels)
             count))
    (Metrics.snapshot reg);
  Buffer.contents buf

(* --- JSON --- *)

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) labels)
  ^ "}"

let json_of_metric (m : Metrics.metric) =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"labels\":%s" (escape m.Metrics.name)
      (json_labels m.Metrics.labels)
  in
  match m.Metrics.sample with
  | Metrics.Counter_sample v ->
    Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common v
  | Metrics.Gauge_sample v ->
    Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%d}" common v
  | Metrics.Histogram_sample { count; sum; buckets } ->
    let bucket_json (b, n) =
      Printf.sprintf "{\"bucket\":\"%s\",\"lo\":%d,\"hi\":%d,\"count\":%d}"
        (escape (Log2.bucket_label b)) (Log2.bucket_lo b) (Log2.bucket_hi b) n
    in
    Printf.sprintf "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}"
      common count sum
      (String.concat "," (List.map bucket_json buckets))

let to_json reg =
  "{\"metrics\":["
  ^ String.concat "," (List.map json_of_metric (Metrics.snapshot reg))
  ^ "]}"

let rec span_to_json (n : Span.node) =
  Printf.sprintf "{\"name\":\"%s\",\"duration_s\":%.9f,\"children\":[%s]}"
    (escape n.Span.name) n.Span.duration_s
    (String.concat "," (List.map span_to_json n.Span.children))

let registry_report ?(spans = []) reg =
  Printf.sprintf "{\"metrics\":[%s],\"spans\":[%s]}"
    (String.concat "," (List.map json_of_metric (Metrics.snapshot reg)))
    (String.concat "," (List.map span_to_json spans))

let write_file ~path ?spans reg =
  let is_json =
    String.length path >= 5 && String.sub path (String.length path - 5) 5 = ".json"
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if is_json then registry_report ?spans reg else to_prometheus reg);
      output_char oc '\n')
