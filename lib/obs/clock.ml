let default = Unix.gettimeofday
let source = ref default
let now () = !source ()
let set f = source := f
let reset () = source := default
