(** The flight recorder (DESIGN.md §14).

    Captures span completions and driver/pool lifecycle events (shard
    spawn, batch commit, retry, checkpoint write, resync after
    corruption) into per-domain ring buffers, and exports the merged
    timeline as Chrome trace-event JSON — load the file in
    [ui.perfetto.dev] or [chrome://tracing].

    Recording is off by default and costs one atomic read when
    disabled.  When enabled, each domain appends to its own
    fixed-capacity ring (oldest events overwritten, the overwrite
    count kept), so instrumentation never blocks a worker shard.
    Timestamps come from {!Clock}, so a fake clock makes the exported
    timeline fully deterministic. *)

type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_cat : string;       (** Chrome "cat": [span], [pool], [stage], [ingest]… *)
  ev_ph : phase;
  ev_ts : float;         (** seconds since {!start} *)
  ev_dur : float;        (** seconds; [0.0] for instants *)
  ev_tid : int;          (** recording domain's id *)
  ev_args : (string * string) list;
}

val default_capacity : int
(** Per-domain ring capacity, 65536 events. *)

val start : ?capacity:int -> unit -> unit
(** Discard any previous recording and begin a new one; [t0] is
    {!Clock.now} at this call. *)

val stop : unit -> unit
(** Stop recording; captured events remain readable. *)

val clear : unit -> unit
(** Drop all captured events without starting a new recording. *)

val enabled : unit -> bool

val complete :
  ?cat:string -> ?args:(string * string) list ->
  name:string -> ts:float -> dur:float -> unit -> unit
(** Record a completed interval.  [ts] is the {e absolute} clock time
    the interval began (as {!Clock.now} returned it); the recorder
    rebases onto its own epoch.  No-op while disabled. *)

val instant :
  ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point event at {!Clock.now}.  No-op while disabled. *)

val events : unit -> event list
(** Merged timeline across all domains, sorted by timestamp (ties
    broken by domain id then name, so export is deterministic under a
    fake clock). *)

val dropped : unit -> int
(** Events lost to ring overwrite across all domains. *)

val to_json : unit -> string
(** Chrome trace-event JSON: [{"traceEvents": [...]}] with
    microsecond timestamps and per-domain [thread_name] metadata. *)

val write_file : string -> unit
(** {!to_json} to a file. *)
