type base =
  | Open
  | Read
  | Write
  | Lseek
  | Truncate
  | Mkdir
  | Chmod
  | Close
  | Chdir
  | Setxattr
  | Getxattr

type variant =
  | Sys_open
  | Sys_openat
  | Sys_creat
  | Sys_openat2
  | Sys_read
  | Sys_pread64
  | Sys_readv
  | Sys_write
  | Sys_pwrite64
  | Sys_writev
  | Sys_lseek
  | Sys_truncate
  | Sys_ftruncate
  | Sys_mkdir
  | Sys_mkdirat
  | Sys_chmod
  | Sys_fchmod
  | Sys_fchmodat
  | Sys_close
  | Sys_chdir
  | Sys_fchdir
  | Sys_setxattr
  | Sys_lsetxattr
  | Sys_fsetxattr
  | Sys_getxattr
  | Sys_lgetxattr
  | Sys_fgetxattr

let all_bases =
  [ Open; Read; Write; Lseek; Truncate; Mkdir; Chmod; Close; Chdir; Setxattr; Getxattr ]

let all_variants =
  [ Sys_open; Sys_openat; Sys_creat; Sys_openat2; Sys_read; Sys_pread64;
    Sys_readv; Sys_write; Sys_pwrite64; Sys_writev; Sys_lseek; Sys_truncate;
    Sys_ftruncate; Sys_mkdir; Sys_mkdirat; Sys_chmod; Sys_fchmod;
    Sys_fchmodat; Sys_close; Sys_chdir; Sys_fchdir; Sys_setxattr;
    Sys_lsetxattr; Sys_fsetxattr; Sys_getxattr; Sys_lgetxattr; Sys_fgetxattr ]

(* Dense integer indexes, in declaration order — the compiled partition
   plan (lib/core/plan.ml) uses these as array offsets, and the
   monomorphic comparators below are index comparisons, so histogram
   order is unchanged from the polymorphic [Stdlib.compare] they
   replace. *)

let base_index = function
  | Open -> 0
  | Read -> 1
  | Write -> 2
  | Lseek -> 3
  | Truncate -> 4
  | Mkdir -> 5
  | Chmod -> 6
  | Close -> 7
  | Chdir -> 8
  | Setxattr -> 9
  | Getxattr -> 10

let base_count = 11

let variant_index = function
  | Sys_open -> 0
  | Sys_openat -> 1
  | Sys_creat -> 2
  | Sys_openat2 -> 3
  | Sys_read -> 4
  | Sys_pread64 -> 5
  | Sys_readv -> 6
  | Sys_write -> 7
  | Sys_pwrite64 -> 8
  | Sys_writev -> 9
  | Sys_lseek -> 10
  | Sys_truncate -> 11
  | Sys_ftruncate -> 12
  | Sys_mkdir -> 13
  | Sys_mkdirat -> 14
  | Sys_chmod -> 15
  | Sys_fchmod -> 16
  | Sys_fchmodat -> 17
  | Sys_close -> 18
  | Sys_chdir -> 19
  | Sys_fchdir -> 20
  | Sys_setxattr -> 21
  | Sys_lsetxattr -> 22
  | Sys_fsetxattr -> 23
  | Sys_getxattr -> 24
  | Sys_lgetxattr -> 25
  | Sys_fgetxattr -> 26

let variant_count = 27
let compare_base a b = Int.compare (base_index a) (base_index b)
let compare_variant a b = Int.compare (variant_index a) (variant_index b)

let base_of_variant = function
  | Sys_open | Sys_openat | Sys_creat | Sys_openat2 -> Open
  | Sys_read | Sys_pread64 | Sys_readv -> Read
  | Sys_write | Sys_pwrite64 | Sys_writev -> Write
  | Sys_lseek -> Lseek
  | Sys_truncate | Sys_ftruncate -> Truncate
  | Sys_mkdir | Sys_mkdirat -> Mkdir
  | Sys_chmod | Sys_fchmod | Sys_fchmodat -> Chmod
  | Sys_close -> Close
  | Sys_chdir | Sys_fchdir -> Chdir
  | Sys_setxattr | Sys_lsetxattr | Sys_fsetxattr -> Setxattr
  | Sys_getxattr | Sys_lgetxattr | Sys_fgetxattr -> Getxattr

let variants_of_base b = List.filter (fun v -> base_of_variant v = b) all_variants

let base_name = function
  | Open -> "open"
  | Read -> "read"
  | Write -> "write"
  | Lseek -> "lseek"
  | Truncate -> "truncate"
  | Mkdir -> "mkdir"
  | Chmod -> "chmod"
  | Close -> "close"
  | Chdir -> "chdir"
  | Setxattr -> "setxattr"
  | Getxattr -> "getxattr"

let base_of_name s = List.find_opt (fun b -> base_name b = s) all_bases

let variant_name = function
  | Sys_open -> "open"
  | Sys_openat -> "openat"
  | Sys_creat -> "creat"
  | Sys_openat2 -> "openat2"
  | Sys_read -> "read"
  | Sys_pread64 -> "pread64"
  | Sys_readv -> "readv"
  | Sys_write -> "write"
  | Sys_pwrite64 -> "pwrite64"
  | Sys_writev -> "writev"
  | Sys_lseek -> "lseek"
  | Sys_truncate -> "truncate"
  | Sys_ftruncate -> "ftruncate"
  | Sys_mkdir -> "mkdir"
  | Sys_mkdirat -> "mkdirat"
  | Sys_chmod -> "chmod"
  | Sys_fchmod -> "fchmod"
  | Sys_fchmodat -> "fchmodat"
  | Sys_close -> "close"
  | Sys_chdir -> "chdir"
  | Sys_fchdir -> "fchdir"
  | Sys_setxattr -> "setxattr"
  | Sys_lsetxattr -> "lsetxattr"
  | Sys_fsetxattr -> "fsetxattr"
  | Sys_getxattr -> "getxattr"
  | Sys_lgetxattr -> "lgetxattr"
  | Sys_fgetxattr -> "fgetxattr"

let variant_of_name s = List.find_opt (fun v -> variant_name v = s) all_variants

type target =
  | Path of string
  | Fd of int

type call =
  | Open_call of { variant : variant; path : string; flags : Open_flags.t; mode : Mode.t }
  | Read_call of { variant : variant; fd : int; count : int; offset : int option }
  | Write_call of { variant : variant; fd : int; count : int; offset : int option }
  | Lseek_call of { fd : int; offset : int; whence : Whence.t }
  | Truncate_call of { variant : variant; target : target; length : int }
  | Mkdir_call of { variant : variant; path : string; mode : Mode.t }
  | Chmod_call of { variant : variant; target : target; mode : Mode.t }
  | Close_call of { fd : int }
  | Chdir_call of { target : target }
  | Setxattr_call of
      { variant : variant; target : target; name : string; size : int; flags : Xattr_flag.t }
  | Getxattr_call of { variant : variant; target : target; name : string; size : int }

type outcome =
  | Ret of int
  | Err of Errno.t

let variant_of_call = function
  | Open_call { variant; _ } -> variant
  | Read_call { variant; _ } -> variant
  | Write_call { variant; _ } -> variant
  | Lseek_call _ -> Sys_lseek
  | Truncate_call { variant; _ } -> variant
  | Mkdir_call { variant; _ } -> variant
  | Chmod_call { variant; _ } -> variant
  | Close_call _ -> Sys_close
  | Chdir_call { target = Path _ } -> Sys_chdir
  | Chdir_call { target = Fd _ } -> Sys_fchdir
  | Setxattr_call { variant; _ } -> variant
  | Getxattr_call { variant; _ } -> variant

let base_of_call c = base_of_variant (variant_of_call c)

let check_variant ctx expected variant =
  if not (List.mem variant expected) then
    invalid_arg (Printf.sprintf "Model.%s: variant %s not allowed" ctx (variant_name variant))

let open_ ?(variant = Sys_open) ?(mode = 0) ~flags path =
  check_variant "open_" [ Sys_open; Sys_openat; Sys_creat; Sys_openat2 ] variant;
  let flags =
    if variant = Sys_creat then
      Open_flags.of_flags [ Open_flags.O_WRONLY; Open_flags.O_CREAT; Open_flags.O_TRUNC ]
    else flags
  in
  Open_call { variant; path; flags; mode }

let read ?(variant = Sys_read) ?offset ~fd ~count () =
  check_variant "read" [ Sys_read; Sys_pread64; Sys_readv ] variant;
  (match (variant, offset) with
   | Sys_pread64, None -> invalid_arg "Model.read: pread64 requires an offset"
   | (Sys_read | Sys_readv), Some _ -> invalid_arg "Model.read: offset only valid for pread64"
   | _ -> ());
  Read_call { variant; fd; count; offset }

let write ?(variant = Sys_write) ?offset ~fd ~count () =
  check_variant "write" [ Sys_write; Sys_pwrite64; Sys_writev ] variant;
  (match (variant, offset) with
   | Sys_pwrite64, None -> invalid_arg "Model.write: pwrite64 requires an offset"
   | (Sys_write | Sys_writev), Some _ -> invalid_arg "Model.write: offset only valid for pwrite64"
   | _ -> ());
  Write_call { variant; fd; count; offset }

let lseek ~fd ~offset ~whence = Lseek_call { fd; offset; whence }

let truncate ?variant ~target ~length () =
  let variant =
    match (variant, target) with
    | Some v, _ -> v
    | None, Path _ -> Sys_truncate
    | None, Fd _ -> Sys_ftruncate
  in
  check_variant "truncate" [ Sys_truncate; Sys_ftruncate ] variant;
  (match (variant, target) with
   | Sys_truncate, Fd _ -> invalid_arg "Model.truncate: truncate takes a path"
   | Sys_ftruncate, Path _ -> invalid_arg "Model.truncate: ftruncate takes an fd"
   | _ -> ());
  Truncate_call { variant; target; length }

let mkdir ?(variant = Sys_mkdir) ?(mode = 0o777) path =
  check_variant "mkdir" [ Sys_mkdir; Sys_mkdirat ] variant;
  Mkdir_call { variant; path; mode }

let chmod ?variant ~target ~mode () =
  let variant =
    match (variant, target) with
    | Some v, _ -> v
    | None, Path _ -> Sys_chmod
    | None, Fd _ -> Sys_fchmod
  in
  check_variant "chmod" [ Sys_chmod; Sys_fchmod; Sys_fchmodat ] variant;
  (match (variant, target) with
   | (Sys_chmod | Sys_fchmodat), Fd _ -> invalid_arg "Model.chmod: path variant given an fd"
   | Sys_fchmod, Path _ -> invalid_arg "Model.chmod: fchmod takes an fd"
   | _ -> ());
  Chmod_call { variant; target; mode }

let close fd = Close_call { fd }
let chdir target = Chdir_call { target }

let setxattr ?variant ?(flags = Xattr_flag.XATTR_ANY) ~target ~name ~size () =
  let variant =
    match (variant, target) with
    | Some v, _ -> v
    | None, Path _ -> Sys_setxattr
    | None, Fd _ -> Sys_fsetxattr
  in
  check_variant "setxattr" [ Sys_setxattr; Sys_lsetxattr; Sys_fsetxattr ] variant;
  (match (variant, target) with
   | (Sys_setxattr | Sys_lsetxattr), Fd _ -> invalid_arg "Model.setxattr: path variant given an fd"
   | Sys_fsetxattr, Path _ -> invalid_arg "Model.setxattr: fsetxattr takes an fd"
   | _ -> ());
  Setxattr_call { variant; target; name; size; flags }

let getxattr ?variant ~target ~name ~size () =
  let variant =
    match (variant, target) with
    | Some v, _ -> v
    | None, Path _ -> Sys_getxattr
    | None, Fd _ -> Sys_fgetxattr
  in
  check_variant "getxattr" [ Sys_getxattr; Sys_lgetxattr; Sys_fgetxattr ] variant;
  (match (variant, target) with
   | (Sys_getxattr | Sys_lgetxattr), Fd _ -> invalid_arg "Model.getxattr: path variant given an fd"
   | Sys_fgetxattr, Path _ -> invalid_arg "Model.getxattr: fgetxattr takes an fd"
   | _ -> ());
  Getxattr_call { variant; target; name; size }

let errno_domain =
  let open Errno in
  function
  | Open -> open_manual_domain
  | Read -> [ EAGAIN; EBADF; EFAULT; EINTR; EINVAL; EIO; EISDIR; ENOMEM; ENXIO; ESPIPE ]
  | Write ->
    [ EAGAIN; EBADF; EDQUOT; EFAULT; EFBIG; EINTR; EINVAL; EIO; ENOSPC; EPERM; ESPIPE ]
  | Lseek -> [ EBADF; EINVAL; ENXIO; EOVERFLOW; ESPIPE ]
  | Truncate ->
    [ EACCES; EBADF; EFAULT; EFBIG; EINTR; EINVAL; EIO; EISDIR; ELOOP; ENAMETOOLONG;
      ENOENT; ENOTDIR; EPERM; EROFS; ETXTBSY ]
  | Mkdir ->
    [ EACCES; EBADF; EDQUOT; EEXIST; EFAULT; EINVAL; ELOOP; EMLINK; ENAMETOOLONG;
      ENOENT; ENOMEM; ENOSPC; ENOTDIR; EPERM; EROFS ]
  | Chmod ->
    [ EACCES; EBADF; EFAULT; EIO; ELOOP; ENAMETOOLONG; ENOENT; ENOMEM; ENOTDIR;
      EPERM; EROFS ]
  | Close -> [ EBADF; EDQUOT; EINTR; EIO; ENOSPC ]
  | Chdir -> [ EACCES; EBADF; EFAULT; EIO; ELOOP; ENAMETOOLONG; ENOENT; ENOTDIR ]
  | Setxattr ->
    [ E2BIG; EACCES; EBADF; EDQUOT; EEXIST; EFAULT; EINVAL; ELOOP; ENAMETOOLONG;
      ENODATA; ENOENT; ENOSPC; ENOTDIR; ENOTSUP; EPERM; ERANGE; EROFS ]
  | Getxattr ->
    [ E2BIG; EACCES; EBADF; EFAULT; ELOOP; ENAMETOOLONG; ENODATA; ENOENT; ENOTDIR;
      ENOTSUP; ERANGE ]

let returns_byte_count = function
  | Read | Write | Lseek | Getxattr -> true
  | Open | Truncate | Mkdir | Chmod | Close | Chdir | Setxattr -> false

(* --- Serialization --- *)

let quote s = Printf.sprintf "%S" s

let target_field = function
  | Path p -> Printf.sprintf "path=%s" (quote p)
  | Fd fd -> Printf.sprintf "fd=%d" fd

let call_to_string call =
  let name = variant_name (variant_of_call call) in
  let fields =
    match call with
    | Open_call { path; flags; mode; _ } ->
      [ Printf.sprintf "path=%s" (quote path);
        Printf.sprintf "flags=%s" (Open_flags.to_string flags);
        Printf.sprintf "mode=%s" (Mode.to_octal_string mode) ]
    | Read_call { fd; count; offset; _ } | Write_call { fd; count; offset; _ } ->
      [ Printf.sprintf "fd=%d" fd; Printf.sprintf "count=%d" count ]
      @ (match offset with
         | Some off -> [ Printf.sprintf "offset=%d" off ]
         | None -> [])
    | Lseek_call { fd; offset; whence } ->
      [ Printf.sprintf "fd=%d" fd;
        Printf.sprintf "offset=%d" offset;
        Printf.sprintf "whence=%s" (Whence.to_string whence) ]
    | Truncate_call { target; length; _ } ->
      [ target_field target; Printf.sprintf "length=%d" length ]
    | Mkdir_call { path; mode; _ } ->
      [ Printf.sprintf "path=%s" (quote path);
        Printf.sprintf "mode=%s" (Mode.to_octal_string mode) ]
    | Chmod_call { target; mode; _ } ->
      [ target_field target; Printf.sprintf "mode=%s" (Mode.to_octal_string mode) ]
    | Close_call { fd } -> [ Printf.sprintf "fd=%d" fd ]
    | Chdir_call { target } -> [ target_field target ]
    | Setxattr_call { target; name; size; flags; _ } ->
      [ target_field target;
        Printf.sprintf "name=%s" (quote name);
        Printf.sprintf "size=%d" size;
        Printf.sprintf "xflags=%s" (Xattr_flag.to_string flags) ]
    | Getxattr_call { target; name; size; _ } ->
      [ target_field target;
        Printf.sprintf "name=%s" (quote name);
        Printf.sprintf "size=%d" size ]
  in
  Printf.sprintf "%s(%s)" name (String.concat ", " fields)

(* Split "k=v, k=v" at top level (commas inside quoted strings do not
   split). *)
let split_fields s =
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let in_quote = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then begin
        Buffer.add_char buf c;
        escaped := false
      end
      else
        match c with
        | '\\' when !in_quote ->
          Buffer.add_char buf c;
          escaped := true
        | '"' ->
          Buffer.add_char buf c;
          in_quote := not !in_quote
        | ',' when not !in_quote ->
          fields := Buffer.contents buf :: !fields;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then fields := Buffer.contents buf :: !fields;
  List.rev_map String.trim !fields

let parse_field s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "malformed field %S" s)
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let unquote s =
  try Ok (Scanf.sscanf s "%S%!" (fun x -> x))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Error (Printf.sprintf "malformed string %s" s)

let parse_int_field s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "malformed integer %S" s)

let ( let* ) = Result.bind

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let opt_field fields key = List.assoc_opt key fields

let target_of_fields fields =
  match (opt_field fields "path", opt_field fields "fd") with
  | Some p, None ->
    let* p = unquote p in
    Ok (Path p)
  | None, Some fd ->
    let* fd = parse_int_field fd in
    Ok (Fd fd)
  | _ -> Error "expected exactly one of path/fd"

let call_of_string line =
  let line = String.trim line in
  match String.index_opt line '(' with
  | None -> Error "missing '('"
  | Some lparen ->
    if String.length line = 0 || line.[String.length line - 1] <> ')' then
      Error "missing ')'"
    else begin
      let name = String.sub line 0 lparen in
      let body = String.sub line (lparen + 1) (String.length line - lparen - 2) in
      match variant_of_name name with
      | None -> Error (Printf.sprintf "unknown syscall %S" name)
      | Some variant ->
        let* fields =
          List.fold_left
            (fun acc f ->
              let* acc = acc in
              let* kv = parse_field f in
              Ok (kv :: acc))
            (Ok []) (split_fields body)
        in
        let fields = List.rev fields in
        (try
           match base_of_variant variant with
           | Open ->
             let* path = Result.bind (field fields "path") unquote in
             let* flags_s = field fields "flags" in
             let* flags =
               match Open_flags.of_string flags_s with
               | Some f -> Ok f
               | None -> Error (Printf.sprintf "bad flags %S" flags_s)
             in
             let* mode_s = field fields "mode" in
             let* mode =
               match Mode.of_octal_string mode_s with
               | Some m -> Ok m
               | None -> Error (Printf.sprintf "bad mode %S" mode_s)
             in
             Ok (Open_call { variant; path; flags; mode })
           | Read | Write ->
             let* fd = Result.bind (field fields "fd") parse_int_field in
             let* count = Result.bind (field fields "count") parse_int_field in
             let* offset =
               match opt_field fields "offset" with
               | None -> Ok None
               | Some o ->
                 let* o = parse_int_field o in
                 Ok (Some o)
             in
             if base_of_variant variant = Read then
               Ok (read ~variant ?offset ~fd ~count ())
             else Ok (write ~variant ?offset ~fd ~count ())
           | Lseek ->
             let* fd = Result.bind (field fields "fd") parse_int_field in
             let* offset = Result.bind (field fields "offset") parse_int_field in
             let* whence_s = field fields "whence" in
             let* whence =
               match Whence.of_string whence_s with
               | Some w -> Ok w
               | None -> Error (Printf.sprintf "bad whence %S" whence_s)
             in
             Ok (lseek ~fd ~offset ~whence)
           | Truncate ->
             let* target = target_of_fields fields in
             let* length = Result.bind (field fields "length") parse_int_field in
             Ok (truncate ~variant ~target ~length ())
           | Mkdir ->
             let* path = Result.bind (field fields "path") unquote in
             let* mode_s = field fields "mode" in
             let* mode =
               match Mode.of_octal_string mode_s with
               | Some m -> Ok m
               | None -> Error (Printf.sprintf "bad mode %S" mode_s)
             in
             Ok (Mkdir_call { variant; path; mode })
           | Chmod ->
             let* target = target_of_fields fields in
             let* mode_s = field fields "mode" in
             let* mode =
               match Mode.of_octal_string mode_s with
               | Some m -> Ok m
               | None -> Error (Printf.sprintf "bad mode %S" mode_s)
             in
             Ok (chmod ~variant ~target ~mode ())
           | Close ->
             let* fd = Result.bind (field fields "fd") parse_int_field in
             Ok (close fd)
           | Chdir ->
             let* target = target_of_fields fields in
             Ok (chdir target)
           | Setxattr ->
             let* target = target_of_fields fields in
             let* name = Result.bind (field fields "name") unquote in
             let* size = Result.bind (field fields "size") parse_int_field in
             let* xflags_s = field fields "xflags" in
             let* flags =
               match Xattr_flag.of_string xflags_s with
               | Some f -> Ok f
               | None -> Error (Printf.sprintf "bad xattr flags %S" xflags_s)
             in
             Ok (setxattr ~variant ~flags ~target ~name ~size ())
           | Getxattr ->
             let* target = target_of_fields fields in
             let* name = Result.bind (field fields "name") unquote in
             let* size = Result.bind (field fields "size") parse_int_field in
             Ok (getxattr ~variant ~target ~name ~size ())
         with Invalid_argument msg -> Error msg)
    end

let outcome_to_string = function
  | Ret n -> Printf.sprintf "ok:%d" n
  | Err e -> Printf.sprintf "err:%s" (Errno.to_string e)

let outcome_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "malformed outcome %S" s)
  | Some i ->
    let tag = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match tag with
     | "ok" ->
       (match int_of_string_opt rest with
        | Some n -> Ok (Ret n)
        | None -> Error (Printf.sprintf "malformed return value %S" rest))
     | "err" ->
       (match Errno.of_string rest with
        | Some e -> Ok (Err e)
        | None -> Error (Printf.sprintf "unknown errno %S" rest))
     | _ -> Error (Printf.sprintf "malformed outcome %S" s))

let pp_call ppf c = Format.pp_print_string ppf (call_to_string c)
let pp_outcome ppf o = Format.pp_print_string ppf (outcome_to_string o)
