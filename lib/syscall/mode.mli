(** File permission modes — the bitmap argument of [chmod], [mkdir], and
    [open(O_CREAT)].

    Twelve bits: the nine [rwxrwxrwx] permission bits plus the setuid,
    setgid, and sticky bits.  Like {!Open_flags}, coverage counts each set
    bit as a partition member. *)

type bit =
  | S_ISUID
  | S_ISGID
  | S_ISVTX
  | S_IRUSR
  | S_IWUSR
  | S_IXUSR
  | S_IRGRP
  | S_IWGRP
  | S_IXGRP
  | S_IROTH
  | S_IWOTH
  | S_IXOTH

type t = int
(** A mode, e.g. [0o644]. *)

val all_bits : bit list
(** The 12-bit domain, high bits first. *)

val bit_name : bit -> string

val bit_index : bit -> int
(** Dense index in declaration order, in [[0, bit_count)] — an array
    offset for the compiled partition plan. *)

val bit_count : int
val bit_of_name : string -> bit option

val mask : bit -> int
(** The octal mask of a single bit. *)

val decompose : t -> bit list
(** Set bits, in {!all_bits} order.  Bits outside the 12-bit domain are
    ignored. *)

val of_bits : bit list -> t

val valid : t -> bool
(** [valid m] iff [m] has no bits outside the 12-bit domain —
    Linux rejects such modes from [mkdir]/[chmod] with [EINVAL]. *)

val to_octal_string : t -> string
(** E.g. ["0o644"]. *)

val of_octal_string : string -> t option

val readable_by : t -> [ `Owner | `Group | `Other ] -> bool
val writable_by : t -> [ `Owner | `Group | `Other ] -> bool
val executable_by : t -> [ `Owner | `Group | `Other ] -> bool
