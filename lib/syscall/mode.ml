type bit =
  | S_ISUID
  | S_ISGID
  | S_ISVTX
  | S_IRUSR
  | S_IWUSR
  | S_IXUSR
  | S_IRGRP
  | S_IWGRP
  | S_IXGRP
  | S_IROTH
  | S_IWOTH
  | S_IXOTH

type t = int

let all_bits =
  [ S_ISUID; S_ISGID; S_ISVTX; S_IRUSR; S_IWUSR; S_IXUSR; S_IRGRP;
    S_IWGRP; S_IXGRP; S_IROTH; S_IWOTH; S_IXOTH ]

let bit_name = function
  | S_ISUID -> "S_ISUID"
  | S_ISGID -> "S_ISGID"
  | S_ISVTX -> "S_ISVTX"
  | S_IRUSR -> "S_IRUSR"
  | S_IWUSR -> "S_IWUSR"
  | S_IXUSR -> "S_IXUSR"
  | S_IRGRP -> "S_IRGRP"
  | S_IWGRP -> "S_IWGRP"
  | S_IXGRP -> "S_IXGRP"
  | S_IROTH -> "S_IROTH"
  | S_IWOTH -> "S_IWOTH"
  | S_IXOTH -> "S_IXOTH"

(* Dense index in declaration order, for array-indexed counting. *)
let bit_index = function
  | S_ISUID -> 0
  | S_ISGID -> 1
  | S_ISVTX -> 2
  | S_IRUSR -> 3
  | S_IWUSR -> 4
  | S_IXUSR -> 5
  | S_IRGRP -> 6
  | S_IWGRP -> 7
  | S_IXGRP -> 8
  | S_IROTH -> 9
  | S_IWOTH -> 10
  | S_IXOTH -> 11

let bit_count = 12

let by_name = List.map (fun b -> (bit_name b, b)) all_bits
let bit_of_name s = List.assoc_opt s by_name

let mask = function
  | S_ISUID -> 0o4000
  | S_ISGID -> 0o2000
  | S_ISVTX -> 0o1000
  | S_IRUSR -> 0o400
  | S_IWUSR -> 0o200
  | S_IXUSR -> 0o100
  | S_IRGRP -> 0o40
  | S_IWGRP -> 0o20
  | S_IXGRP -> 0o10
  | S_IROTH -> 0o4
  | S_IWOTH -> 0o2
  | S_IXOTH -> 0o1

let decompose t = List.filter (fun b -> t land mask b <> 0) all_bits
let of_bits bits = List.fold_left (fun acc b -> acc lor mask b) 0 bits
let valid t = t land lnot 0o7777 = 0

let to_octal_string t = Printf.sprintf "0o%o" t

let of_octal_string s =
  let body =
    if String.length s > 2 && String.sub s 0 2 = "0o" then Some (String.sub s 2 (String.length s - 2))
    else None
  in
  match body with
  | None -> None
  | Some digits ->
    (try Some (int_of_string ("0o" ^ digits)) with Failure _ -> None)

let shift = function `Owner -> 6 | `Group -> 3 | `Other -> 0
let readable_by t who = (t lsr shift who) land 0o4 <> 0
let writable_by t who = (t lsr shift who) land 0o2 <> 0
let executable_by t who = (t lsr shift who) land 0o1 <> 0
