type t =
  | E2BIG
  | EACCES
  | EAGAIN
  | EBADF
  | EBUSY
  | EDQUOT
  | EEXIST
  | EFAULT
  | EFBIG
  | EINTR
  | EINVAL
  | EISDIR
  | ELOOP
  | EMFILE
  | ENAMETOOLONG
  | ENFILE
  | ENODEV
  | ENOENT
  | ENOMEM
  | ENOSPC
  | ENOTDIR
  | ENXIO
  | EOVERFLOW
  | EPERM
  | EROFS
  | ETXTBSY
  | EXDEV
  | EIO
  | ENODATA
  | ERANGE
  | ENOTSUP
  | ESPIPE
  | EMLINK
  | ENOTEMPTY

let all =
  [ E2BIG; EACCES; EAGAIN; EBADF; EBUSY; EDQUOT; EEXIST; EFAULT; EFBIG;
    EINTR; EINVAL; EISDIR; ELOOP; EMFILE; ENAMETOOLONG; ENFILE; ENODEV;
    ENOENT; ENOMEM; ENOSPC; ENOTDIR; ENXIO; EOVERFLOW; EPERM; EROFS;
    ETXTBSY; EXDEV; EIO; ENODATA; ERANGE; ENOTSUP; ESPIPE; EMLINK; ENOTEMPTY ]

(* Dense index in declaration order, for array-indexed counting — not
   the kernel code (see [to_code]). *)
let index = function
  | E2BIG -> 0
  | EACCES -> 1
  | EAGAIN -> 2
  | EBADF -> 3
  | EBUSY -> 4
  | EDQUOT -> 5
  | EEXIST -> 6
  | EFAULT -> 7
  | EFBIG -> 8
  | EINTR -> 9
  | EINVAL -> 10
  | EISDIR -> 11
  | ELOOP -> 12
  | EMFILE -> 13
  | ENAMETOOLONG -> 14
  | ENFILE -> 15
  | ENODEV -> 16
  | ENOENT -> 17
  | ENOMEM -> 18
  | ENOSPC -> 19
  | ENOTDIR -> 20
  | ENXIO -> 21
  | EOVERFLOW -> 22
  | EPERM -> 23
  | EROFS -> 24
  | ETXTBSY -> 25
  | EXDEV -> 26
  | EIO -> 27
  | ENODATA -> 28
  | ERANGE -> 29
  | ENOTSUP -> 30
  | ESPIPE -> 31
  | EMLINK -> 32
  | ENOTEMPTY -> 33

let count = 34

let open_manual_domain =
  [ E2BIG; EACCES; EAGAIN; EBADF; EBUSY; EDQUOT; EEXIST; EFAULT; EFBIG;
    EINTR; EINVAL; EISDIR; ELOOP; EMFILE; ENAMETOOLONG; ENFILE; ENODEV;
    ENOENT; ENOMEM; ENOSPC; ENOTDIR; ENXIO; EOVERFLOW; EPERM; EROFS;
    ETXTBSY; EXDEV ]

let to_string = function
  | E2BIG -> "E2BIG"
  | EACCES -> "EACCES"
  | EAGAIN -> "EAGAIN"
  | EBADF -> "EBADF"
  | EBUSY -> "EBUSY"
  | EDQUOT -> "EDQUOT"
  | EEXIST -> "EEXIST"
  | EFAULT -> "EFAULT"
  | EFBIG -> "EFBIG"
  | EINTR -> "EINTR"
  | EINVAL -> "EINVAL"
  | EISDIR -> "EISDIR"
  | ELOOP -> "ELOOP"
  | EMFILE -> "EMFILE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENFILE -> "ENFILE"
  | ENODEV -> "ENODEV"
  | ENOENT -> "ENOENT"
  | ENOMEM -> "ENOMEM"
  | ENOSPC -> "ENOSPC"
  | ENOTDIR -> "ENOTDIR"
  | ENXIO -> "ENXIO"
  | EOVERFLOW -> "EOVERFLOW"
  | EPERM -> "EPERM"
  | EROFS -> "EROFS"
  | ETXTBSY -> "ETXTBSY"
  | EXDEV -> "EXDEV"
  | EIO -> "EIO"
  | ENODATA -> "ENODATA"
  | ERANGE -> "ERANGE"
  | ENOTSUP -> "ENOTSUP"
  | ESPIPE -> "ESPIPE"
  | EMLINK -> "EMLINK"
  | ENOTEMPTY -> "ENOTEMPTY"

let by_name = List.map (fun e -> (to_string e, e)) all

let of_string s = List.assoc_opt s by_name

let to_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EINTR -> 4
  | ENXIO -> 6
  | E2BIG -> 7
  | EBADF -> 9
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EBUSY -> 16
  | EEXIST -> 17
  | EXDEV -> 18
  | EIO -> 5
  | ENODEV -> 19
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | ENFILE -> 23
  | EMFILE -> 24
  | ETXTBSY -> 26
  | EFBIG -> 27
  | ENOSPC -> 28
  | ESPIPE -> 29
  | EROFS -> 30
  | EMLINK -> 31
  | ERANGE -> 34
  | ENAMETOOLONG -> 36
  | ENOTEMPTY -> 39
  | ELOOP -> 40
  | ENODATA -> 61
  | EOVERFLOW -> 75
  | ENOTSUP -> 95
  | EDQUOT -> 122

let describe = function
  | E2BIG -> "Argument list too long"
  | EACCES -> "Permission denied"
  | EAGAIN -> "Resource temporarily unavailable"
  | EBADF -> "Bad file descriptor"
  | EBUSY -> "Device or resource busy"
  | EDQUOT -> "Disk quota exceeded"
  | EEXIST -> "File exists"
  | EFAULT -> "Bad address"
  | EFBIG -> "File too large"
  | EINTR -> "Interrupted system call"
  | EINVAL -> "Invalid argument"
  | EISDIR -> "Is a directory"
  | ELOOP -> "Too many levels of symbolic links"
  | EMFILE -> "Too many open files"
  | ENAMETOOLONG -> "File name too long"
  | ENFILE -> "Too many open files in system"
  | ENODEV -> "No such device"
  | ENOENT -> "No such file or directory"
  | ENOMEM -> "Cannot allocate memory"
  | ENOSPC -> "No space left on device"
  | ENOTDIR -> "Not a directory"
  | ENXIO -> "No such device or address"
  | EOVERFLOW -> "Value too large for defined data type"
  | EPERM -> "Operation not permitted"
  | EROFS -> "Read-only file system"
  | ETXTBSY -> "Text file busy"
  | EIO -> "Input/output error"
  | EXDEV -> "Invalid cross-device link"
  | ENODATA -> "No data available"
  | ERANGE -> "Numerical result out of range"
  | ENOTSUP -> "Operation not supported"
  | ESPIPE -> "Illegal seek"
  | EMLINK -> "Too many links"
  | ENOTEMPTY -> "Directory not empty"

let compare = Stdlib.compare
let equal a b = compare a b = 0
