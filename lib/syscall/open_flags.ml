type flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_NOCTTY
  | O_TRUNC
  | O_APPEND
  | O_NONBLOCK
  | O_DSYNC
  | O_ASYNC
  | O_DIRECT
  | O_LARGEFILE
  | O_DIRECTORY
  | O_NOFOLLOW
  | O_NOATIME
  | O_CLOEXEC
  | O_SYNC
  | O_RSYNC
  | O_PATH
  | O_TMPFILE

type t = int

let all =
  [ O_RDONLY; O_WRONLY; O_RDWR; O_CREAT; O_EXCL; O_NOCTTY; O_TRUNC;
    O_APPEND; O_NONBLOCK; O_DSYNC; O_ASYNC; O_DIRECT; O_LARGEFILE;
    O_DIRECTORY; O_NOFOLLOW; O_NOATIME; O_CLOEXEC; O_SYNC; O_RSYNC;
    O_PATH; O_TMPFILE ]

let flag_name = function
  | O_RDONLY -> "O_RDONLY"
  | O_WRONLY -> "O_WRONLY"
  | O_RDWR -> "O_RDWR"
  | O_CREAT -> "O_CREAT"
  | O_EXCL -> "O_EXCL"
  | O_NOCTTY -> "O_NOCTTY"
  | O_TRUNC -> "O_TRUNC"
  | O_APPEND -> "O_APPEND"
  | O_NONBLOCK -> "O_NONBLOCK"
  | O_DSYNC -> "O_DSYNC"
  | O_ASYNC -> "O_ASYNC"
  | O_DIRECT -> "O_DIRECT"
  | O_LARGEFILE -> "O_LARGEFILE"
  | O_DIRECTORY -> "O_DIRECTORY"
  | O_NOFOLLOW -> "O_NOFOLLOW"
  | O_NOATIME -> "O_NOATIME"
  | O_CLOEXEC -> "O_CLOEXEC"
  | O_SYNC -> "O_SYNC"
  | O_RSYNC -> "O_RSYNC"
  | O_PATH -> "O_PATH"
  | O_TMPFILE -> "O_TMPFILE"

(* Dense index in declaration order, for array-indexed counting. *)
let flag_index = function
  | O_RDONLY -> 0
  | O_WRONLY -> 1
  | O_RDWR -> 2
  | O_CREAT -> 3
  | O_EXCL -> 4
  | O_NOCTTY -> 5
  | O_TRUNC -> 6
  | O_APPEND -> 7
  | O_NONBLOCK -> 8
  | O_DSYNC -> 9
  | O_ASYNC -> 10
  | O_DIRECT -> 11
  | O_LARGEFILE -> 12
  | O_DIRECTORY -> 13
  | O_NOFOLLOW -> 14
  | O_NOATIME -> 15
  | O_CLOEXEC -> 16
  | O_SYNC -> 17
  | O_RSYNC -> 18
  | O_PATH -> 19
  | O_TMPFILE -> 20

let flag_count = 21

let by_name = List.map (fun f -> (flag_name f, f)) all
let flag_of_name s = List.assoc_opt s by_name

let accmode_mask = 0o3

(* Linux x86-64 values.  O_SYNC = 0o4010000 (includes the O_DSYNC bit);
   O_TMPFILE = 0o20200000 (includes the O_DIRECTORY bit). *)
let bit = function
  | O_RDONLY -> 0o0
  | O_WRONLY -> 0o1
  | O_RDWR -> 0o2
  | O_CREAT -> 0o100
  | O_EXCL -> 0o200
  | O_NOCTTY -> 0o400
  | O_TRUNC -> 0o1000
  | O_APPEND -> 0o2000
  | O_NONBLOCK -> 0o4000
  | O_DSYNC -> 0o10000
  | O_ASYNC -> 0o20000
  | O_DIRECT -> 0o40000
  | O_LARGEFILE -> 0o100000
  | O_DIRECTORY -> 0o200000
  | O_NOFOLLOW -> 0o400000
  | O_NOATIME -> 0o1000000
  | O_CLOEXEC -> 0o2000000
  | O_SYNC -> 0o4010000
  | O_RSYNC -> 0o4010000
  | O_PATH -> 0o10000000
  | O_TMPFILE -> 0o20200000

let is_access_mode = function O_RDONLY | O_WRONLY | O_RDWR -> true | _ -> false

let of_flags flags =
  let modes = List.filter is_access_mode flags in
  (match modes with
   | [] | [ _ ] -> ()
   | _ -> invalid_arg "Open_flags.of_flags: multiple access modes");
  List.fold_left (fun acc f -> acc lor bit f) 0 flags

let access_mode t =
  match t land accmode_mask with
  | 0o0 -> O_RDONLY
  | 0o1 -> O_WRONLY
  | _ -> O_RDWR

(* O_RSYNC shares O_SYNC's encoding on Linux, so decomposition reports
   O_SYNC for that bit pattern; O_RSYNC is only observable when built with
   of_flags and is normalized to O_SYNC.  The sync bits subsume O_DSYNC and
   O_TMPFILE subsumes O_DIRECTORY. *)
let decompose t =
  let mode = access_mode t in
  let sync_set = t land bit O_SYNC = bit O_SYNC in
  let tmpfile_set = t land bit O_TMPFILE = bit O_TMPFILE in
  let others =
    List.filter
      (fun f ->
        match f with
        | O_RDONLY | O_WRONLY | O_RDWR | O_RSYNC -> false
        | O_DSYNC -> (not sync_set) && t land bit O_DSYNC <> 0
        | O_SYNC -> sync_set
        | O_DIRECTORY -> (not tmpfile_set) && t land bit O_DIRECTORY <> 0
        | O_TMPFILE -> tmpfile_set
        | f -> t land bit f <> 0)
      all
  in
  mode :: others

let has t f = List.mem f (decompose t)
let readable t = access_mode t <> O_WRONLY
let writable t = access_mode t <> O_RDONLY

let to_string t = String.concat "|" (List.map flag_name (decompose t))

let of_string s =
  if s = "0" then Some 0
  else begin
    let parts = String.split_on_char '|' s in
    let rec go acc = function
      | [] -> Some acc
      | name :: rest ->
        (match flag_of_name name with
         | Some f -> go (acc lor bit f) rest
         | None -> None)
    in
    go 0 parts
  end

let count_flags t = List.length (decompose t)
