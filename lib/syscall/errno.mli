(** POSIX error codes returned by the modeled file-system syscalls.

    The first 27 constructors are exactly the error codes of the
    [open(2)] manual page that Figure 4 uses as its output-partition
    domain; the remainder are codes other modeled syscalls can return
    ([ENODATA] for xattrs, [ESPIPE] for seeks on pipes, ...). *)

type t =
  (* open(2) manual-page domain (Figure 4, alphabetical by name) *)
  | E2BIG
  | EACCES
  | EAGAIN
  | EBADF
  | EBUSY
  | EDQUOT
  | EEXIST
  | EFAULT
  | EFBIG
  | EINTR
  | EINVAL
  | EISDIR
  | ELOOP
  | EMFILE
  | ENAMETOOLONG
  | ENFILE
  | ENODEV
  | ENOENT
  | ENOMEM
  | ENOSPC
  | ENOTDIR
  | ENXIO
  | EOVERFLOW
  | EPERM
  | EROFS
  | ETXTBSY
  | EXDEV
  (* additional codes used by other modeled syscalls *)
  | EIO
  | ENODATA
  | ERANGE
  | ENOTSUP
  | ESPIPE
  | EMLINK
  | ENOTEMPTY

val all : t list
(** Every modeled error code, in declaration order. *)

val open_manual_domain : t list
(** The 27 codes of the [open(2)] manual page — Figure 4's x-axis. *)

val to_string : t -> string
(** Symbolic name, e.g. ["ENOENT"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val to_code : t -> int
(** The conventional Linux numeric value (negated on the syscall ABI). *)

val describe : t -> string
(** One-line human description, as in [errno(3)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val index : t -> int
(** Dense index in declaration order, in [[0, count)] — an array offset
    for the compiled partition plan, unrelated to the kernel's numeric
    code ({!to_code}). *)

val count : int
