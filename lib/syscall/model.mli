(** The 27 modeled file-system syscalls.

    The paper selects 27 file-system-related syscalls out of ~400 Linux
    syscalls: 11 {e base} syscalls ([open], [read], [write], [lseek],
    [truncate], [mkdir], [chmod], [close], [chdir], [setxattr],
    [getxattr]) plus their {e variants} ([openat], [creat], [pread64],
    ...).  Variants share almost the same kernel implementation, so
    IOCov's variant handler merges their input and output spaces
    (Section 3, "IOCov implementation"). *)

(** The 11 base syscalls. *)
type base =
  | Open
  | Read
  | Write
  | Lseek
  | Truncate
  | Mkdir
  | Chmod
  | Close
  | Chdir
  | Setxattr
  | Getxattr

(** The 27 syscall variants. *)
type variant =
  | Sys_open
  | Sys_openat
  | Sys_creat
  | Sys_openat2
  | Sys_read
  | Sys_pread64
  | Sys_readv
  | Sys_write
  | Sys_pwrite64
  | Sys_writev
  | Sys_lseek
  | Sys_truncate
  | Sys_ftruncate
  | Sys_mkdir
  | Sys_mkdirat
  | Sys_chmod
  | Sys_fchmod
  | Sys_fchmodat
  | Sys_close
  | Sys_chdir
  | Sys_fchdir
  | Sys_setxattr
  | Sys_lsetxattr
  | Sys_fsetxattr
  | Sys_getxattr
  | Sys_lgetxattr
  | Sys_fgetxattr

val all_bases : base list
val all_variants : variant list

val base_of_variant : variant -> base
val variants_of_base : base -> variant list

(** {2 Dense integer indexes}

    Constructors numbered in declaration order, for array-indexed
    counting (the compiled partition plan) and monomorphic comparison.
    [compare_base]/[compare_variant] order exactly as the polymorphic
    [Stdlib.compare] they replace. *)

val base_index : base -> int
(** In [[0, base_count)]. *)

val base_count : int

val variant_index : variant -> int
(** In [[0, variant_count)]. *)

val variant_count : int

val compare_base : base -> base -> int
val compare_variant : variant -> variant -> int

val base_name : base -> string
(** Lower-case base name, e.g. ["open"]. *)

val base_of_name : string -> base option

val variant_name : variant -> string
(** Kernel tracepoint-style name, e.g. ["pread64"]. *)

val variant_of_name : string -> variant option

(** The object a path- or descriptor-taking syscall operates on.  [Path]
    variants resolve a pathname; [Fd] variants take an open descriptor. *)
type target =
  | Path of string
  | Fd of int

(** A traced syscall invocation.  The payload carries exactly the
    arguments IOCov partitions; buffer contents are synthesized by the
    file system (IOCov never inspects user data, only sizes).  The
    [variant] field selects the concrete syscall; smart constructors below
    enforce variant/payload consistency (e.g. only [pread64] carries an
    explicit offset). *)
type call =
  | Open_call of { variant : variant; path : string; flags : Open_flags.t; mode : Mode.t }
  | Read_call of { variant : variant; fd : int; count : int; offset : int option }
  | Write_call of { variant : variant; fd : int; count : int; offset : int option }
  | Lseek_call of { fd : int; offset : int; whence : Whence.t }
  | Truncate_call of { variant : variant; target : target; length : int }
  | Mkdir_call of { variant : variant; path : string; mode : Mode.t }
  | Chmod_call of { variant : variant; target : target; mode : Mode.t }
  | Close_call of { fd : int }
  | Chdir_call of { target : target }
  | Setxattr_call of
      { variant : variant; target : target; name : string; size : int; flags : Xattr_flag.t }
  | Getxattr_call of { variant : variant; target : target; name : string; size : int }

(** Syscall outcome: the raw return value on success ([Ret]) or the error
    code from the kernel's [-errno] convention ([Err]). *)
type outcome =
  | Ret of int
  | Err of Errno.t

val variant_of_call : call -> variant
val base_of_call : call -> base

(** {2 Smart constructors}

    Each checks that the chosen variant belongs to the call's base and
    that the payload fits the variant's prototype. *)

val open_ : ?variant:variant -> ?mode:Mode.t -> flags:Open_flags.t -> string -> call
val read : ?variant:variant -> ?offset:int -> fd:int -> count:int -> unit -> call
val write : ?variant:variant -> ?offset:int -> fd:int -> count:int -> unit -> call
val lseek : fd:int -> offset:int -> whence:Whence.t -> call
val truncate : ?variant:variant -> target:target -> length:int -> unit -> call
val mkdir : ?variant:variant -> ?mode:Mode.t -> string -> call
val chmod : ?variant:variant -> target:target -> mode:Mode.t -> unit -> call
val close : int -> call
val chdir : target -> call
val setxattr :
  ?variant:variant -> ?flags:Xattr_flag.t -> target:target -> name:string -> size:int ->
  unit -> call
val getxattr : ?variant:variant -> target:target -> name:string -> size:int -> unit -> call

(** {2 Manual-page output domains} *)

val errno_domain : base -> Errno.t list
(** The error codes the syscall's manual page documents — the denominator
    of output coverage (the paper notes Figure 4's x-axis comes "from the
    open manual page"). *)

val returns_byte_count : base -> bool
(** True for syscalls whose successful return is a byte count ([read],
    [write], [getxattr]) or a file offset/length ([lseek]) — their success
    outputs are partitioned by powers of two (Section 3). *)

(** {2 Serialization}

    A compact single-line form used by the trace format:
    [name(key=value, ...)], with strings double-quoted and
    backslash-escaped. *)

val call_to_string : call -> string
val call_of_string : string -> (call, string) result
val outcome_to_string : outcome -> string
val outcome_of_string : string -> (outcome, string) result

val pp_call : Format.formatter -> call -> unit
val pp_outcome : Format.formatter -> outcome -> unit
