(** The [open(2)] flags argument — the paper's canonical bitmap argument.

    Figure 2 partitions the [open] input space by individual flag; Table 1
    analyzes how many flags are combined per call.  A flag set is stored as
    an [int] bitmask (as on the syscall ABI) and decomposed into the
    21-flag domain listed on the figure's x-axis.  [O_RDONLY] is value 0
    inside the 2-bit access-mode field, so decomposition reports exactly
    one access mode per call. *)

type flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_NOCTTY
  | O_TRUNC
  | O_APPEND
  | O_NONBLOCK
  | O_DSYNC
  | O_ASYNC
  | O_DIRECT
  | O_LARGEFILE
  | O_DIRECTORY
  | O_NOFOLLOW
  | O_NOATIME
  | O_CLOEXEC
  | O_SYNC
  | O_RSYNC
  | O_PATH
  | O_TMPFILE

type t = int
(** A flag set, encoded as on the Linux ABI. *)

val all : flag list
(** The 21-flag domain, in Figure 2's x-axis order. *)

val flag_name : flag -> string

val flag_index : flag -> int
(** Dense index in declaration order, in [[0, flag_count)] — an array
    offset for the compiled partition plan. *)

val flag_count : int
val flag_of_name : string -> flag option

val bit : flag -> int
(** ABI bit pattern of a single flag.  Access modes occupy the low 2 bits;
    [O_SYNC] includes the [O_DSYNC] bit and [O_TMPFILE] the [O_DIRECTORY]
    bit, exactly as on Linux. *)

val of_flags : flag list -> t
(** Combine flags into a mask.  At most one access mode may be given;
    none defaults to [O_RDONLY]. *)

val decompose : t -> flag list
(** Decompose a mask into its flag domain members: exactly one access mode
    plus every set non-access flag.  [O_SYNC] masks [O_DSYNC] (a mask with
    both bits reports only [O_SYNC]); [O_TMPFILE] masks [O_DIRECTORY]. *)

val access_mode : t -> flag
(** The call's access mode: [O_RDONLY], [O_WRONLY], or [O_RDWR].
    The undefined ABI encoding 3 is reported as [O_RDWR]. *)

val has : t -> flag -> bool
(** [has t f] iff [f] appears in [decompose t]. *)

val readable : t -> bool
(** Access mode allows reading ([O_RDONLY] or [O_RDWR]). *)

val writable : t -> bool
(** Access mode allows writing ([O_WRONLY] or [O_RDWR]). *)

val to_string : t -> string
(** E.g. ["O_WRONLY|O_CREAT|O_TRUNC"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts ["0"] for a bare [O_RDONLY]. *)

val count_flags : t -> int
(** Number of domain flags in the set — Table 1's column index
    (a bare [O_RDONLY] counts as 1 flag "used alone"). *)
