open Iocov_syscall

type fd_entry = {
  mutable fd_ino : int;
  fd_flags : Open_flags.t;
  mutable fd_offset : int;
  fd_pathname : string option;  (* best-effort, for trace reconstruction *)
}

type durable = { d_nodes : (int, Node.t) Hashtbl.t }

type t = {
  cfg : Config.t;
  nodes : (int, Node.t) Hashtbl.t;
  mutable next_ino : int;
  root : int;
  mutable cwd : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable used : int;                      (* blocks in use *)
  quota : (int, int ref) Hashtbl.t;        (* uid -> blocks charged *)
  mutable system_file_load : int;          (* foreign open files (ENFILE) *)
  mutable clock : int;
  mutable uid : int;
  mutable gid : int;
  mutable read_only : bool;
  mutable injected : (Errno.t * Model.base option) list;
  mutable durable : durable;
  mutable journal : Journal.t option;
}

let config t = t.cfg

let set_journal t j = t.journal <- j
let journal t = t.journal

(* Journal hook: a no-op unless a log is attached, so the hot path pays
   one option match. *)
let jot t r = match t.journal with Some j -> Journal.append j r | None -> ()

let has_fault t f = List.mem f t.cfg.Config.faults

(* Fault accounting: "armed" when a file system is created with the
   fault planted, "fired" each time the faulty branch actually alters
   an outcome.  At call sites, [fault_fires] must be the last conjunct
   so it counts only decisions the fault really made. *)
let fault_counter kind f =
  Iocov_obs.Metrics.counter Iocov_obs.Metrics.default
    (Printf.sprintf "iocov_fault_%s_total" kind)
    ~labels:[ ("fault", Fault.to_string f) ]
    ~help:(Printf.sprintf "Injected faults %s." kind)

let fault_fires t f =
  has_fault t f
  && begin
    Iocov_obs.Metrics.Counter.incr (fault_counter "fired" f);
    true
  end

let get t ino =
  match Hashtbl.find_opt t.nodes ino with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Fs.get: dangling inode %d" ino)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* --- block accounting ---
   Every inode costs one block; regular-file data is charged by logical
   size (a non-sparse accounting model: holes are charged, which keeps
   ENOSPC/EDQUOT monotone in file size). *)

let blocks_of_size t size = (size + t.cfg.Config.block_size - 1) / t.cfg.Config.block_size

let quota_used t uid =
  match Hashtbl.find_opt t.quota uid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.quota uid r;
    r

(* [charge] checks device capacity before quota, as Linux does; the owner
   (node uid), not the caller, pays the quota. *)
let charge t ~owner delta =
  if delta <= 0 then begin
    t.used <- t.used + delta;
    let q = quota_used t owner in
    q := !q + delta;
    Ok ()
  end
  else if t.used + delta > t.cfg.Config.total_blocks then Error Errno.ENOSPC
  else begin
    match t.cfg.Config.quota_blocks with
    | Some limit when owner <> 0 && !(quota_used t owner) + delta > limit ->
      Error Errno.EDQUOT
    | _ ->
      t.used <- t.used + delta;
      let q = quota_used t owner in
      q := !q + delta;
      Ok ()
  end

(* --- permissions --- *)

let perm_who t (node : Node.t) =
  if t.uid = node.uid then `Owner else if t.gid = node.gid then `Group else `Other

let may_read t node = t.uid = 0 || Mode.readable_by node.Node.mode (perm_who t node)
let may_write t node = t.uid = 0 || Mode.writable_by node.Node.mode (perm_who t node)
let may_exec t node = t.uid = 0 || Mode.executable_by node.Node.mode (perm_who t node)
let is_owner t node = t.uid = 0 || t.uid = node.Node.uid

(* --- node allocation / release --- *)

let alloc_node t ~body ~mode =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let node = Node.create ~ino ~body ~mode ~uid:t.uid ~gid:t.gid ~now:(tick t) in
  Hashtbl.add t.nodes ino node;
  node

let fd_refs t ino =
  Hashtbl.fold (fun _ e acc -> if e.fd_ino = ino then acc + 1 else acc) t.fds 0

let release_node t (node : Node.t) =
  Hashtbl.remove t.nodes node.ino;
  let data_blocks = if Node.is_reg node then blocks_of_size t node.size else 0 in
  (* releasing cannot fail *)
  ignore (charge t ~owner:node.uid (-(1 + data_blocks)))

(* Called when a link went away or an fd closed: frees the inode once it is
   both unreferenced by the namespace and by descriptors. *)
let maybe_free t (node : Node.t) =
  if node.nlink <= 0 && fd_refs t node.ino = 0 && node.ino <> t.root then
    release_node t node

(* --- path resolution --- *)

let ( let* ) = Result.bind

let parse_path t s =
  Path.parse ~max_name_len:t.cfg.Config.max_name_len ~max_path_len:t.cfg.Config.max_path_len s

(* Walk components from [ino].  [hops] counts symlink traversals across the
   whole lookup (ELOOP past the limit).  [follow_last] controls whether a
   symlink in final position is resolved. *)
let rec step t ino comps ~follow_last ~hops =
  match comps with
  | [] -> Ok ino
  | name :: rest ->
    let node = get t ino in
    (match node.Node.body with
     | Node.Dir entries ->
       if not (may_exec t node) then Error Errno.EACCES
       else begin
         match Hashtbl.find_opt entries name with
         | None -> Error Errno.ENOENT
         | Some child_ino ->
           let child = get t child_ino in
           (match child.Node.body with
            | Node.Symlink target when rest <> [] || follow_last ->
              if hops >= t.cfg.Config.max_symlink_depth then Error Errno.ELOOP
              else
                let* p = parse_path t target in
                let start = if p.Path.absolute then t.root else ino in
                step t start (p.Path.components @ rest) ~follow_last ~hops:(hops + 1)
            | _ -> step t child_ino rest ~follow_last ~hops)
       end
     | Node.Symlink _ -> Error Errno.ELOOP  (* unreachable: resolved above *)
     | _ -> Error Errno.ENOTDIR)

let resolve ?(follow_last = true) t path =
  let* p = parse_path t path in
  let start = if p.Path.absolute then t.root else t.cwd in
  let* ino = step t start p.Path.components ~follow_last ~hops:0 in
  if p.Path.trailing_slash && not (Node.is_dir (get t ino)) then Error Errno.ENOTDIR
  else Ok ino

(* Resolve all but the final component; answers the directory inode and the
   final name.  The root path answers [(root, ".")]. *)
let resolve_parent t path =
  let* p = parse_path t path in
  let start = if p.Path.absolute then t.root else t.cwd in
  match List.rev p.Path.components with
  | [] -> Ok (t.root, ".")
  | last :: rev_prefix ->
    let* dir_ino = step t start (List.rev rev_prefix) ~follow_last:true ~hops:0 in
    let dir = get t dir_ino in
    if not (Node.is_dir dir) then Error Errno.ENOTDIR
    else if not (may_exec t dir) then Error Errno.EACCES
    else Ok (dir_ino, last)

let lookup_in t dir_ino name =
  match name with
  | "." -> Some dir_ino
  | name -> Hashtbl.find_opt (Node.dir_entries (get t dir_ino)) name

(* --- construction --- *)

let create ?(config = Config.default) () =
  let t =
    {
      cfg = config;
      nodes = Hashtbl.create 256;
      next_ino = 2;  (* ext2 tradition: root is inode 2 *)
      root = 2;
      cwd = 2;
      fds = Hashtbl.create 16;
      used = 0;
      quota = Hashtbl.create 4;
      system_file_load = 0;
      clock = 0;
      uid = config.Config.uid;
      gid = config.Config.gid;
      read_only = config.Config.read_only;
      injected = [];
      durable = { d_nodes = Hashtbl.create 16 };
      journal = None;
    }
  in
  List.iter
    (fun f -> Iocov_obs.Metrics.Counter.incr (fault_counter "armed" f))
    config.Config.faults;
  let entries = Hashtbl.create 8 in
  let root =
    Node.create ~ino:t.root ~body:(Node.Dir entries) ~mode:0o755 ~uid:0 ~gid:0 ~now:0
  in
  Hashtbl.add entries "." t.root;
  Hashtbl.add entries ".." t.root;
  Hashtbl.add t.nodes t.root root;
  t.next_ino <- 3;
  ignore (charge t ~owner:0 1);
  (* the fresh file system is durable, as after mkfs *)
  let d_nodes = Hashtbl.create 16 in
  Hashtbl.add d_nodes t.root (Node.copy root);
  t.durable <- { d_nodes };
  t

(* --- directory entry helpers --- *)

let add_entry t dir_ino name child =
  let dir = get t dir_ino in
  Hashtbl.replace (Node.dir_entries dir) name child.Node.ino;
  dir.Node.mtime <- tick t;
  if Node.is_dir child then begin
    Hashtbl.replace (Node.dir_entries child) "." child.Node.ino;
    Hashtbl.replace (Node.dir_entries child) ".." dir_ino;
    dir.Node.nlink <- dir.Node.nlink + 1
  end

let remove_entry t dir_ino name child =
  let dir = get t dir_ino in
  Hashtbl.remove (Node.dir_entries dir) name;
  dir.Node.mtime <- tick t;
  if Node.is_dir child then dir.Node.nlink <- dir.Node.nlink - 1

(* --- durability / crash model --- *)

let persist_node t (node : Node.t) =
  let copy =
    if Node.is_reg node && fault_fires t Fault.Fsync_skips_data then begin
      (* buggy fsync: metadata (size, mode, ...) persists, data does not —
         the durable extents stay whatever they were. *)
      let c = Node.copy node in
      (match (Hashtbl.find_opt t.durable.d_nodes node.ino, c.Node.body) with
       | Some { Node.body = Node.Reg old; _ }, Node.Reg fresh ->
         fresh.extents <- old.extents
       | _, Node.Reg fresh -> fresh.extents <- []
       | _ -> ());
      c
    end
    else Node.copy node
  in
  Hashtbl.replace t.durable.d_nodes node.ino copy

let sync_all t =
  let d_nodes = Hashtbl.create (Hashtbl.length t.nodes) in
  Hashtbl.iter (fun ino node -> Hashtbl.add d_nodes ino (Node.copy node)) t.nodes;
  t.durable <- { d_nodes }

let crash_recover t =
  let d = t.durable in
  Hashtbl.reset t.nodes;
  Hashtbl.reset t.fds;
  Hashtbl.reset t.quota;
  t.used <- 0;
  t.cwd <- t.root;
  (* Copy the durable nodes reachable from the root.  A durable directory
     entry may name an inode that was never fsynced: recover it as an
     empty file (metadata journaled, data lost). *)
  let next_ino = ref t.next_ino in
  let rec restore ino =
    if not (Hashtbl.mem t.nodes ino) then begin
      let node =
        match Hashtbl.find_opt d.d_nodes ino with
        | Some n -> Node.copy n
        | None ->
          Node.create ~ino ~body:(Node.Reg { extents = [] }) ~mode:0o644 ~uid:0
            ~gid:0 ~now:t.clock
      in
      Hashtbl.add t.nodes ino node;
      let data = if Node.is_reg node then blocks_of_size t node.size else 0 in
      ignore (charge t ~owner:node.uid (1 + data));
      (match node.Node.body with
       | Node.Dir entries ->
         Hashtbl.iter (fun name child -> if name <> "." && name <> ".." then restore child) entries
       | _ -> ())
    end
  in
  restore t.root;
  t.next_ino <- max t.next_ino !next_ino

(* --- fd table --- *)

let find_fd t fd = Hashtbl.find_opt t.fds fd

let alloc_fd t entry =
  let rec first_free fd = if Hashtbl.mem t.fds fd then first_free (fd + 1) else fd in
  let fd = first_free 3 in
  Hashtbl.add t.fds fd entry;
  fd

(* --- environment injection --- *)

let inject_errno t ?base e = t.injected <- t.injected @ [ (e, base) ]

let take_injected t base =
  let rec go acc = function
    | [] -> None
    | (e, None) :: rest ->
      t.injected <- List.rev_append acc rest;
      Some e
    | (e, Some b) :: rest when b = base ->
      t.injected <- List.rev_append acc rest;
      Some e
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] t.injected

(* --- syscall implementations --- *)

let err e = Model.Err e
let ret n = Model.Ret n

let fill_byte t = Char.chr (Char.code 'a' + (t.clock mod 26))

let do_open t ~path ~flags ~mode =
  let open Open_flags in
  let wants_write = writable flags || has flags O_TRUNC in
  let tmpfile = has flags O_TMPFILE in
  (* a trailing slash commits the final component to being a directory *)
  let trailing_slash = String.length path > 1 && path.[String.length path - 1] = '/' in
  if tmpfile && not (writable flags) then err Errno.EINVAL
  else begin
    match resolve_parent t path with
    | Error e -> err e
    | Ok (dir_ino, name) ->
      let existing =
        match lookup_in t dir_ino name with
        | Some ino ->
          (* final symlink handling *)
          let node = get t ino in
          if Node.is_symlink node && not (has flags O_NOFOLLOW) then
            (match step t dir_ino [ name ] ~follow_last:true ~hops:0 with
             | Ok ino' -> `Found ino'
             | Error e -> `Err e)
          else `Found ino
        | None -> `Absent
      in
      (match existing with
       | `Err e -> err e
       | `Absent when tmpfile -> err Errno.ENOTDIR (* path must name a dir *)
       | `Absent ->
         if not (has flags O_CREAT) then err Errno.ENOENT
         else if trailing_slash then err Errno.EISDIR (* cannot creat "x/" *)
         else if name = "." || name = ".." then err Errno.EISDIR
         else if t.read_only then err Errno.EROFS
         else begin
           let dir = get t dir_ino in
           if not (may_write t dir && may_exec t dir) then err Errno.EACCES
           else if Hashtbl.length t.fds >= t.cfg.Config.max_open_files then err Errno.EMFILE
           else if
             Hashtbl.length t.fds + t.system_file_load >= t.cfg.Config.max_system_files
           then err Errno.ENFILE
           else
             match charge t ~owner:t.uid 1 with
             | Error e -> err e
             | Ok () ->
               let mode =
                 if mode land 0o7777 <> 0 && fault_fires t Fault.Creat_mode_ignored
                 then 0
                 else mode land 0o7777
               in
               let node = alloc_node t ~body:(Node.Reg { extents = [] }) ~mode in
               add_entry t dir_ino name node;
               jot t
                 (Journal.Create
                    { dir = dir_ino; name; ino = node.Node.ino; kind = Journal.K_reg;
                      mode = node.Node.mode; uid = t.uid; gid = t.gid });
               let entry =
                 { fd_ino = node.Node.ino; fd_flags = flags; fd_offset = 0;
                   fd_pathname = Some path }
               in
               ret (alloc_fd t entry)
         end
       | `Found ino ->
         let node = get t ino in
         if has flags O_CREAT && has flags O_EXCL then err Errno.EEXIST
         else if node.Node.busy then err Errno.EBUSY
         else if Node.is_symlink node then err Errno.ELOOP (* O_NOFOLLOW hit a link *)
         else if trailing_slash && not (Node.is_dir node) then err Errno.ENOTDIR
         else if has flags O_DIRECTORY && not (Node.is_dir node) then err Errno.ENOTDIR
         else begin
           match node.Node.body with
           | Node.Device { driverless = true } -> err Errno.ENXIO
           | Node.Device { driverless = false } -> err Errno.ENODEV
           | Node.Fifo when has flags O_NONBLOCK && access_mode flags = O_WRONLY ->
             (* no reader is ever present in the single-process model *)
             err Errno.ENXIO
           | Node.Dir _ when wants_write && not tmpfile -> err Errno.EISDIR
           | _ ->
             if tmpfile && not (Node.is_dir node) then err Errno.ENOTDIR
             else if t.read_only && wants_write then err Errno.EROFS
             else if node.Node.executing && writable flags then err Errno.ETXTBSY
             else if node.Node.immutable_ && wants_write then err Errno.EPERM
             else if
               (not (has flags O_PATH))
               && ((readable flags && not (may_read t node))
                   || (writable flags && not (may_write t node)))
             then err Errno.EACCES
             else if
               Node.is_reg node
               && node.Node.size >= t.cfg.Config.large_file_threshold
               && ((not (has flags O_LARGEFILE))
                   || fault_fires t Fault.Largefile_eoverflow)
             then err Errno.EOVERFLOW
             else if Hashtbl.length t.fds >= t.cfg.Config.max_open_files then
               err Errno.EMFILE
             else if
               Hashtbl.length t.fds + t.system_file_load >= t.cfg.Config.max_system_files
             then err Errno.ENFILE
             else begin
               if tmpfile then begin
                 (* anonymous file in the directory's file system *)
                 match charge t ~owner:t.uid 1 with
                 | Error e -> err e
                 | Ok () ->
                   let anon =
                     alloc_node t ~body:(Node.Reg { extents = [] }) ~mode:(mode land 0o7777)
                   in
                   anon.Node.nlink <- 0;
                   let entry =
                     { fd_ino = anon.Node.ino; fd_flags = flags; fd_offset = 0;
                       fd_pathname = None }
                   in
                   ret (alloc_fd t entry)
               end
               else begin
                 if has flags O_TRUNC && writable flags && Node.is_reg node then begin
                   (match node.Node.body with
                    | Node.Reg r -> r.extents <- []
                    | _ -> ());
                   ignore (charge t ~owner:node.Node.uid (-(blocks_of_size t node.Node.size)));
                   node.Node.size <- 0;
                   node.Node.mtime <- tick t;
                   jot t (Journal.Size { ino = node.Node.ino; size = 0 })
                 end;
                 let entry =
                   { fd_ino = ino; fd_flags = flags; fd_offset = 0; fd_pathname = Some path }
                 in
                 ret (alloc_fd t entry)
               end
             end
         end)
  end

let do_read t ~fd ~count ~offset =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e ->
    let node = get t e.fd_ino in
    if not (Open_flags.readable e.fd_flags) || Open_flags.has e.fd_flags Open_flags.O_PATH
    then err Errno.EBADF
    else if Node.is_dir node then err Errno.EISDIR
    else begin
      match node.Node.body with
      | Node.Fifo ->
        if Open_flags.has e.fd_flags Open_flags.O_NONBLOCK then err Errno.EAGAIN
        else err Errno.EINTR (* a blocking read in a single-process model *)
      | Node.Device _ -> err Errno.ENXIO
      | Node.Symlink _ -> err Errno.EINVAL
      | Node.Reg _ ->
        (match offset with
         | Some off when off < 0 -> err Errno.EINVAL
         | _ ->
           let pos = match offset with Some off -> off | None -> e.fd_offset in
           let available = max 0 (node.Node.size - pos) in
           let n = min count available in
           if offset = None then e.fd_offset <- e.fd_offset + n;
           ret n)
      | Node.Dir _ -> err Errno.EISDIR
    end

let do_write t ~fd ~count ~offset =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e ->
    let node = get t e.fd_ino in
    if not (Open_flags.writable e.fd_flags) || Open_flags.has e.fd_flags Open_flags.O_PATH
    then err Errno.EBADF
    else begin
      match node.Node.body with
      | Node.Fifo ->
        if Open_flags.has e.fd_flags Open_flags.O_NONBLOCK then err Errno.EAGAIN
        else err Errno.EIO
      | Node.Device _ -> err Errno.ENXIO
      | Node.Symlink _ | Node.Dir _ -> err Errno.EINVAL
      | Node.Reg r ->
        (match offset with
         | Some off when off < 0 -> err Errno.EINVAL
         | _ ->
           if node.Node.immutable_ then err Errno.EPERM
           else if
             Open_flags.has e.fd_flags Open_flags.O_NONBLOCK
             && fault_fires t Fault.Nowait_write_enospc
           then err Errno.ENOSPC
           else if count = 0 then begin
             if offset = None && fault_fires t Fault.Write_zero_advances_offset then
               e.fd_offset <- e.fd_offset + 1;
             ret 0
           end
           else begin
             let pos =
               match offset with
               | Some off -> off
               | None ->
                 if Open_flags.has e.fd_flags Open_flags.O_APPEND then node.Node.size
                 else e.fd_offset
             in
             if pos >= t.cfg.Config.max_file_size then err Errno.EFBIG
             else begin
               (* clamp to the file-size limit: POSIX permits short writes *)
               let count = min count (t.cfg.Config.max_file_size - pos) in
               let new_size = max node.Node.size (pos + count) in
               let delta = blocks_of_size t new_size - blocks_of_size t node.Node.size in
               let charged =
                 match charge t ~owner:node.Node.uid delta with
                 | Ok () -> Ok count
                 | Error e ->
                   (* partial write into the remaining blocks; the room
                      is bounded by whichever of device capacity and the
                      owner's quota is tighter, so a quota-bound write
                      short-writes up to the limit (EDQUOT only on zero
                      progress), mirroring the ENOSPC case *)
                   let free_blocks =
                     let device = t.cfg.Config.total_blocks - t.used in
                     match t.cfg.Config.quota_blocks with
                     | Some limit when node.Node.uid <> 0 ->
                       min device (max 0 (limit - !(quota_used t node.Node.uid)))
                     | _ -> device
                   in
                   let free_bytes = free_blocks * t.cfg.Config.block_size in
                   let room =
                     max 0
                       (blocks_of_size t node.Node.size * t.cfg.Config.block_size - pos)
                   in
                   let possible = min count (room + free_bytes) in
                   if possible <= 0 then Error e
                   else begin
                     let new_size' = max node.Node.size (pos + possible) in
                     let delta' =
                       blocks_of_size t new_size' - blocks_of_size t node.Node.size
                     in
                     match charge t ~owner:node.Node.uid delta' with
                     | Ok () -> Ok possible
                     | Error e -> Error e
                   end
               in
               match charged with
               | Error e ->
                 if e = Errno.ENOSPC && fault_fires t Fault.Enospc_swallowed then ret 0
                 else err e
               | Ok n ->
                 let fill = fill_byte t in
                 let old_size = node.Node.size in
                 r.extents <- Node.write_extents r.extents ~off:pos ~len:n ~fill;
                 node.Node.size <- max node.Node.size (pos + n);
                 node.Node.mtime <- tick t;
                 if offset = None then e.fd_offset <- pos + n;
                 let grown =
                   blocks_of_size t node.Node.size - blocks_of_size t old_size
                 in
                 if grown > 0 then
                   jot t (Journal.Alloc { ino = node.Node.ino; blocks = grown });
                 jot t (Journal.Data { ino = node.Node.ino; off = pos; len = n; fill });
                 if node.Node.size > old_size then
                   jot t (Journal.Size { ino = node.Node.ino; size = node.Node.size });
                 ret n
             end
           end)
    end

let do_lseek t ~fd ~offset ~whence =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e ->
    let node = get t e.fd_ino in
    (match node.Node.body with
     | Node.Fifo -> err Errno.ESPIPE
     | _ ->
       let result =
         match whence with
         | Whence.SEEK_SET -> Ok offset
         | Whence.SEEK_CUR -> Ok (e.fd_offset + offset)
         | Whence.SEEK_END -> Ok (node.Node.size + offset)
         | Whence.SEEK_DATA ->
           (match node.Node.body with
            | Node.Reg r ->
              if offset < 0 || offset >= node.Node.size then Error Errno.ENXIO
              else
                (match Node.next_data r.extents ~off:offset with
                 | Some pos when pos < node.Node.size -> Ok pos
                 | _ -> Error Errno.ENXIO)
            | _ -> Error Errno.EINVAL)
         | Whence.SEEK_HOLE ->
           (match node.Node.body with
            | Node.Reg r ->
              if offset < 0 || offset >= node.Node.size then Error Errno.ENXIO
              else begin
                let hole = min (Node.next_hole r.extents ~off:offset) node.Node.size in
                let hole =
                  if hole = node.Node.size && fault_fires t Fault.Seek_hole_off_by_one then
                    hole + 1
                  else hole
                in
                Ok hole
              end
            | _ -> Error Errno.EINVAL)
       in
       (match result with
        | Error e -> err e
        | Ok pos when pos < 0 -> err Errno.EINVAL
        | Ok pos when pos > 1 lsl 60 -> err Errno.EOVERFLOW
        | Ok pos ->
          e.fd_offset <- pos;
          ret pos))

let truncate_node t (node : Node.t) ~length =
  if length < 0 then err Errno.EINVAL
  else begin
    let limit = t.cfg.Config.max_file_size in
    let allowed =
      length <= limit
      || (length <= limit + 1 && fault_fires t Fault.Truncate_efbig_unchecked)
    in
    if not allowed then err Errno.EFBIG
    else begin
      let delta = blocks_of_size t length - blocks_of_size t node.Node.size in
      match charge t ~owner:node.Node.uid delta with
      | Error e -> err e
      | Ok () ->
        (match node.Node.body with
         | Node.Reg r -> r.extents <- Node.truncate_extents r.extents ~size:length
         | _ -> ());
        node.Node.size <- length;
        node.Node.mtime <- tick t;
        jot t (Journal.Size { ino = node.Node.ino; size = length });
        ret 0
    end
  end

let do_truncate_path t ~path ~length =
  match resolve t path with
  | Error e -> err e
  | Ok ino ->
    let node = get t ino in
    if Node.is_dir node then err Errno.EISDIR
    else if not (Node.is_reg node) then err Errno.EINVAL
    else if t.read_only then err Errno.EROFS
    else if not (may_write t node) then err Errno.EACCES
    else if node.Node.immutable_ then err Errno.EPERM
    else if node.Node.executing then err Errno.ETXTBSY
    else truncate_node t node ~length

let do_ftruncate t ~fd ~length =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e ->
    let node = get t e.fd_ino in
    if not (Open_flags.writable e.fd_flags) then err Errno.EINVAL
    else if not (Node.is_reg node) then err Errno.EINVAL
    else if node.Node.immutable_ then err Errno.EPERM
    else truncate_node t node ~length

let do_mkdir t ~path ~mode =
  if not (Mode.valid mode) then err Errno.EINVAL
  else if t.read_only then err Errno.EROFS
  else begin
    match resolve_parent t path with
    | Error e -> err e
    | Ok (dir_ino, name) ->
      if name = "." || name = ".." then err Errno.EEXIST
      else begin
        match lookup_in t dir_ino name with
        | Some _ -> err Errno.EEXIST
        | None ->
          let dir = get t dir_ino in
          if not (may_write t dir && may_exec t dir) then err Errno.EACCES
          else if dir.Node.nlink >= 65000 then err Errno.EMLINK
          else begin
            match charge t ~owner:t.uid 1 with
            | Error e -> err e
            | Ok () ->
              let mode =
                if mode land 0o7000 <> 0 && fault_fires t Fault.Mkdir_sticky_lost
                then mode land 0o777
                else mode land 0o7777
              in
              let node = alloc_node t ~body:(Node.Dir (Hashtbl.create 8)) ~mode in
              add_entry t dir_ino name node;
              jot t
                (Journal.Create
                   { dir = dir_ino; name; ino = node.Node.ino; kind = Journal.K_dir;
                     mode = node.Node.mode; uid = t.uid; gid = t.gid });
              ret 0
          end
      end
  end

let do_chmod_node t (node : Node.t) ~mode =
  if not (Mode.valid mode) then err Errno.EINVAL
  else if t.read_only then err Errno.EROFS
  else if node.Node.immutable_ then err Errno.EPERM
  else if not (is_owner t node) then begin
    if
      mode lxor node.Node.mode land lnot (Mode.mask Mode.S_ISUID) = 0
      && fault_fires t Fault.Chmod_suid_kept
    then begin
      node.Node.mode <- mode;
      jot t (Journal.Mode { ino = node.Node.ino; mode });
      ret 0
    end
    else err Errno.EPERM
  end
  else begin
    node.Node.mode <- mode;
    node.Node.ctime <- tick t;
    jot t (Journal.Mode { ino = node.Node.ino; mode });
    ret 0
  end

let do_chmod_path t ~path ~mode =
  match resolve t path with
  | Error e -> err e
  | Ok ino -> do_chmod_node t (get t ino) ~mode

let do_chmod_fd t ~fd ~mode =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e -> do_chmod_node t (get t e.fd_ino) ~mode

let do_close t ~fd =
  match find_fd t fd with
  | None -> err Errno.EBADF
  | Some e ->
    Hashtbl.remove t.fds fd;
    let node = get t e.fd_ino in
    maybe_free t node;
    ret 0

let do_chdir t ~target =
  match target with
  | Model.Path path ->
    (match resolve t path with
     | Error e -> err e
     | Ok ino ->
       let node = get t ino in
       if not (Node.is_dir node) then err Errno.ENOTDIR
       else if not (may_exec t node) then err Errno.EACCES
       else begin
         t.cwd <- ino;
         ret 0
       end)
  | Model.Fd fd ->
    (match find_fd t fd with
     | None -> err Errno.EBADF
     | Some e ->
       let node = get t e.fd_ino in
       if not (Node.is_dir node) then err Errno.ENOTDIR
       else if not (may_exec t node) then err Errno.EACCES
       else begin
         t.cwd <- e.fd_ino;
         ret 0
       end)

let xattr_overhead = 32  (* per-entry bookkeeping, as in ext4's entry header *)

let xattr_space_used (node : Node.t) =
  Hashtbl.fold
    (fun name (size, _) acc -> acc + String.length name + size + xattr_overhead)
    node.Node.xattrs 0

let resolve_xattr_target t target ~follow =
  match target with
  | Model.Path path ->
    let* ino = resolve ~follow_last:follow t path in
    Ok (get t ino)
  | Model.Fd fd ->
    (match find_fd t fd with
     | None -> Error Errno.EBADF
     | Some e -> Ok (get t e.fd_ino))

let do_setxattr t ~variant ~target ~name ~size ~flags =
  let follow = variant <> Model.Sys_lsetxattr in
  match resolve_xattr_target t target ~follow with
  | Error e -> err e
  | Ok node ->
    if String.length name > 255 then err Errno.ERANGE
    else if size < 0 then err Errno.EINVAL
    else if String.length name = 0 || not (String.contains name '.') then err Errno.EINVAL
    else begin
      let prefix = List.hd (String.split_on_char '.' name) in
      match prefix with
      | "system" -> err Errno.ENOTSUP
      | "trusted" when t.uid <> 0 -> err Errno.EPERM
      | "user" | "trusted" | "security" ->
        if t.read_only then err Errno.EROFS
        else if size > t.cfg.Config.max_xattr_value then err Errno.E2BIG
        else if not (may_write t node) then err Errno.EACCES
        else begin
          let exists = Hashtbl.mem node.Node.xattrs name in
          match flags with
          | Xattr_flag.XATTR_CREATE when exists -> err Errno.EEXIST
          | Xattr_flag.XATTR_REPLACE when not exists -> err Errno.ENODATA
          | _ ->
            let current = xattr_space_used node in
            let old_cost =
              match Hashtbl.find_opt node.Node.xattrs name with
              | Some (old_size, _) -> String.length name + old_size + xattr_overhead
              | None -> 0
            in
            let new_cost = String.length name + size + xattr_overhead in
            let fits = current - old_cost + new_cost <= t.cfg.Config.xattr_space in
            if fits then begin
              let fill = fill_byte t in
              Hashtbl.replace node.Node.xattrs name (size, fill);
              node.Node.ctime <- tick t;
              jot t (Journal.Xattr { ino = node.Node.ino; name; size; fill });
              ret 0
            end
            else if
              (* Figure 1's bug: at the maximum value size the free-space
                 check is miscomputed and the call wrongly succeeds,
                 recording a wrapped (corrupted) size. *)
              size = t.cfg.Config.max_xattr_value && fault_fires t Fault.Xattr_ibody_overflow
            then begin
              let fill = fill_byte t in
              Hashtbl.replace node.Node.xattrs name (size land 0xFFFF, fill);
              jot t
                (Journal.Xattr { ino = node.Node.ino; name; size = size land 0xFFFF; fill });
              ret 0
            end
            else err Errno.ENOSPC
        end
      | _ -> err Errno.ENOTSUP
    end

let do_getxattr t ~variant ~target ~name ~size =
  let follow = variant <> Model.Sys_lgetxattr in
  match resolve_xattr_target t target ~follow with
  | Error e -> err e
  | Ok node ->
    if String.length name > 255 then err Errno.ERANGE
    else begin
      match Hashtbl.find_opt node.Node.xattrs name with
      | None -> err Errno.ENODATA
      | Some (stored, _) ->
        if not (may_read t node) then err Errno.EACCES
        else if stored = 0 && fault_fires t Fault.Getxattr_empty_enodata then
          err Errno.ENODATA
        else if size = 0 then ret stored (* size query *)
        else if size < stored then err Errno.ERANGE
        else ret stored
    end

let exec t call =
  let base = Model.base_of_call call in
  match take_injected t base with
  | Some e -> err e
  | None ->
    ignore (tick t);
    (match call with
     | Model.Open_call { path; flags; mode; _ } -> do_open t ~path ~flags ~mode
     | Model.Read_call { fd; count; offset; _ } -> do_read t ~fd ~count ~offset
     | Model.Write_call { fd; count; offset; _ } -> do_write t ~fd ~count ~offset
     | Model.Lseek_call { fd; offset; whence } -> do_lseek t ~fd ~offset ~whence
     | Model.Truncate_call { target = Model.Path path; length; _ } ->
       do_truncate_path t ~path ~length
     | Model.Truncate_call { target = Model.Fd fd; length; _ } -> do_ftruncate t ~fd ~length
     | Model.Mkdir_call { path; mode; _ } -> do_mkdir t ~path ~mode
     | Model.Chmod_call { target = Model.Path path; mode; _ } -> do_chmod_path t ~path ~mode
     | Model.Chmod_call { target = Model.Fd fd; mode; _ } -> do_chmod_fd t ~fd ~mode
     | Model.Close_call { fd } -> do_close t ~fd
     | Model.Chdir_call { target } -> do_chdir t ~target
     | Model.Setxattr_call { variant; target; name; size; flags } ->
       do_setxattr t ~variant ~target ~name ~size ~flags
     | Model.Getxattr_call { variant; target; name; size } ->
       do_getxattr t ~variant ~target ~name ~size)

(* --- auxiliary operations --- *)

type aux =
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Symlink of string * string
  | Link of string * string
  | Fsync of int
  | Fdatasync of int
  | Sync
  | Crash

let aux_name = function
  | Unlink _ -> "unlink"
  | Rmdir _ -> "rmdir"
  | Rename _ -> "rename"
  | Symlink _ -> "symlink"
  | Link _ -> "link"
  | Fsync _ -> "fsync"
  | Fdatasync _ -> "fdatasync"
  | Sync -> "sync"
  | Crash -> "crash"

(* Sticky-directory deletion rule: in a sticky directory, only root, the
   file's owner, or the directory's owner may remove an entry. *)
let sticky_blocks t dir (node : Node.t) =
  dir.Node.mode land Mode.mask Mode.S_ISVTX <> 0
  && t.uid <> 0 && t.uid <> node.Node.uid && t.uid <> dir.Node.uid

let do_unlink t path =
  if t.read_only then Error Errno.EROFS
  else
    let* dir_ino, name = resolve_parent t path in
    match lookup_in t dir_ino name with
    | None -> Error Errno.ENOENT
    | Some ino ->
      let node = get t ino in
      let dir = get t dir_ino in
      if Node.is_dir node then Error Errno.EISDIR
      else if not (may_write t dir) then Error Errno.EACCES
      else if node.Node.immutable_ then Error Errno.EPERM
      else if sticky_blocks t dir node then Error Errno.EPERM
      else begin
        remove_entry t dir_ino name node;
        node.Node.nlink <- node.Node.nlink - 1;
        jot t (Journal.Unlink { dir = dir_ino; name; ino });
        maybe_free t node;
        Ok 0
      end

let do_rmdir t path =
  if t.read_only then Error Errno.EROFS
  else
    let* dir_ino, name = resolve_parent t path in
    if name = "." then Error Errno.EINVAL
    else
      match lookup_in t dir_ino name with
      | None -> Error Errno.ENOENT
      | Some ino ->
        let node = get t ino in
        let dir = get t dir_ino in
        if not (Node.is_dir node) then Error Errno.ENOTDIR
        else if ino = t.cwd then Error Errno.EBUSY
        else if
          Hashtbl.fold
            (fun n _ acc -> acc || (n <> "." && n <> ".."))
            (Node.dir_entries node) false
        then Error Errno.ENOTEMPTY
        else if not (may_write t dir) then Error Errno.EACCES
        else if sticky_blocks t dir node then Error Errno.EPERM
        else begin
          remove_entry t dir_ino name node;
          node.Node.nlink <- 0;
          jot t (Journal.Unlink { dir = dir_ino; name; ino });
          maybe_free t node;
          Ok 0
        end

let do_symlink t target linkpath =
  if t.read_only then Error Errno.EROFS
  else
    let* dir_ino, name = resolve_parent t linkpath in
    if lookup_in t dir_ino name <> None then Error Errno.EEXIST
    else begin
      let dir = get t dir_ino in
      if not (may_write t dir && may_exec t dir) then Error Errno.EACCES
      else
        let* () = charge t ~owner:t.uid 1 in
        let node = alloc_node t ~body:(Node.Symlink target) ~mode:0o777 in
        add_entry t dir_ino name node;
        jot t
          (Journal.Create
             { dir = dir_ino; name; ino = node.Node.ino;
               kind = Journal.K_symlink target; mode = 0o777; uid = t.uid; gid = t.gid });
        Ok 0
    end

let do_link t existing newpath =
  if t.read_only then Error Errno.EROFS
  else
    let* src_ino = resolve t existing in
    let src = get t src_ino in
    if Node.is_dir src then Error Errno.EPERM
    else
      let* dir_ino, name = resolve_parent t newpath in
      if lookup_in t dir_ino name <> None then Error Errno.EEXIST
      else begin
        let dir = get t dir_ino in
        if not (may_write t dir && may_exec t dir) then Error Errno.EACCES
        else if src.Node.nlink >= 65000 then Error Errno.EMLINK
        else begin
          Hashtbl.replace (Node.dir_entries dir) name src_ino;
          src.Node.nlink <- src.Node.nlink + 1;
          jot t (Journal.Link { dir = dir_ino; name; ino = src_ino });
          Ok 0
        end
      end

(* Is [ancestor] on the ".." chain of [ino] (inclusive)?  Guards rename
   from detaching a directory into its own subtree. *)
let is_ancestor t ~ancestor ino =
  let rec up ino =
    if ino = ancestor then true
    else if ino = t.root then false
    else
      match Hashtbl.find_opt (Node.dir_entries (get t ino)) ".." with
      | Some parent when parent <> ino -> up parent
      | _ -> false
  in
  up ino

let do_rename t oldpath newpath =
  if t.read_only then Error Errno.EROFS
  else
    let* old_dir, old_name = resolve_parent t oldpath in
    match lookup_in t old_dir old_name with
    | None -> Error Errno.ENOENT
    | Some src_ino ->
      let src = get t src_ino in
      let* new_dir, new_name = resolve_parent t newpath in
      if Node.is_dir src && is_ancestor t ~ancestor:src_ino new_dir then
        Error Errno.EINVAL
      else
      if not (may_write t (get t old_dir) && may_write t (get t new_dir)) then
        Error Errno.EACCES
      else begin
        match lookup_in t new_dir new_name with
        | Some dst_ino when dst_ino = src_ino -> Ok 0
        | Some dst_ino ->
          let dst = get t dst_ino in
          (match (Node.is_dir src, Node.is_dir dst) with
           | true, false -> Error Errno.ENOTDIR
           | false, true -> Error Errno.EISDIR
           | _, true
             when Hashtbl.fold
                    (fun n _ acc -> acc || (n <> "." && n <> ".."))
                    (Node.dir_entries dst) false ->
             Error Errno.ENOTEMPTY
           | _ ->
             remove_entry t new_dir new_name dst;
             dst.Node.nlink <- (if Node.is_dir dst then 0 else dst.Node.nlink - 1);
             maybe_free t dst;
             remove_entry t old_dir old_name src;
             add_entry t new_dir new_name src;
             jot t
               (Journal.Rename
                  { old_dir; old_name; new_dir; new_name; ino = src_ino;
                    replaced = Some dst_ino });
             Ok 0)
        | None ->
          remove_entry t old_dir old_name src;
          add_entry t new_dir new_name src;
          jot t
            (Journal.Rename
               { old_dir; old_name; new_dir; new_name; ino = src_ino; replaced = None });
          Ok 0
      end

let do_fsync t fd ~data_only =
  match find_fd t fd with
  | None -> Error Errno.EBADF
  | Some e ->
    persist_node t (get t e.fd_ino);
    jot t (Journal.Barrier { scope = Journal.Ino e.fd_ino; data_only });
    Ok 0

let exec_aux t aux =
  ignore (tick t);
  match aux with
  | Unlink path -> do_unlink t path
  | Rmdir path -> do_rmdir t path
  | Rename (o, n) -> do_rename t o n
  | Symlink (target, link) -> do_symlink t target link
  | Link (e, n) -> do_link t e n
  | Fsync fd -> do_fsync t fd ~data_only:false
  | Fdatasync fd -> do_fsync t fd ~data_only:true
  | Sync ->
    sync_all t;
    jot t (Journal.Barrier { scope = Journal.All; data_only = false });
    Ok 0
  | Crash ->
    crash_recover t;
    Ok 0

(* --- journal replay: materializing a crash image --- *)

(* Apply one persisted journal record to a (typically fresh) file
   system.  Records referencing inodes or directory entries that never
   became durable are dropped silently — that is precisely what a real
   recovery does with orphaned blocks and dangling dirents.  Charging is
   best-effort: a crash image reflects what reached the device, not what
   an allocator would have admitted. *)
let apply_record t (r : Journal.record) =
  ignore (tick t);
  match r with
  | Journal.Create { dir; name; ino; kind; mode; uid; gid } ->
    if not (Hashtbl.mem t.nodes ino) then begin
      let body =
        match kind with
        | Journal.K_reg -> Node.Reg { extents = [] }
        | Journal.K_dir -> Node.Dir (Hashtbl.create 8)
        | Journal.K_symlink target -> Node.Symlink target
      in
      let node = Node.create ~ino ~body ~mode ~uid ~gid ~now:(tick t) in
      Hashtbl.add t.nodes ino node;
      if ino >= t.next_ino then t.next_ino <- ino + 1;
      ignore (charge t ~owner:uid 1);
      match Hashtbl.find_opt t.nodes dir with
      | Some d when Node.is_dir d -> add_entry t dir name node
      | _ -> ()
    end
  | Journal.Link { dir; name; ino } ->
    (match (Hashtbl.find_opt t.nodes dir, Hashtbl.find_opt t.nodes ino) with
     | Some d, Some node when Node.is_dir d ->
       Hashtbl.replace (Node.dir_entries d) name ino;
       node.Node.nlink <- node.Node.nlink + 1
     | _ -> ())
  | Journal.Unlink { dir; name; ino } ->
    (match Hashtbl.find_opt t.nodes dir with
     | Some d when Node.is_dir d ->
       (match Hashtbl.find_opt (Node.dir_entries d) name with
        | Some cur when cur = ino ->
          let node = get t ino in
          remove_entry t dir name node;
          node.Node.nlink <- (if Node.is_dir node then 0 else node.Node.nlink - 1);
          maybe_free t node
        | _ -> ())
     | _ -> ())
  | Journal.Rename { old_dir; old_name; new_dir; new_name; ino; replaced } ->
    (match (replaced, Hashtbl.find_opt t.nodes new_dir) with
     | Some dst_ino, Some nd when Node.is_dir nd ->
       (match Hashtbl.find_opt (Node.dir_entries nd) new_name with
        | Some cur when cur = dst_ino ->
          let dst = get t dst_ino in
          remove_entry t new_dir new_name dst;
          dst.Node.nlink <- (if Node.is_dir dst then 0 else dst.Node.nlink - 1);
          maybe_free t dst
        | _ -> ())
     | _ -> ());
    (match Hashtbl.find_opt t.nodes old_dir with
     | Some od when Node.is_dir od ->
       (match Hashtbl.find_opt (Node.dir_entries od) old_name with
        | Some cur when cur = ino -> remove_entry t old_dir old_name (get t ino)
        | _ -> ())
     | _ -> ());
    (match (Hashtbl.find_opt t.nodes new_dir, Hashtbl.find_opt t.nodes ino) with
     | Some nd, Some node when Node.is_dir nd -> add_entry t new_dir new_name node
     | _ -> ())
  | Journal.Size { ino; size } ->
    (match Hashtbl.find_opt t.nodes ino with
     | Some node when Node.is_reg node ->
       ignore
         (charge t ~owner:node.Node.uid
            (blocks_of_size t size - blocks_of_size t node.Node.size));
       (match node.Node.body with
        | Node.Reg r -> r.extents <- Node.truncate_extents r.extents ~size
        | _ -> ());
       node.Node.size <- size
     | _ -> ())
  | Journal.Mode { ino; mode } ->
    (match Hashtbl.find_opt t.nodes ino with
     | Some node -> node.Node.mode <- mode
     | None -> ())
  | Journal.Xattr { ino; name; size; fill } ->
    (match Hashtbl.find_opt t.nodes ino with
     | Some node -> Hashtbl.replace node.Node.xattrs name (size, fill)
     | None -> ())
  | Journal.Alloc _ -> ()  (* accounting travels with Size *)
  | Journal.Data { ino; off; len; fill } ->
    (match Hashtbl.find_opt t.nodes ino with
     | Some { Node.body = Node.Reg r; _ } ->
       r.extents <- Node.write_extents r.extents ~off ~len ~fill
     | _ -> ())  (* orphaned blocks: the inode never became durable *)
  | Journal.Barrier _ -> ()

(* --- environment control --- *)

let set_credentials t ~uid ~gid =
  t.uid <- uid;
  t.gid <- gid

let credentials t = (t.uid, t.gid)
let set_read_only t ro = t.read_only <- ro
let is_read_only t = t.read_only
let set_system_file_load t n = t.system_file_load <- max 0 n

let mknod_special t path kind =
  let* dir_ino, name = resolve_parent t path in
  if lookup_in t dir_ino name <> None then Error Errno.EEXIST
  else
    let* () = charge t ~owner:t.uid 1 in
    let body =
      match kind with
      | `Fifo -> Node.Fifo
      | `Device driverless -> Node.Device { driverless }
    in
    let node = alloc_node t ~body ~mode:0o666 in
    add_entry t dir_ino name node;
    Ok ()

let with_node t path f =
  let* ino = resolve t path in
  Ok (f (get t ino))

let set_immutable t path v = with_node t path (fun n -> n.Node.immutable_ <- v)
let set_executing t path v = with_node t path (fun n -> n.Node.executing <- v)
let set_busy t path v = with_node t path (fun n -> n.Node.busy <- v)

(* --- inspection --- *)

type stat = {
  st_ino : int;
  st_kind : [ `Reg | `Dir | `Symlink | `Fifo | `Device ];
  st_mode : Mode.t;
  st_uid : int;
  st_gid : int;
  st_size : int;
  st_nlink : int;
}

let stat_of_node (n : Node.t) =
  {
    st_ino = n.ino;
    st_kind =
      (match n.body with
       | Node.Reg _ -> `Reg
       | Node.Dir _ -> `Dir
       | Node.Symlink _ -> `Symlink
       | Node.Fifo -> `Fifo
       | Node.Device _ -> `Device);
    st_mode = n.mode;
    st_uid = n.uid;
    st_gid = n.gid;
    st_size = n.size;
    st_nlink = n.nlink;
  }

let stat t path =
  let* ino = resolve t path in
  Ok (stat_of_node (get t ino))

let lstat t path =
  let* ino = resolve ~follow_last:false t path in
  Ok (stat_of_node (get t ino))

let exists t path = match resolve t path with Ok _ -> true | Error _ -> false

let list_dir t path =
  let* ino = resolve t path in
  let node = get t ino in
  match node.Node.body with
  | Node.Dir entries ->
    Ok
      (Hashtbl.fold (fun n _ acc -> if n = "." || n = ".." then acc else n :: acc) entries []
       |> List.sort String.compare)
  | _ -> Error Errno.ENOTDIR

let checksum t path =
  let* ino = resolve t path in
  let node = get t ino in
  if Node.is_reg node then Ok (Node.content_checksum node) else Error Errno.EINVAL

let read_byte t path off =
  let* ino = resolve t path in
  let node = get t ino in
  match node.Node.body with
  | Node.Reg r ->
    if off < 0 || off >= node.Node.size then Error Errno.EINVAL
    else Ok (Node.byte_at r.extents off)
  | _ -> Error Errno.EINVAL

let fd_path t fd =
  match find_fd t fd with
  | Some e -> e.fd_pathname
  | None -> None

let open_fd_count t = Hashtbl.length t.fds
let free_blocks t = t.cfg.Config.total_blocks - t.used
let used_blocks t = t.used

let xattr_names t path =
  let* ino = resolve t path in
  let node = get t ino in
  Ok (Hashtbl.fold (fun n _ acc -> n :: acc) node.Node.xattrs [] |> List.sort String.compare)

let xattr_size t path name =
  let* ino = resolve t path in
  let node = get t ino in
  match Hashtbl.find_opt node.Node.xattrs name with
  | Some (size, _) -> Ok size
  | None -> Error Errno.ENODATA
