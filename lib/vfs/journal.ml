(* The ordered write/persistence log (DESIGN.md §17).

   Every mutating VFS operation appends one or more records here, in
   execution order.  The log is the single source of truth for crash
   simulation: a crash state is "some prefix of this log, minus data
   records still in the writeback window, plus torn tails", and recovery
   is "apply the surviving records to a fresh file system".

   Records are deliberately self-contained — they carry inode numbers,
   names, sizes, and fill bytes rather than references into the live
   tree — so that a crash image can be materialized long after the
   workload file system is gone. *)

type kind = K_reg | K_dir | K_symlink of string

type scope = All | Ino of int

type record =
  | Create of { dir : int; name : string; ino : int; kind : kind;
                mode : int; uid : int; gid : int }
  | Link of { dir : int; name : string; ino : int }
  | Unlink of { dir : int; name : string; ino : int }
  | Rename of { old_dir : int; old_name : string;
                new_dir : int; new_name : string; ino : int;
                replaced : int option }
  | Size of { ino : int; size : int }
  | Mode of { ino : int; mode : int }
  | Xattr of { ino : int; name : string; size : int; fill : char }
  | Alloc of { ino : int; blocks : int }
  | Data of { ino : int; off : int; len : int; fill : char }
  | Barrier of { scope : scope; data_only : bool }

type classification = Data_record | Metadata | Barrier_record

let classify = function
  | Data _ -> Data_record
  | Barrier _ -> Barrier_record
  | Create _ | Link _ | Unlink _ | Rename _ | Size _ | Mode _ | Xattr _
  | Alloc _ -> Metadata

type t = { mutable records : record list; mutable length : int }
(* kept newest-first; [records] reverses on demand *)

let create () = { records = []; length = 0 }

let append t r =
  t.records <- r :: t.records;
  t.length <- t.length + 1

let length t = t.length

let records t = Array.of_list (List.rev t.records)

let clear t =
  t.records <- [];
  t.length <- 0

let scope_to_string = function
  | All -> "all"
  | Ino i -> Printf.sprintf "ino:%d" i

let kind_to_string = function
  | K_reg -> "reg"
  | K_dir -> "dir"
  | K_symlink target -> Printf.sprintf "symlink:%s" target

let record_to_string = function
  | Create { dir; name; ino; kind; mode; uid; gid } ->
    Printf.sprintf "create dir=%d name=%s ino=%d kind=%s mode=%o uid=%d gid=%d"
      dir name ino (kind_to_string kind) mode uid gid
  | Link { dir; name; ino } -> Printf.sprintf "link dir=%d name=%s ino=%d" dir name ino
  | Unlink { dir; name; ino } ->
    Printf.sprintf "unlink dir=%d name=%s ino=%d" dir name ino
  | Rename { old_dir; old_name; new_dir; new_name; ino; replaced } ->
    Printf.sprintf "rename %d/%s -> %d/%s ino=%d%s" old_dir old_name new_dir
      new_name ino
      (match replaced with None -> "" | Some r -> Printf.sprintf " replaced=%d" r)
  | Size { ino; size } -> Printf.sprintf "size ino=%d size=%d" ino size
  | Mode { ino; mode } -> Printf.sprintf "mode ino=%d mode=%o" ino mode
  | Xattr { ino; name; size; fill } ->
    Printf.sprintf "xattr ino=%d name=%s size=%d fill=%c" ino name size fill
  | Alloc { ino; blocks } -> Printf.sprintf "alloc ino=%d blocks=%d" ino blocks
  | Data { ino; off; len; fill } ->
    Printf.sprintf "data ino=%d off=%d len=%d fill=%c" ino off len fill
  | Barrier { scope; data_only } ->
    Printf.sprintf "barrier scope=%s%s" (scope_to_string scope)
      (if data_only then " data-only" else "")

let to_string t =
  String.concat "\n" (Array.to_list (Array.map record_to_string (records t)))
