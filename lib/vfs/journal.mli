(** The ordered write/persistence log (DESIGN.md §17).

    Mutating operations on a journal-attached {!Fs.t} append records
    here in execution order.  The crash engine ({!Iocov_crash.Engine})
    enumerates which subsets of the log may be persistent at a crash
    point — governed by {!Config.journal_mode}, the reorder window, and
    the barrier records — and replays the survivors onto a fresh file
    system via {!Fs.apply_record}.

    Records are self-contained (inode numbers, names, sizes, fill
    bytes), so a crash image can be materialized without the original
    file-system instance. *)

(** What a [Create] record gives birth to. *)
type kind = K_reg | K_dir | K_symlink of string

(** What a barrier covers: the whole device ([sync]) or one inode
    ([fsync]/[fdatasync]). *)
type scope = All | Ino of int

type record =
  | Create of { dir : int; name : string; ino : int; kind : kind;
                mode : int; uid : int; gid : int }
      (** inode birth plus its directory entry, atomically — the VFS
          never exposes an orphan-creation split state *)
  | Link of { dir : int; name : string; ino : int }
  | Unlink of { dir : int; name : string; ino : int }
  | Rename of { old_dir : int; old_name : string;
                new_dir : int; new_name : string; ino : int;
                replaced : int option }
      (** atomic: either the old entry exists or the new one does;
          [replaced] is the inode the destination entry displaced *)
  | Size of { ino : int; size : int }
      (** i_size update; persisted without its [Data] this exposes
          stale or zero bytes (the delayed-allocation hole) *)
  | Mode of { ino : int; mode : int }
  | Xattr of { ino : int; name : string; size : int; fill : char }
  | Alloc of { ino : int; blocks : int }
      (** block-allocation delta; accounting only, replay is a no-op *)
  | Data of { ino : int; off : int; len : int; fill : char }
      (** block writeback, subject to reordering and torn tails *)
  | Barrier of { scope : scope; data_only : bool }
      (** fsync / fdatasync / sync; orders everything before it within
          [scope] ahead of everything after *)

type classification = Data_record | Metadata | Barrier_record

val classify : record -> classification

(** {2 The append-only log} *)

type t

val create : unit -> t
val append : t -> record -> unit
val length : t -> int

val records : t -> record array
(** All records, oldest first. *)

val clear : t -> unit

val record_to_string : record -> string
(** One-line debug rendering (the §17 wire shape). *)

val to_string : t -> string
(** Newline-joined {!record_to_string} of every record. *)
