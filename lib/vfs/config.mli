(** File-system geometry, limits, and test credentials.

    The limits are what turn boundary inputs into distinct {e outputs}:
    [max_file_size] yields [EFBIG], [total_blocks] yields [ENOSPC],
    [quota_blocks] yields [EDQUOT], and so on.  Defaults model a small
    Ext4-like device so that exhaustion errors are reachable by test
    workloads in reasonable time. *)

(** Journal semantics governing which persistence log records survive a
    crash (DESIGN.md §17): [Writeback] persists data and metadata
    independently; [Ordered] never commits metadata ahead of the data it
    references; [Journaled] persists strictly in log order. *)
type journal_mode = Writeback | Ordered | Journaled

val journal_mode_to_string : journal_mode -> string
val journal_mode_of_string : string -> journal_mode option
val all_journal_modes : journal_mode list

type t = {
  block_size : int;          (** bytes per block (default 4096) *)
  total_blocks : int;        (** device capacity; [ENOSPC] when exhausted *)
  max_file_size : int;       (** [EFBIG] beyond this size *)
  large_file_threshold : int;(** [EOVERFLOW] when opening a file at least
                                 this big without [O_LARGEFILE] (2 GiB) *)
  max_name_len : int;        (** per-component limit; [ENAMETOOLONG] *)
  max_path_len : int;        (** whole-path limit; [ENAMETOOLONG] *)
  max_symlink_depth : int;   (** [ELOOP] beyond this many link hops *)
  max_open_files : int;      (** per-process fd limit; [EMFILE] *)
  max_system_files : int;    (** system-wide open-file limit; [ENFILE] *)
  max_xattr_value : int;     (** [E2BIG] above this value size (64 KiB) *)
  xattr_space : int;         (** per-inode xattr capacity; [ENOSPC] when full *)
  quota_blocks : int option; (** per-uid block quota; [EDQUOT] *)
  read_only : bool;          (** mounted read-only; [EROFS] *)
  uid : int;                 (** initial process uid (0 = root) *)
  gid : int;
  faults : Fault.t list;     (** injected bugs active in this instance *)
  journal_mode : journal_mode; (** crash-time persistence semantics (default [Ordered]) *)
}

val default : t
(** A 16 GiB, 4 KiB-block file system with Linux-like limits, writable,
    running as root, no injected faults. *)

val small : t
(** A tiny (4 MiB) instance for exhaustion tests: ENOSPC/EDQUOT within a
    few writes. *)

val with_faults : Fault.t list -> t -> t
val with_journal_mode : journal_mode -> t -> t
val with_uid : uid:int -> gid:int -> t -> t
val read_only_of : t -> t

(** {2 Canonical serialization}

    One [key=value] token per field, declaration order, single-space
    separated — e.g. [quota_blocks=none] and [faults=-] for the empty
    cases.  [of_string (to_string c) = Ok c] for every config
    (QCheck-tested over all 17 fields), and the digest is the CRC-32 of
    the canonical form, so ledger/serve/trace headers can name a config
    exactly in eight hex digits. *)

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> (t, string) result
val digest : t -> string

(** {2 The config lattice}

    A finite, deterministic set of named configurations — six base
    geometries (default, small, tiny, tiny-quota, read-only,
    no-xattr-space), each crossed with the three journal modes.  Point
    IDs are dense and stable across runs ([0, lattice_count)); point 0
    is always [default].  Base names denote the [Ordered] mode; the
    other modes append ["-writeback"] / ["-journaled"]. *)

type point = {
  pt_id : int;       (** dense, stable; the matrix config_id *)
  pt_name : string;  (** e.g. ["tiny-quota-journaled"] *)
  pt_config : t;
}

val lattice : point array
val lattice_count : int
val default_point : point

val lattice_digest : string
(** CRC-32 over every point's name and canonical form — names the whole
    lattice version, for cross-run comparability checks. *)

val point_named : string -> point option

val points_of_spec : string -> (point list, string) result
(** Parse a [--configs] value: ["all"] for the whole lattice or a
    comma-separated list of point names.  Preserves order, drops
    duplicates. *)

val parse_lattice : string -> (point list, string) result
(** Parse a custom lattice file ([NAME <canonical config>] per line, [#]
    comments); points get dense IDs in file order. *)

val print_lattice : unit -> string
(** The built-in lattice in [parse_lattice] form — documentation and a
    template for custom lattice files. *)
