(** File-system geometry, limits, and test credentials.

    The limits are what turn boundary inputs into distinct {e outputs}:
    [max_file_size] yields [EFBIG], [total_blocks] yields [ENOSPC],
    [quota_blocks] yields [EDQUOT], and so on.  Defaults model a small
    Ext4-like device so that exhaustion errors are reachable by test
    workloads in reasonable time. *)

(** Journal semantics governing which persistence log records survive a
    crash (DESIGN.md §17): [Writeback] persists data and metadata
    independently; [Ordered] never commits metadata ahead of the data it
    references; [Journaled] persists strictly in log order. *)
type journal_mode = Writeback | Ordered | Journaled

val journal_mode_to_string : journal_mode -> string
val journal_mode_of_string : string -> journal_mode option
val all_journal_modes : journal_mode list

type t = {
  block_size : int;          (** bytes per block (default 4096) *)
  total_blocks : int;        (** device capacity; [ENOSPC] when exhausted *)
  max_file_size : int;       (** [EFBIG] beyond this size *)
  large_file_threshold : int;(** [EOVERFLOW] when opening a file at least
                                 this big without [O_LARGEFILE] (2 GiB) *)
  max_name_len : int;        (** per-component limit; [ENAMETOOLONG] *)
  max_path_len : int;        (** whole-path limit; [ENAMETOOLONG] *)
  max_symlink_depth : int;   (** [ELOOP] beyond this many link hops *)
  max_open_files : int;      (** per-process fd limit; [EMFILE] *)
  max_system_files : int;    (** system-wide open-file limit; [ENFILE] *)
  max_xattr_value : int;     (** [E2BIG] above this value size (64 KiB) *)
  xattr_space : int;         (** per-inode xattr capacity; [ENOSPC] when full *)
  quota_blocks : int option; (** per-uid block quota; [EDQUOT] *)
  read_only : bool;          (** mounted read-only; [EROFS] *)
  uid : int;                 (** initial process uid (0 = root) *)
  gid : int;
  faults : Fault.t list;     (** injected bugs active in this instance *)
  journal_mode : journal_mode; (** crash-time persistence semantics (default [Ordered]) *)
}

val default : t
(** A 16 GiB, 4 KiB-block file system with Linux-like limits, writable,
    running as root, no injected faults. *)

val small : t
(** A tiny (4 MiB) instance for exhaustion tests: ENOSPC/EDQUOT within a
    few writes. *)

val with_faults : Fault.t list -> t -> t
val with_journal_mode : journal_mode -> t -> t
val with_uid : uid:int -> gid:int -> t -> t
val read_only_of : t -> t
