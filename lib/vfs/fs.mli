(** An in-memory POSIX-style file system.

    This is the substrate standing in for the paper's Linux/Ext4 testbed:
    it executes the 27 modeled syscalls ({!exec}) plus the auxiliary
    operations test workloads need ({!exec_aux}: unlink, rename, symlink,
    fsync, sync, crash, ...), returning real POSIX error codes from real
    state — so the input/output coverage a test suite achieves here has
    the same structure as on a kernel.

    Durability follows a snapshot crash model: all mutations apply to the
    live state; [Sync] makes the whole state durable, [Fsync fd] makes one
    inode durable (plus nothing else — in particular {e not} the directory
    entry naming a newly created file, which reproduces the classic
    "fsync the file but not its parent" crash bug family), and [Crash]
    discards everything volatile and recovers from the durable snapshot. *)

type t

val create : ?config:Config.t -> unit -> t
(** A freshly "mkfs-ed" file system containing only the root directory
    (mode 0o755, owned by root).  The initial state is durable. *)

val config : t -> Config.t

(** {2 The 27 modeled syscalls} *)

val exec : t -> Iocov_syscall.Model.call -> Iocov_syscall.Model.outcome
(** Execute one syscall against the live state.  Never raises on bad
    arguments from the call payload — every failure is an [Err]. *)

(** {2 Auxiliary operations}

    Operations outside the 27-syscall coverage domain that workloads and
    oracles still need.  The tracer records them as untracked events. *)

type aux =
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Symlink of string * string  (** [Symlink (target, linkpath)] *)
  | Link of string * string     (** [Link (existing, new_path)] *)
  | Fsync of int
  | Fdatasync of int
  | Sync
  | Crash                       (** power-cut: drop volatile state, recover *)

val aux_name : aux -> string
val exec_aux : t -> aux -> (int, Iocov_syscall.Errno.t) result

(** {2 The persistence journal (crash engine substrate)}

    With a journal attached, every successful mutating operation appends
    ordered {!Journal.record}s: directory-entry and inode metadata,
    block allocations, data writebacks, and fsync/fdatasync/sync
    barriers.  The crash engine enumerates which log subsets survive a
    power cut and rebuilds each crash image by {!apply_record}-ing the
    survivors onto a fresh instance (DESIGN.md §17). *)

val set_journal : t -> Journal.t option -> unit
(** Attach (or detach, with [None]) a persistence log.  Detached is the
    default; attaching costs one append per mutation. *)

val journal : t -> Journal.t option

val apply_record : t -> Journal.record -> unit
(** Replay one persisted record, in journal order, onto this instance —
    the recovery step of crash-state materialization.  Records that
    reference inodes or directory entries which never became durable are
    dropped, as a real journal replay drops orphans.  Never raises. *)

(** {2 Environment control} *)

val set_credentials : t -> uid:int -> gid:int -> unit
(** Switch the calling process's credentials (tests use this to provoke
    [EACCES]/[EPERM]). *)

val credentials : t -> int * int

val set_read_only : t -> bool -> unit
(** Remount read-only (or read-write): mutating syscalls fail [EROFS]. *)

val is_read_only : t -> bool
(** The current mount state, so temporary remount-ro test phases can
    restore what the configuration pinned rather than assuming
    read-write. *)

val inject_errno : t -> ?base:Iocov_syscall.Model.base -> Iocov_syscall.Errno.t -> unit
(** Queue a transient environment error ([EINTR], [ENOMEM], [EFAULT],
    [EIO], ...).  The next {!exec} — of the given base syscall if
    [~base] is passed — fails with it instead of running.  Models
    signals, memory pressure, and bad user buffers, which are conditions
    of the environment rather than of file-system state. *)

val mknod_special : t -> string -> [ `Fifo | `Device of bool ] -> (unit, Iocov_syscall.Errno.t) result
(** Create a FIFO or a device node ([`Device driverless]) — the node
    kinds that make [open] return [ENXIO]/[ENODEV]. *)

val set_immutable : t -> string -> bool -> (unit, Iocov_syscall.Errno.t) result
(** chattr +i/-i: modifications of an immutable file fail [EPERM]. *)

val set_executing : t -> string -> bool -> (unit, Iocov_syscall.Errno.t) result
(** Mark a file as a running binary: write-opens fail [ETXTBSY]. *)

val set_busy : t -> string -> bool -> (unit, Iocov_syscall.Errno.t) result
(** Mark a node busy: opens fail [EBUSY]. *)

val set_system_file_load : t -> int -> unit
(** Pretend other processes hold this many system-wide open files —
    raises pressure toward [ENFILE]. *)

(** {2 Inspection (for oracles and tests)} *)

type stat = {
  st_ino : int;
  st_kind : [ `Reg | `Dir | `Symlink | `Fifo | `Device ];
  st_mode : Iocov_syscall.Mode.t;
  st_uid : int;
  st_gid : int;
  st_size : int;
  st_nlink : int;
}

val stat : t -> string -> (stat, Iocov_syscall.Errno.t) result
val lstat : t -> string -> (stat, Iocov_syscall.Errno.t) result
val exists : t -> string -> bool
val list_dir : t -> string -> (string list, Iocov_syscall.Errno.t) result
(** Entries in lexicographic order, ["."]/[".."] excluded. *)

val checksum : t -> string -> (int, Iocov_syscall.Errno.t) result
(** Content digest of a regular file (see {!Node.content_checksum}). *)

val read_byte : t -> string -> int -> (char, Iocov_syscall.Errno.t) result
(** Effective content byte at an offset (['\000'] within holes). *)

val fd_path : t -> int -> string option
(** Best-effort pathname of an open descriptor (what a trace
    post-processor reconstructs); [None] for unknown or [O_TMPFILE]
    descriptors. *)

val open_fd_count : t -> int
val free_blocks : t -> int
val used_blocks : t -> int
val xattr_names : t -> string -> (string list, Iocov_syscall.Errno.t) result
val xattr_size : t -> string -> string -> (int, Iocov_syscall.Errno.t) result
(** Stored size of one attribute ([Error ENODATA] if absent). *)
