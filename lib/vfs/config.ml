type journal_mode = Writeback | Ordered | Journaled

let journal_mode_to_string = function
  | Writeback -> "writeback"
  | Ordered -> "ordered"
  | Journaled -> "journaled"

let journal_mode_of_string = function
  | "writeback" -> Some Writeback
  | "ordered" -> Some Ordered
  | "journaled" -> Some Journaled
  | _ -> None

let all_journal_modes = [ Writeback; Ordered; Journaled ]

type t = {
  block_size : int;
  total_blocks : int;
  max_file_size : int;
  large_file_threshold : int;
  max_name_len : int;
  max_path_len : int;
  max_symlink_depth : int;
  max_open_files : int;
  max_system_files : int;
  max_xattr_value : int;
  xattr_space : int;
  quota_blocks : int option;
  read_only : bool;
  uid : int;
  gid : int;
  faults : Fault.t list;
  journal_mode : journal_mode;
}

let gib n = n * 1024 * 1024 * 1024

let default = {
  block_size = 4096;
  total_blocks = gib 16 / 4096;
  max_file_size = gib 64;
  large_file_threshold = gib 2;
  max_name_len = 255;
  max_path_len = 4096;
  max_symlink_depth = 8;
  max_open_files = 1024;
  max_system_files = 4096;
  max_xattr_value = 65536;
  xattr_space = 4096;
  quota_blocks = None;
  read_only = false;
  uid = 0;
  gid = 0;
  faults = [];
  journal_mode = Ordered;
}

let small = {
  default with
  total_blocks = 1024;           (* 4 MiB *)
  max_file_size = 1024 * 1024;   (* 1 MiB: EFBIG easily reachable *)
  max_open_files = 16;
  max_system_files = 32;
  xattr_space = 256;
  quota_blocks = Some 512;
}

let with_faults faults t = { t with faults }
let with_journal_mode journal_mode t = { t with journal_mode }
let with_uid ~uid ~gid t = { t with uid; gid }
let read_only_of t = { t with read_only = true }
