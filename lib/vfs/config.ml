type journal_mode = Writeback | Ordered | Journaled

let journal_mode_to_string = function
  | Writeback -> "writeback"
  | Ordered -> "ordered"
  | Journaled -> "journaled"

let journal_mode_of_string = function
  | "writeback" -> Some Writeback
  | "ordered" -> Some Ordered
  | "journaled" -> Some Journaled
  | _ -> None

let all_journal_modes = [ Writeback; Ordered; Journaled ]

type t = {
  block_size : int;
  total_blocks : int;
  max_file_size : int;
  large_file_threshold : int;
  max_name_len : int;
  max_path_len : int;
  max_symlink_depth : int;
  max_open_files : int;
  max_system_files : int;
  max_xattr_value : int;
  xattr_space : int;
  quota_blocks : int option;
  read_only : bool;
  uid : int;
  gid : int;
  faults : Fault.t list;
  journal_mode : journal_mode;
}

let gib n = n * 1024 * 1024 * 1024

let default = {
  block_size = 4096;
  total_blocks = gib 16 / 4096;
  max_file_size = gib 64;
  large_file_threshold = gib 2;
  max_name_len = 255;
  max_path_len = 4096;
  max_symlink_depth = 8;
  max_open_files = 1024;
  max_system_files = 4096;
  max_xattr_value = 65536;
  xattr_space = 4096;
  quota_blocks = None;
  read_only = false;
  uid = 0;
  gid = 0;
  faults = [];
  journal_mode = Ordered;
}

let small = {
  default with
  total_blocks = 1024;           (* 4 MiB *)
  max_file_size = 1024 * 1024;   (* 1 MiB: EFBIG easily reachable *)
  max_open_files = 16;
  max_system_files = 32;
  xattr_space = 256;
  quota_blocks = Some 512;
}

let with_faults faults t = { t with faults }
let with_journal_mode journal_mode t = { t with journal_mode }
let with_uid ~uid ~gid t = { t with uid; gid }
let read_only_of t = { t with read_only = true }

(* --- canonical serialization --- *)

(* Every field appears exactly once, in declaration order, as
   [key=value] tokens separated by single spaces.  The form is the
   identity under [of_string] (property-tested) and the input to
   [digest], so two configs are interchangeable iff their canonical
   strings are equal. *)

let equal (a : t) (b : t) = a = b

let faults_to_string = function
  | [] -> "-"
  | fs -> String.concat "," (List.map Fault.to_string fs)

let faults_of_string = function
  | "-" -> Some []
  | s ->
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | n :: rest ->
        (match Fault.of_string n with
         | Some f -> go (f :: acc) rest
         | None -> None)
    in
    go [] names

let to_string c =
  String.concat " "
    [
      "block_size=" ^ string_of_int c.block_size;
      "total_blocks=" ^ string_of_int c.total_blocks;
      "max_file_size=" ^ string_of_int c.max_file_size;
      "large_file_threshold=" ^ string_of_int c.large_file_threshold;
      "max_name_len=" ^ string_of_int c.max_name_len;
      "max_path_len=" ^ string_of_int c.max_path_len;
      "max_symlink_depth=" ^ string_of_int c.max_symlink_depth;
      "max_open_files=" ^ string_of_int c.max_open_files;
      "max_system_files=" ^ string_of_int c.max_system_files;
      "max_xattr_value=" ^ string_of_int c.max_xattr_value;
      "xattr_space=" ^ string_of_int c.xattr_space;
      ("quota_blocks="
       ^ match c.quota_blocks with None -> "none" | Some n -> string_of_int n);
      "read_only=" ^ string_of_bool c.read_only;
      "uid=" ^ string_of_int c.uid;
      "gid=" ^ string_of_int c.gid;
      "faults=" ^ faults_to_string c.faults;
      "journal_mode=" ^ journal_mode_to_string c.journal_mode;
    ]

let of_string s =
  let ( let* ) = Result.bind in
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))
  in
  let* pairs =
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "config: malformed token %S" tok)
        | Some i ->
          let k = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          if List.mem_assoc k acc then
            Error (Printf.sprintf "config: duplicate field %S" k)
          else Ok ((k, v) :: acc))
      (Ok []) tokens
  in
  let field k =
    match List.assoc_opt k pairs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "config: missing field %S" k)
  in
  let int_field k =
    let* v = field k in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "config: field %s: bad integer %S" k v)
  in
  let bool_field k =
    let* v = field k in
    match bool_of_string_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "config: field %s: bad boolean %S" k v)
  in
  let* block_size = int_field "block_size" in
  let* total_blocks = int_field "total_blocks" in
  let* max_file_size = int_field "max_file_size" in
  let* large_file_threshold = int_field "large_file_threshold" in
  let* max_name_len = int_field "max_name_len" in
  let* max_path_len = int_field "max_path_len" in
  let* max_symlink_depth = int_field "max_symlink_depth" in
  let* max_open_files = int_field "max_open_files" in
  let* max_system_files = int_field "max_system_files" in
  let* max_xattr_value = int_field "max_xattr_value" in
  let* xattr_space = int_field "xattr_space" in
  let* quota_blocks =
    let* v = field "quota_blocks" in
    if v = "none" then Ok None
    else
      match int_of_string_opt v with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "config: field quota_blocks: bad value %S" v)
  in
  let* read_only = bool_field "read_only" in
  let* uid = int_field "uid" in
  let* gid = int_field "gid" in
  let* faults =
    let* v = field "faults" in
    match faults_of_string v with
    | Some fs -> Ok fs
    | None -> Error (Printf.sprintf "config: field faults: bad value %S" v)
  in
  let* journal_mode =
    let* v = field "journal_mode" in
    match journal_mode_of_string v with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "config: field journal_mode: bad value %S" v)
  in
  let* () =
    if List.length pairs = 17 then Ok ()
    else
      let known =
        [ "block_size"; "total_blocks"; "max_file_size"; "large_file_threshold";
          "max_name_len"; "max_path_len"; "max_symlink_depth"; "max_open_files";
          "max_system_files"; "max_xattr_value"; "xattr_space"; "quota_blocks";
          "read_only"; "uid"; "gid"; "faults"; "journal_mode" ]
      in
      match List.find_opt (fun (k, _) -> not (List.mem k known)) pairs with
      | Some (k, _) -> Error (Printf.sprintf "config: unknown field %S" k)
      | None -> Ok ()
  in
  Ok
    {
      block_size; total_blocks; max_file_size; large_file_threshold;
      max_name_len; max_path_len; max_symlink_depth; max_open_files;
      max_system_files; max_xattr_value; xattr_space; quota_blocks;
      read_only; uid; gid; faults; journal_mode;
    }

let digest c = Printf.sprintf "%08x" (Iocov_util.Crc32.string (to_string c))

(* --- the config lattice --- *)

type point = { pt_id : int; pt_name : string; pt_config : t }

let tiny =
  {
    default with
    total_blocks = 256;              (* 1 MiB: ENOSPC within a few writes *)
    max_file_size = 256 * 1024;      (* EFBIG at 256 KiB *)
  }

let tiny_quota = { default with quota_blocks = Some 8 }
let no_xattr_space = { default with xattr_space = 0 }

let lattice_bases =
  [
    ("default", default);
    ("small", small);
    ("tiny", tiny);
    ("tiny-quota", tiny_quota);
    ("read-only", read_only_of default);
    ("no-xattr-space", no_xattr_space);
  ]

let lattice =
  let points =
    List.concat_map
      (fun (base_name, base) ->
        List.map
          (fun mode ->
            let name =
              match mode with
              | Ordered -> base_name
              | m -> base_name ^ "-" ^ journal_mode_to_string m
            in
            (name, with_journal_mode mode base))
          [ Ordered; Writeback; Journaled ])
      lattice_bases
  in
  Array.of_list
    (List.mapi
       (fun i (pt_name, pt_config) -> { pt_id = i; pt_name; pt_config })
       points)

let lattice_count = Array.length lattice
let default_point = lattice.(0)

let lattice_digest =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun p ->
      Buffer.add_string buf p.pt_name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (to_string p.pt_config);
      Buffer.add_char buf '\n')
    lattice;
  Printf.sprintf "%08x" (Iocov_util.Crc32.string (Buffer.contents buf))

let point_named name =
  Array.fold_left
    (fun acc p -> match acc with Some _ -> acc | None -> if p.pt_name = name then Some p else None)
    None lattice

let points_of_spec spec =
  match String.trim spec with
  | "" -> Error "config spec: empty"
  | "all" -> Ok (Array.to_list lattice)
  | spec ->
    let names = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        let n = String.trim n in
        (match point_named n with
         | Some p ->
           if List.exists (fun q -> q.pt_id = p.pt_id) acc then go acc rest
           else go (p :: acc) rest
         | None ->
           Error
             (Printf.sprintf
                "config spec: unknown lattice point %S (known: %s)" n
                (String.concat ", "
                   (List.map (fun p -> p.pt_name) (Array.to_list lattice)))))
    in
    go [] names

let parse_lattice contents =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' contents in
  let* points =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then Ok acc
        else
          match String.index_opt line ' ' with
          | None -> Error (Printf.sprintf "lattice file: malformed line %S" line)
          | Some i ->
            let name = String.sub line 0 i in
            let body = String.sub line (i + 1) (String.length line - i - 1) in
            let* config = of_string body in
            if List.exists (fun (n, _) -> n = name) acc then
              Error (Printf.sprintf "lattice file: duplicate point %S" name)
            else Ok ((name, config) :: acc))
      (Ok []) lines
  in
  match List.rev points with
  | [] -> Error "lattice file: no points"
  | points ->
    Ok
      (List.mapi
         (fun i (pt_name, pt_config) -> { pt_id = i; pt_name; pt_config })
         points)

let print_lattice () =
  String.concat ""
    (List.map
       (fun p -> Printf.sprintf "%s %s\n" p.pt_name (to_string p.pt_config))
       (Array.to_list lattice))
