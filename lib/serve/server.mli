(** The serve daemon: {!Hub} behind a Unix-domain socket (plus a
    file-tail mode used by tests and single-host pipelines).

    One listener thread accepts connections; each connection gets its
    own thread speaking {!Protocol}.  Ingest connections stream trace
    bytes through a hub session (the fused dense path for v3); query
    connections answer request lines from epoch snapshots, so a slow
    report never pauses any tenant's ingestion.  A [shutdown] request
    stops the listener, waits for in-flight streams, and returns the
    final per-tenant outcomes — which the CLI appends to the run
    ledger, one record per tenant. *)

type config = {
  socket : string option;  (** Unix-domain socket path; [None] = file mode only *)
  ingests : (string * string) list;  (** [(tenant, trace-file)] tail sessions *)
  follow : bool;  (** keep tailing ingest files after EOF (frame-aligned
                      appends), until shutdown *)
  mount : string option;  (** hub-wide mount filter (like [analyze --mount]) *)
  batch : int;  (** per-session drain size *)
  handshake_timeout : float;
      (** seconds a fresh connection may sit silent before its thread
          gives up on the handshake ([SO_RCVTIMEO]); [0.] = forever *)
}

val default_config : config
(** No socket, no ingests, no follow, no filter, batch 8192, 5 s
    handshake timeout. *)

type tenant_outcome = {
  o_tenant : string;
  o_coverage : Iocov_core.Coverage.t;  (** final epoch, reference form *)
  o_stats : Hub.stats;
  o_config : (string * string) option;
  (** (lattice point name, config digest) the tenant's streams declared
      via [config=]; [None] when none did *)
}

type outcome = {
  o_tenants : tenant_outcome list;  (** sorted by tenant id *)
  o_wall_s : float;
}

val run : ?on_ready:(unit -> unit) -> config -> (outcome, string) result
(** Run until a [shutdown] request arrives (socket mode) or every
    ingest file reaches EOF (pure file mode).  [on_ready] fires once
    the socket is listening — tests use it to start clients without
    polling.  Socket files are unlinked on exit. *)

(** {2 Client helpers}

    Thin wrappers over {!Protocol} used by [iocov ingest] / [iocov
    query] and the smoke tests. *)

val client_ingest :
  socket:string -> tenant:string -> ?mount:string -> ?config:string -> string ->
  (string, string) result
(** Stream one local trace file to the daemon; returns the server's
    ingest summary line.  [config] names the lattice point the stream's
    coverage belongs to; the server validates it and pins the tenant. *)

val client_query :
  socket:string -> ?tenant:string -> string list -> (string list, string) result
(** Send each request line in order over one connection; collects the
    framed replies.  Stops at the first error. *)
