module Binary_io = Iocov_trace.Binary_io
module Format_io = Iocov_trace.Format_io
module Metrics = Iocov_obs.Metrics
module Export = Iocov_obs.Export
module Anomaly = Iocov_util.Anomaly

type config = {
  socket : string option;
  ingests : (string * string) list;
  follow : bool;
  mount : string option;
  batch : int;
  handshake_timeout : float;
}

let default_config =
  { socket = None; ingests = []; follow = false; mount = None; batch = 8192;
    handshake_timeout = 5.0 }

type tenant_outcome = {
  o_tenant : string;
  o_coverage : Iocov_core.Coverage.t;
  o_stats : Hub.stats;
  o_config : (string * string) option;  (* lattice point name, config digest *)
}

type outcome = { o_tenants : tenant_outcome list; o_wall_s : float }

(* --- shared connection plumbing --- *)

let send oc frame =
  output_string oc frame;
  flush oc

(* Both channels wrap one fd; [close_out] closes it, the second close
   is a quiet no-op. *)
let close_both ic oc =
  close_out_noerr oc;
  close_in_noerr ic

(* --- ingest connections --- *)

let rec drain_to_eof session stream =
  match Hub.ingest_step session stream with
  | Ok 0 -> Ok ()
  | Ok _ -> drain_to_eof session stream
  | Error _ as e -> e

let ingest_summary session tenant =
  Printf.sprintf "tenant %s events %d\n" tenant (Hub.session_events session)

let serve_ingest_binary hub ~tenant ~mount ic =
  let session = Hub.open_session hub ~tenant ?mount () in
  Fun.protect
    ~finally:(fun () -> Hub.close_session session)
    (fun () ->
      match Binary_io.open_stream ic with
      | Error _ as e -> e
      | Ok stream -> (
        match drain_to_eof session stream with
        | Ok () -> Ok (ingest_summary session tenant)
        | Error msg ->
          (* a connection dropped mid-frame: committed batches stand,
             the partial frame is discarded, and the loss is on the
             tenant's completeness ledger *)
          Hub.note_anomaly session
            (Anomaly.v Anomaly.Truncated
               (Printf.sprintf "ingest connection (tenant %s): partial frame \
                                discarded: %s" tenant msg));
          Error msg))

let serve_ingest_text hub ~tenant ~mount ~batch ic =
  let session = Hub.open_session hub ~tenant ?mount () in
  Fun.protect
    ~finally:(fun () -> Hub.close_session session)
    (fun () ->
      let pending = ref [] and n_pending = ref 0 and seq = ref 0 in
      let commit () =
        if !n_pending > 0 then begin
          Hub.ingest_events session (List.rev !pending);
          pending := [];
          n_pending := 0
        end
      in
      let rec loop () =
        match In_channel.input_line ic with
        | None ->
          commit ();
          Ok (ingest_summary session tenant)
        | Some line ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then loop ()
          else begin
            incr seq;
            match Format_io.of_line ~seq:!seq line with
            | Error msg -> Error (Printf.sprintf "line %d: %s" !seq msg)
            | Ok e ->
              pending := e :: !pending;
              incr n_pending;
              if !n_pending >= batch then commit ();
              loop ()
          end
      in
      loop ())

(* --- query connections --- *)

let hub_query_of_request = function
  | Protocol.Q_coverage -> Some Hub.Coverage
  | Protocol.Q_tcd arg -> Some (Hub.Tcd arg)
  | Protocol.Q_adequacy (arg, target, theta) -> Some (Hub.Adequacy (arg, target, theta))
  | Protocol.Q_completeness -> Some Hub.Completeness
  | Protocol.Q_digest -> Some Hub.Digest
  | _ -> None

let answer hub ~shutdown ~default_tenant (p : Protocol.parsed) =
  let tenant_of p =
    match (p.Protocol.pr_tenant, default_tenant) with
    | Some t, _ -> Ok t
    | None, Some t -> Ok t
    | None, None -> Error "no tenant (handshake tenant= or request tenant=)"
  in
  match p.Protocol.pr_request with
  | Protocol.Q_ping -> Ok "pong\n"
  | Protocol.Q_tenants ->
    Ok (String.concat "" (List.map (fun id -> id ^ "\n") (Hub.tenant_ids hub)))
  | Protocol.Q_metrics -> Ok (Export.to_prometheus Metrics.default)
  | Protocol.Q_shutdown ->
    Atomic.set shutdown true;
    Ok "shutting down\n"
  | Protocol.Q_stats -> (
    match tenant_of p with
    | Error _ as e -> e
    | Ok tenant -> (
      match Hub.stats hub ~tenant with
      | Some st -> Ok (Hub.render_stats st)
      | None -> Error (Printf.sprintf "unknown tenant %S" tenant)))
  | req -> (
    match tenant_of p with
    | Error _ as e -> e
    | Ok tenant -> (
      match hub_query_of_request req with
      | Some q -> Hub.query hub ~tenant q
      | None -> Error "unhandled request"))

let serve_query hub ~shutdown ~default_tenant ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      let reply =
        match Protocol.parse_request line with
        | Error msg -> Protocol.err_frame msg
        | Ok p -> (
          match answer hub ~shutdown ~default_tenant p with
          | Ok payload -> Protocol.ok_frame payload
          | Error msg -> Protocol.err_frame msg)
      in
      send oc reply;
      (* the shutdown requester gets its ack, then the connection ends *)
      if not (Atomic.get shutdown) then loop ()
  in
  loop ()

let handle_connection hub ~shutdown ~batch ~handshake_timeout fd =
  let set_rcvtimeo seconds =
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_both ic oc)
    (fun () ->
      (* a client that connects and never speaks must not pin this
         thread forever: the handshake read is deadline-bounded (the
         kernel's EAGAIN surfaces as [Sys_error]), then the deadline is
         lifted for the possibly long-lived session itself *)
      if handshake_timeout > 0.0 then set_rcvtimeo handshake_timeout;
      match In_channel.input_line ic with
      | None -> ()
      | exception Sys_error _ -> ()
      | Some line ->
        if handshake_timeout > 0.0 then set_rcvtimeo 0.0;
        (
        match Protocol.parse_handshake line with
        | Error msg -> send oc (Protocol.err_frame msg)
        | Ok hs -> (
          (* the config token names a lattice point; resolve it before
             any stream bytes are read, so a typo fails fast *)
          let config =
            match hs.Protocol.hs_config with
            | None -> Ok None
            | Some name -> (
              match Iocov_vfs.Config.point_named name with
              | Some point -> Ok (Some point)
              | None ->
                Error
                  (Printf.sprintf "unknown config lattice point %S" name))
          in
          match config with
          | Error msg -> send oc (Protocol.err_frame msg)
          | Ok config -> (
            match hs.Protocol.hs_role with
            | Protocol.Query ->
              serve_query hub ~shutdown ~default_tenant:hs.Protocol.hs_tenant ic oc
            | Protocol.Ingest -> (
              let tenant = Option.get hs.Protocol.hs_tenant in
              let mount = hs.Protocol.hs_mount in
              let declared =
                match config with
                | None -> Ok ()
                | Some point -> Hub.declare_config hub ~tenant point
              in
              let result =
                match declared with
                | Error _ as e -> e
                | Ok () -> (
                  match hs.Protocol.hs_format with
                  | Protocol.Binary -> serve_ingest_binary hub ~tenant ~mount ic
                  | Protocol.Text -> serve_ingest_text hub ~tenant ~mount ~batch ic)
              in
              match result with
              | Ok summary -> send oc (Protocol.ok_frame summary)
              | Error msg -> send oc (Protocol.err_frame msg))))))

(* --- file-tail ingestion ---

   The stream latches EOF, so tailing re-opens the file and resumes at
   the frozen cursor — sound because the v3 writer appends whole frames
   ([flush] never leaves a torn one). *)

let tail_file hub ~shutdown ~follow ~tenant path =
  let session = Hub.open_session hub ~tenant () in
  Fun.protect
    ~finally:(fun () -> Hub.close_session session)
    (fun () ->
      let open_at cursor ic =
        match cursor with
        | None -> Binary_io.open_stream ic
        | Some c -> Binary_io.resume_stream ic c
      in
      let rec pass cursor =
        (* rotation/truncation: if the file shrank below the frozen
           cursor it cannot be the byte stream the cursor came from —
           drop the decode state, restart at the head of the (new)
           file, and put the reset on the completeness ledger *)
        let cursor =
          match cursor with
          | Some c
            when (try (Unix.stat path).Unix.st_size < c.Binary_io.c_offset
                  with Unix.Unix_error _ -> false) ->
            Hub.note_anomaly session
              (Anomaly.v ~offset:c.Binary_io.c_offset Anomaly.Truncated
                 (Printf.sprintf
                    "%s shrank below the resume cursor (truncated or rotated); \
                     restarting from the beginning" path));
            None
          | c -> c
        in
        match open_in_bin path with
        | exception Sys_error msg -> Error msg
        | ic ->
          let next =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match open_at cursor ic with
                | Error _ as e -> e
                | Ok stream -> (
                  match drain_to_eof session stream with
                  | Error _ as e -> e
                  | Ok () -> Ok (Binary_io.cursor stream)))
          in
          (match next with
           | Error _ as e -> e
           | Ok cur ->
             if follow && not (Atomic.get shutdown) then begin
               Thread.delay 0.05;
               pass (Some cur)
             end
             else Ok ())
      in
      pass None)

(* --- the daemon --- *)

let listen_socket path =
  (try Sys.remove path with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () ->
    Unix.listen fd 64;
    Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))

let run ?(on_ready = fun () -> ()) config =
  if config.batch <= 0 then Error "batch must be positive"
  else begin
    let hub = Hub.create ?mount:config.mount ~batch:config.batch () in
    let shutdown = Atomic.make false in
    let started = Unix.gettimeofday () in
    let threads = ref [] in
    let threads_lock = Mutex.create () in
    let spawn f =
      let t = Thread.create f () in
      Mutex.lock threads_lock;
      threads := t :: !threads;
      Mutex.unlock threads_lock
    in
    (* file-tail sessions: first ingest errors are remembered and
       reported after the run (the daemon itself keeps serving) *)
    let tail_errors = ref [] in
    let tail_lock = Mutex.create () in
    List.iter
      (fun (tenant, path) ->
        spawn (fun () ->
            match tail_file hub ~shutdown ~follow:config.follow ~tenant path with
            | Ok () -> ()
            | Error msg ->
              Mutex.lock tail_lock;
              tail_errors := Printf.sprintf "%s (%s): %s" tenant path msg :: !tail_errors;
              Mutex.unlock tail_lock))
      config.ingests;
    let listener =
      match config.socket with
      | None -> Ok None
      | Some path -> Result.map (fun fd -> Some (path, fd)) (listen_socket path)
    in
    match listener with
    | Error _ as e -> e
    | Ok listener ->
      on_ready ();
      (match listener with
       | None -> ()
       | Some (_, fd) ->
         (* accept until a shutdown request flips the flag; the select
            timeout bounds how long a shutdown waits on an idle socket *)
         let rec accept_loop () =
           if not (Atomic.get shutdown) then begin
             match Unix.select [ fd ] [] [] 0.2 with
             | [], _, _ -> accept_loop ()
             | _ :: _, _, _ -> (
               match Unix.accept fd with
               | conn, _ ->
                 spawn (fun () ->
                     try
                       handle_connection hub ~shutdown ~batch:config.batch
                         ~handshake_timeout:config.handshake_timeout conn
                     with _ -> ());
                 accept_loop ()
               | exception Unix.Unix_error (_, _, _) -> accept_loop ())
             | exception Unix.Unix_error (_, _, _) -> accept_loop ()
           end
         in
         accept_loop ());
      (* join everything: tail threads stop at EOF (or at shutdown when
         following), connection threads at client EOF *)
      List.iter Thread.join !threads;
      (match listener with
       | None -> ()
       | Some (path, fd) ->
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         (try Sys.remove path with Sys_error _ -> ()));
      (match !tail_errors with
       | err :: _ -> Error err
       | [] ->
         let o_tenants =
           List.filter_map
             (fun tenant ->
               match (Hub.coverage hub ~tenant, Hub.stats hub ~tenant) with
               | Some o_coverage, Some o_stats ->
                 Some
                   { o_tenant = tenant; o_coverage; o_stats;
                     o_config = o_stats.Hub.st_config }
               | _ -> None)
             (Hub.tenant_ids hub)
         in
         Ok { o_tenants; o_wall_s = Unix.gettimeofday () -. started })
  end

(* --- clients --- *)

let with_conn ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect ~finally:(fun () -> close_both ic oc) (fun () -> f fd ic oc)

let client_ingest ~socket ~tenant ?mount ?config path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | file ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr file)
      (fun () ->
        (* declare the trace format up front — the server cannot seek *)
        let format =
          if Binary_io.is_binary_trace file then Protocol.Binary else Protocol.Text
        in
        with_conn ~socket (fun fd ic oc ->
            let hs =
              {
                Protocol.hs_role = Protocol.Ingest;
                hs_tenant = Some tenant;
                hs_mount = mount;
                hs_format = format;
                hs_config = config;
              }
            in
            output_string oc (Protocol.handshake_line hs ^ "\n");
            let buf = Bytes.create 65536 in
            let rec pump () =
              let n = input file buf 0 (Bytes.length buf) in
              if n > 0 then begin
                output oc buf 0 n;
                pump ()
              end
            in
            pump ();
            flush oc;
            (* half-close: the server sees EOF and replies *)
            Unix.shutdown fd Unix.SHUTDOWN_SEND;
            Protocol.read_frame ic))

let client_query ~socket ?tenant requests =
  with_conn ~socket (fun _fd ic oc ->
      let hs =
        {
          Protocol.hs_role = Protocol.Query;
          hs_tenant = tenant;
          hs_mount = None;
          hs_format = Protocol.Binary;
          hs_config = None;
        }
      in
      output_string oc (Protocol.handshake_line hs ^ "\n");
      flush oc;
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          send oc (line ^ "\n");
          match Protocol.read_frame ic with
          | Ok payload -> loop (payload :: acc) rest
          | Error _ as e -> e)
      in
      loop [] requests)
