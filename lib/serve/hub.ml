module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd
module Adequacy = Iocov_core.Adequacy
module Arg_class = Iocov_core.Arg_class
module Filter = Iocov_trace.Filter
module Binary_io = Iocov_trace.Binary_io
module Event = Iocov_trace.Event
module Anomaly = Iocov_util.Anomaly
module Crc32 = Iocov_util.Crc32
module Metrics = Iocov_obs.Metrics
module Model = Iocov_syscall.Model
module Vconfig = Iocov_vfs.Config

let m_batches =
  Metrics.counter Metrics.default "iocov_serve_batches_total"
    ~help:"Ingest batches committed by serve sessions."

let m_events =
  Metrics.counter Metrics.default "iocov_serve_events_total"
    ~help:"Trace records ingested by serve sessions (kept + dropped)."

let m_publishes =
  Metrics.counter Metrics.default "iocov_serve_publishes_total"
    ~help:"Epoch snapshots published (copy-on-write tenant copies)."

let m_queries =
  Metrics.counter Metrics.default "iocov_serve_queries_total"
    ~help:"Queries answered by the hub."

let m_cache_hits =
  Metrics.counter Metrics.default "iocov_serve_cache_hits_total"
    ~help:"Queries answered from the generation-stamped result cache."

let m_tenants =
  Metrics.gauge Metrics.default "iocov_serve_tenants"
    ~help:"Tenants known to the hub."

(* An epoch: one tenant's counters frozen at a generation.  Immutable
   after publication except the two lazy memos, which are idempotent
   (every writer computes the same value from the same frozen counts),
   so the unsynchronized caching race is benign. *)
type epoch = {
  e_gen : int;
  e_dense : Coverage.Dense.t;  (* frozen — never mutated after publish *)
  e_events : int;
  e_kept : int;
  e_completeness : Anomaly.completeness;
  mutable e_ref : Coverage.t option;    (* dense→reference memo *)
  mutable e_digest : string option;     (* CRC-32 snapshot memo *)
}

type session = {
  s_tenant : tenant;
  s_dense : Coverage.Dense.t;  (* private shard: drained into lock-free,
                                  merged + reset at each commit *)
  s_keep : (string -> bool) option;
  s_batch : int;
  mutable s_events : int;
  mutable s_kept : int;
  mutable s_comp : Anomaly.completeness;  (* this stream's ledger so far *)
  mutable s_closed : bool;
}

and tenant = {
  t_id : string;
  t_lock : Mutex.t;  (* guards live counters, totals, session list, epoch swap *)
  t_live : Coverage.Dense.t;
  mutable t_events : int;
  mutable t_kept : int;
  mutable t_no_hint : int;
  mutable t_no_match : int;
  mutable t_comp_closed : Anomaly.completeness;  (* finished streams *)
  mutable t_active : session list;
  t_generation : int Atomic.t;  (* bumped once per committed batch *)
  mutable t_published : epoch;
  t_cache_lock : Mutex.t;  (* guards the render cache only *)
  t_cache : (string, int * string) Hashtbl.t;  (* query -> (gen, payload) *)
  mutable t_publishes : int;
  mutable t_cache_hits : int;
  mutable t_cache_misses : int;
  mutable t_streams : int;
  mutable t_config : Vconfig.point option;  (* pinned by the first stream
                                               that declares one *)
}

type t = {
  h_lock : Mutex.t;  (* guards the tenant table *)
  h_tenants : (string, tenant) Hashtbl.t;
  h_mount : string option;
  h_batch : int;
}

let default_batch = 8192

let create ?mount ?(batch = default_batch) () =
  if batch <= 0 then invalid_arg "Hub.create: batch must be positive";
  { h_lock = Mutex.create (); h_tenants = Hashtbl.create 16; h_mount = mount;
    h_batch = batch }

let empty_epoch () =
  {
    e_gen = 0;
    e_dense = Coverage.Dense.create ();
    e_events = 0;
    e_kept = 0;
    e_completeness = Anomaly.clean ~events_read:0;
    e_ref = None;
    e_digest = None;
  }

let new_tenant id =
  {
    t_id = id;
    t_lock = Mutex.create ();
    t_live = Coverage.Dense.create ();
    t_events = 0;
    t_kept = 0;
    t_no_hint = 0;
    t_no_match = 0;
    t_comp_closed = Anomaly.clean ~events_read:0;
    t_active = [];
    t_generation = Atomic.make 0;
    t_published = empty_epoch ();
    t_cache_lock = Mutex.create ();
    t_cache = Hashtbl.create 16;
    t_publishes = 0;
    t_cache_hits = 0;
    t_cache_misses = 0;
    t_streams = 0;
    t_config = None;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let tenant_of t id =
  with_lock t.h_lock (fun () ->
      match Hashtbl.find_opt t.h_tenants id with
      | Some tn -> tn
      | None ->
        let tn = new_tenant id in
        Hashtbl.add t.h_tenants id tn;
        Metrics.Gauge.set m_tenants (Hashtbl.length t.h_tenants);
        tn)

let find_tenant t id =
  with_lock t.h_lock (fun () -> Hashtbl.find_opt t.h_tenants id)

let tenant_ids t =
  with_lock t.h_lock (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.h_tenants [])
  |> List.sort String.compare

(* A tenant's coverage is one shard of the config×cell matrix, so all
   its streams must agree on the config point.  The first declaration
   pins it; later sessions may re-declare the same point (by canonical
   config equality) but not switch. *)
let declare_config t ~tenant point =
  let tn = tenant_of t tenant in
  with_lock tn.t_lock (fun () ->
      match tn.t_config with
      | None ->
        tn.t_config <- Some point;
        Ok ()
      | Some p when Vconfig.equal p.Vconfig.pt_config point.Vconfig.pt_config -> Ok ()
      | Some p ->
        Error
          (Printf.sprintf "tenant %s is pinned to config %s (stream declared %s)"
             tenant p.Vconfig.pt_name point.Vconfig.pt_name))

let tenant_config t ~tenant =
  Option.bind (find_tenant t tenant) (fun tn ->
      with_lock tn.t_lock (fun () -> tn.t_config))

(* --- ingestion --- *)

let open_session t ~tenant ?mount () =
  let tn = tenant_of t tenant in
  let keep =
    match (mount, t.h_mount) with
    | Some m, _ | None, Some m ->
      let f = Filter.mount_point m in
      Some (fun hint -> Filter.matches_hint f hint)
    | None, None -> None
  in
  let s =
    {
      s_tenant = tn;
      s_dense = Coverage.Dense.create ();
      s_keep = keep;
      s_batch = t.h_batch;
      s_events = 0;
      s_kept = 0;
      s_comp = Anomaly.clean ~events_read:0;
      s_closed = false;
    }
  in
  with_lock tn.t_lock (fun () ->
      tn.t_active <- s :: tn.t_active;
      tn.t_streams <- tn.t_streams + 1);
  s

(* Commit one drained batch: the only moment a session touches shared
   state.  O(cells) merge + counter updates + one generation bump under
   the tenant lock; the session shard is reset (not reallocated) for
   the next batch. *)
let commit s ~produced ~kept ~no_hint ~no_match ~comp =
  let tn = s.s_tenant in
  s.s_events <- s.s_events + produced;
  s.s_kept <- s.s_kept + kept;
  with_lock tn.t_lock (fun () ->
      Coverage.Dense.merge_into ~dst:tn.t_live s.s_dense;
      tn.t_events <- tn.t_events + produced;
      tn.t_kept <- tn.t_kept + kept;
      tn.t_no_hint <- tn.t_no_hint + no_hint;
      tn.t_no_match <- tn.t_no_match + no_match;
      s.s_comp <- comp;
      Atomic.incr tn.t_generation);
  Coverage.Dense.reset s.s_dense;
  Filter.meter ~kept ~no_hint ~no_match;
  Metrics.Counter.incr m_batches;
  Metrics.Counter.add m_events produced

(* v1/v2 fallback: the batched event decoder plus hint classification —
   the same verdicts [drain_batch_dense] computes inline for v3. *)
let ingest_event_array s events =
  let kept = ref 0 and no_hint = ref 0 and no_match = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      let keep =
        match s.s_keep with
        | None -> true
        | Some keep -> (
          match e.Event.path_hint with
          | None ->
            incr no_hint;
            false
          | Some hint ->
            if keep hint then true
            else begin
              incr no_match;
              false
            end)
      in
      if keep then begin
        incr kept;
        match e.Event.payload with
        | Event.Tracked call -> Coverage.Dense.observe s.s_dense call e.Event.outcome
        | Event.Aux _ -> ()
      end)
    events;
  (!kept, !no_hint, !no_match)

let ingest_step s stream =
  if s.s_closed then Error "session is closed"
  else if Binary_io.stream_version stream = 3 then
    match
      Binary_io.drain_batch_dense stream ?keep_hint:s.s_keep ~dense:s.s_dense
        ~max:s.s_batch ()
    with
    | Error _ as e -> e
    | Ok d ->
      if d.Binary_io.dr_produced > 0 then
        commit s ~produced:d.Binary_io.dr_produced ~kept:d.dr_kept
          ~no_hint:d.dr_no_hint ~no_match:d.dr_no_match
          ~comp:(Binary_io.completeness stream);
      Ok d.Binary_io.dr_produced
  else
    match Binary_io.read_batch stream ~max:s.s_batch with
    | Error _ as e -> e
    | Ok events ->
      let produced = Array.length events in
      if produced > 0 then begin
        let kept, no_hint, no_match = ingest_event_array s events in
        commit s ~produced ~kept ~no_hint ~no_match
          ~comp:(Binary_io.completeness stream)
      end;
      Ok produced

let rec ingest_stream s stream =
  match ingest_step s stream with
  | Error _ as e -> e
  | Ok 0 -> Ok ()
  | Ok _ -> ingest_stream s stream

let ingest_events s events =
  if s.s_closed then invalid_arg "Hub.ingest_events: session is closed";
  let events = Array.of_list events in
  let produced = Array.length events in
  if produced > 0 then begin
    let kept, no_hint, no_match = ingest_event_array s events in
    commit s ~produced ~kept ~no_hint ~no_match
      ~comp:(Anomaly.clean ~events_read:(s.s_events + produced))
  end

let close_session s =
  if not s.s_closed then begin
    s.s_closed <- true;
    let tn = s.s_tenant in
    with_lock tn.t_lock (fun () ->
        tn.t_comp_closed <- Anomaly.merge tn.t_comp_closed s.s_comp;
        tn.t_active <- List.filter (fun s' -> s' != s) tn.t_active)
  end

let session_events s = s.s_events

(* Transport-level defects (partial frames, rotated tail files) land in
   the tenant's closed-stream ledger — not [s_comp], which each commit
   overwrites with the decoder's own cumulative account.  The
   generation bump invalidates cached completeness renderings. *)
let note_anomaly s (a : Anomaly.t) =
  let add =
    {
      (Anomaly.clean ~events_read:0) with
      Anomaly.truncated = a.Anomaly.kind = Anomaly.Truncated;
      anomalies = [ a ];
    }
  in
  let tn = s.s_tenant in
  with_lock tn.t_lock (fun () ->
      tn.t_comp_closed <- Anomaly.merge tn.t_comp_closed add;
      Atomic.incr tn.t_generation)

(* --- epochs --- *)

(* The dirty watermark: when the published epoch's generation equals
   the tenant's counter, nothing has been committed since it was
   copied, so the query takes no lock at all.  Only a stale epoch pays
   the O(cells) copy — and re-checks under the lock, because a
   concurrent query may have published while we waited. *)
let publish tn =
  let quick = tn.t_published in
  if quick.e_gen = Atomic.get tn.t_generation then quick
  else
    with_lock tn.t_lock (fun () ->
        let gen = Atomic.get tn.t_generation in
        if tn.t_published.e_gen = gen then tn.t_published
        else begin
          let comp =
            List.fold_left
              (fun acc s -> Anomaly.merge acc s.s_comp)
              tn.t_comp_closed tn.t_active
          in
          let ep =
            {
              e_gen = gen;
              e_dense = Coverage.Dense.snapshot tn.t_live;
              e_events = tn.t_events;
              e_kept = tn.t_kept;
              e_completeness = comp;
              e_ref = None;
              e_digest = None;
            }
          in
          tn.t_published <- ep;
          tn.t_publishes <- tn.t_publishes + 1;
          Metrics.Counter.incr m_publishes;
          ep
        end)

(* Dense→reference conversion and digesting happen outside every lock:
   the epoch is frozen, so late ingest batches cannot tear the render,
   and ingestion never waits on a slow report. *)
let epoch_ref ep =
  match ep.e_ref with
  | Some cov -> cov
  | None ->
    let cov = Coverage.Dense.to_reference ~metered:false ep.e_dense in
    ep.e_ref <- Some cov;
    cov

let epoch_digest ep =
  match ep.e_digest with
  | Some d -> d
  | None ->
    let d = Printf.sprintf "%08x" (Crc32.string (Snapshot.to_string (epoch_ref ep))) in
    ep.e_digest <- Some d;
    d

(* --- queries --- *)

type query =
  | Coverage
  | Tcd of string
  | Adequacy of string * float * float
  | Completeness
  | Digest

let query_key = function
  | Coverage -> "coverage"
  | Tcd arg -> "tcd " ^ arg
  | Adequacy (arg, target, theta) -> Printf.sprintf "adequacy %s %g %g" arg target theta
  | Completeness -> "completeness"
  | Digest -> "digest"

let arg_of_name name =
  match Arg_class.of_name name with
  | Some arg -> Ok arg
  | None -> Error (Printf.sprintf "unknown tracked argument %S" name)

let render_tcd tn ep arg_name =
  Result.map
    (fun arg ->
      let cov = epoch_ref ep in
      let frequencies = Array.of_list (List.map snd (Coverage.input_series cov arg)) in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "TCD sweep: %s, tenant %s (%d events)\n" arg_name tn.t_id
           ep.e_events);
      List.iter
        (fun (target, tcd) ->
          Buffer.add_string buf (Printf.sprintf "T=%-10.0f tcd %.3f\n" target tcd))
        (Tcd.sweep ~frequencies
           ~targets:(Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:1));
      Buffer.contents buf)
    (arg_of_name arg_name)

let render_adequacy tn ep arg_name target theta =
  Result.map
    (fun arg ->
      let cov = epoch_ref ep in
      let table = Report.adequacy_table ~name:tn.t_id cov ~arg ~target ~theta in
      let s = Adequacy.summarize (Adequacy.input_report cov arg ~target ~theta) in
      Printf.sprintf
        "%s\nsummary: %d untested, %d under-tested, %d adequate, %d over-tested\n" table
        s.Adequacy.untested s.Adequacy.under s.Adequacy.adequate s.Adequacy.over)
    (arg_of_name arg_name)

let render tn ep = function
  | Coverage ->
    let cov = epoch_ref ep in
    Ok
      (Report.suite_summary ~name:tn.t_id cov
      ^ "\n"
      ^ Report.untested_summary ~name:tn.t_id cov)
  | Tcd arg -> render_tcd tn ep arg
  | Adequacy (arg, target, theta) -> render_adequacy tn ep arg target theta
  | Completeness ->
    Ok (Report.completeness ~name:tn.t_id ep.e_completeness)
  | Digest -> Ok (epoch_digest ep ^ "\n")

let query t ~tenant q =
  Metrics.Counter.incr m_queries;
  match find_tenant t tenant with
  | None -> Error (Printf.sprintf "unknown tenant %S" tenant)
  | Some tn -> (
    let ep = publish tn in
    let key = query_key q in
    let cached =
      with_lock tn.t_cache_lock (fun () ->
          match Hashtbl.find_opt tn.t_cache key with
          | Some (gen, payload) when gen = ep.e_gen ->
            tn.t_cache_hits <- tn.t_cache_hits + 1;
            Metrics.Counter.incr m_cache_hits;
            Some payload
          | _ ->
            tn.t_cache_misses <- tn.t_cache_misses + 1;
            None)
    in
    match cached with
    | Some payload -> Ok payload
    | None -> (
      (* render outside both locks — the epoch is immutable *)
      match render tn ep q with
      | Error _ as e -> e
      | Ok payload ->
        with_lock tn.t_cache_lock (fun () ->
            Hashtbl.replace tn.t_cache key (ep.e_gen, payload));
        Ok payload))

let coverage t ~tenant =
  Option.map (fun tn -> epoch_ref (publish tn)) (find_tenant t tenant)

let digest t ~tenant =
  Option.map (fun tn -> epoch_digest (publish tn)) (find_tenant t tenant)

type stats = {
  st_events : int;
  st_kept : int;
  st_lost : int;
  st_generation : int;
  st_published : int;
  st_publishes : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_sessions : int;
  st_streams : int;
  st_config : (string * string) option;  (* lattice point name, config digest *)
}

let stats t ~tenant =
  Option.map
    (fun tn ->
      with_lock tn.t_lock (fun () ->
          let comp =
            List.fold_left
              (fun acc s -> Anomaly.merge acc s.s_comp)
              tn.t_comp_closed tn.t_active
          in
          {
            st_events = tn.t_events;
            st_kept = tn.t_kept;
            st_lost = comp.Anomaly.records_skipped + comp.Anomaly.events_abandoned;
            st_generation = Atomic.get tn.t_generation;
            st_published = tn.t_published.e_gen;
            st_publishes = tn.t_publishes;
            st_cache_hits = tn.t_cache_hits;
            st_cache_misses = tn.t_cache_misses;
            st_sessions = List.length tn.t_active;
            st_streams = tn.t_streams;
            st_config =
              Option.map
                (fun (p : Vconfig.point) ->
                  (p.Vconfig.pt_name, Vconfig.digest p.Vconfig.pt_config))
                tn.t_config;
          }))
    (find_tenant t tenant)

let render_stats st =
  Printf.sprintf
    "events %d (kept %d)\n\
     generation %d (published %d)\n\
     publishes %d\n\
     cache %d hits / %d misses\n\
     sessions %d live / %d total\n"
    st.st_events st.st_kept st.st_generation st.st_published st.st_publishes
    st.st_cache_hits st.st_cache_misses st.st_sessions st.st_streams
  ^
  match st.st_config with
  | None -> ""
  | Some (name, digest) -> Printf.sprintf "config %s (%s)\n" name digest
