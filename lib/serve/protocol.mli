(** The serve wire protocol (DESIGN.md §16).

    Everything here is pure string parsing and formatting, shared by
    the daemon ({!Server}), the CLI client ([iocov ingest] / [iocov
    query]), and the protocol unit tests.  A connection opens with one
    handshake line declaring its role; ingest connections then stream
    raw trace bytes (or text lines) to EOF, query connections send one
    request line at a time.  Every server reply is a length-framed
    [ok]/[err] header line followed by exactly that many payload bytes,
    so clients never need to guess where a multi-line report ends.

    The trace format is {e declared} in the handshake rather than
    sniffed: auto-detection ({!Iocov_trace.Binary_io.is_binary_trace})
    rewinds the channel, which a socket cannot do. *)

type role =
  | Ingest  (** the connection body is one trace stream *)
  | Query   (** the connection body is request lines *)

type format = Binary | Text

type handshake = {
  hs_role : role;
  hs_tenant : string option;  (** required for [Ingest] *)
  hs_mount : string option;   (** per-stream mount filter override *)
  hs_format : format;         (** [Binary] unless [format=text] *)
  hs_config : string option;
  (** config-lattice point name the stream's coverage belongs to
      ([config=NAME]).  The protocol carries the name opaquely; the
      server validates it against {!Iocov_vfs.Config.lattice} and pins
      it per tenant. *)
}

val hello : string
(** ["iocov-serve/1"] — the handshake line's leading token. *)

val handshake_line : handshake -> string
val parse_handshake : string -> (handshake, string) result

(** {2 Query requests} *)

type request =
  | Q_coverage                          (** suite + untested summaries *)
  | Q_tcd of string                     (** TCD sweep for one argument *)
  | Q_adequacy of string * float * float  (** arg, target, theta *)
  | Q_completeness
  | Q_digest                            (** CRC-32 snapshot digest, ledger-identical *)
  | Q_stats                             (** tenant counters: epochs, cache, events *)
  | Q_tenants                           (** global: known tenant ids *)
  | Q_metrics                           (** global: Prometheus exposition *)
  | Q_ping
  | Q_shutdown

type parsed = {
  pr_request : request;
  pr_tenant : string option;  (** [tenant=<id>] token, overriding the handshake *)
}

val parse_request : string -> (parsed, string) result
(** One request line, e.g. ["tcd open.flags tenant=alice"].  Defaults:
    [tcd] argument [open.flags]; [adequacy] argument [open.flags],
    target 1000, theta 10. *)

val request_line : ?tenant:string -> request -> string

(** {2 Response framing} *)

val ok_frame : string -> string
(** ["ok <len>\n<payload>"]. *)

val err_frame : string -> string
(** ["err <len>\n<message>"]. *)

val read_frame : in_channel -> (string, string) result
(** Client side: read one framed reply; [Ok payload] or the server's
    [Error message].  A malformed or truncated frame is an [Error]
    too. *)
