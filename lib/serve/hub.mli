(** The multi-tenant coverage hub (DESIGN.md §16) — transport-free.

    Many concurrent ingest sessions fold trace streams into per-tenant
    {!Iocov_core.Coverage.Dense} accumulators while queries read
    {e epoch snapshots}: immutable copies of a tenant's counters,
    published copy-on-write and stamped with a generation number.

    The concurrency discipline, designed so queries never block
    ingestion:

    - Each session decodes into a {e private} dense shard (the fused
      {!Iocov_trace.Binary_io.drain_batch_dense} hot path), touching no
      shared state; after each batch it takes the tenant lock only for
      the O(cells) merge into the tenant's live accumulator and a
      generation bump.
    - A query first checks, without any lock, whether the published
      epoch's generation still matches the tenant's generation counter
      — the dirty watermark.  If so (idle tenant, or a repeat query
      between batches) the epoch is reused for free.  Only a stale
      epoch takes the tenant lock, for the O(cells)
      {!Iocov_core.Coverage.Dense.snapshot} copy.
    - Rendering — the expensive part: dense→reference conversion,
      report formatting — happens {e outside} every lock, against the
      immutable epoch.  Rendered results are memoized in a per-tenant
      cache keyed by query text and invalidated by generation stamp.

    Digests are CRC-32 over the canonical snapshot text, computed
    exactly like the run ledger's, so a tenant's epoch digest can be
    compared byte-for-byte against an offline [iocov analyze] of the
    same trace. *)

module Coverage = Iocov_core.Coverage
module Filter = Iocov_trace.Filter
module Binary_io = Iocov_trace.Binary_io
module Event = Iocov_trace.Event
module Anomaly = Iocov_util.Anomaly

type t

val create : ?mount:string -> ?batch:int -> unit -> t
(** [mount] is the default path filter applied to every session (same
    semantics as [iocov analyze --mount]); omit it to keep every
    record.  [batch] (default 8192) is the per-session drain size. *)

val tenant_ids : t -> string list
(** Known tenant ids, sorted.  A tenant exists once a session has
    opened for it. *)

val declare_config : t -> tenant:string -> Iocov_vfs.Config.point -> (unit, string) result
(** Pin the tenant's config-lattice point (creating the tenant if
    needed).  A tenant's coverage is one shard of the config×cell
    matrix, so every stream must agree: the first declaration wins,
    re-declaring an equal config is a no-op, and declaring a different
    one is an [Error] naming both points. *)

val tenant_config : t -> tenant:string -> Iocov_vfs.Config.point option

(** {2 Ingestion} *)

type session

val open_session : t -> tenant:string -> ?mount:string -> unit -> session
(** A new ingest session for [tenant] (created on first use).  [mount]
    overrides the hub-wide filter for this stream only. *)

val ingest_step : session -> Binary_io.stream -> (int, string) result
(** Drain one batch from the stream into the session shard and commit
    it to the tenant.  Returns the number of records produced; [Ok 0]
    means EOF.  v3 streams take the fused dense path; v1/v2 fall back
    to the batched event decoder.  After an [Error] the stream is
    failed and the session's partial progress remains committed. *)

val ingest_stream : session -> Binary_io.stream -> (unit, string) result
(** {!ingest_step} to EOF. *)

val ingest_events : session -> Event.t list -> unit
(** Text-side ingestion: filter and commit already-parsed events (the
    socket server's [format=text] connections, live tracer sinks). *)

val close_session : session -> unit
(** Fold the session's stream ledger into the tenant's and forget the
    session.  Idempotent. *)

val session_events : session -> int
(** Records this session has produced so far (kept + dropped). *)

val note_anomaly : session -> Anomaly.t -> unit
(** Fold a transport-level defect (partial frame on a dropped
    connection, tailed file truncated or rotated under the cursor) into
    the session's completeness ledger — [Truncated] kinds also mark the
    stream truncated.  Safe after {!close_session}: the entry lands in
    the tenant's closed-stream ledger instead. *)

(** {2 Queries} *)

type query =
  | Coverage                              (** suite + untested summaries *)
  | Tcd of string                         (** argument name *)
  | Adequacy of string * float * float    (** argument, target, theta *)
  | Completeness
  | Digest

val query : t -> tenant:string -> query -> (string, string) result
(** Render one query against the tenant's current epoch (publishing a
    fresh one first if the tenant is dirty).  Results are cached until
    the next committed batch.  Unknown tenant or argument is an
    [Error]. *)

val coverage : t -> tenant:string -> Coverage.t option
(** The tenant's epoch coverage as a reference accumulator — what the
    ledger and the differential tests consume.  Publishes if dirty. *)

val digest : t -> tenant:string -> string option
(** Ledger-identical CRC-32 digest of the tenant's epoch snapshot. *)

type stats = {
  st_events : int;       (** records produced across all streams *)
  st_kept : int;
  st_lost : int;         (** skipped + abandoned records (lenient ingest) *)
  st_generation : int;   (** commits so far *)
  st_published : int;    (** generation of the published epoch *)
  st_publishes : int;    (** epochs actually copied (≤ generation) *)
  st_cache_hits : int;
  st_cache_misses : int;
  st_sessions : int;     (** live ingest sessions *)
  st_streams : int;      (** sessions ever opened *)
  st_config : (string * string) option;
  (** (lattice point name, config digest) pinned by {!declare_config};
      [None] for streams that never declared one *)
}

val stats : t -> tenant:string -> stats option

val render_stats : stats -> string
