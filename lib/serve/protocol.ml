type role = Ingest | Query
type format = Binary | Text

type handshake = {
  hs_role : role;
  hs_tenant : string option;
  hs_mount : string option;
  hs_format : format;
  hs_config : string option;
}

let hello = "iocov-serve/1"

let format_name = function Binary -> "binary" | Text -> "text"

let handshake_line hs =
  let buf = Buffer.create 64 in
  Buffer.add_string buf hello;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (match hs.hs_role with Ingest -> "ingest" | Query -> "query");
  (match hs.hs_tenant with
   | Some t -> Buffer.add_string buf (" tenant=" ^ t)
   | None -> ());
  (match hs.hs_mount with
   | Some m -> Buffer.add_string buf (" mount=" ^ m)
   | None -> ());
  (match hs.hs_config with
   | Some c -> Buffer.add_string buf (" config=" ^ c)
   | None -> ());
  if hs.hs_format <> Binary then
    Buffer.add_string buf (" format=" ^ format_name hs.hs_format);
  Buffer.contents buf

let split_words line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun w -> w <> "")

(* [key=value] tokens; keys never contain '='; values may (a mount path
   with an '=' in it survives). *)
let key_value token =
  match String.index_opt token '=' with
  | Some i ->
    Some (String.sub token 0 i, String.sub token (i + 1) (String.length token - i - 1))
  | None -> None

let parse_handshake line =
  match split_words line with
  | magic :: role :: rest when magic = hello ->
    let ( let* ) = Result.bind in
    let* role =
      match role with
      | "ingest" -> Ok Ingest
      | "query" -> Ok Query
      | r -> Error (Printf.sprintf "unknown role %S (expected ingest or query)" r)
    in
    let tenant = ref None and mount = ref None and format = ref Binary in
    let config = ref None in
    let* () =
      List.fold_left
        (fun acc token ->
          let* () = acc in
          match key_value token with
          | Some ("tenant", v) when v <> "" ->
            tenant := Some v;
            Ok ()
          | Some ("mount", v) when v <> "" ->
            mount := Some v;
            Ok ()
          | Some ("config", v) when v <> "" ->
            config := Some v;
            Ok ()
          | Some ("format", "binary") ->
            format := Binary;
            Ok ()
          | Some ("format", "text") ->
            format := Text;
            Ok ()
          | Some ("format", v) ->
            Error (Printf.sprintf "unknown format %S (expected binary or text)" v)
          | _ -> Error (Printf.sprintf "unknown handshake token %S" token))
        (Ok ()) rest
    in
    let* () =
      match (role, !tenant) with
      | Ingest, None -> Error "ingest handshake requires tenant=<id>"
      | _ -> Ok ()
    in
    Ok
      { hs_role = role; hs_tenant = !tenant; hs_mount = !mount;
        hs_format = !format; hs_config = !config }
  | _ ->
    Error
      (Printf.sprintf "bad handshake (expected %S, got %S)" (hello ^ " <role> ...") line)

(* --- requests --- *)

type request =
  | Q_coverage
  | Q_tcd of string
  | Q_adequacy of string * float * float
  | Q_completeness
  | Q_digest
  | Q_stats
  | Q_tenants
  | Q_metrics
  | Q_ping
  | Q_shutdown

type parsed = { pr_request : request; pr_tenant : string option }

let default_arg = "open.flags"
let default_target = 1000.0
let default_theta = 10.0

let parse_request line =
  let words = split_words line in
  (* the [tenant=] token may appear anywhere; strip it first *)
  let tenant = ref None in
  let words =
    List.filter
      (fun w ->
        match key_value w with
        | Some ("tenant", v) when v <> "" ->
          tenant := Some v;
          false
        | _ -> true)
      words
  in
  let float_arg what s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | _ -> Error (Printf.sprintf "bad %s %S (expected a positive number)" what s)
  in
  let ( let* ) = Result.bind in
  let* request =
    match words with
    | [ "coverage" ] -> Ok Q_coverage
    | [ "tcd" ] -> Ok (Q_tcd default_arg)
    | [ "tcd"; arg ] -> Ok (Q_tcd arg)
    | [ "adequacy" ] -> Ok (Q_adequacy (default_arg, default_target, default_theta))
    | [ "adequacy"; arg ] -> Ok (Q_adequacy (arg, default_target, default_theta))
    | [ "adequacy"; arg; target ] ->
      let* target = float_arg "target" target in
      Ok (Q_adequacy (arg, target, default_theta))
    | [ "adequacy"; arg; target; theta ] ->
      let* target = float_arg "target" target in
      let* theta = float_arg "theta" theta in
      Ok (Q_adequacy (arg, target, theta))
    | [ "completeness" ] -> Ok Q_completeness
    | [ "digest" ] -> Ok Q_digest
    | [ "stats" ] -> Ok Q_stats
    | [ "tenants" ] -> Ok Q_tenants
    | [ "metrics" ] -> Ok Q_metrics
    | [ "ping" ] -> Ok Q_ping
    | [ "shutdown" ] -> Ok Q_shutdown
    | [] -> Error "empty request"
    | w :: _ -> Error (Printf.sprintf "unknown request %S" w)
  in
  Ok { pr_request = request; pr_tenant = !tenant }

let request_line ?tenant request =
  let base =
    match request with
    | Q_coverage -> "coverage"
    | Q_tcd arg -> "tcd " ^ arg
    | Q_adequacy (arg, target, theta) ->
      Printf.sprintf "adequacy %s %g %g" arg target theta
    | Q_completeness -> "completeness"
    | Q_digest -> "digest"
    | Q_stats -> "stats"
    | Q_tenants -> "tenants"
    | Q_metrics -> "metrics"
    | Q_ping -> "ping"
    | Q_shutdown -> "shutdown"
  in
  match tenant with Some t -> base ^ " tenant=" ^ t | None -> base

(* --- framing --- *)

let ok_frame payload = Printf.sprintf "ok %d\n%s" (String.length payload) payload
let err_frame msg = Printf.sprintf "err %d\n%s" (String.length msg) msg

let max_frame = 1 lsl 26

let read_frame ic =
  match In_channel.input_line ic with
  | None -> Error "connection closed before reply"
  | Some header -> (
    let read_body n =
      if n < 0 || n > max_frame then
        Error (Printf.sprintf "implausible frame length %d" n)
      else
        match really_input_string ic n with
        | body -> Ok body
        | exception End_of_file -> Error "truncated reply frame"
    in
    match split_words header with
    | [ "ok"; len ] -> (
      match int_of_string_opt len with
      | Some n -> read_body n
      | None -> Error (Printf.sprintf "bad frame header %S" header))
    | [ "err"; len ] -> (
      match int_of_string_opt len with
      | Some n -> (
        match read_body n with Ok msg -> Error msg | Error _ as e -> e)
      | None -> Error (Printf.sprintf "bad frame header %S" header))
    | _ -> Error (Printf.sprintf "bad frame header %S" header))
