(** The live progress sink ([--progress], DESIGN.md §14).

    A tracker turns the replay engine's {!Iocov_par.Replay.watch}
    callbacks into periodic snapshots: windowed and cumulative
    events/s, input/output cells lit out of {!Iocov_core.Plan.total},
    a live adequacy percentage, anomaly and error-budget burn,
    checkpoint age, and an ETA for bounded sources.

    The tracker runs on the producer domain and works at any [--jobs]:
    throughput, anomaly, and checkpoint figures are producer-side and
    always available, while coverage-dependent figures (cells lit,
    adequacy) come from the lazy [peek] — a zero-copy
    {!Iocov_par.Replay.view} that reads cells in place, so a mid-run
    snapshot costs one pass over the plan, never an accumulator copy —
    and are present only when the engine can expose an accumulator
    mid-run: the inline [--jobs 1] path.  Sharded runs still get a final coverage line from
    {!finish}, which the driver calls with the merged outcome.

    Time comes from an injectable clock (default {!Iocov_obs.Clock}),
    so the throughput/ETA arithmetic is unit-testable with a fake
    clock and deterministic in test mode. *)

type format = Text | Jsonl

type conf = {
  every : int;            (** events between snapshots; positive *)
  format : format;
  emit : string -> unit;  (** receives each rendered snapshot line *)
  budget : Iocov_util.Anomaly.budget option;
      (** the run's error budget, for burn percentage *)
}

val default_every : int
(** 10,000 events. *)

type snapshot = {
  p_events : int;            (** records pushed so far *)
  p_elapsed_s : float;
  p_rate_cum : float;        (** events/s since the tracker started *)
  p_rate_win : float;        (** events/s since the previous snapshot *)
  p_eta_s : float option;    (** bounded sources only *)
  p_cells : (int * int * int) option;
      (** lit (variant, input, output) cells, when coverage is peekable *)
  p_adequacy_pct : float option;
      (** share of input/output cells within one order of magnitude of
          the target frequency (1000), per {!Iocov_core.Adequacy} *)
  p_anomalies : int;         (** corrupt records + retries + abandons *)
  p_budget_burn_pct : float option;
  p_checkpoint_age : int option;
      (** events since the last checkpoint write, when checkpointing *)
  p_final : bool;
}

type t

val tracker : ?clock:(unit -> float) -> ?total:int -> conf -> t
(** [total] is the bounded-source event count, for ETA. *)

val tick :
  t -> events:int -> peek:(unit -> Iocov_par.Replay.view option) -> unit
(** Called per pushed batch (cheap when below the threshold); emits a
    snapshot once [every] more events have been pushed.  [peek] is only
    invoked when a snapshot is actually emitted. *)

val finish :
  t -> events:int -> peek:(unit -> Iocov_par.Replay.view option) -> unit
(** Force the final snapshot (marked [final]); the driver calls this
    with the merged outcome's coverage, so the closing line carries
    cell and adequacy figures at any job count. *)

val snapshot :
  t -> events:int -> peek:(unit -> Iocov_par.Replay.view option) ->
  final:bool -> snapshot
(** Compute without emitting — the testable core. *)

val render_text : snapshot -> string
val render_jsonl : snapshot -> string

val emitted : t -> int
(** Snapshots emitted so far. *)

val adequacy_pct : Iocov_core.Coverage.t -> float
(** The live adequacy figure on its own. *)
