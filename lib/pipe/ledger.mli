(** The persistent run ledger ([.iocov/runs.jsonl], DESIGN.md §14).

    Every pipeline run appends one JSON-lines manifest record —
    subcommand, flags, seed, jobs, counter backend, event and loss
    counts, wall and per-stage durations, and a coverage fingerprint
    (CRC-32 digest of the canonical snapshot plus a dense one-bit-per-
    cell bitmap over the {!Iocov_core.Plan} universe).  [iocov runs]
    lists, shows, and diffs the records, turning coverage-regression
    detection into a one-command check.

    The file is append-only; each append is a single [write] of one
    line, so concurrent runs interleave whole records.  A crash can at
    worst truncate the final line, which {!load} counts and skips
    rather than failing — the lenient-ingestion philosophy applied to
    our own telemetry. *)

type record = {
  r_id : string;              (** assigned by {!append}: ["r<n>"] *)
  r_time : float option;      (** unix seconds; [None] in determinism mode *)
  r_subcommand : string;
  r_label : string;           (** source label: trace path, suite name… *)
  r_tenant : string option;   (** serve tenant id; [None] for offline runs *)
  r_flags : (string * string) list;
  r_seed : int option;
  r_jobs : int;
  r_counters : string;
  r_events : int;
  r_kept : int;
  r_lost : int;               (** skipped + abandoned records *)
  r_wall_s : float;
  r_stages : (string * float) list;  (** root span name → seconds *)
  r_digest : string;          (** CRC-32 of {!Iocov_core.Snapshot.to_string}, hex *)
  r_cells : int * int * int;  (** lit (variant, input, output) cells *)
  r_bitmap : string;          (** hex bitmap, one bit per plan cell *)
  r_config : (string * string) option;
  (** (lattice point name, config digest) the run executed under;
      [None] for pre-lattice records and streams that never declared
      one.  [runs diff] refuses cross-config pairs unless asked. *)
}

val default_dir : string
(** [".iocov"]. *)

val path : dir:string -> string

val digest : Iocov_core.Coverage.t -> string
val bitmap : Iocov_core.Coverage.t -> string

val make :
  ?time:float -> ?seed:int -> ?tenant:string -> ?config:string * string ->
  subcommand:string -> label:string ->
  flags:(string * string) list -> jobs:int -> counters:string -> events:int ->
  kept:int -> lost:int -> wall_s:float -> stages:(string * float) list ->
  Iocov_core.Coverage.t -> record
(** Build a record (id empty until {!append} assigns one).  [tenant]
    marks records appended by serve sessions; the list view shows it as
    a column, so per-tenant runs are diffable like any others. *)

val to_json : record -> Iocov_util.Json.t
val of_json : Iocov_util.Json.t -> (record, string) result
val parse_line : string -> (record, string) result

type loaded = { records : record list; bad_lines : int }

val load : dir:string -> loaded
(** All readable records in file order; unreadable lines (truncated
    tail after a crash, foreign garbage) are counted in [bad_lines]. *)

val append : dir:string -> record -> (record, string) result
(** Create [dir] if needed, assign the next id, append one line.
    Returns the record with its id. *)

val last : int -> loaded -> loaded
(** Keep only the newest [n] records — [runs list --last N].  Ids are
    untouched (they name positions in the full file). *)

val find : record list -> string -> record option
(** By id ([r7]) or 1-based position ([7]). *)

type diff = {
  d_gained : int list;  (** plan cell ids lit in B but not in A *)
  d_lost : int list;    (** lit in A but not in B *)
  d_rate_a : float;     (** events/s of A *)
  d_rate_b : float;
  d_identical : bool;   (** digests equal — byte-identical coverage *)
}

val diff : record -> record -> diff
(** Compare two runs' coverage bitmaps (XOR semantics) and throughput.
    Two byte-identical runs yield empty gained/lost and
    [d_identical = true]. *)

val config_clash : record -> record -> bool
(** True when both records name a config and the digests differ — the
    pair a plain [runs diff] refuses ([--cross-config] overrides).
    Records without a config never clash. *)

val config_name : record -> string
(** The lattice point name, or ["-"]. *)

val bitmap_cells : string -> int list
(** Lit cell ids of a hex bitmap, ascending. *)

val render_list : loaded -> string
val render_show : record -> string
val render_diff : a:record -> b:record -> diff -> string
