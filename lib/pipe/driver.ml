module Replay = Iocov_par.Replay
module Pool = Iocov_par.Pool
module Checkpoint = Iocov_par.Checkpoint
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Syzlang = Iocov_trace.Syzlang
module Anomaly = Iocov_util.Anomaly
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span

let runs_total kind =
  Metrics.counter Metrics.default "iocov_pipe_runs_total"
    ~labels:[ ("source", kind) ]
    ~help:"Pipeline runs started, by source kind."

type config = {
  jobs : int;
  batch : int;
  counters : Replay.counters;
  ingest : Replay.ingest;
  policy : Pool.policy;
  limit : int option;
  resume : (string * Checkpoint.t) option;
  progress : Progress.conf option;
}

let default =
  {
    jobs = 1;
    batch = Replay.default_batch;
    counters = Replay.Dense;
    ingest = Replay.Strict;
    policy = Pool.default_policy;
    limit = None;
    resume = None;
    progress = None;
  }

let config ?(jobs = default.jobs) ?(batch = default.batch)
    ?(counters = default.counters) ?(ingest = default.ingest)
    ?(policy = default.policy) ?limit ?resume ?progress () =
  { jobs; batch; counters; ingest; policy; limit; resume; progress }

type run = { product : Sink.product; sections : (string * string) list }

let product_of ~label ?(notes = []) (o : Replay.outcome) =
  {
    Sink.label;
    coverage = o.coverage;
    completeness = o.completeness;
    events = o.events;
    kept = o.kept;
    dropped = o.dropped;
    shards = o.shards;
    batches = o.batches;
    notes;
  }

(* At most one Checkpoint sink; split it from the Render sinks so the
   engine can act during the traversal while renders run after it. *)
let split_sinks sinks =
  let ckpts, renders =
    List.partition (function Sink.Checkpoint _ -> true | Sink.Render _ -> false) sinks
  in
  match ckpts with
  | [] -> Ok (None, renders)
  | [ Sink.Checkpoint { path; every } ] ->
    if every <= 0 then Error "checkpoint interval must be positive"
    else Ok (Some (path, every), renders)
  | _ -> Error "a pipeline takes at most one checkpoint sink"

let truncate limit events =
  match limit with
  | None -> events
  | Some n ->
    let rec take n acc = function
      | e :: tl when n > 0 -> take (n - 1) (e :: acc) tl
      | _ -> List.rev acc
    in
    take n [] events

(* A crash mid-write must leave the previous snapshot intact — and a
   failed write must not leave a [*.tmp] dropping next to it (same
   hygiene as [Checkpoint.save]). *)
let atomic_snapshot path cov =
  let tmp = path ^ ".tmp" in
  try
    Snapshot.save_file tmp cov;
    Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* Syzlang programs carry no return values and are tiny: feed input-only
   coverage directly, on the configured counter backend, matching the
   engine's metering discipline (dense accumulates unmetered, credited
   once after conversion). *)
let run_syz ~counters ~label text =
  match Syzlang.parse_program text with
  | Error msg -> Error msg
  | Ok program ->
    let coverage =
      match counters with
      | Replay.Reference ->
        let cov = Coverage.create () in
        List.iter (Coverage.observe_input_only cov) program.Syzlang.calls;
        cov
      | Replay.Dense ->
        let d = Coverage.Dense.create () in
        List.iter (Coverage.Dense.observe_input_only d) program.Syzlang.calls;
        let cov = Coverage.Dense.to_reference ~metered:false d in
        Coverage.meter_counts cov;
        cov
    in
    let calls = List.length program.Syzlang.calls in
    let notes =
      List.map
        (fun (line, reason) -> Printf.sprintf "skipped line %d: %s" line reason)
        program.Syzlang.skipped
    in
    Ok
      {
        Sink.label;
        coverage;
        completeness = Anomaly.clean ~events_read:calls;
        events = calls;
        kept = calls;
        dropped = 0;
        shards = 1;
        batches = 0;
        notes;
      }

(* How often (in pushed events) the live feed consults its watch hook.
   A power of two, so the hot-path check is one [land].  Snapshot
   thresholds are therefore honoured at this granularity — invisible at
   the default [Progress.default_every] of 10,000. *)
let watch_stride = 64

let run_live ~pool ~cfg ~filter ~stage ~ckpt ~watch ~label feed =
  match ckpt with
  | Some _ when cfg.jobs <> 1 ->
    Error "live checkpointing requires --jobs 1 (sharded accumulators are private)"
  | _ ->
    let s =
      Replay.session ~pool ~batch:cfg.batch ~counters:cfg.counters
        ~ingest:cfg.ingest ~policy:cfg.policy ?filter ?stage ()
    in
    let emit =
      match ckpt with
      | None -> Replay.sink s
      | Some (path, every) ->
        let seen = ref 0 in
        fun ev ->
          Replay.sink s ev;
          incr seen;
          if !seen mod every = 0 then
            match Replay.progress s with
            | Some (cov, _) -> atomic_snapshot path cov
            | None -> ()
    in
    let emit =
      match watch with
      | None -> emit
      | Some w ->
        let pushed = ref 0 in
        (* [peek] flushes the session's partial batch, which is safe
           (and only happens) when a snapshot actually fires; one shared
           closure keeps the per-event path allocation-free.  The watch
           itself is only consulted every [watch_stride] events — its
           threshold check is cheap but not free, and at millions of
           events per second even two closure calls per event register
           on the replay bench. *)
        let peek () = Replay.progress_view s in
        fun ev ->
          emit ev;
          incr pushed;
          if !pushed land (watch_stride - 1) = 0 then w ~pushed:!pushed ~peek
    in
    let fed = try Ok (feed emit) with exn -> Error (Printexc.to_string exn) in
    (* Always complete: the shards must be joined even if the feed died. *)
    let completed = Replay.complete s in
    (match (completed, fed) with
     | Error msg, _ | _, Error msg -> Error msg
     | Ok outcome, Ok () ->
       Option.iter
         (fun (path, _) -> atomic_snapshot path outcome.Replay.coverage)
         ckpt;
       Ok (product_of ~label outcome))

(* Bounded-source event count, for the progress tracker's ETA. *)
let source_total cfg source =
  match source with
  | Source.Events { events; _ } ->
    let n = List.length events in
    Some (match cfg.limit with Some l -> min l n | None -> n)
  | Source.Syz _ -> None
  | Source.File _ | Source.Channel _ | Source.Live _ -> cfg.limit

let execute ~cfg ~stages ~ckpt ~watch source =
  let filter, stage = Stage.compile stages in
  let reject_resume k =
    match cfg.resume with
    | Some _ -> Error (Printf.sprintf "--resume applies to file sources, not %s" k)
    | None -> Ok ()
  in
  let reject_ckpt k =
    match ckpt with
    | Some _ ->
      Error (Printf.sprintf "checkpoint sinks apply to file and live sources, not %s" k)
    | None -> Ok ()
  in
  let ( let* ) = Result.bind in
  match source with
  | Source.Syz { label; text } ->
    let* () = reject_resume "syzlang programs" in
    let* () = reject_ckpt "syzlang programs" in
    if stages <> [] then Error "stages do not apply to syzlang sources (input-only)"
    else run_syz ~counters:cfg.counters ~label text
  | Source.Events { label; events } ->
    let* () = reject_resume "event lists" in
    let* () = reject_ckpt "event lists" in
    let pool = Pool.create ~jobs:cfg.jobs () in
    let events = truncate cfg.limit events in
    (try
       Ok
         (product_of ~label
            (Replay.analyze_events ~pool ~batch:cfg.batch ~counters:cfg.counters
               ~ingest:cfg.ingest ~policy:cfg.policy ?watch ?filter ?stage events))
     with Failure msg -> Error msg)
  | Source.Channel { label; ic } ->
    let* () = reject_resume "channels" in
    let* () = reject_ckpt "channels" in
    let pool = Pool.create ~jobs:cfg.jobs () in
    Result.map (product_of ~label)
      (Replay.analyze_channel ~pool ~batch:cfg.batch ~counters:cfg.counters
         ~ingest:cfg.ingest ~policy:cfg.policy ?watch ?limit:cfg.limit ?filter ?stage
         ic)
  | Source.File { path } ->
    let pool = Pool.create ~jobs:cfg.jobs () in
    let checkpoint =
      Option.map
        (fun (ckpt_path, ckpt_every) -> { Replay.ckpt_path; ckpt_every })
        ckpt
    in
    Result.map (product_of ~label:path)
      (Replay.analyze_file ~pool ~batch:cfg.batch ~counters:cfg.counters
         ~ingest:cfg.ingest ~policy:cfg.policy ?watch ?checkpoint ?resume:cfg.resume
         ?limit:cfg.limit ?filter ?stage path)
  | Source.Live { label; feed } ->
    let* () = reject_resume "live sources" in
    let pool = Pool.create ~jobs:cfg.jobs () in
    run_live ~pool ~cfg ~filter ~stage ~ckpt ~watch ~label feed

let run ?(config = default) ?(stages = []) ?(sinks = []) source =
  let kind = Source.kind source in
  Metrics.Counter.incr (runs_total kind);
  Span.with_ ~name:("pipe/" ^ kind) @@ fun () ->
  match split_sinks sinks with
  | Error _ as e -> e
  | Ok (ckpt, renders) ->
    let tracker =
      Option.map
        (fun conf -> Progress.tracker ?total:(source_total config source) conf)
        config.progress
    in
    let watch =
      Option.map
        (fun tr -> fun ~pushed ~peek -> Progress.tick tr ~events:pushed ~peek)
        tracker
    in
    (match execute ~cfg:config ~stages ~ckpt ~watch source with
     | Error _ as e -> e
     | Ok product ->
       (* the closing snapshot always carries coverage figures: the
          merged outcome is in hand at any job count *)
       Option.iter
         (fun tr ->
           Progress.finish tr ~events:product.Sink.events
             ~peek:(fun () ->
               Some
                 (Replay.view_of_coverage product.Sink.coverage
                    ~events:product.Sink.events)))
         tracker;
       let sections =
         List.filter_map
           (function
             | Sink.Render { name; emit } ->
               Option.map (fun text -> (name, text)) (emit product)
             | Sink.Checkpoint _ -> None)
           renders
       in
       Ok { product; sections })
