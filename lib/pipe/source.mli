(** Where a pipeline's events come from.

    One constructor per ingestion mode the analyzer supports; the
    {!Driver} turns each into the engine feed it needs — decoded
    batches for binary traces, raw line batches for text (parsed on the
    worker shards), a push session for live suite runs, and a direct
    input-only observation pass for Syzkaller programs.  A source
    carries no policy: jobs, counters, strictness, and checkpointing
    all live in the {!Driver.config}, so the same source runs under any
    execution settings. *)

type t =
  | Events of { label : string; events : Iocov_trace.Event.t list }
      (** An in-memory event list (tests, benches, synthetic traces). *)
  | File of { path : string }
      (** A stored trace file.  Text vs binary (v1 or v2) is
          auto-detected from the magic; strict vs lenient decode comes
          from the driver's [ingest]. *)
  | Channel of { label : string; ic : in_channel }
      (** Like [File], minus checkpoint/resume (no stable path). *)
  | Live of { label : string; feed : (Iocov_trace.Event.t -> unit) -> unit }
      (** A live event producer: [feed emit] runs the workload (a suite
          under its tracer), calling [emit] once per raw traced record.
          The driver batches and dispatches exactly like a replay. *)
  | Syz of { label : string; text : string }
      (** A Syzkaller program log (syzlang).  Programs carry no return
          values, so this source feeds {e input} coverage only; stages
          do not apply (there are no trace records to transform). *)

val events : ?label:string -> Iocov_trace.Event.t list -> t
(** [label] defaults to ["<events>"]. *)

val file : string -> t

val channel : ?label:string -> in_channel -> t
(** [label] defaults to ["<channel>"]. *)

val live : ?label:string -> ((Iocov_trace.Event.t -> unit) -> unit) -> t
(** [label] defaults to ["<live>"]. *)

val syz : ?label:string -> string -> t
(** A syzlang program from its text; [label] defaults to ["<syz>"]. *)

val label : t -> string
(** The name reports and spans use for this source. *)

val kind : t -> string
(** ["events" | "file" | "channel" | "live" | "syz"] — the metrics
    label. *)
