type t =
  | Events of { label : string; events : Iocov_trace.Event.t list }
  | File of { path : string }
  | Channel of { label : string; ic : in_channel }
  | Live of { label : string; feed : (Iocov_trace.Event.t -> unit) -> unit }
  | Syz of { label : string; text : string }

let events ?(label = "<events>") events = Events { label; events }
let file path = File { path }
let channel ?(label = "<channel>") ic = Channel { label; ic }
let live ?(label = "<live>") feed = Live { label; feed }
let syz ?(label = "<syz>") text = Syz { label; text }

let label = function
  | Events { label; _ } | Channel { label; _ } | Live { label; _ } | Syz { label; _ } ->
    label
  | File { path } -> path

let kind = function
  | Events _ -> "events"
  | File _ -> "file"
  | Channel _ -> "channel"
  | Live _ -> "live"
  | Syz _ -> "syz"
