(** What happens to events between the source and the counters.

    The paper's pipeline is tracer → filter → variant handler →
    partitioner → counters (Section 3).  The variant handler and the
    partitioner are compiled into the coverage accumulators
    ({!Iocov_core.Coverage}, {!Iocov_core.Plan}) — separating them
    would forfeit the byte-identical-snapshot contract — so a stage
    chain expresses the {e trace-record} half: the mount filter, any
    extra per-record rewrites, and metering taps.

    Stages are compiled once per run ({!compile}) into the engine's
    shard-side batch transform; every stage must therefore be pure and
    deterministic — it runs on any worker shard, and supervision may
    re-run a batch after a worker exception. *)

type t =
  | Keep of Iocov_trace.Filter.t
      (** The mount-point / regex filter.  As the head of the chain it
          compiles to the engine's metered
          {!Iocov_trace.Filter.keep_all} fast path — bit-for-bit the
          pre-pipe behavior. *)
  | Map of { name : string; f : Iocov_trace.Event.t -> Iocov_trace.Event.t option }
      (** A named per-record rewrite; [None] drops the record. *)
  | Meter of { name : string }
      (** A counting tap: adds the batch size to
          [iocov_pipe_stage_events_total{stage=name}] and passes the
          batch through unchanged.  Like all engine metrics, totals are
          observability, not part of the determinism contract (a
          retried batch meters twice). *)

val filter : Iocov_trace.Filter.t -> t
val mount : string -> t
(** [mount point] is [filter (Filter.mount_point point)]. *)

val map : name:string -> (Iocov_trace.Event.t -> Iocov_trace.Event.t option) -> t
val meter : string -> t

val name : t -> string

val compile :
  t list ->
  Iocov_trace.Filter.t option
  * (Iocov_trace.Event.t list -> Iocov_trace.Event.t list) option
(** Split a chain into the engine's two slots: a leading {!Keep}
    becomes the engine filter (its metered fast path), and the rest
    fold left-to-right into one batch transform.  [(None, None)] for
    the empty chain — keep everything. *)
