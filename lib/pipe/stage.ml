module Filter = Iocov_trace.Filter
module Event = Iocov_trace.Event
module Metrics = Iocov_obs.Metrics

type t =
  | Keep of Filter.t
  | Map of { name : string; f : Event.t -> Event.t option }
  | Meter of { name : string }

let filter f = Keep f
let mount point = Keep (Filter.mount_point point)
let map ~name f = Map { name; f }
let meter name = Meter { name }

let name = function
  | Keep _ -> "filter"
  | Map { name; _ } -> name
  | Meter { name; _ } -> name

(* Resolve each stage to its batch transform once, at compile time —
   the per-batch path does no registry lookups. *)
let transform_of = function
  | Keep f -> Filter.keep_all f
  | Map { f; _ } -> List.filter_map f
  | Meter { name } ->
    let c =
      Metrics.counter Metrics.default "iocov_pipe_stage_events_total"
        ~labels:[ ("stage", name) ]
        ~help:"Events entering a metered pipeline stage."
    in
    fun events ->
      Metrics.Counter.add c (List.length events);
      events

let chain = function
  | [] -> None
  | stages ->
    let fns = List.map transform_of stages in
    Some (fun events -> List.fold_left (fun evs f -> f evs) events fns)

let compile = function
  | Keep f :: rest -> (Some f, chain rest)
  | stages -> (None, chain stages)
