module Coverage = Iocov_core.Coverage
module Plan = Iocov_core.Plan
module Snapshot = Iocov_core.Snapshot
module Partition = Iocov_core.Partition
module Arg_class = Iocov_core.Arg_class
module Model = Iocov_syscall.Model
module Crc32 = Iocov_util.Crc32
module Json = Iocov_util.Json

let default_dir = ".iocov"
let file_name = "runs.jsonl"
let path ~dir = Filename.concat dir file_name

type record = {
  r_id : string;
  r_time : float option;          (* unix seconds; None in determinism mode *)
  r_subcommand : string;
  r_label : string;               (* source label: trace path, suite name… *)
  r_tenant : string option;       (* serve tenant id; None for offline runs *)
  r_flags : (string * string) list;
  r_seed : int option;
  r_jobs : int;
  r_counters : string;
  r_events : int;
  r_kept : int;
  r_lost : int;                   (* skipped + abandoned records *)
  r_wall_s : float;
  r_stages : (string * float) list;  (* root span name -> seconds *)
  r_digest : string;              (* crc32 of the coverage snapshot, hex *)
  r_cells : int * int * int;      (* lit variant, input, output cells *)
  r_bitmap : string;              (* hex, one bit per plan cell *)
  r_config : (string * string) option;  (* lattice point name, config digest *)
}

(* --- coverage fingerprints --- *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  if String.length s mod 2 <> 0 then Error "odd-length hex string"
  else
    try
      Ok
        (Bytes.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex string"

let digest cov = Printf.sprintf "%08x" (Crc32.string (Snapshot.to_string cov))

let bitmap cov = hex_of_bytes (Coverage.cell_bitmap cov)

(* --- construction --- *)

let make ?time ?seed ?tenant ?config ~subcommand ~label ~flags ~jobs ~counters ~events
    ~kept ~lost ~wall_s ~stages cov =
  {
    r_id = "";  (* assigned by append *)
    r_time = time;
    r_subcommand = subcommand;
    r_label = label;
    r_tenant = tenant;
    r_flags = flags;
    r_seed = seed;
    r_jobs = jobs;
    r_counters = counters;
    r_events = events;
    r_kept = kept;
    r_lost = lost;
    r_wall_s = wall_s;
    r_stages = stages;
    r_digest = digest cov;
    r_cells = Coverage.lit_cells cov;
    r_bitmap = bitmap cov;
    r_config = config;
  }

(* --- JSON (one object per line; schema "iocov-run/1") --- *)

let to_json r =
  let v, i, o = r.r_cells in
  Json.Obj
    [ ("schema", Json.String "iocov-run/1");
      ("id", Json.String r.r_id);
      ("time", match r.r_time with Some t -> Json.Float t | None -> Json.Null);
      ("subcommand", Json.String r.r_subcommand);
      ("label", Json.String r.r_label);
      ("tenant", match r.r_tenant with Some t -> Json.String t | None -> Json.Null);
      ("flags", Json.Obj (List.map (fun (k, x) -> (k, Json.String x)) r.r_flags));
      ("seed", match r.r_seed with Some s -> Json.Int s | None -> Json.Null);
      ("jobs", Json.Int r.r_jobs);
      ("counters", Json.String r.r_counters);
      ("events", Json.Int r.r_events);
      ("kept", Json.Int r.r_kept);
      ("lost", Json.Int r.r_lost);
      ("wall_s", Json.Float r.r_wall_s);
      ( "stages",
        Json.Obj (List.map (fun (name, s) -> (name, Json.Float s)) r.r_stages) );
      ("digest", Json.String r.r_digest);
      ( "cells",
        Json.Obj
          [ ("variant", Json.Int v); ("input", Json.Int i); ("output", Json.Int o);
            ("total", Json.Int Plan.total) ] );
      ("bitmap", Json.String r.r_bitmap);
      ( "config",
        match r.r_config with
        | None -> Json.Null
        | Some (name, digest) ->
          Json.Obj [ ("name", Json.String name); ("digest", Json.String digest) ] ) ]

let of_json j =
  let ( let* ) = Option.bind in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  match
    let* id = str "id" in
    let* subcommand = str "subcommand" in
    let* label = str "label" in
    let* jobs = int "jobs" in
    let* counters = str "counters" in
    let* events = int "events" in
    let* kept = int "kept" in
    let* lost = int "lost" in
    let* wall_s = flt "wall_s" in
    let* digest = str "digest" in
    let* bitmap = str "bitmap" in
    let flags =
      match Json.member "flags" j with
      | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, x) -> Option.map (fun s -> (k, s)) (Json.to_str x)) kvs
      | _ -> []
    in
    let stages =
      match Json.member "stages" j with
      | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, x) -> Option.map (fun s -> (k, s)) (Json.to_float x)) kvs
      | _ -> []
    in
    let cells =
      match Json.member "cells" j with
      | Some c -> (
        match
          ( Option.bind (Json.member "variant" c) Json.to_int,
            Option.bind (Json.member "input" c) Json.to_int,
            Option.bind (Json.member "output" c) Json.to_int )
        with
        | Some v, Some i, Some o -> (v, i, o)
        | _ -> (0, 0, 0))
      | None -> (0, 0, 0)
    in
    Some
      {
        r_id = id;
        r_time = flt "time";
        r_subcommand = subcommand;
        r_label = label;
        (* optional: records written before the serve layer carry no
           tenant key, and a JSON null means the same thing *)
        r_tenant = str "tenant";
        r_flags = flags;
        r_seed = int "seed";
        r_jobs = jobs;
        r_counters = counters;
        r_events = events;
        r_kept = kept;
        r_lost = lost;
        r_wall_s = wall_s;
        r_stages = stages;
        r_digest = digest;
        r_cells = cells;
        r_bitmap = bitmap;
        (* optional like [tenant]: pre-lattice records carry no config *)
        r_config =
          (match Json.member "config" j with
           | Some c -> (
             match
               ( Option.bind (Json.member "name" c) Json.to_str,
                 Option.bind (Json.member "digest" c) Json.to_str )
             with
             | Some name, Some digest -> Some (name, digest)
             | _ -> None)
           | None -> None);
      }
  with
  | Some r -> Ok r
  | None -> Error "missing or ill-typed run-record field"

(* --- the file --- *)

type loaded = { records : record list; bad_lines : int }

let parse_line line =
  match Json.of_string line with
  | Error msg -> Error msg
  | Ok j -> of_json j

let load ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then { records = []; bad_lines = 0 }
  else
    In_channel.with_open_text p (fun ic ->
        let records = ref [] and bad = ref 0 in
        let rec loop () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
            if String.trim line <> "" then begin
              match parse_line line with
              | Ok r -> records := r :: !records
              | Error _ -> incr bad
              (* a truncated or corrupt line — typically the last one
                 after a crash mid-append — is counted, not fatal *)
            end;
            loop ()
        in
        loop ();
        { records = List.rev !records; bad_lines = !bad })

(* Appends are a single [output_string] of one line on a channel opened
   in append mode — atomic for any realistic record size on POSIX, and
   a crash can at worst truncate the final line, which [load] absorbs. *)
let append ~dir r =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let existing = load ~dir in
  let r = { r with r_id = Printf.sprintf "r%d" (List.length existing.records + 1) } in
  match
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_text ]
      0o644 (path ~dir)
      (fun oc -> Out_channel.output_string oc (Json.to_string (to_json r) ^ "\n"))
  with
  | () -> Ok r
  | exception Sys_error msg -> Error msg

(* Keep only the newest [n] records (file order is oldest-first), so
   [runs list --last N] shows the tail without renumbering ids. *)
let last n { records; bad_lines } =
  let len = List.length records in
  let records =
    if n >= len then records
    else List.filteri (fun i _ -> i >= len - n) records
  in
  { records; bad_lines }

let find records key =
  match List.find_opt (fun r -> r.r_id = key) records with
  | Some r -> Some r
  | None -> (
    (* a bare integer is a 1-based index into the ledger *)
    match int_of_string_opt key with
    | Some n when n >= 1 && n <= List.length records -> Some (List.nth records (n - 1))
    | _ -> None)

(* --- diffing --- *)

let cell_label = function
  | Plan.Cell_variant v -> "variant " ^ Model.variant_name v
  | Plan.Cell_input (arg, part) ->
    Printf.sprintf "input %s=%s" (Arg_class.name arg) (Partition.label part)
  | Plan.Cell_output (base, out) ->
    Printf.sprintf "output %s→%s" (Model.base_name base) (Partition.output_label out)
  | Plan.Cell_crash (mode, outcome) ->
    Printf.sprintf "crash %s→%s"
      (Partition.crash_mode_label mode)
      (Partition.crash_outcome_label outcome)

let bitmap_cells hex =
  match bytes_of_hex hex with
  | Error _ -> []
  | Ok b ->
    let ids = ref [] in
    for id = min (Plan.total - 1) ((8 * Bytes.length b) - 1) downto 0 do
      if Char.code (Bytes.get b (id / 8)) land (1 lsl (id mod 8)) <> 0 then
        ids := id :: !ids
    done;
    !ids

type diff = {
  d_gained : int list;  (* cell ids lit in B but not A *)
  d_lost : int list;    (* cell ids lit in A but not B *)
  d_rate_a : float;     (* events/s *)
  d_rate_b : float;
  d_identical : bool;   (* same digest — byte-identical coverage *)
}

(* Two records are cross-config when both name a config and the digests
   disagree; a record without one (pre-lattice, or a stream that never
   declared a config) diffs freely. *)
let config_clash a b =
  match (a.r_config, b.r_config) with
  | Some (_, da), Some (_, db) -> da <> db
  | _ -> false

let config_name r =
  match r.r_config with Some (name, _) -> name | None -> "-" 

let diff a b =
  let set_of r =
    let arr = Array.make Plan.total false in
    List.iter (fun id -> if id < Plan.total then arr.(id) <- true) (bitmap_cells r.r_bitmap);
    arr
  in
  let sa = set_of a and sb = set_of b in
  let gained = ref [] and lost = ref [] in
  for id = Plan.total - 1 downto 0 do
    if sb.(id) && not sa.(id) then gained := id :: !gained;
    if sa.(id) && not sb.(id) then lost := id :: !lost
  done;
  let rate r = if r.r_wall_s > 0.0 then float_of_int r.r_events /. r.r_wall_s else 0.0 in
  {
    d_gained = !gained;
    d_lost = !lost;
    d_rate_a = rate a;
    d_rate_b = rate b;
    d_identical = a.r_digest = b.r_digest;
  }

(* --- rendering --- *)

let lit_total r =
  let v, i, o = r.r_cells in
  v + i + o

let render_list { records; bad_lines } =
  let buf = Buffer.create 256 in
  if records = [] then Buffer.add_string buf "ledger is empty\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-6s %-10s %-10s %-24s %-14s %10s %9s %9s  %s\n" "id" "command"
         "tenant" "source" "config" "events" "cells" "wall" "digest");
    List.iter
      (fun r ->
        let label =
          if String.length r.r_label <= 24 then r.r_label
          else "…" ^ String.sub r.r_label (String.length r.r_label - 23) 23
        in
        let tenant =
          match r.r_tenant with
          | None -> "-"
          | Some t when String.length t <= 10 -> t
          | Some t -> String.sub t 0 9 ^ "…"
        in
        let config =
          match r.r_config with
          | None -> "-"
          | Some (name, _) when String.length name <= 14 -> name
          | Some (name, _) -> String.sub name 0 13 ^ "\xe2\x80\xa6"
        in
        Buffer.add_string buf
          (Printf.sprintf "%-6s %-10s %-10s %-24s %-14s %10d %4d/%-4d %8.2fs  %s\n" r.r_id
             r.r_subcommand tenant label config r.r_events (lit_total r) Plan.total
             r.r_wall_s r.r_digest))
      records
  end;
  if bad_lines > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d unreadable line%s skipped)\n" bad_lines
         (if bad_lines = 1 then "" else "s"));
  Buffer.contents buf

let render_show r =
  let v, i, o = r.r_cells in
  let buf = Buffer.create 512 in
  let line k fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (Printf.sprintf "%-12s %s\n" k s)) fmt in
  line "id" "%s" r.r_id;
  (match r.r_time with Some t -> line "time" "%.3f" t | None -> ());
  line "command" "%s" r.r_subcommand;
  line "source" "%s" r.r_label;
  (match r.r_tenant with Some t -> line "tenant" "%s" t | None -> ());
  if r.r_flags <> [] then
    line "flags" "%s"
      (String.concat " " (List.map (fun (k, x) -> k ^ "=" ^ x) r.r_flags));
  (match r.r_config with
   | Some (name, digest) -> line "config" "%s (%s)" name digest
   | None -> ());
  (match r.r_seed with Some s -> line "seed" "%d" s | None -> ());
  line "jobs" "%d" r.r_jobs;
  line "counters" "%s" r.r_counters;
  line "events" "%d (%d kept, %d lost)" r.r_events r.r_kept r.r_lost;
  line "wall" "%.3fs" r.r_wall_s;
  List.iter (fun (name, s) -> line "  stage" "%s %.3fs" name s) r.r_stages;
  line "cells" "%d/%d lit (input %d, output %d, variant %d)" (v + i + o) Plan.total i o v;
  line "digest" "%s" r.r_digest;
  Buffer.contents buf

let render_diff ~a ~b d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%d events) vs %s (%d events)\n" a.r_id a.r_events b.r_id
       b.r_events);
  if d.d_identical then Buffer.add_string buf "coverage: identical (same digest)\n"
  else if d.d_gained = [] && d.d_lost = [] then
    Buffer.add_string buf
      "coverage: same cells lit (frequencies differ — digests disagree)\n"
  else begin
    let show verb ids =
      Buffer.add_string buf
        (Printf.sprintf "cells %s: %d\n" verb (List.length ids));
      let shown = ref 0 in
      List.iter
        (fun id ->
          if !shown < 20 then begin
            incr shown;
            Buffer.add_string buf
              (Printf.sprintf "  %s %s\n" verb (cell_label Plan.cells.(id)))
          end)
        ids;
      if List.length ids > 20 then
        Buffer.add_string buf (Printf.sprintf "  … %d more\n" (List.length ids - 20))
    in
    if d.d_gained <> [] then show "gained" d.d_gained;
    if d.d_lost <> [] then show "lost" d.d_lost
  end;
  if d.d_rate_a > 0.0 && d.d_rate_b > 0.0 then begin
    let delta = 100.0 *. (d.d_rate_b -. d.d_rate_a) /. d.d_rate_a in
    Buffer.add_string buf
      (Printf.sprintf "throughput: %.0f ev/s -> %.0f ev/s (%+.1f%%)\n" d.d_rate_a
         d.d_rate_b delta);
    if delta < -10.0 then Buffer.add_string buf "throughput: REGRESSION (>10% slower)\n"
  end;
  Buffer.contents buf
