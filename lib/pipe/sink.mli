(** Where a pipeline's results go.

    A single traversal of the source produces one {!product} — the
    merged coverage, the completeness ledger, and the stream counts —
    and every sink consumes that product: report sections, TCD sweeps,
    snapshot files, observability gauges.  This is what makes
    multi-sink analysis single-pass: coverage + TCD + completeness +
    metrics come out of one read of the trace instead of one read per
    consumer.

    {!Checkpoint} is the one sink that acts {e during} the traversal
    rather than after it; the driver lifts it into the engine's
    checkpointing (file sources) or periodic snapshot writes (live
    sources). *)

type product = {
  label : string;       (** the source's name, used in section headers *)
  coverage : Iocov_core.Coverage.t;   (** merged across shards *)
  completeness : Iocov_util.Anomaly.completeness;
  events : int;         (** records read, before filtering *)
  kept : int;           (** records that passed the stage chain *)
  dropped : int;        (** [events - kept] *)
  shards : int;
  batches : int;
  notes : string list;  (** source-side annotations (e.g. syzlang skips) *)
}

type t =
  | Render of { name : string; emit : product -> string option }
      (** Consumes the product after the merge; [Some text] becomes a
          named section of the run's output, [None] is a silent effect
          (gauges, files). *)
  | Checkpoint of { path : string; every : int }
      (** Periodic progress persistence: for file sources a resumable
          {!Iocov_par.Checkpoint} (requires jobs = 1, like
          [--checkpoint]); for live sources an atomic coverage
          {!Iocov_core.Snapshot} at [path] every [every] events, so a
          crashed run leaves its partial coverage behind. *)

val name : t -> string

val custom : name:string -> (product -> string option) -> t

val summary : t
(** {!Iocov_core.Report.suite_summary} of the merged coverage. *)

val untested : t
(** {!Iocov_core.Report.untested_summary}. *)

val completeness : t
(** {!Iocov_core.Report.completeness} — the ledger section. *)

val tcd : ?arg:Iocov_core.Arg_class.arg -> targets:float list -> unit -> t
(** A TCD sweep over the argument's input series ([arg] defaults to
    open flags, the paper's Figure 5 subject), one line per uniform
    target. *)

val snapshot : path:string -> t
(** Writes the merged coverage as a snapshot file and reports where. *)

val gauges : t
(** {!Iocov_core.Coverage.publish_gauges} on the merged coverage; no
    section. *)

val metrics_file : path:string -> t
(** Dumps the metrics registry (plus span roots) to [path] via
    {!Iocov_obs.Export.write_file}; no section. *)

val checkpoint : path:string -> every:int -> t
