module Coverage = Iocov_core.Coverage
module Plan = Iocov_core.Plan
module Adequacy = Iocov_core.Adequacy
module Anomaly = Iocov_util.Anomaly
module Ascii = Iocov_util.Ascii
module Json = Iocov_util.Json
module Clock = Iocov_obs.Clock
module Metrics = Iocov_obs.Metrics
module Replay = Iocov_par.Replay

type format = Text | Jsonl

type conf = {
  every : int;
  format : format;
  emit : string -> unit;
  budget : Anomaly.budget option;
}

let default_every = 10_000

type snapshot = {
  p_events : int;
  p_elapsed_s : float;
  p_rate_cum : float;
  p_rate_win : float;
  p_eta_s : float option;
  p_cells : (int * int * int) option;  (* lit variant, input, output cells *)
  p_adequacy_pct : float option;
  p_anomalies : int;
  p_budget_burn_pct : float option;
  p_checkpoint_age : int option;       (* events since the last checkpoint *)
  p_final : bool;
}

(* Adequacy tolerance for the live figure: within one order of
   magnitude of the target counts as adequate — the paper's coarsest
   reading of "neither under- nor over-tested". *)
let adequacy_target = 1000.0
let adequacy_theta = 10.0

(* One pass over the plan: lit-cell counts per kind plus the adequacy
   share of the input/output cells, all through the view's in-place
   cell reads — no accumulator copy, no conversion. *)
let summarize (view : Replay.view) =
  let lv = ref 0 and li = ref 0 and lo = ref 0 in
  let adequate = ref 0 and io_total = ref 0 in
  Array.iteri
    (fun id cell ->
      let frequency = view.Replay.v_cells id in
      match cell with
      | Plan.Cell_variant _ -> if frequency > 0 then incr lv
      | Plan.Cell_input _ | Plan.Cell_output _ | Plan.Cell_crash _ ->
        (match cell with
         | Plan.Cell_input _ -> if frequency > 0 then incr li
         | _ -> if frequency > 0 then incr lo);
        incr io_total;
        (* an unlit cell is never adequate — skip the float math, which
           on a mostly-dark plan is most of the snapshot's work *)
        if frequency > 0 then
          match
            Adequacy.classify ~frequency ~target:adequacy_target ~theta:adequacy_theta
          with
          | Adequacy.Adequate -> incr adequate
          | _ -> ())
    Plan.cells;
  let pct =
    if !io_total = 0 then 0.0
    else 100.0 *. float_of_int !adequate /. float_of_int !io_total
  in
  ((!lv, !li, !lo), pct)

let adequacy_pct cov =
  snd (summarize (Replay.view_of_coverage cov ~events:0))

(* The anomaly figures come from the process-wide metric counters the
   ingestion and supervision layers already maintain; the tracker
   records their values at creation and reports deltas, so a long
   session with several runs still shows per-run burn. *)
let anomaly_counters () =
  [ Metrics.counter Metrics.default "iocov_trace_corrupt_records_total";
    Metrics.counter Metrics.default "iocov_par_batch_retries_total";
    Metrics.counter Metrics.default "iocov_par_batches_abandoned_total" ]

let anomaly_total () =
  List.fold_left (fun acc c -> acc + Metrics.Counter.value c) 0 (anomaly_counters ())

let ckpt_count () =
  Metrics.Counter.value (Metrics.counter Metrics.default "iocov_par_checkpoints_total")

let ckpt_events () =
  Metrics.Gauge.value (Metrics.gauge Metrics.default "iocov_par_checkpoint_events")

type t = {
  conf : conf;
  clock : unit -> float;
  total : int option;
  t_start : float;
  base_anomalies : int;
  base_checkpoints : int;
  mutable last_events : int;
  mutable last_time : float;
  mutable emitted : int;
}

let tracker ?clock ?total conf =
  if conf.every <= 0 then invalid_arg "Progress.tracker: every must be positive";
  let clock = match clock with Some f -> f | None -> Clock.now in
  let now = clock () in
  {
    conf;
    clock;
    total;
    t_start = now;
    base_anomalies = anomaly_total ();
    base_checkpoints = ckpt_count ();
    last_events = 0;
    last_time = now;
    emitted = 0;
  }

let snapshot t ~events ~peek ~final =
  let now = t.clock () in
  let elapsed = now -. t.t_start in
  let rate_cum = if elapsed > 0.0 then float_of_int events /. elapsed else 0.0 in
  let win_events = events - t.last_events in
  let win_elapsed = now -. t.last_time in
  let rate_win =
    if win_elapsed > 0.0 && win_events > 0 then float_of_int win_events /. win_elapsed
    else rate_cum
  in
  let eta_s =
    match t.total with
    | Some total when total > events && rate_win > 0.0 ->
      Some (float_of_int (total - events) /. rate_win)
    | Some _ -> if final then None else Some 0.0
    | None -> None
  in
  let cells, adequacy =
    match peek () with
    | Some view ->
      let lit, pct = summarize view in
      (Some lit, Some pct)
    | None -> (None, None)
  in
  let anomalies = anomaly_total () - t.base_anomalies in
  let burn =
    match t.conf.budget with
    | Some (Anomaly.Max_records n) when n > 0 ->
      Some (100.0 *. float_of_int anomalies /. float_of_int n)
    | Some (Anomaly.Max_fraction f) when f > 0.0 && events > 0 ->
      Some (100.0 *. (float_of_int anomalies /. float_of_int events) /. f)
    | _ -> None
  in
  let checkpoint_age =
    if ckpt_count () > t.base_checkpoints then Some (max 0 (events - ckpt_events ()))
    else None
  in
  {
    p_events = events;
    p_elapsed_s = elapsed;
    p_rate_cum = rate_cum;
    p_rate_win = rate_win;
    p_eta_s = eta_s;
    p_cells = cells;
    p_adequacy_pct = adequacy;
    p_anomalies = anomalies;
    p_budget_burn_pct = burn;
    p_checkpoint_age = checkpoint_age;
    p_final = final;
  }

let render_text s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (if s.p_final then "done:" else "progress:");
  Buffer.add_string buf
    (Printf.sprintf " %s events  %.1fs  %s/s"
       (Ascii.si_count s.p_events) s.p_elapsed_s
       (Ascii.si_count (int_of_float s.p_rate_cum)));
  if not s.p_final && s.p_rate_win > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf " (win %s/s)" (Ascii.si_count (int_of_float s.p_rate_win)));
  (match s.p_cells with
   | Some (v, i, o) ->
     Buffer.add_string buf
       (Printf.sprintf "  cells %d/%d (in %d, out %d, var %d)" (v + i + o) Plan.total
          i o v)
   | None -> ());
  (match s.p_adequacy_pct with
   | Some pct -> Buffer.add_string buf (Printf.sprintf "  adequacy %.1f%%" pct)
   | None -> ());
  if s.p_anomalies > 0 then
    Buffer.add_string buf (Printf.sprintf "  anomalies %d" s.p_anomalies);
  (match s.p_budget_burn_pct with
   | Some pct -> Buffer.add_string buf (Printf.sprintf " (budget %.0f%%)" pct)
   | None -> ());
  (match s.p_checkpoint_age with
   | Some age -> Buffer.add_string buf (Printf.sprintf "  ckpt-age %d" age)
   | None -> ());
  (match s.p_eta_s with
   | Some eta when not s.p_final ->
     Buffer.add_string buf (Printf.sprintf "  eta %.0fs" eta)
   | _ -> ());
  Buffer.contents buf

let render_jsonl s =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.to_string
    (Json.Obj
       [ ("events", Json.Int s.p_events);
         ("elapsed_s", Json.Float s.p_elapsed_s);
         ("rate_cum", Json.Float s.p_rate_cum);
         ("rate_win", Json.Float s.p_rate_win);
         ("eta_s", opt (fun v -> Json.Float v) s.p_eta_s);
         ( "cells",
           opt
             (fun (v, i, o) ->
               Json.Obj
                 [ ("lit", Json.Int (v + i + o)); ("total", Json.Int Plan.total);
                   ("variant", Json.Int v); ("input", Json.Int i);
                   ("output", Json.Int o) ])
             s.p_cells );
         ("adequacy_pct", opt (fun v -> Json.Float v) s.p_adequacy_pct);
         ("anomalies", Json.Int s.p_anomalies);
         ("budget_burn_pct", opt (fun v -> Json.Float v) s.p_budget_burn_pct);
         ("checkpoint_age", opt (fun v -> Json.Int v) s.p_checkpoint_age);
         ("final", Json.Bool s.p_final) ])

let render t s =
  match t.conf.format with Text -> render_text s | Jsonl -> render_jsonl s

let emit t ~events ~peek ~final =
  let s = snapshot t ~events ~peek ~final in
  t.conf.emit (render t s);
  t.emitted <- t.emitted + 1;
  t.last_events <- events;
  t.last_time <- t.clock ()

let tick t ~events ~peek =
  if events - t.last_events >= t.conf.every then emit t ~events ~peek ~final:false

let finish t ~events ~peek = emit t ~events ~peek ~final:true

let emitted t = t.emitted
