(** The one pipeline driver (DESIGN.md §13).

    Every consumer — live suite runs ({!Iocov_suites.Runner}), stored
    trace replay ([iocov analyze]), the benches, the examples —
    describes {e what} to run as [source → stages → sinks] and hands
    {e how} to run it to this driver: jobs and sharding, counter
    backend, strict/lenient ingestion with error budgets, supervision
    policy, checkpoint/resume.  Execution is
    {!Iocov_par.Replay}'s sharded engine, so the determinism contract
    carries over verbatim: the merged coverage is byte-identical at any
    job count, batch size, or counter backend.

    One traversal feeds every sink — coverage, TCD, completeness,
    report sections, gauges, snapshots come out of a single pass over
    the source. *)

type config = {
  jobs : int;        (** analysis shards; 1 = inline on the caller *)
  batch : int;       (** events per work batch *)
  counters : Iocov_par.Replay.counters;
  ingest : Iocov_par.Replay.ingest;
  policy : Iocov_par.Pool.policy;
  limit : int option;  (** stop after this many records *)
  resume : (string * Iocov_par.Checkpoint.t) option;
      (** continue a checkpointed file replay *)
  progress : Progress.conf option;
      (** live progress snapshots ([--progress]); a tracker is created
          per run and fed from the engine's watch hook, with a final
          coverage-bearing snapshot after the merge at any job count *)
}

val default : config
(** jobs 1, batch {!Iocov_par.Replay.default_batch}, dense counters,
    strict ingest, {!Iocov_par.Pool.default_policy}, no limit, no
    resume, no progress. *)

val config :
  ?jobs:int -> ?batch:int -> ?counters:Iocov_par.Replay.counters ->
  ?ingest:Iocov_par.Replay.ingest -> ?policy:Iocov_par.Pool.policy ->
  ?limit:int -> ?resume:string * Iocov_par.Checkpoint.t ->
  ?progress:Progress.conf -> unit -> config
(** {!default} with overrides. *)

type run = {
  product : Sink.product;   (** what the single pass produced *)
  sections : (string * string) list;
      (** rendered sink output, in sink order: (sink name, text) *)
}

val run :
  ?config:config -> ?stages:Stage.t list -> ?sinks:Sink.t list ->
  Source.t -> (run, string) result
(** Run one pipeline.  Bad configurations (checkpointing a sharded or
    channel source, resuming a text trace, exceeded error budgets,
    strict-mode corruption) are [Error]s, never exceptions.

    Source notes: [Events] applies [limit] by truncation; [Syz] parses
    the program and feeds input-only coverage directly (stages and
    sharding do not apply — programs are tiny); [Live] supports
    {!Sink.checkpoint} at jobs = 1 as periodic atomic coverage
    snapshots. *)
