module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd
module Arg_class = Iocov_core.Arg_class
module Snapshot = Iocov_core.Snapshot
module Anomaly = Iocov_util.Anomaly

type product = {
  label : string;
  coverage : Coverage.t;
  completeness : Anomaly.completeness;
  events : int;
  kept : int;
  dropped : int;
  shards : int;
  batches : int;
  notes : string list;
}

type t =
  | Render of { name : string; emit : product -> string option }
  | Checkpoint of { path : string; every : int }

let name = function
  | Render { name; _ } -> name
  | Checkpoint _ -> "checkpoint"

let custom ~name emit = Render { name; emit }

let summary =
  Render
    {
      name = "summary";
      emit = (fun p -> Some (Report.suite_summary ~name:p.label p.coverage));
    }

let untested =
  Render
    {
      name = "untested";
      emit = (fun p -> Some (Report.untested_summary ~name:p.label p.coverage));
    }

let completeness =
  Render
    {
      name = "completeness";
      emit = (fun p -> Some (Report.completeness ~name:p.label p.completeness));
    }

let tcd ?(arg = Arg_class.Open_flags_arg) ~targets () =
  Render
    {
      name = "tcd";
      emit =
        (fun p ->
          let frequencies =
            Array.of_list (List.map snd (Coverage.input_series p.coverage arg))
          in
          let buf = Buffer.create 256 in
          Buffer.add_string buf
            (Printf.sprintf "TCD of %s (%s):\n" (Arg_class.name arg) p.label);
          List.iter
            (fun (target, tcd) ->
              Buffer.add_string buf (Printf.sprintf "  T=%-10.0f TCD %.3f\n" target tcd))
            (Tcd.sweep ~frequencies ~targets);
          Some (Buffer.contents buf));
    }

let snapshot ~path =
  Render
    {
      name = "snapshot";
      emit =
        (fun p ->
          Snapshot.save_file path p.coverage;
          Some (Printf.sprintf "coverage snapshot written to %s" path));
    }

let gauges =
  Render
    {
      name = "gauges";
      emit =
        (fun p ->
          Coverage.publish_gauges p.coverage;
          None);
    }

let metrics_file ~path =
  Render
    {
      name = "metrics";
      emit =
        (fun _ ->
          Iocov_obs.Export.write_file ~path
            ~spans:(Iocov_obs.Span.roots ())
            Iocov_obs.Metrics.default;
          None);
    }

let checkpoint ~path ~every = Checkpoint { path; every }
