(* The compiled fast path: literal facts extracted from the AST once at
   compile time, checked with cheap string scans before the backtracking
   matcher runs.  All three facts are conservative — they may be weaker
   than the pattern ([lead]/[required] may be [""], [anchored] false) but
   never wrong, so the pre-check can only skip positions the matcher
   would reject anyway. *)
type fast_path = {
  anchored : bool;
  (** The pattern opens with [^]: a match can only start at position 0. *)
  lead : string;
  (** Literal run every match must {e start} with (after the optional
      [^]); [""] when the pattern opens with something non-literal. *)
  required : string;
  (** Longest literal run every match must {e contain} somewhere; [""]
      when no unconditional literal exists (e.g. a top-level
      alternation). *)
}

type t = { source : string; node : Syntax.node; fast : fast_path }

(* Literal runs that any match of [node] must contain, in order.  A
   buffer accumulates adjacent [Char] nodes; constructs that consume
   unknown text ([.], classes, alternations, optional repeats) flush it,
   breaking adjacency.  Zero-width nodes ([^], [$], the empty pattern)
   keep the buffer: they add nothing and separate nothing. *)
let required_runs node =
  let runs = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      runs := Buffer.contents buf :: !runs;
      Buffer.clear buf
    end
  in
  let rec go node =
    match (node : Syntax.node) with
    | Syntax.Char c -> Buffer.add_char buf c
    | Syntax.Seq nodes -> List.iter go nodes
    | Syntax.Repeat (inner, lo, Some 1) when lo >= 1 ->
      go inner (* exactly once: plain concatenation, adjacency holds *)
    | Syntax.Repeat (inner, lo, _) ->
      flush ();
      if lo >= 1 then begin
        (* the body occurs at least once, but its copies abut each other,
           not the surrounding text — its runs stand alone *)
        go inner;
        flush ()
      end
    | Syntax.Alt _ ->
      (* a literal is required only if common to every branch; stay
         conservative and require nothing *)
      flush ()
    | Syntax.Empty | Syntax.Bol | Syntax.Eol -> ()
    | Syntax.Any | Syntax.Class _ -> flush ()
  in
  go node;
  flush ();
  List.rev !runs

(* The literal run a match must start with, and whether the pattern is
   anchored at position 0.  Walks the head of a top-level sequence:
   [^] sets the anchor, leading [Char]s extend the lead, a head
   [Repeat] with [lo >= 1] contributes its own lead, anything else
   stops. *)
let lead_of node =
  let buf = Buffer.create 16 in
  let anchored = ref false in
  let rec go first nodes =
    match nodes with
    | [] -> ()
    | Syntax.Bol :: rest when first && Buffer.length buf = 0 ->
      anchored := true;
      go false rest
    | Syntax.Char c :: rest ->
      Buffer.add_char buf c;
      go false rest
    | Syntax.Seq inner :: rest -> go first (inner @ rest)
    | Syntax.Repeat (inner, lo, _) :: _ when lo >= 1 && Buffer.length buf = 0 ->
      (* e.g. [a+b]: the match must still open with [inner]'s lead, but
         nothing past the repeat can extend it *)
      go false [ inner ]
    | Syntax.Empty :: rest -> go first rest
    | _ -> ()
  in
  (match node with
   | Syntax.Seq nodes -> go true nodes
   | Syntax.Bol -> anchored := true
   | Syntax.Char c -> Buffer.add_char buf c
   | _ -> ());
  (!anchored, Buffer.contents buf)

(* Naive substring scan, allocation-free; needles here are short
   literal runs from the pattern, so there is nothing for Boyer-Moore
   machinery to win. *)
let occurs_from s needle from =
  let len = String.length s and nlen = String.length needle in
  let rec agree pos i =
    i = nlen || (String.unsafe_get s (pos + i) = String.unsafe_get needle i && agree pos (i + 1))
  in
  let rec at pos =
    if pos + nlen > len then None
    else if agree pos 0 then Some pos
    else at (pos + 1)
  in
  at (max 0 from)

let contains s needle = needle = "" || occurs_from s needle 0 <> None

let fast_path_of node =
  let anchored, lead = lead_of node in
  let required =
    List.fold_left
      (fun best run -> if String.length run > String.length best then run else best)
      "" (required_runs node)
  in
  (* a required run that already sits inside the lead is subsumed by
     the lead check — dropping it saves a second scan per search *)
  let required = if contains lead required then "" else required in
  { anchored; lead; required }

let compile source =
  match Syntax.parse source with
  | Ok node -> Ok { source; node; fast = fast_path_of node }
  | Error msg -> Error msg

let compile_exn source =
  match compile source with
  | Ok t -> t
  | Error msg -> invalid_arg ("Regex.Engine.compile_exn: " ^ msg)

let pattern t = t.source

(* Depth-first matcher in CPS: [go node pos k] tries to match [node]
   starting at [pos] and calls the continuation [k] with every candidate
   end position until [k] returns [true]. *)
let run node s start ~k =
  let len = String.length s in
  let rec go node pos k =
    match (node : Syntax.node) with
    | Syntax.Empty -> k pos
    | Syntax.Char c -> pos < len && s.[pos] = c && k (pos + 1)
    | Syntax.Any -> pos < len && k (pos + 1)
    | Syntax.Class spec -> pos < len && Syntax.class_mem spec s.[pos] && k (pos + 1)
    | Syntax.Bol -> pos = 0 && k pos
    | Syntax.Eol -> pos = len && k pos
    | Syntax.Seq nodes ->
      let rec seq nodes pos =
        match nodes with
        | [] -> k pos
        | n :: rest -> go n pos (fun pos' -> seq rest pos')
      in
      seq nodes pos
    | Syntax.Alt branches -> List.exists (fun b -> go b pos k) branches
    | Syntax.Repeat (inner, lo, hi) ->
      (* Greedy: consume as many repetitions as allowed, backtracking via
         the continuation.  [count] repetitions matched so far. *)
      let rec rep count pos =
        let may_stop = count >= lo in
        let may_continue = match hi with None -> true | Some h -> count < h in
        let try_more () =
          may_continue
          && go inner pos (fun pos' ->
                 (* Reject zero-width progress to avoid infinite loops on
                    patterns like [()* ] or [(a?)*]. *)
                 pos' > pos && rep (count + 1) pos')
        in
        try_more () || (may_stop && k pos)
      in
      (* A zero-width body can still satisfy [lo > 0] (e.g. [(^)+]): allow
         one zero-width match to count for all required repetitions. *)
      if lo > 0 && go inner pos (fun pos' -> pos' = pos && k pos) then true
      else rep 0 pos
  in
  go node start k

let fast_path t = t.fast

let search_scan t s =
  let len = String.length s in
  let rec at pos = run t.node s pos ~k:(fun _ -> true) || (pos < len && at (pos + 1)) in
  at 0

let search t s =
  let { anchored; lead; required } = t.fast in
  if not (contains s required) then false
  else if anchored then
    (lead = "" || String.starts_with ~prefix:lead s)
    && run t.node s 0 ~k:(fun _ -> true)
  else if lead <> "" then begin
    (* the match must open with [lead]: only its occurrences are
       candidate start positions *)
    let rec at pos =
      match occurs_from s lead pos with
      | None -> false
      | Some p -> run t.node s p ~k:(fun _ -> true) || at (p + 1)
    in
    at 0
  end
  else search_scan t s

let matches t s =
  let len = String.length s in
  let { lead; required; _ } = t.fast in
  (lead = "" || String.starts_with ~prefix:lead s)
  && contains s required
  && run t.node s 0 ~k:(fun pos -> pos = len)

let find t s =
  let len = String.length s in
  let rec at pos =
    if pos > len then None
    else begin
      let best = ref None in
      let _found =
        run t.node s pos ~k:(fun stop ->
            (match !best with
             | Some b when b >= stop -> ()
             | _ -> best := Some stop);
            false (* keep exploring to find the longest match here *))
      in
      match !best with
      | Some stop -> Some (pos, stop)
      | None -> at (pos + 1)
    end
  in
  if not (contains s t.fast.required) then None else at 0
