(** Backtracking matcher over {!Syntax} ASTs.

    Patterns in IOCov filters are short (mount-point prefixes such as
    ["^/mnt/test(/|$)"]), so a depth-first backtracking matcher is the
    right trade-off: simple, correct, and fast on realistic inputs.

    Compilation additionally extracts a {e literal fast path}
    ({!fast_path}): the anchor, the literal run a match must start
    with, and the longest literal run a match must contain.  {!search}
    checks those with plain string scans first and runs the
    backtracking matcher only at candidate positions — on a trace
    filter's hot path most records fail the prefix check and never
    reach the matcher.

    A compiled pattern is immutable after {!compile} and safe to share
    across domains: the parallel pipeline compiles filters once and
    hands the same values to every worker shard. *)

type t
(** A compiled pattern. *)

val compile : string -> (t, string) result
(** Compile a pattern string; [Error] carries the parse diagnostic. *)

val compile_exn : string -> t
(** Like {!compile} but raises [Invalid_argument] on a malformed pattern. *)

val pattern : t -> string
(** The source pattern text. *)

val search : t -> string -> bool
(** [search t s] is [true] iff the pattern matches {e somewhere} in [s]
    (leftmost search; [^]/[$] anchor to the whole string's ends).
    Uses the compiled literal fast path; always agrees with
    {!search_scan}. *)

val search_scan : t -> string -> bool
(** {!search} without the literal pre-checks: the position-by-position
    backtracking scan.  The reference implementation that tests and
    benches compare the fast path against. *)

type fast_path = {
  anchored : bool;  (** pattern opens with [^]: matches only start at 0 *)
  lead : string;    (** literal every match must start with ([""] = none) *)
  required : string;(** longest literal every match must contain ([""] = none) *)
}

val fast_path : t -> fast_path
(** The literal facts {!compile} extracted.  Conservative: possibly
    weaker than the pattern, never wrong. *)

val matches : t -> string -> bool
(** [matches t s] is [true] iff the pattern matches the {e whole} of [s]
    (as if wrapped in [^(...)$]). *)

val find : t -> string -> (int * int) option
(** [find t s] is the leftmost match as a [(start, stop)] half-open span,
    preferring the longest match at the leftmost start. *)
