(** A fixed-size domain pool.

    Sized from [Domain.recommended_domain_count] by default, overridden
    by the CLI's [--jobs].  A pool is a worker-count policy plus
    launch/join; the work itself is distributed by {!Replay} through a
    bounded {!Chan}.

    Counting convention: [jobs] is the number of {e analysis} shards.
    The producer (trace decode or a live tracer) runs on the calling
    domain, so a [--jobs 4] replay uses 4 worker domains plus the
    caller. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] ≤ 0 or omitted means [Domain.recommended_domain_count].
    Sets the [iocov_par_jobs] gauge. *)

val jobs : t -> int

val default_jobs : unit -> int

type 'a running

val launch : t -> (shard:int -> 'a) -> 'a running
(** Start one shard per job, numbered [0 .. jobs-1].  With [jobs = 1]
    nothing is spawned: the single shard runs inline on the caller at
    {!join} time — the [--jobs 1] path {e is} the sequential path.
    Each spawned domain increments
    [iocov_par_domains_spawned_total]. *)

val join : 'a running -> 'a array
(** Wait for every shard; results in shard order.  If shards raised,
    every shard is still joined first, then the lowest-numbered shard's
    exception is re-raised. *)

val run : t -> (shard:int -> 'a) -> 'a array
(** [launch] then [join] — for work that needs no concurrent
    producer. *)

(** {1 Supervision}

    Plain {!run} propagates the first shard exception and loses every
    other shard's work.  A supervised run retries a failing shard task
    with deterministic bounded backoff, and degrades — a task that
    still fails yields [None] while the survivors' results stand. *)

exception Shard_killed of string
(** A terminal shard failure: supervision does {e not} retry it.  The
    fault-injection hooks ({!Replay}'s [chaos]) raise it to simulate a
    worker death. *)

type policy = {
  max_retries : int;   (** retry attempts per task after the first try *)
  backoff_unit : int;  (** base spin count; doubles per attempt, capped *)
}

val default_policy : policy
(** 2 retries, 256-spin base. *)

val backoff : policy -> attempt:int -> unit
(** A deterministic bounded delay before retry [attempt] (1-based): a
    pure [Domain.cpu_relax] spin, doubling per attempt up to a cap.  No
    clock and no sleep — supervised runs stay reproducible and the
    library keeps its no-unix dependency. *)

type 'a supervised = {
  results : 'a option array;
      (** per shard; [None] = failed even after retries *)
  retries : int;  (** total retry attempts across shards *)
  failed : int;   (** shards whose task never succeeded *)
}

val run_supervised : ?policy:policy -> t -> (shard:int -> 'a) -> 'a supervised
(** Like {!run}, but each shard task is retried up to
    [policy.max_retries] times (with {!backoff} between attempts)
    instead of poisoning the whole join.  {!Shard_killed} is terminal —
    it fails the task immediately.  Increments
    [iocov_par_task_retries_total] and [iocov_par_task_failures_total]. *)
