(** A fixed-size domain pool.

    Sized from [Domain.recommended_domain_count] by default, overridden
    by the CLI's [--jobs].  A pool is a worker-count policy plus
    launch/join; the work itself is distributed by {!Replay} through a
    bounded {!Chan}.

    Counting convention: [jobs] is the number of {e analysis} shards.
    The producer (trace decode or a live tracer) runs on the calling
    domain, so a [--jobs 4] replay uses 4 worker domains plus the
    caller. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] ≤ 0 or omitted means [Domain.recommended_domain_count].
    Sets the [iocov_par_jobs] gauge. *)

val jobs : t -> int

val default_jobs : unit -> int

type 'a running

val launch : t -> (shard:int -> 'a) -> 'a running
(** Start one shard per job, numbered [0 .. jobs-1].  With [jobs = 1]
    nothing is spawned: the single shard runs inline on the caller at
    {!join} time — the [--jobs 1] path {e is} the sequential path.
    Each spawned domain increments
    [iocov_par_domains_spawned_total]. *)

val join : 'a running -> 'a array
(** Wait for every shard; results in shard order.  If shards raised,
    every shard is still joined first, then the lowest-numbered shard's
    exception is re-raised. *)

val run : t -> (shard:int -> 'a) -> 'a array
(** [launch] then [join] — for work that needs no concurrent
    producer. *)
