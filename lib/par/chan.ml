module Metrics = Iocov_obs.Metrics

(* Producer/consumer stalls, process-wide: how often the pipeline's
   bounded queue ran full (decode outpacing analysis) or empty
   (analysis outpacing decode).  The pair is the back-pressure gauge a
   --jobs sweep should watch. *)
let m_wait side =
  Metrics.counter Metrics.default "iocov_par_chan_waits_total"
    ~labels:[ ("side", side) ]
    ~help:"Blocking waits on the bounded pipeline channel."

let m_full_waits = m_wait "push_full"
let m_empty_waits = m_wait "pop_empty"

exception Closed

type 'a t = {
  buf : 'a option array;  (* ring buffer; None = empty slot *)
  mutable head : int;     (* next slot to pop *)
  mutable len : int;      (* occupied slots *)
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Chan.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let capacity t = Array.length t.buf

let locked t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let push t x =
  locked t (fun () ->
      if t.closed then raise Closed;
      while t.len = Array.length t.buf && not t.closed do
        Metrics.Counter.incr m_full_waits;
        Condition.wait t.not_full t.lock
      done;
      if t.closed then raise Closed;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1;
      Condition.signal t.not_empty)

let pop t =
  locked t (fun () ->
      while t.len = 0 && not t.closed do
        Metrics.Counter.incr m_empty_waits;
        Condition.wait t.not_empty t.lock
      done;
      if t.len = 0 then None (* closed and drained *)
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        Condition.signal t.not_full;
        x
      end)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (* wake every waiter: producers fail with Closed, consumers
           drain the remaining items then see None *)
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full
      end)

let length t = locked t (fun () -> t.len)
