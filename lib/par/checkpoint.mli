(** Replay checkpoints: crash-resumable coverage analysis.

    A long replay periodically freezes its progress — the trace's
    decode {!Iocov_trace.Binary_io.cursor}, the running event counts,
    the completeness ledger, and the coverage accumulated so far
    (embedded as an {!Iocov_core.Snapshot} text) — into a single file.
    [iocov analyze --resume FILE] reopens the trace at the cursor and
    continues; because coverage merging is commutative and associative,
    the resumed run's final report is byte-identical to an
    uninterrupted one (DESIGN.md §12).

    Checkpoints are written atomically (temp file + rename), so a crash
    mid-write leaves the previous checkpoint intact, never a torn one.
    The anomaly {e list} is not persisted — only the completeness
    counters are; a resumed report keeps exact totals but not the
    prefix's per-anomaly detail. *)

type t = {
  trace : string;  (** path of the trace being analyzed *)
  cursor : Iocov_trace.Binary_io.cursor;
  events : int;    (** records fed to analysis so far *)
  kept : int;      (** records that passed the filter so far *)
  batches : int;
  completeness : Iocov_util.Anomaly.completeness;
  coverage : Iocov_core.Coverage.t;  (** accumulated coverage at the cursor *)
}

val save : path:string -> t -> unit
(** Write atomically.  Increments [iocov_ckpt_written_total].  Any
    failure — disk full mid-write, a rename refused by the OS — removes
    the temporary file before the exception escapes, so the only
    [*.tmp] a save can leave behind is from a process killed outright
    (swept by {!clean_stale} on the next run). *)

val clean_stale : path:string -> bool
(** Remove a leftover [path ^ ".tmp"] dropping from an earlier run
    killed mid-save.  Returns [true] if one was found and removed.
    Called by the replay engine whenever a run starts writing
    checkpoints at [path]; safe to call unconditionally. *)

val load : string -> (t, string) result
(** Parse and validate a checkpoint file; every malformation is an
    [Error], never an exception.  Increments
    [iocov_ckpt_loaded_total]. *)
