(** Sharded parallel trace analysis.

    The pipeline: a producer (the calling domain) feeds batches of
    work through a bounded {!Chan} to [jobs] worker shards, each of
    which filters with the shared immutable {!Iocov_trace.Filter.t}
    and accumulates into its own private {!Iocov_core.Coverage.t}.
    Shard accumulators are merged in shard order when the pool joins.

    {b Determinism contract.}  Coverage accumulation is commutative
    and associative ({!Iocov_core.Coverage.merge_into}), so the merged
    result is byte-identical to a sequential replay of the same trace
    regardless of job count, batch size, counter backend, or how the
    scheduler spread batches over shards — property-tested in
    [test/test_par.ml] and [test/test_dense.ml].
    Global metric counter totals are likewise identical: shards
    accumulate unmetered and the merged accumulator is credited once
    via {!Iocov_core.Coverage.meter_counts}.  Only timing (span
    durations, shard-to-batch assignment) varies run to run.

    With [jobs = 1] no domain is spawned and no channel is created:
    everything runs inline on the caller, so [--jobs 1] {e is} the
    sequential path. *)

type counters =
  | Dense
      (** Shards count into {!Iocov_core.Coverage.Dense} — flat integer
          arrays indexed by compiled {!Iocov_core.Plan} cell IDs,
          allocation-free observe, O(cells) merge.  Converted losslessly
          to the reference shape at merge time; the default. *)
  | Reference
      (** Shards use the hashed-histogram {!Iocov_core.Coverage.t}
          directly — the differential oracle for the dense path. *)

type outcome = {
  coverage : Iocov_core.Coverage.t;  (** merged across shards *)
  events : int;   (** trace records seen (before filtering) *)
  kept : int;     (** records that passed the filter *)
  dropped : int;  (** [events - kept] *)
  shards : int;   (** worker count actually used *)
  batches : int;  (** work batches processed *)
  shard_events : int array;
      (** per-shard record counts, indexed by shard.  Scheduling
          dependent — reported for observability, excluded from the
          determinism contract. *)
}

val default_batch : int
(** Events per work batch when [?batch] is omitted (1024). *)

val analyze_events :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters ->
  filter:Iocov_trace.Filter.t -> Iocov_trace.Event.t list -> outcome
(** Replay an in-memory event list.  [pool] defaults to a fresh
    {!Pool.create}[ ()]; [batch] must be positive; [counters] defaults
    to [Dense]. *)

val analyze_channel :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters ->
  filter:Iocov_trace.Filter.t -> in_channel -> (outcome, string) result
(** Replay a trace from a channel, auto-detecting binary
    ({!Iocov_trace.Binary_io}) versus text ({!Iocov_trace.Format_io}).
    Binary records are decoded in batches on the calling domain (the
    string table makes decode inherently sequential) and analyzed on
    the shards; text lines are shipped raw and parsed on the shards.
    Runs in O(capacity × batch) memory regardless of trace length.
    Parse and decode failures report the lowest-numbered offending
    record, matching the sequential reader's error. *)

(** {1 Push-based sessions}

    For live sources (suite tracers) that emit one event at a time.
    Events are buffered into batches and dispatched to the shards;
    {!finish} flushes, joins, and merges. *)

type session

val session :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters ->
  filter:Iocov_trace.Filter.t -> unit -> session

val sink : session -> Iocov_trace.Event.t -> unit

val finish : session -> outcome
(** Flush any partial batch, close the channel, join the workers, and
    merge.  Must be called exactly once. *)
