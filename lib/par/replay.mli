(** Sharded parallel trace analysis — the execution strategy of the
    streaming pipeline.

    This module is the {e engine}, not the front door: consumers build
    pipelines declaratively with [Iocov_pipe] (DESIGN.md §13) — one
    {!Iocov_pipe.Driver} owns jobs, sharding, supervision,
    checkpointing, and error budgets for live suite runs, trace replay,
    and reporting alike — and that driver executes through the entry
    points below.  Call them directly only when testing the engine
    itself.

    The pipeline: a producer (the calling domain) feeds batches of
    work through a bounded {!Chan} to [jobs] worker shards, each of
    which filters with the shared immutable {!Iocov_trace.Filter.t}
    and accumulates into its own private {!Iocov_core.Coverage.t}.
    Shard accumulators are merged in shard order when the pool joins.

    {b Determinism contract.}  Coverage accumulation is commutative
    and associative ({!Iocov_core.Coverage.merge_into}), so the merged
    result is byte-identical to a sequential replay of the same trace
    regardless of job count, batch size, counter backend, or how the
    scheduler spread batches over shards — property-tested in
    [test/test_par.ml] and [test/test_dense.ml].
    Global metric counter totals are likewise identical: shards
    accumulate unmetered and the merged accumulator is credited once
    via {!Iocov_core.Coverage.meter_counts}.  Only timing (span
    durations, shard-to-batch assignment) varies run to run.

    With [jobs = 1] no domain is spawned and no channel is created:
    everything runs inline on the caller, so [--jobs 1] {e is} the
    sequential path.

    {b Fault tolerance} (DESIGN.md §12).  Three layers compose:
    {ul
    {- {e ingestion}: [?ingest] selects strict (first defect fails the
       run with its position) or lenient (skip, resync, account — up to
       an error budget) handling of corrupt binary records and
       unparsable text lines;}
    {- {e supervision}: each work batch runs as a retry-safe
       prepare/commit pair; a worker exception is retried with
       {!Pool.backoff}, an exhausted batch is abandoned (fatal in
       strict mode, accounted in lenient), and a {!Pool.Shard_killed}
       ends one shard while its queue drains to the survivors;}
    {- {e checkpointing}: [?checkpoint] freezes cursor + coverage
       periodically so [?resume] can continue a crashed run with a
       byte-identical final report.}}
    Every loss is tallied in the outcome's [completeness] ledger. *)

type counters =
  | Dense
      (** Shards count into {!Iocov_core.Coverage.Dense} — flat integer
          arrays indexed by compiled {!Iocov_core.Plan} cell IDs,
          allocation-free observe, O(cells) merge.  Converted losslessly
          to the reference shape at merge time; the default. *)
  | Reference
      (** Shards use the hashed-histogram {!Iocov_core.Coverage.t}
          directly — the differential oracle for the dense path. *)

type ingest = Iocov_trace.Binary_io.mode =
  | Strict
  | Lenient of Iocov_util.Anomaly.budget
      (** Re-exported {!Iocov_trace.Binary_io.mode}: one value governs
          both the binary decoder's corruption handling and the
          pipeline's treatment of unparsable text lines and abandoned
          batches. *)

type chaos = shard:int -> batch:int -> unit
(** A fault-injection hook, called at the start of every batch attempt
    (including retries) with the shard index and the shard-local batch
    number.  Raising any exception exercises the retry path; raising
    {!Pool.Shard_killed} kills the shard.  Test-only. *)

type outcome = {
  coverage : Iocov_core.Coverage.t;  (** merged across shards *)
  events : int;   (** trace records analyzed (before filtering) *)
  kept : int;     (** records that passed the filter *)
  dropped : int;  (** [events - kept] *)
  shards : int;   (** worker count actually used *)
  batches : int;  (** work batches processed *)
  shard_events : int array;
      (** per-shard record counts, indexed by shard.  Scheduling
          dependent — reported for observability, excluded from the
          determinism contract. *)
  completeness : Iocov_util.Anomaly.completeness;
      (** what was read, skipped, retried, and lost; clean on a
          fully-successful strict run *)
}

val default_batch : int
(** Events per work batch when [?batch] is omitted (1024). *)

type stage = Iocov_trace.Event.t list -> Iocov_trace.Event.t list
(** A batch-level transform applied on the worker shards {e after} the
    mount filter: the compiled form of an [Iocov_pipe.Stage] chain.
    Must be pure and deterministic (it runs on any shard, and a batch
    may be re-run by supervision's retries).  Omitted, or the identity,
    the engine behaves exactly as before the pipe layer existed —
    which is what keeps the byte-identical coverage contract. *)

type view = {
  v_cells : int -> int;  (** observation count by {!Iocov_core.Plan} cell id *)
  v_events : int;        (** events analyzed so far *)
}
(** A read-only window onto an accumulator: cells are read {e in place}
    (an array index on the dense backend), so consuming a view never
    copies or converts coverage on the hot path.  Valid only until the
    next event is analyzed — consume it inside the callback. *)

val view_of_coverage : Iocov_core.Coverage.t -> events:int -> view
(** View a merged (reference) accumulator — how the driver serves the
    final progress snapshot at any job count. *)

type watch = pushed:int -> peek:(unit -> view option) -> unit
(** The producer-side progress hook (the [--progress] sink's feed):
    called after every pushed work batch with the cumulative count of
    records pushed and a {e lazy} [peek].  At [jobs = 1], [peek ()]
    yields a {!view} of the inline shard's accumulation so far; for
    sharded runs it returns [None] (worker accumulators are
    domain-private until join), so consumers degrade to producer-side
    throughput figures.  Called on the producer domain; must not
    raise. *)

val analyze_events :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters -> ?ingest:ingest ->
  ?policy:Pool.policy -> ?chaos:chaos -> ?watch:watch ->
  ?filter:Iocov_trace.Filter.t -> ?stage:stage -> Iocov_trace.Event.t list -> outcome
(** Replay an in-memory event list.  [pool] defaults to a fresh
    {!Pool.create}[ ()]; [batch] must be positive; [counters] defaults
    to [Dense]; [ingest] to [Strict]; [policy] to
    {!Pool.default_policy}.  [filter] omitted keeps every record;
    [stage] runs after the filter. *)

val analyze_channel :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters -> ?ingest:ingest ->
  ?policy:Pool.policy -> ?chaos:chaos -> ?watch:watch -> ?limit:int ->
  ?filter:Iocov_trace.Filter.t -> ?stage:stage -> in_channel -> (outcome, string) result
(** Replay a trace from a channel, auto-detecting binary
    ({!Iocov_trace.Binary_io}) versus text ({!Iocov_trace.Format_io}).
    Binary records are decoded in batches on the calling domain (the
    string table makes decode inherently sequential) and analyzed on
    the shards; text lines are shipped raw and parsed on the shards.
    Runs in O(capacity × batch) memory regardless of trace length.
    In strict mode, parse and decode failures report the
    lowest-numbered offending record, matching the sequential reader's
    error.  [limit] stops after that many records (for sampling and
    for deterministic interrupted-run tests). *)

type checkpoint_spec = {
  ckpt_path : string;   (** where to write (atomically, tmp + rename) *)
  ckpt_every : int;     (** events between checkpoints; must be positive *)
}

val analyze_file :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters -> ?ingest:ingest ->
  ?policy:Pool.policy -> ?chaos:chaos -> ?watch:watch ->
  ?checkpoint:checkpoint_spec -> ?resume:string * Checkpoint.t -> ?limit:int ->
  ?filter:Iocov_trace.Filter.t -> ?stage:stage -> string -> (outcome, string) result
(** {!analyze_channel} on a file path, plus checkpointed replay.

    [checkpoint] periodically freezes the decode cursor and the
    accumulated coverage to a file; it requires a binary trace and
    [--jobs 1] (only the inline path has a single deterministic cursor
    to freeze), and a final checkpoint is written when the feed ends.
    [resume = (path, ck)] continues from a loaded {!Checkpoint} — at
    {e any} job count and either counter backend — and folds the
    checkpointed prefix into the outcome; the final report is
    byte-identical to an uninterrupted run's.  When both are given, the
    new checkpoints carry the combined progress, so a run can crash and
    resume repeatedly. *)

(** {1 Push-based sessions}

    For live sources (suite tracers) that emit one event at a time.
    Events are buffered into batches and dispatched to the shards;
    {!finish} flushes, joins, and merges. *)

type session

val session :
  ?pool:Pool.t -> ?batch:int -> ?counters:counters -> ?ingest:ingest ->
  ?policy:Pool.policy -> ?chaos:chaos ->
  ?filter:Iocov_trace.Filter.t -> ?stage:stage -> unit -> session

val sink : session -> Iocov_trace.Event.t -> unit

val progress : session -> (Iocov_core.Coverage.t * int) option
(** Flush pending events and report the coverage accumulated so far
    with the number of events analyzed — a fresh copy, safe to persist.
    Inline sessions (jobs = 1) only; [None] for sharded sessions, whose
    accumulators are private to their worker domains.  The pipe
    driver's live-checkpointing hook. *)

val progress_view : session -> view option
(** Flush pending events and {!view} the inline accumulator in place —
    the cheap variant for progress snapshots, which only read cell
    counts.  [None] for sharded sessions. *)

val complete : session -> (outcome, string) result
(** Flush any partial batch, close the channel, join the workers, and
    merge.  Must be called exactly once per session.  Errors (strict
    parse failures, exhausted error budgets) are values, never
    exceptions — the pipe driver's shape. *)

val finish : session -> outcome
(** {!complete}, unwrapping [Error] into [Failure]. *)
