module Metrics = Iocov_obs.Metrics

let m_domains =
  Metrics.counter Metrics.default "iocov_par_domains_spawned_total"
    ~help:"Worker domains spawned by the parallel pipeline."

let m_jobs =
  Metrics.gauge Metrics.default "iocov_par_jobs"
    ~help:"Worker count of the most recently created pool."

type t = { jobs : int }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some n when n <= 0 -> default_jobs ()
    | Some n -> n
  in
  Metrics.Gauge.set m_jobs jobs;
  { jobs }

let jobs t = t.jobs

(* A launched shard set.  Shard 0 of a single-job pool runs inline at
   [join] time (no domain, no scheduling jitter — the --jobs 1 path is
   the sequential path); otherwise every shard is a spawned domain. *)
type 'a running =
  | Inline of (unit -> 'a)
  | Domains of 'a or_raise Domain.t array

and 'a or_raise = Value of 'a | Raised of exn

let launch t f =
  if t.jobs = 1 then Inline (fun () -> f ~shard:0)
  else
    Domains
      (Array.init t.jobs (fun shard ->
           Metrics.Counter.incr m_domains;
           Domain.spawn (fun () ->
               match f ~shard with v -> Value v | exception exn -> Raised exn)))

let join r =
  match r with
  | Inline f -> [| f () |]
  | Domains domains ->
    (* join every shard before deciding the outcome — a raising shard
       must not leave siblings running — then re-raise the first
       failure by shard index (deterministic choice) *)
    let results = Array.map Domain.join domains in
    Array.map
      (function Value v -> v | Raised exn -> raise exn)
      results

let run t f = join (launch t f)
