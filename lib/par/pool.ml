module Metrics = Iocov_obs.Metrics
module Trace_event = Iocov_obs.Trace_event

let m_domains =
  Metrics.counter Metrics.default "iocov_par_domains_spawned_total"
    ~help:"Worker domains spawned by the parallel pipeline."

let m_jobs =
  Metrics.gauge Metrics.default "iocov_par_jobs"
    ~help:"Worker count of the most recently created pool."

let m_task_retries =
  Metrics.counter Metrics.default "iocov_par_task_retries_total"
    ~help:"Supervised shard tasks retried after an exception."

let m_task_failures =
  Metrics.counter Metrics.default "iocov_par_task_failures_total"
    ~help:"Supervised shard tasks that failed permanently."

type t = { jobs : int }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some n when n <= 0 -> default_jobs ()
    | Some n -> n
  in
  Metrics.Gauge.set m_jobs jobs;
  { jobs }

let jobs t = t.jobs

(* A launched shard set.  Shard 0 of a single-job pool runs inline at
   [join] time (no domain, no scheduling jitter — the --jobs 1 path is
   the sequential path); otherwise every shard is a spawned domain. *)
type 'a running =
  | Inline of (unit -> 'a)
  | Domains of 'a or_raise Domain.t array

and 'a or_raise = Value of 'a | Raised of exn

let launch t f =
  if t.jobs = 1 then Inline (fun () -> f ~shard:0)
  else
    Domains
      (Array.init t.jobs (fun shard ->
           Metrics.Counter.incr m_domains;
           Domain.spawn (fun () ->
               let arg = [ ("shard", string_of_int shard) ] in
               Trace_event.instant ~cat:"pool" ~args:arg "shard-spawn";
               let r =
                 match f ~shard with v -> Value v | exception exn -> Raised exn
               in
               Trace_event.instant ~cat:"pool" ~args:arg "shard-exit";
               r)))

let join r =
  match r with
  | Inline f -> [| f () |]
  | Domains domains ->
    (* join every shard before deciding the outcome — a raising shard
       must not leave siblings running — then re-raise the first
       failure by shard index (deterministic choice) *)
    let results = Array.map Domain.join domains in
    Array.map
      (function Value v -> v | Raised exn -> raise exn)
      results

let run t f = join (launch t f)

(* --- supervision --- *)

exception Shard_killed of string

type policy = { max_retries : int; backoff_unit : int }

let default_policy = { max_retries = 2; backoff_unit = 256 }

(* Deterministic bounded backoff: a pure spin through
   [Domain.cpu_relax], doubling per attempt up to a cap.  No clock, no
   sleep — this library has no unix dependency, and a deterministic
   delay keeps supervised runs reproducible. *)
let backoff policy ~attempt =
  if policy.backoff_unit > 0 && attempt > 0 then begin
    let spins = policy.backoff_unit * (1 lsl min (attempt - 1) 8) in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done
  end

type 'a supervised = {
  results : 'a option array;
  retries : int;
  failed : int;
}

let run_supervised ?(policy = default_policy) t f =
  let retries = Atomic.make 0 in
  let results =
    run t (fun ~shard ->
        let rec attempt n =
          match f ~shard with
          | v -> Some v
          | exception Shard_killed _ ->
            (* an explicit kill is terminal: no retry *)
            Metrics.Counter.incr m_task_failures;
            None
          | exception _ when n < policy.max_retries ->
            Atomic.incr retries;
            Metrics.Counter.incr m_task_retries;
            backoff policy ~attempt:(n + 1);
            attempt (n + 1)
          | exception _ ->
            Metrics.Counter.incr m_task_failures;
            None
        in
        attempt 0)
  in
  let failed =
    Array.fold_left (fun acc r -> if r = None then acc + 1 else acc) 0 results
  in
  { results; retries = Atomic.get retries; failed }
