(** A bounded multi-producer/multi-consumer channel.

    The pipeline's back-pressure primitive: the reader domain pushes
    decoded batches, worker domains pop them, and the fixed capacity
    bounds how far decode may run ahead of analysis — which is what
    keeps a multi-million-event replay in O(capacity × batch) memory.

    Blocking is mutex + condition (no spinning); every blocking wait
    increments [iocov_par_chan_waits_total{side=push_full|pop_empty}]. *)

type 'a t

exception Closed
(** Raised by {!push} on a closed channel. *)

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Blocks while the channel is full.  Raises {!Closed} if the channel
    is (or becomes) closed. *)

val pop : 'a t -> 'a option
(** Blocks while the channel is empty and open.  [None] once the
    channel is closed {e and} drained — the consumer's termination
    signal. *)

val close : 'a t -> unit
(** Idempotent.  Wakes all waiters; buffered items remain poppable. *)

val length : 'a t -> int
(** Occupied slots (racy by nature; for monitoring only). *)
