module Coverage = Iocov_core.Coverage
module Filter = Iocov_trace.Filter
module Event = Iocov_trace.Event
module Binary_io = Iocov_trace.Binary_io
module Format_io = Iocov_trace.Format_io
module Span = Iocov_obs.Span
module Metrics = Iocov_obs.Metrics

let m_batches =
  Metrics.counter Metrics.default "iocov_par_batches_total"
    ~help:"Work batches processed by the parallel pipeline."

let m_events =
  Metrics.counter Metrics.default "iocov_par_events_total"
    ~help:"Trace records processed by the parallel pipeline."

let m_observed kind =
  Metrics.counter Metrics.default "iocov_par_observed_events_total"
    ~labels:[ ("counters", kind) ]
    ~help:"Filtered records fed to a coverage accumulator, by counter backend."

let m_observed_dense = m_observed "dense"
let m_observed_reference = m_observed "reference"

let default_batch = 1024

(* Channel capacity in batches.  Small multiple of the worker count:
   enough slack to ride out scheduling jitter, small enough that decode
   stays O(capacity × batch) ahead of analysis. *)
let capacity_for jobs = 4 * jobs

type outcome = {
  coverage : Coverage.t;
  events : int;
  kept : int;
  dropped : int;
  shards : int;
  batches : int;
  shard_events : int array;
}

(* A unit of work: either decoded events (binary traces, live tracers)
   or raw text lines parsed on the worker (text traces — the parse is
   the expensive part, so it is the part worth distributing). *)
type work =
  | Events of Event.t list
  | Lines of (int * string) list

(* Counter backend for shard accumulators.  [Dense] (the default)
   counts into {!Coverage.Dense}'s flat array and converts to a
   reference accumulator once at merge time; [Reference] keeps the
   hashed histograms on the hot path and serves as the differential
   oracle — both must produce byte-identical snapshots. *)
type counters = Dense | Reference

type acc = A_ref of Coverage.t | A_dense of Coverage.Dense.t

type shard_state = {
  acc : acc;
  mutable s_events : int;
  mutable s_kept : int;
  mutable s_batches : int;
  mutable s_error : (int * string) option;  (* lowest-line parse error *)
}

let make_shard ~counters ~metered () =
  let acc =
    match counters with
    | Reference -> A_ref (Coverage.create ~metered ())
    (* dense shards are inherently unmetered; finalize credits the
       converted accumulator in one batch *)
    | Dense -> A_dense (Coverage.Dense.create ())
  in
  { acc; s_events = 0; s_kept = 0; s_batches = 0; s_error = None }

(* One backend dispatch per batch, not per event. *)
let observe_batch st kept =
  match st.acc with
  | A_ref cov ->
    Event.iter_tracked kept (Coverage.observe cov);
    Metrics.Counter.add m_observed_reference (List.length kept)
  | A_dense d ->
    Event.iter_tracked kept (Coverage.Dense.observe d);
    Metrics.Counter.add m_observed_dense (List.length kept)

let note_error st lineno msg =
  match st.s_error with
  | Some (l, _) when l <= lineno -> ()
  | _ -> st.s_error <- Some (lineno, msg)

let process filter st work =
  let events =
    match work with
    | Events batch -> batch
    | Lines batch ->
      List.filter_map
        (fun (lineno, line) ->
          match Format_io.of_line ~seq:lineno line with
          | Ok e -> Some e
          | Error msg ->
            note_error st lineno msg;
            None)
        batch
  in
  let n = List.length events in
  let kept = Filter.keep_all filter events in
  observe_batch st kept;
  st.s_events <- st.s_events + n;
  st.s_kept <- st.s_kept + List.length kept;
  st.s_batches <- st.s_batches + 1;
  Metrics.Counter.incr m_batches;
  Metrics.Counter.add m_events n

(* Merge shard results in shard order.  merge_into is commutative and
   associative (property-tested), so the result is independent of how
   the scheduler spread batches over shards — the determinism
   contract.  Shards accumulate unmetered; the merged accumulator is
   credited to the global counters in one batch, matching the
   sequential path's totals exactly. *)
let finalize shards =
  let error =
    Array.fold_left
      (fun acc st ->
        match (acc, st.s_error) with
        | None, e | e, None -> e
        | (Some (la, _) as a), Some (lb, _) ->
          if la <= lb then a else st.s_error)
      None shards
  in
  match error with
  | Some (lineno, msg) -> Error (Printf.sprintf "line %d: %s" lineno msg)
  | None ->
    let coverage =
      match shards with
      | [| { acc = A_ref cov; _ } |] ->
        cov (* single reference shard: metered per event already *)
      | _ -> (
        match shards.(0).acc with
        | A_ref _ ->
          let dst = Coverage.create () in
          Array.iter
            (fun st ->
              match st.acc with
              | A_ref cov -> Coverage.merge_into ~dst cov
              | A_dense _ -> assert false (* one backend per pipeline *))
            shards;
          Coverage.meter_counts dst;
          dst
        | A_dense _ ->
          (* O(cells) pointwise array sums, then one lossless rebuild
             of the reference shape for every downstream consumer. *)
          let dst = Coverage.Dense.create () in
          Array.iter
            (fun st ->
              match st.acc with
              | A_dense d -> Coverage.Dense.merge_into ~dst d
              | A_ref _ -> assert false)
            shards;
          let cov = Coverage.Dense.to_reference ~metered:true dst in
          Coverage.meter_counts cov;
          cov)
    in
    let sum f = Array.fold_left (fun acc st -> acc + f st) 0 shards in
    let events = sum (fun st -> st.s_events) in
    Ok
      {
        coverage;
        events;
        kept = sum (fun st -> st.s_kept);
        dropped = events - sum (fun st -> st.s_kept);
        shards = Array.length shards;
        batches = sum (fun st -> st.s_batches);
        shard_events = Array.map (fun st -> st.s_events) shards;
      }

(* The engine: [feed] pushes work items; shards drain them.  With one
   job everything runs inline on the caller — the --jobs 1 path is the
   sequential path, with a metered shard and no channel. *)
let run_pipeline ~pool ~counters ~feed ~filter =
  if Pool.jobs pool = 1 then begin
    let st = make_shard ~counters ~metered:true () in
    Span.with_ ~name:"par/shard-0" (fun () -> feed (process filter st));
    finalize [| st |]
  end
  else begin
    let jobs = Pool.jobs pool in
    let chan = Chan.create ~capacity:(capacity_for jobs) in
    let running =
      Pool.launch pool (fun ~shard ->
          let st = make_shard ~counters ~metered:false () in
          Span.with_ ~name:(Printf.sprintf "par/shard-%d" shard) (fun () ->
              let rec loop () =
                match Chan.pop chan with
                | None -> ()
                | Some w ->
                  process filter st w;
                  loop ()
              in
              loop ());
          st)
    in
    let fed = match feed (Chan.push chan) with () -> Ok () | exception exn -> Error exn in
    Chan.close chan;
    let shards = Pool.join running in
    match fed with Error exn -> raise exn | Ok () -> finalize shards
  end

(* --- entry points --- *)

let or_default pool = match pool with Some p -> p | None -> Pool.create ()

let analyze_events ?pool ?(batch = default_batch) ?(counters = Dense) ~filter
    events =
  if batch <= 0 then invalid_arg "Replay.analyze_events: batch must be positive";
  let pool = or_default pool in
  let feed push =
    let rec chunks = function
      | [] -> ()
      | events ->
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | e :: tl -> take (n - 1) (e :: acc) tl
        in
        let head, tail = take batch [] events in
        push (Events head);
        chunks tail
    in
    chunks events
  in
  match run_pipeline ~pool ~counters ~feed ~filter with
  | Ok outcome -> outcome
  | Error msg ->
    (* event lists carry no text to fail parsing on *)
    failwith ("Replay.analyze_events: " ^ msg)

exception Feed_error of string

let analyze_channel ?pool ?(batch = default_batch) ?(counters = Dense) ~filter
    ic =
  if batch <= 0 then invalid_arg "Replay.analyze_channel: batch must be positive";
  let pool = or_default pool in
  let feed push =
    if Binary_io.is_binary_trace ic then begin
      match Binary_io.open_stream ic with
      | Error msg -> raise (Feed_error msg)
      | Ok st ->
        let rec loop () =
          match Binary_io.read_batch st ~max:batch with
          | Error msg -> raise (Feed_error msg)
          | Ok b when Array.length b = 0 -> ()
          | Ok b ->
            push (Events (Array.to_list b));
            loop ()
        in
        loop ()
    end
    else begin
      let st = Format_io.open_stream ic in
      let rec loop () =
        let b = Format_io.read_raw_batch st ~max:batch in
        if Array.length b > 0 then begin
          push (Lines (Array.to_list b));
          loop ()
        end
      in
      loop ()
    end
  in
  match run_pipeline ~pool ~counters ~feed ~filter with
  | outcome -> outcome
  | exception Feed_error msg -> Error msg

(* --- the push-based session, for live tracers --- *)

type session = {
  batch_size : int;
  mutable buf : Event.t list;  (* newest first *)
  mutable buf_n : int;
  submit : work -> unit;
  complete : unit -> (outcome, string) result;
}

let session ?pool ?(batch = default_batch) ?(counters = Dense) ~filter () =
  if batch <= 0 then invalid_arg "Replay.session: batch must be positive";
  let pool = or_default pool in
  if Pool.jobs pool = 1 then begin
    let st = make_shard ~counters ~metered:true () in
    {
      batch_size = batch;
      buf = [];
      buf_n = 0;
      submit = process filter st;
      complete = (fun () -> finalize [| st |]);
    }
  end
  else begin
    let jobs = Pool.jobs pool in
    let chan = Chan.create ~capacity:(capacity_for jobs) in
    let running =
      Pool.launch pool (fun ~shard ->
          let st = make_shard ~counters ~metered:false () in
          Span.with_ ~name:(Printf.sprintf "par/shard-%d" shard) (fun () ->
              let rec loop () =
                match Chan.pop chan with
                | None -> ()
                | Some w ->
                  process filter st w;
                  loop ()
              in
              loop ());
          st)
    in
    {
      batch_size = batch;
      buf = [];
      buf_n = 0;
      submit = Chan.push chan;
      complete =
        (fun () ->
          Chan.close chan;
          finalize (Pool.join running));
    }
  end

let flush s =
  if s.buf_n > 0 then begin
    s.submit (Events (List.rev s.buf));
    s.buf <- [];
    s.buf_n <- 0
  end

let sink s e =
  s.buf <- e :: s.buf;
  s.buf_n <- s.buf_n + 1;
  if s.buf_n >= s.batch_size then flush s

let finish s =
  flush s;
  match s.complete () with
  | Ok outcome -> outcome
  | Error msg -> failwith ("Replay.finish: " ^ msg)
