module Coverage = Iocov_core.Coverage
module Plan = Iocov_core.Plan
module Filter = Iocov_trace.Filter
module Event = Iocov_trace.Event
module Binary_io = Iocov_trace.Binary_io
module Format_io = Iocov_trace.Format_io
module Anomaly = Iocov_util.Anomaly
module Span = Iocov_obs.Span
module Metrics = Iocov_obs.Metrics
module Clock = Iocov_obs.Clock
module Trace_event = Iocov_obs.Trace_event

let m_batches =
  Metrics.counter Metrics.default "iocov_par_batches_total"
    ~help:"Work batches processed by the parallel pipeline."

let m_events =
  Metrics.counter Metrics.default "iocov_par_events_total"
    ~help:"Trace records processed by the parallel pipeline."

let m_observed kind =
  Metrics.counter Metrics.default "iocov_par_observed_events_total"
    ~labels:[ ("counters", kind) ]
    ~help:"Filtered records fed to a coverage accumulator, by counter backend."

let m_observed_dense = m_observed "dense"
let m_observed_reference = m_observed "reference"

let m_retries =
  Metrics.counter Metrics.default "iocov_par_batch_retries_total"
    ~help:"Work batches retried after a worker exception."

let m_abandoned =
  Metrics.counter Metrics.default "iocov_par_batches_abandoned_total"
    ~help:"Work batches abandoned after exhausting their retries."

let m_shards_failed =
  Metrics.counter Metrics.default "iocov_par_shards_failed_total"
    ~help:"Worker shards that died mid-run; survivors absorbed their queue."

let m_checkpoints =
  Metrics.counter Metrics.default "iocov_par_checkpoints_total"
    ~help:"Checkpoint files written by the replay pipeline."

let m_checkpoint_events =
  Metrics.gauge Metrics.default "iocov_par_checkpoint_events"
    ~help:"Cumulative events covered by the most recent checkpoint."

let default_batch = 1024

type stage = Event.t list -> Event.t list

(* Channel capacity in batches.  Small multiple of the worker count:
   enough slack to ride out scheduling jitter, small enough that decode
   stays O(capacity × batch) ahead of analysis. *)
let capacity_for jobs = 4 * jobs

type outcome = {
  coverage : Coverage.t;
  events : int;
  kept : int;
  dropped : int;
  shards : int;
  batches : int;
  shard_events : int array;
  completeness : Anomaly.completeness;
}

(* A unit of work: either decoded events (binary traces, live tracers)
   or raw text lines parsed on the worker (text traces — the parse is
   the expensive part, so it is the part worth distributing). *)
type work =
  | Events of Event.t list
  | Lines of (int * string) list

let work_size = function Events l -> List.length l | Lines l -> List.length l

(* Counter backend for shard accumulators.  [Dense] (the default)
   counts into {!Coverage.Dense}'s flat array and converts to a
   reference accumulator once at merge time; [Reference] keeps the
   hashed histograms on the hot path and serves as the differential
   oracle — both must produce byte-identical snapshots. *)
type counters = Dense | Reference

(* Re-exported equation with {!Binary_io.mode}: the same value both
   selects the trace decoder's corruption handling and the pipeline's
   treatment of unparsable text lines and abandoned batches. *)
type ingest = Binary_io.mode = Strict | Lenient of Anomaly.budget

type chaos = shard:int -> batch:int -> unit

type acc = A_ref of Coverage.t | A_dense of Coverage.Dense.t

type shard_state = {
  acc : acc;
  mutable s_events : int;
  mutable s_kept : int;
  mutable s_batches : int;
  mutable s_error : (int * string) option;  (* strict: lowest-line parse error *)
  mutable s_skipped : int;      (* lenient: unparsable records dropped *)
  mutable s_retried : int;      (* batch retry attempts *)
  mutable s_abandoned_batches : int;
  mutable s_abandoned_events : int;
  mutable s_killed : string option;  (* terminal shard failure *)
  mutable s_fatal : string option;   (* strict: batch dead after retries *)
  mutable s_anomaly_count : int;
  mutable s_anomalies : Anomaly.t list;  (* newest first, capped *)
}

let make_shard ~counters ~metered () =
  let acc =
    match counters with
    | Reference -> A_ref (Coverage.create ~metered ())
    (* dense shards are inherently unmetered; finalize credits the
       converted accumulator in one batch *)
    | Dense -> A_dense (Coverage.Dense.create ())
  in
  {
    acc;
    s_events = 0;
    s_kept = 0;
    s_batches = 0;
    s_error = None;
    s_skipped = 0;
    s_retried = 0;
    s_abandoned_batches = 0;
    s_abandoned_events = 0;
    s_killed = None;
    s_fatal = None;
    s_anomaly_count = 0;
    s_anomalies = [];
  }

let shard_note st a =
  st.s_anomaly_count <- st.s_anomaly_count + 1;
  if st.s_anomaly_count <= Anomaly.max_kept_anomalies then
    st.s_anomalies <- a :: st.s_anomalies

(* One backend dispatch per batch, not per event. *)
let observe_batch st kept n_kept =
  match st.acc with
  | A_ref cov ->
    Event.iter_tracked kept (Coverage.observe cov);
    Metrics.Counter.add m_observed_reference n_kept
  | A_dense d ->
    Event.iter_tracked kept (Coverage.Dense.observe d);
    Metrics.Counter.add m_observed_dense n_kept

let note_error st lineno msg =
  match st.s_error with
  | Some (l, _) when l <= lineno -> ()
  | _ -> st.s_error <- Some (lineno, msg)

(* A batch is processed in two halves so supervision can retry safely:
   [prepare] (parse + filter) touches no shard state and may run any
   number of times; [commit] is the only mutating half and runs exactly
   once per batch. *)
type prepared = {
  p_n : int;
  p_kept : Event.t list;
  p_kept_n : int;
  p_errors : (int * string) list;  (* text lines that failed to parse *)
}

(* The batch-level stage chain: mount filter (when given) then any
   extra stages.  Compiled once per run; shard-safe because every
   component is a pure batch transform over immutable events. *)
let compile_keep ?filter ?stage () =
  match (filter, stage) with
  | None, None -> fun events -> events
  | Some f, None -> Filter.keep_all f
  | None, Some s -> s
  | Some f, Some s -> fun events -> s (Filter.keep_all f events)

let prepare keep work =
  let errors = ref [] in
  let events =
    match work with
    | Events batch -> batch
    | Lines batch ->
      List.filter_map
        (fun (lineno, line) ->
          match Format_io.of_line ~seq:lineno line with
          | Ok e -> Some e
          | Error msg ->
            errors := (lineno, msg) :: !errors;
            None)
        batch
  in
  let kept = keep events in
  {
    p_n = List.length events;
    p_kept = kept;
    p_kept_n = List.length kept;
    p_errors = List.rev !errors;
  }

let commit ~ingest st p =
  (match ingest with
   | Strict -> List.iter (fun (l, m) -> note_error st l m) p.p_errors
   | Lenient _ ->
     List.iter
       (fun (l, m) ->
         st.s_skipped <- st.s_skipped + 1;
         shard_note st (Anomaly.v ~line:l Anomaly.Parse_error m))
       p.p_errors);
  observe_batch st p.p_kept p.p_kept_n;
  st.s_events <- st.s_events + p.p_n;
  st.s_kept <- st.s_kept + p.p_kept_n;
  st.s_batches <- st.s_batches + 1;
  Metrics.Counter.incr m_batches;
  Metrics.Counter.add m_events p.p_n

(* Run one batch under supervision: retry [prepare] (with deterministic
   backoff) on any exception except {!Pool.Shard_killed}, which is a
   terminal shard failure and propagates to the worker loop.  A batch
   that exhausts its retries is abandoned — an accounted loss in
   lenient mode, a run-fatal error in strict mode (but the shard keeps
   draining either way, so siblings never stall). *)
let supervised_batch ~ingest ~(policy : Pool.policy) ~chaos ~keep st ~shard ~batchno w =
  let tracing = Trace_event.enabled () in
  let trace_args = [ ("shard", string_of_int shard); ("batch", string_of_int batchno) ] in
  let t_start = if tracing then Clock.now () else 0.0 in
  let rec attempt n =
    match
      (match chaos with Some f -> f ~shard ~batch:batchno | None -> ());
      prepare keep w
    with
    | p ->
      commit ~ingest st p;
      if tracing then
        Trace_event.complete ~cat:"stage" ~name:"batch"
          ~args:
            (trace_args
            @ [ ("events", string_of_int p.p_n); ("kept", string_of_int p.p_kept_n) ])
          ~ts:t_start
          ~dur:(Clock.now () -. t_start)
          ()
    | exception (Pool.Shard_killed _ as e) -> raise e
    | exception exn ->
      if n < policy.Pool.max_retries then begin
        st.s_retried <- st.s_retried + 1;
        Metrics.Counter.incr m_retries;
        Trace_event.instant ~cat:"supervise"
          ~args:(trace_args @ [ ("attempt", string_of_int (n + 1)) ])
          "batch-retry";
        Pool.backoff policy ~attempt:(n + 1);
        attempt (n + 1)
      end
      else begin
        let lost = work_size w in
        let msg =
          Printf.sprintf "batch failed after %d retries: %s" policy.Pool.max_retries
            (Printexc.to_string exn)
        in
        st.s_abandoned_batches <- st.s_abandoned_batches + 1;
        st.s_abandoned_events <- st.s_abandoned_events + lost;
        Metrics.Counter.incr m_abandoned;
        Trace_event.instant ~cat:"supervise"
          ~args:(trace_args @ [ ("events_lost", string_of_int lost) ])
          "batch-abandoned";
        shard_note st (Anomaly.v Anomaly.Batch_abandoned msg);
        match ingest with
        | Strict -> if st.s_fatal = None then st.s_fatal <- Some msg
        | Lenient _ -> ()
      end
  in
  attempt 0

let record_kill st msg w =
  st.s_killed <- Some msg;
  st.s_abandoned_batches <- st.s_abandoned_batches + 1;
  st.s_abandoned_events <- st.s_abandoned_events + work_size w;
  shard_note st (Anomaly.v Anomaly.Shard_failed msg);
  Trace_event.instant ~cat:"supervise" ~args:[ ("detail", msg) ] "shard-killed";
  Metrics.Counter.incr m_shards_failed

(* The worker loop of a spawned shard.  A {!Pool.Shard_killed} ends
   this shard only: its committed batches survive, its queue drains to
   the siblings, and the last shard to die closes the channel so the
   producer stops instead of blocking forever. *)
let worker_loop ~ingest ~policy ~chaos ~keep ~chan ~live st ~shard =
  let batchno = ref 0 in
  let rec loop () =
    match Chan.pop chan with
    | None -> ()
    | Some w -> (
      let b = !batchno in
      incr batchno;
      match supervised_batch ~ingest ~policy ~chaos ~keep st ~shard ~batchno:b w with
      | () -> loop ()
      | exception Pool.Shard_killed msg ->
        record_kill st msg w;
        if Atomic.fetch_and_add live (-1) = 1 then Chan.close chan)
  in
  loop ()

(* The shard-side half of the completeness ledger; the producer-side
   half (decode skips, resyncs) comes from {!Binary_io.completeness}. *)
let shard_completeness st =
  {
    (Anomaly.clean ~events_read:0) with
    Anomaly.records_skipped = st.s_skipped;
    batches_retried = st.s_retried;
    shards_failed = (if st.s_killed = None then 0 else 1);
    events_abandoned = st.s_abandoned_events;
    anomalies = List.rev st.s_anomalies;
  }

(* Merge shard results in shard order.  merge_into is commutative and
   associative (property-tested), so the result is independent of how
   the scheduler spread batches over shards — the determinism
   contract.  Shards accumulate unmetered; the merged accumulator is
   credited to the global counters in one batch, matching the
   sequential path's totals exactly. *)
let finalize ~ingest ~pushed ~producer shards =
  let error =
    Array.fold_left
      (fun acc st ->
        match (acc, st.s_error) with
        | None, e | e, None -> e
        | (Some (la, _) as a), Some (lb, _) ->
          if la <= lb then a else st.s_error)
      None shards
  in
  let first_of f =
    Array.fold_left (fun acc st -> match acc with Some _ -> acc | None -> f st) None shards
  in
  let strict_failure =
    match ingest with
    | Lenient _ -> None
    | Strict -> (
      match error with
      | Some (lineno, msg) -> Some (Printf.sprintf "line %d: %s" lineno msg)
      | None -> (
        match first_of (fun st -> st.s_fatal) with
        | Some msg -> Some msg
        | None ->
          Option.map
            (fun msg -> "worker shard failed: " ^ msg)
            (first_of (fun st -> st.s_killed))))
  in
  match strict_failure with
  | Some msg -> Error msg
  | None ->
    let coverage =
      match shards with
      | [| { acc = A_ref cov; _ } |] ->
        cov (* single reference shard: metered per event already *)
      | _ -> (
        match shards.(0).acc with
        | A_ref _ ->
          let dst = Coverage.create () in
          Array.iter
            (fun st ->
              match st.acc with
              | A_ref cov -> Coverage.merge_into ~dst cov
              | A_dense _ -> assert false (* one backend per pipeline *))
            shards;
          Coverage.meter_counts dst;
          dst
        | A_dense _ ->
          (* O(cells) pointwise array sums, then one lossless rebuild
             of the reference shape for every downstream consumer. *)
          let dst = Coverage.Dense.create () in
          Array.iter
            (fun st ->
              match st.acc with
              | A_dense d -> Coverage.Dense.merge_into ~dst d
              | A_ref _ -> assert false)
            shards;
          let cov = Coverage.Dense.to_reference ~metered:true dst in
          Coverage.meter_counts cov;
          cov)
    in
    let sum f = Array.fold_left (fun acc st -> acc + f st) 0 shards in
    let events = sum (fun st -> st.s_events) in
    let completeness =
      let shard_side =
        Array.fold_left
          (fun acc st -> Anomaly.merge acc (shard_completeness st))
          (Anomaly.clean ~events_read:0)
          shards
      in
      let merged = Anomaly.merge { producer with Anomaly.events_read = 0 } shard_side in
      (* work pushed but neither committed, skipped, nor individually
         abandoned was stranded in the channel when every worker died *)
      let stranded =
        max 0
          (pushed - events
          - shard_side.Anomaly.events_abandoned
          - shard_side.Anomaly.records_skipped)
      in
      {
        merged with
        Anomaly.events_read = events;
        events_abandoned = merged.Anomaly.events_abandoned + stranded;
        truncated = merged.Anomaly.truncated || stranded > 0;
      }
    in
    let budget_failure =
      match ingest with
      | Strict -> None
      | Lenient budget ->
        let bad = completeness.Anomaly.records_skipped in
        if Anomaly.budget_allows budget ~bad ~total:(events + bad) ~final:true then None
        else
          Some
            (Printf.sprintf "error budget exceeded: %d of %d records corrupt (budget %s)"
               bad (events + bad) (Anomaly.budget_to_string budget))
    in
    match budget_failure with
    | Some msg -> Error msg
    | None ->
      Ok
        {
          coverage;
          events;
          kept = sum (fun st -> st.s_kept);
          dropped = events - sum (fun st -> st.s_kept);
          shards = Array.length shards;
          batches = sum (fun st -> st.s_batches);
          shard_events = Array.map (fun st -> st.s_events) shards;
          completeness;
        }

exception Halted
(* Raised out of the inline work handler when the single shard was
   killed: there is nobody left to feed, so the feed stops early. *)

(* The producer-side progress hook: called after every work item is
   pushed, with the cumulative pushed-event count and a lazy [peek]
   that yields a cheap cell view of the inline shard's accumulation so
   far ([None] for sharded runs, whose accumulators are domain-private
   until join).  A view reads cells in place — an array index on the
   dense backend — so peeking never copies or converts an accumulator
   on the hot path. *)
type view = {
  v_cells : int -> int;  (* plan cell id -> observation count *)
  v_events : int;
}

type watch = pushed:int -> peek:(unit -> view option) -> unit

let view_of_coverage cov ~events =
  { v_cells = (fun id -> Coverage.cell_count cov Plan.cells.(id)); v_events = events }

let view_shard st () =
  let cells =
    match st.acc with
    | A_ref cov -> fun id -> Coverage.cell_count cov Plan.cells.(id)
    | A_dense d -> Coverage.Dense.cell_count d
  in
  Some { v_cells = cells; v_events = st.s_events }

let view_none () = None

(* The checkpoint path still needs a real accumulator copy. *)
let peek_shard st () =
  let coverage =
    match st.acc with
    | A_ref cov -> Coverage.copy cov
    | A_dense d -> Coverage.Dense.to_reference ~metered:false d
  in
  Some (coverage, st.s_events)

(* The engine: [feed] pushes work items and reports the producer-side
   completeness through [set_comp] (on every exit path); shards drain
   the items.  With one job everything runs inline on the caller — the
   --jobs 1 path is the sequential path, with a metered shard and no
   channel. *)
let run_pipeline ~pool ~counters ~ingest ~policy ~chaos ?expose_shard ?watch ~feed ~keep () =
  let producer = ref (Anomaly.clean ~events_read:0) in
  let pushed = ref 0 in
  let watching ~peek =
    match watch with
    | Some f -> f ~pushed:!pushed ~peek
    | None -> ()
  in
  if Pool.jobs pool = 1 then begin
    let st = make_shard ~counters ~metered:true () in
    (match expose_shard with Some f -> f st | None -> ());
    let batchno = ref 0 in
    let handler w =
      if st.s_killed <> None then raise Halted;
      pushed := !pushed + work_size w;
      let b = !batchno in
      incr batchno;
      match supervised_batch ~ingest ~policy ~chaos ~keep st ~shard:0 ~batchno:b w with
      | () -> watching ~peek:(view_shard st)
      | exception Pool.Shard_killed msg ->
        record_kill st msg w;
        raise Halted
    in
    (match
       Span.with_ ~name:"par/shard-0" (fun () ->
           feed ~push:handler ~set_comp:(fun c -> producer := c))
     with
     | () -> ()
     | exception Halted -> ());
    finalize ~ingest ~pushed:!pushed ~producer:!producer [| st |]
  end
  else begin
    let jobs = Pool.jobs pool in
    let chan = Chan.create ~capacity:(capacity_for jobs) in
    let live = Atomic.make jobs in
    let running =
      Pool.launch pool (fun ~shard ->
          let st = make_shard ~counters ~metered:false () in
          Span.with_ ~name:(Printf.sprintf "par/shard-%d" shard) (fun () ->
              worker_loop ~ingest ~policy ~chaos ~keep ~chan ~live st ~shard);
          st)
    in
    let push w =
      pushed := !pushed + work_size w;
      Chan.push chan w;
      watching ~peek:view_none
    in
    let fed =
      match feed ~push ~set_comp:(fun c -> producer := c) with
      | () -> Ok ()
      | exception Chan.Closed -> Ok () (* every worker died; partial run *)
      | exception exn -> Error exn
    in
    Chan.close chan;
    let shards = Pool.join running in
    match fed with
    | Error exn -> raise exn
    | Ok () -> finalize ~ingest ~pushed:!pushed ~producer:!producer shards
  end

(* --- entry points --- *)

let or_default pool = match pool with Some p -> p | None -> Pool.create ()
let or_policy policy = match policy with Some p -> p | None -> Pool.default_policy

let analyze_events ?pool ?(batch = default_batch) ?(counters = Dense) ?(ingest = Strict)
    ?policy ?chaos ?watch ?filter ?stage events =
  if batch <= 0 then invalid_arg "Replay.analyze_events: batch must be positive";
  let pool = or_default pool in
  let policy = or_policy policy in
  let keep = compile_keep ?filter ?stage () in
  let feed ~push ~set_comp:_ =
    let rec chunks = function
      | [] -> ()
      | events ->
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | e :: tl -> take (n - 1) (e :: acc) tl
        in
        let head, tail = take batch [] events in
        push (Events head);
        chunks tail
    in
    chunks events
  in
  match run_pipeline ~pool ~counters ~ingest ~policy ~chaos ?watch ~feed ~keep () with
  | Ok outcome -> outcome
  | Error msg ->
    (* event lists carry no text to fail parsing on *)
    failwith ("Replay.analyze_events: " ^ msg)

exception Feed_error of string

type checkpoint_spec = { ckpt_path : string; ckpt_every : int }

let coverage_of_acc = function
  | A_ref cov -> cov
  | A_dense d -> Coverage.Dense.to_reference ~metered:false d

(* One checkpoint: the resumed prefix (if any) + the producer's decode
   state + the inline shard's accumulation so far. *)
let write_checkpoint ~spec ~trace_path ~base ~stream st =
  let coverage = Coverage.create () in
  (match base with
   | Some (ck : Checkpoint.t) -> Coverage.merge_into ~dst:coverage ck.Checkpoint.coverage
   | None -> ());
  Coverage.merge_into ~dst:coverage (coverage_of_acc st.acc);
  let base_events, base_kept, base_batches, base_comp =
    match base with
    | Some ck ->
      ( ck.Checkpoint.events,
        ck.Checkpoint.kept,
        ck.Checkpoint.batches,
        { ck.Checkpoint.completeness with Anomaly.events_read = 0 } )
    | None -> (0, 0, 0, Anomaly.clean ~events_read:0)
  in
  let events = base_events + st.s_events in
  let completeness =
    let producer = { (Binary_io.completeness stream) with Anomaly.events_read = 0 } in
    let merged = Anomaly.merge base_comp (Anomaly.merge producer (shard_completeness st)) in
    { merged with Anomaly.events_read = events }
  in
  Checkpoint.save ~path:spec.ckpt_path
    {
      Checkpoint.trace = trace_path;
      cursor = Binary_io.cursor stream;
      events;
      kept = base_kept + st.s_kept;
      batches = base_batches + st.s_batches;
      completeness;
      coverage;
    };
  Metrics.Counter.incr m_checkpoints;
  Metrics.Gauge.set m_checkpoint_events events;
  Trace_event.instant ~cat:"checkpoint"
    ~args:[ ("events", string_of_int events) ]
    "checkpoint-write"

(* The fused single-shard engine: v3 records map to dense plan cells
   inside the decoder ({!Binary_io.drain_batch_dense}) — no [Event.t]
   list is ever built, no [Model.call] is ever materialized, no channel
   is crossed.  Metering, watch ticks, and checkpoints are
   batch-for-batch identical to the classic inline path, so snapshots
   and ledgers cannot tell the two apart. *)
let run_fused ~ingest ~batch ?watch ~checkpoint ~resume ~limit ~filter ~trace_path stream =
  let st = make_shard ~counters:Dense ~metered:true () in
  let d = match st.acc with A_dense d -> d | A_ref _ -> assert false in
  let keep_hint = Option.map (fun f hint -> Filter.matches_hint f hint) filter in
  let remaining = ref (match limit with Some n -> n | None -> max_int) in
  let next_due = ref (match checkpoint with Some c -> c.ckpt_every | None -> max_int) in
  let maybe_checkpoint ~force =
    match checkpoint with
    | Some spec when force || st.s_events >= !next_due ->
      write_checkpoint ~spec ~trace_path ~base:(Option.map snd resume) ~stream st;
      next_due := st.s_events + spec.ckpt_every
    | _ -> ()
  in
  let tracing = Trace_event.enabled () in
  let fed =
    Span.with_ ~name:"par/shard-0" (fun () ->
        let rec loop () =
          if !remaining <= 0 then Ok ()
          else begin
            let t_start = if tracing then Clock.now () else 0.0 in
            match
              Binary_io.drain_batch_dense stream ?keep_hint ~dense:d
                ~max:(min batch !remaining) ()
            with
            | Error _ as e -> e
            | Ok dr when dr.Binary_io.dr_produced = 0 -> Ok ()
            | Ok dr ->
              remaining := !remaining - dr.Binary_io.dr_produced;
              st.s_events <- st.s_events + dr.Binary_io.dr_produced;
              st.s_kept <- st.s_kept + dr.Binary_io.dr_kept;
              st.s_batches <- st.s_batches + 1;
              Metrics.Counter.incr m_batches;
              Metrics.Counter.add m_events dr.Binary_io.dr_produced;
              Metrics.Counter.add m_observed_dense dr.Binary_io.dr_kept;
              if keep_hint <> None then
                Filter.meter ~kept:dr.Binary_io.dr_kept ~no_hint:dr.Binary_io.dr_no_hint
                  ~no_match:dr.Binary_io.dr_no_match;
              if tracing then
                Trace_event.complete ~cat:"stage" ~name:"batch"
                  ~args:
                    [ ("shard", "0");
                      ("batch", string_of_int (st.s_batches - 1));
                      ("events", string_of_int dr.Binary_io.dr_produced);
                      ("kept", string_of_int dr.Binary_io.dr_kept) ]
                  ~ts:t_start
                  ~dur:(Clock.now () -. t_start)
                  ();
              (match watch with
               | Some w -> w ~pushed:st.s_events ~peek:(view_shard st)
               | None -> ());
              maybe_checkpoint ~force:false;
              loop ()
          end
        in
        let r = loop () in
        (match r with Ok () -> maybe_checkpoint ~force:(checkpoint <> None) | Error _ -> ());
        r)
  in
  match fed with
  | Error _ as e -> e
  | Ok () ->
    finalize ~ingest ~pushed:st.s_events
      ~producer:(Binary_io.completeness stream)
      [| st |]

let analyze_ic ~pool ~batch ~counters ~ingest ~policy ~chaos ?watch ~checkpoint ~resume
    ~limit ?filter ?stage ~trace_path ic =
  if batch <= 0 then invalid_arg "Replay.analyze_channel: batch must be positive";
  (match limit with
   | Some n when n < 0 -> invalid_arg "Replay.analyze_channel: limit must be non-negative"
   | _ -> ());
  let keep = compile_keep ?filter ?stage () in
  let inline_shard = ref None in
  let expose_shard st = inline_shard := Some st in
  let remaining = ref (match limit with Some n -> n | None -> max_int) in
  if Binary_io.is_binary_trace ic then begin
    let stream =
      match resume with
      | Some (_, (ck : Checkpoint.t)) -> Binary_io.resume_stream ~mode:ingest ic ck.cursor
      | None -> Binary_io.open_stream ~mode:ingest ic
    in
    match stream with
    | Error _ as e -> e
    | Ok st
      when Binary_io.stream_version st = 3
           && Pool.jobs pool = 1 && counters = Dense && chaos = None && stage = None ->
      run_fused ~ingest ~batch ?watch ~checkpoint ~resume ~limit ~filter ~trace_path st
    | Ok st -> (
      let feed ~push ~set_comp =
        let next_due =
          ref (match checkpoint with Some c -> c.ckpt_every | None -> max_int)
        in
        let maybe_checkpoint ~force =
          match (checkpoint, !inline_shard) with
          | Some spec, Some shard when force || shard.s_events >= !next_due ->
            write_checkpoint ~spec ~trace_path ~base:(Option.map snd resume) ~stream:st
              shard;
            next_due := shard.s_events + spec.ckpt_every
          | _ -> ()
        in
        Fun.protect
          ~finally:(fun () -> set_comp (Binary_io.completeness st))
          (fun () ->
            let rec loop () =
              if !remaining > 0 then begin
                match Binary_io.read_batch st ~max:(min batch !remaining) with
                | Error msg -> raise (Feed_error msg)
                | Ok b when Array.length b = 0 -> ()
                | Ok b ->
                  remaining := !remaining - Array.length b;
                  push (Events (Array.to_list b));
                  maybe_checkpoint ~force:false;
                  loop ()
              end
            in
            loop ();
            maybe_checkpoint ~force:(checkpoint <> None))
      in
      match
        run_pipeline ~pool ~counters ~ingest ~policy ~chaos ~expose_shard ?watch ~feed
          ~keep ()
      with
      | outcome -> outcome
      | exception Feed_error msg -> Error msg)
  end
  else begin
    let feed ~push ~set_comp:_ =
      let st = Format_io.open_stream ic in
      let rec loop () =
        if !remaining > 0 then begin
          let b = Format_io.read_raw_batch st ~max:(min batch !remaining) in
          if Array.length b > 0 then begin
            remaining := !remaining - Array.length b;
            push (Lines (Array.to_list b));
            loop ()
          end
        end
      in
      loop ()
    in
    match
      run_pipeline ~pool ~counters ~ingest ~policy ~chaos ~expose_shard ?watch ~feed
        ~keep ()
    with
    | outcome -> outcome
    | exception Feed_error msg -> Error msg
  end

(* Fold a resumed prefix into a suffix outcome.  Coverage merging is
   commutative and associative, so prefix + suffix is byte-identical to
   the uninterrupted run — at any job count or counter backend. *)
let merge_resumed ~from (ck : Checkpoint.t) (o : outcome) =
  let coverage = Coverage.create () in
  Coverage.merge_into ~dst:coverage ck.Checkpoint.coverage;
  Coverage.merge_into ~dst:coverage o.coverage;
  let events = ck.Checkpoint.events + o.events in
  let kept = ck.Checkpoint.kept + o.kept in
  let completeness =
    let prefix = { ck.Checkpoint.completeness with Anomaly.events_read = 0 } in
    let suffix = { o.completeness with Anomaly.events_read = 0 } in
    { (Anomaly.merge prefix suffix) with Anomaly.events_read = events; resumed_from = Some from }
  in
  {
    o with
    coverage;
    events;
    kept;
    dropped = events - kept;
    batches = ck.Checkpoint.batches + o.batches;
    completeness;
  }

let analyze_channel ?pool ?(batch = default_batch) ?(counters = Dense) ?(ingest = Strict)
    ?policy ?chaos ?watch ?limit ?filter ?stage ic =
  let pool = or_default pool in
  let policy = or_policy policy in
  analyze_ic ~pool ~batch ~counters ~ingest ~policy ~chaos ?watch ~checkpoint:None
    ~resume:None ~limit ?filter ?stage ~trace_path:"<channel>" ic

let analyze_file ?pool ?(batch = default_batch) ?(counters = Dense) ?(ingest = Strict)
    ?policy ?chaos ?watch ?checkpoint ?resume ?limit ?filter ?stage path =
  let pool = or_default pool in
  let policy = or_policy policy in
  match checkpoint with
  | Some spec when spec.ckpt_every <= 0 ->
    Error "checkpoint interval must be positive"
  | Some _ when Pool.jobs pool <> 1 ->
    (* only the inline path has a single deterministic cursor to freeze;
       resuming, by contrast, works at any job count *)
    Error "checkpointing requires --jobs 1 (resume works at any job count)"
  | _ -> (
    (* sweep any *.tmp dropping a killed predecessor left next to the
       checkpoint before this run starts writing its own *)
    (match checkpoint with
     | Some spec -> ignore (Checkpoint.clean_stale ~path:spec.ckpt_path)
     | None -> ());
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (match resume with
           | Some _ when not (Binary_io.is_binary_trace ic) ->
             Error "resume requires a binary trace"
           | _ ->
             match
               analyze_ic ~pool ~batch ~counters ~ingest ~policy ~chaos ?watch
                 ~checkpoint ~resume ~limit ?filter ?stage ~trace_path:path ic
             with
             | Error _ as e -> e
             | Ok o -> (
               match resume with
               | None -> Ok o
               | Some (from, ck) -> Ok (merge_resumed ~from ck o)))))

(* --- the push-based session, for live tracers --- *)

type session = {
  batch_size : int;
  mutable buf : Event.t list;  (* newest first *)
  mutable buf_n : int;
  submit : work -> unit;
  peek : unit -> (Coverage.t * int) option;  (* inline shard only *)
  view : unit -> view option;  (* cheap cell view, inline shard only *)
  complete : unit -> (outcome, string) result;
}

let session ?pool ?(batch = default_batch) ?(counters = Dense) ?(ingest = Strict) ?policy
    ?chaos ?filter ?stage () =
  if batch <= 0 then invalid_arg "Replay.session: batch must be positive";
  let pool = or_default pool in
  let policy = or_policy policy in
  let keep = compile_keep ?filter ?stage () in
  let pushed = ref 0 in
  if Pool.jobs pool = 1 then begin
    let st = make_shard ~counters ~metered:true () in
    let batchno = ref 0 in
    {
      batch_size = batch;
      buf = [];
      buf_n = 0;
      submit =
        (fun w ->
          pushed := !pushed + work_size w;
          if st.s_killed = None then begin
            let b = !batchno in
            incr batchno;
            match supervised_batch ~ingest ~policy ~chaos ~keep st ~shard:0 ~batchno:b w with
            | () -> ()
            | exception Pool.Shard_killed msg -> record_kill st msg w
          end);
      peek = peek_shard st;
      view = view_shard st;
      complete =
        (fun () ->
          finalize ~ingest ~pushed:!pushed ~producer:(Anomaly.clean ~events_read:0) [| st |]);
    }
  end
  else begin
    let jobs = Pool.jobs pool in
    let chan = Chan.create ~capacity:(capacity_for jobs) in
    let live = Atomic.make jobs in
    let running =
      Pool.launch pool (fun ~shard ->
          let st = make_shard ~counters ~metered:false () in
          Span.with_ ~name:(Printf.sprintf "par/shard-%d" shard) (fun () ->
              worker_loop ~ingest ~policy ~chaos ~keep ~chan ~live st ~shard);
          st)
    in
    {
      batch_size = batch;
      buf = [];
      buf_n = 0;
      submit =
        (fun w ->
          pushed := !pushed + work_size w;
          (* every worker dead: the events are accounted as stranded *)
          try Chan.push chan w with Chan.Closed -> ());
      peek = (fun () -> None);
      view = (fun () -> None);
      complete =
        (fun () ->
          Chan.close chan;
          finalize ~ingest ~pushed:!pushed ~producer:(Anomaly.clean ~events_read:0)
            (Pool.join running));
    }
  end

let flush s =
  if s.buf_n > 0 then begin
    s.submit (Events (List.rev s.buf));
    s.buf <- [];
    s.buf_n <- 0
  end

let sink s e =
  s.buf <- e :: s.buf;
  s.buf_n <- s.buf_n + 1;
  if s.buf_n >= s.batch_size then flush s

let progress s =
  flush s;
  s.peek ()

let progress_view s =
  flush s;
  s.view ()

let complete s =
  flush s;
  s.complete ()

let finish s =
  match complete s with
  | Ok outcome -> outcome
  | Error msg -> failwith ("Replay.finish: " ^ msg)
