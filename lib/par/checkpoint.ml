module Anomaly = Iocov_util.Anomaly
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Binary_io = Iocov_trace.Binary_io
module Metrics = Iocov_obs.Metrics

let magic = "iocov-checkpoint v1"

let m_written =
  Metrics.counter Metrics.default "iocov_ckpt_written_total"
    ~help:"Replay checkpoints written."

let m_loaded =
  Metrics.counter Metrics.default "iocov_ckpt_loaded_total"
    ~help:"Replay checkpoints loaded for resume."

type t = {
  trace : string;
  cursor : Binary_io.cursor;
  events : int;
  kept : int;
  batches : int;
  completeness : Anomaly.completeness;
  coverage : Coverage.t;
}

(* Atomic write: the checkpoint a crashed run leaves behind must always
   be a complete one, so build it under a temporary name and rename
   into place.  The temp name is deterministic ([path ^ ".tmp"]) so a
   later run can sweep droppings from a killed predecessor; within a
   run, any failure between [open_out] and the rename removes the temp
   file before the exception escapes. *)
let tmp_of path = path ^ ".tmp"

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let clean_stale ~path =
  let tmp = tmp_of path in
  if Sys.file_exists tmp then begin
    remove_quiet tmp;
    true
  end
  else false

let save ~path t =
  let tmp = tmp_of path in
  let oc =
    try open_out tmp
    with e ->
      remove_quiet tmp;
      raise e
  in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "%s\n" magic;
      p "trace %S\n" t.trace;
      p "events %d\n" t.events;
      p "kept %d\n" t.kept;
      p "batches %d\n" t.batches;
      let c = t.cursor in
      p "cursor %d %d %d %d %d %d %d\n" c.Binary_io.c_version c.c_offset c.c_seq
        c.c_last_ts c.c_chapter c.c_last_pid c.c_skip;
      p "strings %d\n" (Array.length c.c_strings);
      Array.iter (function Some s -> p "S %S\n" s | None -> p "L\n") c.c_strings;
      let m = t.completeness in
      p "completeness %d %d %d %d %d %d %d %d\n" m.Anomaly.events_read m.records_skipped
        m.corrupt_regions m.bytes_skipped m.batches_retried m.shards_failed
        m.events_abandoned
        (if m.truncated then 1 else 0);
      (match m.resumed_from with Some s -> p "resumed_from %S\n" s | None -> ());
      p "snapshot\n";
      output_string oc (Snapshot.to_string t.coverage);
      (* terminator: lets [load] tell a complete file from a torn one
         even though the embedded snapshot is line-based free text *)
      p "end iocov-checkpoint\n")
   with e ->
     remove_quiet tmp;
     raise e);
  (try Sys.rename tmp path
   with e ->
     remove_quiet tmp;
     raise e);
  Metrics.Counter.incr m_written

let ( let* ) = Result.bind

let scan line fmt k =
  try Ok (Scanf.sscanf line fmt k)
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    Error (Printf.sprintf "malformed checkpoint line %S" line)

(* The string-table cap mirrors what a reader could plausibly have
   interned; anything bigger means the file is damaged, not big. *)
let max_strings = 1 lsl 24

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let line what =
          match In_channel.input_line ic with
          | Some l -> Ok l
          | None -> Error (Printf.sprintf "checkpoint ends before %s" what)
        in
        let* header = line "header" in
        if String.trim header <> magic then
          Error (Printf.sprintf "bad checkpoint header %S (expected %S)" header magic)
        else
          let* l = line "trace" in
          let* trace = scan l "trace %S" Fun.id in
          let* l = line "events" in
          let* events = scan l "events %d" Fun.id in
          let* l = line "kept" in
          let* kept = scan l "kept %d" Fun.id in
          let* l = line "batches" in
          let* batches = scan l "batches %d" Fun.id in
          let* l = line "cursor" in
          (* the 7-int form must be tried first: a 5-int scan of a 7-int
             line would silently drop the pid base and frame skip *)
          let* c_version, c_offset, c_seq, c_last_ts, c_chapter, c_last_pid, c_skip =
            match
              scan l "cursor %d %d %d %d %d %d %d" (fun a b c d e f g ->
                  (a, b, c, d, e, f, g))
            with
            | Ok _ as full -> full
            | Error _ ->
              Result.map
                (fun (a, b, c, d, e) -> (a, b, c, d, e, 0, 0))
                (scan l "cursor %d %d %d %d %d" (fun a b c d e -> (a, b, c, d, e)))
          in
          let* l = line "strings" in
          let* n_strings = scan l "strings %d" Fun.id in
          if events < 0 || kept < 0 || batches < 0 || c_offset < 0 || c_seq < 1 || c_skip < 0
          then Error "checkpoint counters out of range"
          else if c_version < 1 || c_version > 3 then
            Error (Printf.sprintf "unsupported trace version %d in checkpoint" c_version)
          else if n_strings < 0 || n_strings > max_strings then
            Error (Printf.sprintf "implausible string table size %d" n_strings)
          else begin
            let strings = Array.make n_strings None in
            let rec read_strings i =
              if i = n_strings then Ok ()
              else
                let* l = line "string table" in
                if l = "L" then begin
                  read_strings (i + 1)
                end
                else
                  let* s = scan l "S %S" Fun.id in
                  strings.(i) <- Some s;
                  read_strings (i + 1)
            in
            let* () = read_strings 0 in
            let* l = line "completeness" in
            let* comp =
              scan l "completeness %d %d %d %d %d %d %d %d"
                (fun events_read records_skipped corrupt_regions bytes_skipped
                     batches_retried shards_failed events_abandoned truncated ->
                  {
                    (Anomaly.clean ~events_read) with
                    Anomaly.records_skipped;
                    corrupt_regions;
                    bytes_skipped;
                    batches_retried;
                    shards_failed;
                    events_abandoned;
                    truncated = truncated <> 0;
                  })
            in
            let* l = line "snapshot marker" in
            let* comp, l =
              if String.length l >= 12 && String.sub l 0 12 = "resumed_from" then
                let* from = scan l "resumed_from %S" Fun.id in
                let* l = line "snapshot marker" in
                Ok ({ comp with Anomaly.resumed_from = Some from }, l)
              else Ok (comp, l)
            in
            if String.trim l <> "snapshot" then
              Error (Printf.sprintf "expected snapshot marker, got %S" l)
            else
              let rest = In_channel.input_all ic in
              let terminator = "end iocov-checkpoint\n" in
              let rl = String.length rest and tl = String.length terminator in
              let* body =
                if rl >= tl && String.sub rest (rl - tl) tl = terminator then
                  Ok (String.sub rest 0 (rl - tl))
                else Error "checkpoint is torn (missing end marker)"
              in
              let* coverage =
                Result.map_error (fun e -> "embedded snapshot: " ^ e)
                  (Snapshot.of_string body)
              in
              Metrics.Counter.incr m_loaded;
              Ok
                {
                  trace;
                  cursor =
                    {
                      Binary_io.c_version;
                      c_offset;
                      c_seq;
                      c_last_ts;
                      c_last_pid;
                      c_chapter;
                      c_skip;
                      c_strings = strings;
                    };
                  events;
                  kept;
                  batches;
                  completeness = comp;
                  coverage;
                }
          end)
