(** Input- and output-space partitioning (Section 3).

    Bitmap arguments are partitioned by individual flag (each set flag
    counts its partition); numeric arguments by powers of two with
    dedicated boundary partitions for zero and (where admissible)
    negative values; categorical arguments by value.  Outputs are
    partitioned into success vs. each error code, with byte-count
    successes further split by powers of two. *)

open Iocov_syscall

(** An input partition identifier. *)
type t =
  | P_flag of Open_flags.flag
  | P_mode_bit of Mode.bit
  | P_mode_zero      (** mode 0000 — the boundary "no permission bits" *)
  | P_bucket of Iocov_util.Log2.bucket
  | P_whence of Whence.t
  | P_xflag of Xattr_flag.t

val compare : t -> t -> int
val equal : t -> t -> bool

val label : t -> string
(** Axis label: flag/bit names, ["=0"], ["2^10"], ...  Never contains
    whitespace, so it doubles as the snapshot-format token. *)

val of_label : string -> t option
(** Inverse of {!label}.  Accepts buckets beyond any argument's domain
    (an observed partition need not be a domain member). *)

val of_call : Model.call -> (Arg_class.arg * t) list
(** Every (argument, partition) pair one call exercises.  A bitmap
    argument contributes one pair per set flag; other argument classes
    contribute exactly one pair.  Variant merging happens here: a
    [pread64] feeds the same [Read_count]/[Read_offset] partitions as a
    [read]. *)

val domain : Arg_class.arg -> t list
(** The full partition domain of an argument — the denominator for
    untested-partition reports.  Numeric domains span the zero partition
    plus log2 buckets up to the argument's natural width (32 for byte
    counts and offsets — Figure 3's axis — and 16 for xattr value
    sizes), plus the negative partition where the type is signed. *)

(** {2 Outputs} *)

type output =
  | O_ok                 (** success of a non-byte-count syscall *)
  | O_ok_zero            (** byte-count success returning 0 *)
  | O_ok_bucket of int   (** byte-count success in [\[2{^k}, 2{^k+1})] *)
  | O_err of Errno.t

val compare_output : output -> output -> int
val equal_output : output -> output -> bool

val output_label : output -> string
(** ["OK"], ["OK=0"], ["OK 2^5"], or the errno name. *)

val output_token : output -> string
(** Whitespace-free form of {!output_label} (["OK:2^5"]) for the
    snapshot format. *)

val output_of_token : string -> output option
(** Inverse of {!output_token}. *)

val output_of : Model.base -> Model.outcome -> output
(** Partition one outcome.  Negative successes cannot occur; byte-count
    syscalls bucket their return, everything else collapses to
    [O_ok]. *)

val output_domain : Model.base -> output list
(** Success partitions plus each manual-page error code.  For byte-count
    syscalls the success side enumerates [O_ok_zero] and buckets
    [0..32]; the coarse Figure-4 view groups them via
    {!output_success_group}. *)

val output_is_error : output -> bool

val output_success_group : output -> [ `Ok | `Err of Errno.t ]
(** Collapse byte-count success buckets into one ["OK (>= 0)"] column —
    exactly Figure 4's x-axis. *)

(** {2 Post-crash outcomes}

    The crash engine (DESIGN.md §17) adds an output dimension beyond
    the paper's: after a simulated power cut and recovery, every file a
    workload touched lands in exactly one outcome partition, per
    journal mode.  Each (mode, outcome) pair is one plan cell. *)

(** Mirrors {!Iocov_vfs.Config.journal_mode}; duplicated here so the
    core layer stays independent of the VFS. *)
type crash_mode = CM_writeback | CM_ordered | CM_journaled

val all_crash_modes : crash_mode list

val crash_mode_label : crash_mode -> string
(** ["writeback"], ["ordered"], ["journaled"] — whitespace-free, doubles
    as the snapshot token. *)

val crash_mode_of_label : string -> crash_mode option
val crash_mode_index : crash_mode -> int
val compare_crash_mode : crash_mode -> crash_mode -> int

type crash_outcome =
  | C_recovered  (** identical to the last version the workload wrote *)
  | C_torn       (** a state no single workload step ever exposed *)
  | C_lost       (** existed before the crash, gone after recovery *)
  | C_stale      (** matches an earlier (superseded) workload version *)
  | C_errno      (** reopen after recovery fails with an unexpected errno *)

val all_crash_outcomes : crash_outcome list

val crash_outcome_label : crash_outcome -> string
(** ["recovered"], ["torn"], ["lost"], ["stale"], ["errno-on-reopen"]. *)

val crash_outcome_of_label : string -> crash_outcome option
val crash_outcome_index : crash_outcome -> int
val compare_crash_outcome : crash_outcome -> crash_outcome -> int
