(** The argument taxonomy and the 14 tracked arguments.

    The paper divides syscall arguments into four classes — identifier,
    bitmap, numeric, categorical — and measures input coverage for 14
    distinct arguments across the 27 syscalls (Section 4).  Identifier
    arguments (pathnames, file descriptors) are classified but not yet
    partitioned, exactly as in the paper ("we plan to ... support file
    descriptors and pointer arguments" — future work). *)

type cls =
  | Identifier   (** file descriptors, pathnames *)
  | Bitmap       (** flag sets: open flags, permission modes *)
  | Numeric      (** byte counts, offsets, lengths *)
  | Categorical  (** fixed value sets: whence, xattr flags *)

val cls_name : cls -> string

(** The 14 tracked arguments. *)
type arg =
  | Open_flags_arg   (** [open.flags] — bitmap *)
  | Open_mode        (** [open.mode] (with O_CREAT/O_TMPFILE) — bitmap *)
  | Read_count       (** [read.count] — numeric *)
  | Read_offset      (** [pread64.offset] — numeric *)
  | Write_count      (** [write.count] — numeric *)
  | Write_offset     (** [pwrite64.offset] — numeric *)
  | Lseek_offset     (** [lseek.offset] — numeric (may be negative) *)
  | Lseek_whence     (** [lseek.whence] — categorical *)
  | Truncate_length  (** [truncate.length] — numeric *)
  | Mkdir_mode       (** [mkdir.mode] — bitmap *)
  | Chmod_mode       (** [chmod.mode] — bitmap *)
  | Setxattr_size    (** [setxattr.size] — numeric *)
  | Setxattr_flags   (** [setxattr.flags] — categorical *)
  | Getxattr_size    (** [getxattr.size] — numeric *)

val all : arg list
(** The 14 arguments, in the order above. *)

val index : arg -> int
(** Dense index in [{!all}]'s order, in [[0, count)] — an array offset
    for the compiled partition plan ({!Plan}). *)

val count : int

val name : arg -> string
(** Dotted name, e.g. ["open.flags"]. *)

val of_name : string -> arg option

val cls_of : arg -> cls

val base_of : arg -> Iocov_syscall.Model.base
(** The base syscall the argument belongs to (variants merge here). *)

val args_of_base : Iocov_syscall.Model.base -> arg list
(** Tracked arguments of one base syscall (empty for [close]/[chdir],
    whose only arguments are identifiers). *)
