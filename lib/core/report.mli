(** Figure- and table-shaped renderings of coverage results.

    Each function reproduces the structure of one artifact from the
    paper's evaluation (Section 4) as plain text; [bench/main.exe] prints
    these for the experiment suite, and the examples use them for smaller
    runs. *)

open Iocov_syscall

val figure2 :
  name_a:string -> cov_a:Coverage.t -> name_b:string -> cov_b:Coverage.t -> string
(** Input coverage of open flags: one row per flag in the 21-flag domain,
    two log-scale bars per row. *)

val table1 :
  name_a:string -> cov_a:Coverage.t -> name_b:string -> cov_b:Coverage.t -> string
(** Percentage of opens combining 1..6 flags; all-flags and
    O_RDONLY-restricted rows for both suites. *)

val figure3 :
  name_a:string -> cov_a:Coverage.t -> name_b:string -> cov_b:Coverage.t -> string
(** Input coverage of write size: the "=0" partition plus log2 buckets
    0..32, annotated with byte-size labels and each suite's maximum. *)

val figure4 :
  name_a:string -> cov_a:Coverage.t -> name_b:string -> cov_b:Coverage.t -> string
(** Output coverage of open: the OK column plus the 27 manual-page error
    codes. *)

val figure5 :
  name_a:string -> cov_a:Coverage.t -> name_b:string -> cov_b:Coverage.t ->
  targets:float list -> string
(** TCD for open flags under a sweep of uniform targets, with the
    crossover target annotated when one exists. *)

val numeric_figure :
  arg:Arg_class.arg -> name_a:string -> cov_a:Coverage.t -> name_b:string ->
  cov_b:Coverage.t -> string
(** Generalization of Figure 3 to any tracked numeric argument. *)

val output_figure :
  base:Model.base -> name_a:string -> cov_a:Coverage.t -> name_b:string ->
  cov_b:Coverage.t -> string
(** Generalization of Figure 4 to any base syscall. *)

val untested_summary : name:string -> Coverage.t -> string
(** Per-argument and per-syscall untested partitions — the "many
    untested cases" finding. *)

val suite_summary : name:string -> Coverage.t -> string
(** Calls observed, per-base and per-variant counts, coverage ratios. *)

val adequacy_table :
  name:string -> Coverage.t -> arg:Arg_class.arg -> target:float -> theta:float -> string
(** Under-/over-testing verdict per partition for one argument. *)

val completeness : name:string -> Iocov_util.Anomaly.completeness -> string
(** The completeness section of a report: events read vs skipped,
    resync regions, retries, shard failures, truncation, and the first
    recorded anomalies.  One line when the run was clean. *)

(** {2 Config-lattice comparison (DESIGN.md §18)}

    Differential views over per-config accumulators.  Every function
    takes [(config name, coverage)] rows; where a baseline matters it is
    the {e first} row (conventionally the lattice's [default] point). *)

val cell_label : Plan.cell -> string
(** Human-readable name of a plan cell, e.g. ["output write->EDQUOT"]. *)

val config_matrix :
  target:float -> theta:float -> (string * Coverage.t) list -> string
(** One row per config: calls, lit cells by kind, lit errno cells, TCD
    and under/over adequacy counts for open flags at the given target. *)

val config_diff : (string * Coverage.t) list -> string
(** Cells lit under each config but dark under the baseline (and vice
    versa), then the errno output cells reachable {e only} off-baseline
    — the config-dependent error surface single-config runs miss. *)

val off_baseline_errno_cells : (string * Coverage.t) list -> int list
(** Dense IDs of errno output cells dark in the first row but lit in at
    least one other — the machine-readable core of {!config_diff}, used
    by the bench gate. *)
