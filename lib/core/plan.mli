(** The compiled partition plan: the finite partition universe interned
    to dense integer cell IDs.

    The syscall model fixes the universe of coverage cells — 27 variant
    cells, one input cell per (argument, partition) pair, one output
    cell per (base, output-partition) pair.  This module enumerates
    them once at load time and compiles the decode→partition mapping of
    {!Partition.of_call} / {!Partition.output_of} down to integer
    arithmetic: flag bitmaps map bit-by-bit to slot IDs, numeric
    arguments map via log2 bucketing to an ID offset, categorical
    arguments via their variant codes.  {!Coverage.Dense} counts into a
    flat [int array] indexed by these IDs; {!cells} is the inverse
    mapping used to rebuild a reference {!Coverage.t} losslessly.

    Numeric strips cover the full 63-bit int range (negative, zero,
    2^0..2^62), not just the report domain, so every observable
    partition has a cell. *)

type cell =
  | Cell_variant of Iocov_syscall.Model.variant
  | Cell_input of Arg_class.arg * Partition.t
  | Cell_output of Iocov_syscall.Model.base * Partition.output
  | Cell_crash of Partition.crash_mode * Partition.crash_outcome

val total : int
(** Number of cells; valid IDs are [[0, total)]. *)

val cells : cell array
(** [cells.(id)] describes cell [id].  Every ID maps to exactly one
    cell and vice versa — the array is a bijection over the universe. *)

val variant_cell : Iocov_syscall.Model.variant -> int
(** Cell ID of a syscall variant. *)

val iter_input_slots : Iocov_syscall.Model.call -> (int -> unit) -> unit
(** Apply the callback to the cell ID of every input partition the call
    populates — exactly the pairs {!Partition.of_call} returns, without
    building the list.  Allocation-free for every call shape. *)

val output_cell :
  Iocov_syscall.Model.base -> Iocov_syscall.Model.outcome -> int
(** Cell ID of the outcome's output partition, as classified by
    {!Partition.output_of}. *)

val crash_cell : Partition.crash_mode -> Partition.crash_outcome -> int
(** Cell ID of a post-crash outcome (DESIGN.md §17): one cell per
    (journal mode, per-file outcome) pair, in a dense block after the
    syscall output cells. *)

(** {2 Raw-field observation}

    The same slot mappings keyed on wire-level field values — flag
    bitmasks, categorical codes, errno indices — instead of a built
    {!Iocov_syscall.Model.call}.  A fused trace decoder bumps these
    straight out of the byte stream without materializing the call;
    {!iter_input_slots} and {!output_cell} are defined on top of them,
    so the two observation paths cannot drift. *)

val iter_open_slots : flags:int -> mode:int -> (int -> unit) -> unit
(** Open-call input slots for a raw flag/mode pair (mode slots only
    when the flags can create, matching [Open_flags.has]). *)

val read_count_slot : int -> int
val read_offset_slot : int -> int
val write_count_slot : int -> int
val write_offset_slot : int -> int
val lseek_offset_slot : int -> int

val lseek_whence_slot : int -> int
(** Takes a whence {e code} ([Whence.to_code], also the wire byte). *)

val truncate_length_slot : int -> int
val iter_mkdir_mode_slots : int -> (int -> unit) -> unit
val iter_chmod_mode_slots : int -> (int -> unit) -> unit
val setxattr_size_slot : int -> int

val setxattr_flag_slot : int -> int
(** Takes an xattr-flag {e code} ([Xattr_flag.to_code], also the wire
    byte). *)

val getxattr_size_slot : int -> int

val ret_output_cell : Iocov_syscall.Model.base -> int -> int
(** Output cell of a successful return value [Ret n]. *)

val err_output_cell : Iocov_syscall.Model.base -> int -> int
(** Output cell of an errno by {e index} ({!Iocov_syscall.Errno.index},
    also the errno's wire index in the binary trace format). *)

(**/**)

(* Exposed for white-box tests of the layout. *)

val inputs_off : int
val outputs_off : int
val per_base_outputs : int
val crash_off : int
val crash_mode_count : int
val crash_outcome_count : int
val arg_offset : Arg_class.arg -> int
val base_offset : Iocov_syscall.Model.base -> int
val bucket_slot : int -> int

(** {2 Matrix view}

    The plan composed with a config lattice: matrix IDs are dense over
    [(config_id × cell_id)] pairs by pure arithmetic —
    [id = config_id * total + cell] — with {e no} per-config tables.
    The plan itself is config-invariant (the partition universe does not
    depend on geometry); only the counts differ per config, which is
    {!Coverage.Matrix}'s job.  This module deliberately knows nothing
    about the lattice itself (the config type lives above this library):
    any dense [config_id] range composes. *)

module Matrix : sig
  val width : int
  (** Cells per config — equal to {!total}. *)

  val total : configs:int -> int
  (** Matrix IDs are valid in [[0, total ~configs)]. *)

  val id : config_id:int -> int -> int
  (** [id ~config_id cell] is the dense matrix ID of plan cell [cell]
      under config [config_id]. *)

  val config_of : int -> int
  val cell_of : int -> int
  (** Inverses: [config_of (id ~config_id cell) = config_id] and
      [cell_of (id ~config_id cell) = cell]. *)
end
