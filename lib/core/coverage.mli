(** The coverage accumulator — IOCov's input/output partitioner.

    Feed it (call, outcome) pairs (from a live tracer sink or a parsed
    trace file); it maintains per-argument input histograms and
    per-syscall output histograms with variant merging applied, and
    answers the untested-partition and frequency queries behind every
    figure in the paper. *)

open Iocov_syscall

type t

val create : ?metered:bool -> unit -> t
(** [metered] (default [true]) controls whether observations feed the
    global [iocov_coverage_*] counters.  The parallel pipeline creates
    its per-worker shards with [~metered:false] — shards are private to
    one domain, and their counts are credited in one batch via
    {!meter_counts} after the merge, so totals match a sequential run
    without per-event atomic traffic. *)

val observe : t -> Model.call -> Model.outcome -> unit
(** Count one traced syscall. *)

val observe_input_only : t -> Model.call -> unit
(** Count a call whose outcome is unknown — e.g. parsed from a fuzzer's
    declarative program log, which records invocations but not returns.
    Feeds the input side, variant accounting, and flag sets; output
    histograms are untouched. *)

val merge_into : dst:t -> t -> unit
(** Pointwise sum — coverage from parallel runs composes.  Commutative
    and associative (property-tested), which is what makes sharded
    accumulation order-independent: merging per-worker shards in any
    order yields the same accumulator. *)

val copy : t -> t

val meter_counts : t -> unit
(** Credit this accumulator's counts to the global [iocov_coverage_*]
    counters in one batch — exactly the increments per-event metering
    would have made.  Called by the parallel pipeline after merging
    unmetered shards. *)

val publish_gauges : t -> unit
(** Publish this accumulator's table sizes (input/output tables,
    distinct partitions, variants, flag sets) as
    [iocov_coverage_*] gauges in {!Iocov_obs.Metrics.default}.
    On-demand rather than streamed: several accumulators can coexist
    (per-test attribution, ablations), and the gauges should describe
    the run's accumulator, not a mixture.  [observe] itself feeds the
    [iocov_coverage_calls_total] and [iocov_coverage_updates_total]
    counters. *)

(** {2 Input side} *)

val input_count : t -> Arg_class.arg -> Partition.t -> int
val input_histogram : t -> Arg_class.arg -> (Partition.t * int) list
(** Observed partitions with frequencies, ascending. *)

val input_series : t -> Arg_class.arg -> (Partition.t * int) list
(** The whole domain in order, zeros included — figure-ready. *)

val untested_inputs : t -> Arg_class.arg -> Partition.t list
val input_coverage_ratio : t -> Arg_class.arg -> float
(** Fraction of the domain exercised at least once, in [0, 1]. *)

val input_coverage_ratio_of_base : t -> Model.base -> float
(** Mean input-coverage ratio over the base syscall's tracked arguments
    (1.0 for syscalls with none — nothing is missing). *)

(** {2 Output side} *)

val output_count : t -> Model.base -> Partition.output -> int
val output_histogram : t -> Model.base -> (Partition.output * int) list
val output_series : t -> Model.base -> (Partition.output * int) list
(** Full output domain, zeros included.  Outcomes outside the
    manual-page domain (the paper notes the manual "may not be consistent
    with the actual implementation") still appear, after the domain. *)

val output_series_grouped : t -> Model.base -> ([ `Ok | `Err of Errno.t ] * int) list
(** Figure 4 shape: one ["OK (>= 0)"] column plus one per errno. *)

val untested_outputs : t -> Model.base -> Partition.output list
val output_coverage_ratio : t -> Model.base -> float

(** {2 Call accounting} *)

val calls_observed : t -> int
val base_calls : t -> Model.base -> int
val variant_calls : t -> Model.variant -> int

val open_flag_sets : t -> (Open_flags.t * int) list
(** Exact flag {e sets} of every open observed (mask, frequency) — the
    input to Table 1's combination analysis and to the bit-combination
    extension. *)

val variant_histogram : t -> (Model.variant * int) list
(** Per-variant call counts, ascending. *)

(** {2 Raw counter injection}

    Low-level constructors used by {!Snapshot} to rebuild a coverage from
    stored counters (and by tests to build fixtures).  [count] must be
    non-negative; these do not touch {!calls_observed}, which
    {!add_calls} adjusts separately. *)

val add_input : t -> Arg_class.arg -> Partition.t -> int -> unit
val add_output : t -> Model.base -> Partition.output -> int -> unit
val add_variant : t -> Model.variant -> int -> unit
val add_flag_set : t -> Open_flags.t -> int -> unit
val add_calls : t -> int -> unit

(** {2 Post-crash outcomes}

    The crash engine's output dimension (DESIGN.md §17): per (journal
    mode, outcome) tallies of how files fared across a simulated power
    cut.  Fed by {!add_crash} — crash observations come from the crash
    engine's classifier, not from the syscall observe path. *)

val add_crash : t -> Partition.crash_mode -> Partition.crash_outcome -> int -> unit
val crash_count : t -> Partition.crash_mode -> Partition.crash_outcome -> int

val crash_observed : t -> int
(** Total (state, file) classifications recorded, all modes. *)

val crash_series :
  t -> ((Partition.crash_mode * Partition.crash_outcome) * int) list
(** The full 15-cell domain in (mode, outcome) order, zeros included. *)

(** {2 Dense counters}

    The replay hot-path accumulator: a flat [int array] indexed by
    {!Plan} cell IDs instead of hashed histograms.  [observe] is
    allocation-free integer arithmetic (exact open-flag {e sets} keep a
    small int-keyed table — their key space is unbounded); shard merge
    is pointwise array addition.  {!Dense.to_reference} converts
    losslessly to the reference {!t}, so reports, snapshots, TCD and
    adequacy analyses are unchanged downstream.  The reference
    accumulator remains the differential oracle: both paths must
    produce byte-identical snapshots (property-tested). *)

type reference := t

module Dense : sig
  type t

  val create : unit -> t
  (** Dense accumulators are unmetered; credit the global counters
      after conversion with {!meter_counts} on the result, which yields
      totals identical to per-event metering. *)

  val observe : t -> Model.call -> Model.outcome -> unit
  val observe_input_only : t -> Model.call -> unit

  val merge_into : dst:t -> t -> unit
  (** Pointwise array sum — commutative and associative, like
      {!merge_into} on the reference type. *)

  val reset : t -> unit
  (** Zero every counter, clear the flag-set table, and reset the call
      count, keeping the allocation.  Lets a streaming session reuse one
      private shard per batch: drain into it, {!merge_into} a shared
      accumulator, reset, repeat — no per-batch allocation. *)

  val snapshot : t -> t
  (** A frozen deep copy (counter array, flag sets, call count).  The
      serve layer's epoch publisher: O(cells) to take under a lock, then
      immutable by convention — readers render from it without further
      synchronization while ingestion keeps mutating the original. *)

  val calls_observed : t -> int

  val cell_count : t -> int -> int
  (** Count of one plan cell by dense id — an array read, cheap enough
      for a live progress peek on the hot path. *)

  (** {3 Direct cell access}

      The pieces {!observe} is made of, for a fused trace decoder that
      computes cell IDs straight from wire fields ({!Plan}'s raw-field
      slots) without building a [Model.call].  A complete observation
      is one {!count_call}, the variant cell plus every input slot and
      the output cell through {!bumper}'s closure, and — for opens —
      one {!observe_open_mask}. *)

  val bumper : t -> int -> unit
  (** The accumulator's pre-bound cell incrementer (partial application
      [bumper t] allocates nothing per call). *)

  val counts : t -> int array
  (** The live counter array itself, indexed by plan cell ID — the
      no-indirection variant of {!bumper} for a fused decoder's scalar
      bumps.  Callers must only increment entries at valid cell IDs. *)

  val count_call : t -> unit
  (** Count one observed call ({!calls_observed}). *)

  val observe_open_mask : t -> int -> unit
  (** Record an exact open flag mask (the unbounded-key-space side
      channel next to the dense array). *)

  val to_reference : ?metered:bool -> t -> reference
  (** Rebuild a reference accumulator with exactly the same counts.
      [metered] (default [false]) sets the metering flag of the {e
      result} for any further observations fed to it directly. *)
end

(** {2 Cell summaries}

    Dense-plan views of an accumulator, used by the flight recorder's
    run ledger and the live progress sink (DESIGN.md §14). *)

val cell_count : t -> Plan.cell -> int
(** Observation count of one plan cell. *)

val lit_cells : t -> int * int * int
(** [(variants, inputs, outputs)]: how many cells of each kind have a
    non-zero count, out of {!Plan.total} cells overall. *)

val cell_bitmap : t -> bytes
(** One bit per plan cell (cell [id] at byte [id / 8], bit [id mod 8]),
    set iff the cell has been observed.  [(Plan.total + 7) / 8] bytes —
    the ledger's coverage fingerprint, diffable with XOR. *)

(** {2 Config-sharded matrix accumulator}

    {!Dense} lifted from [cell] to [(config × cell)]: one dense shard
    per lattice point, allocated on first observation, so a 20-point
    lattice costs one shard's memory on a one-config run.  Each shard
    {e is} a {!Dense.t} — a single-config run through a matrix shard is
    byte-identical to a plain dense run by construction, and all the
    downstream machinery (snapshots, reports, TCD, adequacy) applies
    per shard via {!Matrix.to_reference}. *)

module Matrix : sig
  type t

  val create : configs:int -> t
  (** [configs] is the lattice size; config IDs are valid in
      [[0, configs)]. *)

  val configs : t -> int

  val shard : t -> int -> Dense.t
  (** The per-config accumulator, allocating it on first use. *)

  val peek : t -> int -> Dense.t option
  (** The shard if it exists — never allocates. *)

  val observe : t -> config_id:int -> Iocov_syscall.Model.call -> Iocov_syscall.Model.outcome -> unit
  val observe_input_only : t -> config_id:int -> Iocov_syscall.Model.call -> unit

  type stats = {
    m_configs : int;   (** lattice size *)
    m_allocated : int; (** shards actually allocated *)
    m_words : int;     (** counter words held ([m_allocated × Plan.total]) *)
  }

  val stats : t -> stats
  (** The lazy-allocation ledger: untouched configs must show up here as
      unallocated (property-tested). *)

  val calls_observed : t -> int

  val cell_count : t -> config_id:int -> int -> int
  (** Count of one plan cell under one config; 0 for unallocated shards. *)

  val matrix_count : t -> int -> int
  (** Count by dense matrix ID ({!Plan.Matrix.id}). *)

  val merge_into : dst:t -> t -> unit
  (** Shard-wise pointwise sum.  Both sides must be built over the same
      lattice size; allocates in [dst] only the shards [src] has. *)

  val snapshot : t -> t
  (** Frozen deep copy of every allocated shard. *)

  val reset : t -> unit
  (** Drop every shard (back to nothing allocated). *)

  val to_reference : ?metered:bool -> t -> (int * reference) list
  (** Allocated shards as reference accumulators, ascending config ID. *)
end
