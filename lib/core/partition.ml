open Iocov_syscall
module Log2 = Iocov_util.Log2

type t =
  | P_flag of Open_flags.flag
  | P_mode_bit of Mode.bit
  | P_mode_zero
  | P_bucket of Log2.bucket
  | P_whence of Whence.t
  | P_xflag of Xattr_flag.t

let rank = function
  | P_flag _ -> 0
  | P_mode_bit _ -> 1
  | P_mode_zero -> 2
  | P_bucket _ -> 3
  | P_whence _ -> 4
  | P_xflag _ -> 5

let compare a b =
  match (a, b) with
  | P_flag x, P_flag y -> Stdlib.compare x y
  | P_mode_bit x, P_mode_bit y -> Stdlib.compare x y
  | P_mode_zero, P_mode_zero -> 0
  | P_bucket x, P_bucket y -> Log2.compare_bucket x y
  | P_whence x, P_whence y -> Whence.compare x y
  | P_xflag x, P_xflag y -> Xattr_flag.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let label = function
  | P_flag f -> Open_flags.flag_name f
  | P_mode_bit b -> Mode.bit_name b
  | P_mode_zero -> "MODE_0000"
  | P_bucket b -> Log2.bucket_label b
  | P_whence w -> Whence.to_string w
  | P_xflag f -> Xattr_flag.to_string f

(* Parse the decimal suffix [s.[from..]] in place — the snapshot-parse
   path calls this per stored bucket label, and [String.sub] would
   allocate a copy each time.  Plain digits only (no sign, base prefix,
   or [_] separators), overflow-guarded; returns [-1] when malformed —
   valid exponents are non-negative, so [-1] is free as a sentinel. *)
let decimal_suffix s from =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let c = s.[i] in
      if c < '0' || c > '9' then -1
      else
        let d = Char.code c - Char.code '0' in
        if acc > (max_int - d) / 10 then -1 else go (i + 1) ((acc * 10) + d)
  in
  if from >= n then -1 else go from 0

let of_label s =
  if s = "MODE_0000" then Some P_mode_zero
  else if s = "=0" then Some (P_bucket Log2.Zero)
  else if s = "<0" then Some (P_bucket Log2.Negative)
  else if String.length s > 2 && s.[0] = '2' && s.[1] = '^' then
    match decimal_suffix s 2 with
    | k when k >= 0 -> Some (P_bucket (Log2.Pow2 k))
    | _ -> None
  else
    match Open_flags.flag_of_name s with
    | Some f -> Some (P_flag f)
    | None ->
      (match Mode.bit_of_name s with
       | Some b -> Some (P_mode_bit b)
       | None ->
         (match Whence.of_string s with
          | Some w -> Some (P_whence w)
          | None ->
            (match Xattr_flag.of_string s with
             | Some f -> Some (P_xflag f)
             | None -> None)))

let mode_partitions mode =
  match Mode.decompose mode with
  | [] -> [ P_mode_zero ]
  | bits -> List.map (fun b -> P_mode_bit b) bits

let bucket n = P_bucket (Log2.bucket_of_int n)

let of_call call =
  let open Arg_class in
  match (call : Model.call) with
  | Model.Open_call { flags; mode; _ } ->
    let flag_parts =
      List.map (fun f -> (Open_flags_arg, P_flag f)) (Open_flags.decompose flags)
    in
    let mode_parts =
      (* mode is only an input when the call can create *)
      if Open_flags.has flags Open_flags.O_CREAT || Open_flags.has flags Open_flags.O_TMPFILE
      then List.map (fun p -> (Open_mode, p)) (mode_partitions mode)
      else []
    in
    flag_parts @ mode_parts
  | Model.Read_call { count; offset; _ } ->
    ((Read_count, bucket count)
     :: (match offset with Some off -> [ (Read_offset, bucket off) ] | None -> []))
  | Model.Write_call { count; offset; _ } ->
    ((Write_count, bucket count)
     :: (match offset with Some off -> [ (Write_offset, bucket off) ] | None -> []))
  | Model.Lseek_call { offset; whence; _ } ->
    [ (Lseek_offset, bucket offset); (Lseek_whence, P_whence whence) ]
  | Model.Truncate_call { length; _ } -> [ (Truncate_length, bucket length) ]
  | Model.Mkdir_call { mode; _ } ->
    List.map (fun p -> (Mkdir_mode, p)) (mode_partitions mode)
  | Model.Chmod_call { mode; _ } ->
    List.map (fun p -> (Chmod_mode, p)) (mode_partitions mode)
  | Model.Close_call _ | Model.Chdir_call _ -> []
  | Model.Setxattr_call { size; flags; _ } ->
    [ (Setxattr_size, bucket size); (Setxattr_flags, P_xflag flags) ]
  | Model.Getxattr_call { size; _ } -> [ (Getxattr_size, bucket size) ]

let numeric_domain ~signed ~hi =
  let buckets = List.map (fun b -> P_bucket b) (Log2.range ~lo:0 ~hi) in
  let zero = P_bucket Log2.Zero in
  if signed then (P_bucket Log2.Negative :: zero :: buckets) else zero :: buckets

let domain arg =
  let open Arg_class in
  match arg with
  | Open_flags_arg -> List.map (fun f -> P_flag f) Open_flags.all
  | Open_mode | Mkdir_mode | Chmod_mode ->
    P_mode_zero :: List.map (fun b -> P_mode_bit b) Mode.all_bits
  | Read_count | Write_count -> numeric_domain ~signed:false ~hi:32
  | Read_offset | Write_offset -> numeric_domain ~signed:true ~hi:32
  | Lseek_offset -> numeric_domain ~signed:true ~hi:32
  | Truncate_length -> numeric_domain ~signed:true ~hi:32
  | Setxattr_size | Getxattr_size -> numeric_domain ~signed:false ~hi:16
  | Lseek_whence -> List.map (fun w -> P_whence w) Whence.all
  | Setxattr_flags -> List.map (fun f -> P_xflag f) Xattr_flag.all

(* --- outputs --- *)

type output =
  | O_ok
  | O_ok_zero
  | O_ok_bucket of int
  | O_err of Errno.t

let output_rank = function
  | O_ok -> (-3, 0)
  | O_ok_zero -> (-2, 0)
  | O_ok_bucket k -> (-1, k)
  | O_err e -> (0, Errno.to_code e)

let compare_output a b = Stdlib.compare (output_rank a) (output_rank b)
let equal_output a b = compare_output a b = 0

let output_label = function
  | O_ok -> "OK"
  | O_ok_zero -> "OK=0"
  | O_ok_bucket k -> Printf.sprintf "OK 2^%d" k
  | O_err e -> Errno.to_string e

let output_token = function
  | O_ok -> "OK"
  | O_ok_zero -> "OK=0"
  | O_ok_bucket k -> Printf.sprintf "OK:2^%d" k
  | O_err e -> Errno.to_string e

let output_of_token s =
  if s = "OK" then Some O_ok
  else if s = "OK=0" then Some O_ok_zero
  else if
    String.length s > 5
    && s.[0] = 'O' && s.[1] = 'K' && s.[2] = ':' && s.[3] = '2' && s.[4] = '^'
  then
    match decimal_suffix s 5 with
    | k when k >= 0 -> Some (O_ok_bucket k)
    | _ -> None
  else
    match Errno.of_string s with
    | Some e -> Some (O_err e)
    | None -> None

let output_of base outcome =
  match (outcome : Model.outcome) with
  | Model.Err e -> O_err e
  | Model.Ret n ->
    if not (Model.returns_byte_count base) then O_ok
    else if n = 0 then O_ok_zero
    else O_ok_bucket (Iocov_util.Log2.floor_log2 (max 1 n))

let output_domain base =
  let successes =
    if Model.returns_byte_count base then
      O_ok_zero :: List.init 33 (fun k -> O_ok_bucket k)
    else [ O_ok ]
  in
  successes @ List.map (fun e -> O_err e) (Model.errno_domain base)

let output_is_error = function O_err _ -> true | O_ok | O_ok_zero | O_ok_bucket _ -> false

let output_success_group = function
  | O_ok | O_ok_zero | O_ok_bucket _ -> `Ok
  | O_err e -> `Err e

(* --- post-crash outcomes (DESIGN.md §17) ---

   A genuinely new output dimension beyond the paper: each (journal
   mode, per-file outcome) pair is one partition cell, and the crash
   engine's enumerated states light them up the way syscall outcomes
   light up the error cells. *)

type crash_mode = CM_writeback | CM_ordered | CM_journaled

let all_crash_modes = [ CM_writeback; CM_ordered; CM_journaled ]

let crash_mode_label = function
  | CM_writeback -> "writeback"
  | CM_ordered -> "ordered"
  | CM_journaled -> "journaled"

let crash_mode_of_label = function
  | "writeback" -> Some CM_writeback
  | "ordered" -> Some CM_ordered
  | "journaled" -> Some CM_journaled
  | _ -> None

let crash_mode_index = function
  | CM_writeback -> 0
  | CM_ordered -> 1
  | CM_journaled -> 2

let compare_crash_mode a b = Stdlib.compare (crash_mode_index a) (crash_mode_index b)

type crash_outcome = C_recovered | C_torn | C_lost | C_stale | C_errno

let all_crash_outcomes = [ C_recovered; C_torn; C_lost; C_stale; C_errno ]

let crash_outcome_label = function
  | C_recovered -> "recovered"
  | C_torn -> "torn"
  | C_lost -> "lost"
  | C_stale -> "stale"
  | C_errno -> "errno-on-reopen"

let crash_outcome_of_label = function
  | "recovered" -> Some C_recovered
  | "torn" -> Some C_torn
  | "lost" -> Some C_lost
  | "stale" -> Some C_stale
  | "errno-on-reopen" -> Some C_errno
  | _ -> None

let crash_outcome_index = function
  | C_recovered -> 0
  | C_torn -> 1
  | C_lost -> 2
  | C_stale -> 3
  | C_errno -> 4

let compare_crash_outcome a b =
  Stdlib.compare (crash_outcome_index a) (crash_outcome_index b)
