(* The compiled partition plan.

   IOCov's partition universe is finite and statically known: every
   input cell is an (argument, partition) pair drawn from the syscall
   model, every output cell a (base, output-partition) pair, plus one
   cell per syscall variant.  This module enumerates that universe once
   at load time, interns each cell to a dense integer ID, and provides
   table-free mappings from a decoded call/outcome to its cell IDs —
   pure integer arithmetic, no hashing, no allocation.  [Coverage.Dense]
   counts into a flat array indexed by these IDs; [cells] is the inverse
   mapping used to rebuild a reference accumulator losslessly.

   Layout (ascending IDs):

     [0, inputs_off)             one cell per syscall variant
     [inputs_off, outputs_off)   input cells, grouped by argument
     [outputs_off, crash_off)    output cells, [per_base_outputs] per base
     [crash_off, total)          post-crash cells, one per (mode, outcome)

   Numeric arguments get the full 65-bucket strip (negative, zero,
   2^0..2^62) rather than their report-domain width: an observed
   partition need not be a domain member (a 2^40-byte write is counted
   even though Figure 3's axis stops at 2^32), and the dense path must
   be lossless against the reference accumulator. *)

open Iocov_syscall
module Log2 = Iocov_util.Log2

type cell =
  | Cell_variant of Model.variant
  | Cell_input of Arg_class.arg * Partition.t
  | Cell_output of Model.base * Partition.output
  | Cell_crash of Partition.crash_mode * Partition.crash_outcome

(* --- layout --- *)

let numeric_cells = 65 (* Negative, Zero, Pow2 0..62 *)

let arg_cells arg =
  match Arg_class.cls_of arg with
  | Arg_class.Bitmap ->
    (match arg with
     | Arg_class.Open_flags_arg -> Open_flags.flag_count
     | _ -> 1 + Mode.bit_count (* P_mode_zero, then one cell per bit *))
  | Arg_class.Numeric -> numeric_cells
  | Arg_class.Categorical ->
    (match arg with
     | Arg_class.Lseek_whence -> List.length Whence.all
     | _ -> List.length Xattr_flag.all)
  | Arg_class.Identifier -> 0

let variants_off = 0
let inputs_off = Model.variant_count

let input_off, outputs_off =
  let a = Array.make Arg_class.count 0 in
  let off = ref inputs_off in
  List.iter
    (fun arg ->
      a.(Arg_class.index arg) <- !off;
      off := !off + arg_cells arg)
    Arg_class.all;
  (a, !off)

(* Within a base's output block: O_ok, O_ok_zero, 63 success buckets,
   then one cell per errno (declaration order). *)
let ok_slot = 0
let ok_zero_slot = 1
let bucket0_slot = 2
let err0_slot = bucket0_slot + 63
let per_base_outputs = err0_slot + Errno.count

let crash_off = outputs_off + (Model.base_count * per_base_outputs)
let crash_mode_count = List.length Partition.all_crash_modes
let crash_outcome_count = List.length Partition.all_crash_outcomes
let total = crash_off + (crash_mode_count * crash_outcome_count)

let arg_offset arg = input_off.(Arg_class.index arg)
let base_offset base = outputs_off + (Model.base_index base * per_base_outputs)

let crash_cell mode outcome =
  crash_off
  + (Partition.crash_mode_index mode * crash_outcome_count)
  + Partition.crash_outcome_index outcome

(* --- input-side compilation --- *)

(* Flag bit patterns resolved once from the model, so the fast path
   below cannot drift from [Open_flags.bit]. *)
let b_creat = Open_flags.bit Open_flags.O_CREAT
let b_dsync = Open_flags.bit Open_flags.O_DSYNC
let b_sync = Open_flags.bit Open_flags.O_SYNC
let b_directory = Open_flags.bit Open_flags.O_DIRECTORY
let b_tmpfile = Open_flags.bit Open_flags.O_TMPFILE

let open_flags_off = arg_offset Arg_class.Open_flags_arg
let open_mode_off = arg_offset Arg_class.Open_mode
let read_count_off = arg_offset Arg_class.Read_count
let read_offset_off = arg_offset Arg_class.Read_offset
let write_count_off = arg_offset Arg_class.Write_count
let write_offset_off = arg_offset Arg_class.Write_offset
let lseek_offset_off = arg_offset Arg_class.Lseek_offset
let lseek_whence_off = arg_offset Arg_class.Lseek_whence
let truncate_length_off = arg_offset Arg_class.Truncate_length
let mkdir_mode_off = arg_offset Arg_class.Mkdir_mode
let chmod_mode_off = arg_offset Arg_class.Chmod_mode
let setxattr_size_off = arg_offset Arg_class.Setxattr_size
let setxattr_flags_off = arg_offset Arg_class.Setxattr_flags
let getxattr_size_off = arg_offset Arg_class.Getxattr_size

let flag_slot f = open_flags_off + Open_flags.flag_index f
let slot_rdonly = flag_slot Open_flags.O_RDONLY
let slot_wronly = flag_slot Open_flags.O_WRONLY
let slot_rdwr = flag_slot Open_flags.O_RDWR
let slot_dsync = flag_slot Open_flags.O_DSYNC
let slot_sync = flag_slot Open_flags.O_SYNC
let slot_directory = flag_slot Open_flags.O_DIRECTORY
let slot_tmpfile = flag_slot Open_flags.O_TMPFILE

(* The "plain" flags: single-bit, no normalization.  Access modes, the
   sync pair (O_SYNC subsumes O_DSYNC, O_RSYNC aliases O_SYNC), and the
   tmpfile pair (O_TMPFILE subsumes O_DIRECTORY) are handled explicitly
   in [iter_open_flag_slots], mirroring [Open_flags.decompose]. *)
let plain_bits, plain_slots =
  let plain =
    List.filter
      (fun f ->
        match (f : Open_flags.flag) with
        | Open_flags.O_RDONLY | Open_flags.O_WRONLY | Open_flags.O_RDWR
        | Open_flags.O_DSYNC | Open_flags.O_SYNC | Open_flags.O_RSYNC
        | Open_flags.O_DIRECTORY | Open_flags.O_TMPFILE -> false
        | _ -> true)
      Open_flags.all
  in
  ( Array.of_list (List.map Open_flags.bit plain),
    Array.of_list (List.map flag_slot plain) )

let iter_open_flag_slots flags f =
  f (match flags land 3 with 0 -> slot_rdonly | 1 -> slot_wronly | _ -> slot_rdwr);
  for i = 0 to Array.length plain_bits - 1 do
    if flags land Array.unsafe_get plain_bits i <> 0 then
      f (Array.unsafe_get plain_slots i)
  done;
  if flags land b_sync = b_sync then f slot_sync
  else if flags land b_dsync <> 0 then f slot_dsync;
  if flags land b_tmpfile = b_tmpfile then f slot_tmpfile
  else if flags land b_directory <> 0 then f slot_directory

let mode_masks = Array.of_list (List.map Mode.mask Mode.all_bits)
let mode_any = Array.fold_left ( lor ) 0 mode_masks

let iter_mode_slots off mode f =
  if mode land mode_any = 0 then f off (* P_mode_zero *)
  else
    for i = 0 to Mode.bit_count - 1 do
      if mode land Array.unsafe_get mode_masks i <> 0 then f (off + 1 + i)
    done

(* [Log2.bucket_of_int] as a slot offset: 0 = negative, 1 = zero,
   2 + k = bucket 2^k. *)
let bucket_slot n =
  if n < 0 then 0 else if n = 0 then 1 else 2 + Log2.floor_log2 n

let variant_cell v = variants_off + Model.variant_index v

(* --- raw-field observation ---

   Slot mappings keyed on wire-level field values (bitmask ints,
   categorical codes, errno indices) rather than a built [Model.call]:
   what a fused decoder bumps straight out of the byte stream.
   [iter_input_slots] and [output_cell] below are defined on top of
   these, so the two observation paths cannot drift. *)

let iter_open_slots ~flags ~mode f =
  iter_open_flag_slots flags f;
  (* mode is an input only when the call can create — O_CREAT set, or
     the full O_TMPFILE pattern (matching [Open_flags.has]) *)
  if flags land b_creat <> 0 || flags land b_tmpfile = b_tmpfile then
    iter_mode_slots open_mode_off mode f

let read_count_slot count = read_count_off + bucket_slot count
let read_offset_slot off = read_offset_off + bucket_slot off
let write_count_slot count = write_count_off + bucket_slot count
let write_offset_slot off = write_offset_off + bucket_slot off
let lseek_offset_slot off = lseek_offset_off + bucket_slot off
let lseek_whence_slot code = lseek_whence_off + code
let truncate_length_slot len = truncate_length_off + bucket_slot len
let iter_mkdir_mode_slots mode f = iter_mode_slots mkdir_mode_off mode f
let iter_chmod_mode_slots mode f = iter_mode_slots chmod_mode_off mode f
let setxattr_size_slot size = setxattr_size_off + bucket_slot size
let setxattr_flag_slot code = setxattr_flags_off + code
let getxattr_size_slot size = getxattr_size_off + bucket_slot size

let iter_input_slots call f =
  match (call : Model.call) with
  | Model.Open_call { flags; mode; _ } -> iter_open_slots ~flags ~mode f
  | Model.Read_call { count; offset; _ } ->
    f (read_count_slot count);
    (match offset with Some off -> f (read_offset_slot off) | None -> ())
  | Model.Write_call { count; offset; _ } ->
    f (write_count_slot count);
    (match offset with Some off -> f (write_offset_slot off) | None -> ())
  | Model.Lseek_call { offset; whence; _ } ->
    f (lseek_offset_slot offset);
    f (lseek_whence_slot (Whence.to_code whence))
  | Model.Truncate_call { length; _ } -> f (truncate_length_slot length)
  | Model.Mkdir_call { mode; _ } -> iter_mkdir_mode_slots mode f
  | Model.Chmod_call { mode; _ } -> iter_chmod_mode_slots mode f
  | Model.Close_call _ | Model.Chdir_call _ -> ()
  | Model.Setxattr_call { size; flags; _ } ->
    f (setxattr_size_slot size);
    f (setxattr_flag_slot (Xattr_flag.to_code flags))
  | Model.Getxattr_call { size; _ } -> f (getxattr_size_slot size)

(* --- output-side compilation --- *)

let ret_output_cell base n =
  let off = base_offset base in
  if not (Model.returns_byte_count base) then off + ok_slot
  else if n = 0 then off + ok_zero_slot
  else off + bucket0_slot + Log2.floor_log2 (max 1 n)

(* [errno_index] is {!Errno.index} — also the errno's wire index in the
   binary trace format. *)
let err_output_cell base errno_index = base_offset base + err0_slot + errno_index

let output_cell base outcome =
  match (outcome : Model.outcome) with
  | Model.Err e -> err_output_cell base (Errno.index e)
  | Model.Ret n -> ret_output_cell base n

(* --- the inverse mapping --- *)

let cells =
  let a = Array.make total (Cell_variant Model.Sys_open) in
  List.iter (fun v -> a.(variant_cell v) <- Cell_variant v) Model.all_variants;
  List.iter
    (fun arg ->
      let off = arg_offset arg in
      match Arg_class.cls_of arg with
      | Arg_class.Bitmap ->
        (match arg with
         | Arg_class.Open_flags_arg ->
           List.iter
             (fun fl -> a.(flag_slot fl) <- Cell_input (arg, Partition.P_flag fl))
             Open_flags.all
         | _ ->
           a.(off) <- Cell_input (arg, Partition.P_mode_zero);
           List.iter
             (fun b ->
               a.(off + 1 + Mode.bit_index b) <- Cell_input (arg, Partition.P_mode_bit b))
             Mode.all_bits)
      | Arg_class.Numeric ->
        a.(off) <- Cell_input (arg, Partition.P_bucket Log2.Negative);
        a.(off + 1) <- Cell_input (arg, Partition.P_bucket Log2.Zero);
        for k = 0 to 62 do
          a.(off + 2 + k) <- Cell_input (arg, Partition.P_bucket (Log2.Pow2 k))
        done
      | Arg_class.Categorical ->
        (match arg with
         | Arg_class.Lseek_whence ->
           List.iter
             (fun w -> a.(off + Whence.to_code w) <- Cell_input (arg, Partition.P_whence w))
             Whence.all
         | _ ->
           List.iter
             (fun x ->
               a.(off + Xattr_flag.to_code x) <- Cell_input (arg, Partition.P_xflag x))
             Xattr_flag.all)
      | Arg_class.Identifier -> ())
    Arg_class.all;
  List.iter
    (fun base ->
      let off = base_offset base in
      a.(off + ok_slot) <- Cell_output (base, Partition.O_ok);
      a.(off + ok_zero_slot) <- Cell_output (base, Partition.O_ok_zero);
      for k = 0 to 62 do
        a.(off + bucket0_slot + k) <- Cell_output (base, Partition.O_ok_bucket k)
      done;
      List.iter
        (fun e -> a.(off + err0_slot + Errno.index e) <- Cell_output (base, Partition.O_err e))
        Errno.all)
    Model.all_bases;
  List.iter
    (fun mode ->
      List.iter
        (fun outcome -> a.(crash_cell mode outcome) <- Cell_crash (mode, outcome))
        Partition.all_crash_outcomes)
    Partition.all_crash_modes;
  a

(* --- matrix view --- *)

module Matrix = struct
  let width = total
  let total ~configs = configs * width
  let id ~config_id cell = (config_id * width) + cell
  let config_of id = id / width
  let cell_of id = id mod width
end
