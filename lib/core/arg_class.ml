module Model = Iocov_syscall.Model

type cls = Identifier | Bitmap | Numeric | Categorical

let cls_name = function
  | Identifier -> "identifier"
  | Bitmap -> "bitmap"
  | Numeric -> "numeric"
  | Categorical -> "categorical"

type arg =
  | Open_flags_arg
  | Open_mode
  | Read_count
  | Read_offset
  | Write_count
  | Write_offset
  | Lseek_offset
  | Lseek_whence
  | Truncate_length
  | Mkdir_mode
  | Chmod_mode
  | Setxattr_size
  | Setxattr_flags
  | Getxattr_size

let all =
  [ Open_flags_arg; Open_mode; Read_count; Read_offset; Write_count;
    Write_offset; Lseek_offset; Lseek_whence; Truncate_length; Mkdir_mode;
    Chmod_mode; Setxattr_size; Setxattr_flags; Getxattr_size ]

(* Dense index in declaration order ([all]'s order), for array-indexed
   counting in the compiled partition plan. *)
let index = function
  | Open_flags_arg -> 0
  | Open_mode -> 1
  | Read_count -> 2
  | Read_offset -> 3
  | Write_count -> 4
  | Write_offset -> 5
  | Lseek_offset -> 6
  | Lseek_whence -> 7
  | Truncate_length -> 8
  | Mkdir_mode -> 9
  | Chmod_mode -> 10
  | Setxattr_size -> 11
  | Setxattr_flags -> 12
  | Getxattr_size -> 13

let count = 14

let name = function
  | Open_flags_arg -> "open.flags"
  | Open_mode -> "open.mode"
  | Read_count -> "read.count"
  | Read_offset -> "read.offset"
  | Write_count -> "write.count"
  | Write_offset -> "write.offset"
  | Lseek_offset -> "lseek.offset"
  | Lseek_whence -> "lseek.whence"
  | Truncate_length -> "truncate.length"
  | Mkdir_mode -> "mkdir.mode"
  | Chmod_mode -> "chmod.mode"
  | Setxattr_size -> "setxattr.size"
  | Setxattr_flags -> "setxattr.flags"
  | Getxattr_size -> "getxattr.size"

let of_name s = List.find_opt (fun a -> name a = s) all

let cls_of = function
  | Open_flags_arg | Open_mode | Mkdir_mode | Chmod_mode -> Bitmap
  | Read_count | Read_offset | Write_count | Write_offset | Lseek_offset
  | Truncate_length | Setxattr_size | Getxattr_size -> Numeric
  | Lseek_whence | Setxattr_flags -> Categorical

let base_of = function
  | Open_flags_arg | Open_mode -> Model.Open
  | Read_count | Read_offset -> Model.Read
  | Write_count | Write_offset -> Model.Write
  | Lseek_offset | Lseek_whence -> Model.Lseek
  | Truncate_length -> Model.Truncate
  | Mkdir_mode -> Model.Mkdir
  | Chmod_mode -> Model.Chmod
  | Setxattr_size | Setxattr_flags -> Model.Setxattr
  | Getxattr_size -> Model.Getxattr

let args_of_base b = List.filter (fun a -> base_of a = b) all
