open Iocov_syscall
module Ascii = Iocov_util.Ascii
module Log2 = Iocov_util.Log2

let flag_rows cov_a cov_b =
  List.map
    (fun flag ->
      let p = Partition.P_flag flag in
      ( Open_flags.flag_name flag,
        Coverage.input_count cov_a Arg_class.Open_flags_arg p,
        Coverage.input_count cov_b Arg_class.Open_flags_arg p ))
    Open_flags.all

let figure2 ~name_a ~cov_a ~name_b ~cov_b =
  Ascii.grouped_log_chart
    ~title:
      (Printf.sprintf "Figure 2: input coverage of open flags (%s vs %s, log10 frequency)"
         name_a name_b)
    ~group_names:(name_a, name_b) (flag_rows cov_a cov_b)

let table1 ~name_a ~cov_a ~name_b ~cov_b =
  let max_n = 6 in
  let row label sets =
    label :: List.map Ascii.float_cell (Combos.percent_by_flag_count ~max_n sets)
  in
  let sets_a = Coverage.open_flag_sets cov_a in
  let sets_b = Coverage.open_flag_sets cov_b in
  Ascii.table
    ~title:"Table 1: % of opens combining 1-6 flags"
    ~headers:("Test Suite / % for #flags" :: List.init max_n (fun i -> string_of_int (i + 1)))
    [ row (name_a ^ ": all flags") sets_a;
      row (name_a ^ ": O_RDONLY") (Combos.restrict Open_flags.O_RDONLY sets_a);
      row (name_b ^ ": all flags") sets_b;
      row (name_b ^ ": O_RDONLY") (Combos.restrict Open_flags.O_RDONLY sets_b) ]

let numeric_rows arg cov_a cov_b =
  List.map
    (fun part ->
      let label =
        match part with
        | Partition.P_bucket b ->
          Printf.sprintf "%-5s %s" (Log2.bucket_label b) (Log2.bucket_size_label b)
        | p -> Partition.label p
      in
      ( label,
        Coverage.input_count cov_a arg part,
        Coverage.input_count cov_b arg part ))
    (Partition.domain arg)

let max_numeric_label arg cov =
  let covered =
    List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov arg)
  in
  match List.rev covered with
  | (Partition.P_bucket b, _) :: _ -> Log2.bucket_size_label b
  | _ -> "none"

let numeric_figure ~arg ~name_a ~cov_a ~name_b ~cov_b =
  let chart =
    Ascii.grouped_log_chart
      ~title:
        (Printf.sprintf "Input coverage of %s (%s vs %s, log10 frequency)"
           (Arg_class.name arg) name_a name_b)
      ~group_names:(name_a, name_b) (numeric_rows arg cov_a cov_b)
  in
  Printf.sprintf "%slargest bucket exercised: %s %s, %s %s\n" chart name_a
    (max_numeric_label arg cov_a) name_b (max_numeric_label arg cov_b)

let figure3 ~name_a ~cov_a ~name_b ~cov_b =
  Printf.sprintf "Figure 3: %s"
    (numeric_figure ~arg:Arg_class.Write_count ~name_a ~cov_a ~name_b ~cov_b)

let output_figure ~base ~name_a ~cov_a ~name_b ~cov_b =
  let grouped_a = Coverage.output_series_grouped cov_a base in
  let grouped_b = Coverage.output_series_grouped cov_b base in
  let label = function
    | `Ok -> "OK (>= 0)"
    | `Err e -> Errno.to_string e
  in
  let count series key =
    match List.find_opt (fun (k, _) -> k = key) series with
    | Some (_, n) -> n
    | None -> 0
  in
  let keys = List.map fst grouped_a in
  let keys =
    keys
    @ List.filter (fun k -> not (List.mem k keys)) (List.map fst grouped_b)
  in
  let rows =
    List.map (fun k -> (label k, count grouped_a k, count grouped_b k)) keys
  in
  Ascii.grouped_log_chart
    ~title:
      (Printf.sprintf "Output coverage of %s (%s vs %s, log10 frequency)"
         (Model.base_name base) name_a name_b)
    ~group_names:(name_a, name_b) rows

let figure4 ~name_a ~cov_a ~name_b ~cov_b =
  Printf.sprintf "Figure 4: %s"
    (output_figure ~base:Model.Open ~name_a ~cov_a ~name_b ~cov_b)

let open_flag_frequencies cov =
  Array.of_list
    (List.map (fun (_, n) -> n) (Coverage.input_series cov Arg_class.Open_flags_arg))

let figure5 ~name_a ~cov_a ~name_b ~cov_b ~targets =
  let f_a = open_flag_frequencies cov_a in
  let f_b = open_flag_frequencies cov_b in
  let rows =
    List.map
      (fun target ->
        [ Printf.sprintf "%.0f" target;
          Printf.sprintf "%.3f" (Tcd.tcd_uniform ~frequencies:f_a ~target);
          Printf.sprintf "%.3f" (Tcd.tcd_uniform ~frequencies:f_b ~target) ])
      targets
  in
  let table =
    Ascii.table
      ~title:"Figure 5: TCD for open flags vs uniform target"
      ~headers:[ "target T"; name_a; name_b ]
      rows
  in
  let crossover_note =
    match Tcd.crossover ~f1:f_a ~f2:f_b ~lo:(List.hd targets)
            ~hi:(List.nth targets (List.length targets - 1))
    with
    | Some t ->
      Printf.sprintf "\ncrossover: %s better below T ~= %.0f, %s better above" name_a t name_b
    | None -> "\ncrossover: none in the swept range"
  in
  table ^ crossover_note

let untested_summary ~name cov =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "Untested partitions for %s\n" name);
  List.iter
    (fun arg ->
      match Coverage.untested_inputs cov arg with
      | [] -> ()
      | missing ->
        Buffer.add_string buf
          (Printf.sprintf "  input  %-16s (%d/%d untested): %s\n" (Arg_class.name arg)
             (List.length missing)
             (List.length (Partition.domain arg))
             (String.concat " " (List.map Partition.label missing))))
    Arg_class.all;
  List.iter
    (fun base ->
      let missing =
        List.filter
          (fun o -> Partition.output_is_error o)
          (Coverage.untested_outputs cov base)
      in
      match missing with
      | [] -> ()
      | missing ->
        Buffer.add_string buf
          (Printf.sprintf "  output %-16s (%d errnos untested): %s\n" (Model.base_name base)
             (List.length missing)
             (String.concat " " (List.map Partition.output_label missing))))
    Model.all_bases;
  Buffer.contents buf

let suite_summary ~name cov =
  let rows =
    List.map
      (fun base ->
        [ Model.base_name base;
          Ascii.si_count (Coverage.base_calls cov base);
          Printf.sprintf "%.0f%%" (100.0 *. Coverage.input_coverage_ratio_of_base cov base);
          Printf.sprintf "%.0f%%" (100.0 *. Coverage.output_coverage_ratio cov base) ])
      Model.all_bases
  in
  Printf.sprintf "%s: %s traced calls\n%s" name
    (Ascii.si_count (Coverage.calls_observed cov))
    (Ascii.table
       ~headers:[ "syscall"; "calls"; "input cov"; "output cov" ]
       rows)

let adequacy_table ~name cov ~arg ~target ~theta =
  let rows =
    List.map
      (fun (p, freq, verdict) ->
        [ Partition.label p; Ascii.si_count freq; Adequacy.verdict_name verdict ])
      (Adequacy.input_report cov arg ~target ~theta)
  in
  Ascii.table
    ~title:
      (Printf.sprintf "%s: adequacy of %s (target %.0f, theta %.1f)" name
         (Arg_class.name arg) target theta)
    ~headers:[ "partition"; "frequency"; "verdict" ]
    rows

(* The completeness section: what a fault-tolerant run read, skipped,
   retried, and lost.  A clean run is one line; a degraded run gets the
   full ledger plus the first recorded anomalies, so the reader can
   judge how much to trust the coverage numbers above it. *)
let completeness ~name (c : Iocov_util.Anomaly.completeness) =
  let module Anomaly = Iocov_util.Anomaly in
  if Anomaly.is_clean c then
    Printf.sprintf "%s: complete — %s events read, nothing skipped%s" name
      (Ascii.si_count c.Anomaly.events_read)
      (match c.Anomaly.resumed_from with
       | Some path -> Printf.sprintf " (resumed from %s)" path
       | None -> "")
  else begin
    let rows =
      List.filter_map
        (fun (label, value) -> if value = "" then None else Some [ label; value ])
        [ ("events read", Ascii.si_count c.Anomaly.events_read);
          ( "records skipped",
            if c.Anomaly.records_skipped = 0 then "" else string_of_int c.Anomaly.records_skipped );
          ( "corrupt regions",
            if c.Anomaly.corrupt_regions = 0 then "" else string_of_int c.Anomaly.corrupt_regions );
          ( "bytes skipped",
            if c.Anomaly.bytes_skipped = 0 then "" else string_of_int c.Anomaly.bytes_skipped );
          ( "batches retried",
            if c.Anomaly.batches_retried = 0 then "" else string_of_int c.Anomaly.batches_retried );
          ( "shards failed",
            if c.Anomaly.shards_failed = 0 then "" else string_of_int c.Anomaly.shards_failed );
          ( "events abandoned",
            if c.Anomaly.events_abandoned = 0 then "" else string_of_int c.Anomaly.events_abandoned );
          ("truncated", if c.Anomaly.truncated then "yes" else "");
          ( "resumed from",
            match c.Anomaly.resumed_from with Some path -> path | None -> "" ) ]
    in
    let shown = 8 in
    let anomaly_lines =
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | a :: tl -> ("  " ^ Anomaly.to_string a) :: take (n - 1) tl
      in
      match c.Anomaly.anomalies with
      | [] -> []
      | all ->
        let extra = List.length all - shown in
        take shown all
        @ (if extra > 0 then [ Printf.sprintf "  … and %d more" extra ] else [])
    in
    String.concat "\n"
      ((Ascii.table
          ~title:(Printf.sprintf "%s: completeness (run was degraded)" name)
          ~headers:[ "counter"; "value" ] rows)
      :: anomaly_lines)
  end

(* --- config-lattice comparison (DESIGN.md §18) --- *)

let cell_label = function
  | Plan.Cell_variant v -> "variant " ^ Model.variant_name v
  | Plan.Cell_input (arg, part) ->
    Printf.sprintf "input %s=%s" (Arg_class.name arg) (Partition.label part)
  | Plan.Cell_output (base, out) ->
    Printf.sprintf "output %s->%s" (Model.base_name base) (Partition.output_label out)
  | Plan.Cell_crash (mode, outcome) ->
    Printf.sprintf "crash %s->%s"
      (Partition.crash_mode_label mode)
      (Partition.crash_outcome_label outcome)

let lit cov id = Coverage.cell_count cov Plan.cells.(id) > 0

let errno_cell id =
  match Plan.cells.(id) with
  | Plan.Cell_output (_, Partition.O_err _) -> true
  | _ -> false

let lit_errno_cells cov =
  let n = ref 0 in
  for id = 0 to Plan.total - 1 do
    if errno_cell id && lit cov id then incr n
  done;
  !n

let off_baseline_errno_cells = function
  | [] -> []
  | (_, baseline) :: rest ->
    let ids = ref [] in
    for id = Plan.total - 1 downto 0 do
      if
        errno_cell id
        && (not (lit baseline id))
        && List.exists (fun (_, cov) -> lit cov id) rest
      then ids := id :: !ids
    done;
    !ids

let config_matrix ~target ~theta rows =
  let table_rows =
    List.map
      (fun (name, cov) ->
        let v, i, o = Coverage.lit_cells cov in
        let tcd =
          Tcd.tcd_uniform ~frequencies:(open_flag_frequencies cov) ~target
        in
        let adequacy =
          Adequacy.summarize
            (Adequacy.input_report cov Arg_class.Open_flags_arg ~target ~theta)
        in
        [ name;
          Ascii.si_count (Coverage.calls_observed cov);
          string_of_int v; string_of_int i; string_of_int o;
          string_of_int (lit_errno_cells cov);
          Printf.sprintf "%.3f" tcd;
          string_of_int adequacy.Adequacy.under;
          string_of_int adequacy.Adequacy.over ])
      rows
  in
  Ascii.table
    ~title:
      (Printf.sprintf
         "Config matrix: per-config coverage (TCD/adequacy: open flags, T=%.0f, theta=%.1f)"
         target theta)
    ~headers:
      [ "config"; "calls"; "variants"; "inputs"; "outputs"; "errno cells";
        "TCD"; "under"; "over" ]
    table_rows

let config_diff = function
  | [] -> "config diff: no configs\n"
  | [ (name, _) ] ->
    Printf.sprintf "config diff: only one config (%s); nothing to compare\n" name
  | ((base_name, baseline) :: rest) as rows ->
    let buf = Buffer.create 1024 in
    Printf.ksprintf (Buffer.add_string buf)
      "Config diff (baseline: %s)\n" base_name;
    List.iter
      (fun (name, cov) ->
        let gained = ref [] and lost = ref [] in
        for id = Plan.total - 1 downto 0 do
          match (lit baseline id, lit cov id) with
          | false, true -> gained := id :: !gained
          | true, false -> lost := id :: !lost
          | _ -> ()
        done;
        Printf.ksprintf (Buffer.add_string buf)
          "\n%s vs %s: +%d cells, -%d cells\n" name base_name
          (List.length !gained) (List.length !lost);
        let show verb ids =
          let shown, extra =
            if List.length ids > 12 then
              (List.filteri (fun i _ -> i < 12) ids, List.length ids - 12)
            else (ids, 0)
          in
          List.iter
            (fun id ->
              Printf.ksprintf (Buffer.add_string buf) "  %s %s\n" verb
                (cell_label Plan.cells.(id)))
            shown;
          if extra > 0 then
            Printf.ksprintf (Buffer.add_string buf) "  ... and %d more\n" extra
        in
        show "+" !gained;
        show "-" !lost)
      rest;
    let off = off_baseline_errno_cells rows in
    Printf.ksprintf (Buffer.add_string buf)
      "\nerrno cells lit only off-%s: %d\n" base_name (List.length off);
    List.iter
      (fun id ->
        let under =
          List.filter_map
            (fun (name, cov) -> if lit cov id then Some name else None)
            rest
        in
        Printf.ksprintf (Buffer.add_string buf) "  %s  [%s]\n"
          (cell_label Plan.cells.(id))
          (String.concat ", " under))
      off;
    Buffer.contents buf
