open Iocov_syscall

let magic = "iocov-coverage v1"

(* One emitter serves both the channel and string forms. *)
let emit put cov =
  put (magic ^ "\n");
  put (Printf.sprintf "calls %d\n" (Coverage.calls_observed cov));
  List.iter
    (fun (v, n) -> put (Printf.sprintf "variant %s %d\n" (Model.variant_name v) n))
    (Coverage.variant_histogram cov);
  List.iter
    (fun arg ->
      List.iter
        (fun (part, n) ->
          put
            (Printf.sprintf "input %s %s %d\n" (Arg_class.name arg) (Partition.label part) n))
        (Coverage.input_histogram cov arg))
    Arg_class.all;
  List.iter
    (fun base ->
      List.iter
        (fun (out, n) ->
          if n > 0 then
            put
              (Printf.sprintf "output %s %s %d\n" (Model.base_name base)
                 (Partition.output_token out) n))
        (Coverage.output_histogram cov base))
    Model.all_bases;
  (* Crash lines only when non-zero, so snapshots of runs that never
     touched the crash engine stay byte-identical to the v1 format. *)
  List.iter
    (fun ((mode, outcome), n) ->
      if n > 0 then
        put
          (Printf.sprintf "crash %s %s %d\n"
             (Partition.crash_mode_label mode)
             (Partition.crash_outcome_label outcome)
             n))
    (Coverage.crash_series cov);
  List.iter
    (fun (mask, n) -> put (Printf.sprintf "flagset %s %d\n" (Open_flags.to_string mask) n))
    (Coverage.open_flag_sets cov)

let save oc cov =
  emit (output_string oc) cov;
  flush oc

let save_file path cov =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save oc cov)

let to_string cov =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) cov;
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_count s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad count %S" s)

let parse_line cov line =
  match String.split_on_char ' ' line with
  | [ "calls"; n ] ->
    let* n = parse_count n in
    Ok (Coverage.add_calls cov n)
  | [ "variant"; name; n ] ->
    let* n = parse_count n in
    (match Model.variant_of_name name with
     | Some v -> Ok (Coverage.add_variant cov v n)
     | None -> Error (Printf.sprintf "unknown variant %S" name))
  | [ "input"; arg_name; token; n ] ->
    let* n = parse_count n in
    (match (Arg_class.of_name arg_name, Partition.of_label token) with
     | Some arg, Some part -> Ok (Coverage.add_input cov arg part n)
     | None, _ -> Error (Printf.sprintf "unknown argument %S" arg_name)
     | _, None -> Error (Printf.sprintf "unknown partition %S" token))
  | [ "output"; base_name; token; n ] ->
    let* n = parse_count n in
    (match (Model.base_of_name base_name, Partition.output_of_token token) with
     | Some base, Some out -> Ok (Coverage.add_output cov base out n)
     | None, _ -> Error (Printf.sprintf "unknown syscall %S" base_name)
     | _, None -> Error (Printf.sprintf "unknown output %S" token))
  | [ "crash"; mode_s; outcome_s; n ] ->
    let* n = parse_count n in
    (match (Partition.crash_mode_of_label mode_s, Partition.crash_outcome_of_label outcome_s) with
     | Some mode, Some outcome -> Ok (Coverage.add_crash cov mode outcome n)
     | None, _ -> Error (Printf.sprintf "unknown journal mode %S" mode_s)
     | _, None -> Error (Printf.sprintf "unknown crash outcome %S" outcome_s))
  | [ "flagset"; mask_s; n ] ->
    let* n = parse_count n in
    (match Open_flags.of_string mask_s with
     | Some mask -> Ok (Coverage.add_flag_set cov mask n)
     | None -> Error (Printf.sprintf "bad flag set %S" mask_s))
  | _ -> Error (Printf.sprintf "unrecognized line %S" line)

(* Shared line-stream parser: [next ()] yields lines until [None]. *)
let parse_stream next =
  match next () with
  | Some first when String.trim first = magic ->
    let cov = Coverage.create () in
    let rec go lineno =
      match next () with
      | None -> Ok cov
      | Some line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1)
        else begin
          match parse_line cov line with
          | Ok () -> go (lineno + 1)
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
    in
    go 2
  | Some other -> Error (Printf.sprintf "bad header %S (expected %S)" other magic)
  | None -> Error "empty snapshot"

let load ic = parse_stream (fun () -> In_channel.input_line ic)

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)

let of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  parse_stream (fun () ->
      match !lines with
      | [] -> None
      | [ "" ] -> None  (* trailing newline *)
      | line :: rest ->
        lines := rest;
        Some line)

let equal a b =
  Coverage.calls_observed a = Coverage.calls_observed b
  && Coverage.variant_histogram a = Coverage.variant_histogram b
  && Coverage.open_flag_sets a = Coverage.open_flag_sets b
  && List.for_all
       (fun arg -> Coverage.input_histogram a arg = Coverage.input_histogram b arg)
       Arg_class.all
  && List.for_all
       (fun base -> Coverage.output_histogram a base = Coverage.output_histogram b base)
       Model.all_bases
  && Coverage.crash_series a = Coverage.crash_series b
