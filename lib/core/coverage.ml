open Iocov_syscall
module Histogram = Iocov_util.Histogram
module Metrics = Iocov_obs.Metrics

let m_calls =
  Metrics.counter Metrics.default "iocov_coverage_calls_total"
    ~help:"Syscalls observed by the coverage accumulator."

let m_update kind =
  Metrics.counter Metrics.default "iocov_coverage_updates_total"
    ~labels:[ ("table", kind) ]
    ~help:"Partition-table updates by table kind."

let m_input_updates = m_update "input"
let m_output_updates = m_update "output"
let m_variant_updates = m_update "variant"
let m_flag_set_updates = m_update "flag_set"

type t = {
  inputs : (Arg_class.arg, Partition.t Histogram.t) Hashtbl.t;
  outputs : (Model.base, Partition.output Histogram.t) Hashtbl.t;
  variants : Model.variant Histogram.t;
  flag_sets : Open_flags.t Histogram.t;
  crash : (Partition.crash_mode * Partition.crash_outcome) Histogram.t;
  mutable calls : int;
  metered : bool;
}

let compare_crash_key (m1, o1) (m2, o2) =
  match Partition.compare_crash_mode m1 m2 with
  | 0 -> Partition.compare_crash_outcome o1 o2
  | c -> c

let create ?(metered = true) () =
  {
    inputs = Hashtbl.create 16;
    outputs = Hashtbl.create 16;
    (* Monomorphic comparators: polymorphic [Stdlib.compare] walks the
       runtime representation on every histogram sort; these compile to
       integer compares (variants order by their dense index, which
       matches declaration order). *)
    variants = Histogram.create ~compare:Model.compare_variant;
    flag_sets = Histogram.create ~compare:Int.compare;
    crash = Histogram.create ~compare:compare_crash_key;
    calls = 0;
    metered;
  }

let input_hist t arg =
  match Hashtbl.find_opt t.inputs arg with
  | Some h -> h
  | None ->
    let h = Histogram.create ~compare:Partition.compare in
    Hashtbl.add t.inputs arg h;
    h

let output_hist t base =
  match Hashtbl.find_opt t.outputs base with
  | Some h -> h
  | None ->
    let h = Histogram.create ~compare:Partition.compare_output in
    Hashtbl.add t.outputs base h;
    h

(* Shared table-update body of the observe paths.  Returns the number
   of input-table updates and whether a flag set was recorded, so the
   caller can credit metering in one batch. *)
let record_inputs t call =
  t.calls <- t.calls + 1;
  Histogram.add t.variants (Model.variant_of_call call);
  let n_inputs =
    List.fold_left
      (fun acc (arg, part) ->
        Histogram.add (input_hist t arg) part;
        acc + 1)
      0 (Partition.of_call call)
  in
  let flag_set =
    match call with
    | Model.Open_call { flags; _ } ->
      Histogram.add t.flag_sets flags;
      true
    | _ -> false
  in
  (n_inputs, flag_set)

(* Metering is hoisted out of the per-update loops: one observation
   credits all its counter increments in a single batch, with totals
   exactly equal to per-update metering (asserted in test_obs). *)
let meter_observation t ~inputs ~flag_set ~outputs =
  if t.metered then begin
    Metrics.Counter.incr m_calls;
    Metrics.Counter.incr m_variant_updates;
    if inputs > 0 then Metrics.Counter.add m_input_updates inputs;
    if flag_set then Metrics.Counter.incr m_flag_set_updates;
    if outputs > 0 then Metrics.Counter.add m_output_updates outputs
  end

let observe_input_only t call =
  let inputs, flag_set = record_inputs t call in
  meter_observation t ~inputs ~flag_set ~outputs:0

let observe t call outcome =
  let inputs, flag_set = record_inputs t call in
  let base = Model.base_of_call call in
  Histogram.add (output_hist t base) (Partition.output_of base outcome);
  meter_observation t ~inputs ~flag_set ~outputs:1

(* Table sizes are per-accumulator, so they are published on demand for
   one chosen instance (the run's accumulator) rather than streamed —
   several coverage objects can live at once (per-test attribution,
   ablations) and streaming would mix them. *)
let publish_gauges t =
  let g name help =
    Metrics.gauge Metrics.default ("iocov_coverage_" ^ name) ~help
  in
  let distinct_sum tbl =
    Hashtbl.fold (fun _ h acc -> acc + Histogram.distinct h) tbl 0
  in
  Metrics.Gauge.set (g "input_tables" "Tracked arguments with observations.")
    (Hashtbl.length t.inputs);
  Metrics.Gauge.set (g "output_tables" "Base syscalls with observed outputs.")
    (Hashtbl.length t.outputs);
  Metrics.Gauge.set
    (g "distinct_input_partitions" "Distinct input partitions hit, all arguments.")
    (distinct_sum t.inputs);
  Metrics.Gauge.set
    (g "distinct_output_partitions" "Distinct output partitions hit, all bases.")
    (distinct_sum t.outputs);
  Metrics.Gauge.set (g "distinct_variants" "Distinct syscall variants observed.")
    (Histogram.distinct t.variants);
  Metrics.Gauge.set (g "distinct_flag_sets" "Distinct exact open-flag sets observed.")
    (Histogram.distinct t.flag_sets)

let merge_into ~dst src =
  dst.calls <- dst.calls + src.calls;
  Histogram.merge_into ~dst:dst.variants src.variants;
  Histogram.merge_into ~dst:dst.flag_sets src.flag_sets;
  Histogram.merge_into ~dst:dst.crash src.crash;
  Hashtbl.iter
    (fun arg h -> Histogram.merge_into ~dst:(input_hist dst arg) h)
    src.inputs;
  Hashtbl.iter
    (fun base h -> Histogram.merge_into ~dst:(output_hist dst base) h)
    src.outputs

let copy t =
  let fresh = create ~metered:t.metered () in
  merge_into ~dst:fresh t;
  fresh

(* Credit this accumulator's counts to the global iocov_coverage_*
   counters in one batch — exactly the increments the per-event metered
   path would have made, since every [observe] adds one entry per
   touched table.  The parallel pipeline calls this once after merging
   its unmetered shards, keeping counter totals identical to a
   sequential run without per-event atomic traffic from the workers. *)
let meter_counts t =
  let table_total tbl = Hashtbl.fold (fun _ h acc -> acc + Histogram.total h) tbl 0 in
  Metrics.Counter.add m_calls t.calls;
  Metrics.Counter.add m_variant_updates (Histogram.total t.variants);
  Metrics.Counter.add m_flag_set_updates (Histogram.total t.flag_sets);
  Metrics.Counter.add m_input_updates (table_total t.inputs);
  Metrics.Counter.add m_output_updates (table_total t.outputs)

let input_count t arg part = Histogram.count (input_hist t arg) part
let input_histogram t arg = Histogram.to_sorted (input_hist t arg)

let input_series t arg =
  let h = input_hist t arg in
  List.map (fun p -> (p, Histogram.count h p)) (Partition.domain arg)

let untested_inputs t arg =
  let h = input_hist t arg in
  List.filter (fun p -> not (Histogram.mem h p)) (Partition.domain arg)

let input_coverage_ratio t arg =
  let dom = Partition.domain arg in
  let h = input_hist t arg in
  let covered = List.length (List.filter (Histogram.mem h) dom) in
  float_of_int covered /. float_of_int (List.length dom)

let input_coverage_ratio_of_base t base =
  match Arg_class.args_of_base base with
  | [] -> 1.0
  | args ->
    let sum = List.fold_left (fun acc a -> acc +. input_coverage_ratio t a) 0.0 args in
    sum /. float_of_int (List.length args)

let output_count t base out = Histogram.count (output_hist t base) out
let output_histogram t base = Histogram.to_sorted (output_hist t base)

let output_series t base =
  let h = output_hist t base in
  let dom = Partition.output_domain base in
  let in_domain = List.map (fun o -> (o, Histogram.count h o)) dom in
  let extras =
    List.filter (fun (o, _) -> not (List.exists (Partition.equal_output o) dom))
      (Histogram.to_sorted h)
  in
  in_domain @ extras

let output_series_grouped t base =
  let series = output_series t base in
  let ok_total =
    List.fold_left
      (fun acc (o, n) ->
        match Partition.output_success_group o with `Ok -> acc + n | `Err _ -> acc)
      0 series
  in
  let errs =
    List.filter_map
      (fun (o, n) ->
        match Partition.output_success_group o with
        | `Ok -> None
        | `Err e -> Some (`Err e, n))
      series
  in
  (`Ok, ok_total) :: errs

let untested_outputs t base =
  let h = output_hist t base in
  List.filter (fun o -> not (Histogram.mem h o)) (Partition.output_domain base)

let output_coverage_ratio t base =
  let dom = Partition.output_domain base in
  let h = output_hist t base in
  let covered = List.length (List.filter (Histogram.mem h) dom) in
  float_of_int covered /. float_of_int (List.length dom)

let calls_observed t = t.calls

let base_calls t base =
  List.fold_left
    (fun acc v -> acc + Histogram.count t.variants v)
    0
    (Model.variants_of_base base)

let variant_calls t v = Histogram.count t.variants v
let open_flag_sets t = Histogram.to_sorted t.flag_sets
let variant_histogram t = Histogram.to_sorted t.variants

let add_input t arg part count = Histogram.add (input_hist t arg) ~count part
let add_output t base out count = Histogram.add (output_hist t base) ~count out
let add_variant t v count = Histogram.add t.variants ~count v
let add_flag_set t mask count = Histogram.add t.flag_sets ~count mask

(* --- post-crash outcomes (DESIGN.md §17) --- *)

let add_crash t mode outcome count = Histogram.add t.crash ~count (mode, outcome)
let crash_count t mode outcome = Histogram.count t.crash (mode, outcome)
let crash_observed t = Histogram.total t.crash

let crash_series t =
  List.concat_map
    (fun mode ->
      List.map
        (fun outcome -> ((mode, outcome), Histogram.count t.crash (mode, outcome)))
        Partition.all_crash_outcomes)
    Partition.all_crash_modes

let add_calls t n =
  if n < 0 then invalid_arg "Coverage.add_calls: negative";
  t.calls <- t.calls + n

(* --- dense counters --- *)

module Dense = struct
  (* Bound before [t] is shadowed by the dense record below. *)
  let coverage_create = create

  type t = {
    counts : int array; (* one counter per Plan cell ID *)
    bump : int -> unit; (* pre-bound [counts] incrementer, so the hot
                           path passes one closure with no per-call
                           allocation *)
    flag_sets : (int, int ref) Hashtbl.t; (* exact open masks: unbounded
                                             key space, stays a table *)
    mutable calls : int;
  }

  let create () =
    let counts = Array.make Plan.total 0 in
    let bump id = counts.(id) <- counts.(id) + 1 in
    { counts; bump; flag_sets = Hashtbl.create 64; calls = 0 }

  let bumper t = t.bump
  let counts t = t.counts
  let count_call t = t.calls <- t.calls + 1

  let observe_open_mask t flags =
    match Hashtbl.find t.flag_sets flags with
    | r -> incr r
    | exception Not_found -> Hashtbl.add t.flag_sets flags (ref 1)

  let observe_input_only t call =
    count_call t;
    t.bump (Plan.variant_cell (Model.variant_of_call call));
    Plan.iter_input_slots call t.bump;
    match call with
    | Model.Open_call { flags; _ } -> observe_open_mask t flags
    | _ -> ()

  let observe t call outcome =
    observe_input_only t call;
    t.bump (Plan.output_cell (Model.base_of_call call) outcome)

  let merge_into ~dst src =
    dst.calls <- dst.calls + src.calls;
    let d = dst.counts and s = src.counts in
    for i = 0 to Array.length d - 1 do
      d.(i) <- d.(i) + s.(i)
    done;
    Hashtbl.iter
      (fun mask r ->
        match Hashtbl.find dst.flag_sets mask with
        | r' -> r' := !r' + !r
        | exception Not_found -> Hashtbl.add dst.flag_sets mask (ref !r))
      src.flag_sets

  let calls_observed t = t.calls

  (* Direct plan-cell read — what the live progress sink peeks at, so
     a mid-run snapshot costs an array index, not a conversion. *)
  let cell_count t id = t.counts.(id)

  let reset t =
    Array.fill t.counts 0 Plan.total 0;
    Hashtbl.reset t.flag_sets;
    t.calls <- 0

  let snapshot t =
    let counts = Array.copy t.counts in
    let bump id = counts.(id) <- counts.(id) + 1 in
    let flag_sets = Hashtbl.create (max 16 (Hashtbl.length t.flag_sets)) in
    Hashtbl.iter (fun mask r -> Hashtbl.add flag_sets mask (ref !r)) t.flag_sets;
    { counts; bump; flag_sets; calls = t.calls }

  let to_reference ?(metered = false) t =
    let cov = coverage_create ~metered () in
    Array.iteri
      (fun id n ->
        if n > 0 then
          match Plan.cells.(id) with
          | Plan.Cell_variant v -> add_variant cov v n
          | Plan.Cell_input (arg, part) -> add_input cov arg part n
          | Plan.Cell_output (base, out) -> add_output cov base out n
          | Plan.Cell_crash (mode, outcome) -> add_crash cov mode outcome n)
      t.counts;
    Hashtbl.iter (fun mask r -> add_flag_set cov mask !r) t.flag_sets;
    add_calls cov t.calls;
    cov
end

(* --- cell summaries (flight recorder / run ledger) --- *)

let cell_count t = function
  | Plan.Cell_variant v -> variant_calls t v
  | Plan.Cell_input (arg, part) -> input_count t arg part
  | Plan.Cell_output (base, out) -> output_count t base out
  | Plan.Cell_crash (mode, outcome) -> crash_count t mode outcome

let lit_cells t =
  let variants = ref 0 and inputs = ref 0 and outputs = ref 0 in
  Array.iter
    (fun cell ->
      if cell_count t cell > 0 then
        match cell with
        | Plan.Cell_variant _ -> incr variants
        | Plan.Cell_input _ -> incr inputs
        (* Crash cells live on the output side of the universe; the
           three-bucket ledger shape stays stable. *)
        | Plan.Cell_output _ | Plan.Cell_crash _ -> incr outputs)
    Plan.cells;
  (!variants, !inputs, !outputs)

let cell_bitmap t =
  let bitmap = Bytes.make ((Plan.total + 7) / 8) '\000' in
  Array.iteri
    (fun id cell ->
      if cell_count t cell > 0 then
        Bytes.set bitmap (id / 8)
          (Char.chr (Char.code (Bytes.get bitmap (id / 8)) lor (1 lsl (id mod 8)))))
    Plan.cells;
  bitmap

(* --- config-sharded matrix accumulator --- *)

module Matrix = struct
  type t = { shards : Dense.t option array }

  type stats = { m_configs : int; m_allocated : int; m_words : int }

  let create ~configs =
    if configs <= 0 then invalid_arg "Coverage.Matrix.create: configs <= 0";
    { shards = Array.make configs None }

  let configs t = Array.length t.shards

  let peek t config_id = t.shards.(config_id)

  let shard t config_id =
    match t.shards.(config_id) with
    | Some d -> d
    | None ->
      let d = Dense.create () in
      t.shards.(config_id) <- Some d;
      d

  let observe t ~config_id call outcome = Dense.observe (shard t config_id) call outcome

  let observe_input_only t ~config_id call =
    Dense.observe_input_only (shard t config_id) call

  let stats t =
    let allocated =
      Array.fold_left
        (fun n -> function Some _ -> n + 1 | None -> n)
        0 t.shards
    in
    { m_configs = Array.length t.shards; m_allocated = allocated;
      m_words = allocated * Plan.total }

  let calls_observed t =
    Array.fold_left
      (fun n -> function Some d -> n + Dense.calls_observed d | None -> n)
      0 t.shards

  let cell_count t ~config_id cell =
    match t.shards.(config_id) with
    | Some d -> Dense.cell_count d cell
    | None -> 0

  let matrix_count t id =
    cell_count t ~config_id:(Plan.Matrix.config_of id) (Plan.Matrix.cell_of id)

  let merge_into ~dst src =
    if Array.length dst.shards <> Array.length src.shards then
      invalid_arg "Coverage.Matrix.merge_into: lattice size mismatch";
    Array.iteri
      (fun i -> function
        | None -> ()
        | Some s -> Dense.merge_into ~dst:(shard dst i) s)
      src.shards

  let snapshot t = { shards = Array.map (Option.map Dense.snapshot) t.shards }

  let reset t = Array.iteri (fun i _ -> t.shards.(i) <- None) t.shards

  let to_reference ?metered t =
    let out = ref [] in
    Array.iteri
      (fun i -> function
        | None -> ()
        | Some d -> out := (i, Dense.to_reference ?metered d) :: !out)
      t.shards;
    List.rev !out
end
