open Iocov_syscall
module Histogram = Iocov_util.Histogram
module Metrics = Iocov_obs.Metrics

let m_calls =
  Metrics.counter Metrics.default "iocov_coverage_calls_total"
    ~help:"Syscalls observed by the coverage accumulator."

let m_update kind =
  Metrics.counter Metrics.default "iocov_coverage_updates_total"
    ~labels:[ ("table", kind) ]
    ~help:"Partition-table updates by table kind."

let m_input_updates = m_update "input"
let m_output_updates = m_update "output"
let m_variant_updates = m_update "variant"
let m_flag_set_updates = m_update "flag_set"

type t = {
  inputs : (Arg_class.arg, Partition.t Histogram.t) Hashtbl.t;
  outputs : (Model.base, Partition.output Histogram.t) Hashtbl.t;
  variants : Model.variant Histogram.t;
  flag_sets : Open_flags.t Histogram.t;
  mutable calls : int;
  metered : bool;
}

let create ?(metered = true) () =
  {
    inputs = Hashtbl.create 16;
    outputs = Hashtbl.create 16;
    variants = Histogram.create ~compare:Stdlib.compare;
    flag_sets = Histogram.create ~compare:Stdlib.compare;
    calls = 0;
    metered;
  }

let input_hist t arg =
  match Hashtbl.find_opt t.inputs arg with
  | Some h -> h
  | None ->
    let h = Histogram.create ~compare:Partition.compare in
    Hashtbl.add t.inputs arg h;
    h

let output_hist t base =
  match Hashtbl.find_opt t.outputs base with
  | Some h -> h
  | None ->
    let h = Histogram.create ~compare:Partition.compare_output in
    Hashtbl.add t.outputs base h;
    h

let observe_input_only t call =
  t.calls <- t.calls + 1;
  if t.metered then Metrics.Counter.incr m_calls;
  Histogram.add t.variants (Model.variant_of_call call);
  if t.metered then Metrics.Counter.incr m_variant_updates;
  List.iter
    (fun (arg, part) ->
      Histogram.add (input_hist t arg) part;
      if t.metered then Metrics.Counter.incr m_input_updates)
    (Partition.of_call call);
  match call with
  | Model.Open_call { flags; _ } ->
    Histogram.add t.flag_sets flags;
    if t.metered then Metrics.Counter.incr m_flag_set_updates
  | _ -> ()

let observe t call outcome =
  observe_input_only t call;
  let base = Model.base_of_call call in
  Histogram.add (output_hist t base) (Partition.output_of base outcome);
  if t.metered then Metrics.Counter.incr m_output_updates

(* Table sizes are per-accumulator, so they are published on demand for
   one chosen instance (the run's accumulator) rather than streamed —
   several coverage objects can live at once (per-test attribution,
   ablations) and streaming would mix them. *)
let publish_gauges t =
  let g name help =
    Metrics.gauge Metrics.default ("iocov_coverage_" ^ name) ~help
  in
  let distinct_sum tbl =
    Hashtbl.fold (fun _ h acc -> acc + Histogram.distinct h) tbl 0
  in
  Metrics.Gauge.set (g "input_tables" "Tracked arguments with observations.")
    (Hashtbl.length t.inputs);
  Metrics.Gauge.set (g "output_tables" "Base syscalls with observed outputs.")
    (Hashtbl.length t.outputs);
  Metrics.Gauge.set
    (g "distinct_input_partitions" "Distinct input partitions hit, all arguments.")
    (distinct_sum t.inputs);
  Metrics.Gauge.set
    (g "distinct_output_partitions" "Distinct output partitions hit, all bases.")
    (distinct_sum t.outputs);
  Metrics.Gauge.set (g "distinct_variants" "Distinct syscall variants observed.")
    (Histogram.distinct t.variants);
  Metrics.Gauge.set (g "distinct_flag_sets" "Distinct exact open-flag sets observed.")
    (Histogram.distinct t.flag_sets)

let merge_into ~dst src =
  dst.calls <- dst.calls + src.calls;
  Histogram.merge_into ~dst:dst.variants src.variants;
  Histogram.merge_into ~dst:dst.flag_sets src.flag_sets;
  Hashtbl.iter
    (fun arg h -> Histogram.merge_into ~dst:(input_hist dst arg) h)
    src.inputs;
  Hashtbl.iter
    (fun base h -> Histogram.merge_into ~dst:(output_hist dst base) h)
    src.outputs

let copy t =
  let fresh = create ~metered:t.metered () in
  merge_into ~dst:fresh t;
  fresh

(* Credit this accumulator's counts to the global iocov_coverage_*
   counters in one batch — exactly the increments the per-event metered
   path would have made, since every [observe] adds one entry per
   touched table.  The parallel pipeline calls this once after merging
   its unmetered shards, keeping counter totals identical to a
   sequential run without per-event atomic traffic from the workers. *)
let meter_counts t =
  let table_total tbl = Hashtbl.fold (fun _ h acc -> acc + Histogram.total h) tbl 0 in
  Metrics.Counter.add m_calls t.calls;
  Metrics.Counter.add m_variant_updates (Histogram.total t.variants);
  Metrics.Counter.add m_flag_set_updates (Histogram.total t.flag_sets);
  Metrics.Counter.add m_input_updates (table_total t.inputs);
  Metrics.Counter.add m_output_updates (table_total t.outputs)

let input_count t arg part = Histogram.count (input_hist t arg) part
let input_histogram t arg = Histogram.to_sorted (input_hist t arg)

let input_series t arg =
  let h = input_hist t arg in
  List.map (fun p -> (p, Histogram.count h p)) (Partition.domain arg)

let untested_inputs t arg =
  let h = input_hist t arg in
  List.filter (fun p -> not (Histogram.mem h p)) (Partition.domain arg)

let input_coverage_ratio t arg =
  let dom = Partition.domain arg in
  let h = input_hist t arg in
  let covered = List.length (List.filter (Histogram.mem h) dom) in
  float_of_int covered /. float_of_int (List.length dom)

let input_coverage_ratio_of_base t base =
  match Arg_class.args_of_base base with
  | [] -> 1.0
  | args ->
    let sum = List.fold_left (fun acc a -> acc +. input_coverage_ratio t a) 0.0 args in
    sum /. float_of_int (List.length args)

let output_count t base out = Histogram.count (output_hist t base) out
let output_histogram t base = Histogram.to_sorted (output_hist t base)

let output_series t base =
  let h = output_hist t base in
  let dom = Partition.output_domain base in
  let in_domain = List.map (fun o -> (o, Histogram.count h o)) dom in
  let extras =
    List.filter (fun (o, _) -> not (List.exists (Partition.equal_output o) dom))
      (Histogram.to_sorted h)
  in
  in_domain @ extras

let output_series_grouped t base =
  let series = output_series t base in
  let ok_total =
    List.fold_left
      (fun acc (o, n) ->
        match Partition.output_success_group o with `Ok -> acc + n | `Err _ -> acc)
      0 series
  in
  let errs =
    List.filter_map
      (fun (o, n) ->
        match Partition.output_success_group o with
        | `Ok -> None
        | `Err e -> Some (`Err e, n))
      series
  in
  (`Ok, ok_total) :: errs

let untested_outputs t base =
  let h = output_hist t base in
  List.filter (fun o -> not (Histogram.mem h o)) (Partition.output_domain base)

let output_coverage_ratio t base =
  let dom = Partition.output_domain base in
  let h = output_hist t base in
  let covered = List.length (List.filter (Histogram.mem h) dom) in
  float_of_int covered /. float_of_int (List.length dom)

let calls_observed t = t.calls

let base_calls t base =
  List.fold_left
    (fun acc v -> acc + Histogram.count t.variants v)
    0
    (Model.variants_of_base base)

let variant_calls t v = Histogram.count t.variants v
let open_flag_sets t = Histogram.to_sorted t.flag_sets
let variant_histogram t = Histogram.to_sorted t.variants

let add_input t arg part count = Histogram.add (input_hist t arg) ~count part
let add_output t base out count = Histogram.add (output_hist t base) ~count out
let add_variant t v count = Histogram.add t.variants ~count v
let add_flag_set t mask count = Histogram.add t.flag_sets ~count mask

let add_calls t n =
  if n < 0 then invalid_arg "Coverage.add_calls: negative";
  t.calls <- t.calls + n
