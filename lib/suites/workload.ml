open Iocov_syscall
module Tracer = Iocov_trace.Tracer
module Fs = Iocov_vfs.Fs
module Prng = Iocov_util.Prng

type ctx = {
  tracer : Tracer.t;
  rng : Prng.t;
  mount : string;
  mutable name_counter : int;
  mutable failures : string list;
  mutable current_test : string;
}

let fs ctx = Tracer.fs ctx.tracer

let call ctx c = Tracer.exec ctx.tracer c
let aux ctx a = Tracer.exec_aux ctx.tracer a

let init ?config ?(comm = "tester") ~mount ~seed () =
  let filesystem = Fs.create ?config () in
  (* A read-only configuration still needs its mount point: real testers
     mkfs and populate the device read-write, then mount read-only.
     Model that by preparing the hierarchy writable and remounting
     read-only after the durability sync below. *)
  let pinned_ro = Fs.is_read_only filesystem in
  if pinned_ro then Fs.set_read_only filesystem false;
  let tracer = Tracer.create ~comm filesystem in
  let ctx =
    { tracer; rng = Prng.create ~seed; mount; name_counter = 0; failures = [];
      current_test = "setup" }
  in
  (* mkdir -p the mount point, traced: mount preparation is part of what a
     real tester's trace contains. *)
  let components = List.filter (fun c -> c <> "") (String.split_on_char '/' mount) in
  let _ =
    List.fold_left
      (fun prefix comp ->
        let dir = prefix ^ "/" ^ comp in
        ignore (call ctx (Model.mkdir ~mode:0o755 dir));
        dir)
      "" components
  in
  (* a mounted file system's root is durable (mkfs + mount survive power
     loss); without this, crash tests would legally lose the mount point *)
  ignore (aux ctx Iocov_vfs.Fs.Sync);
  if pinned_ro then Fs.set_read_only filesystem true;
  ctx

let begin_test ctx name = ctx.current_test <- name

let fail ctx msg =
  ctx.failures <- Printf.sprintf "%s: %s" ctx.current_test msg :: ctx.failures

let failures ctx = List.rev ctx.failures

let open_fd ctx ?variant ?mode ~flags path =
  match call ctx (Model.open_ ?variant ?mode ~flags path) with
  | Model.Ret fd -> Some fd
  | Model.Err _ -> None

let close_fd ctx fd = ignore (call ctx (Model.close fd))

let write_fd ctx ?variant ?offset fd count =
  call ctx (Model.write ?variant ?offset ~fd ~count ())

let read_fd ctx ?variant ?offset fd count =
  call ctx (Model.read ?variant ?offset ~fd ~count ())

let fresh_name ctx stem =
  ctx.name_counter <- ctx.name_counter + 1;
  Printf.sprintf "%s/%s%d" ctx.mount stem ctx.name_counter

let fresh_dir ctx =
  let path = fresh_name ctx "d" in
  ignore (call ctx (Model.mkdir ~mode:0o755 path));
  path

let make_file ctx ?(size = 0) name =
  let path =
    if String.length name > 0 && name.[0] = '/' then name else fresh_name ctx name
  in
  (match
     open_fd ctx ~mode:0o644
       ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ])
       path
   with
   | Some fd ->
     if size > 0 then ignore (write_fd ctx fd size);
     close_fd ctx fd
   | None -> fail ctx (Printf.sprintf "could not create %s" path));
  path

let expect_ok ctx what = function
  | Model.Ret _ -> ()
  | Model.Err e ->
    fail ctx (Printf.sprintf "%s: expected success, got %s" what (Errno.to_string e))

let expect_ret ctx what expected = function
  | Model.Ret n when n = expected -> ()
  | Model.Ret n -> fail ctx (Printf.sprintf "%s: expected %d, got %d" what expected n)
  | Model.Err e ->
    fail ctx (Printf.sprintf "%s: expected %d, got %s" what expected (Errno.to_string e))

let expect_err ctx what expected = function
  | Model.Err e when Errno.equal e expected -> ()
  | Model.Err e ->
    fail ctx
      (Printf.sprintf "%s: expected %s, got %s" what (Errno.to_string expected)
         (Errno.to_string e))
  | Model.Ret n ->
    fail ctx
      (Printf.sprintf "%s: expected %s, got success %d" what (Errno.to_string expected) n)

(* Out-of-mount traffic: every real tester reads configs and appends logs;
   the mount-point filter must drop all of this. *)
let noise ctx =
  let open Open_flags in
  ignore (call ctx (Model.mkdir ~mode:0o755 "/var"));
  ignore (call ctx (Model.mkdir ~mode:0o755 "/var/log"));
  (match open_fd ctx ~mode:0o644 ~flags:(of_flags [ O_WRONLY; O_CREAT; O_APPEND ]) "/var/log/tester.log" with
   | Some fd ->
     ignore (write_fd ctx fd (64 + Prng.int ctx.rng 64));
     close_fd ctx fd
   | None -> ());
  match open_fd ctx ~flags:(of_flags [ O_RDONLY ]) "/etc/tester.conf" with
  | Some fd -> close_fd ctx fd
  | None -> ()
