(** A CrashMonkey-shaped workload generator (Mohan et al., OSDI '18).

    CrashMonkey is a bounded black-box crash-consistency tester: it runs
    every length-1 sequence of a core file-system operation set against a
    small pre-made file hierarchy ("seq-1", 300 workloads), persists with
    fsync/sync, simulates a crash, and checks that persisted data
    survived.  This simulator reproduces that structure against
    {!Iocov_vfs.Fs} — including the crash and the oracle — and with it the
    statistical trace signature the paper measures: few thousand opens
    dominated by 3-4-flag combinations, a narrow set of write sizes, and
    a small error-code footprint (but [ENOTDIR], which its generic tests
    do hit). *)

val mount : string
(** ["/mnt/snapshot"] — CrashMonkey's mount point. *)

val comm : string

val seq1_workloads : int
(** 300: the paper runs "all of seq-1's 300 workloads". *)

val crash_scenarios : Iocov_crash.Engine.scenario list
(** CrashMonkey's seq-1 shape re-expressed as scenarios for the
    crash-state enumerator ({!Iocov_crash.Engine}): a shared pre-made
    hierarchy plus one persisted operation family per scenario
    ([cm-creat-fsync], [cm-append-sync], [cm-trunc-fsync],
    [cm-rename-fsync], [cm-unlink-sync], [cm-setxattr-fdatasync]).
    These run under {!Iocov_crash.Engine.mount}, not {!mount}. *)

type stats = {
  workloads_run : int;
  crashes_simulated : int;
  events_total : int;  (** all traced syscalls, before filtering *)
  events_kept : int;   (** records surviving the mount-point filter *)
}

val run :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list ->
  ?config:Iocov_vfs.Config.t ->
  ?sink:(Iocov_trace.Event.t -> unit) ->
  ?dispatch:(Iocov_trace.Event.t -> unit) -> ?seq2:int ->
  coverage:Iocov_core.Coverage.t -> unit -> string list * stats
(** Run the suite; coverage accumulates through the mount-point filter
    into [coverage].  Returns the oracle failures (crash-consistency
    violations and unexpected outcomes — empty on a correct file system)
    and run statistics.  [scale] multiplies per-workload iteration
    counts; [faults] are planted in the file system under test; [seq2]
    adds that many sampled length-2 operation sequences (the seq-2
    workloads of CrashMonkey's bounded search; the paper's evaluation
    runs seq-1 only, so the default is 0).

    [dispatch] hands every raw event to an external analysis pipeline
    (e.g. [Iocov_par.Replay.sink]) {e instead of} the inline
    filter-and-observe path: [coverage] is left untouched and
    [events_kept] stays 0 — the caller takes both from the pipeline's
    merge. *)
