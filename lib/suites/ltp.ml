open Iocov_syscall
open Iocov_vfs
module Prng = Iocov_util.Prng
module Coverage = Iocov_core.Coverage
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Tracer = Iocov_trace.Tracer
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span

let m_cases =
  Metrics.counter Metrics.default "iocov_suite_tests_total"
    ~labels:[ ("suite", "ltp") ]
    ~help:"Simulated tests executed."

let mount = "/mnt/ltp"
let comm = "ltp"

type stats = {
  testcases_run : int;
  events_total : int;
  events_kept : int;
}

type config_kind = Default | Small

(* LTP opens are plain: one or two flags, no exotic combinations. *)
let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ]
let wronly = Open_flags.of_flags Open_flags.[ O_WRONLY ]
let rdwr = Open_flags.of_flags Open_flags.[ O_RDWR ]
let creat = Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ]
let creat_rw = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ]

let with_fd ctx ?(flags = creat_rw) path f =
  match Workload.open_fd ctx ~mode:0o644 ~flags path with
  | Some fd ->
    f fd;
    Workload.close_fd ctx fd
  | None -> Workload.fail ctx ("setup open failed for " ^ path)

(* --- per-syscall errno testcases, LTP style: one documented failure
   condition per case, asserting the exact error code --- *)

let open_cases =
  let open Workload in
  [ ("open01", Default, fun ctx ->
        (* success + ENOENT, the canonical first case *)
        (match open_fd ctx ~mode:0o644 ~flags:creat (fresh_name ctx "f") with
         | Some fd -> close_fd ctx fd
         | None -> fail ctx "create failed");
        expect_err ctx "open02 ENOENT" Errno.ENOENT
          (call ctx (Model.open_ ~flags:rdonly (ctx.mount ^ "/enoent"))));
    ("open03", Default, fun ctx ->
        let f = make_file ctx "x" in
        expect_err ctx "EEXIST" Errno.EEXIST
          (call ctx
             (Model.open_ ~mode:0o644
                ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_EXCL ]) f)));
    ("open04", Small, fun ctx ->
        let f = make_file ctx "x" in
        let limit = (Fs.config (fs ctx)).Config.max_open_files in
        let fds = ref [] in
        let hit = ref false in
        for _ = 1 to limit + 2 do
          match call ctx (Model.open_ ~flags:rdonly f) with
          | Model.Ret fd -> fds := fd :: !fds
          | Model.Err Errno.EMFILE -> hit := true
          | Model.Err e -> fail ctx ("unexpected " ^ Errno.to_string e)
        done;
        if not !hit then fail ctx "EMFILE not reached";
        List.iter (close_fd ctx) !fds);
    ("open05", Default, fun ctx ->
        let secret = make_file ctx "secret" in
        expect_ok ctx "restrict" (call ctx (Model.chmod ~target:(Model.Path secret) ~mode:0o600 ()));
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        expect_err ctx "EACCES" Errno.EACCES (call ctx (Model.open_ ~flags:rdonly secret));
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0);
    ("open06", Default, fun ctx ->
        expect_err ctx "EISDIR" Errno.EISDIR (call ctx (Model.open_ ~flags:wronly ctx.mount)));
    ("open07", Default, fun ctx ->
        let a = ctx.mount ^ "/la" and b = ctx.mount ^ "/lb" in
        ignore (aux ctx (Fs.Symlink (a, b)));
        ignore (aux ctx (Fs.Symlink (b, a)));
        expect_err ctx "ELOOP" Errno.ELOOP (call ctx (Model.open_ ~flags:rdonly a)));
    ("open08", Default, fun ctx ->
        expect_err ctx "ENAMETOOLONG" Errno.ENAMETOOLONG
          (call ctx (Model.open_ ~flags:rdonly (ctx.mount ^ "/" ^ String.make 300 'n'))));
    ("open09", Default, fun ctx ->
        let f = make_file ctx "plain" in
        expect_err ctx "ENOTDIR" Errno.ENOTDIR
          (call ctx (Model.open_ ~flags:rdonly (f ^ "/below"))));
    ("open10", Default, fun ctx ->
        let prog = make_file ctx "prog" in
        ignore (Fs.set_executing (fs ctx) prog true);
        expect_err ctx "ETXTBSY" Errno.ETXTBSY (call ctx (Model.open_ ~flags:wronly prog)));
    ("open11", Default, fun ctx ->
        let f = make_file ctx "ro" in
        let was = Fs.is_read_only (fs ctx) in
        Fs.set_read_only (fs ctx) true;
        expect_err ctx "EROFS" Errno.EROFS (call ctx (Model.open_ ~flags:wronly f));
        Fs.set_read_only (fs ctx) was);
    ("open12", Default, fun ctx ->
        ignore (Fs.mknod_special (fs ctx) (ctx.mount ^ "/fifo") `Fifo);
        expect_err ctx "ENXIO" Errno.ENXIO
          (call ctx
             (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY; O_NONBLOCK ])
                (ctx.mount ^ "/fifo"))));
    ("open13", Default, fun ctx ->
        ignore (Fs.mknod_special (fs ctx) (ctx.mount ^ "/dev") (`Device false));
        expect_err ctx "ENODEV" Errno.ENODEV
          (call ctx (Model.open_ ~flags:rdonly (ctx.mount ^ "/dev"))));
    ("open14", Default, fun ctx ->
        let frozen = make_file ctx "frozen" in
        ignore (Fs.set_immutable (fs ctx) frozen true);
        expect_err ctx "EPERM" Errno.EPERM (call ctx (Model.open_ ~flags:wronly frozen)));
    ("open15", Default, fun ctx ->
        let busy = make_file ctx "busy" in
        ignore (Fs.set_busy (fs ctx) busy true);
        expect_err ctx "EBUSY" Errno.EBUSY (call ctx (Model.open_ ~flags:rdonly busy)));
    ("open16", Default, fun ctx ->
        Fs.inject_errno (fs ctx) ~base:Model.Open Errno.EINTR;
        expect_err ctx "EINTR" Errno.EINTR
          (call ctx (Model.open_ ~flags:rdonly (ctx.mount ^ "/any")));
        Fs.inject_errno (fs ctx) ~base:Model.Open Errno.EFAULT;
        expect_err ctx "EFAULT" Errno.EFAULT
          (call ctx (Model.open_ ~flags:rdonly (ctx.mount ^ "/any"))));
    ("open17", Default, fun ctx ->
        expect_err ctx "EINVAL tmpfile" Errno.EINVAL
          (call ctx
             (Model.open_ ~mode:0o600 ~flags:Open_flags.(of_flags [ O_RDONLY; O_TMPFILE ])
                ctx.mount))) ]

let read_write_cases =
  let open Workload in
  [ ("write01", Default, fun ctx ->
        let f = make_file ctx "w" in
        with_fd ctx ~flags:rdwr f (fun fd ->
            List.iter
              (fun size -> expect_ret ctx "write sizes" size (write_fd ctx fd size))
              [ 1; 512; 4096; 8192 ];
            expect_ret ctx "write 0" 0 (write_fd ctx fd 0)));
    ("read01", Default, fun ctx ->
        let f = make_file ctx ~size:8192 "r" in
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_ret ctx "read" 4096 (read_fd ctx fd 4096);
            expect_ret ctx "read rest" 4096 (read_fd ctx fd 100000);
            expect_ret ctx "read eof" 0 (read_fd ctx fd 512)));
    ("read02", Default, fun ctx ->
        expect_err ctx "EBADF" Errno.EBADF (read_fd ctx 99 16);
        let f = make_file ctx "r2" in
        with_fd ctx ~flags:wronly f (fun fd ->
            expect_err ctx "EBADF write-only" Errno.EBADF (read_fd ctx fd 16)));
    ("read03", Default, fun ctx ->
        let f = make_file ctx ~size:16 "r3" in
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_err ctx "EINVAL pread" Errno.EINVAL
              (read_fd ctx ~variant:Model.Sys_pread64 ~offset:(-1) fd 8));
        Fs.inject_errno (fs ctx) ~base:Model.Read Errno.EINTR;
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_err ctx "EINTR" Errno.EINTR (read_fd ctx fd 8)));
    ("read04", Default, fun ctx ->
        ignore (Fs.mknod_special (fs ctx) (ctx.mount ^ "/p") `Fifo);
        (match
           open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK ]) (ctx.mount ^ "/p")
         with
         | Some fd ->
           expect_err ctx "EAGAIN" Errno.EAGAIN (read_fd ctx fd 64);
           close_fd ctx fd
         | None -> fail ctx "fifo open failed"));
    ("write02", Default, fun ctx ->
        expect_err ctx "EBADF" Errno.EBADF (write_fd ctx 99 16);
        let f = make_file ctx "w2" in
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_err ctx "EBADF read-only" Errno.EBADF (write_fd ctx fd 16)));
    ("write03", Small, fun ctx ->
        let limit = (Fs.config (fs ctx)).Config.max_file_size in
        let f = make_file ctx "w3" in
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_err ctx "EFBIG" Errno.EFBIG
              (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:limit fd 1)));
    ("write04", Small, fun ctx ->
        (* fill the 4 MiB device *)
        let hit = ref false in
        let n = ref 0 in
        while (not !hit) && !n < 8 do
          incr n;
          match open_fd ctx ~mode:0o644 ~flags:creat (fresh_name ctx "fill") with
          | None -> hit := true
          | Some fd ->
            (match write_fd ctx fd (900 * 1024) with
             | Model.Err Errno.ENOSPC -> hit := true
             | Model.Ret k when k < 900 * 1024 -> hit := true
             | _ -> ());
            close_fd ctx fd
        done;
        if not !hit then fail ctx "ENOSPC not reached");
    ("write05", Small, fun ctx ->
        expect_ok ctx "open mount" (call ctx (Model.chmod ~target:(Model.Path ctx.mount) ~mode:0o777 ()));
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        let hit = ref false in
        let n = ref 0 in
        while (not !hit) && !n < 8 do
          incr n;
          match open_fd ctx ~mode:0o644 ~flags:creat (fresh_name ctx "q") with
          | None -> hit := true
          | Some fd ->
            (match write_fd ctx fd (700 * 1024) with
             | Model.Err Errno.EDQUOT -> hit := true
             | _ -> ());
            close_fd ctx fd
        done;
        if not !hit then fail ctx "EDQUOT not reached";
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0);
    ("write06", Default, fun ctx ->
        let f = make_file ctx "w6" in
        Fs.inject_errno (fs ctx) ~base:Model.Write Errno.EFAULT;
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_err ctx "EFAULT" Errno.EFAULT (write_fd ctx fd 64));
        Fs.inject_errno (fs ctx) ~base:Model.Write Errno.EIO;
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_err ctx "EIO" Errno.EIO (write_fd ctx fd 64));
        Fs.inject_errno (fs ctx) ~base:Model.Write Errno.EINTR;
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_err ctx "EINTR" Errno.EINTR (write_fd ctx fd 64))) ]

let lseek_cases =
  let open Workload in
  [ ("lseek01", Default, fun ctx ->
        let f = make_file ctx ~size:1024 "s" in
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_ret ctx "SET" 100 (call ctx (Model.lseek ~fd ~offset:100 ~whence:Whence.SEEK_SET));
            expect_ret ctx "CUR" 110 (call ctx (Model.lseek ~fd ~offset:10 ~whence:Whence.SEEK_CUR));
            expect_ret ctx "END" 1024 (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_END))));
    ("lseek02", Default, fun ctx ->
        expect_err ctx "EBADF" Errno.EBADF
          (call ctx (Model.lseek ~fd:99 ~offset:0 ~whence:Whence.SEEK_SET));
        let f = make_file ctx ~size:64 "s2" in
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_err ctx "EINVAL" Errno.EINVAL
              (call ctx (Model.lseek ~fd ~offset:(-100) ~whence:Whence.SEEK_SET));
            expect_err ctx "EOVERFLOW" Errno.EOVERFLOW
              (call ctx (Model.lseek ~fd ~offset:(1 lsl 61) ~whence:Whence.SEEK_SET))));
    ("lseek03", Default, fun ctx ->
        let f = make_file ctx ~size:4096 "s3" in
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_ret ctx "DATA" 0 (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_DATA));
            expect_ret ctx "HOLE" 4096 (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_HOLE));
            expect_err ctx "ENXIO" Errno.ENXIO
              (call ctx (Model.lseek ~fd ~offset:9999 ~whence:Whence.SEEK_DATA))));
    ("lseek04", Default, fun ctx ->
        ignore (Fs.mknod_special (fs ctx) (ctx.mount ^ "/sp") `Fifo);
        (match
           open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK ]) (ctx.mount ^ "/sp")
         with
         | Some fd ->
           expect_err ctx "ESPIPE" Errno.ESPIPE
             (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
           close_fd ctx fd
         | None -> fail ctx "fifo open failed")) ]

let truncate_cases =
  let open Workload in
  [ ("truncate01", Default, fun ctx ->
        let f = make_file ctx ~size:1000 "t" in
        expect_ok ctx "shrink" (call ctx (Model.truncate ~target:(Model.Path f) ~length:10 ()));
        expect_ok ctx "grow" (call ctx (Model.truncate ~target:(Model.Path f) ~length:5000 ())));
    ("truncate02", Default, fun ctx ->
        expect_err ctx "ENOENT" Errno.ENOENT
          (call ctx (Model.truncate ~target:(Model.Path (ctx.mount ^ "/no")) ~length:0 ()));
        expect_err ctx "EISDIR" Errno.EISDIR
          (call ctx (Model.truncate ~target:(Model.Path ctx.mount) ~length:0 ()));
        let f = make_file ctx "t2" in
        expect_err ctx "EINVAL" Errno.EINVAL
          (call ctx (Model.truncate ~target:(Model.Path f) ~length:(-5) ()));
        expect_err ctx "ENOTDIR" Errno.ENOTDIR
          (call ctx (Model.truncate ~target:(Model.Path (f ^ "/x")) ~length:0 ())));
    ("truncate03", Small, fun ctx ->
        let f = make_file ctx "t3" in
        let limit = (Fs.config (fs ctx)).Config.max_file_size in
        expect_err ctx "EFBIG" Errno.EFBIG
          (call ctx (Model.truncate ~target:(Model.Path f) ~length:(limit + 1) ())));
    ("truncate04", Default, fun ctx ->
        let f = make_file ctx "t4" in
        expect_ok ctx "restrict" (call ctx (Model.chmod ~target:(Model.Path f) ~mode:0o444 ()));
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        expect_err ctx "EACCES" Errno.EACCES
          (call ctx (Model.truncate ~target:(Model.Path f) ~length:0 ()));
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0;
        let was = Fs.is_read_only (fs ctx) in
        Fs.set_read_only (fs ctx) true;
        expect_err ctx "EROFS" Errno.EROFS
          (call ctx (Model.truncate ~target:(Model.Path f) ~length:0 ()));
        Fs.set_read_only (fs ctx) was;
        let prog = make_file ctx "t4prog" in
        ignore (Fs.set_executing (fs ctx) prog true);
        expect_err ctx "ETXTBSY" Errno.ETXTBSY
          (call ctx (Model.truncate ~target:(Model.Path prog) ~length:0 ()));
        let frozen = make_file ctx "t4frozen" in
        ignore (Fs.set_immutable (fs ctx) frozen true);
        expect_err ctx "EPERM" Errno.EPERM
          (call ctx (Model.truncate ~target:(Model.Path frozen) ~length:0 ())));
    ("ftruncate01", Default, fun ctx ->
        expect_err ctx "EBADF" Errno.EBADF
          (call ctx (Model.truncate ~target:(Model.Fd 99) ~length:0 ()));
        let f = make_file ctx ~size:100 "ft" in
        with_fd ctx ~flags:rdwr f (fun fd ->
            expect_ok ctx "ftruncate" (call ctx (Model.truncate ~target:(Model.Fd fd) ~length:10 ())));
        with_fd ctx ~flags:rdonly f (fun fd ->
            expect_err ctx "EINVAL ro fd" Errno.EINVAL
              (call ctx (Model.truncate ~target:(Model.Fd fd) ~length:0 ())))) ]

let metadata_cases =
  let open Workload in
  [ ("mkdir01", Default, fun ctx ->
        expect_ok ctx "mkdir" (call ctx (Model.mkdir ~mode:0o755 (fresh_name ctx "d")));
        expect_err ctx "EEXIST" Errno.EEXIST (call ctx (Model.mkdir ~mode:0o755 ctx.mount));
        expect_err ctx "ENOENT" Errno.ENOENT
          (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/a/b/c")));
        expect_err ctx "EINVAL" Errno.EINVAL
          (call ctx (Model.mkdir ~mode:0o400000 (fresh_name ctx "d"))));
    ("mkdir02", Default, fun ctx ->
        let f = make_file ctx "m" in
        expect_err ctx "ENOTDIR" Errno.ENOTDIR (call ctx (Model.mkdir ~mode:0o755 (f ^ "/d")));
        expect_err ctx "ENAMETOOLONG" Errno.ENAMETOOLONG
          (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/" ^ String.make 256 'd')));
        let was = Fs.is_read_only (fs ctx) in
        Fs.set_read_only (fs ctx) true;
        expect_err ctx "EROFS" Errno.EROFS (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/ro")));
        Fs.set_read_only (fs ctx) was;
        let priv = fresh_dir ctx in
        expect_ok ctx "restrict" (call ctx (Model.chmod ~target:(Model.Path priv) ~mode:0o500 ()));
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        expect_err ctx "EACCES" Errno.EACCES (call ctx (Model.mkdir ~mode:0o755 (priv ^ "/d")));
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0);
    ("chmod01", Default, fun ctx ->
        let f = make_file ctx "c" in
        List.iter
          (fun mode -> expect_ok ctx "chmod" (call ctx (Model.chmod ~target:(Model.Path f) ~mode ())))
          [ 0; 0o444; 0o644; 0o755; 0o777; 0o4755; 0o2755; 0o1777; 0o7777 ];
        expect_err ctx "EINVAL" Errno.EINVAL
          (call ctx (Model.chmod ~target:(Model.Path f) ~mode:0o200000 ())));
    ("chmod02", Default, fun ctx ->
        expect_err ctx "ENOENT" Errno.ENOENT
          (call ctx (Model.chmod ~target:(Model.Path (ctx.mount ^ "/no")) ~mode:0o644 ()));
        let f = make_file ctx "c2" in
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        expect_err ctx "EPERM" Errno.EPERM
          (call ctx (Model.chmod ~target:(Model.Path f) ~mode:0o777 ()));
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0;
        expect_err ctx "EBADF" Errno.EBADF
          (call ctx (Model.chmod ~variant:Model.Sys_fchmod ~target:(Model.Fd 99) ~mode:0o644 ())));
    ("close01", Default, fun ctx ->
        let f = make_file ctx "cl" in
        (match open_fd ctx ~flags:rdonly f with
         | Some fd ->
           expect_ok ctx "close" (call ctx (Model.close fd));
           expect_err ctx "EBADF" Errno.EBADF (call ctx (Model.close fd))
         | None -> fail ctx "open failed");
        Fs.inject_errno (fs ctx) ~base:Model.Close Errno.EINTR;
        (match open_fd ctx ~flags:rdonly f with
         | Some fd ->
           expect_err ctx "EINTR" Errno.EINTR (call ctx (Model.close fd));
           ignore (call ctx (Model.close fd))
         | None -> fail ctx "open failed"));
    ("chdir01", Default, fun ctx ->
        let d = fresh_dir ctx in
        expect_ok ctx "chdir" (call ctx (Model.chdir (Model.Path d)));
        expect_ok ctx "back" (call ctx (Model.chdir (Model.Path ctx.mount)));
        expect_err ctx "ENOENT" Errno.ENOENT (call ctx (Model.chdir (Model.Path (ctx.mount ^ "/no"))));
        let f = make_file ctx "cd" in
        expect_err ctx "ENOTDIR" Errno.ENOTDIR (call ctx (Model.chdir (Model.Path f)));
        expect_err ctx "EBADF" Errno.EBADF (call ctx (Model.chdir (Model.Fd 99)))) ]

let xattr_cases =
  let open Workload in
  [ ("setxattr01", Default, fun ctx ->
        let f = make_file ctx "x" in
        let t = Model.Path f in
        expect_ok ctx "set" (call ctx (Model.setxattr ~target:t ~name:"user.v" ~size:128 ()));
        expect_ret ctx "get" 128 (call ctx (Model.getxattr ~target:t ~name:"user.v" ~size:1024 ()));
        expect_err ctx "E2BIG" Errno.E2BIG
          (call ctx (Model.setxattr ~target:t ~name:"user.big" ~size:70000 ()));
        expect_err ctx "EEXIST" Errno.EEXIST
          (call ctx (Model.setxattr ~flags:Xattr_flag.XATTR_CREATE ~target:t ~name:"user.v" ~size:1 ()));
        expect_err ctx "ENODATA" Errno.ENODATA
          (call ctx (Model.setxattr ~flags:Xattr_flag.XATTR_REPLACE ~target:t ~name:"user.no" ~size:1 ()));
        expect_err ctx "ENOTSUP" Errno.ENOTSUP
          (call ctx (Model.setxattr ~target:t ~name:"system.acl" ~size:4 ()));
        expect_err ctx "EINVAL" Errno.EINVAL
          (call ctx (Model.setxattr ~target:t ~name:"bare" ~size:4 ()));
        Fs.set_credentials (fs ctx) ~uid:1001 ~gid:1001;
        expect_err ctx "EPERM" Errno.EPERM
          (call ctx (Model.setxattr ~target:t ~name:"trusted.z" ~size:4 ()));
        Fs.set_credentials (fs ctx) ~uid:0 ~gid:0);
    ("setxattr02", Default, fun ctx ->
        let f = make_file ctx "x2" in
        let t = Model.Path f in
        let hit = ref false in
        for i = 1 to 8 do
          if not !hit then
            match call ctx (Model.setxattr ~target:t ~name:(Printf.sprintf "user.k%d" i) ~size:1024 ()) with
            | Model.Err Errno.ENOSPC -> hit := true
            | _ -> ()
        done;
        if not !hit then fail ctx "xattr ENOSPC not reached";
        let was = Fs.is_read_only (fs ctx) in
        Fs.set_read_only (fs ctx) true;
        expect_err ctx "EROFS" Errno.EROFS
          (call ctx (Model.setxattr ~target:t ~name:"user.ro" ~size:4 ()));
        Fs.set_read_only (fs ctx) was);
    ("getxattr01", Default, fun ctx ->
        let f = make_file ctx "x3" in
        let t = Model.Path f in
        expect_ok ctx "set" (call ctx (Model.setxattr ~target:t ~name:"user.g" ~size:64 ()));
        expect_ret ctx "query" 64 (call ctx (Model.getxattr ~target:t ~name:"user.g" ~size:0 ()));
        expect_err ctx "ERANGE" Errno.ERANGE
          (call ctx (Model.getxattr ~target:t ~name:"user.g" ~size:8 ()));
        expect_err ctx "ENODATA" Errno.ENODATA
          (call ctx (Model.getxattr ~target:t ~name:"user.none" ~size:64 ()));
        expect_err ctx "ENOENT" Errno.ENOENT
          (call ctx (Model.getxattr ~target:(Model.Path (ctx.mount ^ "/no")) ~name:"user.g" ~size:64 ()));
        expect_err ctx "EBADF" Errno.EBADF
          (call ctx (Model.getxattr ~target:(Model.Fd 99) ~name:"user.g" ~size:64 ()))) ]

(* data-path volume: modest success loops, LTP's "functional" cases *)
let functional_cases ~iters =
  let open Workload in
  [ ("fs_fill01", Default, fun ctx ->
        for _ = 1 to iters do
          let f = fresh_name ctx "fn" in
          with_fd ctx ~flags:creat_rw f (fun fd ->
              let size = Prng.weighted ctx.rng [ (4, 512); (4, 4096); (2, 16384) ] in
              expect_ret ctx "write" size (write_fd ctx fd size);
              expect_ret ctx "seek" 0 (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
              expect_ret ctx "read" size (read_fd ctx fd size));
          ignore (aux ctx (Fs.Unlink f))
        done);
    ("fs_meta01", Default, fun ctx ->
        for _ = 1 to max 1 (iters / 4) do
          let d = fresh_dir ctx in
          expect_ok ctx "chmod" (call ctx (Model.chmod ~target:(Model.Path d) ~mode:0o711 ()));
          ignore (aux ctx (Fs.Rmdir d))
        done) ]

let all_cases ~iters =
  open_cases @ read_write_cases @ lseek_cases @ truncate_cases @ metadata_cases
  @ xattr_cases @ functional_cases ~iters

let run ?(seed = 99) ?(scale = 1.0) ?(faults = []) ?config ?sink ?dispatch ~coverage () =
  let master = Prng.create ~seed in
  let failures = ref [] in
  let events_total = ref 0 in
  let events_kept = ref 0 in
  let filter = Filter.mount_point mount in
  let iters = max 1 (int_of_float (120.0 *. scale)) in
  let cases = all_cases ~iters in
  Span.with_ ~name:"ltp/cases" (fun () ->
  List.iter
    (fun (name, kind, body) ->
      Metrics.Counter.incr m_cases;
      let base =
        match config with
        | Some base -> base
        | None -> (match kind with Default -> Config.default | Small -> Config.small)
      in
      let config = Config.with_faults faults base in
      let ctx =
        Workload.init ~config ~comm ~mount ~seed:(Int64.to_int (Prng.next_int64 master)) ()
      in
      (match sink with
       | Some sink -> Tracer.on_event ctx.Workload.tracer sink
       | None -> ());
      (match dispatch with
       | Some d ->
         (* the pipeline owns filtering and accumulation; [events_kept]
            stays 0 here and the caller takes it from the merge *)
         Tracer.on_event ctx.Workload.tracer d
       | None ->
         Tracer.on_event ctx.Workload.tracer
           (Filter.sink filter (fun e ->
                incr events_kept;
                match e.Event.payload with
                | Event.Tracked call -> Coverage.observe coverage call e.Event.outcome
                | Event.Aux _ -> ())));
      Workload.begin_test ctx name;
      body ctx;
      events_total := !events_total + Tracer.events_emitted ctx.Workload.tracer;
      failures := List.rev_append (Workload.failures ctx) !failures)
    cases);
  ( List.rev !failures,
    { testcases_run = List.length cases;
      events_total = !events_total;
      events_kept = !events_kept } )
