(** An LTP-shaped regression suite (Linux Test Project).

    The paper's related work names LTP alongside xfstests as the other
    hand-written regression corpus.  LTP's style differs from xfstests in
    a way that shows up directly in input/output coverage: its per-syscall
    testcases ([open01]..[openNN], [write01].., ...) are {e errno-driven} —
    each case sets up one documented failure condition and asserts the
    exact error code — with comparatively little data-path volume.

    The simulator reproduces that signature: systematic probes for every
    reachable manual-page errno of each modeled syscall, small success
    loops, low absolute frequencies.  Against xfstests it demonstrates
    the paper's point that different testers over- and under-test
    different partitions: LTP's {e output} coverage rivals xfstests' at a
    tiny fraction of the events, while its input-size coverage is far
    narrower. *)

val mount : string
(** ["/mnt/ltp"] *)

val comm : string

type stats = {
  testcases_run : int;
  events_total : int;
  events_kept : int;
}

val run :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list ->
  ?config:Iocov_vfs.Config.t ->
  ?sink:(Iocov_trace.Event.t -> unit) ->
  ?dispatch:(Iocov_trace.Event.t -> unit) ->
  coverage:Iocov_core.Coverage.t -> unit -> string list * stats
(** Run the suite; returns oracle failures (each testcase asserts its
    expected errno) and statistics.

    [dispatch] hands every raw event to an external analysis pipeline
    (e.g. [Iocov_par.Replay.sink]) {e instead of} the inline
    filter-and-observe path: [coverage] is left untouched and
    [events_kept] stays 0 — the caller takes both from the pipeline's
    merge. *)
