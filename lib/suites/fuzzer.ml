open Iocov_syscall
module Prng = Iocov_util.Prng
module Coverage = Iocov_core.Coverage
module Partition = Iocov_core.Partition
module Arg_class = Iocov_core.Arg_class
module Fs = Iocov_vfs.Fs
module Config = Iocov_vfs.Config
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span

let m_fuzzer name help =
  Metrics.counter Metrics.default ("iocov_fuzzer_" ^ name) ~help

let m_executions = m_fuzzer "executions_total" "Fuzz programs executed."
let m_retained = m_fuzzer "corpus_retained_total" "Programs retained as interesting."
let m_crashes = m_fuzzer "crashes_total" "Fault-induced outcome divergences."

type feedback =
  | Outcome_novelty
  | Partition_novelty

let feedback_name = function
  | Outcome_novelty -> "outcome-novelty (path-style)"
  | Partition_novelty -> "partition-novelty (IOCov-guided)"

type result = {
  feedback : feedback;
  executions : int;
  corpus_size : int;
  coverage : Coverage.t;
  growth : (int * int) list;
  crashes : int;
}

(* A fuzz program is a short call sequence over a small name/descriptor
   universe; descriptors 3..6 may or may not be live at execution time —
   dangling uses are themselves interesting inputs (EBADF). *)
type program = Model.call list

let paths = [| "/f0"; "/f1"; "/d0/f"; "/d0"; "/sym"; "/missing" |]
let names = [| "user.a"; "user.b"; "trusted.t"; "system.s"; "x" |]

let pick_path rng = Prng.choose rng paths
let pick_fd rng = 3 + Prng.int rng 4

(* Numeric mutation is LOCAL: double, halve, nudge.  Reaching a far size
   bucket therefore requires a chain of retained stepping stones — which
   is precisely where the choice of feedback signal matters.  (A fuzzer
   that could jump anywhere would not need feedback at all.) *)
let mutate_size rng current =
  match Prng.int rng 8 with
  | 0 -> 0
  | 1 -> current + 1
  | 2 -> max 0 (current - 1)
  | 3 | 4 -> min (1 lsl 32) ((current * 2) + 1)
  | 5 -> current / 2
  | 6 -> current + Prng.int rng 64
  | _ -> max 0 (current - Prng.int rng 64)

let mutate_offset rng current =
  match Prng.int rng 6 with
  | 0 -> 0
  | 1 -> -abs current - 1
  | 2 | 3 -> (abs current * 2) + 1
  | 4 -> abs current / 2
  | _ -> abs current + Prng.int rng 4096

let mutate_flags rng current =
  match Prng.int rng 4 with
  | 0 ->
    (* flip one non-access flag *)
    let f = Prng.choose_list rng Open_flags.all in
    (match f with
     | Open_flags.O_RDONLY | Open_flags.O_WRONLY | Open_flags.O_RDWR -> current
     | f -> current lxor Open_flags.bit f)
  | 1 -> current land lnot 0o3 lor Prng.int rng 3 (* new access mode *)
  | 2 -> Open_flags.bit (Prng.choose_list rng Open_flags.all)
  | _ -> current

let mutate_mode rng _current = Prng.int rng 0o10000

let random_call rng : Model.call =
  match Prng.int rng 11 with
  | 0 ->
    Model.open_ ~flags:(mutate_flags rng 0) ~mode:(mutate_mode rng 0) (pick_path rng)
  | 1 -> Model.read ~fd:(pick_fd rng) ~count:(mutate_size rng 4096) ()
  | 2 -> Model.write ~fd:(pick_fd rng) ~count:(mutate_size rng 4096) ()
  | 3 ->
    Model.lseek ~fd:(pick_fd rng) ~offset:(mutate_offset rng 0)
      ~whence:(Prng.choose_list rng Whence.all)
  | 4 ->
    Model.truncate ~target:(Model.Path (pick_path rng)) ~length:(mutate_size rng 0) ()
  | 5 -> Model.mkdir ~mode:(mutate_mode rng 0o755) (pick_path rng)
  | 6 -> Model.chmod ~target:(Model.Path (pick_path rng)) ~mode:(mutate_mode rng 0o644) ()
  | 7 -> Model.close (pick_fd rng)
  | 8 -> Model.chdir (Model.Path (pick_path rng))
  | 9 ->
    Model.setxattr
      ~flags:(Prng.choose_list rng Xattr_flag.all)
      ~target:(Model.Path (pick_path rng)) ~name:(Prng.choose rng names)
      ~size:(mutate_size rng 64) ()
  | _ ->
    Model.getxattr ~target:(Model.Path (pick_path rng)) ~name:(Prng.choose rng names)
      ~size:(mutate_size rng 64) ()

(* mutate one call in place, preserving its syscall most of the time *)
let mutate_call rng call : Model.call =
  if Prng.chance rng 0.25 then random_call rng
  else
    match (call : Model.call) with
    | Model.Open_call { variant; path; flags; mode } ->
      let variant = if variant = Model.Sys_creat then Model.Sys_open else variant in
      Model.open_ ~variant ~flags:(mutate_flags rng flags) ~mode:(mutate_mode rng mode) path
    | Model.Read_call { fd; count; offset; variant } ->
      (match (variant, offset) with
       | Model.Sys_pread64, Some off ->
         Model.read ~variant ~offset:(mutate_offset rng off) ~fd ~count:(mutate_size rng count) ()
       | _ -> Model.read ~variant ~fd ~count:(mutate_size rng count) ())
    | Model.Write_call { fd; count; offset; variant } ->
      (match (variant, offset) with
       | Model.Sys_pwrite64, Some off ->
         Model.write ~variant ~offset:(mutate_offset rng off) ~fd ~count:(mutate_size rng count) ()
       | _ -> Model.write ~variant ~fd ~count:(mutate_size rng count) ())
    | Model.Lseek_call { fd; offset; whence } ->
      let whence = if Prng.chance rng 0.3 then Prng.choose_list rng Whence.all else whence in
      Model.lseek ~fd ~offset:(mutate_offset rng offset) ~whence
    | Model.Truncate_call { target; length; _ } ->
      Model.truncate ~target ~length:(mutate_size rng length) ()
    | Model.Mkdir_call { variant; path; mode } ->
      Model.mkdir ~variant ~mode:(mutate_mode rng mode) path
    | Model.Chmod_call { variant; target; mode } ->
      Model.chmod ~variant ~target ~mode:(mutate_mode rng mode) ()
    | Model.Close_call _ -> Model.close (pick_fd rng)
    | Model.Chdir_call { target } -> Model.chdir target
    | Model.Setxattr_call { variant; target; name; size; flags } ->
      let flags = if Prng.chance rng 0.3 then Prng.choose_list rng Xattr_flag.all else flags in
      Model.setxattr ~variant ~flags ~target ~name ~size:(mutate_size rng size) ()
    | Model.Getxattr_call { variant; target; name; size } ->
      Model.getxattr ~variant ~target ~name ~size:(mutate_size rng size) ()

let mutate_program rng program =
  let program = Array.of_list program in
  let mutations = 1 + Prng.int rng 3 in
  for _ = 1 to mutations do
    match Prng.int rng 10 with
    | 0 when Array.length program > 0 ->
      (* duplicate-and-mutate keeps sequences growing slowly *)
      ()
    | _ when Array.length program = 0 -> ()
    | _ ->
      let i = Prng.int rng (Array.length program) in
      program.(i) <- mutate_call rng program.(i)
  done;
  let tail = if Prng.chance rng 0.3 then [ random_call rng ] else [] in
  Array.to_list program @ tail

let seed_corpus : program list =
  let open Open_flags in
  [ [ Model.open_ ~flags:(of_flags [ O_WRONLY; O_CREAT ]) ~mode:0o644 "/f0";
      Model.write ~fd:3 ~count:4096 ();
      Model.close 3 ];
    [ Model.open_ ~flags:(of_flags [ O_RDONLY ]) "/f0";
      Model.read ~fd:3 ~count:4096 ();
      Model.lseek ~fd:3 ~offset:0 ~whence:Whence.SEEK_SET;
      Model.close 3 ];
    [ Model.mkdir ~mode:0o755 "/d0";
      Model.chmod ~target:(Model.Path "/d0") ~mode:0o700 ();
      Model.chdir (Model.Path "/d0") ];
    [ Model.open_ ~flags:(of_flags [ O_RDWR; O_CREAT ]) ~mode:0o644 "/f1";
      Model.setxattr ~target:(Model.Path "/f1") ~name:"user.a" ~size:64 ();
      Model.getxattr ~target:(Model.Path "/f1") ~name:"user.a" ~size:64 ();
      Model.truncate ~target:(Model.Path "/f1") ~length:100 () ] ]

(* execute a program on a fresh small file system; answers the per-run
   observations used by the feedback *)
let execute ~faults ?config program =
  let config =
    Config.with_faults faults (Option.value config ~default:Config.small)
  in
  let fs = Fs.create ~config () in
  List.map
    (fun call ->
      let outcome = Fs.exec fs call in
      (call, outcome))
    program

let outcome_class outcome =
  match (outcome : Model.outcome) with
  | Model.Ret _ -> "ok"
  | Model.Err e -> Errno.to_string e

let covered_partitions cov =
  let inputs =
    List.fold_left
      (fun acc arg ->
        acc + List.length (List.filter (fun (_, n) -> n > 0) (Coverage.input_histogram cov arg)))
      0 Arg_class.all
  in
  let outputs =
    List.fold_left
      (fun acc base ->
        acc
        + List.length
            (List.filter
               (fun (o, n) -> n > 0 && Partition.output_is_error o)
               (Coverage.output_histogram cov base)))
      0 Model.all_bases
  in
  inputs + outputs

let run ?(seed = 77) ?(budget = 2000) ?(faults = []) ?config ~feedback () =
  let rng = Prng.create ~seed in
  let coverage = Coverage.create () in
  let corpus = ref seed_corpus in
  let growth = ref [] in
  let crashes = ref 0 in
  (* feedback state *)
  let seen_outcomes : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let seen_partitions : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let interesting observations =
    match feedback with
    | Outcome_novelty ->
      List.fold_left
        (fun acc (call, outcome) ->
          let key =
            Model.variant_name (Model.variant_of_call call) ^ "/" ^ outcome_class outcome
          in
          if Hashtbl.mem seen_outcomes key then acc
          else begin
            Hashtbl.add seen_outcomes key ();
            true
          end)
        false observations
    | Partition_novelty ->
      List.fold_left
        (fun acc (call, outcome) ->
          let keys =
            List.map
              (fun (arg, part) -> Arg_class.name arg ^ "/" ^ Partition.label part)
              (Partition.of_call call)
            @ [ Model.base_name (Model.base_of_call call) ^ "/"
                ^ Partition.output_token
                    (Partition.output_of (Model.base_of_call call) outcome) ]
          in
          List.fold_left
            (fun acc key ->
              if Hashtbl.mem seen_partitions key then acc
              else begin
                Hashtbl.add seen_partitions key ();
                true
              end)
            acc keys)
        false observations
  in
  Span.with_ ~name:"fuzzer/run" (fun () ->
      for execution = 1 to budget do
        let parent = Prng.choose_list rng !corpus in
        let program = mutate_program rng parent in
        let observations = execute ~faults ?config program in
        Metrics.Counter.incr m_executions;
        List.iter
          (fun (call, outcome) -> Coverage.observe coverage call outcome)
          observations;
        (* a crash for our purposes: an injected fault made an outcome deviate
           from the reference file system's *)
        if faults <> [] then begin
          let reference = execute ~faults:[] ?config program in
          if
            List.exists2
              (fun (_, a) (_, b) -> outcome_class a <> outcome_class b)
              observations reference
          then begin
            incr crashes;
            Metrics.Counter.incr m_crashes
          end
        end;
        if interesting observations && List.length !corpus < 512 then begin
          corpus := program :: !corpus;
          Metrics.Counter.incr m_retained
        end;
        if execution mod 50 = 0 || execution = budget then
          growth := (execution, covered_partitions coverage) :: !growth
      done);
  {
    feedback;
    executions = budget;
    corpus_size = List.length !corpus;
    coverage;
    growth = List.rev !growth;
    crashes = !crashes;
  }

let compare_feedbacks ?(seed = 77) ?(budget = 2000) () =
  ( run ~seed ~budget ~feedback:Outcome_novelty (),
    run ~seed ~budget ~feedback:Partition_novelty () )
