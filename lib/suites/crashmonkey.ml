open Iocov_syscall
open Iocov_vfs
module Prng = Iocov_util.Prng
module Coverage = Iocov_core.Coverage
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Tracer = Iocov_trace.Tracer
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span

let m_workloads =
  Metrics.counter Metrics.default "iocov_suite_tests_total"
    ~labels:[ ("suite", "crashmonkey") ]
    ~help:"Simulated tests executed."

let mount = "/mnt/snapshot"
let comm = "crashmonkey"
let seq1_workloads = 300

type stats = {
  workloads_run : int;
  crashes_simulated : int;
  events_total : int;
  events_kept : int;
}

(* --- CrashMonkey's open-flag vocabulary ---
   Weighted flag sets per phase, calibrated to Table 1: 4-flag
   combinations dominate, 3-flag second, nearly every set contains
   O_RDONLY. *)

let snapshot_sets =
  let open Open_flags in
  [ (38, [ O_RDONLY; O_NOATIME; O_DIRECT; O_SYNC ]);
    (9, [ O_RDONLY; O_NOATIME; O_SYNC ]);
    (6, [ O_RDONLY; O_NOATIME; O_DIRECT ]);
    (2, [ O_RDONLY; O_SYNC ]) ]

let write_sets =
  let open Open_flags in
  [ (6, [ O_RDWR; O_CREAT; O_TRUNC; O_DSYNC ]);
    (3, [ O_WRONLY; O_CREAT; O_DIRECT; O_SYNC ]);
    (2, [ O_RDWR; O_CREAT; O_TRUNC ]);
    (1, [ O_WRONLY; O_APPEND ]) ]

let pick_flags ctx sets =
  Open_flags.of_flags (Prng.weighted ctx.Workload.rng sets)

(* CrashMonkey's narrow write-size repertoire: a handful of buffer sizes,
   never zero, nothing above 32 KiB. *)
let cm_write_size rng =
  Prng.weighted rng
    [ (3, 1); (2, 17); (3, 100); (6, 1024); (10, 4096); (4, 8192); (3, 16384); (2, 32768) ]

(* --- the seq-1 grid --- *)

type op =
  | Op_creat
  | Op_mkdir
  | Op_write_buffered
  | Op_write_direct
  | Op_overwrite
  | Op_append
  | Op_truncate_shrink
  | Op_truncate_grow
  | Op_link
  | Op_unlink
  | Op_rename
  | Op_symlink
  | Op_setxattr
  | Op_chmod
  | Op_rmdir

let ops =
  [ Op_creat; Op_mkdir; Op_write_buffered; Op_write_direct; Op_overwrite;
    Op_append; Op_truncate_shrink; Op_truncate_grow; Op_link; Op_unlink;
    Op_rename; Op_symlink; Op_setxattr; Op_chmod; Op_rmdir ]

let op_name = function
  | Op_creat -> "creat"
  | Op_mkdir -> "mkdir"
  | Op_write_buffered -> "write"
  | Op_write_direct -> "dwrite"
  | Op_overwrite -> "overwrite"
  | Op_append -> "append"
  | Op_truncate_shrink -> "trunc-"
  | Op_truncate_grow -> "trunc+"
  | Op_link -> "link"
  | Op_unlink -> "unlink"
  | Op_rename -> "rename"
  | Op_symlink -> "symlink"
  | Op_setxattr -> "setxattr"
  | Op_chmod -> "chmod"
  | Op_rmdir -> "rmdir"

let targets =
  [ "foo"; "bar"; "A/foo"; "A/bar"; "B/foo"; "A/C/foo"; "foo2"; "B/bar"; "A/C/bar"; "baz" ]

type persistence = Fsync_file | Sync_all

let persistences = [ Fsync_file; Sync_all ]

(* --- workload phases --- *)

let setup ctx =
  let open Workload in
  List.iter
    (fun d -> ignore (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/" ^ d))))
    [ "A"; "B"; "A/C" ];
  List.iter
    (fun f ->
      let path = ctx.mount ^ "/" ^ f in
      match open_fd ctx ~mode:0o644 ~flags:(pick_flags ctx write_sets) path with
      | Some fd ->
        ignore (write_fd ctx fd (cm_write_size ctx.rng));
        close_fd ctx fd
      | None -> ())
    [ "foo"; "bar"; "A/foo"; "A/bar"; "B/foo"; "A/C/foo"; "B/bar"; "A/C/bar" ];
  ignore (aux ctx Fs.Sync)

let snapshot_pass ctx paths =
  let open Workload in
  List.iter
    (fun p ->
      match open_fd ctx ~mode:0o644 ~flags:(pick_flags ctx snapshot_sets) (ctx.mount ^ "/" ^ p) with
      | Some fd ->
        ignore (read_fd ctx fd (Prng.weighted ctx.rng [ (4, 4096); (2, 1024); (1, 65536) ]));
        close_fd ctx fd
      | None -> ())
    paths

let apply_op ctx op target =
  let open Workload in
  let path = ctx.mount ^ "/" ^ target in
  match op with
  | Op_creat ->
    (match
       open_fd ctx ~variant:Model.Sys_creat ~mode:0o644
         ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ])
         (path ^ ".new")
     with
     | Some fd -> close_fd ctx fd
     | None -> ())
  | Op_mkdir -> ignore (call ctx (Model.mkdir ~mode:0o755 (path ^ ".dir")))
  | Op_write_buffered | Op_write_direct | Op_overwrite | Op_append ->
    let flags =
      let open Open_flags in
      match op with
      | Op_write_direct -> of_flags [ O_WRONLY; O_CREAT; O_DIRECT; O_SYNC ]
      | Op_append -> of_flags [ O_WRONLY; O_APPEND ]
      | _ -> of_flags [ O_RDWR; O_CREAT; O_TRUNC; O_SYNC ]
    in
    (match open_fd ctx ~mode:0o644 ~flags path with
     | Some fd ->
       if op = Op_overwrite then
         ignore (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
       ignore (write_fd ctx fd (cm_write_size ctx.rng));
       close_fd ctx fd
     | None -> ())
  | Op_truncate_shrink ->
    ignore (call ctx (Model.truncate ~target:(Model.Path path) ~length:7 ()))
  | Op_truncate_grow ->
    ignore (call ctx (Model.truncate ~target:(Model.Path path) ~length:16384 ()))
  | Op_link -> ignore (aux ctx (Fs.Link (path, path ^ ".lnk")))
  | Op_unlink -> ignore (aux ctx (Fs.Unlink path))
  | Op_rename -> ignore (aux ctx (Fs.Rename (path, path ^ ".rn")))
  | Op_symlink -> ignore (aux ctx (Fs.Symlink (path, path ^ ".sym")))
  | Op_setxattr ->
    ignore
      (call ctx
         (Model.setxattr ~target:(Model.Path path) ~name:"user.cm" ~size:64
            ~flags:Xattr_flag.XATTR_ANY ()))
  | Op_chmod ->
    ignore (call ctx (Model.chmod ~target:(Model.Path path) ~mode:0o600 ()))
  | Op_rmdir -> ignore (aux ctx (Fs.Rmdir (ctx.mount ^ "/A/C")))

(* Persist the op's effects.  Answers (content_persisted, name_persisted):
   fsync of a file persists its inode but not the directory entry naming
   it; only a sync — or an additional fsync of the parent directory —
   makes the {e name} durable. *)
let persist ctx persistence target =
  let open Workload in
  let path = ctx.mount ^ "/" ^ target in
  match persistence with
  | Sync_all ->
    ignore (aux ctx Fs.Sync);
    (true, true)
  | Fsync_file ->
    (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY ]) path with
     | Some fd ->
       ignore (aux ctx (Fs.Fsync fd));
       close_fd ctx fd;
       (* half the workloads also fsync the parent directory — the
          pattern crash-consistency testing popularized *)
       if Prng.int ctx.rng 2 = 0 then begin
         let parent = Filename.dirname path in
         match
           open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) parent
         with
         | Some dfd ->
           ignore (aux ctx (Fs.Fsync dfd));
           close_fd ctx dfd;
           (true, true)
         | None -> (true, false)
       end
       else (true, false)
     | None -> (false, false))

let oracle ctx ?(recreated = false) ~recorded ~content_persisted ~name_persisted target =
  let open Workload in
  let path = ctx.mount ^ "/" ^ target in
  let filesystem = fs ctx in
  ignore (aux ctx Fs.Crash);
  (* Content equality is only owed when the observed name is bound to the
     fsynced inode: if the workload re-created the file and never made
     the new directory entry durable, the crash legally resurfaces the
     OLD inode under this name. *)
  let content_checkable = content_persisted && (name_persisted || not recreated) in
  (* post-crash verification pass: plain O_RDONLY opens *)
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY ]) path with
   | Some fd ->
     ignore (read_fd ctx fd 4096);
     close_fd ctx fd;
     (match (recorded, Fs.checksum filesystem path) with
      | Some before, Ok after when content_checkable && before <> after ->
        fail ctx (Printf.sprintf "persisted content of %s lost in crash" target)
      | _ -> ())
   | None ->
     (* a vanished file is a bug only when its name was made durable *)
     if content_persisted && name_persisted && recorded <> None then
       fail ctx (Printf.sprintf "persisted file %s missing after crash" target))

let seq1 ctx ~crashes op target persistence =
  let open Workload in
  begin_test ctx
    (Printf.sprintf "seq1/%s-%s-%s" (op_name op) target
       (match persistence with Fsync_file -> "fsync" | Sync_all -> "sync"));
  setup ctx;
  snapshot_pass ctx [ "foo"; "bar"; "A/foo"; "A/bar"; "B/foo"; "A/C/foo" ];
  apply_op ctx op target;
  (* CrashMonkey records the full pre-persistence oracle state *)
  snapshot_pass ctx [ "foo"; "bar"; "A/foo"; "A/bar"; "B/foo"; "A/C/foo" ];
  let recorded =
    match Fs.checksum (fs ctx) (ctx.mount ^ "/" ^ target) with
    | Ok c -> Some c
    | Error _ -> None
  in
  let content_persisted, name_persisted = persist ctx persistence target in
  oracle ctx ~recorded ~content_persisted ~name_persisted target;
  (* full post-crash comparison pass against the recorded oracle state *)
  snapshot_pass ctx [ "foo"; "bar"; "A/foo"; "A/bar"; "B/foo"; "A/C/foo" ];
  incr crashes;
  (* leave a clean durable base for the next workload *)
  ignore (aux ctx Fs.Sync)

(* Rule-based black-box "generic" tests: short random sequences probing
   odd paths — this is where CrashMonkey's ENOTDIR coverage comes from. *)
let generic ctx index =
  let open Workload in
  begin_test ctx (Printf.sprintf "generic/%03d" index);
  setup ctx;
  let file = ctx.mount ^ "/foo" in
  (* open through a file component *)
  ignore (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) (file ^ "/sub")));
  (* exclusive create of an existing file *)
  ignore
    (call ctx
       (Model.open_ ~mode:0o644
          ~flags:Open_flags.(of_flags [ O_RDONLY; O_CREAT; O_EXCL; O_DIRECT; O_SYNC ])
          file));
  (* a burst of random small ops *)
  for _ = 1 to 12 do
    match Prng.int ctx.rng 5 with
    | 0 -> snapshot_pass ctx [ "foo"; "bar" ]
    | 1 -> apply_op ctx (Prng.choose_list ctx.rng ops) (Prng.choose_list ctx.rng targets)
    | 2 ->
      ignore
        (call ctx
           (Model.lseek ~fd:(2 + Prng.int ctx.rng 4) ~offset:(Prng.int ctx.rng 4096)
              ~whence:Whence.SEEK_SET))
    | 3 ->
      ignore
        (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) (ctx.mount ^ "/nope")))
    | _ ->
      ignore
        (call ctx
           (Model.getxattr ~target:(Model.Path file) ~name:"user.cm" ~size:64 ()))
  done;
  ignore (aux ctx Fs.Sync)

(* seq-2: a sampled pair of operations before the persistence point —
   CrashMonkey's next bound in the same harness. *)
let seq2_workload ctx ~crashes rng =
  let open Workload in
  let op1 = Prng.choose_list rng ops and op2 = Prng.choose_list rng ops in
  let target1 = Prng.choose_list rng targets and target2 = Prng.choose_list rng targets in
  let persistence = if Prng.bool rng then Fsync_file else Sync_all in
  (* did op1 break the name-to-inode binding op2 then re-created? *)
  let recreated = (op1 = Op_unlink || op1 = Op_rename) && target1 = target2 in
  begin_test ctx
    (Printf.sprintf "seq2/%s-%s+%s-%s" (op_name op1) target1 (op_name op2) target2);
  setup ctx;
  snapshot_pass ctx [ "foo"; "bar"; "A/foo" ];
  apply_op ctx op1 target1;
  apply_op ctx op2 target2;
  snapshot_pass ctx [ "foo"; "bar"; "A/foo" ];
  let recorded =
    match Fs.checksum (fs ctx) (ctx.mount ^ "/" ^ target2) with
    | Ok c -> Some c
    | Error _ -> None
  in
  let content_persisted, name_persisted = persist ctx persistence target2 in
  oracle ctx ~recreated ~recorded ~content_persisted ~name_persisted target2;
  incr crashes;
  ignore (aux ctx Fs.Sync)

(* --- scenarios for the crash engine (DESIGN.md §17) ---

   The seq-1 shape expressed as ordered engine steps: a durable setup
   tree, one grid operation, one persistence point.  The engine then
   enumerates every bounded crash state of that log — the systematic
   version of the single [Crash] the harness above injects. *)

let crash_scenarios =
  let open Iocov_crash.Engine in
  let p name = mount ^ "/" ^ name in
  let setup =
    [ Mkdir (p "A"); Creat (p "foo"); Write (p "foo", 0, 8192);
      Creat (p "A/bar"); Write (p "A/bar", 0, 4096) ]
  in
  List.map
    (fun (name, body) ->
      { sc_name = name; sc_mount = mount; sc_uid = None; sc_setup = setup;
        sc_body = body })
    [ ("cm-creat-fsync", [ Creat (p "foo.new"); Fsync (p "foo.new") ]);
      ("cm-append-sync", [ Append (p "foo", 6000); Sync ]);
      ("cm-trunc-fsync", [ Truncate (p "foo", 7); Fsync (p "foo") ]);
      ("cm-rename-fsync",
       [ Write (p "foo.tmp", 0, 8192); Fsync (p "foo.tmp");
         Rename (p "foo.tmp", p "foo") ]);
      ("cm-unlink-sync", [ Unlink (p "A/bar"); Sync; Creat (p "A/bar") ]);
      ("cm-setxattr-fdatasync",
       [ Setxattr (p "foo", "user.cm", 64); Fdatasync (p "foo") ]) ]

let run ?(seed = 42) ?(scale = 1.0) ?(faults = []) ?config ?sink ?dispatch ?(seq2 = 0)
    ~coverage () =
  let config =
    Config.with_faults faults (Option.value config ~default:Config.default)
  in
  let ctx = Workload.init ~config ~comm ~mount ~seed () in
  (* the raw sink sees every record, before mount-point filtering *)
  (match sink with
   | Some sink -> Tracer.on_event ctx.Workload.tracer sink
   | None -> ());
  let filter = Filter.mount_point mount in
  let kept = ref 0 in
  (match dispatch with
   | Some d ->
     (* the pipeline owns filtering and accumulation; [kept] stays 0
        here and the caller takes it from the merge *)
     Tracer.on_event ctx.Workload.tracer d
   | None ->
     Tracer.on_event ctx.Workload.tracer
       (Filter.sink filter (fun e ->
            incr kept;
            match e.Event.payload with
            | Event.Tracked call -> Coverage.observe coverage call e.Event.outcome
            | Event.Aux _ -> ())));
  Workload.noise ctx;
  let crashes = ref 0 in
  let reps = max 1 (int_of_float (Float.round scale)) in
  Span.with_ ~name:"crashmonkey/seq1" (fun () ->
      for _ = 1 to reps do
        List.iter
          (fun persistence ->
            List.iter
              (fun op ->
                List.iter
                  (fun target ->
                    Metrics.Counter.incr m_workloads;
                    seq1 ctx ~crashes op target persistence)
                  targets)
              ops)
          persistences
      done);
  let seq2_rng = Prng.create ~seed:(seed + 1) in
  if seq2 > 0 then
    Span.with_ ~name:"crashmonkey/seq2" (fun () ->
        for _ = 1 to seq2 do
          Metrics.Counter.incr m_workloads;
          seq2_workload ctx ~crashes seq2_rng
        done);
  let generic_count = max 1 (int_of_float (50.0 *. scale)) in
  Span.with_ ~name:"crashmonkey/generic" (fun () ->
      for i = 1 to generic_count do
        Metrics.Counter.incr m_workloads;
        generic ctx i
      done);
  let stats =
    {
      workloads_run = (reps * List.length ops * List.length targets * 2) + seq2 + generic_count;
      crashes_simulated = !crashes;
      events_total = Tracer.events_emitted ctx.Workload.tracer;
      events_kept = !kept;
    }
  in
  (Workload.failures ctx, stats)
