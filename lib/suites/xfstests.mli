(** An xfstests-shaped regression suite (the paper runs its 706 generic +
    308 Ext4-specific tests).

    xfstests is a large hand-written corpus accreted over decades; its
    trace signature is what the paper's figures show: millions of opens
    dominated by [O_RDONLY], broad (but not complete) flag coverage,
    write sizes from 0 up to 258 MiB, and a wide error-code footprint.
    This simulator reproduces that corpus as ~20 parameterized test
    archetypes — sequential/random/vectored I/O, boundary writes and
    truncates, mode and xattr cycles, symlink loops, permission and
    read-only-mount probes, fd and space exhaustion, environment-error
    injection — each instantiated per test index with its own scratch
    file system, as real xfstests mounts a scratch device per test.

    Every test asserts its expected outcomes, so a run against a correct
    file system reports zero failures, and a run against a fault-injected
    one reports exactly the deviations the suite's input coverage can
    see. *)

val mount : string
(** ["/mnt/test"] — the xfstests TEST_DIR. *)

val comm : string

val generic_tests : int
(** 706 *)

val ext4_tests : int
(** 308 *)

type stats = {
  tests_run : int;
  events_total : int;
  events_kept : int;
}

val run :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list ->
  ?config:Iocov_vfs.Config.t ->
  ?sink:(Iocov_trace.Event.t -> unit) ->
  ?dispatch:(Iocov_trace.Event.t -> unit) ->
  ?per_test:(string -> Iocov_core.Coverage.t -> unit) ->
  coverage:Iocov_core.Coverage.t -> unit -> string list * stats
(** Run the whole suite into [coverage] (through the [/mnt/test]
    mount-point filter).  [scale] multiplies inner-loop iteration counts;
    at 1.0 a run produces a few million traced syscalls.  Returns oracle
    failures (empty on a correct file system) and statistics.

    [dispatch] hands every raw event to an external analysis pipeline
    (e.g. [Iocov_par.Replay.sink]) {e instead of} the inline
    filter-and-observe path: [coverage] is left untouched and
    [events_kept] stays 0 — the caller takes both from the pipeline's
    merge.  Mutually exclusive with [per_test]
    ([Invalid_argument]). *)
