(** A syscall fuzzer with pluggable coverage feedback.

    The paper's future work plans to "evaluate fuzzing systems" with
    IOCov, and its related-work section observes that fuzzers maximize
    {e path} coverage, which "has drawbacks — missing bugs — similar to
    code-coverage methods".  This module makes that comparison concrete:
    one mutation engine, two feedback signals.

    - {!Outcome_novelty} keeps a mutant when it reaches a previously
      unseen (syscall, outcome-class) pair — the closest analogue of
      path/edge novelty our substrate can express.
    - {!Partition_novelty} keeps a mutant when it covers a previously
      untested {e input or output partition} — fuzzing guided by the
      paper's own metric.

    Both runs are measured with the same yardstick (distinct partitions
    covered as a function of executions), so the growth curves are
    directly comparable. *)

type feedback =
  | Outcome_novelty
  | Partition_novelty

val feedback_name : feedback -> string

type result = {
  feedback : feedback;
  executions : int;
  corpus_size : int;            (** programs retained by the feedback *)
  coverage : Iocov_core.Coverage.t;  (** accumulated over every execution *)
  growth : (int * int) list;
      (** (executions, distinct input+output partitions covered) samples,
          ascending — the coverage-growth curve *)
  crashes : int;
      (** executions that tripped an oracle (injected-fault runs only) *)
}

val covered_partitions : Iocov_core.Coverage.t -> int
(** The yardstick: distinct input partitions plus distinct error-output
    partitions with non-zero frequency. *)

val run :
  ?seed:int -> ?budget:int -> ?faults:Iocov_vfs.Fault.t list ->
  ?config:Iocov_vfs.Config.t -> feedback:feedback -> unit -> result
(** Fuzz for [budget] program executions (default 2000).  Deterministic
    for fixed seed/budget/faults. *)

val compare_feedbacks :
  ?seed:int -> ?budget:int -> unit -> result * result
(** (outcome-novelty, partition-novelty) under identical settings. *)
