(** Suite orchestration: run a simulated tester and collect its coverage.

    This is the "experiment driver" the benches and examples share: pick
    a suite, run it at a scale, get back the filtered coverage, the
    oracle verdicts, and the trace statistics. *)

type suite = Crashmonkey | Xfstests | Ltp

val suite_name : suite -> string
val suite_of_name : string -> suite option

type result = {
  suite : suite;
  coverage : Iocov_core.Coverage.t;
  failures : string list;   (** oracle violations; empty on a correct fs *)
  events_total : int;       (** traced records before filtering *)
  events_kept : int;        (** records within the mount point *)
  workloads : int;          (** tests or workloads executed *)
  elapsed_s : float;
}

val run :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list -> ?jobs:int ->
  ?counters:Iocov_par.Replay.counters -> ?progress:Iocov_pipe.Progress.conf ->
  ?config:Iocov_vfs.Config.t -> suite -> result
(** Run one suite from scratch.  Deterministic for a fixed seed, scale,
    and fault set.

    Every run executes as one streaming pipeline (DESIGN.md §13): the
    suite is an [Iocov_pipe.Source.live] feed, the mount filter a
    stage, and [Iocov_pipe.Driver] owns the sharding.  [jobs] is the
    shard count (0 = [Domain.recommended_domain_count]); omitted means
    one inline shard — no domain, no channel.  [counters] picks the
    accumulator backend (default [Dense]; [Reference] is the hashed
    differential oracle).  [progress] attaches a live progress sink to
    the pipeline ({!Iocov_pipe.Progress}).  The resulting coverage is
    byte-identical across all combinations — only wall-clock changes.

    [config] pins one file-system configuration for every test in the
    suite (a config-lattice point); omitted, each suite keeps its own
    per-test geometry choice — the pre-lattice behaviour. *)

val config_of_point : Iocov_vfs.Config.point -> Iocov_vfs.Config.t option
(** The [config] argument a lattice point denotes: [None] for the
    [default] point (suites keep their per-test choice, so a
    lattice-of-one run is byte-identical to a plain run), [Some] of the
    point's config otherwise. *)

val run_lattice :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list -> ?jobs:int ->
  ?counters:Iocov_par.Replay.counters -> ?progress:Iocov_pipe.Progress.conf ->
  points:Iocov_vfs.Config.point list -> suite ->
  (Iocov_vfs.Config.point * result) list
(** One {!run} per lattice point, in order — the [(config × cell)]
    sweep.  Each point's run is independent and deterministic, so the
    sweep composes into a {!Iocov_core.Coverage.Matrix} by feeding each
    result's coverage to its point's shard. *)

val run_both :
  ?seed:int -> ?scale:float -> ?faults:Iocov_vfs.Fault.t list -> ?jobs:int ->
  ?counters:Iocov_par.Replay.counters -> unit -> result * result
(** (CrashMonkey, xfstests) with the same settings — the paper's
    evaluation pair.  {!Ltp} is the third, extension suite.  [jobs] and
    [counters] are threaded to both runs. *)

val detects : result -> bool
(** True when the run's oracles flagged at least one violation — "the
    suite found the bug". *)
