open Iocov_syscall
open Iocov_vfs
module Prng = Iocov_util.Prng
module Coverage = Iocov_core.Coverage
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Tracer = Iocov_trace.Tracer
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span

let m_tests =
  Metrics.counter Metrics.default "iocov_suite_tests_total"
    ~labels:[ ("suite", "xfstests") ]
    ~help:"Simulated tests executed."

let mount = "/mnt/test"
let comm = "xfstests"
let generic_tests = 706
let ext4_tests = 308

type stats = {
  tests_run : int;
  events_total : int;
  events_kept : int;
}

(* --- the xfstests open-flag vocabulary ---
   Calibrated to Table 1's xfstests rows: 4-flag combinations dominate,
   2-flag second, a thin tail of 5- and 6-flag sets, O_RDONLY the most
   popular flag.  O_LARGEFILE, O_ASYNC, and O_RSYNC never appear — the
   untested flags the paper calls out. *)

let read_sets =
  let open Open_flags in
  [ (30, [ O_RDONLY; O_NONBLOCK; O_NOFOLLOW; O_CLOEXEC ]);
    (17, [ O_RDONLY; O_CLOEXEC ]);
    (4, [ O_RDONLY; O_NOATIME; O_CLOEXEC ]);
    (4, [ O_RDONLY ]) ]

(* Creation sets: every one contains O_CREAT, so they are safe on paths
   that do not exist yet. *)
let create_sets =
  let open Open_flags in
  [ (16, [ O_WRONLY; O_CREAT; O_TRUNC; O_NONBLOCK ]);
    (8, [ O_RDWR; O_CREAT; O_DIRECT; O_SYNC ]);
    (7, [ O_WRONLY; O_CREAT; O_TRUNC ]);
    (3, [ O_RDWR; O_CREAT; O_EXCL ]);
    (1, [ O_WRONLY; O_CREAT; O_TRUNC; O_DSYNC; O_NOCTTY ]);
    (1, [ O_RDWR; O_CREAT; O_EXCL; O_DIRECT; O_DSYNC; O_NOFOLLOW ]) ]

(* Re-open sets for paths that already exist. *)
let reopen_sets =
  let open Open_flags in
  [ (5, [ O_WRONLY; O_APPEND ]); (1, [ O_WRONLY ]) ]

let dir_sets =
  let open Open_flags in
  [ (6, [ O_RDONLY; O_DIRECTORY ]); (1, [ O_PATH; O_CLOEXEC ]) ]

let pick ctx sets = Open_flags.of_flags (Prng.weighted ctx.Workload.rng sets)

let pick_read ctx = pick ctx read_sets
let pick_create ctx = pick ctx create_sets

(* Write sizes spanning every log2 bucket up to 128 KiB, weighted toward
   small sizes as real workloads are; the occasional large I/O and the
   258 MiB maximum come from dedicated archetypes. *)
let small_size ctx =
  let rng = ctx.Workload.rng in
  if Prng.chance rng 0.02 then 0
  else Prng.pow2_size rng ~max_log2:17

let open_variant ctx =
  Prng.weighted ctx.Workload.rng
    [ (70, Model.Sys_open); (26, Model.Sys_openat); (4, Model.Sys_openat2) ]

(* --- archetypes --- *)

let rw_seq ctx ~iters =
  let open Workload in
  for i = 1 to iters do
    let path = fresh_name ctx "seq" in
    (match open_fd ctx ~variant:(open_variant ctx) ~mode:0o644 ~flags:(pick_create ctx) path with
     | Some fd ->
       let size = small_size ctx in
       (match write_fd ctx fd size with
        | Model.Ret n when n = size -> ()
        | outcome -> expect_ret ctx "sequential write" size outcome);
       close_fd ctx fd
     | None -> fail ctx "create failed in rw_seq");
    (* occasional append pass over the fresh file *)
    if Prng.chance ctx.rng 0.2 then begin
      match open_fd ctx ~flags:(pick ctx reopen_sets) path with
      | Some fd ->
        ignore (write_fd ctx fd (small_size ctx));
        close_fd ctx fd
      | None -> fail ctx "re-open for append failed in rw_seq"
    end;
    (match open_fd ctx ~variant:(open_variant ctx) ~flags:(pick_read ctx) path with
     | Some fd ->
       ignore (read_fd ctx fd (small_size ctx));
       close_fd ctx fd
     | None -> fail ctx "re-open failed in rw_seq");
    (* stale-path probe: regression tests routinely stat files that are
       expected to be gone *)
    if i mod 16 = 0 then
      expect_err ctx "stale path" Errno.ENOENT
        (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) (path ^ ".gone")));
    ignore (aux ctx (Fs.Unlink path))
  done

let rw_random ctx ~iters =
  let open Workload in
  (* Recycle the target file periodically: random overwrites fragment the
     extent list, and O_TRUNC resets it — as fsx-style testers re-seed
     their files. *)
  let batch = 192 in
  let remaining = ref iters in
  while !remaining > 0 do
    let n = min batch !remaining in
    remaining := !remaining - n;
    let path = fresh_name ctx "rnd" in
    (match
       open_fd ctx ~mode:0o644
         ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT; O_DIRECT; O_SYNC ]) path
     with
     | None -> fail ctx "open failed in rw_random"
     | Some fd ->
       expect_ret ctx "seed write" 65536 (write_fd ctx fd 65536);
       for _ = 1 to n do
         let off = Prng.int ctx.rng 65536 in
         let size = Prng.pow2_size ctx.rng ~max_log2:12 in
         expect_ret ctx "pwrite" size
           (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:off fd size);
         ignore (read_fd ctx ~variant:Model.Sys_pread64 ~offset:(Prng.int ctx.rng 70000) fd size);
         (* offset-zero boundary *)
         if Prng.chance ctx.rng 0.1 then
           ignore (read_fd ctx ~variant:Model.Sys_pread64 ~offset:0 fd 1)
       done;
       close_fd ctx fd);
    ignore (aux ctx (Fs.Unlink path))
  done

let vectored ctx ~iters =
  let open Workload in
  let path = make_file ctx ~size:8192 "vec" in
  match open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT; O_TRUNC; O_CLOEXEC ]) path with
  | None -> fail ctx "open failed in vectored"
  | Some fd ->
    for _ = 1 to iters do
      let size = Prng.pow2_size ctx.rng ~max_log2:14 in
      expect_ret ctx "writev" size (write_fd ctx ~variant:Model.Sys_writev fd size);
      ignore (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_SET));
      ignore (read_fd ctx ~variant:Model.Sys_readv fd size)
    done;
    close_fd ctx fd

let zero_boundary ctx =
  let open Workload in
  let path = make_file ctx ~size:4096 "zb" in
  (match open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
   | None -> fail ctx "open failed in zero_boundary"
   | Some fd ->
     (* POSIX-legal zero-size transfers *)
     expect_ret ctx "write of 0" 0 (write_fd ctx fd 0);
     expect_ret ctx "read of 0" 0 (read_fd ctx fd 0);
     let before = call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_CUR) in
     expect_ret ctx "offset unmoved by zero write" 0 before;
     (* power-of-two edges: 2^k - 1, 2^k, 2^k + 1 *)
     List.iter
       (fun k ->
         let base = 1 lsl k in
         List.iter
           (fun size ->
             expect_ret ctx "boundary write" size
               (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:0 fd size))
           [ base - 1; base; base + 1 ])
       [ 1; 4; 9; 12; 16 ];
     close_fd ctx fd);
  ignore (aux ctx (Fs.Unlink path))

let seek_all ctx =
  let open Workload in
  let path = make_file ctx "sparse" in
  match open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
  | None -> fail ctx "open failed in seek_all"
  | Some fd ->
    (* data at [4096, 8192), hole elsewhere; logical size 65536 *)
    expect_ret ctx "sparse write" 4096
      (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:4096 fd 4096);
    expect_ok ctx "extend" (call ctx (Model.truncate ~target:(Model.Fd fd) ~length:65536 ()));
    expect_ret ctx "SEEK_SET" 123 (call ctx (Model.lseek ~fd ~offset:123 ~whence:Whence.SEEK_SET));
    expect_ret ctx "SEEK_CUR" 124 (call ctx (Model.lseek ~fd ~offset:1 ~whence:Whence.SEEK_CUR));
    expect_ret ctx "SEEK_END" 65546 (call ctx (Model.lseek ~fd ~offset:10 ~whence:Whence.SEEK_END));
    expect_ret ctx "SEEK_DATA finds data" 4096
      (call ctx (Model.lseek ~fd ~offset:0 ~whence:Whence.SEEK_DATA));
    expect_ret ctx "SEEK_HOLE after data" 8192
      (call ctx (Model.lseek ~fd ~offset:4096 ~whence:Whence.SEEK_HOLE));
    expect_err ctx "SEEK_DATA in trailing hole" Errno.ENXIO
      (call ctx (Model.lseek ~fd ~offset:8192 ~whence:Whence.SEEK_DATA));
    expect_err ctx "negative seek" Errno.EINVAL
      (call ctx (Model.lseek ~fd ~offset:(-200000) ~whence:Whence.SEEK_CUR));
    expect_err ctx "huge seek" Errno.EOVERFLOW
      (call ctx (Model.lseek ~fd ~offset:(1 lsl 61) ~whence:Whence.SEEK_SET));
    (* SEEK_HOLE at the very end of data is where off-by-ones live *)
    expect_ret ctx "SEEK_HOLE at size boundary" 65535
      (call ctx (Model.lseek ~fd ~offset:65535 ~whence:Whence.SEEK_HOLE));
    close_fd ctx fd

let truncate_bounds ctx =
  let open Workload in
  let path = make_file ctx ~size:10000 "tr" in
  expect_ok ctx "shrink" (call ctx (Model.truncate ~target:(Model.Path path) ~length:1 ()));
  expect_ok ctx "to zero" (call ctx (Model.truncate ~target:(Model.Path path) ~length:0 ()));
  expect_ok ctx "grow" (call ctx (Model.truncate ~target:(Model.Path path) ~length:1048576 ()));
  expect_err ctx "negative length" Errno.EINVAL
    (call ctx (Model.truncate ~target:(Model.Path path) ~length:(-1) ()));
  expect_err ctx "missing file" Errno.ENOENT
    (call ctx (Model.truncate ~target:(Model.Path (ctx.mount ^ "/absent")) ~length:0 ()));
  let dir = fresh_dir ctx in
  expect_err ctx "truncate dir" Errno.EISDIR
    (call ctx (Model.truncate ~target:(Model.Path dir) ~length:0 ()));
  expect_err ctx "truncate through file" Errno.ENOTDIR
    (call ctx (Model.truncate ~target:(Model.Path (path ^ "/x")) ~length:0 ()));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
   | Some fd ->
     expect_ok ctx "ftruncate" (call ctx (Model.truncate ~target:(Model.Fd fd) ~length:512 ()));
     close_fd ctx fd
   | None -> fail ctx "open failed in truncate_bounds");
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY ]) path with
   | Some fd ->
     expect_err ctx "ftruncate on read-only fd" Errno.EINVAL
       (call ctx (Model.truncate ~target:(Model.Fd fd) ~length:0 ()));
     close_fd ctx fd
   | None -> ());
  ignore (aux ctx (Fs.Unlink path))

let modes ctx =
  let open Workload in
  (* every permission bit, one mkdir and one chmod each; plus mode 0 *)
  List.iter
    (fun bit ->
      let dir = fresh_name ctx "md" in
      expect_ok ctx "mkdir with bit"
        (call ctx (Model.mkdir ~variant:Model.Sys_mkdirat ~mode:(Mode.mask bit lor 0o700) dir));
      expect_ok ctx "chmod to bit"
        (call ctx (Model.chmod ~target:(Model.Path dir) ~mode:(Mode.mask bit lor 0o700) ())))
    Mode.all_bits;
  let f = make_file ctx "m0" in
  expect_ok ctx "chmod 0000" (call ctx (Model.chmod ~target:(Model.Path f) ~mode:0 ()));
  expect_ok ctx "chmod 7777" (call ctx (Model.chmod ~target:(Model.Path f) ~mode:0o7777 ()));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_PATH; O_CLOEXEC ]) f with
   | Some fd ->
     expect_ok ctx "fchmod" (call ctx (Model.chmod ~variant:Model.Sys_fchmod ~target:(Model.Fd fd) ~mode:0o644 ()));
     close_fd ctx fd
   | None -> fail ctx "O_PATH open failed");
  expect_ok ctx "fchmodat"
    (call ctx (Model.chmod ~variant:Model.Sys_fchmodat ~target:(Model.Path f) ~mode:0o755 ()));
  expect_err ctx "mkdir exists" Errno.EEXIST (call ctx (Model.mkdir ~mode:0o755 ctx.mount));
  expect_err ctx "mkdir under file" Errno.ENOTDIR
    (call ctx (Model.mkdir ~mode:0o755 (f ^ "/sub")));
  expect_err ctx "mkdir missing parent" Errno.ENOENT
    (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/no/such/deep")));
  expect_err ctx "mkdir bad mode" Errno.EINVAL
    (call ctx (Model.mkdir ~mode:0o200000 (fresh_name ctx "bm")))

let error_paths ctx =
  let open Workload in
  (* symlink loop *)
  let a = ctx.mount ^ "/loop_a" and b = ctx.mount ^ "/loop_b" in
  ignore (aux ctx (Fs.Symlink (a, b)));
  ignore (aux ctx (Fs.Symlink (b, a)));
  expect_err ctx "symlink loop" Errno.ELOOP
    (call ctx (Model.open_ ~flags:(pick_read ctx) a));
  (* name too long *)
  let long = ctx.mount ^ "/" ^ String.make 300 'x' in
  expect_err ctx "long name" Errno.ENAMETOOLONG
    (call ctx (Model.open_ ~flags:(pick_read ctx) long));
  expect_err ctx "long name mkdir" Errno.ENAMETOOLONG
    (call ctx (Model.mkdir ~mode:0o755 long));
  (* permission denied as non-root *)
  let secret = make_file ctx ~size:128 "secret" in
  expect_ok ctx "restrict" (call ctx (Model.chmod ~target:(Model.Path secret) ~mode:0o600 ()));
  let filesystem = fs ctx in
  Fs.set_credentials filesystem ~uid:1000 ~gid:1000;
  expect_err ctx "other read denied" Errno.EACCES
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) secret));
  expect_err ctx "non-owner chmod" Errno.EPERM
    (call ctx (Model.chmod ~target:(Model.Path secret) ~mode:0o777 ()));
  Fs.set_credentials filesystem ~uid:0 ~gid:0;
  (* directory misuse *)
  let dir = fresh_dir ctx in
  expect_err ctx "write-open a dir" Errno.EISDIR
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY ]) dir));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) dir with
   | Some fd ->
     expect_err ctx "read a dir fd" Errno.EISDIR (read_fd ctx fd 4096);
     expect_ok ctx "fchdir" (call ctx (Model.chdir (Model.Fd fd)));
     close_fd ctx fd
   | None -> fail ctx "dir open failed");
  expect_ok ctx "chdir back" (call ctx (Model.chdir (Model.Path ctx.mount)));
  expect_err ctx "chdir to file" Errno.ENOTDIR
    (call ctx (Model.chdir (Model.Path secret)));
  (* exclusive create collision *)
  expect_err ctx "O_EXCL exists" Errno.EEXIST
    (call ctx
       (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_RDWR; O_CREAT; O_EXCL ]) secret));
  (* O_NOFOLLOW on a symlink *)
  let link = ctx.mount ^ "/lnk_secret" in
  ignore (aux ctx (Fs.Symlink (secret, link)));
  expect_err ctx "O_NOFOLLOW" Errno.ELOOP
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_NOFOLLOW ]) link));
  expect_err ctx "ENOENT open" Errno.ENOENT
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) (ctx.mount ^ "/gone")))

let xattr_cycle ctx ~iters =
  let open Workload in
  let path = make_file ctx ~size:64 "xa" in
  let target = Model.Path path in
  for i = 1 to iters do
    let name = Printf.sprintf "user.k%d" (i mod 4) in
    let size = Prng.weighted ctx.rng [ (4, 0); (8, 1 + Prng.int ctx.rng 255); (6, 256 + Prng.int ctx.rng 768); (2, 1024) ] in
    ignore (call ctx (Model.setxattr ~target ~name ~size ~flags:Xattr_flag.XATTR_ANY ()));
    ignore (call ctx (Model.getxattr ~target ~name ~size:4096 ()))
  done;
  (* boundaries and error paths *)
  expect_ok ctx "xattr CREATE"
    (call ctx (Model.setxattr ~target ~name:"user.once" ~size:10 ~flags:Xattr_flag.XATTR_CREATE ()));
  expect_err ctx "xattr CREATE dup" Errno.EEXIST
    (call ctx (Model.setxattr ~target ~name:"user.once" ~size:10 ~flags:Xattr_flag.XATTR_CREATE ()));
  expect_err ctx "xattr REPLACE missing" Errno.ENODATA
    (call ctx (Model.setxattr ~target ~name:"user.never" ~size:10 ~flags:Xattr_flag.XATTR_REPLACE ()));
  expect_err ctx "xattr E2BIG" Errno.E2BIG
    (call ctx (Model.setxattr ~target ~name:"user.huge" ~size:65537 ()));
  (* one byte short of the maximum: hand-written suites probe "a big
     value", not the exact boundary — which is how Figure 1's bug
     (triggered only at size = 65536) slips through xfstests *)
  expect_err ctx "xattr too big for inode space" Errno.ENOSPC
    (call ctx (Model.setxattr ~target ~name:"user.max" ~size:65535 ()));
  expect_err ctx "getxattr missing" Errno.ENODATA
    (call ctx (Model.getxattr ~target ~name:"user.nothere" ~size:64 ()));
  expect_ok ctx "empty value set"
    (call ctx (Model.setxattr ~target ~name:"user.empty" ~size:0 ()));
  expect_ret ctx "empty value get" 0
    (call ctx (Model.getxattr ~target ~name:"user.empty" ~size:64 ()));
  expect_err ctx "getxattr short buffer" Errno.ERANGE
    (call ctx (Model.getxattr ~target ~name:"user.once" ~size:1 ()));
  expect_ret ctx "getxattr size query" 10
    (call ctx (Model.getxattr ~target ~name:"user.once" ~size:0 ()));
  expect_err ctx "system namespace" Errno.ENOTSUP
    (call ctx (Model.setxattr ~target ~name:"system.posix_acl" ~size:8 ()));
  (* symlink variants: l*xattr acts on the link itself *)
  let link = ctx.mount ^ "/xa_lnk" in
  ignore (aux ctx (Fs.Symlink (path, link)));
  expect_ok ctx "lsetxattr"
    (call ctx
       (Model.setxattr ~variant:Model.Sys_lsetxattr ~target:(Model.Path link)
          ~name:"user.onlink" ~size:5 ()));
  expect_ret ctx "lgetxattr" 5
    (call ctx
       (Model.getxattr ~variant:Model.Sys_lgetxattr ~target:(Model.Path link)
          ~name:"user.onlink" ~size:64 ()));
  expect_err ctx "getxattr through link misses it" Errno.ENODATA
    (call ctx (Model.getxattr ~target:(Model.Path link) ~name:"user.onlink" ~size:64 ()));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
   | Some fd ->
     expect_ok ctx "fsetxattr"
       (call ctx (Model.setxattr ~target:(Model.Fd fd) ~name:"user.viafd" ~size:7 ()));
     expect_ret ctx "fgetxattr" 7
       (call ctx (Model.getxattr ~target:(Model.Fd fd) ~name:"user.viafd" ~size:64 ()));
     close_fd ctx fd
   | None -> fail ctx "open failed in xattr_cycle")

let large_io ctx =
  let open Workload in
  let path = fresh_name ctx "big" in
  match open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ]) path with
  | None -> fail ctx "create failed in large_io"
  | Some fd ->
    List.iter
      (fun size -> expect_ret ctx "large write" size (write_fd ctx fd size))
      (* one size per log2 bucket from 256 KiB to 128 MiB *)
      [ 300 * 1024; 700 * 1024; 1 lsl 20; 3 lsl 20; 1 lsl 22; 12 lsl 20;
        1 lsl 24; 48 lsl 20; (1 lsl 26) + 12345; 160 lsl 20 ];
    close_fd ctx fd;
    ignore (aux ctx (Fs.Unlink path))

(* The single largest write in the corpus: 258 MiB, Figure 3's "Max". *)
let max_write ctx =
  let open Workload in
  let path = fresh_name ctx "max" in
  match open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ]) path with
  | None -> fail ctx "create failed in max_write"
  | Some fd ->
    let size = 258 * 1024 * 1024 in
    expect_ret ctx "258MiB write" size (write_fd ctx fd size);
    close_fd ctx fd;
    ignore (aux ctx (Fs.Unlink path))

let openat_variants ctx ~iters =
  let open Workload in
  for _ = 1 to iters do
    let path = fresh_name ctx "v" in
    (match
       open_fd ctx ~variant:Model.Sys_creat ~mode:0o644
         ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ])
         path
     with
     | Some fd ->
       ignore (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:0 fd (small_size ctx));
       close_fd ctx fd
     | None -> fail ctx "creat failed");
    (match open_fd ctx ~variant:Model.Sys_openat2 ~flags:(pick_read ctx) path with
     | Some fd ->
       ignore (read_fd ctx ~variant:Model.Sys_pread64 ~offset:0 fd 512);
       close_fd ctx fd
     | None -> fail ctx "openat2 failed");
    ignore (aux ctx (Fs.Unlink path))
  done

let durability ctx ~iters =
  let open Workload in
  for _ = 1 to max 1 (iters / 8) do
    let path = make_file ctx ~size:4096 "dur" in
    (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
     | Some fd ->
       ignore (write_fd ctx fd 8192);
       ignore (aux ctx (Fs.Fsync fd));
       close_fd ctx fd
     | None -> fail ctx "open failed in durability");
    let before = match Fs.checksum (fs ctx) path with Ok c -> c | Error _ -> 0 in
    (* fsync alone does not persist the name; sync the dir entry too *)
    (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_DIRECTORY ]) ctx.mount with
     | Some dfd ->
       ignore (aux ctx (Fs.Fsync dfd));
       close_fd ctx dfd
     | None -> ());
    ignore (aux ctx Fs.Crash);
    (match Fs.checksum (fs ctx) path with
     | Ok after when after = before -> ()
     | Ok _ -> fail ctx "fsynced data changed across crash"
     | Error _ -> fail ctx "fsynced file lost across crash")
  done

let badfd ctx =
  let open Workload in
  expect_err ctx "read closed fd" Errno.EBADF (read_fd ctx 99 16);
  expect_err ctx "write closed fd" Errno.EBADF (write_fd ctx 99 16);
  expect_err ctx "lseek closed fd" Errno.EBADF
    (call ctx (Model.lseek ~fd:99 ~offset:0 ~whence:Whence.SEEK_SET));
  expect_err ctx "close closed fd" Errno.EBADF (call ctx (Model.close 99));
  expect_err ctx "ftruncate closed fd" Errno.EBADF
    (call ctx (Model.truncate ~target:(Model.Fd 99) ~length:0 ()));
  expect_err ctx "fchmod closed fd" Errno.EBADF
    (call ctx (Model.chmod ~variant:Model.Sys_fchmod ~target:(Model.Fd 99) ~mode:0o644 ()));
  expect_err ctx "fchdir closed fd" Errno.EBADF (call ctx (Model.chdir (Model.Fd 99)));
  expect_err ctx "fgetxattr closed fd" Errno.EBADF
    (call ctx (Model.getxattr ~target:(Model.Fd 99) ~name:"user.x" ~size:8 ()));
  (* write on a read-only descriptor / read on a write-only one *)
  let path = make_file ctx ~size:64 "bf" in
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY ]) path with
   | Some fd ->
     expect_err ctx "write on O_RDONLY" Errno.EBADF (write_fd ctx fd 16);
     close_fd ctx fd
   | None -> ());
  match open_fd ctx ~flags:Open_flags.(of_flags [ O_WRONLY ]) path with
  | Some fd ->
    expect_err ctx "read on O_WRONLY" Errno.EBADF (read_fd ctx fd 16);
    close_fd ctx fd
  | None -> ()

let special_nodes ctx =
  let open Workload in
  let filesystem = fs ctx in
  let fifo = ctx.mount ^ "/pipe0" in
  (match Fs.mknod_special filesystem fifo `Fifo with Ok () -> () | Error _ -> fail ctx "mkfifo");
  expect_err ctx "nonblock write-open fifo" Errno.ENXIO
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY; O_NONBLOCK ]) fifo));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK ]) fifo with
   | Some fd ->
     expect_err ctx "nonblock fifo read" Errno.EAGAIN (read_fd ctx fd 512);
     close_fd ctx fd
   | None -> fail ctx "fifo read-open failed");
  let dev = ctx.mount ^ "/dev0" in
  (match Fs.mknod_special filesystem dev (`Device false) with
   | Ok () -> ()
   | Error _ -> fail ctx "mknod dev");
  expect_err ctx "driverless class" Errno.ENODEV
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) dev));
  let dev2 = ctx.mount ^ "/dev1" in
  (match Fs.mknod_special filesystem dev2 (`Device true) with
   | Ok () -> ()
   | Error _ -> fail ctx "mknod dev2");
  expect_err ctx "dead device" Errno.ENXIO
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) dev2));
  (* busy node *)
  let busy = make_file ctx "busy" in
  (match Fs.set_busy filesystem busy true with Ok () -> () | Error _ -> fail ctx "set_busy");
  expect_err ctx "busy open" Errno.EBUSY
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) busy))

let txtbsy_immutable ctx =
  let open Workload in
  let filesystem = fs ctx in
  let exe = make_file ctx ~size:1024 "prog" in
  (match Fs.set_executing filesystem exe true with Ok () -> () | Error _ -> fail ctx "set_executing");
  expect_err ctx "write-open running binary" Errno.ETXTBSY
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY ]) exe));
  expect_err ctx "truncate running binary" Errno.ETXTBSY
    (call ctx (Model.truncate ~target:(Model.Path exe) ~length:0 ()));
  let frozen = make_file ctx ~size:64 "frozen" in
  (match Fs.set_immutable filesystem frozen true with Ok () -> () | Error _ -> fail ctx "set_immutable");
  expect_err ctx "open immutable for write" Errno.EPERM
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY ]) frozen));
  expect_err ctx "truncate immutable" Errno.EPERM
    (call ctx (Model.truncate ~target:(Model.Path frozen) ~length:0 ()))

let rofs ctx =
  let open Workload in
  let path = make_file ctx ~size:512 "ro" in
  let filesystem = fs ctx in
  let was = Fs.is_read_only filesystem in
  Fs.set_read_only filesystem true;
  expect_err ctx "open write on ro fs" Errno.EROFS
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_WRONLY ]) path));
  expect_err ctx "creat on ro fs" Errno.EROFS
    (call ctx
       (Model.open_ ~mode:0o644
          ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ])
          (ctx.mount ^ "/ro_new")));
  expect_err ctx "mkdir on ro fs" Errno.EROFS (call ctx (Model.mkdir ~mode:0o755 (ctx.mount ^ "/ro_dir")));
  expect_err ctx "truncate on ro fs" Errno.EROFS
    (call ctx (Model.truncate ~target:(Model.Path path) ~length:0 ()));
  expect_err ctx "chmod on ro fs" Errno.EROFS
    (call ctx (Model.chmod ~target:(Model.Path path) ~mode:0o600 ()));
  expect_err ctx "setxattr on ro fs" Errno.EROFS
    (call ctx (Model.setxattr ~target:(Model.Path path) ~name:"user.ro" ~size:4 ()));
  (* reads still work *)
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDONLY ]) path with
   | Some fd ->
     ignore (read_fd ctx fd 512);
     close_fd ctx fd
   | None -> fail ctx "read-only open failed on ro fs");
  Fs.set_read_only filesystem was

let fd_exhaust ctx =
  let open Workload in
  let path = make_file ctx ~size:16 "fx" in
  let limit = (Fs.config (fs ctx)).Config.max_open_files in
  let opened = ref [] in
  let hit = ref false in
  (* one fd is implicitly budgeted for each open beyond the existing ones *)
  for _ = 1 to limit + 4 do
    match call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) path) with
    | Model.Ret fd -> opened := fd :: !opened
    | Model.Err Errno.EMFILE -> hit := true
    | Model.Err e -> fail ctx ("unexpected " ^ Errno.to_string e ^ " in fd_exhaust")
  done;
  if not !hit then fail ctx "EMFILE never hit";
  List.iter (fun fd -> close_fd ctx fd) !opened

let enospc ctx =
  let open Workload in
  let path = fresh_name ctx "fill" in
  match
    open_fd ctx ~mode:0o644
      ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ]) path
  with
  | None -> fail ctx "create failed in enospc"
  | Some fd ->
    let hit = ref false in
    (* the small config caps files at 1 MiB, so spread across files *)
    let current = ref fd in
    let n = ref 0 in
    while (not !hit) && !n < 64 do
      incr n;
      (match write_fd ctx !current (512 * 1024) with
       | Model.Err Errno.ENOSPC -> hit := true
       | Model.Err Errno.EFBIG | Model.Ret _ ->
         close_fd ctx !current;
         (match
            open_fd ctx ~mode:0o644
              ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ])
              (fresh_name ctx "fill")
          with
          | Some fd' -> current := fd'
          | None -> hit := true (* open itself failed for lack of space *))
       | Model.Err e -> fail ctx ("unexpected " ^ Errno.to_string e ^ " in enospc"); hit := true)
    done;
    if !n >= 64 && not !hit then fail ctx "ENOSPC never hit";
    close_fd ctx !current

let edquot ctx =
  let open Workload in
  let filesystem = fs ctx in
  expect_ok ctx "open up mount"
    (call ctx (Model.chmod ~target:(Model.Path ctx.mount) ~mode:0o777 ()));
  Fs.set_credentials filesystem ~uid:1000 ~gid:1000;
  let hit = ref false in
  let n = ref 0 in
  while (not !hit) && !n < 32 do
    incr n;
    let path = fresh_name ctx "q" in
    match
      open_fd ctx ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ]) path
    with
    | None -> hit := true (* inode charge alone can exceed the quota *)
    | Some fd ->
      (match write_fd ctx fd (256 * 1024) with
       | Model.Err Errno.EDQUOT -> hit := true
       | _ -> ());
      close_fd ctx fd
  done;
  if not !hit then fail ctx "EDQUOT never hit";
  Fs.set_credentials filesystem ~uid:0 ~gid:0

let efbig ctx =
  let open Workload in
  let limit = (Fs.config (fs ctx)).Config.max_file_size in
  let path = make_file ctx "fb" in
  expect_err ctx "truncate beyond limit" Errno.EFBIG
    (call ctx (Model.truncate ~target:(Model.Path path) ~length:(limit + 1) ()));
  expect_ok ctx "truncate to limit"
    (call ctx (Model.truncate ~target:(Model.Path path) ~length:limit ()));
  match open_fd ctx ~flags:Open_flags.(of_flags [ O_WRONLY ]) path with
  | Some fd ->
    expect_err ctx "write at limit" Errno.EFBIG
      (write_fd ctx ~variant:Model.Sys_pwrite64 ~offset:limit fd 1);
    close_fd ctx fd
  | None -> fail ctx "open failed in efbig"

let overflow_open ctx =
  let open Workload in
  let path = make_file ctx "huge" in
  let threshold = (Fs.config (fs ctx)).Config.large_file_threshold in
  expect_ok ctx "grow to 2GiB"
    (call ctx (Model.truncate ~target:(Model.Path path) ~length:threshold ()));
  (* xfstests never passes O_LARGEFILE (an untested flag), so a large file
     fails to open — EOVERFLOW output coverage from an input-coverage gap *)
  expect_err ctx "open 2GiB without O_LARGEFILE" Errno.EOVERFLOW
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) path));
  ignore (aux ctx (Fs.Unlink path))

let inject_env ctx =
  let open Workload in
  let filesystem = fs ctx in
  let path = make_file ctx ~size:4096 "sig" in
  (* a signal arrives mid-open *)
  Fs.inject_errno filesystem ~base:Model.Open Errno.EINTR;
  expect_err ctx "interrupted open" Errno.EINTR
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) path));
  (match open_fd ctx ~flags:Open_flags.(of_flags [ O_RDWR ]) path with
   | Some fd ->
     Fs.inject_errno filesystem ~base:Model.Read Errno.EINTR;
     expect_err ctx "interrupted read" Errno.EINTR (read_fd ctx fd 512);
     Fs.inject_errno filesystem ~base:Model.Write Errno.EINTR;
     expect_err ctx "interrupted write" Errno.EINTR (write_fd ctx fd 512);
     (* bad user buffers *)
     Fs.inject_errno filesystem ~base:Model.Read Errno.EFAULT;
     expect_err ctx "bad read buffer" Errno.EFAULT (read_fd ctx fd 512);
     Fs.inject_errno filesystem ~base:Model.Write Errno.EFAULT;
     expect_err ctx "bad write buffer" Errno.EFAULT (write_fd ctx fd 512);
     Fs.inject_errno filesystem ~base:Model.Open Errno.EFAULT;
     expect_err ctx "bad path pointer" Errno.EFAULT
       (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY ]) path));
     (* media error surfacing at close, and write EIO *)
     Fs.inject_errno filesystem ~base:Model.Write Errno.EIO;
     expect_err ctx "write EIO" Errno.EIO (write_fd ctx fd 512);
     Fs.inject_errno filesystem ~base:Model.Close Errno.EIO;
     expect_err ctx "close EIO" Errno.EIO (call ctx (Model.close fd));
     close_fd ctx fd
   | None -> fail ctx "open failed in inject_env");
  (* EAGAIN on an interrupted nonblocking open of a contended file is
     modeled as an environment condition too *)
  Fs.inject_errno filesystem ~base:Model.Open Errno.EAGAIN;
  expect_err ctx "contended open" Errno.EAGAIN
    (call ctx (Model.open_ ~flags:Open_flags.(of_flags [ O_RDONLY; O_NONBLOCK; O_NOFOLLOW; O_CLOEXEC ]) path));
  (* EDQUOT surfaced by open(O_CREAT) *)
  Fs.inject_errno filesystem ~base:Model.Open Errno.EDQUOT;
  expect_err ctx "quota at create" Errno.EDQUOT
    (call ctx
       (Model.open_ ~mode:0o644 ~flags:Open_flags.(of_flags [ O_WRONLY; O_CREAT; O_TRUNC ]) (fresh_name ctx "dq")))

let tmpfile ctx =
  let open Workload in
  (match
     open_fd ctx ~mode:0o600 ~flags:Open_flags.(of_flags [ O_RDWR; O_TMPFILE; O_CLOEXEC ]) ctx.mount
   with
   | Some fd ->
     expect_ret ctx "tmpfile write" 4096 (write_fd ctx fd 4096);
     close_fd ctx fd
   | None -> fail ctx "O_TMPFILE open failed");
  (* O_TMPFILE demands a writable access mode *)
  expect_err ctx "read-only tmpfile" Errno.EINVAL
    (call ctx (Model.open_ ~mode:0o600 ~flags:Open_flags.(of_flags [ O_RDONLY; O_TMPFILE ]) ctx.mount))

(* --- the corpus --- *)

type archetype =
  | Rw_seq
  | Rw_random
  | Vectored
  | Zero_boundary
  | Seek_all
  | Truncate_bounds
  | Modes
  | Error_paths
  | Xattr_cycle
  | Large_io
  | Max_write
  | Openat_variants
  | Durability
  | Badfd
  | Special_nodes
  | Txtbsy
  | Rofs
  | Fd_exhaust
  | Enospc
  | Edquot
  | Efbig
  | Overflow_open
  | Inject_env
  | Tmpfile

(* Archetype selection per test index.  The distribution mirrors the real
   corpus: most tests are I/O regression loops; boundary and error-path
   tests are the long tail. *)
let archetype_of ~group ~index =
  match group with
  | `Generic ->
    (match index mod 20 with
     | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> Rw_seq
     | 7 | 8 -> Rw_random
     | 9 -> Vectored
     | 10 -> Zero_boundary
     | 11 -> Seek_all
     | 12 -> Truncate_bounds
     | 13 -> Modes
     | 14 -> Error_paths
     | 15 -> Openat_variants
     | 16 -> Durability
     | 17 -> Badfd
     | 18 -> (if index mod 3 = 0 then Special_nodes else Txtbsy)
     | _ ->
       (match index mod 140 with
        | 19 -> Fd_exhaust
        | 39 -> Enospc
        | 59 -> Rofs
        | 79 -> Inject_env
        | 99 -> Tmpfile
        | 119 -> Efbig
        | _ -> Rw_seq))
  | `Ext4 ->
    (match index with
     | 13 -> Max_write
     | 27 -> Overflow_open
     | 41 -> Edquot
     | 55 -> Enospc
     | 69 -> Inject_env
     | _ ->
       (match index mod 10 with
        | 0 | 1 | 2 -> Rw_seq
        | 3 -> Rw_random
        | 4 | 5 -> Xattr_cycle
        | 6 -> Large_io
        | 7 -> Truncate_bounds
        | 8 -> Modes
        | _ -> Seek_all))

let needs_small_config = function
  | Fd_exhaust | Enospc | Edquot | Efbig -> true
  | _ -> false

let run_archetype ctx archetype ~iters =
  match archetype with
  | Rw_seq -> rw_seq ctx ~iters
  | Rw_random -> rw_random ctx ~iters
  | Vectored -> vectored ctx ~iters
  | Zero_boundary -> zero_boundary ctx
  | Seek_all -> seek_all ctx
  | Truncate_bounds -> truncate_bounds ctx
  | Modes -> modes ctx
  | Error_paths -> error_paths ctx
  | Xattr_cycle -> xattr_cycle ctx ~iters
  | Large_io -> large_io ctx
  | Max_write -> max_write ctx
  | Openat_variants -> openat_variants ctx ~iters
  | Durability -> durability ctx ~iters
  | Badfd -> badfd ctx
  | Special_nodes -> special_nodes ctx
  | Txtbsy -> txtbsy_immutable ctx
  | Rofs -> rofs ctx
  | Fd_exhaust -> fd_exhaust ctx
  | Enospc -> enospc ctx
  | Edquot -> edquot ctx
  | Efbig -> efbig ctx
  | Overflow_open -> overflow_open ctx
  | Inject_env -> inject_env ctx
  | Tmpfile -> tmpfile ctx

let dir_listing_pass ctx =
  (* metadata passes over the mount: directory opens *)
  let open Workload in
  match open_fd ctx ~flags:(pick ctx dir_sets) ctx.mount with
  | Some fd -> close_fd ctx fd
  | None -> ()

let run ?(seed = 7) ?(scale = 1.0) ?(faults = []) ?config ?sink ?dispatch ?per_test
    ~coverage
    () =
  (match (dispatch, per_test) with
   | Some _, Some _ ->
     invalid_arg "Xfstests.run: dispatch and per_test are mutually exclusive"
   | _ -> ());
  let master = Prng.create ~seed in
  let failures = ref [] in
  let tests = ref 0 in
  let events_total = ref 0 in
  let events_kept = ref 0 in
  let filter = Filter.mount_point mount in
  let run_test group index =
    incr tests;
    Metrics.Counter.incr m_tests;
    let name =
      match group with
      | `Generic -> Printf.sprintf "generic/%03d" index
      | `Ext4 -> Printf.sprintf "ext4/%03d" index
    in
    let archetype = archetype_of ~group ~index in
    let config =
      let base =
        match config with
        | Some base -> base
        | None -> if needs_small_config archetype then Config.small else Config.default
      in
      Config.with_faults faults base
    in
    let ctx =
      Workload.init ~config ~comm ~mount ~seed:(Int64.to_int (Prng.next_int64 master)) ()
    in
    (match sink with
     | Some sink -> Tracer.on_event ctx.Workload.tracer sink
     | None -> ());
    let test_cov =
      match per_test with Some _ -> Some (Coverage.create ()) | None -> None
    in
    (match dispatch with
     | Some d ->
       (* the pipeline owns filtering and accumulation; [events_kept]
          stays 0 here and the caller takes it from the merge *)
       Tracer.on_event ctx.Workload.tracer d
     | None ->
       Tracer.on_event ctx.Workload.tracer
         (Filter.sink filter (fun e ->
              incr events_kept;
              match e.Event.payload with
              | Event.Tracked call ->
                Coverage.observe coverage call e.Event.outcome;
                (match test_cov with
                 | Some cov -> Coverage.observe cov call e.Event.outcome
                 | None -> ())
              | Event.Aux _ -> ())));
    Workload.begin_test ctx name;
    if index mod 7 = 0 then Workload.noise ctx;
    dir_listing_pass ctx;
    let iters = max 1 (int_of_float (float_of_int (40 + (index mod 25) * 10) *. scale)) in
    run_archetype ctx archetype ~iters;
    events_total := !events_total + Tracer.events_emitted ctx.Workload.tracer;
    (match (per_test, test_cov) with
     | Some f, Some cov -> f name cov
     | _ -> ());
    failures := List.rev_append (Workload.failures ctx) !failures
  in
  Span.with_ ~name:"xfstests/generic" (fun () ->
      for i = 1 to generic_tests do
        run_test `Generic i
      done);
  Span.with_ ~name:"xfstests/ext4" (fun () ->
      for i = 1 to ext4_tests do
        run_test `Ext4 i
      done);
  ( List.rev !failures,
    { tests_run = !tests; events_total = !events_total; events_kept = !events_kept } )
