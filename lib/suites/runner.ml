module Coverage = Iocov_core.Coverage
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span
module Log = Iocov_obs.Log
module Replay = Iocov_par.Replay

type suite = Crashmonkey | Xfstests | Ltp

let suite_name = function
  | Crashmonkey -> "CrashMonkey"
  | Xfstests -> "xfstests"
  | Ltp -> "LTP"

let suite_of_name s =
  match String.lowercase_ascii s with
  | "crashmonkey" | "cm" -> Some Crashmonkey
  | "xfstests" | "xfs" -> Some Xfstests
  | "ltp" -> Some Ltp
  | _ -> None

type result = {
  suite : suite;
  coverage : Coverage.t;
  failures : string list;
  events_total : int;
  events_kept : int;
  workloads : int;
  elapsed_s : float;
}

let suite_counter name help suite =
  Metrics.counter Metrics.default name
    ~labels:[ ("suite", suite_name suite) ]
    ~help

let mount_of = function
  | Crashmonkey -> Crashmonkey.mount
  | Xfstests -> Xfstests.mount
  | Ltp -> Ltp.mount

let exec ?dispatch ?config ~seed ~scale ~faults ~coverage suite =
  match suite with
  | Crashmonkey ->
    let failures, stats =
      Crashmonkey.run ~seed ~scale ~faults ?config ?dispatch ~coverage ()
    in
    ( failures,
      stats.Crashmonkey.events_total,
      stats.Crashmonkey.events_kept,
      stats.Crashmonkey.workloads_run )
  | Xfstests ->
    let failures, stats =
      Xfstests.run ~seed ~scale ~faults ?config ?dispatch ~coverage ()
    in
    ( failures,
      stats.Xfstests.events_total,
      stats.Xfstests.events_kept,
      stats.Xfstests.tests_run )
  | Ltp ->
    let failures, stats =
      Ltp.run ~seed ~scale ~faults ?config ?dispatch ~coverage ()
    in
    ( failures,
      stats.Ltp.events_total,
      stats.Ltp.events_kept,
      stats.Ltp.testcases_run )

let counters_name = function
  | Replay.Dense -> "dense"
  | Replay.Reference -> "reference"

let run ?(seed = 42) ?(scale = 1.0) ?(faults = []) ?jobs
    ?(counters = Replay.Dense) ?progress ?config suite =
  Log.info "suite run starting"
    ~fields:
      [ ("suite", Log.str (suite_name suite));
        ("seed", Log.int seed);
        ("scale", Log.float scale);
        ("faults", Log.int (List.length faults));
        ("jobs", Log.int (match jobs with None -> 1 | Some j -> j));
        ("counters", Log.str (counters_name counters)) ];
  (* The root span doubles as the run's wall clock: [elapsed_s] is the
     root's duration, so profile tree and result always agree. *)
  let (coverage, failures, events_total, events_kept, workloads), root =
    Span.timed ~name:("runner/" ^ suite_name suite) (fun () ->
        (* One pipeline for every run: the suite is a live source, the
           mount filter is a stage, and the sharded replay engine
           (inline at one job — no domain, no channel) accumulates.
           The suite's own observe path is bypassed, so hand it a
           throwaway accumulator; the coverage is byte-identical to a
           direct observe by the determinism contract (DESIGN.md §13),
           differential-tested in test/test_pipe.ml. *)
        let failures = ref [] in
        let events_total = ref 0 in
        let workloads = ref 0 in
        let feed emit =
          let f, et, _, w =
            exec ~dispatch:emit ?config ~seed ~scale ~faults
              ~coverage:(Coverage.create ~metered:false ())
              suite
          in
          failures := f;
          events_total := et;
          workloads := w
        in
        let config =
          Iocov_pipe.Driver.config
            ~jobs:(match jobs with Some j -> j | None -> 1)
            ~counters ?progress ()
        in
        match
          Iocov_pipe.Driver.run ~config
            ~stages:[ Iocov_pipe.Stage.mount (mount_of suite) ]
            ~sinks:[ Iocov_pipe.Sink.gauges ]
            (Iocov_pipe.Source.live ~label:(suite_name suite) feed)
        with
        | Error msg -> failwith ("Runner.run: " ^ msg)
        | Ok { product; _ } ->
          ( product.Iocov_pipe.Sink.coverage,
            !failures,
            !events_total,
            product.Iocov_pipe.Sink.kept,
            !workloads ))
  in
  Metrics.Counter.add
    (suite_counter "iocov_runner_workloads_total" "Workloads or tests executed." suite)
    workloads;
  Metrics.Counter.add
    (suite_counter "iocov_runner_oracle_failures_total" "Oracle violations flagged."
       suite)
    (List.length failures);
  Log.info "suite run finished"
    ~fields:
      [ ("suite", Log.str (suite_name suite));
        ("workloads", Log.int workloads);
        ("events_kept", Log.int events_kept);
        ("failures", Log.int (List.length failures)) ];
  {
    suite;
    coverage;
    failures;
    events_total;
    events_kept;
    workloads;
    elapsed_s = root.Span.duration_s;
  }

let run_both ?seed ?scale ?faults ?jobs ?counters () =
  ( run ?seed ?scale ?faults ?jobs ?counters Crashmonkey,
    run ?seed ?scale ?faults ?jobs ?counters Xfstests )

let detects r = r.failures <> []

(* The [default] lattice point maps to [config:None]: each suite keeps
   its own per-test geometry choice (xfstests' small-config archetypes,
   LTP's Small cases), so a lattice-of-one sweep is byte-identical to a
   plain run.  Any other point pins that point's config for the whole
   suite. *)
let config_of_point (point : Iocov_vfs.Config.point) =
  if Iocov_vfs.Config.equal point.Iocov_vfs.Config.pt_config Iocov_vfs.Config.default
  then None
  else Some point.Iocov_vfs.Config.pt_config

let run_lattice ?seed ?scale ?faults ?jobs ?counters ?progress ~points suite =
  List.map
    (fun (point : Iocov_vfs.Config.point) ->
      let config = config_of_point point in
      (point, run ?seed ?scale ?faults ?jobs ?counters ?progress ?config suite))
    points
