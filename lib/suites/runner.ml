module Coverage = Iocov_core.Coverage
module Filter = Iocov_trace.Filter
module Metrics = Iocov_obs.Metrics
module Span = Iocov_obs.Span
module Log = Iocov_obs.Log
module Pool = Iocov_par.Pool
module Replay = Iocov_par.Replay

type suite = Crashmonkey | Xfstests | Ltp

let suite_name = function
  | Crashmonkey -> "CrashMonkey"
  | Xfstests -> "xfstests"
  | Ltp -> "LTP"

let suite_of_name s =
  match String.lowercase_ascii s with
  | "crashmonkey" | "cm" -> Some Crashmonkey
  | "xfstests" | "xfs" -> Some Xfstests
  | "ltp" -> Some Ltp
  | _ -> None

type result = {
  suite : suite;
  coverage : Coverage.t;
  failures : string list;
  events_total : int;
  events_kept : int;
  workloads : int;
  elapsed_s : float;
}

let suite_counter name help suite =
  Metrics.counter Metrics.default name
    ~labels:[ ("suite", suite_name suite) ]
    ~help

let mount_of = function
  | Crashmonkey -> Crashmonkey.mount
  | Xfstests -> Xfstests.mount
  | Ltp -> Ltp.mount

let exec ?dispatch ~seed ~scale ~faults ~coverage suite =
  match suite with
  | Crashmonkey ->
    let failures, stats = Crashmonkey.run ~seed ~scale ~faults ?dispatch ~coverage () in
    ( failures,
      stats.Crashmonkey.events_total,
      stats.Crashmonkey.events_kept,
      stats.Crashmonkey.workloads_run )
  | Xfstests ->
    let failures, stats = Xfstests.run ~seed ~scale ~faults ?dispatch ~coverage () in
    ( failures,
      stats.Xfstests.events_total,
      stats.Xfstests.events_kept,
      stats.Xfstests.tests_run )
  | Ltp ->
    let failures, stats = Ltp.run ~seed ~scale ~faults ?dispatch ~coverage () in
    ( failures,
      stats.Ltp.events_total,
      stats.Ltp.events_kept,
      stats.Ltp.testcases_run )

let counters_name = function
  | Replay.Dense -> "dense"
  | Replay.Reference -> "reference"

let run ?(seed = 42) ?(scale = 1.0) ?(faults = []) ?jobs
    ?(counters = Replay.Dense) suite =
  Log.info "suite run starting"
    ~fields:
      [ ("suite", Log.str (suite_name suite));
        ("seed", Log.int seed);
        ("scale", Log.float scale);
        ("faults", Log.int (List.length faults));
        ("jobs", Log.int (match jobs with None -> 1 | Some j -> j));
        ("counters", Log.str (counters_name counters)) ];
  (* The root span doubles as the run's wall clock: [elapsed_s] is the
     root's duration, so profile tree and result always agree. *)
  let (coverage, failures, events_total, events_kept, workloads), root =
    Span.timed ~name:("runner/" ^ suite_name suite) (fun () ->
        match (jobs, counters) with
        | None, Replay.Reference ->
          (* the classic inline path: the suite observes directly into
             a metered reference accumulator *)
          let coverage = Coverage.create () in
          let failures, events_total, events_kept, workloads =
            exec ~seed ~scale ~faults ~coverage suite
          in
          (coverage, failures, events_total, events_kept, workloads)
        | _ ->
          (* route the suite's live event stream through the replay
             pipeline (inline at one job — no domain, no channel —
             sharded otherwise); the suite's own observe path is
             bypassed, so hand it a throwaway accumulator *)
          let pool =
            Pool.create ~jobs:(match jobs with Some j -> j | None -> 1) ()
          in
          let session =
            Replay.session ~pool ~counters
              ~filter:(Filter.mount_point (mount_of suite)) ()
          in
          let failures, events_total, _, workloads =
            exec ~dispatch:(Replay.sink session) ~seed ~scale ~faults
              ~coverage:(Coverage.create ~metered:false ())
              suite
          in
          let o = Replay.finish session in
          (o.Replay.coverage, failures, events_total, o.Replay.kept, workloads))
  in
  Metrics.Counter.add
    (suite_counter "iocov_runner_workloads_total" "Workloads or tests executed." suite)
    workloads;
  Metrics.Counter.add
    (suite_counter "iocov_runner_oracle_failures_total" "Oracle violations flagged."
       suite)
    (List.length failures);
  Coverage.publish_gauges coverage;
  Log.info "suite run finished"
    ~fields:
      [ ("suite", Log.str (suite_name suite));
        ("workloads", Log.int workloads);
        ("events_kept", Log.int events_kept);
        ("failures", Log.int (List.length failures)) ];
  {
    suite;
    coverage;
    failures;
    events_total;
    events_kept;
    workloads;
    elapsed_s = root.Span.duration_s;
  }

let run_both ?seed ?scale ?faults () =
  (run ?seed ?scale ?faults Crashmonkey, run ?seed ?scale ?faults Xfstests)

let detects r = r.failures <> []
