(** Trace records.

    One record per syscall, in the shape a kernel tracer (LTTng in the
    paper) delivers: who called, what was called with which arguments,
    and what came back.  [path_hint] is the primary pathname the call
    operated on, reconstructed by the tracer's fd-tracking — it is what
    the mount-point filter matches against. *)

type payload =
  | Tracked of Iocov_syscall.Model.call
      (** one of the 27 modeled syscalls *)
  | Aux of { name : string; detail : string }
      (** any other operation the workload performed (fsync, unlink,
          rename, ...) — outside the coverage domain but present in a raw
          trace *)

type t = {
  seq : int;              (** per-tracer sequence number *)
  timestamp_ns : int;     (** logical nanoseconds *)
  pid : int;
  comm : string;          (** process name, e.g. ["xfstests"] *)
  payload : payload;
  outcome : Iocov_syscall.Model.outcome;
  path_hint : string option;
}

val call : t -> Iocov_syscall.Model.call option
(** The modeled call, if this is a tracked record. *)

val is_tracked : t -> bool

val base : t -> Iocov_syscall.Model.base option
(** Base syscall of a tracked record. *)

val iter_tracked :
  t list -> (Iocov_syscall.Model.call -> Iocov_syscall.Model.outcome -> unit) -> unit
(** Apply [f call outcome] to every tracked record, skipping [Aux]
    records — the batch-observe loop of the replay pipeline, shared by
    both counter backends. *)
