(** Compact binary trace encoding.

    LTTng's native on-disk representation is CTF, a binary format —
    text is for humans, binary is what makes tracing "low-overhead" at
    millions of events.  This module is the project's CTF analogue: a
    stream of LEB128-varint records with an incremental string table
    (each distinct pathname/comm is emitted once and referenced by index
    thereafter) and delta-encoded timestamps.  A paper-scale xfstests
    trace shrinks by roughly an order of magnitude versus the text form
    and parses several times faster.

    {b v2 layout} (the default; DESIGN.md §12): the 5-byte magic
    ["IOCT\x02"] followed by the chapter size (uvarint), then one
    {e frame} per event:

    {v sync(0xF5 0x9E) · payload length (uvarint) · CRC-32 of payload (4B LE) ·
   payload = chapter id (uvarint) · in-chapter index (uvarint) ·
             string-table base count (uvarint) · record bytes (as v1) v}

    The sync marker and CRC make corruption detectable and {e local}:
    lenient ingestion scans for the next CRC-valid frame instead of
    giving up.  [chapter id × chapter size + in-chapter index] pins
    every frame to an absolute record number, so the index gap at the
    first intact frame after a damaged region is the {e exact} count of
    records lost in it (a lost tail — no further intact frame — is the
    one loss reported as [truncated] without a count).  The writer
    restarts its string table every [chapter] records, and each payload
    carries the table size before the record — so a reader that lost
    frames can pad the table with placeholders and fail loudly
    ([Lost_reference]) on a dangling reference instead of resolving it
    to the wrong string.  Timestamps are delta-encoded; after a lenient
    skip the deltas of lost records are missing, so subsequent absolute
    timestamps are offset — coverage, which never reads timestamps, is
    unaffected.

    {b v1 layout} (["IOCT\x01"], still readable): the bare record bytes
    with no framing — corruption is detected only as a decode failure
    and nothing after it is recoverable.

    Record bytes: timestamp delta (uvarint) · pid (uvarint) · comm
    (string ref) · payload (tracked: variant index + argument fields;
    aux: name and detail string refs) · outcome (tag + zigzag value or
    errno index) · optional path hint (string ref).  String refs are
    uvarints: [0] introduces a fresh string (length + bytes) appended to
    the table, [n+1] references table entry [n]. *)

type writer

val writer : ?version:int -> ?chapter:int -> out_channel -> writer
(** Write the header and return a streaming encoder.  [version] is [2]
    (default) or [1]; [chapter] (default 1024, v2 only) is how many
    records share a string table before it restarts — smaller chapters
    bound corruption blast radius at the cost of re-emitting hot
    strings.  Raises [Invalid_argument] on an unsupported version or a
    non-positive chapter. *)

val write_event : writer -> Event.t -> unit

val sink : writer -> Event.t -> unit
(** A tracer sink (same function as {!write_event}). *)

val flush : writer -> unit

(** {2 Streaming decode}

    The incremental string table makes decoding sequential, but not
    materializing: a {!stream} hands out events in bounded batches, so a
    multi-million-event trace runs in O(batch) memory — and the decoded
    batches are what the parallel pipeline feeds to its worker shards. *)

type mode =
  | Strict  (** first defect fails the stream, reporting its byte offset *)
  | Lenient of Iocov_util.Anomaly.budget
      (** skip damaged records, resync on the next intact frame, and
          account for every loss — up to the error budget *)

type stream

val open_stream : ?mode:mode -> in_channel -> (stream, string) result
(** Consume and check the magic header (either version).  [mode]
    defaults to [Strict]. *)

val stream_version : stream -> int

val read_batch : stream -> max:int -> (Event.t array, string) result
(** Decode up to [max] events ([max > 0]); an empty array means EOF.
    [seq] is assigned from record order, starting at 1.  After an
    [Error] the stream stays failed.

    In [Strict] mode the first corrupt or truncated record is an
    [Error] carrying its byte offset.  In [Lenient] mode damaged
    records are skipped (v2: with a resync scan to the next CRC-valid
    frame; v1: the rest of the stream is abandoned as truncated) and
    tallied into {!completeness}; the only [Error]s are an exceeded
    budget or a non-trace input. *)

val completeness : stream -> Iocov_util.Anomaly.completeness
(** The stream's ledger so far: events decoded, records skipped,
    resync regions, bytes discarded, truncation, and the first
    anomalies in stream order. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result
(** Strict streaming decode to EOF (batched {!read_batch} internally);
    fails with a message on corruption.  [seq] is assigned from record
    order. *)

val read_channel : in_channel -> (Event.t list, string) result

val is_binary_trace : in_channel -> bool
(** Peek the magic (either version) without consuming it (the channel
    is rewound), so [analyze] can auto-detect the format. *)

(** {2 Cursors}

    A cursor freezes a stream's decode state at a batch boundary —
    offset, sequence number, timestamp base, chapter, and the live
    string table — so a checkpointed run can reopen the trace and
    continue exactly where it stopped. *)

type cursor = {
  c_version : int;
  c_offset : int;  (** byte offset of the next unread frame *)
  c_seq : int;
  c_last_ts : int;
  c_chapter : int;
  c_strings : string option array;  (** [None] = lost in a corrupt frame *)
}

val cursor : stream -> cursor
(** Capture the current decode state.  Only meaningful between
    {!read_batch} calls. *)

val resume_stream : ?mode:mode -> in_channel -> cursor -> (stream, string) result
(** Reopen a trace at a cursor: checks the magic and version, seeks to
    the cursor offset, and restores the decode state.  Subsequent
    {!read_batch} calls continue the original numbering. *)
