(** Compact binary trace encoding.

    LTTng's native on-disk representation is CTF, a binary format —
    text is for humans, binary is what makes tracing "low-overhead" at
    millions of events.  This module is the project's CTF analogue: a
    stream of LEB128-varint records with an incremental string table
    (each distinct pathname/comm is emitted once and referenced by index
    thereafter) and delta-encoded timestamps.  A paper-scale xfstests
    trace shrinks by roughly an order of magnitude versus the text form
    and parses several times faster.

    Layout: the 5-byte header ["IOCT\x01"], then per event:
    timestamp delta (uvarint) · pid (uvarint) · comm (string ref) ·
    payload (tracked: variant index + argument fields; aux: name and
    detail string refs) · outcome (tag + zigzag value or errno index) ·
    optional path hint (string ref).  String refs are uvarints: [0]
    introduces a fresh string (length + bytes) appended to the table,
    [n+1] references table entry [n]. *)

type writer

val writer : out_channel -> writer
(** Write the header and return a streaming encoder. *)

val write_event : writer -> Event.t -> unit

val sink : writer -> Event.t -> unit
(** A tracer sink (same function as {!write_event}). *)

val flush : writer -> unit

(** {2 Streaming decode}

    The incremental string table makes decoding sequential, but not
    materializing: a {!stream} hands out events in bounded batches, so a
    multi-million-event trace runs in O(batch) memory — and the decoded
    batches are what the parallel pipeline feeds to its worker shards. *)

type stream

val open_stream : in_channel -> (stream, string) result
(** Consume and check the magic header. *)

val read_batch : stream -> max:int -> (Event.t array, string) result
(** Decode up to [max] events ([max > 0]); an empty array means EOF.
    [seq] is assigned from record order, starting at 1.  After an
    [Error] the stream stays failed. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result
(** Streaming decode to EOF (batched {!read_batch} internally); fails
    with a message on corruption.  [seq] is assigned from record
    order. *)

val read_channel : in_channel -> (Event.t list, string) result

val is_binary_trace : in_channel -> bool
(** Peek the magic without consuming it (the channel is rewound), so
    [analyze] can auto-detect the format. *)
