(** Compact binary trace encoding.

    LTTng's native on-disk representation is CTF, a binary format —
    text is for humans, binary is what makes tracing "low-overhead" at
    millions of events.  This module is the project's CTF analogue: a
    stream of LEB128-varint records with an incremental string table
    (each distinct pathname/comm is emitted once and referenced by index
    thereafter) and delta-encoded timestamps.  A paper-scale xfstests
    trace shrinks by roughly an order of magnitude versus the text form
    and parses several times faster.

    {b v3 layout} (the default; DESIGN.md §15): the 5-byte magic
    ["IOCT\x03"] followed by the chapter size (uvarint), then a stream
    of multi-record {e frames}:

    {v sync(0xF5 0x9E) · payload length (uvarint) · CRC-32 of payload (4B LE) ·
   payload = chapter id (uvarint) · first in-chapter index (uvarint) ·
             string-table base count (uvarint) · record count (uvarint) ·
             record count × record bytes v}

    v3 record bytes: timestamp delta (zigzag svarint, exact) · pid
    delta (zigzag svarint) · comm (string ref) · flags byte (bit 0:
    payload is aux, bit 1: outcome is an errno, bit 2: a path hint
    follows; values above 7 are corrupt) · optional path hint (string
    ref, {e before} the payload so a filtering decoder can drop the
    record without building its call) · payload (tracked: variant
    index + argument fields; aux: name and detail string refs) ·
    outcome (zigzag return value, or errno index when bit 1 is set).

    The writer batches [frame] records per frame (default 256), so the
    ~16-byte frame overhead amortizes to noise and the whole frame is
    CRC'd and written with one [output] call.  Frames never span a
    chapter boundary.  A torn or corrupt frame loses at most [frame]
    records, and the loss stays {e exactly} counted: the intact frame
    after a damaged region pins itself to an absolute record number
    ([chapter × chapter size + first index]), so the index gap is the
    exact number of records destroyed.  A record that fails to decode
    {e inside} a CRC-valid frame (a dangling string reference after
    lost frames) voids the rest of that frame — also an exact count,
    since the frame header declares how many records it held.

    {b v2 layout} (["IOCT\x02"], still readable): one record per frame
    with the same sync/CRC envelope and a per-frame header of
    chapter id · in-chapter index · string-table base count; record
    bytes as v1 (clamped uvarint timestamp delta, absolute pid, hint
    last).  Costs ~73% byte overhead over v1.

    {b v1 layout} (["IOCT\x01"], still readable): the bare record bytes
    with no framing — corruption is detected only as a decode failure
    and nothing after it is recoverable.

    String tables restart every [chapter] records (chapter id in every
    frame header), bounding a corrupt frame's lost-reference blast
    radius to its chapter.  Each frame carries the table size at its
    start, so a reader that lost frames pads the table with
    placeholders and fails loudly ([Lost_reference]) on a dangling
    reference instead of resolving it to the wrong string.  Timestamps
    are delta-encoded; after a lenient skip the deltas of lost records
    are missing, so subsequent absolute timestamps are offset —
    coverage, which never reads timestamps, is unaffected.

    v1/v2 record bytes: timestamp delta (uvarint, clamped at 0) · pid
    (uvarint) · comm (string ref) · payload · outcome · optional path
    hint (string ref).  String refs are uvarints: [0] introduces a
    fresh string (length + bytes) appended to the table, [n+1]
    references table entry [n]. *)

type writer

val writer : ?version:int -> ?chapter:int -> ?frame:int -> out_channel -> writer
(** Write the header and return a streaming encoder.  [version] is [3]
    (default), [2], or [1]; [chapter] (v2/v3 only) is how many records
    share a string table before it restarts — smaller chapters bound
    corruption blast radius at the cost of re-emitting hot strings.
    The default is version-dependent: [2^20] (the maximum) for v3 —
    frames already bound per-defect loss, so a typical trace interns
    each string once, like v1's global table — and 1024 for v2, where
    the chapter is the only bound on loss.  [frame] (default 256, v3 only) is how many records
    share one CRC frame; it is clamped to [chapter].  v2/v3 writers
    buffer whole frames: call {!flush} (or let a final {!flush} before
    close) to emit a partial frame — [close_out] alone loses pending
    records.  Raises [Invalid_argument] on an unsupported version or a
    non-positive chapter/frame. *)

val write_event : writer -> Event.t -> unit

val sink : writer -> Event.t -> unit
(** A tracer sink (same function as {!write_event}). *)

val flush : writer -> unit
(** Emit any pending partial frame and flush the channel. *)

(** {2 Streaming decode}

    The incremental string table makes decoding sequential, but not
    materializing: a {!stream} hands out events in bounded batches, so a
    multi-million-event trace runs in O(batch) memory — and the decoded
    batches are what the parallel pipeline feeds to its worker shards. *)

type mode =
  | Strict  (** first defect fails the stream, reporting its byte offset *)
  | Lenient of Iocov_util.Anomaly.budget
      (** skip damaged records, resync on the next intact frame, and
          account for every loss — up to the error budget *)

type stream

val open_stream : ?mode:mode -> in_channel -> (stream, string) result
(** Consume and check the magic header (any version).  [mode]
    defaults to [Strict]. *)

val stream_version : stream -> int

val read_batch : stream -> max:int -> (Event.t array, string) result
(** Decode up to [max] events ([max > 0]); an empty array means EOF.
    [seq] is assigned from record order, starting at 1.  After an
    [Error] the stream stays failed.

    In [Strict] mode the first corrupt or truncated record is an
    [Error] carrying its byte offset.  In [Lenient] mode damaged
    records are skipped (v2/v3: with a resync scan to the next
    CRC-valid frame; v1: the rest of the stream is abandoned as
    truncated) and tallied into {!completeness}; the only [Error]s are
    an exceeded budget or a non-trace input. *)

type drained = {
  dr_produced : int;  (** records decoded (kept + dropped) *)
  dr_kept : int;
  dr_no_hint : int;  (** dropped: no path hint to classify *)
  dr_no_match : int;  (** dropped: hint rejected by [keep_hint] *)
}

val drain_batch :
  stream ->
  ?keep_hint:(string -> bool) ->
  on_call:(Iocov_syscall.Model.call -> Iocov_syscall.Model.outcome -> unit) ->
  max:int ->
  unit ->
  (drained, string) result
(** The fused v3 decode: up to [max] records are classified by path
    hint and the kept tracked calls handed to [on_call] — no [Event.t]
    is ever materialized, and the hint verdict is memoized per interned
    string so a hot hint is classified once per chapter.  Aux records
    are classified like any record (kept ones count in [dr_kept]) but
    never reach [on_call].  Without [keep_hint] every record is kept.
    [dr_produced = 0] means EOF.  Loss accounting, strict/lenient
    semantics, budgets, and {!completeness} are identical to
    {!read_batch}.  v3 streams only ([Invalid_argument] otherwise). *)

val drain_batch_dense :
  stream ->
  ?keep_hint:(string -> bool) ->
  dense:Iocov_core.Coverage.Dense.t ->
  max:int ->
  unit ->
  (drained, string) result
(** {!drain_batch} fused one level further: kept tracked records are
    decoded straight into dense plan-cell bumps via {!Iocov_core.Plan}'s
    raw-field slot mappings — not even a [Model.call] is materialized
    between the wire and the counter array.  Observationally identical
    to [drain_batch ~on_call:(Coverage.Dense.observe dense)], including
    per-record atomicity: a record that fails mid-decode contributes
    nothing to [dense].  This is the ≥10M events/s single-core replay
    path (ROADMAP). *)

val completeness : stream -> Iocov_util.Anomaly.completeness
(** The stream's ledger so far: events decoded, records skipped,
    resync regions, bytes discarded, truncation, and the first
    anomalies in stream order. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result
(** Strict streaming decode to EOF (batched {!read_batch} internally);
    fails with a message on corruption.  [seq] is assigned from record
    order. *)

val read_channel : in_channel -> (Event.t list, string) result

val is_binary_trace : in_channel -> bool
(** Peek the magic (any version) without consuming it (the channel
    is rewound), so [analyze] can auto-detect the format. *)

(** {2 Cursors}

    A cursor freezes a stream's decode state at a batch boundary —
    offset, sequence number, delta bases, chapter, and the live string
    table — so a checkpointed run can reopen the trace and continue
    exactly where it stopped.  A v3 cursor may point {e into} a frame:
    [c_offset] is then the frame's own offset and [c_skip] the number
    of its records the checkpointed run already consumed; resuming
    re-reads the frame and passes over them. *)

type cursor = {
  c_version : int;
  c_offset : int;  (** byte offset of the next unread frame (or the
                       current frame when [c_skip > 0]) *)
  c_seq : int;
  c_last_ts : int;
  c_last_pid : int;  (** v3 pid delta base; 0 for v1/v2 *)
  c_chapter : int;
  c_skip : int;  (** records of the frame at [c_offset] already
                     consumed; 0 at a frame boundary and for v1/v2 *)
  c_strings : string option array;  (** [None] = lost in a corrupt frame *)
}

val cursor : stream -> cursor
(** Capture the current decode state.  Only meaningful between
    {!read_batch}/{!drain_batch} calls. *)

val resume_stream : ?mode:mode -> in_channel -> cursor -> (stream, string) result
(** Reopen a trace at a cursor: checks the magic and version, seeks to
    the cursor offset, and restores the decode state (re-reading and
    skipping into the frame when [c_skip > 0]).  Subsequent
    {!read_batch}/{!drain_batch} calls continue the original
    numbering. *)
