open Iocov_syscall
module Fs = Iocov_vfs.Fs
module Path = Iocov_vfs.Path
module Metrics = Iocov_obs.Metrics
module Clock = Iocov_obs.Clock

(* Self-observability: every tracer in the process reports into the
   default registry.  Handles are resolved once; the per-event cost is
   one field increment plus one table lookup for the per-kind counter. *)
let m_events =
  Metrics.counter Metrics.default "iocov_tracer_events_total"
    ~help:"Trace records emitted, before any filtering."

let m_emit_latency =
  Metrics.histogram Metrics.default "iocov_tracer_emit_latency_ns"
    ~help:"Sink dispatch latency per record, sampled every 64th event."

let kind_counters : (string, Metrics.Counter.t) Hashtbl.t = Hashtbl.create 64

let kind_counter name =
  match Hashtbl.find_opt kind_counters name with
  | Some c -> c
  | None ->
    let c =
      Metrics.counter Metrics.default "iocov_tracer_calls_total"
        ~labels:[ ("syscall", name) ]
        ~help:"Calls executed through the tracer by syscall kind."
    in
    Hashtbl.add kind_counters name c;
    c

type t = {
  fs : Fs.t;
  pid : int;
  comm : string;
  mutable seq : int;
  mutable sinks : (Event.t -> unit) list;  (* reverse registration order *)
  fd_paths : (int, string) Hashtbl.t;
  mutable cwd : string;
}

let create ?(pid = 1000) ?(comm = "tester") fs =
  { fs; pid; comm; seq = 0; sinks = []; fd_paths = Hashtbl.create 32; cwd = "/" }

let fs t = t.fs
let on_event t sink = t.sinks <- sink :: t.sinks
let events_emitted t = t.seq
let cwd t = t.cwd

(* Normalize a possibly-relative pathname against the tracked cwd;
   "." / ".." components are folded so hints are canonical. *)
let absolutize t path =
  let raw = if String.length path > 0 && path.[0] = '/' then path else Path.join t.cwd path in
  let parts = List.filter (fun c -> c <> "") (String.split_on_char '/' raw) in
  let folded =
    List.fold_left
      (fun acc c ->
        match c with
        | "." -> acc
        | ".." -> (match acc with [] -> [] | _ :: rest -> rest)
        | c -> c :: acc)
      [] parts
  in
  "/" ^ String.concat "/" (List.rev folded)

let hint_of_target t = function
  | Model.Path p -> Some (absolutize t p)
  | Model.Fd fd -> Hashtbl.find_opt t.fd_paths fd

let hint_of_call t call =
  match call with
  | Model.Open_call { path; _ } -> Some (absolutize t path)
  | Model.Mkdir_call { path; _ } -> Some (absolutize t path)
  | Model.Read_call { fd; _ }
  | Model.Write_call { fd; _ }
  | Model.Lseek_call { fd; _ }
  | Model.Close_call { fd } -> Hashtbl.find_opt t.fd_paths fd
  | Model.Truncate_call { target; _ }
  | Model.Chmod_call { target; _ }
  | Model.Chdir_call { target }
  | Model.Setxattr_call { target; _ }
  | Model.Getxattr_call { target; _ } -> hint_of_target t target

(* Keep the fd table and cwd in sync with successful calls. *)
let post_process t call outcome =
  match (call, outcome) with
  | Model.Open_call { path; _ }, Model.Ret fd ->
    (match Fs.fd_path t.fs fd with
     | Some _ -> Hashtbl.replace t.fd_paths fd (absolutize t path)
     | None -> () (* O_TMPFILE: anonymous *))
  | Model.Close_call { fd }, Model.Ret _ -> Hashtbl.remove t.fd_paths fd
  | Model.Chdir_call { target = Model.Path p }, Model.Ret _ -> t.cwd <- absolutize t p
  | Model.Chdir_call { target = Model.Fd fd }, Model.Ret _ ->
    (match Hashtbl.find_opt t.fd_paths fd with
     | Some p -> t.cwd <- p
     | None -> ())
  | _ -> ()

let emit t payload outcome path_hint =
  t.seq <- t.seq + 1;
  Metrics.Counter.incr m_events;
  let event =
    {
      Event.seq = t.seq;
      timestamp_ns = t.seq * 811;  (* logical time: strictly monotone *)
      pid = t.pid;
      comm = t.comm;
      payload;
      outcome;
      path_hint;
    }
  in
  if t.seq land 63 = 0 then begin
    let t0 = Clock.now () in
    List.iter (fun sink -> sink event) (List.rev t.sinks);
    Metrics.Histogram.observe m_emit_latency
      (int_of_float ((Clock.now () -. t0) *. 1e9))
  end
  else List.iter (fun sink -> sink event) (List.rev t.sinks)

let exec t call =
  Metrics.Counter.incr (kind_counter (Model.variant_name (Model.variant_of_call call)));
  let hint = hint_of_call t call in
  let outcome = Fs.exec t.fs call in
  post_process t call outcome;
  emit t (Event.Tracked call) outcome hint;
  outcome

let aux_detail t aux =
  match (aux : Fs.aux) with
  | Fs.Unlink p | Fs.Rmdir p -> (Printf.sprintf "path=%S" p, Some (absolutize t p))
  | Fs.Rename (o, n) -> (Printf.sprintf "old=%S, new=%S" o n, Some (absolutize t o))
  | Fs.Symlink (target, link) ->
    (Printf.sprintf "target=%S, link=%S" target link, Some (absolutize t link))
  | Fs.Link (e, n) -> (Printf.sprintf "old=%S, new=%S" e n, Some (absolutize t e))
  | Fs.Fsync fd | Fs.Fdatasync fd ->
    (Printf.sprintf "fd=%d" fd, Hashtbl.find_opt t.fd_paths fd)
  | Fs.Sync | Fs.Crash -> ("", None)

let exec_aux t aux =
  Metrics.Counter.incr (kind_counter (Fs.aux_name aux));
  let detail, hint = aux_detail t aux in
  let result = Fs.exec_aux t.fs aux in
  (match aux with
   | Fs.Crash ->
     (* all descriptors die with the crash *)
     Hashtbl.reset t.fd_paths;
     t.cwd <- "/"
   | _ -> ());
  let outcome =
    match result with Ok n -> Model.Ret n | Error e -> Model.Err e
  in
  emit t (Event.Aux { name = Fs.aux_name aux; detail }) outcome hint;
  result
