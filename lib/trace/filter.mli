(** The mount-point trace filter.

    A kernel tracer records {e every} syscall the tester makes, including
    ones that never touch the file system under test (reading config
    files, writing logs, ...).  IOCov drops those with "a set of regular
    expressions ... (e.g., based on the mount point pathname)"
    (Section 3).  This is the only setting that changes between testers:
    xfstests uses [/mnt/test], CrashMonkey [/mnt/snapshot]-style mounts. *)

type t

val create : patterns:string list -> (t, string) result
(** Compile keep-patterns.  A record is kept iff its [path_hint] matches
    at least one pattern (leftmost search, so ["^/mnt/test(/|$)"] is the
    idiomatic mount-point anchor).  Fails on the first malformed
    pattern, naming it. *)

val create_exn : patterns:string list -> t

val mount_point : string -> t
(** [mount_point "/mnt/test"] — the common case: keep records whose hint
    is the mount point or below it. *)

val keeps : t -> Event.t -> bool
(** Records without a [path_hint] (e.g. [O_TMPFILE] descriptors, [sync])
    are dropped: they cannot be attributed to the tested mount.  A pure
    query — does not touch the filter metrics. *)

type stats = { kept : int; dropped : int }

val fold :
  t -> init:'a -> f:('a -> Event.t -> 'a) -> Event.t list -> 'a * stats
(** Filtered fold with bookkeeping.  Each decision increments
    [iocov_filter_events_total{result=kept|dropped_no_hint|dropped_no_match}]
    in {!Iocov_obs.Metrics.default}. *)

val keep_all : t -> Event.t list -> Event.t list
(** [keep_all t events] is the kept records in order — the chunk
    pipeline's batched decision.  Counts exactly like per-record
    {!fold}/{!sink} metering (same counters, same totals), but applied
    as one add per batch, so parallel worker shards do not contend on
    the counters per record.  A compiled filter is immutable and may be
    shared across domains. *)

val sink : t -> (Event.t -> unit) -> Event.t -> unit
(** [sink t k] is a tracer sink that forwards kept records to [k],
    metering each decision like {!fold}. *)

val matches_hint : t -> string -> bool
(** The bare pattern test on a hint string — what {!keeps} applies to a
    record's [path_hint].  A pure query, for decoders that classify
    records before materializing them. *)

val meter : kept:int -> no_hint:int -> no_match:int -> unit
(** Credit a batch of externally-classified decisions to the filter
    counters, exactly as {!keep_all} would have.  For the fused binary
    decode path, which classifies hints via {!matches_hint} without
    building events. *)
