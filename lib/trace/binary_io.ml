open Iocov_syscall
module Anomaly = Iocov_util.Anomaly
module Crc32 = Iocov_util.Crc32
module Metrics = Iocov_obs.Metrics

(* --- corruption metering, process-wide --- *)

let m_corrupt =
  Metrics.counter Metrics.default "iocov_trace_corrupt_records_total"
    ~help:"Trace records skipped by lenient ingestion (corrupt, lost-reference, truncated)."

let m_resyncs =
  Metrics.counter Metrics.default "iocov_trace_resyncs_total"
    ~help:"Resync scans past damaged byte ranges of a binary trace."

let m_bytes_skipped =
  Metrics.counter Metrics.default "iocov_trace_bytes_skipped_total"
    ~help:"Bytes discarded while resyncing past trace corruption."

(* --- format constants --- *)

let magic_v1 = "IOCT\001"
let magic_v2 = "IOCT\002"
let magic_len = String.length magic_v2

(* v2 frame: sync marker, payload length, CRC-32 of the payload, then
   the payload (chapter id, string-table base count, record bytes).
   The marker is what lenient ingestion scans for when resyncing; a
   false positive in record bytes is harmless because a candidate frame
   is only accepted when its CRC checks out. *)
let sync0 = 0xF5
let sync1 = 0x9E
let max_frame = 1 lsl 24

let default_chapter = 1024

exception Corrupt of string
exception Lost_ref of string

(* --- varints --- *)

(* [lsr] makes the loop total even when [n]'s sign bit is set, so the
   full 63-bit pattern a zigzagged extreme offset produces round-trips *)
let buf_varbits b n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let buf_uvarint b n =
  if n < 0 then invalid_arg "Binary_io.write_uvarint: negative";
  buf_varbits b n

(* branch-free zigzag: correct for the whole int range, including
   magnitudes ≥ 2^61 where [n lsl 1] alone would overflow the guard *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let buf_svarint b n = buf_varbits b (zigzag n)

let chan_varbits oc n =
  let rec go n =
    if n >= 0 && n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

(* --- byte sources ---

   v1 records are decoded straight off the channel; v2 records are
   decoded out of the CRC-checked frame payload, an in-memory string.
   One reader serves both through a two-way source dispatch. *)

type src = { mutable s : string; mutable pos : int }

type reader = {
  ic : in_channel;
  src : src option;  (* [Some] for v2 frame-payload decoding *)
  mutable strings : string option array;  (* [None] = lost in a corrupt frame *)
  mutable count : int;
}

let read_byte r =
  match r.src with
  | None -> (
    match In_channel.input_byte r.ic with
    | Some b -> b
    | None -> raise (Corrupt "unexpected end of trace"))
  | Some s ->
    if s.pos >= String.length s.s then raise (Corrupt "unexpected end of record")
    else begin
      let b = Char.code (String.unsafe_get s.s s.pos) in
      s.pos <- s.pos + 1;
      b
    end

let read_exact r len =
  match r.src with
  | None -> (
    try really_input_string r.ic len
    with End_of_file -> raise (Corrupt "unexpected end of trace"))
  | Some s ->
    if s.pos + len > String.length s.s then raise (Corrupt "unexpected end of record")
    else begin
      let x = String.sub s.s s.pos len in
      s.pos <- s.pos + len;
      x
    end

let read_uvarint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint overflow");
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_svarint r = unzigzag (read_uvarint r)

(* --- string table --- *)

type writer = {
  oc : out_channel;
  version : int;
  chapter_size : int;
  buf : Buffer.t;  (* current record's encoding *)
  table : (string, int) Hashtbl.t;
  mutable next_index : int;
  mutable last_ts : int;
  mutable chapter : int;
  mutable in_chapter : int;
}

let write_string w s =
  match Hashtbl.find_opt w.table s with
  | Some index -> buf_uvarint w.buf (index + 1)
  | None ->
    Hashtbl.add w.table s w.next_index;
    w.next_index <- w.next_index + 1;
    buf_uvarint w.buf 0;
    buf_uvarint w.buf (String.length s);
    Buffer.add_string w.buf s

let intern_string r s =
  if r.count = Array.length r.strings then begin
    let bigger = Array.make (max 16 (2 * r.count)) None in
    Array.blit r.strings 0 bigger 0 r.count;
    r.strings <- bigger
  end;
  r.strings.(r.count) <- s;
  r.count <- r.count + 1

let read_string r =
  let tag = read_uvarint r in
  if tag = 0 then begin
    let len = read_uvarint r in
    if len > 1 lsl 20 then raise (Corrupt "string too long");
    let s = read_exact r len in
    intern_string r (Some s);
    s
  end
  else begin
    let index = tag - 1 in
    if index >= r.count then raise (Corrupt "string reference out of range");
    match r.strings.(index) with
    | Some s -> s
    | None ->
      raise (Lost_ref (Printf.sprintf "string %d was introduced in a corrupt frame" index))
  end

(* --- enums --- *)

let variant_index =
  let table = Hashtbl.create 32 in
  List.iteri (fun i v -> Hashtbl.add table v i) Model.all_variants;
  fun v -> Hashtbl.find table v

let variant_of_index =
  let arr = Array.of_list Model.all_variants in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad variant index") else arr.(i)

let errno_index =
  let table = Hashtbl.create 64 in
  List.iteri (fun i e -> Hashtbl.add table e i) Errno.all;
  fun e -> Hashtbl.find table e

let errno_of_index =
  let arr = Array.of_list Errno.all in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad errno index") else arr.(i)

(* --- calls --- *)

let write_byte w b = Buffer.add_char w.buf (Char.unsafe_chr (b land 0xFF))

let write_target w = function
  | Model.Path p ->
    write_byte w 0;
    write_string w p
  | Model.Fd fd ->
    write_byte w 1;
    buf_svarint w.buf fd

let read_target r =
  match read_byte r with
  | 0 -> Model.Path (read_string r)
  | 1 -> Model.Fd (read_svarint r)
  | _ -> raise (Corrupt "bad target tag")

let write_call w call =
  buf_uvarint w.buf (variant_index (Model.variant_of_call call));
  match call with
  | Model.Open_call { path; flags; mode; _ } ->
    write_string w path;
    buf_uvarint w.buf flags;
    buf_uvarint w.buf mode
  | Model.Read_call { fd; count; offset; _ } | Model.Write_call { fd; count; offset; _ } ->
    buf_svarint w.buf fd;
    buf_uvarint w.buf count;
    (match offset with Some off -> buf_svarint w.buf off | None -> ())
  | Model.Lseek_call { fd; offset; whence } ->
    buf_svarint w.buf fd;
    buf_svarint w.buf offset;
    write_byte w (Whence.to_code whence)
  | Model.Truncate_call { target; length; _ } ->
    write_target w target;
    buf_svarint w.buf length
  | Model.Mkdir_call { path; mode; _ } ->
    write_string w path;
    buf_uvarint w.buf mode
  | Model.Chmod_call { target; mode; _ } ->
    write_target w target;
    buf_uvarint w.buf mode
  | Model.Close_call { fd } -> buf_svarint w.buf fd
  | Model.Chdir_call { target } -> write_target w target
  | Model.Setxattr_call { target; name; size; flags; _ } ->
    write_target w target;
    write_string w name;
    buf_uvarint w.buf size;
    write_byte w (Xattr_flag.to_code flags)
  | Model.Getxattr_call { target; name; size; _ } ->
    write_target w target;
    write_string w name;
    buf_uvarint w.buf size

let read_call r =
  let variant = variant_of_index (read_uvarint r) in
  match Model.base_of_variant variant with
  | Model.Open ->
    let path = read_string r in
    let flags = read_uvarint r in
    let mode = read_uvarint r in
    (* creat's flags are forced by the constructor; the stored flags are
       authoritative, so bypass the creat rewrite by reconstructing the
       record shape directly through open_ for non-creat variants *)
    Model.open_ ~variant ~flags ~mode path
  | Model.Read | Model.Write ->
    let fd = read_svarint r in
    let count = read_uvarint r in
    let offset =
      match variant with
      | Model.Sys_pread64 | Model.Sys_pwrite64 -> Some (read_svarint r)
      | _ -> None
    in
    if Model.base_of_variant variant = Model.Read then Model.read ~variant ?offset ~fd ~count ()
    else Model.write ~variant ?offset ~fd ~count ()
  | Model.Lseek ->
    let fd = read_svarint r in
    let offset = read_svarint r in
    (match Whence.of_code (read_byte r) with
     | Some whence -> Model.lseek ~fd ~offset ~whence
     | None -> raise (Corrupt "bad whence"))
  | Model.Truncate ->
    let target = read_target r in
    let length = read_svarint r in
    Model.truncate ~variant ~target ~length ()
  | Model.Mkdir ->
    let path = read_string r in
    let mode = read_uvarint r in
    Model.mkdir ~variant ~mode path
  | Model.Chmod ->
    let target = read_target r in
    let mode = read_uvarint r in
    Model.chmod ~variant ~target ~mode ()
  | Model.Close -> Model.close (read_svarint r)
  | Model.Chdir -> Model.chdir (read_target r)
  | Model.Setxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r in
    (match Xattr_flag.of_code (read_byte r) with
     | Some flags -> Model.setxattr ~variant ~flags ~target ~name ~size ()
     | None -> raise (Corrupt "bad xattr flag"))
  | Model.Getxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r in
    Model.getxattr ~variant ~target ~name ~size ()

(* --- events, writer side --- *)

let max_chapter_size = 1 lsl 20

let writer ?(version = 2) ?(chapter = default_chapter) oc =
  if chapter <= 0 || chapter > max_chapter_size then
    invalid_arg "Binary_io.writer: chapter out of range";
  (match version with
   | 1 -> output_string oc magic_v1
   | 2 ->
     output_string oc magic_v2;
     (* the chapter size is part of the header so a reader can map a
        frame's (chapter, in-chapter) pair to an absolute record
        number — the basis for exact loss accounting *)
     chan_varbits oc chapter
   | v -> invalid_arg (Printf.sprintf "Binary_io.writer: unsupported version %d" v));
  {
    oc;
    version;
    chapter_size = chapter;
    buf = Buffer.create 256;
    table = Hashtbl.create 256;
    next_index = 0;
    last_ts = 0;
    chapter = 0;
    in_chapter = 0;
  }

let encode_record w (e : Event.t) =
  buf_uvarint w.buf (max 0 (e.timestamp_ns - w.last_ts));
  w.last_ts <- e.timestamp_ns;
  buf_uvarint w.buf e.pid;
  write_string w e.comm;
  (match e.payload with
   | Event.Tracked call ->
     write_byte w 0;
     write_call w call
   | Event.Aux { name; detail } ->
     write_byte w 1;
     write_string w name;
     write_string w detail);
  (match e.outcome with
   | Model.Ret n ->
     write_byte w 0;
     buf_svarint w.buf n
   | Model.Err errno ->
     write_byte w 1;
     write_byte w (errno_index errno));
  match e.path_hint with
  | Some hint ->
    write_byte w 1;
    write_string w hint
  | None -> write_byte w 0

let write_event w (e : Event.t) =
  Buffer.clear w.buf;
  if w.version = 1 then begin
    encode_record w e;
    Buffer.output_buffer w.oc w.buf
  end
  else begin
    (* chapter rollover: restart the string table so a corrupt frame can
       only orphan references until the next chapter, not to the end of
       the trace *)
    if w.in_chapter >= w.chapter_size then begin
      Hashtbl.reset w.table;
      w.next_index <- 0;
      w.chapter <- w.chapter + 1;
      w.in_chapter <- 0
    end;
    buf_uvarint w.buf w.chapter;
    buf_uvarint w.buf w.in_chapter;
    buf_uvarint w.buf w.next_index;
    encode_record w e;
    w.in_chapter <- w.in_chapter + 1;
    let payload = Buffer.contents w.buf in
    let crc = Crc32.string payload in
    output_byte w.oc sync0;
    output_byte w.oc sync1;
    chan_varbits w.oc (String.length payload);
    output_byte w.oc (crc land 0xFF);
    output_byte w.oc ((crc lsr 8) land 0xFF);
    output_byte w.oc ((crc lsr 16) land 0xFF);
    output_byte w.oc ((crc lsr 24) land 0xFF)
    ;
    output_string w.oc payload
  end

let sink = write_event
let flush w = Stdlib.flush w.oc

(* --- events, reader side --- *)

(* Shared decode of everything after the timestamp. *)
let read_event_rest r ~seq ~ts =
  let pid = read_uvarint r in
  let comm = read_string r in
  let payload =
    match read_byte r with
    | 0 -> Event.Tracked (read_call r)
    | 1 ->
      let name = read_string r in
      let detail = read_string r in
      Event.Aux { name; detail }
    | _ -> raise (Corrupt "bad payload tag")
  in
  let outcome =
    match read_byte r with
    | 0 -> Model.Ret (read_svarint r)
    | 1 -> Model.Err (errno_of_index (read_byte r))
    | _ -> raise (Corrupt "bad outcome tag")
  in
  let path_hint =
    match read_byte r with
    | 0 -> None
    | 1 -> Some (read_string r)
    | _ -> raise (Corrupt "bad hint tag")
  in
  { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

(* [first] is the already-consumed first byte of the timestamp varint —
   the v1 EOF probe that decides whether another record exists. *)
let read_event_v1 r ~seq ~last_ts ~first =
  let ts =
    last_ts
    +
    let rec go shift acc b =
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc (read_byte r)
    in
    go 0 0 first
  in
  read_event_rest r ~seq ~ts

let read_event_v2 r ~seq ~last_ts =
  let ts = last_ts + read_uvarint r in
  read_event_rest r ~seq ~ts

(* --- streaming decode --- *)

type mode = Strict | Lenient of Anomaly.budget

(* The string table makes the decode inherently sequential, but it does
   not make it inherently materializing: a stream hands out events in
   bounded batches, so a multi-million-event trace is processed in
   O(batch) memory and the decoded batches can feed parallel analysis
   workers. *)
type stream = {
  ic : in_channel;
  version : int;
  mode : mode;
  chapter_size : int;  (* from the v2 header; 0 for v1 *)
  sr : reader;
  frame : src;  (* the v2 frame-payload window [sr.src] points at *)
  mutable seq : int;
  mutable next_record : int;  (* 0-based absolute index expected next (v2) *)
  mutable last_ts : int;
  mutable chapter : int;
  mutable failed : bool;
  mutable eof : bool;
  (* the completeness ledger *)
  mutable produced : int;
  mutable skipped : int;
  mutable regions : int;
  mutable bytes_skipped : int;
  mutable truncated : bool;
  mutable anomaly_count : int;
  mutable anomalies : Anomaly.t list;  (* newest first, capped *)
}

let make_stream ?(mode = Strict) ic ~version ~chapter_size =
  let frame = { s = ""; pos = 0 } in
  let src = if version = 2 then Some frame else None in
  {
    ic;
    version;
    mode;
    chapter_size;
    sr = { ic; src; strings = Array.make 256 None; count = 0 };
    frame;
    seq = 1;
    next_record = 0;
    last_ts = 0;
    chapter = 0;
    failed = false;
    eof = false;
    produced = 0;
    skipped = 0;
    regions = 0;
    bytes_skipped = 0;
    truncated = false;
    anomaly_count = 0;
    anomalies = [];
  }

let read_header_uvarint ic =
  let rec go shift acc =
    if shift > 24 then None
    else
      match In_channel.input_byte ic with
      | None -> None
      | Some b ->
        let acc = acc lor ((b land 0x7F) lsl shift) in
        if b land 0x80 = 0 then Some acc else go (shift + 7) acc
  in
  go 0 0

let open_stream ?(mode = Strict) ic =
  match really_input_string ic magic_len with
  | header when header = magic_v2 -> (
    match read_header_uvarint ic with
    | Some cs when cs > 0 && cs <= max_chapter_size ->
      Ok (make_stream ~mode ic ~version:2 ~chapter_size:cs)
    | _ -> Error "corrupt trace header (bad chapter size)")
  | header when header = magic_v1 -> Ok (make_stream ~mode ic ~version:1 ~chapter_size:0)
  | _ -> Error "not a binary iocov trace (bad magic)"
  | exception End_of_file -> Error "not a binary iocov trace (bad magic)"

let stream_version st = st.version

let note st ?offset kind detail =
  st.anomaly_count <- st.anomaly_count + 1;
  if st.anomaly_count <= Anomaly.max_kept_anomalies then
    st.anomalies <- Anomaly.v ?offset kind detail :: st.anomalies

(* one skipped record = one metric tick, even when a whole region of
   frames vanished at once and the loss was counted from an index gap *)
let bump_skipped st n =
  st.skipped <- st.skipped + n;
  Metrics.Counter.add m_corrupt n

let completeness st =
  {
    (Anomaly.clean ~events_read:st.produced) with
    Anomaly.records_skipped = st.skipped;
    corrupt_regions = st.regions;
    bytes_skipped = st.bytes_skipped;
    truncated = st.truncated;
    anomalies = List.rev st.anomalies;
  }

(* --- v2 framing --- *)

type frame_read =
  | Frame_eof
  | Frame of string
  | Frame_bad of string  (* structural damage: resync candidates move on *)

let read_u32_le ic =
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(* Read one frame at the current position.  Structural failures (bad
   sync, insane length, short read, CRC mismatch) are data, not
   exceptions: lenient mode treats them as resync triggers. *)
let read_frame ic =
  match In_channel.input_byte ic with
  | None -> Frame_eof
  | Some b0 -> (
    try
      if b0 <> sync0 then Frame_bad "bad sync marker"
      else if input_byte ic <> sync1 then Frame_bad "bad sync marker"
      else begin
        let len =
          let rec go shift acc =
            if shift > 24 then raise Exit;
            let b = input_byte ic in
            let acc = acc lor ((b land 0x7F) lsl shift) in
            if b land 0x80 = 0 then acc else go (shift + 7) acc
          in
          try go 0 0 with Exit -> -1
        in
        if len < 0 || len > max_frame then Frame_bad "bad frame length"
        else begin
          let crc = read_u32_le ic in
          let payload = really_input_string ic len in
          if Crc32.string payload <> crc then Frame_bad "crc mismatch"
          else Frame payload
        end
      end
    with End_of_file -> Frame_bad "truncated frame")

type decoded =
  | Decoded of Event.t
  | Skipped of Anomaly.kind * string  (* frame consumed but record unusable *)

(* Decode a CRC-valid frame payload: chapter id, string-table base
   count, record.  The base count is the self-healing hook — if frames
   were lost, it tells us how many string introductions went with them,
   and the placeholders make later references to them fail loudly
   (Lost_reference) instead of resolving to the wrong string. *)
let decode_frame st payload =
  st.frame.s <- payload;
  st.frame.pos <- 0;
  let r = st.sr in
  try
    let chapter = read_uvarint r in
    let in_chapter = read_uvarint r in
    let base = read_uvarint r in
    if in_chapter >= st.chapter_size then raise (Corrupt "in-chapter index out of range");
    (* (chapter, in-chapter) pins this frame to an absolute record
       number; a gap against the expected index is the exact count of
       records destroyed with the frames between — however many resync
       regions it took to get here *)
    let idx = (chapter * st.chapter_size) + in_chapter in
    if idx < st.next_record then raise (Corrupt "record index regression");
    let gap = idx - st.next_record in
    if gap > 0 then begin
      (match st.mode with
       | Strict -> raise (Corrupt (Printf.sprintf "%d records missing before this frame" gap))
       | Lenient _ -> bump_skipped st gap)
    end;
    st.next_record <- idx + 1;
    if chapter <> st.chapter then begin
      (* writer restarted its table (or we lost the frames in between) *)
      st.chapter <- chapter;
      r.count <- 0
    end;
    if base > r.count then
      for _ = r.count + 1 to base do
        intern_string r None
      done
    else if base < r.count then raise (Corrupt "string table regression");
    let e = read_event_v2 r ~seq:(idx + 1) ~last_ts:st.last_ts in
    st.seq <- idx + 2;
    st.last_ts <- e.Event.timestamp_ns;
    st.produced <- st.produced + 1;
    Decoded e
  with
  | Corrupt msg -> Skipped (Anomaly.Corrupt_record, msg)
  | Lost_ref msg -> Skipped (Anomaly.Lost_reference, msg)

(* Scan forward for the next CRC-valid frame.  Every candidate either
   validates or advances the scan position by at least one byte, so the
   scan always terminates at EOF. *)
let resync st ~from =
  Metrics.Counter.incr m_resyncs;
  Iocov_obs.Trace_event.instant ~cat:"ingest"
    ~args:[ ("offset", string_of_int from) ]
    "resync";
  st.regions <- st.regions + 1;
  seek_in st.ic from;
  let rec scan () =
    match In_channel.input_byte st.ic with
    | None -> None
    | Some b when b <> sync0 -> scan ()
    | Some _ ->
      let cand = pos_in st.ic - 1 in
      seek_in st.ic cand;
      (match read_frame st.ic with
       | Frame payload -> Some (cand, payload)
       | Frame_eof -> None
       | Frame_bad _ ->
         seek_in st.ic (cand + 1);
         scan ())
  in
  scan ()

exception Stream_error of string

let budget_of_mode st = match st.mode with Strict -> Anomaly.Unlimited | Lenient b -> b

let check_budget st ~final =
  let total = st.produced + st.skipped in
  if not (Anomaly.budget_allows (budget_of_mode st) ~bad:st.skipped ~total ~final) then begin
    st.failed <- true;
    let b = budget_of_mode st in
    note st Anomaly.Budget_exceeded
      (Printf.sprintf "%d of %d records corrupt (budget %s)" st.skipped total
         (Anomaly.budget_to_string b));
    raise
      (Stream_error
         (Printf.sprintf "error budget exceeded: %d of %d records corrupt (budget %s)"
            st.skipped total (Anomaly.budget_to_string b)))
  end

let skip_tail st ~from =
  let eof_pos = Int64.to_int (In_channel.length st.ic) in
  st.bytes_skipped <- st.bytes_skipped + max 0 (eof_pos - from);
  Metrics.Counter.add m_bytes_skipped (max 0 (eof_pos - from));
  st.truncated <- true;
  st.eof <- true

(* The v2 record pump: one event, or [None] at end of stream.  Strict
   mode turns the first defect into [Stream_error] with its offset;
   lenient mode skips, resyncs, and keeps the ledger. *)
let rec next_v2 st =
  if st.eof then None
  else begin
    let start = pos_in st.ic in
    match read_frame st.ic with
    | Frame_eof ->
      st.eof <- true;
      None
    | Frame payload -> consume_payload st ~start payload
    | Frame_bad reason -> (
      match st.mode with
      | Strict ->
        st.failed <- true;
        raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
      | Lenient _ -> (
        (* don't count records here: the lost count is unknowable until
           the next intact frame's index gap reveals it exactly *)
        note st ~offset:start Anomaly.Corrupt_record reason;
        match resync st ~from:(start + 1) with
        | None ->
          note st ~offset:start Anomaly.Truncated "no further intact frame";
          skip_tail st ~from:start;
          None
        | Some (cand, payload) ->
          st.bytes_skipped <- st.bytes_skipped + (cand - start);
          Metrics.Counter.add m_bytes_skipped (cand - start);
          consume_payload st ~start:cand payload))
  end

and consume_payload st ~start payload =
  match decode_frame st payload with
  | Decoded e ->
    (* an index gap discovered on this frame may have pushed the ledger
       over the budget even though the frame itself is fine *)
    check_budget st ~final:false;
    Some e
  | Skipped (kind, reason) -> (
    match st.mode with
    | Strict ->
      st.failed <- true;
      raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
    | Lenient _ ->
      note st ~offset:start kind reason;
      bump_skipped st 1;
      check_budget st ~final:false;
      next_v2 st)

(* The v1 pump: no frames, no checksums — corruption is detected only
   when a field fails to decode, and with no sync markers there is
   nothing to resync on.  Lenient mode records the damage and treats
   the rest of the stream as lost. *)
let next_v1 st =
  if st.eof then None
  else begin
    let start = pos_in st.ic in
    match In_channel.input_byte st.ic with
    | None ->
      st.eof <- true;
      None
    | Some first -> (
      match read_event_v1 st.sr ~seq:st.seq ~last_ts:st.last_ts ~first with
      | e ->
        st.seq <- st.seq + 1;
        st.last_ts <- e.Event.timestamp_ns;
        st.produced <- st.produced + 1;
        Some e
      | exception (Corrupt msg | Lost_ref msg) -> (
        match st.mode with
        | Strict ->
          st.failed <- true;
          raise (Stream_error (Printf.sprintf "offset %d: %s" start msg))
        | Lenient _ ->
          note st ~offset:start Anomaly.Corrupt_record
            (msg ^ " (v1 trace: no sync markers, rest of stream unrecoverable)");
          bump_skipped st 1;
          skip_tail st ~from:start;
          None)
      | exception End_of_file -> (
        match st.mode with
        | Strict ->
          st.failed <- true;
          raise (Stream_error "truncated binary trace")
        | Lenient _ ->
          note st ~offset:start Anomaly.Truncated "trace ends mid-record";
          bump_skipped st 1;
          skip_tail st ~from:start;
          None))
  end

let read_batch st ~max =
  if max <= 0 then invalid_arg "Binary_io.read_batch: max must be positive";
  if st.failed then Error "reading past a decode error"
  else begin
    try
      let batch = ref [] in
      let n = ref 0 in
      let continue = ref true in
      while !continue && !n < max do
        match (if st.version = 2 then next_v2 st else next_v1 st) with
        | None -> continue := false
        | Some e ->
          batch := e :: !batch;
          incr n
      done;
      if st.eof then check_budget st ~final:true;
      Ok (Array.of_list (List.rev !batch))
    with
    | Stream_error msg -> Error msg
    | Corrupt msg ->
      st.failed <- true;
      Error msg
    | End_of_file ->
      st.failed <- true;
      Error "truncated binary trace"
    | Invalid_argument msg ->
      st.failed <- true;
      Error ("corrupt record: " ^ msg)
  end

let fold_channel ic ~init ~f =
  match open_stream ic with
  | Error msg -> Error msg
  | Ok st ->
    let rec go acc =
      match read_batch st ~max:4096 with
      | Error msg -> Error msg
      | Ok batch when Array.length batch = 0 -> Ok acc
      | Ok batch -> go (Array.fold_left f acc batch)
    in
    go init

let read_channel ic =
  Result.map List.rev (fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc))

let is_binary_trace ic =
  let pos = In_channel.pos ic in
  let result =
    try
      let header = really_input_string ic magic_len in
      header = magic_v1 || header = magic_v2
    with End_of_file -> false
  in
  In_channel.seek ic pos;
  result

(* --- cursors: suspend and resume a decode --- *)

type cursor = {
  c_version : int;
  c_offset : int;
  c_seq : int;
  c_last_ts : int;
  c_chapter : int;
  c_strings : string option array;
}

let cursor st =
  {
    c_version = st.version;
    c_offset = pos_in st.ic;
    c_seq = st.seq;
    c_last_ts = st.last_ts;
    c_chapter = st.chapter;
    c_strings = Array.sub st.sr.strings 0 st.sr.count;
  }

let resume_stream ?(mode = Strict) ic cur =
  match open_stream ~mode ic with
  | Error _ as e -> e
  | Ok st ->
    let header_end = pos_in ic in
    if st.version <> cur.c_version then
      Error
        (Printf.sprintf "checkpoint is for a v%d trace but the file is v%d" cur.c_version
           st.version)
    else if cur.c_offset < header_end || cur.c_offset > Int64.to_int (In_channel.length ic) then
      Error (Printf.sprintf "checkpoint offset %d is outside the trace" cur.c_offset)
    else begin
      seek_in ic cur.c_offset;
      st.seq <- cur.c_seq;
      st.next_record <- max 0 (cur.c_seq - 1);
      st.last_ts <- cur.c_last_ts;
      st.chapter <- cur.c_chapter;
      let n = Array.length cur.c_strings in
      st.sr.strings <- Array.make (max 256 n) None;
      Array.blit cur.c_strings 0 st.sr.strings 0 n;
      st.sr.count <- n;
      Ok st
    end
