open Iocov_syscall
module Anomaly = Iocov_util.Anomaly
module Crc32 = Iocov_util.Crc32
module Metrics = Iocov_obs.Metrics
module Plan = Iocov_core.Plan
module Dense = Iocov_core.Coverage.Dense

(* --- corruption metering, process-wide --- *)

let m_corrupt =
  Metrics.counter Metrics.default "iocov_trace_corrupt_records_total"
    ~help:"Trace records skipped by lenient ingestion (corrupt, lost-reference, truncated)."

let m_resyncs =
  Metrics.counter Metrics.default "iocov_trace_resyncs_total"
    ~help:"Resync scans past damaged byte ranges of a binary trace."

let m_bytes_skipped =
  Metrics.counter Metrics.default "iocov_trace_bytes_skipped_total"
    ~help:"Bytes discarded while resyncing past trace corruption."

(* --- format constants --- *)

let magic_v1 = "IOCT\001"
let magic_v2 = "IOCT\002"
let magic_v3 = "IOCT\003"
let magic_len = String.length magic_v2

(* v2/v3 frame: sync marker, payload length, CRC-32 of the payload, then
   the payload.  The marker is what lenient ingestion scans for when
   resyncing; a false positive in record bytes is harmless because a
   candidate frame is only accepted when its CRC checks out.

   v2 carries one record per frame; v3 amortizes the framing over many
   records per frame (the payload header adds a record count) and
   encodes its records more compactly — see the .mli for the layouts. *)
let sync0 = 0xF5
let sync1 = 0x9E
let max_frame = 1 lsl 24

let default_chapter = 1024

(* v3 frames are multi-record, so a corrupt frame already bounds its own
   loss; the chapter only bounds lost-reference blast radius.  The
   default is the maximum chapter size (2^20 records), so a typical
   trace interns each string once, like v1's global table — dictionary
   re-introduction on every 1024-record chapter is what made v2 73%
   fatter than v1. *)
let default_chapter_v3 = 1 lsl 20

(* Records per v3 frame.  Large enough to amortize the ~16-byte frame
   overhead to noise, small enough that a torn frame loses little and a
   resumed decode re-skips at most this many records. *)
let default_frame_records = 256

exception Corrupt of string
exception Lost_ref of string

(* --- scratch encoder ---

   A growable [Bytes.t] the writer encodes into.  Unlike [Buffer.t] it
   exposes its backing store, so a frame's CRC is computed in place
   ([Crc32.update] over [Bytes.unsafe_to_string]) and the frame goes
   out in one [output] call — no [Buffer.contents] copy per record. *)

type enc = { mutable eb : Bytes.t; mutable elen : int }

let enc_create n = { eb = Bytes.create n; elen = 0 }

let enc_reserve e n =
  let need = e.elen + n in
  if need > Bytes.length e.eb then begin
    let cap = ref (2 * Bytes.length e.eb) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit e.eb 0 bigger 0 e.elen;
    e.eb <- bigger
  end

let enc_byte e b =
  enc_reserve e 1;
  Bytes.unsafe_set e.eb e.elen (Char.unsafe_chr (b land 0xFF));
  e.elen <- e.elen + 1

(* [lsr] makes the loop total even when [n]'s sign bit is set, so the
   full 63-bit pattern a zigzagged extreme offset produces round-trips *)
let enc_varbits e n =
  enc_reserve e 10;
  let rec go n =
    if n >= 0 && n < 0x80 then begin
      Bytes.unsafe_set e.eb e.elen (Char.unsafe_chr n);
      e.elen <- e.elen + 1
    end
    else begin
      Bytes.unsafe_set e.eb e.elen (Char.unsafe_chr (0x80 lor (n land 0x7F)));
      e.elen <- e.elen + 1;
      go (n lsr 7)
    end
  in
  go n

let enc_uvarint e n =
  if n < 0 then invalid_arg "Binary_io.write_uvarint: negative";
  enc_varbits e n

(* branch-free zigzag: correct for the whole int range, including
   magnitudes ≥ 2^61 where [n lsl 1] alone would overflow the guard *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let enc_svarint e n = enc_varbits e (zigzag n)

let enc_string e s =
  let len = String.length s in
  enc_reserve e len;
  Bytes.blit_string s 0 e.eb e.elen len;
  e.elen <- e.elen + len

let enc_output oc e = output oc e.eb 0 e.elen

let chan_varbits oc n =
  let rec go n =
    if n >= 0 && n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

(* --- byte sources ---

   v1 records are decoded straight off the channel; v2/v3 records are
   decoded out of the CRC-checked frame payload, held in a reusable
   [Bytes.t] arena that is refilled frame after frame — the stream
   performs one [really_input] per frame and no per-frame allocation.
   One reader serves all versions through a two-way source dispatch. *)

(* The arena fields live flat in the reader (not behind an option):
   [read_byte] runs once per encoded byte, and the flat layout makes its
   framed fast path a bounds check and an [unsafe_get] with no pointer
   chase or option match — together with the raised [-inline] threshold
   this is what keeps the fused drain in the nanoseconds-per-record
   range. *)
type reader = {
  ic : in_channel;
  framed : bool;  (* v2/v3: decode from the frame-payload arena *)
  mutable sb : Bytes.t;  (* the arena (unused for v1) *)
  mutable slen : int;
  mutable spos : int;
  mutable strings : string option array;  (* [None] = lost in a corrupt frame *)
  mutable count : int;
}

let read_byte r =
  if r.framed then begin
    let p = r.spos in
    if p >= r.slen then raise (Corrupt "unexpected end of record");
    r.spos <- p + 1;
    Char.code (Bytes.unsafe_get r.sb p)
  end
  else
    match In_channel.input_byte r.ic with
    | Some b -> b
    | None -> raise (Corrupt "unexpected end of trace")

let read_exact r len =
  if r.framed then begin
    let p = r.spos in
    if p + len > r.slen then raise (Corrupt "unexpected end of record");
    r.spos <- p + len;
    Bytes.sub_string r.sb p len
  end
  else
    try really_input_string r.ic len
    with End_of_file -> raise (Corrupt "unexpected end of trace")

(* Advance past [len] bytes without materializing them. *)
let skip_exact r len =
  if r.framed then begin
    if r.spos + len > r.slen then raise (Corrupt "unexpected end of record");
    r.spos <- r.spos + len
  end
  else ignore (read_exact r len)

(* A top-level loop, not a nested closure: without flambda a nested
   [let rec] capturing [r] allocates on every call, and a record decode
   makes ~10 varint reads — this is the hottest function in the fused
   drain.  The one-byte case (the overwhelming majority: table refs,
   small deltas, field tags) never enters the loop. *)
let rec uvarint_loop r shift acc =
  if shift > 62 then raise (Corrupt "varint overflow");
  let b = read_byte r in
  let acc = acc lor ((b land 0x7F) lsl shift) in
  if b land 0x80 = 0 then acc else uvarint_loop r (shift + 7) acc

let read_uvarint r =
  let b = read_byte r in
  if b < 0x80 then b else uvarint_loop r 7 (b land 0x7F)

let read_svarint r = unzigzag (read_uvarint r)

(* --- string table --- *)

type writer = {
  oc : out_channel;
  version : int;
  chapter_size : int;
  frame_records : int;  (* v3: records per frame *)
  enc : enc;  (* record bytes of the pending frame (v2/v3) / record (v1) *)
  head : enc;  (* scratch for the frame's payload header *)
  env : enc;  (* scratch for the frame envelope: sync, length, CRC, header *)
  table : (string, int) Hashtbl.t;
  mutable next_index : int;
  mutable last_ts : int;
  mutable last_pid : int;  (* v3 delta base *)
  mutable chapter : int;
  mutable in_chapter : int;
  mutable pending : int;  (* records encoded in [enc], awaiting a frame *)
  mutable frame_first : int;  (* in-chapter index of the first pending record *)
  mutable frame_base : int;  (* string-table size when the pending frame began *)
}

let write_string w s =
  match Hashtbl.find_opt w.table s with
  | Some index -> enc_uvarint w.enc (index + 1)
  | None ->
    Hashtbl.add w.table s w.next_index;
    w.next_index <- w.next_index + 1;
    enc_uvarint w.enc 0;
    enc_uvarint w.enc (String.length s);
    enc_string w.enc s

let intern_string r s =
  if r.count = Array.length r.strings then begin
    let bigger = Array.make (max 16 (2 * r.count)) None in
    Array.blit r.strings 0 bigger 0 r.count;
    r.strings <- bigger
  end;
  r.strings.(r.count) <- s;
  r.count <- r.count + 1

let max_string = 1 lsl 20

let read_string r =
  let tag = read_uvarint r in
  if tag = 0 then begin
    let len = read_uvarint r in
    if len > max_string then raise (Corrupt "string too long");
    let s = read_exact r len in
    intern_string r (Some s);
    s
  end
  else begin
    let index = tag - 1 in
    if index >= r.count then raise (Corrupt "string reference out of range");
    match r.strings.(index) with
    | Some s -> s
    | None ->
      raise (Lost_ref (Printf.sprintf "string %d was introduced in a corrupt frame" index))
  end

(* Like {!read_string}, but never resolves: introductions are interned
   (their bytes skipped in place), references only bounds-checked.  The
   resume skip path and the fused drain's dropped records use it to
   keep the table in lockstep without touching string contents. *)
let pass_string ~intern r =
  let tag = read_uvarint r in
  if tag = 0 then begin
    let len = read_uvarint r in
    if len > max_string then raise (Corrupt "string too long");
    if intern then intern_string r (Some (read_exact r len)) else skip_exact r len
  end
  else if tag - 1 >= r.count then raise (Corrupt "string reference out of range")

(* --- enums --- *)

let variant_index =
  let table = Hashtbl.create 32 in
  List.iteri (fun i v -> Hashtbl.add table v i) Model.all_variants;
  fun v -> Hashtbl.find table v

let variant_of_index =
  let arr = Array.of_list Model.all_variants in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad variant index") else arr.(i)

let errno_index =
  let table = Hashtbl.create 64 in
  List.iteri (fun i e -> Hashtbl.add table e i) Errno.all;
  fun e -> Hashtbl.find table e

let errno_of_index =
  let arr = Array.of_list Errno.all in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad errno index") else arr.(i)

(* --- calls --- *)

let write_byte w b = enc_byte w.enc b

let write_target w = function
  | Model.Path p ->
    write_byte w 0;
    write_string w p
  | Model.Fd fd ->
    write_byte w 1;
    enc_svarint w.enc fd

let read_target r =
  match read_byte r with
  | 0 -> Model.Path (read_string r)
  | 1 -> Model.Fd (read_svarint r)
  | _ -> raise (Corrupt "bad target tag")

let write_call w call =
  enc_uvarint w.enc (variant_index (Model.variant_of_call call));
  match call with
  | Model.Open_call { path; flags; mode; _ } ->
    write_string w path;
    enc_uvarint w.enc flags;
    enc_uvarint w.enc mode
  | Model.Read_call { fd; count; offset; _ } | Model.Write_call { fd; count; offset; _ } ->
    enc_svarint w.enc fd;
    enc_uvarint w.enc count;
    (match offset with Some off -> enc_svarint w.enc off | None -> ())
  | Model.Lseek_call { fd; offset; whence } ->
    enc_svarint w.enc fd;
    enc_svarint w.enc offset;
    write_byte w (Whence.to_code whence)
  | Model.Truncate_call { target; length; _ } ->
    write_target w target;
    enc_svarint w.enc length
  | Model.Mkdir_call { path; mode; _ } ->
    write_string w path;
    enc_uvarint w.enc mode
  | Model.Chmod_call { target; mode; _ } ->
    write_target w target;
    enc_uvarint w.enc mode
  | Model.Close_call { fd } -> enc_svarint w.enc fd
  | Model.Chdir_call { target } -> write_target w target
  | Model.Setxattr_call { target; name; size; flags; _ } ->
    write_target w target;
    write_string w name;
    enc_uvarint w.enc size;
    write_byte w (Xattr_flag.to_code flags)
  | Model.Getxattr_call { target; name; size; _ } ->
    write_target w target;
    write_string w name;
    enc_uvarint w.enc size

let read_call r =
  let variant = variant_of_index (read_uvarint r) in
  match Model.base_of_variant variant with
  | Model.Open ->
    let path = read_string r in
    let flags = read_uvarint r in
    let mode = read_uvarint r in
    (* creat's flags are forced by the constructor; the stored flags are
       authoritative, so bypass the creat rewrite by reconstructing the
       record shape directly through open_ for non-creat variants *)
    Model.open_ ~variant ~flags ~mode path
  | Model.Read | Model.Write ->
    let fd = read_svarint r in
    let count = read_uvarint r in
    let offset =
      match variant with
      | Model.Sys_pread64 | Model.Sys_pwrite64 -> Some (read_svarint r)
      | _ -> None
    in
    if Model.base_of_variant variant = Model.Read then Model.read ~variant ?offset ~fd ~count ()
    else Model.write ~variant ?offset ~fd ~count ()
  | Model.Lseek ->
    let fd = read_svarint r in
    let offset = read_svarint r in
    (match Whence.of_code (read_byte r) with
     | Some whence -> Model.lseek ~fd ~offset ~whence
     | None -> raise (Corrupt "bad whence"))
  | Model.Truncate ->
    let target = read_target r in
    let length = read_svarint r in
    Model.truncate ~variant ~target ~length ()
  | Model.Mkdir ->
    let path = read_string r in
    let mode = read_uvarint r in
    Model.mkdir ~variant ~mode path
  | Model.Chmod ->
    let target = read_target r in
    let mode = read_uvarint r in
    Model.chmod ~variant ~target ~mode ()
  | Model.Close -> Model.close (read_svarint r)
  | Model.Chdir -> Model.chdir (read_target r)
  | Model.Setxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r in
    (match Xattr_flag.of_code (read_byte r) with
     | Some flags -> Model.setxattr ~variant ~flags ~target ~name ~size ()
     | None -> raise (Corrupt "bad xattr flag"))
  | Model.Getxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r in
    Model.getxattr ~variant ~target ~name ~size ()

(* Parse a call's fields without building it: every string keeps the
   table in lockstep via {!pass_string}, every number is consumed and
   dropped.  Must mirror {!read_call} shape for shape. *)
let pass_target ~intern r =
  match read_byte r with
  | 0 -> pass_string ~intern r
  | 1 -> ignore (read_svarint r)
  | _ -> raise (Corrupt "bad target tag")

let pass_call ~intern r =
  let variant = variant_of_index (read_uvarint r) in
  match Model.base_of_variant variant with
  | Model.Open ->
    pass_string ~intern r;
    ignore (read_uvarint r);
    ignore (read_uvarint r)
  | Model.Read | Model.Write ->
    ignore (read_svarint r);
    ignore (read_uvarint r);
    (match variant with
     | Model.Sys_pread64 | Model.Sys_pwrite64 -> ignore (read_svarint r)
     | _ -> ())
  | Model.Lseek ->
    ignore (read_svarint r);
    ignore (read_svarint r);
    if Whence.of_code (read_byte r) = None then raise (Corrupt "bad whence")
  | Model.Truncate ->
    pass_target ~intern r;
    ignore (read_svarint r)
  | Model.Mkdir ->
    pass_string ~intern r;
    ignore (read_uvarint r)
  | Model.Chmod ->
    pass_target ~intern r;
    ignore (read_uvarint r)
  | Model.Close -> ignore (read_svarint r)
  | Model.Chdir -> pass_target ~intern r
  | Model.Setxattr ->
    pass_target ~intern r;
    pass_string ~intern r;
    ignore (read_uvarint r);
    if Xattr_flag.of_code (read_byte r) = None then raise (Corrupt "bad xattr flag")
  | Model.Getxattr ->
    pass_target ~intern r;
    pass_string ~intern r;
    ignore (read_uvarint r)

(* --- events, writer side --- *)

let max_chapter_size = 1 lsl 20

let writer ?(version = 3) ?chapter ?(frame = default_frame_records) oc =
  let chapter =
    match chapter with
    | Some c -> c
    | None -> if version >= 3 then default_chapter_v3 else default_chapter
  in
  if chapter <= 0 || chapter > max_chapter_size then
    invalid_arg "Binary_io.writer: chapter out of range";
  if frame <= 0 then invalid_arg "Binary_io.writer: frame must be positive";
  (match version with
   | 1 -> output_string oc magic_v1
   | 2 | 3 ->
     output_string oc (if version = 2 then magic_v2 else magic_v3);
     (* the chapter size is part of the header so a reader can map a
        frame's (chapter, in-chapter) pair to an absolute record
        number — the basis for exact loss accounting *)
     chan_varbits oc chapter
   | v -> invalid_arg (Printf.sprintf "Binary_io.writer: unsupported version %d" v));
  {
    oc;
    version;
    chapter_size = chapter;
    frame_records = (if version = 3 then min frame chapter else 1);
    enc = enc_create 4096;
    head = enc_create 64;
    env = enc_create 64;
    table = Hashtbl.create 256;
    next_index = 0;
    last_ts = 0;
    last_pid = 0;
    chapter = 0;
    in_chapter = 0;
    pending = 0;
    frame_first = 0;
    frame_base = 0;
  }

(* v1/v2 record bytes: clamped uvarint timestamp delta, absolute pid. *)
let encode_record w (e : Event.t) =
  enc_uvarint w.enc (max 0 (e.timestamp_ns - w.last_ts));
  w.last_ts <- e.timestamp_ns;
  enc_uvarint w.enc e.pid;
  write_string w e.comm;
  (match e.payload with
   | Event.Tracked call ->
     write_byte w 0;
     write_call w call
   | Event.Aux { name; detail } ->
     write_byte w 1;
     write_string w name;
     write_string w detail);
  (match e.outcome with
   | Model.Ret n ->
     write_byte w 0;
     enc_svarint w.enc n
   | Model.Err errno ->
     write_byte w 1;
     write_byte w (errno_index errno));
  match e.path_hint with
  | Some hint ->
    write_byte w 1;
    write_string w hint
  | None -> write_byte w 0

(* v3 record flags byte: the three per-record shape choices packed into
   one byte instead of three tag bytes. *)
let v3_flag_aux = 0x01     (* payload is Aux, not a tracked call *)
let v3_flag_err = 0x02     (* outcome is Err errno, not Ret n *)
let v3_flag_hint = 0x04    (* a path hint follows the flags byte *)

(* v3 record bytes: exact zigzag deltas for both monotone-ish fields,
   one flags byte replacing the per-field tags, and the hint hoisted
   ahead of the payload so a filtering decoder can drop a record before
   building its call. *)
let encode_record_v3 w (e : Event.t) =
  enc_svarint w.enc (e.timestamp_ns - w.last_ts);
  w.last_ts <- e.timestamp_ns;
  enc_svarint w.enc (e.pid - w.last_pid);
  w.last_pid <- e.pid;
  write_string w e.comm;
  let flags =
    (match e.payload with Event.Tracked _ -> 0 | Event.Aux _ -> v3_flag_aux)
    lor (match e.outcome with Model.Ret _ -> 0 | Model.Err _ -> v3_flag_err)
    lor (match e.path_hint with None -> 0 | Some _ -> v3_flag_hint)
  in
  write_byte w flags;
  (match e.path_hint with Some hint -> write_string w hint | None -> ());
  (match e.payload with
   | Event.Tracked call -> write_call w call
   | Event.Aux { name; detail } ->
     write_string w name;
     write_string w detail);
  match e.outcome with
  | Model.Ret n -> enc_svarint w.enc n
  | Model.Err errno -> write_byte w (errno_index errno)

(* Emit the pending records as one frame: header and record bytes are
   CRC'd in place, then the whole envelope — sync marker, length varint,
   CRC, payload header — is assembled in the reusable [env] scratch so a
   frame leaves as two [output] calls (envelope, record bytes) instead
   of one buffered-channel call per envelope byte.  Each channel call
   takes the runtime's channel lock; at 256-record frames the old
   per-byte envelope was the dominant writer cost after encoding. *)
let emit_frame w =
  if w.pending > 0 then begin
    let head = w.head in
    head.elen <- 0;
    enc_uvarint head w.chapter;
    enc_uvarint head w.frame_first;
    enc_uvarint head w.frame_base;
    if w.version = 3 then enc_uvarint head w.pending;
    let crc =
      Crc32.update
        (Crc32.update 0 (Bytes.unsafe_to_string head.eb) ~pos:0 ~len:head.elen)
        (Bytes.unsafe_to_string w.enc.eb) ~pos:0 ~len:w.enc.elen
    in
    let env = w.env in
    env.elen <- 0;
    enc_byte env sync0;
    enc_byte env sync1;
    enc_varbits env (head.elen + w.enc.elen);
    enc_byte env (crc land 0xFF);
    enc_byte env ((crc lsr 8) land 0xFF);
    enc_byte env ((crc lsr 16) land 0xFF);
    enc_byte env ((crc lsr 24) land 0xFF);
    enc_reserve env head.elen;
    Bytes.blit head.eb 0 env.eb env.elen head.elen;
    env.elen <- env.elen + head.elen;
    enc_output w.oc env;
    enc_output w.oc w.enc;
    w.enc.elen <- 0;
    w.pending <- 0
  end

(* chapter rollover: restart the string table so a corrupt frame can
   only orphan references until the next chapter, not to the end of
   the trace.  v3 frames never span a chapter — the pending frame is
   flushed first, so every frame decodes against one table. *)
let rollover w =
  if w.in_chapter >= w.chapter_size then begin
    emit_frame w;
    Hashtbl.reset w.table;
    w.next_index <- 0;
    w.chapter <- w.chapter + 1;
    w.in_chapter <- 0
  end

let write_event w (e : Event.t) =
  if w.version = 1 then begin
    encode_record w e;
    enc_output w.oc w.enc;
    w.enc.elen <- 0
  end
  else begin
    rollover w;
    if w.pending = 0 then begin
      w.frame_first <- w.in_chapter;
      w.frame_base <- w.next_index
    end;
    if w.version = 3 then encode_record_v3 w e else encode_record w e;
    w.in_chapter <- w.in_chapter + 1;
    w.pending <- w.pending + 1;
    if w.pending >= w.frame_records then emit_frame w
  end

let sink = write_event

let flush w =
  emit_frame w;
  Stdlib.flush w.oc

(* --- events, reader side --- *)

(* Shared decode of everything after the timestamp (v1/v2 layout). *)
let read_event_rest r ~seq ~ts =
  let pid = read_uvarint r in
  let comm = read_string r in
  let payload =
    match read_byte r with
    | 0 -> Event.Tracked (read_call r)
    | 1 ->
      let name = read_string r in
      let detail = read_string r in
      Event.Aux { name; detail }
    | _ -> raise (Corrupt "bad payload tag")
  in
  let outcome =
    match read_byte r with
    | 0 -> Model.Ret (read_svarint r)
    | 1 -> Model.Err (errno_of_index (read_byte r))
    | _ -> raise (Corrupt "bad outcome tag")
  in
  let path_hint =
    match read_byte r with
    | 0 -> None
    | 1 -> Some (read_string r)
    | _ -> raise (Corrupt "bad hint tag")
  in
  { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

(* [first] is the already-consumed first byte of the timestamp varint —
   the v1 EOF probe that decides whether another record exists. *)
let read_event_v1 r ~seq ~last_ts ~first =
  let ts =
    last_ts
    +
    let rec go shift acc b =
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc (read_byte r)
    in
    go 0 0 first
  in
  read_event_rest r ~seq ~ts

let read_event_v2 r ~seq ~last_ts =
  let ts = last_ts + read_uvarint r in
  read_event_rest r ~seq ~ts

(* --- streaming decode --- *)

type mode = Strict | Lenient of Anomaly.budget

(* The string table makes the decode inherently sequential, but it does
   not make it inherently materializing: a stream hands out events in
   bounded batches, so a multi-million-event trace is processed in
   O(batch) memory and the decoded batches can feed parallel analysis
   workers. *)
type stream = {
  ic : in_channel;
  version : int;
  mode : mode;
  chapter_size : int;  (* from the v2/v3 header; 0 for v1 *)
  sr : reader;
  mutable seq : int;
  mutable next_record : int;  (* 0-based absolute index expected next (v2/v3) *)
  mutable last_ts : int;
  mutable last_pid : int;  (* v3 delta base *)
  mutable chapter : int;
  mutable frame_start : int;  (* byte offset of the current v3 frame *)
  mutable frame_count : int;  (* records in the current v3 frame *)
  mutable frame_left : int;  (* records of it not yet delivered *)
  mutable memo : Bytes.t;  (* fused drain: per-string-index hint verdicts *)
  mutable failed : bool;
  mutable eof : bool;
  (* the completeness ledger *)
  mutable produced : int;
  mutable skipped : int;
  mutable regions : int;
  mutable bytes_skipped : int;
  mutable truncated : bool;
  mutable anomaly_count : int;
  mutable anomalies : Anomaly.t list;  (* newest first, capped *)
}

let make_stream ?(mode = Strict) ic ~version ~chapter_size =
  {
    ic;
    version;
    mode;
    chapter_size;
    sr =
      {
        ic;
        framed = version >= 2;
        sb = Bytes.create 4096;
        slen = 0;
        spos = 0;
        strings = Array.make 256 None;
        count = 0;
      };
    seq = 1;
    next_record = 0;
    last_ts = 0;
    last_pid = 0;
    chapter = 0;
    frame_start = 0;
    frame_count = 0;
    frame_left = 0;
    memo = Bytes.empty;
    failed = false;
    eof = false;
    produced = 0;
    skipped = 0;
    regions = 0;
    bytes_skipped = 0;
    truncated = false;
    anomaly_count = 0;
    anomalies = [];
  }

let read_header_uvarint ic =
  let rec go shift acc =
    if shift > 24 then None
    else
      match In_channel.input_byte ic with
      | None -> None
      | Some b ->
        let acc = acc lor ((b land 0x7F) lsl shift) in
        if b land 0x80 = 0 then Some acc else go (shift + 7) acc
  in
  go 0 0

let open_stream ?(mode = Strict) ic =
  match really_input_string ic magic_len with
  | header when header = magic_v2 || header = magic_v3 -> (
    let version = if header = magic_v2 then 2 else 3 in
    match read_header_uvarint ic with
    | Some cs when cs > 0 && cs <= max_chapter_size ->
      Ok (make_stream ~mode ic ~version ~chapter_size:cs)
    | _ -> Error "corrupt trace header (bad chapter size)")
  | header when header = magic_v1 -> Ok (make_stream ~mode ic ~version:1 ~chapter_size:0)
  | _ -> Error "not a binary iocov trace (bad magic)"
  | exception End_of_file -> Error "not a binary iocov trace (bad magic)"

let stream_version st = st.version

let note st ?offset kind detail =
  st.anomaly_count <- st.anomaly_count + 1;
  if st.anomaly_count <= Anomaly.max_kept_anomalies then
    st.anomalies <- Anomaly.v ?offset kind detail :: st.anomalies

(* one skipped record = one metric tick, even when a whole region of
   frames vanished at once and the loss was counted from an index gap *)
let bump_skipped st n =
  st.skipped <- st.skipped + n;
  Metrics.Counter.add m_corrupt n

let completeness st =
  {
    (Anomaly.clean ~events_read:st.produced) with
    Anomaly.records_skipped = st.skipped;
    corrupt_regions = st.regions;
    bytes_skipped = st.bytes_skipped;
    truncated = st.truncated;
    anomalies = List.rev st.anomalies;
  }

(* --- v2/v3 framing --- *)

type frame_read =
  | Frame_eof
  | Frame_ok  (* the arena holds the CRC-valid payload *)
  | Frame_bad of string  (* structural damage: resync candidates move on *)

let read_u32_le ic =
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

(* Read one frame at the current position into the arena.  Structural
   failures (bad sync, insane length, short read, CRC mismatch) are
   data, not exceptions: lenient mode treats them as resync triggers. *)
let read_frame st =
  let ic = st.ic in
  match In_channel.input_byte ic with
  | None -> Frame_eof
  | Some b0 -> (
    try
      if b0 <> sync0 then Frame_bad "bad sync marker"
      else if input_byte ic <> sync1 then Frame_bad "bad sync marker"
      else begin
        let len =
          let rec go shift acc =
            if shift > 24 then raise Exit;
            let b = input_byte ic in
            let acc = acc lor ((b land 0x7F) lsl shift) in
            if b land 0x80 = 0 then acc else go (shift + 7) acc
          in
          try go 0 0 with Exit -> -1
        in
        if len < 0 || len > max_frame then Frame_bad "bad frame length"
        else begin
          let crc = read_u32_le ic in
          let f = st.sr in
          if Bytes.length f.sb < len then f.sb <- Bytes.create (max len (2 * Bytes.length f.sb));
          really_input ic f.sb 0 len;
          f.slen <- len;
          f.spos <- 0;
          if Crc32.update 0 (Bytes.unsafe_to_string f.sb) ~pos:0 ~len <> crc then
            Frame_bad "crc mismatch"
          else Frame_ok
        end
      end
    with End_of_file -> Frame_bad "truncated frame")

type decoded =
  | Decoded of Event.t
  | Skipped of Anomaly.kind * string  (* frame consumed but record unusable *)

(* Decode a CRC-valid v2 frame payload: chapter id, string-table base
   count, record.  The base count is the self-healing hook — if frames
   were lost, it tells us how many string introductions went with them,
   and the placeholders make later references to them fail loudly
   (Lost_reference) instead of resolving to the wrong string. *)
let decode_frame st =
  let r = st.sr in
  try
    let chapter = read_uvarint r in
    let in_chapter = read_uvarint r in
    let base = read_uvarint r in
    if in_chapter >= st.chapter_size then raise (Corrupt "in-chapter index out of range");
    (* (chapter, in-chapter) pins this frame to an absolute record
       number; a gap against the expected index is the exact count of
       records destroyed with the frames between — however many resync
       regions it took to get here *)
    let idx = (chapter * st.chapter_size) + in_chapter in
    if idx < st.next_record then raise (Corrupt "record index regression");
    let gap = idx - st.next_record in
    if gap > 0 then begin
      (match st.mode with
       | Strict -> raise (Corrupt (Printf.sprintf "%d records missing before this frame" gap))
       | Lenient _ -> bump_skipped st gap)
    end;
    st.next_record <- idx + 1;
    if chapter <> st.chapter then begin
      (* writer restarted its table (or we lost the frames in between) *)
      st.chapter <- chapter;
      r.count <- 0
    end;
    if base > r.count then
      for _ = r.count + 1 to base do
        intern_string r None
      done
    else if base < r.count then raise (Corrupt "string table regression");
    let e = read_event_v2 r ~seq:(idx + 1) ~last_ts:st.last_ts in
    st.seq <- idx + 2;
    st.last_ts <- e.Event.timestamp_ns;
    st.produced <- st.produced + 1;
    Decoded e
  with
  | Corrupt msg -> Skipped (Anomaly.Corrupt_record, msg)
  | Lost_ref msg -> Skipped (Anomaly.Lost_reference, msg)

(* Scan forward for the next CRC-valid frame.  Every candidate either
   validates or advances the scan position by at least one byte, so the
   scan always terminates at EOF. *)
let resync st ~from =
  Metrics.Counter.incr m_resyncs;
  Iocov_obs.Trace_event.instant ~cat:"ingest"
    ~args:[ ("offset", string_of_int from) ]
    "resync";
  st.regions <- st.regions + 1;
  seek_in st.ic from;
  let rec scan () =
    match In_channel.input_byte st.ic with
    | None -> None
    | Some b when b <> sync0 -> scan ()
    | Some _ ->
      let cand = pos_in st.ic - 1 in
      seek_in st.ic cand;
      (match read_frame st with
       | Frame_ok -> Some cand
       | Frame_eof -> None
       | Frame_bad _ ->
         seek_in st.ic (cand + 1);
         scan ())
  in
  scan ()

exception Stream_error of string

let budget_of_mode st = match st.mode with Strict -> Anomaly.Unlimited | Lenient b -> b

let check_budget st ~final =
  let total = st.produced + st.skipped in
  if not (Anomaly.budget_allows (budget_of_mode st) ~bad:st.skipped ~total ~final) then begin
    st.failed <- true;
    let b = budget_of_mode st in
    note st Anomaly.Budget_exceeded
      (Printf.sprintf "%d of %d records corrupt (budget %s)" st.skipped total
         (Anomaly.budget_to_string b));
    raise
      (Stream_error
         (Printf.sprintf "error budget exceeded: %d of %d records corrupt (budget %s)"
            st.skipped total (Anomaly.budget_to_string b)))
  end

let skip_tail st ~from =
  let eof_pos = Int64.to_int (In_channel.length st.ic) in
  st.bytes_skipped <- st.bytes_skipped + max 0 (eof_pos - from);
  Metrics.Counter.add m_bytes_skipped (max 0 (eof_pos - from));
  st.truncated <- true;
  st.eof <- true

(* The v2 record pump: one event, or [None] at end of stream.  Strict
   mode turns the first defect into [Stream_error] with its offset;
   lenient mode skips, resyncs, and keeps the ledger. *)
let rec next_v2 st =
  if st.eof then None
  else begin
    let start = pos_in st.ic in
    match read_frame st with
    | Frame_eof ->
      st.eof <- true;
      None
    | Frame_ok -> consume_payload st ~start
    | Frame_bad reason -> (
      match st.mode with
      | Strict ->
        st.failed <- true;
        raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
      | Lenient _ -> (
        (* don't count records here: the lost count is unknowable until
           the next intact frame's index gap reveals it exactly *)
        note st ~offset:start Anomaly.Corrupt_record reason;
        match resync st ~from:(start + 1) with
        | None ->
          note st ~offset:start Anomaly.Truncated "no further intact frame";
          skip_tail st ~from:start;
          None
        | Some cand ->
          st.bytes_skipped <- st.bytes_skipped + (cand - start);
          Metrics.Counter.add m_bytes_skipped (cand - start);
          consume_payload st ~start:cand))
  end

and consume_payload st ~start =
  match decode_frame st with
  | Decoded e ->
    (* an index gap discovered on this frame may have pushed the ledger
       over the budget even though the frame itself is fine *)
    check_budget st ~final:false;
    Some e
  | Skipped (kind, reason) -> (
    match st.mode with
    | Strict ->
      st.failed <- true;
      raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
    | Lenient _ ->
      note st ~offset:start kind reason;
      bump_skipped st 1;
      check_budget st ~final:false;
      next_v2 st)

(* --- v3 framing: many records per frame --- *)

(* Parse the header of the CRC-valid v3 frame in the arena and settle
   the loss ledger against its first record index.  On return the frame
   is current: [frame_left] records await decoding at [frame.spos]. *)
let begin_frame_v3 st =
  let r = st.sr in
  let chapter = read_uvarint r in
  let first = read_uvarint r in
  let base = read_uvarint r in
  let count = read_uvarint r in
  if count <= 0 then raise (Corrupt "empty frame");
  if first + count > st.chapter_size then raise (Corrupt "in-chapter index out of range");
  let idx = (chapter * st.chapter_size) + first in
  if idx < st.next_record then raise (Corrupt "record index regression");
  let gap = idx - st.next_record in
  if gap > 0 then begin
    (match st.mode with
     | Strict -> raise (Corrupt (Printf.sprintf "%d records missing before this frame" gap))
     | Lenient _ -> bump_skipped st gap)
  end;
  st.next_record <- idx;
  if chapter <> st.chapter then begin
    st.chapter <- chapter;
    r.count <- 0;
    if st.memo <> Bytes.empty then Bytes.fill st.memo 0 (Bytes.length st.memo) '\000'
  end;
  if base > r.count then
    for _ = r.count + 1 to base do
      intern_string r None
    done
  else if base < r.count then raise (Corrupt "string table regression");
  st.frame_count <- count;
  st.frame_left <- count

(* A record failed to decode inside a CRC-valid frame (a dangling
   string reference after lost frames, or writer-side damage).  The
   record boundary is unknown from here on, so the rest of the frame is
   lost with it — an exactly-counted loss, since the header said how
   many records it held. *)
let record_failure st kind reason =
  match st.mode with
  | Strict ->
    st.failed <- true;
    raise (Stream_error (Printf.sprintf "offset %d: %s" st.frame_start reason))
  | Lenient _ ->
    note st ~offset:st.frame_start kind reason;
    let lost = st.frame_left in
    bump_skipped st lost;
    st.next_record <- st.next_record + lost;
    st.frame_left <- 0;
    st.seq <- st.next_record + 1;
    check_budget st ~final:false

(* Make a frame current: resolve EOF, structural damage (resync), and
   header defects until [frame_left > 0] or the stream ends. *)
let rec ensure_frame_v3 st =
  if st.eof then false
  else if st.frame_left > 0 then true
  else begin
    let start = pos_in st.ic in
    match read_frame st with
    | Frame_eof ->
      st.eof <- true;
      false
    | Frame_ok -> header_v3 st ~start
    | Frame_bad reason -> (
      match st.mode with
      | Strict ->
        st.failed <- true;
        raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
      | Lenient _ -> (
        note st ~offset:start Anomaly.Corrupt_record reason;
        match resync st ~from:(start + 1) with
        | None ->
          note st ~offset:start Anomaly.Truncated "no further intact frame";
          skip_tail st ~from:start;
          false
        | Some cand ->
          st.bytes_skipped <- st.bytes_skipped + (cand - start);
          Metrics.Counter.add m_bytes_skipped (cand - start);
          header_v3 st ~start:cand))
  end

and header_v3 st ~start =
  st.frame_start <- start;
  match begin_frame_v3 st with
  | () ->
    check_budget st ~final:false;
    true
  | exception (Corrupt reason | Lost_ref reason) -> (
    match st.mode with
    | Strict ->
      st.failed <- true;
      raise (Stream_error (Printf.sprintf "offset %d: %s" start reason))
    | Lenient _ ->
      (* header defect: the record count is unreadable, so the loss is
         unknowable here — the next intact frame's index gap counts it *)
      note st ~offset:start Anomaly.Corrupt_record reason;
      check_budget st ~final:false;
      ensure_frame_v3 st)

(* Decode the next record of the current v3 frame into an event. *)
let decode_record_v3 st =
  let r = st.sr in
  let idx = st.next_record in
  let ts = st.last_ts + read_svarint r in
  let pid = st.last_pid + read_svarint r in
  let comm = read_string r in
  let flags = read_byte r in
  if flags > 7 then raise (Corrupt "bad record flags");
  let path_hint =
    if flags land v3_flag_hint <> 0 then Some (read_string r) else None
  in
  let payload =
    if flags land v3_flag_aux = 0 then Event.Tracked (read_call r)
    else begin
      let name = read_string r in
      let detail = read_string r in
      Event.Aux { name; detail }
    end
  in
  let outcome =
    if flags land v3_flag_err = 0 then Model.Ret (read_svarint r)
    else Model.Err (errno_of_index (read_byte r))
  in
  st.last_ts <- ts;
  st.last_pid <- pid;
  st.next_record <- idx + 1;
  st.seq <- idx + 2;
  st.frame_left <- st.frame_left - 1;
  st.produced <- st.produced + 1;
  { Event.seq = idx + 1; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

let rec next_v3 st =
  if ensure_frame_v3 st then begin
    match decode_record_v3 st with
    | e -> Some e
    | exception Corrupt msg ->
      record_failure st Anomaly.Corrupt_record msg;
      next_v3 st
    | exception Lost_ref msg ->
      record_failure st Anomaly.Lost_reference msg;
      next_v3 st
  end
  else None

(* The v1 pump: no frames, no checksums — corruption is detected only
   when a field fails to decode, and with no sync markers there is
   nothing to resync on.  Lenient mode records the damage and treats
   the rest of the stream as lost. *)
let next_v1 st =
  if st.eof then None
  else begin
    let start = pos_in st.ic in
    match In_channel.input_byte st.ic with
    | None ->
      st.eof <- true;
      None
    | Some first -> (
      match read_event_v1 st.sr ~seq:st.seq ~last_ts:st.last_ts ~first with
      | e ->
        st.seq <- st.seq + 1;
        st.last_ts <- e.Event.timestamp_ns;
        st.produced <- st.produced + 1;
        Some e
      | exception (Corrupt msg | Lost_ref msg) -> (
        match st.mode with
        | Strict ->
          st.failed <- true;
          raise (Stream_error (Printf.sprintf "offset %d: %s" start msg))
        | Lenient _ ->
          note st ~offset:start Anomaly.Corrupt_record
            (msg ^ " (v1 trace: no sync markers, rest of stream unrecoverable)");
          bump_skipped st 1;
          skip_tail st ~from:start;
          None)
      | exception End_of_file -> (
        match st.mode with
        | Strict ->
          st.failed <- true;
          raise (Stream_error "truncated binary trace")
        | Lenient _ ->
          note st ~offset:start Anomaly.Truncated "trace ends mid-record";
          bump_skipped st 1;
          skip_tail st ~from:start;
          None))
  end

let next_event st =
  match st.version with 1 -> next_v1 st | 2 -> next_v2 st | _ -> next_v3 st

let wrap_stream_errors st f =
  try f () with
  | Stream_error msg -> Error msg
  | Corrupt msg ->
    st.failed <- true;
    Error msg
  | End_of_file ->
    st.failed <- true;
    Error "truncated binary trace"
  | Invalid_argument msg ->
    st.failed <- true;
    Error ("corrupt record: " ^ msg)

let read_batch st ~max =
  if max <= 0 then invalid_arg "Binary_io.read_batch: max must be positive";
  if st.failed then Error "reading past a decode error"
  else
    wrap_stream_errors st (fun () ->
        let batch = ref [] in
        let n = ref 0 in
        let continue = ref true in
        while !continue && !n < max do
          match next_event st with
          | None -> continue := false
          | Some e ->
            batch := e :: !batch;
            incr n
        done;
        if st.eof then check_budget st ~final:true;
        Ok (Array.of_list (List.rev !batch)))

(* --- the fused drain: records to calls without events --- *)

(* Hint verdict memo, one byte per string-table index of the current
   chapter: 0 unknown, 1 keep, 2 drop.  A verdict can only be cached
   for a string that resolved, so a dangling reference still fails
   loudly on its first use — identical loss accounting to the event
   path. *)
let memo_unknown = '\000'
let memo_keep = '\001'
let memo_drop = '\002'

let memo_slot st i =
  if i >= Bytes.length st.memo then begin
    let bigger = Bytes.make (max 256 (2 * (i + 1))) memo_unknown in
    Bytes.blit st.memo 0 bigger 0 (Bytes.length st.memo);
    st.memo <- bigger
  end;
  Bytes.unsafe_get st.memo i

let memo_set st i v =
  ignore (memo_slot st i);
  Bytes.set st.memo i v

type drained = {
  dr_produced : int;
  dr_kept : int;
  dr_no_hint : int;
  dr_no_match : int;
}

(* Hint verdict of one record, consuming its optional hint field:
   1 keep, 2 drop (hint rejected), 3 drop (no hint under a filter). *)
let classify_v3 st ~keep_hint ~flags =
  let r = st.sr in
  if flags land v3_flag_hint = 0 then
    (* no hint: a filter drops the record, no filter keeps it *)
    match keep_hint with None -> 1 | Some _ -> 3
  else
    match keep_hint with
    | None ->
      pass_string ~intern:true r;
      1
    | Some f -> (
      let tag = read_uvarint r in
      if tag = 0 then begin
        let len = read_uvarint r in
        if len > max_string then raise (Corrupt "string too long");
        let s = read_exact r len in
        intern_string r (Some s);
        let keep = f s in
        memo_set st (r.count - 1) (if keep then memo_keep else memo_drop);
        if keep then 1 else 2
      end
      else begin
        let i = tag - 1 in
        if i >= r.count then raise (Corrupt "string reference out of range");
        match memo_slot st i with
        | c when c = memo_keep -> 1
        | c when c = memo_drop -> 2
        | _ -> (
          match r.strings.(i) with
          | None ->
            raise
              (Lost_ref (Printf.sprintf "string %d was introduced in a corrupt frame" i))
          | Some s ->
            let keep = f s in
            memo_set st i (if keep then memo_keep else memo_drop);
            if keep then 1 else 2)
      end)

(* Pass over a dropped (or aux) record's payload and outcome, keeping
   only the string table in step. *)
let pass_rest_v3 r ~flags =
  (if flags land v3_flag_aux = 0 then pass_call ~intern:true r
   else begin
     pass_string ~intern:true r;
     pass_string ~intern:true r
   end);
  if flags land v3_flag_err = 0 then ignore (read_svarint r) else ignore (read_byte r)

let finish_record_v3 st ~idx ~ts ~pid =
  st.last_ts <- ts;
  st.last_pid <- pid;
  st.next_record <- idx + 1;
  st.seq <- idx + 2;
  st.frame_left <- st.frame_left - 1;
  st.produced <- st.produced + 1

(* One v3 record, fused: classify by hint first, then either decode the
   call straight into [on_call] or pass over the record keeping only
   the string table in step.  Aux records are classified (they count as
   kept/dropped like any record) but never reach [on_call]. *)
let drain_record_v3 st ~keep_hint ~on_call =
  let r = st.sr in
  let idx = st.next_record in
  let ts = st.last_ts + read_svarint r in
  let pid = st.last_pid + read_svarint r in
  pass_string ~intern:true r;  (* comm *)
  let flags = read_byte r in
  if flags > 7 then raise (Corrupt "bad record flags");
  let verdict = classify_v3 st ~keep_hint ~flags in
  (if verdict = 1 && flags land v3_flag_aux = 0 then begin
     let call = read_call r in
     let outcome =
       if flags land v3_flag_err = 0 then Model.Ret (read_svarint r)
       else Model.Err (errno_of_index (read_byte r))
     in
     on_call call outcome
   end
   else pass_rest_v3 r ~flags);
  finish_record_v3 st ~idx ~ts ~pid;
  verdict

(* --- the plan-direct drain: wire fields to dense cells, no calls --- *)

(* wire variant index → plan cell / base / has-an-offset-field,
   precomputed so the plan-direct dispatch is three array reads *)
let dense_variant_cell = Array.of_list (List.map Plan.variant_cell Model.all_variants)
let dense_variant_base = Array.of_list (List.map Model.base_of_variant Model.all_variants)

let dense_variant_offset =
  Array.of_list
    (List.map
       (function Model.Sys_pread64 | Model.Sys_pwrite64 -> true | _ -> false)
       Model.all_variants)

let dense_errnos = List.length Errno.all

let read_outcome_cell r ~flags base =
  if flags land v3_flag_err = 0 then Plan.ret_output_cell base (read_svarint r)
  else begin
    let i = read_byte r in
    (* the wire errno index is {!Errno.index}, which is also the plan's
       err-cell offset — validated, then used as-is *)
    if i >= dense_errnos then raise (Corrupt "bad errno index");
    Plan.err_output_cell base i
  end

(* A kept tracked record, plan-direct: raw wire fields map straight to
   dense cell IDs through {!Plan}'s raw-field slots — no [Model.call]
   is ever built.  Field order and every validation mirrors
   {!read_call}, and all bumps happen only after the whole record
   decoded, so a record that fails mid-decode contributes nothing —
   the same per-record atomicity as the event path. *)
let drain_tracked_dense st d ~flags =
  let r = st.sr in
  let vi = read_uvarint r in
  if vi >= Array.length dense_variant_cell then raise (Corrupt "bad variant index");
  let vcell = Array.unsafe_get dense_variant_cell vi in
  let base = Array.unsafe_get dense_variant_base vi in
  (* every bump goes through the accumulator's pre-bound closure — one
     existing closure, nothing allocated per record (a local helper
     capturing the counter array would be) *)
  let inc = Dense.bumper d in
  match base with
  | Model.Open ->
    pass_string ~intern:true r;
    let oflags = read_uvarint r in
    let mode = read_uvarint r in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    Plan.iter_open_slots ~flags:oflags ~mode inc;
    Dense.observe_open_mask d oflags;
    inc ocell
  | Model.Read ->
    ignore (read_svarint r);
    let count = read_uvarint r in
    let off_slot =
      if Array.unsafe_get dense_variant_offset vi then Plan.read_offset_slot (read_svarint r)
      else -1
    in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.read_count_slot count);
    if off_slot >= 0 then inc off_slot;
    inc ocell
  | Model.Write ->
    ignore (read_svarint r);
    let count = read_uvarint r in
    let off_slot =
      if Array.unsafe_get dense_variant_offset vi then Plan.write_offset_slot (read_svarint r)
      else -1
    in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.write_count_slot count);
    if off_slot >= 0 then inc off_slot;
    inc ocell
  | Model.Lseek ->
    ignore (read_svarint r);
    let offset = read_svarint r in
    let code = read_byte r in
    if Whence.of_code code = None then raise (Corrupt "bad whence");
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.lseek_offset_slot offset);
    inc (Plan.lseek_whence_slot code);
    inc ocell
  | Model.Truncate ->
    pass_target ~intern:true r;
    let length = read_svarint r in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.truncate_length_slot length);
    inc ocell
  | Model.Mkdir ->
    pass_string ~intern:true r;
    let mode = read_uvarint r in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    Plan.iter_mkdir_mode_slots mode inc;
    inc ocell
  | Model.Chmod ->
    pass_target ~intern:true r;
    let mode = read_uvarint r in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    Plan.iter_chmod_mode_slots mode inc;
    inc ocell
  | Model.Close ->
    ignore (read_svarint r);
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc ocell
  | Model.Chdir ->
    pass_target ~intern:true r;
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc ocell
  | Model.Setxattr ->
    pass_target ~intern:true r;
    pass_string ~intern:true r;
    let size = read_uvarint r in
    let code = read_byte r in
    if Xattr_flag.of_code code = None then raise (Corrupt "bad xattr flag");
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.setxattr_size_slot size);
    inc (Plan.setxattr_flag_slot code);
    inc ocell
  | Model.Getxattr ->
    pass_target ~intern:true r;
    pass_string ~intern:true r;
    let size = read_uvarint r in
    let ocell = read_outcome_cell r ~flags base in
    Dense.count_call d;
    inc vcell;
    inc (Plan.getxattr_size_slot size);
    inc ocell

(* {!drain_record_v3} with the call layer fused away: a kept tracked
   record goes straight to dense plan-cell bumps. *)
let drain_record_dense st ~keep_hint d =
  let r = st.sr in
  let idx = st.next_record in
  let ts = st.last_ts + read_svarint r in
  let pid = st.last_pid + read_svarint r in
  pass_string ~intern:true r;  (* comm *)
  let flags = read_byte r in
  if flags > 7 then raise (Corrupt "bad record flags");
  let verdict = classify_v3 st ~keep_hint ~flags in
  (if verdict = 1 && flags land v3_flag_aux = 0 then drain_tracked_dense st d ~flags
   else pass_rest_v3 r ~flags);
  finish_record_v3 st ~idx ~ts ~pid;
  verdict

let check_drain st ~name ~keep_hint ~max =
  if max <= 0 then invalid_arg (name ^ ": max must be positive");
  if st.version <> 3 then invalid_arg (name ^ ": v3 streams only");
  if keep_hint <> None && st.memo = Bytes.empty then st.memo <- Bytes.make 256 memo_unknown

let drain_batch st ?keep_hint ~on_call ~max () =
  check_drain st ~name:"Binary_io.drain_batch" ~keep_hint ~max;
  if st.failed then Error "reading past a decode error"
  else
    wrap_stream_errors st (fun () ->
        let produced = ref 0 and kept = ref 0 and no_hint = ref 0 and no_match = ref 0 in
        let continue = ref true in
        while !continue && !produced < max do
          if ensure_frame_v3 st then begin
            (* one exception handler per frame run, not per record — a
               mid-frame failure voids the rest of the frame anyway
               (see {!record_failure}), so nothing after the failing
               record would have decoded either way *)
            let budget = min st.frame_left (max - !produced) in
            match
              for _ = 1 to budget do
                let verdict = drain_record_v3 st ~keep_hint ~on_call in
                incr produced;
                if verdict = 1 then incr kept
                else if verdict = 2 then incr no_match
                else incr no_hint
              done
            with
            | () -> ()
            | exception Corrupt msg -> record_failure st Anomaly.Corrupt_record msg
            | exception Lost_ref msg -> record_failure st Anomaly.Lost_reference msg
          end
          else continue := false
        done;
        if st.eof then check_budget st ~final:true;
        Ok
          {
            dr_produced = !produced;
            dr_kept = !kept;
            dr_no_hint = !no_hint;
            dr_no_match = !no_match;
          })

let drain_batch_dense st ?keep_hint ~dense ~max () =
  check_drain st ~name:"Binary_io.drain_batch_dense" ~keep_hint ~max;
  if st.failed then Error "reading past a decode error"
  else
    wrap_stream_errors st (fun () ->
        let produced = ref 0 and kept = ref 0 and no_hint = ref 0 and no_match = ref 0 in
        let continue = ref true in
        while !continue && !produced < max do
          if ensure_frame_v3 st then begin
            let budget = min st.frame_left (max - !produced) in
            match
              for _ = 1 to budget do
                let verdict = drain_record_dense st ~keep_hint dense in
                incr produced;
                if verdict = 1 then incr kept
                else if verdict = 2 then incr no_match
                else incr no_hint
              done
            with
            | () -> ()
            | exception Corrupt msg -> record_failure st Anomaly.Corrupt_record msg
            | exception Lost_ref msg -> record_failure st Anomaly.Lost_reference msg
          end
          else continue := false
        done;
        if st.eof then check_budget st ~final:true;
        Ok
          {
            dr_produced = !produced;
            dr_kept = !kept;
            dr_no_hint = !no_hint;
            dr_no_match = !no_match;
          })

let fold_channel ic ~init ~f =
  match open_stream ic with
  | Error msg -> Error msg
  | Ok st ->
    let rec go acc =
      match read_batch st ~max:4096 with
      | Error msg -> Error msg
      | Ok batch when Array.length batch = 0 -> Ok acc
      | Ok batch -> go (Array.fold_left f acc batch)
    in
    go init

let read_channel ic =
  Result.map List.rev (fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc))

let is_binary_trace ic =
  let pos = In_channel.pos ic in
  let result =
    try
      let header = really_input_string ic magic_len in
      header = magic_v1 || header = magic_v2 || header = magic_v3
    with End_of_file -> false
  in
  In_channel.seek ic pos;
  result

(* --- cursors: suspend and resume a decode --- *)

type cursor = {
  c_version : int;
  c_offset : int;
  c_seq : int;
  c_last_ts : int;
  c_last_pid : int;
  c_chapter : int;
  c_skip : int;
  c_strings : string option array;
}

let cursor st =
  let mid_frame = st.version = 3 && st.frame_left > 0 in
  {
    c_version = st.version;
    c_offset = (if mid_frame then st.frame_start else pos_in st.ic);
    c_seq = st.seq;
    c_last_ts = st.last_ts;
    c_last_pid = st.last_pid;
    c_chapter = st.chapter;
    c_skip = (if mid_frame then st.frame_count - st.frame_left else 0);
    c_strings = Array.sub st.sr.strings 0 st.sr.count;
  }

(* Skip one already-delivered record of a re-read frame.  The cursor's
   string table already holds every string the skipped records
   introduced, so introductions pass by without interning and the
   deltas are discarded — the cursor carries the authoritative
   [last_ts]/[last_pid]. *)
let skip_record_v3 r =
  ignore (read_uvarint r);  (* ts delta *)
  ignore (read_uvarint r);  (* pid delta *)
  pass_string ~intern:false r;  (* comm *)
  let flags = read_byte r in
  if flags > 7 then raise (Corrupt "bad record flags");
  if flags land v3_flag_hint <> 0 then pass_string ~intern:false r;
  (if flags land v3_flag_aux = 0 then pass_call ~intern:false r
   else begin
     pass_string ~intern:false r;
     pass_string ~intern:false r
   end);
  if flags land v3_flag_err = 0 then ignore (read_svarint r)
  else ignore (read_byte r)

(* Re-enter the frame a mid-frame cursor points at: re-read it, verify
   it still matches the cursor, and pass over the records the
   checkpointed run already delivered. *)
let reenter_frame st cur =
  seek_in st.ic cur.c_offset;
  match read_frame st with
  | Frame_eof | Frame_bad _ -> Error "checkpoint points at a damaged frame"
  | Frame_ok -> (
    let r = st.sr in
    try
      let chapter = read_uvarint r in
      let first = read_uvarint r in
      let base = read_uvarint r in
      let count = read_uvarint r in
      let idx = (chapter * st.chapter_size) + first in
      if
        chapter <> cur.c_chapter || cur.c_skip >= count
        || idx + cur.c_skip <> cur.c_seq - 1
        || base > r.count
      then Error "checkpoint does not match the trace frame"
      else begin
        for _ = 1 to cur.c_skip do
          skip_record_v3 r
        done;
        st.frame_start <- cur.c_offset;
        st.frame_count <- count;
        st.frame_left <- count - cur.c_skip;
        Ok ()
      end
    with Corrupt msg | Lost_ref msg ->
      Error ("checkpoint frame re-read failed: " ^ msg))

let resume_stream ?(mode = Strict) ic cur =
  match open_stream ~mode ic with
  | Error _ as e -> e
  | Ok st ->
    let header_end = pos_in ic in
    if st.version <> cur.c_version then
      Error
        (Printf.sprintf "checkpoint is for a v%d trace but the file is v%d" cur.c_version
           st.version)
    else if cur.c_offset < header_end || cur.c_offset > Int64.to_int (In_channel.length ic) then
      Error (Printf.sprintf "checkpoint offset %d is outside the trace" cur.c_offset)
    else if cur.c_skip > 0 && st.version <> 3 then
      Error "checkpoint skips into a frame of a single-record format"
    else begin
      seek_in ic cur.c_offset;
      st.seq <- cur.c_seq;
      st.next_record <- max 0 (cur.c_seq - 1);
      st.last_ts <- cur.c_last_ts;
      st.last_pid <- cur.c_last_pid;
      st.chapter <- cur.c_chapter;
      let n = Array.length cur.c_strings in
      st.sr.strings <- Array.make (max 256 n) None;
      Array.blit cur.c_strings 0 st.sr.strings 0 n;
      st.sr.count <- n;
      if cur.c_skip > 0 then
        match reenter_frame st cur with Error _ as e -> e | Ok () -> Ok st
      else Ok st
    end
