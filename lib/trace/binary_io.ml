open Iocov_syscall

let magic = "IOCT\001"

(* --- varints --- *)

(* [lsr] makes the loop total even when [n]'s sign bit is set, so the
   full 63-bit pattern a zigzagged extreme offset produces round-trips *)
let write_varbits oc n =
  let rec go n =
    if n >= 0 && n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7F));
      go (n lsr 7)
    end
  in
  go n

let write_uvarint oc n =
  if n < 0 then invalid_arg "Binary_io.write_uvarint: negative";
  write_varbits oc n

(* branch-free zigzag: correct for the whole int range, including
   magnitudes ≥ 2^61 where [n lsl 1] alone would overflow the guard *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let write_svarint oc n = write_varbits oc (zigzag n)

exception Corrupt of string

let read_byte ic =
  match In_channel.input_byte ic with
  | Some b -> b
  | None -> raise (Corrupt "unexpected end of trace")

let read_uvarint ic =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint overflow");
    let b = read_byte ic in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_svarint ic = unzigzag (read_uvarint ic)

(* --- string table --- *)

type writer = {
  oc : out_channel;
  table : (string, int) Hashtbl.t;
  mutable next_index : int;
  mutable last_ts : int;
}

let write_string w s =
  match Hashtbl.find_opt w.table s with
  | Some index -> write_uvarint w.oc (index + 1)
  | None ->
    Hashtbl.add w.table s w.next_index;
    w.next_index <- w.next_index + 1;
    write_uvarint w.oc 0;
    write_uvarint w.oc (String.length s);
    output_string w.oc s

type reader = {
  ic : in_channel;
  mutable strings : string array;
  mutable count : int;
}

let read_string r =
  let tag = read_uvarint r.ic in
  if tag = 0 then begin
    let len = read_uvarint r.ic in
    if len > 1 lsl 20 then raise (Corrupt "string too long");
    let s = really_input_string r.ic len in
    if r.count = Array.length r.strings then begin
      let bigger = Array.make (max 16 (2 * r.count)) "" in
      Array.blit r.strings 0 bigger 0 r.count;
      r.strings <- bigger
    end;
    r.strings.(r.count) <- s;
    r.count <- r.count + 1;
    s
  end
  else begin
    let index = tag - 1 in
    if index >= r.count then raise (Corrupt "string reference out of range");
    r.strings.(index)
  end

(* --- enums --- *)

let variant_index =
  let table = Hashtbl.create 32 in
  List.iteri (fun i v -> Hashtbl.add table v i) Model.all_variants;
  fun v -> Hashtbl.find table v

let variant_of_index =
  let arr = Array.of_list Model.all_variants in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad variant index") else arr.(i)

let errno_index =
  let table = Hashtbl.create 64 in
  List.iteri (fun i e -> Hashtbl.add table e i) Errno.all;
  fun e -> Hashtbl.find table e

let errno_of_index =
  let arr = Array.of_list Errno.all in
  fun i -> if i < 0 || i >= Array.length arr then raise (Corrupt "bad errno index") else arr.(i)

(* --- calls --- *)

let write_target w = function
  | Model.Path p ->
    output_byte w.oc 0;
    write_string w p
  | Model.Fd fd ->
    output_byte w.oc 1;
    write_svarint w.oc fd

let read_target r =
  match read_byte r.ic with
  | 0 -> Model.Path (read_string r)
  | 1 -> Model.Fd (read_svarint r.ic)
  | _ -> raise (Corrupt "bad target tag")

let write_call w call =
  write_uvarint w.oc (variant_index (Model.variant_of_call call));
  match call with
  | Model.Open_call { path; flags; mode; _ } ->
    write_string w path;
    write_uvarint w.oc flags;
    write_uvarint w.oc mode
  | Model.Read_call { fd; count; offset; _ } | Model.Write_call { fd; count; offset; _ } ->
    write_svarint w.oc fd;
    write_uvarint w.oc count;
    (match offset with Some off -> write_svarint w.oc off | None -> ())
  | Model.Lseek_call { fd; offset; whence } ->
    write_svarint w.oc fd;
    write_svarint w.oc offset;
    output_byte w.oc (Whence.to_code whence)
  | Model.Truncate_call { target; length; _ } ->
    write_target w target;
    write_svarint w.oc length
  | Model.Mkdir_call { path; mode; _ } ->
    write_string w path;
    write_uvarint w.oc mode
  | Model.Chmod_call { target; mode; _ } ->
    write_target w target;
    write_uvarint w.oc mode
  | Model.Close_call { fd } -> write_svarint w.oc fd
  | Model.Chdir_call { target } -> write_target w target
  | Model.Setxattr_call { target; name; size; flags; _ } ->
    write_target w target;
    write_string w name;
    write_uvarint w.oc size;
    output_byte w.oc (Xattr_flag.to_code flags)
  | Model.Getxattr_call { target; name; size; _ } ->
    write_target w target;
    write_string w name;
    write_uvarint w.oc size

let read_call r =
  let variant = variant_of_index (read_uvarint r.ic) in
  match Model.base_of_variant variant with
  | Model.Open ->
    let path = read_string r in
    let flags = read_uvarint r.ic in
    let mode = read_uvarint r.ic in
    (* creat's flags are forced by the constructor; the stored flags are
       authoritative, so bypass the creat rewrite by reconstructing the
       record shape directly through open_ for non-creat variants *)
    Model.open_ ~variant ~flags ~mode path
  | Model.Read | Model.Write ->
    let fd = read_svarint r.ic in
    let count = read_uvarint r.ic in
    let offset =
      match variant with
      | Model.Sys_pread64 | Model.Sys_pwrite64 -> Some (read_svarint r.ic)
      | _ -> None
    in
    if Model.base_of_variant variant = Model.Read then Model.read ~variant ?offset ~fd ~count ()
    else Model.write ~variant ?offset ~fd ~count ()
  | Model.Lseek ->
    let fd = read_svarint r.ic in
    let offset = read_svarint r.ic in
    (match Whence.of_code (read_byte r.ic) with
     | Some whence -> Model.lseek ~fd ~offset ~whence
     | None -> raise (Corrupt "bad whence"))
  | Model.Truncate ->
    let target = read_target r in
    let length = read_svarint r.ic in
    Model.truncate ~variant ~target ~length ()
  | Model.Mkdir ->
    let path = read_string r in
    let mode = read_uvarint r.ic in
    Model.mkdir ~variant ~mode path
  | Model.Chmod ->
    let target = read_target r in
    let mode = read_uvarint r.ic in
    Model.chmod ~variant ~target ~mode ()
  | Model.Close -> Model.close (read_svarint r.ic)
  | Model.Chdir -> Model.chdir (read_target r)
  | Model.Setxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r.ic in
    (match Xattr_flag.of_code (read_byte r.ic) with
     | Some flags -> Model.setxattr ~variant ~flags ~target ~name ~size ()
     | None -> raise (Corrupt "bad xattr flag"))
  | Model.Getxattr ->
    let target = read_target r in
    let name = read_string r in
    let size = read_uvarint r.ic in
    Model.getxattr ~variant ~target ~name ~size ()

(* --- events --- *)

let writer oc =
  output_string oc magic;
  { oc; table = Hashtbl.create 256; next_index = 0; last_ts = 0 }

let write_event w (e : Event.t) =
  write_uvarint w.oc (max 0 (e.timestamp_ns - w.last_ts));
  w.last_ts <- e.timestamp_ns;
  write_uvarint w.oc e.pid;
  write_string w e.comm;
  (match e.payload with
   | Event.Tracked call ->
     output_byte w.oc 0;
     write_call w call
   | Event.Aux { name; detail } ->
     output_byte w.oc 1;
     write_string w name;
     write_string w detail);
  (match e.outcome with
   | Model.Ret n ->
     output_byte w.oc 0;
     write_svarint w.oc n
   | Model.Err errno ->
     output_byte w.oc 1;
     output_byte w.oc (errno_index errno));
  match e.path_hint with
  | Some hint ->
    output_byte w.oc 1;
    write_string w hint
  | None -> output_byte w.oc 0

let sink = write_event
let flush w = Stdlib.flush w.oc

(* [first] is the already-consumed first byte of the timestamp varint —
   the EOF probe that decides whether another record exists. *)
let read_event r ~seq ~last_ts ~first =
  let ts =
    last_ts
    +
    let rec go shift acc b =
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc (read_byte r.ic)
    in
    go 0 0 first
  in
  let pid = read_uvarint r.ic in
  let comm = read_string r in
  let payload =
    match read_byte r.ic with
    | 0 -> Event.Tracked (read_call r)
    | 1 ->
      let name = read_string r in
      let detail = read_string r in
      Event.Aux { name; detail }
    | _ -> raise (Corrupt "bad payload tag")
  in
  let outcome =
    match read_byte r.ic with
    | 0 -> Model.Ret (read_svarint r.ic)
    | 1 -> Model.Err (errno_of_index (read_byte r.ic))
    | _ -> raise (Corrupt "bad outcome tag")
  in
  let path_hint =
    match read_byte r.ic with
    | 0 -> None
    | 1 -> Some (read_string r)
    | _ -> raise (Corrupt "bad hint tag")
  in
  { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

(* --- streaming decode --- *)

(* The string table makes the decode inherently sequential, but it does
   not make it inherently materializing: a stream hands out events in
   bounded batches, so a multi-million-event trace is processed in
   O(batch) memory and the decoded batches can feed parallel analysis
   workers. *)
type stream = {
  sr : reader;
  mutable seq : int;
  mutable last_ts : int;
  mutable failed : bool;
}

let open_stream ic =
  match really_input_string ic (String.length magic) with
  | header when header = magic ->
    Ok { sr = { ic; strings = Array.make 256 ""; count = 0 }; seq = 1; last_ts = 0;
         failed = false }
  | _ -> Error "not a binary iocov trace (bad magic)"
  | exception End_of_file -> Error "not a binary iocov trace (bad magic)"

let read_batch st ~max =
  if max <= 0 then invalid_arg "Binary_io.read_batch: max must be positive";
  if st.failed then Error "reading past a decode error"
  else begin
    try
      let batch = ref [] in
      let n = ref 0 in
      let eof = ref false in
      while (not !eof) && !n < max do
        match In_channel.input_byte st.sr.ic with
        | None -> eof := true
        | Some first ->
          let event = read_event st.sr ~seq:st.seq ~last_ts:st.last_ts ~first in
          st.seq <- st.seq + 1;
          st.last_ts <- event.Event.timestamp_ns;
          batch := event :: !batch;
          incr n
      done;
      Ok (Array.of_list (List.rev !batch))
    with
    | Corrupt msg ->
      st.failed <- true;
      Error msg
    | End_of_file ->
      st.failed <- true;
      Error "truncated binary trace"
    | Invalid_argument msg ->
      st.failed <- true;
      Error ("corrupt record: " ^ msg)
  end

let fold_channel ic ~init ~f =
  match open_stream ic with
  | Error msg -> Error msg
  | Ok st ->
    let rec go acc =
      match read_batch st ~max:4096 with
      | Error msg -> Error msg
      | Ok batch when Array.length batch = 0 -> Ok acc
      | Ok batch -> go (Array.fold_left f acc batch)
    in
    go init

let read_channel ic =
  Result.map List.rev (fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc))

let is_binary_trace ic =
  let pos = In_channel.pos ic in
  let result =
    try
      let header = really_input_string ic (String.length magic) in
      header = magic
    with End_of_file -> false
  in
  In_channel.seek ic pos;
  result

