type payload =
  | Tracked of Iocov_syscall.Model.call
  | Aux of { name : string; detail : string }

type t = {
  seq : int;
  timestamp_ns : int;
  pid : int;
  comm : string;
  payload : payload;
  outcome : Iocov_syscall.Model.outcome;
  path_hint : string option;
}

let call t = match t.payload with Tracked c -> Some c | Aux _ -> None
let is_tracked t = match t.payload with Tracked _ -> true | Aux _ -> false

let base t =
  match t.payload with
  | Tracked c -> Some (Iocov_syscall.Model.base_of_call c)
  | Aux _ -> None

let iter_tracked events f =
  List.iter
    (fun t -> match t.payload with Tracked c -> f c t.outcome | Aux _ -> ())
    events
