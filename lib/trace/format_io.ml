open Iocov_syscall

let to_line (e : Event.t) =
  let call_part =
    match e.payload with
    | Event.Tracked call -> Model.call_to_string call
    | Event.Aux { name; detail } -> Printf.sprintf "!%s(%s)" name detail
  in
  let hint_part =
    match e.path_hint with
    | Some h -> Printf.sprintf " hint=%S" h
    | None -> ""
  in
  Printf.sprintf "[%d] pid=%d comm=%S %s -> %s%s" e.timestamp_ns e.pid e.comm call_part
    (Model.outcome_to_string e.outcome)
    hint_part

let ( let* ) = Result.bind

(* Parse the fixed prefix "[ts] pid=N comm=S " and return the rest. *)
let parse_prefix line =
  try
    Scanf.sscanf line "[%d] pid=%d comm=%S %n" (fun ts pid comm n ->
        Ok (ts, pid, comm, String.sub line n (String.length line - n)))
  with Scanf.Scan_failure msg | Failure msg -> Error ("bad record prefix: " ^ msg)
     | End_of_file -> Error "truncated record"

(* The payload part ends at the last " -> "; everything after is the
   outcome and optional hint. *)
let split_arrow s =
  let marker = " -> " in
  let rec find_last from acc =
    match String.index_from_opt s from '-' with
    | None -> acc
    | Some i ->
      if
        i >= 1 && i + 2 < String.length s
        && String.sub s (i - 1) (String.length marker) = marker
      then find_last (i + 1) (Some (i - 1))
      else find_last (i + 1) acc
  in
  match find_last 0 None with
  | None -> Error "missing \" -> \" separator"
  | Some i ->
    Ok
      ( String.sub s 0 i,
        String.sub s (i + String.length marker) (String.length s - i - String.length marker)
      )

let parse_outcome_and_hint s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None ->
    let* outcome = Model.outcome_of_string s in
    Ok (outcome, None)
  | Some i ->
    let outcome_s = String.sub s 0 i in
    let rest = String.trim (String.sub s i (String.length s - i)) in
    let* outcome = Model.outcome_of_string outcome_s in
    if String.length rest >= 6 && String.sub rest 0 5 = "hint=" then begin
      let quoted = String.sub rest 5 (String.length rest - 5) in
      try Ok (outcome, Some (Scanf.sscanf quoted "%S%!" (fun x -> x)))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> Error "malformed hint"
    end
    else Error (Printf.sprintf "unexpected trailing %S" rest)

let parse_payload s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '!' then begin
    let body = String.sub s 1 (String.length s - 1) in
    match String.index_opt body '(' with
    | None -> Error "malformed aux record"
    | Some i ->
      if body.[String.length body - 1] <> ')' then Error "malformed aux record"
      else
        Ok
          (Event.Aux
             {
               name = String.sub body 0 i;
               detail = String.sub body (i + 1) (String.length body - i - 2);
             })
  end
  else
    let* call = Model.call_of_string s in
    Ok (Event.Tracked call)

let of_line_reference ?(seq = 0) line =
  let* ts, pid, comm, rest = parse_prefix line in
  let* payload_s, outcome_s = split_arrow rest in
  let* payload = parse_payload payload_s in
  let* outcome, path_hint = parse_outcome_and_hint outcome_s in
  Ok { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

(* --- the fast scanner ---

   [to_line] emits one fixed shape per record; the scanner above this
   comment block parses exactly that shape in a single left-to-right
   pass — no [Scanf], no regex, no intermediate field list.  Anything
   that deviates from the canonical emission (reordered fields, extra
   whitespace, exotic escapes) raises [Bail] and the line is re-parsed
   by the reference pipeline, which also produces the error messages.
   The one soundness subtlety: the reference splits payload from
   outcome at the {e last} [" -> "], so a hint whose text contains
   [" -> "] parses differently (the reference rejects it).  The scanner
   bails on such hints to keep [of_line] extensionally equal to
   [of_line_reference]. *)

exception Bail

type cursor = { cs : string; mutable cp : int }

let bail () = raise Bail

let peek c = if c.cp < String.length c.cs then String.unsafe_get c.cs c.cp else '\000'

let chr c ch =
  if c.cp < String.length c.cs && String.unsafe_get c.cs c.cp = ch then c.cp <- c.cp + 1
  else bail ()

let lit c l =
  let n = String.length l in
  if c.cp + n > String.length c.cs then bail ();
  for i = 0 to n - 1 do
    if String.unsafe_get c.cs (c.cp + i) <> String.unsafe_get l i then bail ()
  done;
  c.cp <- c.cp + n

(* Decimal integer, at most 18 digits so the accumulator cannot wrap
   (the reference's [int_of_string] would range-check; canonical lines
   never get near either limit). *)
let int_ c =
  let len = String.length c.cs in
  let neg = c.cp < len && String.unsafe_get c.cs c.cp = '-' in
  if neg then c.cp <- c.cp + 1;
  let start = c.cp in
  let v = ref 0 in
  while
    c.cp < len
    &&
    let d = String.unsafe_get c.cs c.cp in
    d >= '0' && d <= '9'
  do
    v := (!v * 10) + (Char.code (String.unsafe_get c.cs c.cp) - 48);
    c.cp <- c.cp + 1
  done;
  if c.cp = start || c.cp - start > 18 then bail ();
  if neg then - !v else !v

let octal c =
  lit c "0o";
  let len = String.length c.cs in
  let start = c.cp in
  let v = ref 0 in
  while
    c.cp < len
    &&
    let d = String.unsafe_get c.cs c.cp in
    d >= '0' && d <= '7'
  do
    v := (!v * 8) + (Char.code (String.unsafe_get c.cs c.cp) - 48);
    c.cp <- c.cp + 1
  done;
  if c.cp = start || c.cp - start > 20 then bail ();
  !v

(* An OCaml [%S] literal.  The common case — no escapes — is a bare
   substring copy; escaped strings decode through a buffer.  Only the
   escapes [%S] actually emits are handled (backslash, quote, n/t/r/b,
   and \ddd); anything else bails. *)
let quoted c =
  chr c '"';
  let s = c.cs in
  let len = String.length s in
  let start = c.cp in
  let i = ref c.cp in
  while !i < len && String.unsafe_get s !i <> '"' && String.unsafe_get s !i <> '\\' do
    incr i
  done;
  if !i >= len then bail ();
  if String.unsafe_get s !i = '"' then begin
    c.cp <- !i + 1;
    String.sub s start (!i - start)
  end
  else begin
    let buf = Buffer.create (len - start) in
    Buffer.add_substring buf s start (!i - start);
    let j = ref !i in
    let fin = ref (-1) in
    while !fin < 0 do
      if !j >= len then bail ();
      match String.unsafe_get s !j with
      | '"' -> fin := !j
      | '\\' ->
        if !j + 1 >= len then bail ();
        incr j;
        (match String.unsafe_get s !j with
         | '\\' ->
           Buffer.add_char buf '\\';
           incr j
         | '"' ->
           Buffer.add_char buf '"';
           incr j
         | '\'' ->
           Buffer.add_char buf '\'';
           incr j
         | 'n' ->
           Buffer.add_char buf '\n';
           incr j
         | 't' ->
           Buffer.add_char buf '\t';
           incr j
         | 'r' ->
           Buffer.add_char buf '\r';
           incr j
         | 'b' ->
           Buffer.add_char buf '\b';
           incr j
         | '0' .. '9' as d1 ->
           if !j + 2 >= len then bail ();
           let d2 = String.unsafe_get s (!j + 1) and d3 = String.unsafe_get s (!j + 2) in
           if not (d2 >= '0' && d2 <= '9' && d3 >= '0' && d3 <= '9') then bail ();
           let code =
             ((Char.code d1 - 48) * 100) + ((Char.code d2 - 48) * 10) + (Char.code d3 - 48)
           in
           if code > 255 then bail ();
           Buffer.add_char buf (Char.chr code);
           j := !j + 3
         | _ -> bail ())
      | ch ->
        Buffer.add_char buf ch;
        incr j
    done;
    c.cp <- !fin + 1;
    Buffer.contents buf
  end

let is_enum_char ch = (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') || ch = '_' || ch = '|'

let enum_token c =
  let len = String.length c.cs in
  let start = c.cp in
  while c.cp < len && is_enum_char (String.unsafe_get c.cs c.cp) do
    c.cp <- c.cp + 1
  done;
  String.sub c.cs start (c.cp - start)

(* Name lookups off the hot path's per-record [List.find_opt]:
   variants and errnos hash, flag combinations memoize (a trace uses a
   handful of distinct combinations, not the power set). *)
let variant_tbl =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter (fun v -> Hashtbl.replace h (Model.variant_name v) v) Model.all_variants;
     h)

let errno_tbl =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter (fun e -> Hashtbl.replace h (Errno.to_string e) e) Errno.all;
     h)

let flags_tbl : (string, Open_flags.t) Hashtbl.t = Hashtbl.create 16

let scan_flags c =
  let tok = enum_token c in
  match Hashtbl.find_opt flags_tbl tok with
  | Some f -> f
  | None ->
    (match Open_flags.of_string tok with
     | Some f ->
       Hashtbl.replace flags_tbl tok f;
       f
     | None -> bail ())

let scan_name c =
  let len = String.length c.cs in
  let start = c.cp in
  while
    c.cp < len
    &&
    let ch = String.unsafe_get c.cs c.cp in
    (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_'
  do
    c.cp <- c.cp + 1
  done;
  String.sub c.cs start (c.cp - start)

let scan_target c =
  if peek c = 'p' then begin
    lit c "path=";
    Model.Path (quoted c)
  end
  else begin
    lit c "fd=";
    Model.Fd (int_ c)
  end

(* One branch per base, fields in [Model.call_to_string] order. *)
let scan_call c variant =
  let call =
    match Model.base_of_variant variant with
    | Model.Open ->
      lit c "path=";
      let path = quoted c in
      lit c ", flags=";
      let flags = scan_flags c in
      lit c ", mode=";
      let mode = octal c in
      Model.Open_call { variant; path; flags; mode }
    | Model.Read | Model.Write ->
      lit c "fd=";
      let fd = int_ c in
      lit c ", count=";
      let count = int_ c in
      let offset =
        if peek c = ',' then begin
          lit c ", offset=";
          Some (int_ c)
        end
        else None
      in
      if Model.base_of_variant variant = Model.Read then Model.read ~variant ?offset ~fd ~count ()
      else Model.write ~variant ?offset ~fd ~count ()
    | Model.Lseek ->
      lit c "fd=";
      let fd = int_ c in
      lit c ", offset=";
      let offset = int_ c in
      lit c ", whence=";
      let whence = match Whence.of_string (enum_token c) with Some w -> w | None -> bail () in
      Model.lseek ~fd ~offset ~whence
    | Model.Truncate ->
      let target = scan_target c in
      lit c ", length=";
      let length = int_ c in
      Model.truncate ~variant ~target ~length ()
    | Model.Mkdir ->
      lit c "path=";
      let path = quoted c in
      lit c ", mode=";
      let mode = octal c in
      Model.Mkdir_call { variant; path; mode }
    | Model.Chmod ->
      let target = scan_target c in
      lit c ", mode=";
      let mode = octal c in
      Model.chmod ~variant ~target ~mode ()
    | Model.Close ->
      lit c "fd=";
      let fd = int_ c in
      Model.close fd
    | Model.Chdir -> Model.chdir (scan_target c)
    | Model.Setxattr ->
      let target = scan_target c in
      lit c ", name=";
      let name = quoted c in
      lit c ", size=";
      let size = int_ c in
      lit c ", xflags=";
      let flags = match Xattr_flag.of_string (enum_token c) with Some f -> f | None -> bail () in
      Model.setxattr ~variant ~flags ~target ~name ~size ()
    | Model.Getxattr ->
      let target = scan_target c in
      lit c ", name=";
      let name = quoted c in
      lit c ", size=";
      let size = int_ c in
      Model.getxattr ~variant ~target ~name ~size ()
  in
  chr c ')';
  call

(* Aux payload: "!name(detail)".  The detail is raw text, so its right
   edge is the first [") -> "]; if the line then fails to finish as a
   canonical outcome, the scanner bails and the reference's
   last-arrow split takes over. *)
let scan_aux c =
  chr c '!';
  let s = c.cs in
  match String.index_from_opt s c.cp '(' with
  | None -> bail ()
  | Some lp ->
    let name = String.sub s c.cp (lp - c.cp) in
    let len = String.length s in
    let rec find from =
      match String.index_from_opt s from ')' with
      | None -> bail ()
      | Some rp ->
        if
          rp + 5 <= len
          && String.unsafe_get s (rp + 1) = ' '
          && String.unsafe_get s (rp + 2) = '-'
          && String.unsafe_get s (rp + 3) = '>'
          && String.unsafe_get s (rp + 4) = ' '
        then rp
        else find (rp + 1)
    in
    let rp = find (lp + 1) in
    c.cp <- rp + 5;
    Event.Aux { name; detail = String.sub s (lp + 1) (rp - lp - 1) }

let contains_arrow s =
  let n = String.length s in
  let rec go i =
    i + 4 <= n
    && ((s.[i] = ' ' && s.[i + 1] = '-' && s.[i + 2] = '>' && s.[i + 3] = ' ') || go (i + 1))
  in
  go 0

let of_line_fast ~seq line =
  let c = { cs = line; cp = 0 } in
  chr c '[';
  let ts = int_ c in
  lit c "] pid=";
  let pid = int_ c in
  lit c " comm=";
  let comm = quoted c in
  chr c ' ';
  let payload =
    if peek c = '!' then scan_aux c
    else begin
      let name = scan_name c in
      let variant =
        match Hashtbl.find_opt (Lazy.force variant_tbl) name with
        | Some v -> v
        | None -> bail ()
      in
      chr c '(';
      let call = scan_call c variant in
      lit c " -> ";
      Event.Tracked call
    end
  in
  let outcome =
    if peek c = 'o' then begin
      lit c "ok:";
      Model.Ret (int_ c)
    end
    else begin
      lit c "err:";
      match Hashtbl.find_opt (Lazy.force errno_tbl) (enum_token c) with
      | Some e -> Model.Err e
      | None -> bail ()
    end
  in
  let path_hint =
    if c.cp = String.length c.cs then None
    else begin
      lit c " hint=";
      let h = quoted c in
      if c.cp <> String.length c.cs then bail ();
      if contains_arrow h then bail ();
      Some h
    end
  in
  { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

let of_line ?(seq = 0) line =
  match of_line_fast ~seq line with
  | e -> Ok e
  | exception Bail -> of_line_reference ~seq line
  (* Smart constructors range-check their arguments; the reference
     wraps that check into its error result, so re-parse there. *)
  | exception Invalid_argument _ -> of_line_reference ~seq line

let write_channel oc events =
  List.iter (fun e -> output_string oc (to_line e ^ "\n")) events;
  flush oc

let sink_channel oc e = output_string oc (to_line e ^ "\n")

(* --- streaming reads --- *)

(* Text records are self-contained, so the reader's only sequential job
   is line numbering; the parse itself can happen anywhere — the
   parallel pipeline ships raw line batches to worker shards and parses
   there. *)
type stream = { s_ic : in_channel; mutable next_line : int }

let open_stream ic = { s_ic = ic; next_line = 1 }

let read_raw_batch st ~max =
  if max <= 0 then invalid_arg "Format_io.read_raw_batch: max must be positive";
  let batch = ref [] in
  let n = ref 0 in
  let eof = ref false in
  while (not !eof) && !n < max do
    match In_channel.input_line st.s_ic with
    | None -> eof := true
    | Some line ->
      let lineno = st.next_line in
      st.next_line <- lineno + 1;
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then begin
        batch := (lineno, trimmed) :: !batch;
        incr n
      end
  done;
  Array.of_list (List.rev !batch)

let fold_channel ic ~init ~f =
  let st = open_stream ic in
  let rec go acc =
    let batch = read_raw_batch st ~max:4096 in
    if Array.length batch = 0 then Ok acc
    else begin
      let rec consume acc i =
        if i = Array.length batch then go acc
        else begin
          let lineno, line = batch.(i) in
          match of_line ~seq:lineno line with
          | Ok e -> consume (f acc e) (i + 1)
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
      in
      consume acc 0
    end
  in
  go init

let read_channel ic =
  let* events = fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc) in
  Ok (List.rev events)
