open Iocov_syscall

let to_line (e : Event.t) =
  let call_part =
    match e.payload with
    | Event.Tracked call -> Model.call_to_string call
    | Event.Aux { name; detail } -> Printf.sprintf "!%s(%s)" name detail
  in
  let hint_part =
    match e.path_hint with
    | Some h -> Printf.sprintf " hint=%S" h
    | None -> ""
  in
  Printf.sprintf "[%d] pid=%d comm=%S %s -> %s%s" e.timestamp_ns e.pid e.comm call_part
    (Model.outcome_to_string e.outcome)
    hint_part

let ( let* ) = Result.bind

(* Parse the fixed prefix "[ts] pid=N comm=S " and return the rest. *)
let parse_prefix line =
  try
    Scanf.sscanf line "[%d] pid=%d comm=%S %n" (fun ts pid comm n ->
        Ok (ts, pid, comm, String.sub line n (String.length line - n)))
  with Scanf.Scan_failure msg | Failure msg -> Error ("bad record prefix: " ^ msg)
     | End_of_file -> Error "truncated record"

(* The payload part ends at the last " -> "; everything after is the
   outcome and optional hint. *)
let split_arrow s =
  let marker = " -> " in
  let rec find_last from acc =
    match String.index_from_opt s from '-' with
    | None -> acc
    | Some i ->
      if
        i >= 1 && i + 2 < String.length s
        && String.sub s (i - 1) (String.length marker) = marker
      then find_last (i + 1) (Some (i - 1))
      else find_last (i + 1) acc
  in
  match find_last 0 None with
  | None -> Error "missing \" -> \" separator"
  | Some i ->
    Ok
      ( String.sub s 0 i,
        String.sub s (i + String.length marker) (String.length s - i - String.length marker)
      )

let parse_outcome_and_hint s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None ->
    let* outcome = Model.outcome_of_string s in
    Ok (outcome, None)
  | Some i ->
    let outcome_s = String.sub s 0 i in
    let rest = String.trim (String.sub s i (String.length s - i)) in
    let* outcome = Model.outcome_of_string outcome_s in
    if String.length rest >= 6 && String.sub rest 0 5 = "hint=" then begin
      let quoted = String.sub rest 5 (String.length rest - 5) in
      try Ok (outcome, Some (Scanf.sscanf quoted "%S%!" (fun x -> x)))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> Error "malformed hint"
    end
    else Error (Printf.sprintf "unexpected trailing %S" rest)

let parse_payload s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '!' then begin
    let body = String.sub s 1 (String.length s - 1) in
    match String.index_opt body '(' with
    | None -> Error "malformed aux record"
    | Some i ->
      if body.[String.length body - 1] <> ')' then Error "malformed aux record"
      else
        Ok
          (Event.Aux
             {
               name = String.sub body 0 i;
               detail = String.sub body (i + 1) (String.length body - i - 2);
             })
  end
  else
    let* call = Model.call_of_string s in
    Ok (Event.Tracked call)

let of_line ?(seq = 0) line =
  let* ts, pid, comm, rest = parse_prefix line in
  let* payload_s, outcome_s = split_arrow rest in
  let* payload = parse_payload payload_s in
  let* outcome, path_hint = parse_outcome_and_hint outcome_s in
  Ok { Event.seq; timestamp_ns = ts; pid; comm; payload; outcome; path_hint }

let write_channel oc events =
  List.iter (fun e -> output_string oc (to_line e ^ "\n")) events;
  flush oc

let sink_channel oc e = output_string oc (to_line e ^ "\n")

(* --- streaming reads --- *)

(* Text records are self-contained, so the reader's only sequential job
   is line numbering; the parse itself can happen anywhere — the
   parallel pipeline ships raw line batches to worker shards and parses
   there. *)
type stream = { s_ic : in_channel; mutable next_line : int }

let open_stream ic = { s_ic = ic; next_line = 1 }

let read_raw_batch st ~max =
  if max <= 0 then invalid_arg "Format_io.read_raw_batch: max must be positive";
  let batch = ref [] in
  let n = ref 0 in
  let eof = ref false in
  while (not !eof) && !n < max do
    match In_channel.input_line st.s_ic with
    | None -> eof := true
    | Some line ->
      let lineno = st.next_line in
      st.next_line <- lineno + 1;
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then begin
        batch := (lineno, trimmed) :: !batch;
        incr n
      end
  done;
  Array.of_list (List.rev !batch)

let fold_channel ic ~init ~f =
  let st = open_stream ic in
  let rec go acc =
    let batch = read_raw_batch st ~max:4096 in
    if Array.length batch = 0 then Ok acc
    else begin
      let rec consume acc i =
        if i = Array.length batch then go acc
        else begin
          let lineno, line = batch.(i) in
          match of_line ~seq:lineno line with
          | Ok e -> consume (f acc e) (i + 1)
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
      in
      consume acc 0
    end
  in
  go init

let read_channel ic =
  let* events = fold_channel ic ~init:[] ~f:(fun acc e -> e :: acc) in
  Ok (List.rev events)
