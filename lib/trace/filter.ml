module Engine = Iocov_regex.Engine
module Metrics = Iocov_obs.Metrics

(* Filter decisions, process-wide.  "no_hint" records cannot be
   attributed to any mount; "no_match" ones belong to other paths. *)
let m_result result =
  Metrics.counter Metrics.default "iocov_filter_events_total"
    ~labels:[ ("result", result) ]
    ~help:"Mount-point filter decisions."

let m_kept = m_result "kept"
let m_dropped_no_hint = m_result "dropped_no_hint"
let m_dropped_no_match = m_result "dropped_no_match"

(* Compiled patterns are immutable (see {!Iocov_regex.Engine}), so a
   filter is shareable across domains: the parallel pipeline compiles
   once and every worker shard matches against the same value. *)
type t = { keep : Engine.t array }

let create ~patterns =
  let rec go acc = function
    | [] -> Ok { keep = Array.of_list (List.rev acc) }
    | p :: rest ->
      (match Engine.compile p with
       | Ok c -> go (c :: acc) rest
       | Error msg -> Error (Printf.sprintf "pattern %S: %s" p msg))
  in
  go [] patterns

let create_exn ~patterns =
  match create ~patterns with
  | Ok t -> t
  | Error msg -> invalid_arg ("Filter.create_exn: " ^ msg)

(* Escape regex metacharacters so a literal mount point can be embedded in
   a pattern. *)
let escape_literal s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      (match c with
       | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$' | '\\' ->
         Buffer.add_char buf '\\'
       | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let mount_point mnt =
  let mnt = if String.length mnt > 1 && mnt.[String.length mnt - 1] = '/' then
      String.sub mnt 0 (String.length mnt - 1)
    else mnt
  in
  create_exn ~patterns:[ Printf.sprintf "^%s(/|$)" (escape_literal mnt) ]

(* The one pattern traversal, entered only for records that carry a
   hint — the no-hint drop never touches the pattern array. *)
let matches_hint t hint = Array.exists (fun c -> Engine.search c hint) t.keep

(* The metered decision: classify, count, answer. *)
let decide t (e : Event.t) =
  match e.path_hint with
  | None ->
    Metrics.Counter.incr m_dropped_no_hint;
    false
  | Some hint ->
    if matches_hint t hint then begin
      Metrics.Counter.incr m_kept;
      true
    end
    else begin
      Metrics.Counter.incr m_dropped_no_match;
      false
    end

(* [keeps] stays a pure query: callers probing a record (reports,
   ad-hoc analysis) must not distort the pipeline's drop counters. *)
let keeps t (e : Event.t) =
  match e.path_hint with
  | None -> false
  | Some hint -> matches_hint t hint

type stats = { kept : int; dropped : int }

let fold t ~init ~f events =
  let acc, kept, dropped =
    List.fold_left
      (fun (acc, kept, dropped) e ->
        if decide t e then (f acc e, kept + 1, dropped) else (acc, kept, dropped + 1))
      (init, 0, 0) events
  in
  (acc, { kept; dropped })

(* The chunk pipeline's batched decision: same classification and the
   same counters as [decide], but metered with three adds per batch
   instead of one atomic increment per record — worker domains stay off
   each other's cache lines. *)
let keep_all t events =
  let kept = ref 0 and no_hint = ref 0 and no_match = ref 0 in
  let keep_one (e : Event.t) =
    match e.path_hint with
    | None ->
      incr no_hint;
      false
    | Some hint ->
      if matches_hint t hint then begin
        incr kept;
        true
      end
      else begin
        incr no_match;
        false
      end
  in
  let out = List.filter keep_one events in
  if !kept > 0 then Metrics.Counter.add m_kept !kept;
  if !no_hint > 0 then Metrics.Counter.add m_dropped_no_hint !no_hint;
  if !no_match > 0 then Metrics.Counter.add m_dropped_no_match !no_match;
  out

let sink t k e = if decide t e then k e

(* The fused decoder classifies hints itself (it never builds events),
   so it borrows the classification and reports the batched counts
   here — same counters, same totals as [keep_all]. *)
let meter ~kept ~no_hint ~no_match =
  if kept > 0 then Metrics.Counter.add m_kept kept;
  if no_hint > 0 then Metrics.Counter.add m_dropped_no_hint no_hint;
  if no_match > 0 then Metrics.Counter.add m_dropped_no_match no_match
