(** Text serialization of trace records.

    One record per line, LTTng-babeltrace-flavoured:

    {v
    [1622] pid=1000 comm="xfstests" open(path="/mnt/test/a", flags=O_RDONLY, mode=0o0) -> ok:3 hint="/mnt/test/a"
    [2433] pid=1000 comm="xfstests" !fsync(fd=3) -> ok:0 hint="/mnt/test/a"
    v}

    [!]-prefixed names are untracked (auxiliary) operations.  The format
    round-trips: [of_line (to_line e)] reproduces [e] up to the [seq]
    field, which is assigned by line position when reading a file. *)

val to_line : Event.t -> string

val of_line : ?seq:int -> string -> (Event.t, string) result
(** [seq] defaults to 0; readers pass the line number.

    Parses with a single-pass scanner over the canonical [to_line]
    shape and falls back to {!of_line_reference} on any deviation, so
    accepted inputs, results, and error messages are those of the
    reference parser. *)

val of_line_reference : ?seq:int -> string -> (Event.t, string) result
(** The original [Scanf]-based parser, kept as the differential oracle
    for the fast scanner ([of_line] must agree with it on every
    input) and as the fallback for non-canonical lines. *)

val write_channel : out_channel -> Event.t list -> unit
(** One line per event, flushed. *)

val sink_channel : out_channel -> Event.t -> unit
(** A tracer sink that streams records to a channel. *)

val read_channel : in_channel -> (Event.t list, string) result
(** Reads to EOF; fails with a located message on the first bad line.
    Blank lines and [#]-comment lines are skipped. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> ('a, string) result
(** Streaming fold over records — the analyzer's entry point for large
    traces (never materializes the list). *)

(** {2 Streaming reads}

    Text records are self-contained, so only line numbering is
    sequential: a {!stream} hands out raw line batches in O(batch)
    memory, and the parse ({!of_line}) can run on any domain — the
    parallel pipeline parses on its worker shards. *)

type stream

val open_stream : in_channel -> stream

val read_raw_batch : stream -> max:int -> (int * string) array
(** Up to [max] [(line_number, line)] pairs ([max > 0]), blank and
    [#]-comment lines already skipped (they still advance the line
    number); an empty array means EOF. *)
