(* The crash-consistency scenario engine (DESIGN.md §17).

   A scenario runs against a journal-attached VFS; the ordered
   persistence log it leaves behind is the whole input to crash
   simulation.  Bounded enumeration (à la B3's reordering bound)
   produces every crash state reachable under the configured journal
   mode: a crash point in the log, a prefix of the metadata sequence,
   barrier- and window-forced data, free choice over the in-window
   data, and torn tails of the last unpersisted write.  Each state is
   materialized by replaying its surviving records onto a fresh file
   system — journal recovery — and every file the workload touched is
   classified into one post-crash outcome cell.

   Two independent walkers keep the enumerator honest: [valid] is a
   from-the-definition predicate over (crash point, persisted set)
   pairs, and [brute_force_states] filters the full power set with it —
   on small logs the bounded enumerator must produce exactly the same
   state sets (property-tested). *)

open Iocov_syscall
open Iocov_vfs
module Crc32 = Iocov_util.Crc32
module Partition = Iocov_core.Partition

let crash_mode_of_journal = function
  | Config.Writeback -> Partition.CM_writeback
  | Config.Ordered -> Partition.CM_ordered
  | Config.Journaled -> Partition.CM_journaled

(* --- scenarios --- *)

type step =
  | Mkdir of string
  | Creat of string
  | Write of string * int * int  (* path, offset, length *)
  | Append of string * int
  | Truncate of string * int
  | Chmod of string * int
  | Setxattr of string * string * int
  | Rename of string * string
  | Link of string * string      (* existing, new path *)
  | Symlink of string * string   (* target, link path *)
  | Unlink of string
  | Rmdir of string
  | Fsync of string
  | Fdatasync of string
  | Sync

type scenario = {
  sc_name : string;
  sc_mount : string;
  sc_uid : (int * int) option;
      (* run the workload under these credentials (the mount point is
         still prepared as root, mode 0o777) *)
  sc_setup : step list;  (* fully durable before the crash window opens *)
  sc_body : step list;   (* the steps crash states are drawn from *)
}

type ops = {
  op_exec : Model.call -> Model.outcome;
  op_exec_aux : Fs.aux -> (int, Errno.t) result;
}

let fs_ops fs = { op_exec = Fs.exec fs; op_exec_aux = Fs.exec_aux fs }

let with_fd ops ~flags ?(mode = 0o644) path f =
  match ops.op_exec (Model.open_ ~mode ~flags:(Open_flags.of_flags flags) path) with
  | Model.Ret fd ->
    f fd;
    ignore (ops.op_exec (Model.close fd))
  | Model.Err _ -> ()

let run_step ops step =
  let open Open_flags in
  match step with
  | Mkdir path -> ignore (ops.op_exec (Model.mkdir ~mode:0o755 path))
  | Creat path -> with_fd ops ~flags:[ O_WRONLY; O_CREAT; O_TRUNC ] path (fun _ -> ())
  | Write (path, offset, count) ->
    with_fd ops ~flags:[ O_WRONLY; O_CREAT ] path (fun fd ->
        ignore
          (ops.op_exec (Model.write ~variant:Model.Sys_pwrite64 ~offset ~fd ~count ())))
  | Append (path, count) ->
    with_fd ops ~flags:[ O_WRONLY; O_CREAT; O_APPEND ] path (fun fd ->
        ignore (ops.op_exec (Model.write ~fd ~count ())))
  | Truncate (path, length) ->
    ignore (ops.op_exec (Model.truncate ~target:(Model.Path path) ~length ()))
  | Chmod (path, mode) ->
    ignore (ops.op_exec (Model.chmod ~target:(Model.Path path) ~mode ()))
  | Setxattr (path, name, size) ->
    ignore
      (ops.op_exec
         (Model.setxattr ~target:(Model.Path path) ~name ~size
            ~flags:Xattr_flag.XATTR_ANY ()))
  | Rename (old_path, new_path) -> ignore (ops.op_exec_aux (Fs.Rename (old_path, new_path)))
  | Link (existing, new_path) -> ignore (ops.op_exec_aux (Fs.Link (existing, new_path)))
  | Symlink (target, link_path) -> ignore (ops.op_exec_aux (Fs.Symlink (target, link_path)))
  | Unlink path -> ignore (ops.op_exec_aux (Fs.Unlink path))
  | Rmdir path -> ignore (ops.op_exec_aux (Fs.Rmdir path))
  | Fsync path ->
    with_fd ops ~flags:[ O_RDONLY ] path (fun fd -> ignore (ops.op_exec_aux (Fs.Fsync fd)))
  | Fdatasync path ->
    with_fd ops ~flags:[ O_RDONLY ] path (fun fd ->
        ignore (ops.op_exec_aux (Fs.Fdatasync fd)))
  | Sync -> ignore (ops.op_exec_aux Fs.Sync)

let step_paths = function
  | Mkdir p | Creat p | Write (p, _, _) | Append (p, _) | Truncate (p, _)
  | Chmod (p, _) | Setxattr (p, _, _) | Unlink p | Rmdir p | Fsync p | Fdatasync p ->
    [ p ]
  | Rename (a, b) | Link (a, b) | Symlink (a, b) -> [ a; b ]
  | Sync -> []

(* --- workload-visible file versions --- *)

type observation =
  | Absent
  | Reg of { size : int; checksum : int }
  | Dir
  | Other

let equal_observation a b =
  match (a, b) with
  | Absent, Absent | Dir, Dir | Other, Other -> true
  | Reg a, Reg b -> a.size = b.size && a.checksum = b.checksum
  | _ -> false

let observe fs path =
  match Fs.lstat fs path with
  | Error _ -> Absent
  | Ok st ->
    (match st.Fs.st_kind with
     | `Reg ->
       let checksum = match Fs.checksum fs path with Ok c -> c | Error _ -> 0 in
       Reg { size = st.Fs.st_size; checksum }
     | `Dir -> Dir
     | `Symlink | `Fifo | `Device -> Other)

(* --- executing a scenario --- *)

type run = {
  run_scenario : scenario;
  run_config : Config.t;
  run_records : Journal.record array;
  run_b0 : int;  (* records [0, b0) are the durable pre-crash baseline *)
  run_history : (string * observation list) list;
      (* per touched path, oldest first; the last entry is the final
         (pre-crash) version *)
}

let execute ?make_ops ~config scenario =
  let fs = Fs.create ~config () in
  let journal = Journal.create () in
  Fs.set_journal fs (Some journal);
  let ops = match make_ops with Some f -> f fs | None -> fs_ops fs in
  (* mount preparation and setup are the durable baseline: a real crash
     test formats and mounts before the workload of interest runs *)
  let components =
    List.filter (fun c -> c <> "") (String.split_on_char '/' scenario.sc_mount)
  in
  ignore
    (List.fold_left
       (fun prefix comp ->
         let dir = prefix ^ "/" ^ comp in
         ignore (ops.op_exec (Model.mkdir ~mode:0o777 dir));
         dir)
       "" components);
  (match scenario.sc_uid with
   | Some (uid, gid) -> Fs.set_credentials fs ~uid ~gid
   | None -> ());
  List.iter (run_step ops) scenario.sc_setup;
  ignore (ops.op_exec_aux Fs.Sync);
  let b0 = Journal.length journal in
  let touched =
    List.sort_uniq String.compare
      (List.concat_map step_paths (scenario.sc_setup @ scenario.sc_body))
  in
  let history = Hashtbl.create 16 in
  let snap () =
    List.iter
      (fun path ->
        let prev = try Hashtbl.find history path with Not_found -> [] in
        Hashtbl.replace history path (observe fs path :: prev))
      touched
  in
  snap ();
  List.iter
    (fun step ->
      run_step ops step;
      snap ())
    scenario.sc_body;
  {
    run_scenario = scenario;
    run_config = config;
    run_records = Journal.records journal;
    run_b0 = b0;
    run_history = List.map (fun p -> (p, List.rev (Hashtbl.find history p))) touched;
  }

(* --- crash-state enumeration --- *)

(* A persisted record: its journal position, and for torn tails the
   shortened length the partial block writeback exposed. *)
type state = {
  st_crash_point : int;
  st_persisted : (int * int option) list;  (* ascending positions *)
}

let state_positions st = List.map fst st.st_persisted

let is_meta records p = Journal.classify records.(p) = Journal.Metadata
let is_barrier records p = Journal.classify records.(p) = Journal.Barrier_record

let data_ino records p =
  match records.(p) with Journal.Data { ino; _ } -> Some ino | _ -> None

(* Number of metadata records in [b0, p). *)
let meta_prefix_counts records ~b0 =
  let n = Array.length records in
  let m = Array.make (n + 1) 0 in
  for p = b0 to n - 1 do
    m.(p + 1) <- m.(p) + (if is_meta records p then 1 else 0)
  done;
  m

(* Does barrier [b] force data record [p] (p < b) to be durable under
   [mode]?  fsync covers its inode (and, in ordered mode, every prior
   data block — the commit that makes the metadata durable drags the
   data it references along); fdatasync covers only its inode's data;
   sync covers everything.  The [Fsync_skips_data] fault disables all
   of it — that is the bug the durability oracle exists to catch. *)
let barrier_forces_data ~mode ~fsync_skips_data records ~p ~b =
  (not fsync_skips_data)
  &&
  match records.(b) with
  | Journal.Barrier { scope; data_only } ->
    let same_ino =
      match (scope, data_ino records p) with
      | Journal.All, _ -> true
      | Journal.Ino x, Some y -> x = y
      | Journal.Ino _, None -> false
    in
    if data_only then same_ino
    else (match (mode : Config.journal_mode) with
          | Config.Ordered -> true
          | Config.Writeback | Config.Journaled -> same_ino)
  | _ -> false

let covered_by_barrier ~mode ~fsync_skips_data records ~p ~upto =
  let rec go b =
    b < upto
    && (barrier_forces_data ~mode ~fsync_skips_data records ~p ~b || go (b + 1))
  in
  go (p + 1)

(* Torn-tail cut lengths of a [len]-byte write: the first, middle, and
   last block boundaries strictly inside it (<= 3 variants; dedup
   absorbs collisions on small writes). *)
let torn_cuts ~block_size len =
  if len <= block_size then []
  else
    let nblocks = (len + block_size - 1) / block_size in
    let cuts =
      [ block_size; nblocks / 2 * block_size; (len - 1) / block_size * block_size ]
    in
    List.sort_uniq compare (List.filter (fun c -> c > 0 && c < len) cuts)

let enumerate_states ~mode ~records ~b0 ~window ~torn ~fsync_skips_data
    ~block_size () =
  let n = Array.length records in
  let m = meta_prefix_counts records ~b0 in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let add st =
    if not (Hashtbl.mem seen st.st_persisted) then begin
      Hashtbl.add seen st.st_persisted ();
      out := st :: !out
    end
  in
  let data_len p = match records.(p) with Journal.Data { len; _ } -> len | _ -> 0 in
  let add_with_torn i persisted ~tail =
    add { st_crash_point = i; st_persisted = persisted };
    if torn then
      match tail with
      | Some q ->
        List.iter
          (fun cut ->
            let with_cut =
              List.sort compare ((q, Some cut) :: persisted)
            in
            add { st_crash_point = i; st_persisted = with_cut })
          (torn_cuts ~block_size (data_len q))
      | None -> ()
  in
  for i = b0 to n do
    match (mode : Config.journal_mode) with
    | Config.Journaled ->
      (* strict log order: the journal replays a downward-closed prefix *)
      let persisted = ref [] in
      for p = i - 1 downto b0 do
        if not (is_barrier records p) then persisted := (p, None) :: !persisted
      done;
      (* the torn tail is the commit the crash interrupted *)
      let tail =
        if i < n && data_len i > block_size then Some i else None
      in
      add_with_torn i !persisted ~tail
    | Config.Writeback | Config.Ordered ->
      let horizon = max b0 (i - window) in
      let metas = ref [] in
      for p = i - 1 downto b0 do
        if is_meta records p then metas := p :: !metas
      done;
      let metas = Array.of_list !metas in
      let m_i = Array.length metas in
      (* every full barrier commits the metadata journal up to itself;
         the reorder window bounds how old an uncommitted update can be *)
      let m_lo = ref m.(horizon) in
      for b = b0 to i - 1 do
        match records.(b) with
        | Journal.Barrier { data_only = false; _ } -> m_lo := max !m_lo m.(b)
        | _ -> ()
      done;
      let datas = ref [] in
      for p = i - 1 downto b0 do
        if data_ino records p <> None then datas := p :: !datas
      done;
      let datas = !datas in
      for mm = !m_lo to m_i do
        let persisted_meta =
          List.filteri (fun k _ -> k < mm) (Array.to_list metas)
          |> List.map (fun p -> (p, None))
        in
        let forced, free =
          List.partition
            (fun p ->
              p < horizon
              || covered_by_barrier ~mode ~fsync_skips_data records ~p ~upto:i
              || (mode = Config.Ordered && m.(p) < mm))
            datas
        in
        let forced = List.map (fun p -> (p, None)) forced in
        let free = Array.of_list free in
        let nf = Array.length free in
        for mask = 0 to (1 lsl nf) - 1 do
          let chosen = ref [] and dropped_tail = ref None in
          for k = nf - 1 downto 0 do
            if mask land (1 lsl k) <> 0 then chosen := (free.(k), None) :: !chosen
            else if !dropped_tail = None then dropped_tail := Some free.(k)
          done;
          let persisted =
            List.sort compare (persisted_meta @ forced @ !chosen)
          in
          add_with_torn i persisted ~tail:!dropped_tail
        done
      done
  done;
  List.rev !out

(* The independent validity predicate: is (crash point [i], persisted
   set [s]) reachable?  Written from the §17 definition, not shared
   with the generator above — their agreement is the property the
   QCheck equivalence test checks. *)
let valid ~mode ~records ~b0 ~window ~fsync_skips_data ~i s =
  let in_s p = List.mem p s in
  let n = i in
  let ok = ref true in
  (* barriers are ordering constraints, never content *)
  List.iter (fun p -> if is_barrier records p then ok := false) s;
  for p = b0 to n - 1 do
    (* the reorder window: nothing older than [window] records is still
       volatile *)
    if p < i - window && (not (is_barrier records p)) && not (in_s p) then
      ok := false;
    if is_meta records p then begin
      (* the metadata journal persists in order *)
      (if in_s p then
         for q = b0 to p - 1 do
           if is_meta records q && not (in_s q) then ok := false
         done);
      (* a full barrier commits the whole metadata journal before it *)
      if not (in_s p) then
        for b = p + 1 to n - 1 do
          match records.(b) with
          | Journal.Barrier { data_only = false; _ } -> ok := false
          | _ -> ()
        done
    end;
    if data_ino records p <> None && not (in_s p) then begin
      (* barrier-covered data must be durable *)
      if covered_by_barrier ~mode ~fsync_skips_data records ~p ~upto:i then
        ok := false;
      (* ordered: metadata never commits ahead of the data it follows *)
      if mode = Config.Ordered then
        for q = p + 1 to n - 1 do
          if is_meta records q && in_s q then ok := false
        done
    end;
    (* journaled: strict prefix of the log *)
    if
      mode = Config.Journaled && in_s p
    then
      for q = b0 to p - 1 do
        if (not (is_barrier records q)) && not (in_s q) then ok := false
      done
  done;
  !ok

let brute_force_states ~mode ~records ~b0 ~window ~fsync_skips_data () =
  let n = Array.length records in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  for i = b0 to n do
    let candidates = ref [] in
    for p = i - 1 downto b0 do
      if not (is_barrier records p) then candidates := p :: !candidates
    done;
    let candidates = Array.of_list !candidates in
    let nc = Array.length candidates in
    for mask = 0 to (1 lsl nc) - 1 do
      let s = ref [] in
      for k = nc - 1 downto 0 do
        if mask land (1 lsl k) <> 0 then s := candidates.(k) :: !s
      done;
      let s = !s in
      if valid ~mode ~records ~b0 ~window ~fsync_skips_data ~i s then begin
        let key = List.map (fun p -> (p, None)) s in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := { st_crash_point = i; st_persisted = key } :: !out
        end
      end
    done
  done;
  List.rev !out

(* --- materialization: journal recovery onto a fresh image --- *)

let truncate_record record cut =
  match record with
  | Journal.Data d -> Journal.Data { d with len = cut }
  | r -> r

let materialize ~config ~records ~b0 state =
  let fs = Fs.create ~config () in
  for p = 0 to b0 - 1 do
    Fs.apply_record fs records.(p)
  done;
  List.iter
    (fun (p, cut) ->
      match cut with
      | None -> Fs.apply_record fs records.(p)
      | Some c -> Fs.apply_record fs (truncate_record records.(p) c))
    state.st_persisted;
  ignore (Fs.exec_aux fs Fs.Sync);
  fs

(* Canonical recursive tree dump → CRC-32: the state digest the
   deduplicator keys on. *)
let digest fs =
  let buf = Buffer.create 512 in
  let rec walk dir =
    match Fs.list_dir fs dir with
    | Error _ -> ()
    | Ok entries ->
      List.iter
        (fun name ->
          let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
          match Fs.lstat fs path with
          | Error _ -> Buffer.add_string buf (path ^ " ?\n")
          | Ok st ->
            let kind, content =
              match st.Fs.st_kind with
              | `Reg ->
                ("reg", match Fs.checksum fs path with Ok c -> c | Error _ -> 0)
              | `Dir -> ("dir", 0)
              | `Symlink -> ("sym", 0)
              | `Fifo -> ("fifo", 0)
              | `Device -> ("dev", 0)
            in
            Buffer.add_string buf
              (Printf.sprintf "%s %s %o %d:%d %d %d\n" path kind st.Fs.st_mode
                 st.Fs.st_uid st.Fs.st_gid st.Fs.st_size content);
            (match Fs.xattr_names fs path with
             | Ok names ->
               List.iter
                 (fun xn ->
                   let xs =
                     match Fs.xattr_size fs path xn with Ok s -> s | Error _ -> -1
                   in
                   Buffer.add_string buf (Printf.sprintf "  x %s %d\n" xn xs))
                 names
             | Error _ -> ());
            if st.Fs.st_kind = `Dir then walk path)
        entries
  in
  walk "/";
  Crc32.string (Buffer.contents buf)

(* --- post-crash classification --- *)

let classify_path fs ~uid_gid ~history ~post path =
  (match uid_gid with
   | Some (uid, gid) -> Fs.set_credentials fs ~uid ~gid
   | None -> ());
  let reopen =
    Fs.exec fs (Model.open_ ~flags:(Open_flags.of_flags [ Open_flags.O_RDONLY ]) path)
  in
  (match reopen with Model.Ret fd -> ignore (Fs.exec fs (Model.close fd)) | _ -> ());
  let final = match history with [] -> Absent | h -> List.nth h (List.length h - 1) in
  match reopen with
  | Model.Err e when not (Errno.equal e Errno.ENOENT) -> Partition.C_errno
  | _ ->
    (match (final, post) with
     | Absent, Absent -> Partition.C_recovered
     | Absent, _ -> Partition.C_stale  (* deleted, yet resurfaced *)
     | _, Absent -> Partition.C_lost
     | f, p when equal_observation f p -> Partition.C_recovered
     | _, p when List.exists (equal_observation p) history -> Partition.C_stale
     | _ -> Partition.C_torn)

(* --- the fsync-durability oracle --- *)

(* The mode-independent POSIX contract: a [sync] makes every prior data
   block durable; an [fsync]/[fdatasync] makes its inode's prior data
   durable.  Any enumerated state that drops such a block is a
   reportable bug (the generator only produces one under the
   [Fsync_skips_data] fault — which is exactly the bug class the
   differential exists to catch). *)
let oracle_covers records ~p ~b =
  match records.(b) with
  | Journal.Barrier { scope; _ } ->
    (match (scope, data_ino records p) with
     | Journal.All, _ -> true
     | Journal.Ino x, Some y -> x = y
     | Journal.Ino _, None -> false)
  | _ -> false

let durability_violations ~records ~b0 state =
  let i = state.st_crash_point in
  let persisted = state_positions state in
  let violations = ref [] in
  for b = b0 to i - 1 do
    if is_barrier records b then
      for p = b0 to b - 1 do
        if
          data_ino records p <> None
          && oracle_covers records ~p ~b
          && not (List.mem p persisted)
        then
          violations :=
            Printf.sprintf
              "crash point %d: data record %d (%s) covered by barrier %d yet lost"
              i p
              (Journal.record_to_string records.(p))
              b
            :: !violations
      done
  done;
  List.rev !violations

(* Byte-level spot check of materialization: the last fully-persisted
   data record of an inode — with no later persisted write or size
   change to supersede it — must be readable back verbatim. *)
let byte_sample_violations ~records fs state =
  let persisted = state.st_persisted in
  let supersedes ~ino ~after =
    List.exists
      (fun (q, _) ->
        q > after
        &&
        match records.(q) with
        | Journal.Data { ino = i2; _ } | Journal.Size { ino = i2; _ } -> i2 = ino
        | _ -> false)
      persisted
  in
  let rec path_of_ino dir ino =
    match Fs.list_dir fs dir with
    | Error _ -> None
    | Ok entries ->
      List.fold_left
        (fun acc name ->
          match acc with
          | Some _ -> acc
          | None ->
            let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
            (match Fs.lstat fs path with
             | Ok st when st.Fs.st_ino = ino && st.Fs.st_kind = `Reg -> Some path
             | Ok st when st.Fs.st_kind = `Dir -> path_of_ino path ino
             | _ -> None))
        None entries
  in
  List.filter_map
    (fun (p, cut) ->
      match (records.(p), cut) with
      | Journal.Data { ino; off; len; fill }, None
        when len > 0 && not (supersedes ~ino ~after:p) ->
        (match path_of_ino "/" ino with
         | None -> None  (* orphaned by an unpersisted name — legal *)
         | Some path ->
           (match Fs.read_byte fs path (off + len - 1) with
            | Ok c when c = fill -> None
            | Ok c ->
              Some
                (Printf.sprintf
                   "materialized %s byte %d: expected %C, found %C (record %d)" path
                   (off + len - 1) fill c p)
            | Error _ -> None (* shrunk by a persisted size update *)))
      | _ -> None)
    state.st_persisted

(* --- the full analysis --- *)

type report = {
  rp_name : string;
  rp_mode : Config.journal_mode;
  rp_records : int;       (* journal records in the crash window [b0, n) *)
  rp_crash_points : int;
  rp_raw_states : int;    (* distinct persisted sets before digest dedup *)
  rp_states : int;        (* distinct materialized images *)
  rp_files : int;
  rp_classified : int;    (* (state, file) classifications recorded *)
  rp_tally : (Partition.crash_outcome * int) list;  (* all five, in order *)
  rp_violations : string list;
}

let analyze ?(window = 2) ?(torn = true) run =
  let config = run.run_config in
  let mode = config.Config.journal_mode in
  let fsync_skips_data = List.mem Fault.Fsync_skips_data config.Config.faults in
  let records = run.run_records and b0 = run.run_b0 in
  let states =
    enumerate_states ~mode ~records ~b0 ~window ~torn ~fsync_skips_data
      ~block_size:config.Config.block_size ()
  in
  let tally = Hashtbl.create 8 in
  let bump outcome =
    Hashtbl.replace tally outcome (1 + try Hashtbl.find tally outcome with Not_found -> 0)
  in
  let digests = Hashtbl.create 256 in
  let violations = ref [] in
  let classified = ref 0 in
  List.iter
    (fun state ->
      violations := !violations @ durability_violations ~records ~b0 state;
      let fs = materialize ~config ~records ~b0 state in
      let d = digest fs in
      if not (Hashtbl.mem digests d) then begin
        Hashtbl.add digests d ();
        violations := !violations @ byte_sample_violations ~records fs state;
        List.iter
          (fun (path, history) ->
            let post = observe fs path in
            incr classified;
            bump
              (classify_path fs ~uid_gid:run.run_scenario.sc_uid ~history ~post path))
          run.run_history
      end)
    states;
  {
    rp_name = run.run_scenario.sc_name;
    rp_mode = mode;
    rp_records = Array.length records - b0;
    rp_crash_points = Array.length records - b0 + 1;
    rp_raw_states = List.length states;
    rp_states = Hashtbl.length digests;
    rp_files = List.length run.run_history;
    rp_classified = !classified;
    rp_tally =
      List.map
        (fun o -> (o, try Hashtbl.find tally o with Not_found -> 0))
        Partition.all_crash_outcomes;
    rp_violations = !violations;
  }

let run_scenario ?make_ops ?window ?torn ~config scenario =
  analyze ?window ?torn (execute ?make_ops ~config scenario)

(* --- built-in scenarios --- *)

let mount = "/mnt/crash"

let scenarios =
  let p name = mount ^ "/" ^ name in
  [
    {
      sc_name = "append-fsync";
      sc_mount = mount;
      sc_uid = None;
      sc_setup = [ Creat (p "log"); Write (p "log", 0, 6000) ];
      sc_body =
        [ Write (p "log", 6000, 9000); Fsync (p "log"); Append (p "log", 5000) ];
    };
    {
      sc_name = "rename-replace";
      sc_mount = mount;
      sc_uid = None;
      sc_setup = [ Creat (p "cfg"); Write (p "cfg", 0, 4096) ];
      sc_body =
        [ Creat (p "cfg.tmp"); Write (p "cfg.tmp", 0, 8192); Fsync (p "cfg.tmp");
          Rename (p "cfg.tmp", p "cfg") ];
    };
    {
      sc_name = "mkdir-tree";
      sc_mount = mount;
      sc_uid = None;
      sc_setup = [];
      sc_body =
        [ Mkdir (p "d"); Creat (p "d/a"); Write (p "d/a", 0, 5000); Mkdir (p "d/e");
          Symlink (p "d/a", p "d/ln"); Setxattr (p "d/a", "user.tag", 64);
          Fdatasync (p "d/a") ];
    };
    {
      sc_name = "overwrite-prefix";
      sc_mount = mount;
      sc_uid = None;
      sc_setup = [ Creat (p "data"); Write (p "data", 0, 12288) ];
      sc_body =
        [ Write (p "data", 0, 5000); Sync; Write (p "data", 4096, 8192);
          Truncate (p "data", 6000) ];
    };
    {
      sc_name = "chmod-lockout";
      sc_mount = mount;
      sc_uid = Some (1000, 1000);
      sc_setup = [ Creat (p "secret"); Write (p "secret", 0, 2048) ];
      sc_body = [ Write (p "secret", 0, 4096); Chmod (p "secret", 0); Fsync (p "secret") ];
    };
    {
      sc_name = "unlink-recreate";
      sc_mount = mount;
      sc_uid = None;
      sc_setup = [ Creat (p "a"); Write (p "a", 0, 4100) ];
      sc_body = [ Link (p "a", p "b"); Unlink (p "a"); Creat (p "a"); Write (p "a", 0, 100) ];
    };
  ]

let find_scenario name = List.find_opt (fun s -> s.sc_name = name) scenarios
