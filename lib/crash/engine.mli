(** The crash-consistency scenario engine (DESIGN.md §17).

    Runs a scripted workload against a journal-attached VFS, enumerates
    the bounded set of crash states its persistence log admits under the
    configured {!Iocov_vfs.Config.journal_mode}, materializes each state
    by journal replay, and classifies every touched file into one
    post-crash outcome cell ({!Iocov_core.Partition.crash_outcome}) —
    the output dimension {!Iocov_core.Plan.crash_cell} accounts for.

    The enumerator is checked two ways: a from-the-definition validity
    predicate drives {!brute_force_states} (equal state sets on small
    logs, property-tested), and {!durability_violations} rejects any
    state that drops fsync-covered data (which only the
    [Fsync_skips_data] fault can produce). *)

open Iocov_syscall
open Iocov_vfs
module Partition := Iocov_core.Partition

val crash_mode_of_journal : Config.journal_mode -> Partition.crash_mode

(** {2 Scenarios} *)

type step =
  | Mkdir of string
  | Creat of string
  | Write of string * int * int  (** path, offset, length *)
  | Append of string * int
  | Truncate of string * int
  | Chmod of string * int
  | Setxattr of string * string * int
  | Rename of string * string
  | Link of string * string      (** existing, new path *)
  | Symlink of string * string   (** target, link path *)
  | Unlink of string
  | Rmdir of string
  | Fsync of string
  | Fdatasync of string
  | Sync

type scenario = {
  sc_name : string;
  sc_mount : string;
  sc_uid : (int * int) option;
      (** run the workload (and post-crash reopens) as [(uid, gid)] *)
  sc_setup : step list;
      (** durable baseline; the engine appends a [Sync] after it *)
  sc_body : step list;  (** the steps crash states are drawn from *)
}

val mount : string
(** Mount point of the built-in scenarios (["/mnt/crash"]). *)

val scenarios : scenario list
(** The built-in library, one per crash-bug family: [append-fsync],
    [rename-replace], [mkdir-tree], [overwrite-prefix], [chmod-lockout],
    [unlink-recreate]. *)

val find_scenario : string -> scenario option
val step_paths : step -> string list

(** How the engine issues syscalls — defaults to the bare VFS; the CLI
    substitutes a tracer so workload events reach the coverage
    pipeline. *)
type ops = {
  op_exec : Model.call -> Model.outcome;
  op_exec_aux : Fs.aux -> (int, Errno.t) result;
}

val fs_ops : Fs.t -> ops
val run_step : ops -> step -> unit

(** {2 Workload-visible file versions} *)

type observation =
  | Absent
  | Reg of { size : int; checksum : int }
  | Dir
  | Other

val equal_observation : observation -> observation -> bool
val observe : Fs.t -> string -> observation

(** {2 Executing a scenario} *)

type run = {
  run_scenario : scenario;
  run_config : Config.t;
  run_records : Journal.record array;
  run_b0 : int;
      (** records [\[0, b0)] are the durable pre-crash baseline (mount
          preparation, setup, and its closing sync) *)
  run_history : (string * observation list) list;
      (** per touched path, oldest first; last entry = final version *)
}

val execute : ?make_ops:(Fs.t -> ops) -> config:Config.t -> scenario -> run

(** {2 Crash-state enumeration} *)

type state = {
  st_crash_point : int;
  st_persisted : (int * int option) list;
      (** ascending journal positions; [Some cut] marks a torn tail
          shortened to [cut] bytes *)
}

val state_positions : state -> int list

val enumerate_states :
  mode:Config.journal_mode ->
  records:Journal.record array ->
  b0:int ->
  window:int ->
  torn:bool ->
  fsync_skips_data:bool ->
  block_size:int ->
  unit ->
  state list
(** Bounded enumeration, deduplicated by persisted set.  [window] is
    the reordering bound: anything older than [window] records at the
    crash point is durable.  [window = 0] degenerates to pure prefix
    enumeration; [torn] adds block-boundary cuts of the last
    unpersisted in-window write. *)

val valid :
  mode:Config.journal_mode ->
  records:Journal.record array ->
  b0:int ->
  window:int ->
  fsync_skips_data:bool ->
  i:int ->
  int list ->
  bool
(** The independent from-the-definition reachability predicate behind
    {!brute_force_states}; deliberately not shared with
    {!enumerate_states}. *)

val brute_force_states :
  mode:Config.journal_mode ->
  records:Journal.record array ->
  b0:int ->
  window:int ->
  fsync_skips_data:bool ->
  unit ->
  state list
(** Power-set enumeration filtered by {!valid} — exponential, for
    differential testing on logs of a handful of records. *)

val materialize :
  config:Config.t -> records:Journal.record array -> b0:int -> state -> Fs.t
(** Journal recovery: a fresh image with the baseline plus the state's
    surviving records applied in log order. *)

val digest : Fs.t -> int
(** CRC-32 of a canonical recursive tree dump (paths, kinds, modes,
    owners, sizes, content checksums, xattrs) — the state-dedup key. *)

(** {2 Classification and oracles} *)

val classify_path :
  Fs.t ->
  uid_gid:(int * int) option ->
  history:observation list ->
  post:observation ->
  string ->
  Partition.crash_outcome

val durability_violations :
  records:Journal.record array -> b0:int -> state -> string list
(** The fsync-durability oracle: barrier-covered data records missing
    from the persisted set.  Empty unless the log was generated under
    the [Fsync_skips_data] fault — each entry is a reportable bug. *)

val byte_sample_violations :
  records:Journal.record array -> Fs.t -> state -> string list
(** Spot check of materialization: an inode's last persisted,
    unsuperseded data record must read back verbatim. *)

(** {2 The full analysis} *)

type report = {
  rp_name : string;
  rp_mode : Config.journal_mode;
  rp_records : int;    (** journal records in the crash window *)
  rp_crash_points : int;
  rp_raw_states : int; (** distinct persisted sets *)
  rp_states : int;     (** distinct materialized images *)
  rp_files : int;
  rp_classified : int; (** (state, file) classifications *)
  rp_tally : (Partition.crash_outcome * int) list;
      (** all five outcomes, in declaration order *)
  rp_violations : string list;
}

val analyze : ?window:int -> ?torn:bool -> run -> report
(** [window] defaults to 2, [torn] to [true]. *)

val run_scenario :
  ?make_ops:(Fs.t -> ops) ->
  ?window:int ->
  ?torn:bool ->
  config:Config.t ->
  scenario ->
  report
