(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index), the
   ablation tables for the design choices, and Bechamel performance
   numbers for the IOCov pipeline itself.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --scale 55   # paper-magnitude run
     dune exec bench/main.exe -- --only fig2  # one experiment
     dune exec bench/main.exe -- --no-perf    # skip Bechamel timing *)

open Iocov_syscall
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd
module Arg_class = Iocov_core.Arg_class
module Partition = Iocov_core.Partition
module Ascii = Iocov_util.Ascii
module Log2 = Iocov_util.Log2

let scale = ref 55.0
let seed = ref 42
let only = ref []
let perf = ref true
let metrics_json = ref ""

let usage = "bench/main.exe [--scale S] [--seed N] [--only ID]* [--no-perf] [--metrics-json F]"

let () =
  Arg.parse
    [ ("--scale", Arg.Set_float scale, "xfstests workload scale (default 55.0, ~paper magnitude)");
      ("--seed", Arg.Set_int seed, "PRNG seed (default 42)");
      ("--only", Arg.String (fun s -> only := s :: !only),
       "run one experiment (bugstudy|fig2|table1|fig3|fig4|fig5|syscalls|differential|\
        tcd-ablation|partition-ablation|variant-ablation|remaining|ltp|reduction|fuzzer|perf)");
      ("--no-perf", Arg.Clear perf, "skip the Bechamel performance benches");
      ("--metrics-json", Arg.Set_string metrics_json,
       "after the experiments, write the self-observability registry (metrics + span \
        profile) to this JSON file") ]
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    usage

let wanted id = !only = [] || List.mem id !only

let heading id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n%!"

(* The evaluation pair, shared by E2-E6 and the ablations (computed once). *)
let suite_runs =
  lazy
    (Printf.printf "running CrashMonkey simulator (full seq-1 grid)...\n%!";
     let cm = Runner.run ~seed:!seed ~scale:1.0 Runner.Crashmonkey in
     Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
       (Ascii.si_count cm.Runner.events_total) cm.Runner.elapsed_s
       (List.length cm.Runner.failures);
     Printf.printf "running xfstests simulator (1014 tests, scale %.1f)...\n%!" !scale;
     let xf = Runner.run ~seed:!seed ~scale:!scale Runner.Xfstests in
     Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
       (Ascii.si_count xf.Runner.events_total) xf.Runner.elapsed_s
       (List.length xf.Runner.failures);
     (cm, xf))

let names = ("CrashMonkey", "xfstests")

(* --- E1: the Section 2 bug study --- *)

let e1_bugstudy () =
  heading "E1" "Bug study statistics (Section 2)";
  print_endline (Iocov_bugstudy.Stats.render (Iocov_bugstudy.Stats.of_dataset ()));
  print_endline "\nTrigger syscalls across the 70 bugs:";
  List.iter
    (fun (base, n) -> Printf.printf "  %-10s %d\n" (Model.base_name base) n)
    (Iocov_bugstudy.Stats.trigger_frequency Iocov_bugstudy.Dataset.all)

(* --- E2-E6: the evaluation figures --- *)

let e2_figure2 () =
  heading "E2" "Figure 2: input coverage of open flags";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure2 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e3_table1 () =
  heading "E3" "Table 1: open flag combinations";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.table1 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage);
  Printf.printf "\npaper: CM 9.3/2.8/22.1/65.4/0.5/0; XF 6.1/28.2/18.2/46.8/0.5/0.4\n";
  (* bit-combination extension: exact set coverage *)
  let sets_cm = Coverage.open_flag_sets cm.Runner.coverage in
  let sets_xf = Coverage.open_flag_sets xf.Runner.coverage in
  Printf.printf "\nbit-combination extension (exact flag sets exercised): %s %d, %s %d\n"
    name_a
    (Iocov_core.Combos.distinct_sets sets_cm)
    name_b
    (Iocov_core.Combos.distinct_sets sets_xf);
  Printf.printf "flag pairs never tested together: %s %d, %s %d (of %d pairs)\n" name_a
    (List.length (Iocov_core.Combos.untested_pairs sets_cm))
    name_b
    (List.length (Iocov_core.Combos.untested_pairs sets_xf))
    (21 * 20 / 2)

let e4_figure3 () =
  heading "E4" "Figure 3: input coverage of write sizes";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure3 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e5_figure4 () =
  heading "E5" "Figure 4: output coverage of open";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure4 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e6_figure5 () =
  heading "E6" "Figure 5: Test Coverage Deviation for open flags";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure5 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage
       ~targets:(Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:1));
  print_endline "paper: crossover at T ~= 5,237 (CrashMonkey better below, xfstests above)"

(* --- E7: the syscall model inventory --- *)

let e7_syscalls () =
  heading "E7" "Setup sanity: 27 syscalls, 11 bases, 14 tracked arguments";
  let rows =
    List.map
      (fun base ->
        [ Model.base_name base;
          String.concat " " (List.map Model.variant_name (Model.variants_of_base base));
          String.concat " " (List.map Arg_class.name (Arg_class.args_of_base base));
          string_of_int (List.length (Model.errno_domain base)) ])
      Model.all_bases
  in
  print_endline
    (Ascii.table ~headers:[ "base"; "variants"; "tracked arguments"; "manual errnos" ] rows);
  Printf.printf "totals: %d variants, %d bases, %d tracked arguments\n"
    (List.length Model.all_variants) (List.length Model.all_bases)
    (List.length Arg_class.all)

(* --- E8: differential testing (the Figure 1 causal demo) --- *)

let e8_differential () =
  heading "E8" "Differential tester: injected bugs vs probe strategies";
  let reports = Iocov_bugstudy.Differential.campaign () in
  print_endline (Iocov_bugstudy.Differential.render reports);
  Printf.printf "detection rate: code-coverage-style %.0f%%, IOCov-guided %.0f%%\n"
    (100.0
     *. Iocov_bugstudy.Differential.detection_rate reports
          Iocov_bugstudy.Differential.Code_coverage_style)
    (100.0
     *. Iocov_bugstudy.Differential.detection_rate reports
          Iocov_bugstudy.Differential.Iocov_guided);
  (* the same faults through the two real suite simulators *)
  print_endline "\ninjected-fault detection by the simulated suites (reduced scale):";
  let rows =
    List.map
      (fun fault ->
        let cm = Runner.run ~seed:!seed ~scale:0.05 ~faults:[ fault ] Runner.Crashmonkey in
        let xf = Runner.run ~seed:!seed ~scale:0.05 ~faults:[ fault ] Runner.Xfstests in
        [ Iocov_vfs.Fault.to_string fault;
          (if Runner.detects cm then "detected" else "missed");
          (if Runner.detects xf then "detected" else "missed") ])
      Iocov_vfs.Fault.all
  in
  print_endline
    (Ascii.table ~headers:[ "injected fault"; "CrashMonkey"; "xfstests" ] rows)

(* --- ablations --- *)

let tcd_ablation () =
  heading "A1" "Ablation: log-domain TCD (paper) vs linear RMSD";
  let cm, xf = Lazy.force suite_runs in
  let freqs r =
    Array.of_list
      (List.map snd (Coverage.input_series r.Runner.coverage Arg_class.Open_flags_arg))
  in
  let f_cm = freqs cm and f_xf = freqs xf in
  let rows =
    List.map
      (fun target ->
        let t = Array.make (Array.length f_cm) target in
        [ Printf.sprintf "%.0f" target;
          Printf.sprintf "%.3f" (Tcd.tcd ~frequencies:f_cm ~target:t);
          Printf.sprintf "%.3f" (Tcd.tcd ~frequencies:f_xf ~target:t);
          Printf.sprintf "%.0f" (Tcd.linear_rmsd ~frequencies:f_cm ~target:t);
          Printf.sprintf "%.0f" (Tcd.linear_rmsd ~frequencies:f_xf ~target:t) ])
      [ 10.0; 1000.0; 100_000.0 ]
  in
  print_endline
    (Ascii.table
       ~headers:[ "target"; "TCD CM"; "TCD XF"; "linear CM"; "linear XF" ]
       rows);
  print_endline
    "In the linear domain xfstests' high frequencies dominate the deviation at\n\
     every target, erasing the under-/over-testing trade-off the paper's\n\
     log-domain metric exposes (no crossover exists in the linear column).";
  match
    Tcd.crossover ~f1:f_cm ~f2:f_xf ~lo:1.0 ~hi:1e7
  with
  | Some t -> Printf.printf "log-domain crossover: T ~= %.0f; linear domain: none\n" t
  | None -> print_endline "log-domain crossover: none in range"

let partition_ablation () =
  heading "A2" "Ablation: power-of-two partitions vs fixed-width buckets";
  let cm, xf = Lazy.force suite_runs in
  (* re-bucket the observed write sizes under a fixed-width scheme with
     the same number of partitions (34 buckets over [0, 258 MiB]) *)
  let max_size = 258 * 1024 * 1024 in
  let buckets = 34 in
  let width = (max_size / buckets) + 1 in
  let fixed_covered cov =
    let series = Coverage.input_series cov Arg_class.Write_count in
    let covered = Hashtbl.create 34 in
    List.iter
      (fun (part, freq) ->
        if freq > 0 then
          match part with
          | Partition.P_bucket b ->
            (* re-bucket each observed size class by its representative
               (the bucket's lower bound) under the fixed-width scheme *)
            let lo = min max_size (Log2.bucket_lo b) in
            if lo >= 0 then Hashtbl.replace covered (lo / width) ()
          | _ -> ())
      series;
    Hashtbl.length covered
  in
  let pow2_covered cov =
    List.length
      (List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov Arg_class.Write_count))
  in
  let rows =
    List.map
      (fun (name, r) ->
        [ name;
          Printf.sprintf "%d/34" (pow2_covered r.Runner.coverage);
          Printf.sprintf "%d/34" (fixed_covered r.Runner.coverage) ])
      [ ("CrashMonkey", cm); ("xfstests", xf) ]
  in
  print_endline
    (Ascii.table ~headers:[ "suite"; "pow2 buckets covered"; "fixed-width covered" ] rows);
  print_endline
    "Fixed-width buckets at file-system scale (~7.6 MiB per bucket here)\n\
     collapse every realistic write below 7 MiB into bucket 0: the rich\n\
     small-size structure that distinguishes the suites becomes invisible,\n\
     and only rare giant writes reach other buckets.  Powers of two (the\n\
     paper's choice) resolve exactly the region where file systems branch\n\
     on size."

let variant_ablation () =
  heading "A3" "Ablation: syscall variant merging on vs off";
  (* rerun xfstests at a reduced scale with two accumulators: one normal,
     one that drops every non-primary variant before observing *)
  let merged = Coverage.create () in
  let primary_only = Coverage.create () in
  let filter = Iocov_trace.Filter.mount_point Iocov_suites.Xfstests.mount in
  let is_primary call =
    match Model.variant_of_call call with
    | Model.Sys_open | Model.Sys_read | Model.Sys_write | Model.Sys_lseek
    | Model.Sys_truncate | Model.Sys_mkdir | Model.Sys_chmod | Model.Sys_close
    | Model.Sys_chdir | Model.Sys_setxattr | Model.Sys_getxattr -> true
    | _ -> false
  in
  let sink e =
    if Iocov_trace.Filter.keeps filter e then
      match e.Iocov_trace.Event.payload with
      | Iocov_trace.Event.Tracked call ->
        if is_primary call then
          Coverage.observe primary_only call e.Iocov_trace.Event.outcome
      | Iocov_trace.Event.Aux _ -> ()
  in
  let _ =
    Iocov_suites.Xfstests.run ~seed:!seed ~scale:0.2 ~sink ~coverage:merged ()
  in
  let rows =
    List.filter_map
      (fun arg ->
        let covered cov =
          List.length (List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov arg))
        in
        let m = covered merged and p = covered primary_only in
        if m <> p then
          Some
            [ Arg_class.name arg;
              Printf.sprintf "%d/%d" m (List.length (Partition.domain arg));
              Printf.sprintf "%d/%d" p (List.length (Partition.domain arg)) ]
        else None)
      Arg_class.all
  in
  print_endline
    (Ascii.table
       ~headers:[ "argument"; "variants merged (IOCov)"; "base syscall only" ]
       rows);
  print_endline
    "Without the variant handler, work done through pread64/pwrite64/openat/...\n\
     is invisible: the tool under-reports coverage for every argument above,\n\
     flagging partitions as untested that the suite does exercise."

(* --- S1: the figures the paper omitted for space --- *)

let s1_remaining_figures () =
  heading "S1"
    "Input coverage of the remaining tracked arguments (omitted in the paper for space)";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  let cov_a = cm.Runner.coverage and cov_b = xf.Runner.coverage in
  List.iter
    (fun arg ->
      print_endline (Report.numeric_figure ~arg ~name_a ~cov_a ~name_b ~cov_b))
    [ Arg_class.Read_count; Arg_class.Lseek_offset; Arg_class.Truncate_length;
      Arg_class.Setxattr_size ];
  (* the categorical and bitmap arguments as frequency tables *)
  List.iter
    (fun arg ->
      let rows =
        List.map
          (fun part ->
            [ Partition.label part;
              Ascii.si_count (Coverage.input_count cov_a arg part);
              Ascii.si_count (Coverage.input_count cov_b arg part) ])
          (Partition.domain arg)
      in
      print_endline
        (Ascii.table
           ~title:(Printf.sprintf "Input coverage of %s" (Arg_class.name arg))
           ~headers:[ "partition"; name_a; name_b ]
           rows))
    [ Arg_class.Lseek_whence; Arg_class.Setxattr_flags; Arg_class.Chmod_mode ];
  (* output coverage beyond open *)
  List.iter
    (fun base ->
      print_endline (Report.output_figure ~base ~name_a ~cov_a ~name_b ~cov_b))
    [ Model.Write; Model.Setxattr ]

(* --- S2: a third tester (LTP) through the same lens --- *)

let s2_ltp () =
  heading "S2" "Extension: LTP through IOCov (errno-driven testing profile)";
  let _, xf = Lazy.force suite_runs in
  Printf.printf "running LTP simulator...\n%!";
  let ltp = Runner.run ~seed:!seed ~scale:!scale Runner.Ltp in
  Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
    (Ascii.si_count ltp.Runner.events_total) ltp.Runner.elapsed_s
    (List.length ltp.Runner.failures);
  let rows =
    List.map
      (fun base ->
        let ratio cov f = Printf.sprintf "%.0f%%" (100.0 *. f cov base) in
        [ Model.base_name base;
          ratio ltp.Runner.coverage Coverage.input_coverage_ratio_of_base;
          ratio xf.Runner.coverage Coverage.input_coverage_ratio_of_base;
          ratio ltp.Runner.coverage Coverage.output_coverage_ratio;
          ratio xf.Runner.coverage Coverage.output_coverage_ratio ])
      Model.all_bases
  in
  print_endline
    (Ascii.table
       ~title:
         (Printf.sprintf "coverage ratios at %s (LTP) vs %s (xfstests) events"
            (Ascii.si_count ltp.Runner.events_total)
            (Ascii.si_count xf.Runner.events_total))
       ~headers:[ "syscall"; "LTP input"; "XF input"; "LTP output"; "XF output" ]
       rows);
  print_endline
    (Report.output_figure ~base:Model.Open ~name_a:"LTP" ~cov_a:ltp.Runner.coverage
       ~name_b:"xfstests" ~cov_b:xf.Runner.coverage);
  print_endline
    "LTP's errno-driven cases rival xfstests' OUTPUT coverage at a vanishing\n\
     fraction of the execution volume, while its INPUT size coverage stays\n\
     narrow — two testers, two complementary gaps, one pair of metrics."

(* --- S3: coverage-preserving suite reduction --- *)

let s3_reduction () =
  heading "S3" "Extension: coverage-preserving test-suite reduction (greedy set cover)";
  let module Reduction = Iocov_core.Reduction in
  let items = ref [] in
  let coverage = Coverage.create () in
  Printf.printf "running xfstests with per-test coverage attribution...\n%!";
  let _ =
    Iocov_suites.Xfstests.run ~seed:!seed ~scale:0.2
      ~per_test:(fun name cov -> items := { Reduction.name; coverage = cov } :: !items)
      ~coverage ()
  in
  let items = List.rev !items in
  let selection = Reduction.greedy items in
  Printf.printf
    "%d of %d xfstests tests already reach every one of the %d partitions the\n\
     whole suite covers (domain: %d partitions).  The remaining %d tests add\n\
     only frequency — the paper's over-testing, made explicit.\n\n"
    (List.length selection.Reduction.chosen)
    (List.length items) selection.Reduction.total_covered selection.Reduction.universe
    (List.length items - List.length selection.Reduction.chosen);
  Printf.printf "first ten picks (by marginal coverage gain):\n  %s\n"
    (String.concat " "
       (List.filteri (fun i _ -> i < 10) selection.Reduction.chosen))

(* --- E10: fuzzer feedback comparison (paper future work:
   "evaluate fuzzing systems") --- *)

let e10_fuzzer () =
  heading "E10" "Fuzzing feedback: path-style vs IOCov-guided (future work)";
  let module Fuzzer = Iocov_suites.Fuzzer in
  let budget = max 500 (int_of_float (400.0 *. !scale)) in
  Printf.printf "one mutation engine, two feedback signals, %d executions each...\n%!" budget;
  let outcome, partition = Fuzzer.compare_feedbacks ~seed:!seed ~budget () in
  let rows =
    List.filter_map
      (fun ((e, a), (_, b)) ->
        if e mod (budget / 8) < 50 || e = budget then
          Some [ Ascii.si_count e; string_of_int a; string_of_int b ]
        else None)
      (List.combine outcome.Fuzzer.growth partition.Fuzzer.growth)
  in
  print_endline
    (Ascii.table
       ~headers:[ "executions"; "outcome-novelty"; "partition-novelty (IOCov)" ]
       rows);
  Printf.printf
    "final: outcome-novelty %d partitions (corpus %d); IOCov-guided %d (corpus %d)\n"
    (Fuzzer.covered_partitions outcome.Fuzzer.coverage)
    outcome.Fuzzer.corpus_size
    (Fuzzer.covered_partitions partition.Fuzzer.coverage)
    partition.Fuzzer.corpus_size;
  print_endline
    "Fuzzing guided by the paper's input/output-coverage metric retains the\n\
     boundary stepping stones that path-style novelty discards, and covers\n\
     strictly more of the partitioned input space for the same budget —\n\
     the related-work critique of path-coverage fuzzers, measured."

(* --- E9: performance of the pipeline itself --- *)

let perf_benches () =
  heading "E9" "Pipeline performance (Bechamel, monotonic clock)";
  let open Bechamel in
  let fs = Iocov_vfs.Fs.create () in
  ignore (Iocov_vfs.Fs.exec fs (Model.mkdir ~mode:0o755 "/mnt"));
  ignore (Iocov_vfs.Fs.exec fs (Model.mkdir ~mode:0o755 "/mnt/test"));
  ignore
    (Iocov_vfs.Fs.exec fs
       (Model.open_ ~mode:0o644
          ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ])
          "/mnt/test/bench"));
  let traced_fs = Iocov_vfs.Fs.create () in
  let tracer = Iocov_trace.Tracer.create traced_fs in
  let coverage = Coverage.create () in
  let filter = Iocov_trace.Filter.mount_point "/mnt/test" in
  Iocov_trace.Tracer.on_event tracer
    (Iocov_trace.Filter.sink filter (fun e ->
         match e.Iocov_trace.Event.payload with
         | Iocov_trace.Event.Tracked call ->
           Coverage.observe coverage call e.Iocov_trace.Event.outcome
         | Iocov_trace.Event.Aux _ -> ()));
  ignore (Iocov_trace.Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt"));
  ignore (Iocov_trace.Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt/test"));
  ignore
    (Iocov_trace.Tracer.exec tracer
       (Model.open_ ~mode:0o644
          ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ])
          "/mnt/test/bench"));
  (* fixed-offset write: repeated appends would grow the file without
     bound and measure extent-list growth instead of the steady state *)
  let write_call = Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd:3 ~count:4096 () in
  let regex = Iocov_regex.Engine.compile_exn "^/mnt/test(/|$)" in
  let sample_line =
    "[1622] pid=1000 comm=\"xfstests\" open(path=\"/mnt/test/a\", flags=O_RDONLY, \
     mode=0o0) -> ok:3 hint=\"/mnt/test/a\""
  in
  let freqs = Array.init 21 (fun i -> i * 997) in
  let tests =
    [ Test.make ~name:"vfs: write 4KiB (bare)" (Staged.stage (fun () ->
          ignore (Iocov_vfs.Fs.exec fs write_call)));
      Test.make ~name:"vfs: write 4KiB (traced+IOCov)" (Staged.stage (fun () ->
          ignore (Iocov_trace.Tracer.exec tracer write_call)));
      Test.make ~name:"analyzer: Coverage.observe" (Staged.stage (fun () ->
          Coverage.observe coverage write_call (Model.Ret 4096)));
      Test.make ~name:"trace: parse one record (text)" (Staged.stage (fun () ->
          ignore (Iocov_trace.Format_io.of_line sample_line)));
      Test.make ~name:"filter: regex search on a hint" (Staged.stage (fun () ->
          ignore (Iocov_regex.Engine.search regex "/mnt/test/dir/file")));
      Test.make ~name:"metric: TCD over 21 partitions" (Staged.stage (fun () ->
          ignore (Tcd.tcd_uniform ~frequencies:freqs ~target:5237.0))) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let analyzed = Analyze.all ols instance results in
        let est =
          Hashtbl.fold
            (fun _ v acc ->
              match Analyze.OLS.estimates v with
              | Some [ e ] -> e
              | _ -> acc)
            analyzed 0.0
        in
        [ name; Printf.sprintf "%.0f ns/op" est ])
      tests
  in
  print_endline (Ascii.table ~headers:[ "operation"; "cost" ] rows);
  print_endline
    "The traced+IOCov write includes the full pipeline: VFS execution, event\n\
     construction, mount-point filtering, and coverage accumulation — the\n\
     'low-overhead tracing' requirement of Section 3."

let () =
  if wanted "bugstudy" then e1_bugstudy ();
  if wanted "fig2" then e2_figure2 ();
  if wanted "table1" then e3_table1 ();
  if wanted "fig3" then e4_figure3 ();
  if wanted "fig4" then e5_figure4 ();
  if wanted "fig5" then e6_figure5 ();
  if wanted "syscalls" then e7_syscalls ();
  if wanted "differential" then e8_differential ();
  if wanted "tcd-ablation" then tcd_ablation ();
  if wanted "partition-ablation" then partition_ablation ();
  if wanted "variant-ablation" then variant_ablation ();
  if wanted "remaining" then s1_remaining_figures ();
  if wanted "ltp" then s2_ltp ();
  if wanted "reduction" then s3_reduction ();
  if wanted "fuzzer" then e10_fuzzer ();
  if !perf && wanted "perf" then perf_benches ();
  if !metrics_json <> "" then begin
    let report =
      Iocov_obs.Export.registry_report
        ~spans:(Iocov_obs.Span.roots ())
        Iocov_obs.Metrics.default
    in
    Out_channel.with_open_text !metrics_json (fun oc -> output_string oc report);
    Printf.printf "observability registry written to %s\n" !metrics_json
  end;
  print_newline ()
