(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's per-experiment index), the
   ablation tables for the design choices, and Bechamel performance
   numbers for the IOCov pipeline itself.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- --scale 55   # paper-magnitude run
     dune exec bench/main.exe -- --only fig2  # one experiment
     dune exec bench/main.exe -- --no-perf    # skip Bechamel timing *)

open Iocov_syscall
module Runner = Iocov_suites.Runner
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Tcd = Iocov_core.Tcd
module Arg_class = Iocov_core.Arg_class
module Partition = Iocov_core.Partition
module Ascii = Iocov_util.Ascii
module Log2 = Iocov_util.Log2
module Prng = Iocov_util.Prng
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Pool = Iocov_par.Pool
module Replay = Iocov_par.Replay
module Source = Iocov_pipe.Source
module Stage = Iocov_pipe.Stage
module Sink = Iocov_pipe.Sink
module Driver = Iocov_pipe.Driver

(* Benches describe runs declaratively and fail loudly on a bad pipeline. *)
let pipe_run ?config ?stages ?sinks source =
  match Driver.run ?config ?stages ?sinks source with
  | Ok run -> run.Driver.product
  | Error msg -> failwith ("bench pipeline: " ^ msg)

let scale = ref 55.0
let seed = ref 42
let only = ref []
let perf = ref true
let metrics_json = ref ""
let coverage_events = ref 1_000_000

let usage = "bench/main.exe [--scale S] [--seed N] [--only ID]* [--no-perf] [--metrics-json F]"

let () =
  Arg.parse
    [ ("--scale", Arg.Set_float scale, "xfstests workload scale (default 55.0, ~paper magnitude)");
      ("--seed", Arg.Set_int seed, "PRNG seed (default 42)");
      ("--only", Arg.String (fun s -> only := s :: !only),
       "run one experiment (bugstudy|fig2|table1|fig3|fig4|fig5|syscalls|differential|\
        tcd-ablation|partition-ablation|variant-ablation|remaining|ltp|reduction|fuzzer|\
        perf|parallel|coverage|robustness|obs|format|serve|crash)");
      ("--format-bench", Arg.Unit (fun () -> only := "format" :: !only),
       "shorthand for --only format (the v3-compactness and scanner-equivalence gate; \
        exits non-zero on failure)");
      ("--coverage-bench", Arg.Unit (fun () -> only := "coverage" :: !only),
       "shorthand for --only coverage (E12, counter backend microbench)");
      ("--serve-bench", Arg.Unit (fun () -> only := "serve" :: !only),
       "shorthand for --only serve (E16, multi-tenant mixed ingest/query workload; \
        exits non-zero if a tenant digest diverges from offline analyze)");
      ("--config-bench", Arg.Unit (fun () -> only := "config" :: !only),
       "shorthand for --only config (E18, config-lattice matrix: observe throughput, \
        lazy shard memory, and the off-default errno surface gate)");
      ("--crash-bench", Arg.Unit (fun () -> only := "crash" :: !only),
       "shorthand for --only crash (E17, crash-state enumeration throughput and \
        outcome-cell coverage vs bound; exits non-zero on an oracle violation or \
        coverage that shrinks as the bound grows)");
      ("--events", Arg.Set_int coverage_events,
       "synthetic trace size for --only coverage (default 1000000)");
      ("--no-perf", Arg.Clear perf, "skip the Bechamel performance benches");
      ("--metrics-json", Arg.Set_string metrics_json,
       "after the experiments, write the self-observability registry (metrics + span \
        profile) to this JSON file") ]
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    usage

let wanted id = !only = [] || List.mem id !only

let heading id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n%!"

(* The evaluation pair, shared by E2-E6 and the ablations (computed once). *)
let suite_runs =
  lazy
    (Printf.printf "running CrashMonkey simulator (full seq-1 grid)...\n%!";
     let cm = Runner.run ~seed:!seed ~scale:1.0 Runner.Crashmonkey in
     Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
       (Ascii.si_count cm.Runner.events_total) cm.Runner.elapsed_s
       (List.length cm.Runner.failures);
     Printf.printf "running xfstests simulator (1014 tests, scale %.1f)...\n%!" !scale;
     let xf = Runner.run ~seed:!seed ~scale:!scale Runner.Xfstests in
     Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
       (Ascii.si_count xf.Runner.events_total) xf.Runner.elapsed_s
       (List.length xf.Runner.failures);
     (cm, xf))

let names = ("CrashMonkey", "xfstests")

(* --- E1: the Section 2 bug study --- *)

let e1_bugstudy () =
  heading "E1" "Bug study statistics (Section 2)";
  print_endline (Iocov_bugstudy.Stats.render (Iocov_bugstudy.Stats.of_dataset ()));
  print_endline "\nTrigger syscalls across the 70 bugs:";
  List.iter
    (fun (base, n) -> Printf.printf "  %-10s %d\n" (Model.base_name base) n)
    (Iocov_bugstudy.Stats.trigger_frequency Iocov_bugstudy.Dataset.all)

(* --- E2-E6: the evaluation figures --- *)

let e2_figure2 () =
  heading "E2" "Figure 2: input coverage of open flags";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure2 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e3_table1 () =
  heading "E3" "Table 1: open flag combinations";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.table1 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage);
  Printf.printf "\npaper: CM 9.3/2.8/22.1/65.4/0.5/0; XF 6.1/28.2/18.2/46.8/0.5/0.4\n";
  (* bit-combination extension: exact set coverage *)
  let sets_cm = Coverage.open_flag_sets cm.Runner.coverage in
  let sets_xf = Coverage.open_flag_sets xf.Runner.coverage in
  Printf.printf "\nbit-combination extension (exact flag sets exercised): %s %d, %s %d\n"
    name_a
    (Iocov_core.Combos.distinct_sets sets_cm)
    name_b
    (Iocov_core.Combos.distinct_sets sets_xf);
  Printf.printf "flag pairs never tested together: %s %d, %s %d (of %d pairs)\n" name_a
    (List.length (Iocov_core.Combos.untested_pairs sets_cm))
    name_b
    (List.length (Iocov_core.Combos.untested_pairs sets_xf))
    (21 * 20 / 2)

let e4_figure3 () =
  heading "E4" "Figure 3: input coverage of write sizes";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure3 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e5_figure4 () =
  heading "E5" "Figure 4: output coverage of open";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure4 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage)

let e6_figure5 () =
  heading "E6" "Figure 5: Test Coverage Deviation for open flags";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  print_endline
    (Report.figure5 ~name_a ~cov_a:cm.Runner.coverage ~name_b ~cov_b:xf.Runner.coverage
       ~targets:(Tcd.log_targets ~lo_log10:0.0 ~hi_log10:7.0 ~per_decade:1));
  print_endline "paper: crossover at T ~= 5,237 (CrashMonkey better below, xfstests above)"

(* --- E7: the syscall model inventory --- *)

let e7_syscalls () =
  heading "E7" "Setup sanity: 27 syscalls, 11 bases, 14 tracked arguments";
  let rows =
    List.map
      (fun base ->
        [ Model.base_name base;
          String.concat " " (List.map Model.variant_name (Model.variants_of_base base));
          String.concat " " (List.map Arg_class.name (Arg_class.args_of_base base));
          string_of_int (List.length (Model.errno_domain base)) ])
      Model.all_bases
  in
  print_endline
    (Ascii.table ~headers:[ "base"; "variants"; "tracked arguments"; "manual errnos" ] rows);
  Printf.printf "totals: %d variants, %d bases, %d tracked arguments\n"
    (List.length Model.all_variants) (List.length Model.all_bases)
    (List.length Arg_class.all)

(* --- E8: differential testing (the Figure 1 causal demo) --- *)

let e8_differential () =
  heading "E8" "Differential tester: injected bugs vs probe strategies";
  let reports = Iocov_bugstudy.Differential.campaign () in
  print_endline (Iocov_bugstudy.Differential.render reports);
  Printf.printf "detection rate: code-coverage-style %.0f%%, IOCov-guided %.0f%%\n"
    (100.0
     *. Iocov_bugstudy.Differential.detection_rate reports
          Iocov_bugstudy.Differential.Code_coverage_style)
    (100.0
     *. Iocov_bugstudy.Differential.detection_rate reports
          Iocov_bugstudy.Differential.Iocov_guided);
  (* the same faults through the two real suite simulators *)
  print_endline "\ninjected-fault detection by the simulated suites (reduced scale):";
  let rows =
    List.map
      (fun fault ->
        let cm = Runner.run ~seed:!seed ~scale:0.05 ~faults:[ fault ] Runner.Crashmonkey in
        let xf = Runner.run ~seed:!seed ~scale:0.05 ~faults:[ fault ] Runner.Xfstests in
        [ Iocov_vfs.Fault.to_string fault;
          (if Runner.detects cm then "detected" else "missed");
          (if Runner.detects xf then "detected" else "missed") ])
      Iocov_vfs.Fault.all
  in
  print_endline
    (Ascii.table ~headers:[ "injected fault"; "CrashMonkey"; "xfstests" ] rows)

(* --- ablations --- *)

let tcd_ablation () =
  heading "A1" "Ablation: log-domain TCD (paper) vs linear RMSD";
  let cm, xf = Lazy.force suite_runs in
  let freqs r =
    Array.of_list
      (List.map snd (Coverage.input_series r.Runner.coverage Arg_class.Open_flags_arg))
  in
  let f_cm = freqs cm and f_xf = freqs xf in
  let rows =
    List.map
      (fun target ->
        let t = Array.make (Array.length f_cm) target in
        [ Printf.sprintf "%.0f" target;
          Printf.sprintf "%.3f" (Tcd.tcd ~frequencies:f_cm ~target:t);
          Printf.sprintf "%.3f" (Tcd.tcd ~frequencies:f_xf ~target:t);
          Printf.sprintf "%.0f" (Tcd.linear_rmsd ~frequencies:f_cm ~target:t);
          Printf.sprintf "%.0f" (Tcd.linear_rmsd ~frequencies:f_xf ~target:t) ])
      [ 10.0; 1000.0; 100_000.0 ]
  in
  print_endline
    (Ascii.table
       ~headers:[ "target"; "TCD CM"; "TCD XF"; "linear CM"; "linear XF" ]
       rows);
  print_endline
    "In the linear domain xfstests' high frequencies dominate the deviation at\n\
     every target, erasing the under-/over-testing trade-off the paper's\n\
     log-domain metric exposes (no crossover exists in the linear column).";
  match
    Tcd.crossover ~f1:f_cm ~f2:f_xf ~lo:1.0 ~hi:1e7
  with
  | Some t -> Printf.printf "log-domain crossover: T ~= %.0f; linear domain: none\n" t
  | None -> print_endline "log-domain crossover: none in range"

let partition_ablation () =
  heading "A2" "Ablation: power-of-two partitions vs fixed-width buckets";
  let cm, xf = Lazy.force suite_runs in
  (* re-bucket the observed write sizes under a fixed-width scheme with
     the same number of partitions (34 buckets over [0, 258 MiB]) *)
  let max_size = 258 * 1024 * 1024 in
  let buckets = 34 in
  let width = (max_size / buckets) + 1 in
  let fixed_covered cov =
    let series = Coverage.input_series cov Arg_class.Write_count in
    let covered = Hashtbl.create 34 in
    List.iter
      (fun (part, freq) ->
        if freq > 0 then
          match part with
          | Partition.P_bucket b ->
            (* re-bucket each observed size class by its representative
               (the bucket's lower bound) under the fixed-width scheme *)
            let lo = min max_size (Log2.bucket_lo b) in
            if lo >= 0 then Hashtbl.replace covered (lo / width) ()
          | _ -> ())
      series;
    Hashtbl.length covered
  in
  let pow2_covered cov =
    List.length
      (List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov Arg_class.Write_count))
  in
  let rows =
    List.map
      (fun (name, r) ->
        [ name;
          Printf.sprintf "%d/34" (pow2_covered r.Runner.coverage);
          Printf.sprintf "%d/34" (fixed_covered r.Runner.coverage) ])
      [ ("CrashMonkey", cm); ("xfstests", xf) ]
  in
  print_endline
    (Ascii.table ~headers:[ "suite"; "pow2 buckets covered"; "fixed-width covered" ] rows);
  print_endline
    "Fixed-width buckets at file-system scale (~7.6 MiB per bucket here)\n\
     collapse every realistic write below 7 MiB into bucket 0: the rich\n\
     small-size structure that distinguishes the suites becomes invisible,\n\
     and only rare giant writes reach other buckets.  Powers of two (the\n\
     paper's choice) resolve exactly the region where file systems branch\n\
     on size."

let variant_ablation () =
  heading "A3" "Ablation: syscall variant merging on vs off";
  (* rerun xfstests at a reduced scale with two accumulators: one normal,
     one that drops every non-primary variant before observing *)
  let merged = Coverage.create () in
  let primary_only = Coverage.create () in
  let filter = Iocov_trace.Filter.mount_point Iocov_suites.Xfstests.mount in
  let is_primary call =
    match Model.variant_of_call call with
    | Model.Sys_open | Model.Sys_read | Model.Sys_write | Model.Sys_lseek
    | Model.Sys_truncate | Model.Sys_mkdir | Model.Sys_chmod | Model.Sys_close
    | Model.Sys_chdir | Model.Sys_setxattr | Model.Sys_getxattr -> true
    | _ -> false
  in
  let sink e =
    if Iocov_trace.Filter.keeps filter e then
      match e.Iocov_trace.Event.payload with
      | Iocov_trace.Event.Tracked call ->
        if is_primary call then
          Coverage.observe primary_only call e.Iocov_trace.Event.outcome
      | Iocov_trace.Event.Aux _ -> ()
  in
  let _ =
    Iocov_suites.Xfstests.run ~seed:!seed ~scale:0.2 ~sink ~coverage:merged ()
  in
  let rows =
    List.filter_map
      (fun arg ->
        let covered cov =
          List.length (List.filter (fun (_, n) -> n > 0) (Coverage.input_series cov arg))
        in
        let m = covered merged and p = covered primary_only in
        if m <> p then
          Some
            [ Arg_class.name arg;
              Printf.sprintf "%d/%d" m (List.length (Partition.domain arg));
              Printf.sprintf "%d/%d" p (List.length (Partition.domain arg)) ]
        else None)
      Arg_class.all
  in
  print_endline
    (Ascii.table
       ~headers:[ "argument"; "variants merged (IOCov)"; "base syscall only" ]
       rows);
  print_endline
    "Without the variant handler, work done through pread64/pwrite64/openat/...\n\
     is invisible: the tool under-reports coverage for every argument above,\n\
     flagging partitions as untested that the suite does exercise."

(* --- S1: the figures the paper omitted for space --- *)

let s1_remaining_figures () =
  heading "S1"
    "Input coverage of the remaining tracked arguments (omitted in the paper for space)";
  let cm, xf = Lazy.force suite_runs in
  let name_a, name_b = names in
  let cov_a = cm.Runner.coverage and cov_b = xf.Runner.coverage in
  List.iter
    (fun arg ->
      print_endline (Report.numeric_figure ~arg ~name_a ~cov_a ~name_b ~cov_b))
    [ Arg_class.Read_count; Arg_class.Lseek_offset; Arg_class.Truncate_length;
      Arg_class.Setxattr_size ];
  (* the categorical and bitmap arguments as frequency tables *)
  List.iter
    (fun arg ->
      let rows =
        List.map
          (fun part ->
            [ Partition.label part;
              Ascii.si_count (Coverage.input_count cov_a arg part);
              Ascii.si_count (Coverage.input_count cov_b arg part) ])
          (Partition.domain arg)
      in
      print_endline
        (Ascii.table
           ~title:(Printf.sprintf "Input coverage of %s" (Arg_class.name arg))
           ~headers:[ "partition"; name_a; name_b ]
           rows))
    [ Arg_class.Lseek_whence; Arg_class.Setxattr_flags; Arg_class.Chmod_mode ];
  (* output coverage beyond open *)
  List.iter
    (fun base ->
      print_endline (Report.output_figure ~base ~name_a ~cov_a ~name_b ~cov_b))
    [ Model.Write; Model.Setxattr ]

(* --- S2: a third tester (LTP) through the same lens --- *)

let s2_ltp () =
  heading "S2" "Extension: LTP through IOCov (errno-driven testing profile)";
  let _, xf = Lazy.force suite_runs in
  Printf.printf "running LTP simulator...\n%!";
  let ltp = Runner.run ~seed:!seed ~scale:!scale Runner.Ltp in
  Printf.printf "  %s events in %.1fs, %d oracle failures\n%!"
    (Ascii.si_count ltp.Runner.events_total) ltp.Runner.elapsed_s
    (List.length ltp.Runner.failures);
  let rows =
    List.map
      (fun base ->
        let ratio cov f = Printf.sprintf "%.0f%%" (100.0 *. f cov base) in
        [ Model.base_name base;
          ratio ltp.Runner.coverage Coverage.input_coverage_ratio_of_base;
          ratio xf.Runner.coverage Coverage.input_coverage_ratio_of_base;
          ratio ltp.Runner.coverage Coverage.output_coverage_ratio;
          ratio xf.Runner.coverage Coverage.output_coverage_ratio ])
      Model.all_bases
  in
  print_endline
    (Ascii.table
       ~title:
         (Printf.sprintf "coverage ratios at %s (LTP) vs %s (xfstests) events"
            (Ascii.si_count ltp.Runner.events_total)
            (Ascii.si_count xf.Runner.events_total))
       ~headers:[ "syscall"; "LTP input"; "XF input"; "LTP output"; "XF output" ]
       rows);
  print_endline
    (Report.output_figure ~base:Model.Open ~name_a:"LTP" ~cov_a:ltp.Runner.coverage
       ~name_b:"xfstests" ~cov_b:xf.Runner.coverage);
  print_endline
    "LTP's errno-driven cases rival xfstests' OUTPUT coverage at a vanishing\n\
     fraction of the execution volume, while its INPUT size coverage stays\n\
     narrow — two testers, two complementary gaps, one pair of metrics."

(* --- S3: coverage-preserving suite reduction --- *)

let s3_reduction () =
  heading "S3" "Extension: coverage-preserving test-suite reduction (greedy set cover)";
  let module Reduction = Iocov_core.Reduction in
  let items = ref [] in
  let coverage = Coverage.create () in
  Printf.printf "running xfstests with per-test coverage attribution...\n%!";
  let _ =
    Iocov_suites.Xfstests.run ~seed:!seed ~scale:0.2
      ~per_test:(fun name cov -> items := { Reduction.name; coverage = cov } :: !items)
      ~coverage ()
  in
  let items = List.rev !items in
  let selection = Reduction.greedy items in
  Printf.printf
    "%d of %d xfstests tests already reach every one of the %d partitions the\n\
     whole suite covers (domain: %d partitions).  The remaining %d tests add\n\
     only frequency — the paper's over-testing, made explicit.\n\n"
    (List.length selection.Reduction.chosen)
    (List.length items) selection.Reduction.total_covered selection.Reduction.universe
    (List.length items - List.length selection.Reduction.chosen);
  Printf.printf "first ten picks (by marginal coverage gain):\n  %s\n"
    (String.concat " "
       (List.filteri (fun i _ -> i < 10) selection.Reduction.chosen))

(* --- E10: fuzzer feedback comparison (paper future work:
   "evaluate fuzzing systems") --- *)

let e10_fuzzer () =
  heading "E10" "Fuzzing feedback: path-style vs IOCov-guided (future work)";
  let module Fuzzer = Iocov_suites.Fuzzer in
  let budget = max 500 (int_of_float (400.0 *. !scale)) in
  Printf.printf "one mutation engine, two feedback signals, %d executions each...\n%!" budget;
  let outcome, partition = Fuzzer.compare_feedbacks ~seed:!seed ~budget () in
  let rows =
    List.filter_map
      (fun ((e, a), (_, b)) ->
        if e mod (budget / 8) < 50 || e = budget then
          Some [ Ascii.si_count e; string_of_int a; string_of_int b ]
        else None)
      (List.combine outcome.Fuzzer.growth partition.Fuzzer.growth)
  in
  print_endline
    (Ascii.table
       ~headers:[ "executions"; "outcome-novelty"; "partition-novelty (IOCov)" ]
       rows);
  Printf.printf
    "final: outcome-novelty %d partitions (corpus %d); IOCov-guided %d (corpus %d)\n"
    (Fuzzer.covered_partitions outcome.Fuzzer.coverage)
    outcome.Fuzzer.corpus_size
    (Fuzzer.covered_partitions partition.Fuzzer.coverage)
    partition.Fuzzer.corpus_size;
  print_endline
    "Fuzzing guided by the paper's input/output-coverage metric retains the\n\
     boundary stepping stones that path-style novelty discards, and covers\n\
     strictly more of the partitioned input space for the same budget —\n\
     the related-work critique of path-coverage fuzzers, measured."

(* --- shared by E9/E11: synthetic traces, wall clocks, JSON output --- *)

(* A mixed synthetic trace shaped like a suite run: mostly data-path
   calls under the mount, a tail of out-of-mount noise the filter must
   reject, and a sprinkling of error outcomes.  Deterministic in the
   seed, so every --jobs sweep replays the identical event list. *)
let synth_events n =
  let rng = Prng.create ~seed:(!seed + 101) in
  let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ] in
  let creat_rw = Open_flags.of_flags Open_flags.[ O_RDWR; O_CREAT ] in
  let append_w = Open_flags.of_flags Open_flags.[ O_WRONLY; O_APPEND ] in
  let mk seq =
    let inside = Prng.chance rng 0.8 in
    let path =
      if inside then
        Printf.sprintf "/mnt/test/d%d/f%d" (Prng.int rng 40) (Prng.int rng 4000)
      else Printf.sprintf "/var/tmp/noise%d" (Prng.int rng 1000)
    in
    let fd = 3 + Prng.int rng 60 in
    let call, outcome =
      match Prng.int rng 8 with
      | 0 ->
        let flags = Prng.choose rng [| rdonly; creat_rw; append_w |] in
        (Model.open_ ~flags ~mode:0o644 path, Model.Ret fd)
      | 1 -> (Model.open_ ~flags:rdonly ~mode:0 path, Model.Err Errno.ENOENT)
      | 2 ->
        let count = Prng.pow2_size rng ~max_log2:20 in
        (Model.read ~fd ~count (), Model.Ret count)
      | 3 | 4 ->
        let count = Prng.pow2_size rng ~max_log2:22 in
        let variant = if Prng.bool rng then Model.Sys_write else Model.Sys_pwrite64 in
        let offset = if variant = Model.Sys_pwrite64 then Some (Prng.int rng 100_000) else None in
        (Model.write ~variant ?offset ~fd ~count (), Model.Ret count)
      | 5 ->
        let whence = Prng.choose rng Whence.[| SEEK_SET; SEEK_CUR; SEEK_END |] in
        (Model.lseek ~fd ~offset:(Prng.int rng 1_000_000) ~whence, Model.Ret 0)
      | 6 ->
        ( Model.truncate ~target:(Model.Path path) ~length:(Prng.pow2_size rng ~max_log2:24) (),
          Model.Ret 0 )
      | _ -> (Model.chmod ~target:(Model.Path path) ~mode:(Prng.int rng 0o7777) (), Model.Ret 0)
    in
    {
      Event.seq;
      timestamp_ns = seq * 173;
      pid = 1000 + Prng.int rng 8;
      comm = "bench";
      payload = Event.Tracked call;
      outcome;
      path_hint = Some path;
    }
  in
  List.init n mk

(* The replay-side counterpart: a trace with the string locality of a
   real suite run, where a few thousand files under the mount are
   reopened and rewritten all run long.  Nearly every path is a
   string-table reference, so this measures the decoder's sustained
   rate rather than its interning throughput — the shape the ROADMAP's
   events/s target is stated against. *)
let synth_hot_events n =
  let rng = Prng.create ~seed:(!seed + 103) in
  let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ] in
  let mk seq =
    let path = Printf.sprintf "/mnt/test/d%d/f%d" (Prng.int rng 8) (Prng.int rng 500) in
    let fd = 3 + Prng.int rng 60 in
    let call, outcome =
      match Prng.int rng 8 with
      | 0 -> (Model.open_ ~flags:rdonly ~mode:0o644 path, Model.Ret fd)
      | 1 -> (Model.open_ ~flags:rdonly ~mode:0 path, Model.Err Errno.ENOENT)
      | 2 -> (Model.read ~fd ~count:(Prng.pow2_size rng ~max_log2:20) (), Model.Ret 4096)
      | 3 | 4 ->
        ( Model.write ~variant:Model.Sys_write ~fd ~count:(Prng.pow2_size rng ~max_log2:22) (),
          Model.Ret 100 )
      | 5 ->
        (Model.lseek ~fd ~offset:(Prng.int rng 1_000_000) ~whence:Whence.SEEK_SET, Model.Ret 0)
      | 6 ->
        ( Model.truncate ~target:(Model.Path path) ~length:(Prng.pow2_size rng ~max_log2:24) (),
          Model.Ret 0 )
      | _ -> (Model.chmod ~target:(Model.Path path) ~mode:(Prng.int rng 0o7777) (), Model.Ret 0)
    in
    {
      Event.seq;
      timestamp_ns = seq * 173;
      pid = 1000 + Prng.int rng 8;
      comm = "bench";
      payload = Event.Tracked call;
      outcome;
      path_hint = Some path;
    }
  in
  List.init n mk

let timed_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path body =
  Out_channel.with_open_text path (fun oc -> output_string oc body);
  Printf.printf "machine-readable results written to %s\n" path

(* --- E9: performance of the pipeline itself --- *)

let perf_benches () =
  heading "E9" "Pipeline performance (Bechamel, monotonic clock)";
  let open Bechamel in
  let fs = Iocov_vfs.Fs.create () in
  ignore (Iocov_vfs.Fs.exec fs (Model.mkdir ~mode:0o755 "/mnt"));
  ignore (Iocov_vfs.Fs.exec fs (Model.mkdir ~mode:0o755 "/mnt/test"));
  ignore
    (Iocov_vfs.Fs.exec fs
       (Model.open_ ~mode:0o644
          ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ])
          "/mnt/test/bench"));
  let traced_fs = Iocov_vfs.Fs.create () in
  let tracer = Iocov_trace.Tracer.create traced_fs in
  let coverage = Coverage.create () in
  let filter = Iocov_trace.Filter.mount_point "/mnt/test" in
  Iocov_trace.Tracer.on_event tracer
    (Iocov_trace.Filter.sink filter (fun e ->
         match e.Iocov_trace.Event.payload with
         | Iocov_trace.Event.Tracked call ->
           Coverage.observe coverage call e.Iocov_trace.Event.outcome
         | Iocov_trace.Event.Aux _ -> ()));
  ignore (Iocov_trace.Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt"));
  ignore (Iocov_trace.Tracer.exec tracer (Model.mkdir ~mode:0o755 "/mnt/test"));
  ignore
    (Iocov_trace.Tracer.exec tracer
       (Model.open_ ~mode:0o644
          ~flags:(Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ])
          "/mnt/test/bench"));
  (* fixed-offset write: repeated appends would grow the file without
     bound and measure extent-list growth instead of the steady state *)
  let write_call = Model.write ~variant:Model.Sys_pwrite64 ~offset:0 ~fd:3 ~count:4096 () in
  let regex = Iocov_regex.Engine.compile_exn "^/mnt/test(/|$)" in
  let sample_line =
    "[1622] pid=1000 comm=\"xfstests\" open(path=\"/mnt/test/a\", flags=O_RDONLY, \
     mode=0o0) -> ok:3 hint=\"/mnt/test/a\""
  in
  let freqs = Array.init 21 (fun i -> i * 997) in
  let tests =
    [ Test.make ~name:"vfs: write 4KiB (bare)" (Staged.stage (fun () ->
          ignore (Iocov_vfs.Fs.exec fs write_call)));
      Test.make ~name:"vfs: write 4KiB (traced+IOCov)" (Staged.stage (fun () ->
          ignore (Iocov_trace.Tracer.exec tracer write_call)));
      Test.make ~name:"analyzer: Coverage.observe" (Staged.stage (fun () ->
          Coverage.observe coverage write_call (Model.Ret 4096)));
      Test.make ~name:"trace: parse one record (text)" (Staged.stage (fun () ->
          ignore (Iocov_trace.Format_io.of_line sample_line)));
      Test.make ~name:"trace: parse one record (text, reference)" (Staged.stage (fun () ->
          ignore (Iocov_trace.Format_io.of_line_reference sample_line)));
      Test.make ~name:"filter: regex search on a hint" (Staged.stage (fun () ->
          ignore (Iocov_regex.Engine.search regex "/mnt/test/dir/file")));
      Test.make ~name:"metric: TCD over 21 partitions" (Staged.stage (fun () ->
          ignore (Tcd.tcd_uniform ~frequencies:freqs ~target:5237.0))) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let measured =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let analyzed = Analyze.all ols instance results in
        let est =
          Hashtbl.fold
            (fun _ v acc ->
              match Analyze.OLS.estimates v with
              | Some [ e ] -> e
              | _ -> acc)
            analyzed 0.0
        in
        (name, est))
      tests
  in
  print_endline
    (Ascii.table ~headers:[ "operation"; "cost" ]
       (List.map (fun (name, est) -> [ name; Printf.sprintf "%.0f ns/op" est ]) measured));
  print_endline
    "The traced+IOCov write includes the full pipeline: VFS execution, event\n\
     construction, mount-point filtering, and coverage accumulation — the\n\
     'low-overhead tracing' requirement of Section 3.";
  (* sequential replay throughput: the baseline the --jobs sweep of E11
     is judged against — expressed as the declarative pipeline it is *)
  let replay_n = 200_000 in
  let events = synth_events replay_n in
  let filter = Filter.mount_point "/mnt/test" in
  let product, dt =
    timed_wall (fun () ->
        pipe_run ~stages:[ Stage.filter filter ] (Source.events events))
  in
  let events_per_s = float_of_int replay_n /. dt in
  Printf.printf "\nsequential replay: %s events in %.2fs (%s events/s, %s kept)\n"
    (Ascii.si_count replay_n) dt
    (Ascii.si_count (int_of_float events_per_s))
    (Ascii.si_count product.Sink.kept);
  (* per-stage cost: each compiled batch transform in isolation over
     the same trace, batched as the worker shards would see it *)
  let batches =
    let rec go acc = function
      | [] -> List.rev acc
      | evs ->
        let rec take k got rest =
          if k = 0 then (List.rev got, rest)
          else
            match rest with
            | [] -> (List.rev got, [])
            | e :: tl -> take (k - 1) (e :: got) tl
        in
        let head, tail = take Replay.default_batch [] evs in
        go (head :: acc) tail
    in
    go [] events
  in
  let time_stage stage =
    let transform =
      match Stage.compile [ stage ] with
      | Some f, None -> Filter.keep_all f
      | None, Some t -> t
      | _ -> fun evs -> evs
    in
    let (), st_dt =
      timed_wall (fun () -> List.iter (fun b -> ignore (transform b)) batches)
    in
    (Stage.name stage, st_dt, float_of_int replay_n /. st_dt)
  in
  let stage_rows =
    List.map time_stage
      [ Stage.filter filter;
        Stage.map ~name:"map-identity" Option.some;
        Stage.meter "bench" ]
  in
  print_endline "per-stage pipeline cost (compiled batch transforms):";
  List.iter
    (fun (name, st_dt, rate) ->
      Printf.printf "  %-14s %.3fs (%s events/s)\n" name st_dt
        (Ascii.si_count (int_of_float rate)))
    stage_rows;
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-pipeline/3\",\n  \"seed\": %d,\n  \"benches\": [\n%s\n  \
       ],\n  \"sequential_replay\": { \"events\": %d, \"elapsed_s\": %.4f, \"events_per_s\": \
       %.0f },\n  \"pipeline_stages\": [\n%s\n  ]\n}\n"
      !seed
      (String.concat ",\n"
         (List.map
            (fun (name, est) ->
              Printf.sprintf "    { \"name\": \"%s\", \"ns_per_op\": %.1f }"
                (json_escape name) est)
            measured))
      replay_n dt events_per_s
      (String.concat ",\n"
         (List.map
            (fun (name, st_dt, rate) ->
              Printf.sprintf
                "    { \"stage\": \"%s\", \"elapsed_s\": %.4f, \"events_per_s\": %.0f }"
                (json_escape name) st_dt rate)
            stage_rows))
  in
  write_json "BENCH_pipeline.json" body

(* --- E11: the parallel sharded pipeline --- *)

let e11_parallel () =
  heading "E11" "Parallel sharded replay: --jobs sweep, filter fast path";
  let n = 1_000_000 in
  Printf.printf "generating a %s-event synthetic trace...\n%!" (Ascii.si_count n);
  let events = synth_events n in
  let filter = Filter.mount_point "/mnt/test" in
  Printf.printf "hardware: Domain.recommended_domain_count = %d\n%!"
    (Domain.recommended_domain_count ());
  let baseline_snap = ref "" in
  let baseline_rate = ref 0.0 in
  let sweep =
    List.map
      (fun jobs ->
        let product, dt =
          timed_wall (fun () ->
              pipe_run
                ~config:(Driver.config ~jobs ())
                ~stages:[ Stage.filter filter ]
                (Source.events events))
        in
        let snap = Snapshot.to_string product.Sink.coverage in
        if jobs = 1 then begin
          baseline_snap := snap;
          baseline_rate := float_of_int n /. dt
        end;
        let identical = String.equal snap !baseline_snap in
        let rate = float_of_int n /. dt in
        Printf.printf
          "  jobs=%d: %.2fs (%s events/s, %.2fx vs jobs=1), coverage %s\n%!" jobs dt
          (Ascii.si_count (int_of_float rate))
          (rate /. !baseline_rate)
          (if identical then "identical" else "DIFFERS");
        (jobs, dt, rate, identical, product.Sink.kept))
      [ 1; 2; 4; 8 ]
  in
  (* the filter fast path: literal-prefix pre-check vs the plain
     backtracking scan, over a path corpus shaped like the trace's *)
  let regex = Iocov_regex.Engine.compile_exn "^/mnt/test(/|$)" in
  let corpus =
    Array.init 4096 (fun i ->
        if i mod 5 < 4 then Printf.sprintf "/mnt/test/d%d/f%d" (i mod 40) i
        else Printf.sprintf "/var/tmp/noise%d" i)
  in
  let reps = 500 in
  let bench_ns f =
    let (), dt =
      timed_wall (fun () ->
          for _ = 1 to reps do
            Array.iter (fun p -> ignore (f p)) corpus
          done)
    in
    dt *. 1e9 /. float_of_int (reps * Array.length corpus)
  in
  let fast_ns = bench_ns (fun p -> Iocov_regex.Engine.search regex p) in
  let scan_ns = bench_ns (fun p -> Iocov_regex.Engine.search_scan regex p) in
  Printf.printf "filter search: fast path %.0f ns, plain scan %.0f ns (%.1fx)\n" fast_ns
    scan_ns (scan_ns /. fast_ns);
  (* batched keep_all throughput on the worker-side batch size *)
  let rec chunk acc = function
    | [] -> List.rev acc
    | events ->
      let rec take k got rest =
        if k = 0 then (List.rev got, rest)
        else match rest with [] -> (List.rev got, []) | e :: tl -> take (k - 1) (e :: got) tl
      in
      let head, tail = take Replay.default_batch [] events in
      chunk (head :: acc) tail
  in
  let batches = chunk [] events in
  let (), keep_dt =
    timed_wall (fun () -> List.iter (fun b -> ignore (Filter.keep_all filter b)) batches)
  in
  let keep_rate = float_of_int n /. keep_dt in
  Printf.printf "Filter.keep_all: %s events/s in %d-event batches\n"
    (Ascii.si_count (int_of_float keep_rate))
    Replay.default_batch;
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-parallel/1\",\n  \"seed\": %d,\n  \
       \"recommended_domain_count\": %d,\n  \"trace_events\": %d,\n  \"replay\": [\n%s\n  \
       ],\n  \"filter\": {\n    \"pattern\": \"%s\",\n    \"fast_path_ns_per_search\": %.1f,\n    \
       \"scan_ns_per_search\": %.1f,\n    \"fast_path_speedup\": %.2f,\n    \
       \"keep_all_events_per_s\": %.0f\n  }\n}\n"
      !seed
      (Domain.recommended_domain_count ())
      n
      (String.concat ",\n"
         (List.map
            (fun (jobs, dt, rate, identical, kept) ->
              Printf.sprintf
                "    { \"jobs\": %d, \"elapsed_s\": %.4f, \"events_per_s\": %.0f, \
                 \"speedup_vs_jobs1\": %.3f, \"events_kept\": %d, \"coverage_identical\": %b }"
                jobs dt rate (rate /. !baseline_rate) kept identical)
            sweep))
      (json_escape "^/mnt/test(/|$)")
      fast_ns scan_ns (scan_ns /. fast_ns) keep_rate
  in
  write_json "BENCH_parallel.json" body

(* --- E12: coverage counter backends — compiled dense plan vs reference --- *)

let e12_coverage () =
  heading "E12" "Coverage counters: compiled dense plan vs reference histograms";
  let n = !coverage_events in
  Printf.printf "generating a %s-event synthetic trace...\n%!" (Ascii.si_count n);
  let events = synth_events n in
  (* pre-decode to (call, outcome) pairs so the single-thread loops
     measure pure observe throughput — no filtering, no batching *)
  let rev_pairs = ref [] in
  Event.iter_tracked events (fun c o -> rev_pairs := (c, o) :: !rev_pairs);
  let pairs = Array.of_list (List.rev !rev_pairs) in
  let m = Array.length pairs in
  Printf.printf "plan: %d cells; %s tracked observations per pass\n%!"
    Iocov_core.Plan.total (Ascii.si_count m);
  let run_dense () =
    let d = Coverage.Dense.create () in
    let (), dt =
      timed_wall (fun () ->
          Array.iter (fun (c, o) -> Coverage.Dense.observe d c o) pairs)
    in
    (d, dt)
  in
  let run_reference () =
    let cov = Coverage.create () in
    let (), dt =
      timed_wall (fun () -> Array.iter (fun (c, o) -> Coverage.observe cov c o) pairs)
    in
    (cov, dt)
  in
  (* one warm-up pass each, then the measured pass *)
  ignore (run_dense ());
  ignore (run_reference ());
  let dense_acc, dense_dt = run_dense () in
  let ref_acc, ref_dt = run_reference () in
  let dense_rate = float_of_int m /. dense_dt in
  let ref_rate = float_of_int m /. ref_dt in
  let speedup = ref_dt /. dense_dt in
  let single_identical = Snapshot.equal (Coverage.Dense.to_reference dense_acc) ref_acc in
  Printf.printf "  dense:     %.3fs (%s observes/s)\n" dense_dt
    (Ascii.si_count (int_of_float dense_rate));
  Printf.printf "  reference: %.3fs (%s observes/s)\n" ref_dt
    (Ascii.si_count (int_of_float ref_rate));
  Printf.printf "  speedup %.2fx, snapshots %s\n%!" speedup
    (if single_identical then "identical" else "DIFFER");
  (* the same trace through the sharded pipeline, both backends *)
  let filter = Filter.mount_point "/mnt/test" in
  let counters_name = function Replay.Dense -> "dense" | Replay.Reference -> "reference" in
  let baseline_snap = ref "" in
  let sweep =
    List.concat_map
      (fun jobs ->
        List.map
          (fun counters ->
            let product, dt =
              timed_wall (fun () ->
                  pipe_run
                    ~config:(Driver.config ~jobs ~counters ())
                    ~stages:[ Stage.filter filter ]
                    (Source.events events))
            in
            let snap = Snapshot.to_string product.Sink.coverage in
            if !baseline_snap = "" then baseline_snap := snap;
            let identical = String.equal snap !baseline_snap in
            let rate = float_of_int n /. dt in
            Printf.printf
              "  jobs=%d %-9s: %.2fs (%s events/s), coverage %s\n%!" jobs
              (counters_name counters) dt
              (Ascii.si_count (int_of_float rate))
              (if identical then "identical" else "DIFFERS");
            (jobs, counters_name counters, dt, rate, identical))
          [ Replay.Reference; Replay.Dense ])
      [ 1; 2; 4 ]
  in
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-coverage/1\",\n  \"seed\": %d,\n  \"trace_events\": %d,\n  \
       \"tracked_observations\": %d,\n  \"plan_cells\": %d,\n  \"single_thread\": {\n    \
       \"dense\": { \"elapsed_s\": %.4f, \"observes_per_s\": %.0f },\n    \
       \"reference\": { \"elapsed_s\": %.4f, \"observes_per_s\": %.0f },\n    \
       \"speedup_dense_vs_reference\": %.3f,\n    \"snapshot_identical\": %b\n  },\n  \
       \"pipeline\": [\n%s\n  ]\n}\n"
      !seed n m Iocov_core.Plan.total dense_dt dense_rate ref_dt ref_rate speedup
      single_identical
      (String.concat ",\n"
         (List.map
            (fun (jobs, name, dt, rate, identical) ->
              Printf.sprintf
                "    { \"jobs\": %d, \"counters\": \"%s\", \"elapsed_s\": %.4f, \
                 \"events_per_s\": %.0f, \"coverage_identical\": %b }"
                jobs name dt rate identical)
            sweep))
  in
  write_json "BENCH_coverage.json" body

(* --- E13: fault-tolerant ingestion — what robustness costs --- *)

let e13_robustness () =
  heading "E13" "Fault tolerance: CRC framing, lenient ingest, and checkpoint overhead";
  let n = min !coverage_events 500_000 in
  Printf.printf "generating a %s-event synthetic trace...\n%!" (Ascii.si_count n);
  let events = synth_events n in
  let filter = Filter.mount_point "/mnt/test" in
  let with_trace ?(events = events) version f =
    let path = Filename.temp_file "iocov_bench" ".trace" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin path in
        let w = Iocov_trace.Binary_io.writer ~version oc in
        List.iter (Iocov_trace.Binary_io.sink w) events;
        Iocov_trace.Binary_io.flush w;
        close_out oc;
        f path)
  in
  let run ?ingest ?checkpoint path =
    let sinks =
      match checkpoint with
      | Some (ckpt, every) -> [ Sink.checkpoint ~path:ckpt ~every ]
      | None -> []
    in
    timed_wall (fun () ->
        pipe_run
          ~config:(Driver.config ?ingest ())
          ~stages:[ Stage.filter filter ] ~sinks (Source.file path))
  in
  let rate dt = float_of_int n /. dt in
  with_trace 1 @@ fun v1_path ->
  with_trace 2 @@ fun v2_path ->
  with_trace 3 @@ fun v3_path ->
  with_trace ~events:(synth_hot_events n) 3 @@ fun hot_path ->
  let v1_size = (Unix.stat v1_path).Unix.st_size in
  let v2_size = (Unix.stat v2_path).Unix.st_size in
  let v3_size = (Unix.stat v3_path).Unix.st_size in
  ignore (run v2_path) (* warm-up *);
  let _, v1_dt = run v1_path in
  let _, strict_dt = run v2_path in
  let _, lenient_dt = run ~ingest:(Replay.Lenient Iocov_util.Anomaly.Unlimited) v2_path in
  (* v3 on the fused single-core path (jobs=1, dense counters) *)
  ignore (run v3_path) (* warm-up *);
  let _, v3_dt = run v3_path in
  let _, v3_lenient_dt =
    run ~ingest:(Replay.Lenient Iocov_util.Anomaly.Unlimited) v3_path
  in
  (* raw batch decode, no replay machinery: the format's own ceiling.
     Best of three, so one scheduler hiccup doesn't misreport the
     sustained rate of a sub-100ms measurement. *)
  let drain_wall path =
    let once () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Iocov_trace.Binary_io.open_stream ic with
          | Error msg -> failwith ("v3 drain: " ^ msg)
          | Ok st ->
            let (), dt =
              timed_wall (fun () ->
                  let continue = ref true in
                  while !continue do
                    match
                      Iocov_trace.Binary_io.drain_batch st
                        ~on_call:(fun _ _ -> ())
                        ~max:8192 ()
                    with
                    | Ok d ->
                      if d.Iocov_trace.Binary_io.dr_produced = 0 then continue := false
                    | Error msg -> failwith ("v3 drain: " ^ msg)
                  done)
            in
            dt)
    in
    let best = ref (once ()) in
    for _ = 1 to 2 do
      let dt = once () in
      if dt < !best then best := dt
    done;
    !best
  in
  let v3_drain_dt = drain_wall v3_path in
  (* writer throughput: encode + frame + emit the same events to disk,
     best of three — the buffered single-envelope emit path *)
  let writer_wall version =
    let once () =
      let path = Filename.temp_file "iocov_bench" ".trace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              let w = Iocov_trace.Binary_io.writer ~version oc in
              let (), dt =
                timed_wall (fun () ->
                    List.iter (Iocov_trace.Binary_io.sink w) events;
                    Iocov_trace.Binary_io.flush w)
              in
              dt))
    in
    let best = ref (once ()) in
    for _ = 1 to 2 do
      let dt = once () in
      if dt < !best then best := dt
    done;
    !best
  in
  let v3_writer_dt = writer_wall 3 in
  (* the hot-locality trace: zero-copy decode and full fused replay at
     suite-run string locality — the ROADMAP ≥10M events/s shape *)
  let hot_drain_dt = drain_wall hot_path in
  ignore (run hot_path) (* warm-up *);
  let _, hot_fused_dt = run hot_path in
  let ckpt_path = Filename.temp_file "iocov_bench" ".ckpt" in
  let (_, ckpt_dt) =
    Fun.protect
      ~finally:(fun () -> try Sys.remove ckpt_path with Sys_error _ -> ())
      (fun () ->
        run ~checkpoint:(ckpt_path, max 1 (n / 10)) v2_path)
  in
  let v3_ckpt_path = Filename.temp_file "iocov_bench" ".ckpt" in
  let (_, v3_ckpt_dt) =
    Fun.protect
      ~finally:(fun () -> try Sys.remove v3_ckpt_path with Sys_error _ -> ())
      (fun () ->
        run ~checkpoint:(v3_ckpt_path, max 1 (n / 10)) v3_path)
  in
  (* flip one byte per ~1000 frames and measure degraded-mode replay *)
  let corrupt, corrupt_dt, skipped =
    let b =
      let ic = open_in_bin v2_path in
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      close_in ic;
      b
    in
    let rng = Prng.create ~seed:(!seed + 13) in
    let flips = max 1 (n / 1000) in
    for _ = 1 to flips do
      let off = 8 + Prng.int rng (Bytes.length b - 8) in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40))
    done;
    let path = Filename.temp_file "iocov_bench" ".trace" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        let o, dt = run ~ingest:(Replay.Lenient Iocov_util.Anomaly.Unlimited) path in
        (flips, dt, o.Sink.completeness.Iocov_util.Anomaly.records_skipped))
  in
  let pct v = 100.0 *. (float_of_int (v - v1_size) /. float_of_int v1_size) in
  Printf.printf
    "  trace size:     v1 %s B, v2 %s B (%+.1f%%), v3 %s B (%+.1f%% vs v1)\n"
    (Ascii.si_count v1_size) (Ascii.si_count v2_size) (pct v2_size)
    (Ascii.si_count v3_size) (pct v3_size);
  Printf.printf "  v1 strict:      %.3fs (%s events/s)\n" v1_dt
    (Ascii.si_count (int_of_float (rate v1_dt)));
  Printf.printf "  v2 strict:      %.3fs (%s events/s)\n" strict_dt
    (Ascii.si_count (int_of_float (rate strict_dt)));
  Printf.printf "  v2 lenient:     %.3fs (%s events/s, clean trace)\n" lenient_dt
    (Ascii.si_count (int_of_float (rate lenient_dt)));
  Printf.printf "  v2 checkpointed:%.3fs (%s events/s, 10 checkpoints)\n" ckpt_dt
    (Ascii.si_count (int_of_float (rate ckpt_dt)));
  Printf.printf "  v2 degraded:    %.3fs (%d flips, %d records skipped)\n" corrupt_dt
    corrupt skipped;
  Printf.printf "  v3 fused:       %.3fs (%s events/s, strict, jobs=1)\n" v3_dt
    (Ascii.si_count (int_of_float (rate v3_dt)));
  Printf.printf "  v3 lenient:     %.3fs (%s events/s, clean trace)\n" v3_lenient_dt
    (Ascii.si_count (int_of_float (rate v3_lenient_dt)));
  Printf.printf "  v3 checkpointed:%.3fs (%s events/s, 10 checkpoints)\n" v3_ckpt_dt
    (Ascii.si_count (int_of_float (rate v3_ckpt_dt)));
  Printf.printf "  v3 drain:       %.3fs (%s events/s, batch decode only)\n"
    v3_drain_dt
    (Ascii.si_count (int_of_float (rate v3_drain_dt)));
  Printf.printf "  v3 writer:      %.3fs (%s events/s, encode + frame + emit)\n"
    v3_writer_dt
    (Ascii.si_count (int_of_float (rate v3_writer_dt)));
  Printf.printf "  v3 drain hot:   %.3fs (%s events/s, batch decode, hot-locality trace)\n"
    hot_drain_dt
    (Ascii.si_count (int_of_float (rate hot_drain_dt)));
  Printf.printf "  v3 fused hot:   %.3fs (%s events/s, full replay, hot-locality trace)\n%!"
    hot_fused_dt
    (Ascii.si_count (int_of_float (rate hot_fused_dt)));
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-robustness/4\",\n  \"seed\": %d,\n  \
       \"trace_events\": %d,\n  \"bytes_v1\": %d,\n  \"bytes_v2\": %d,\n  \
       \"bytes_v3\": %d,\n  \
       \"framing_overhead_pct\": %.2f,\n  \
       \"framing_overhead_v3_pct\": %.2f,\n  \
       \"v1_strict\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v2_strict\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v2_lenient_clean\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v2_checkpointed\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v2_lenient_corrupt\": { \"elapsed_s\": %.4f, \"flips\": %d, \
       \"records_skipped\": %d },\n  \
       \"v3_fused\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_lenient_clean\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_checkpointed\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_drain\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_writer\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_drain_hot\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"v3_fused_hot\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f }\n}\n"
      !seed n v1_size v2_size v3_size (pct v2_size) (pct v3_size)
      v1_dt (rate v1_dt) strict_dt (rate strict_dt) lenient_dt (rate lenient_dt)
      ckpt_dt (rate ckpt_dt) corrupt_dt corrupt skipped
      v3_dt (rate v3_dt) v3_lenient_dt (rate v3_lenient_dt)
      v3_ckpt_dt (rate v3_ckpt_dt) v3_drain_dt (rate v3_drain_dt)
      v3_writer_dt (rate v3_writer_dt)
      hot_drain_dt (rate hot_drain_dt) hot_fused_dt (rate hot_fused_dt)
  in
  write_json "BENCH_robustness.json" body

(* --- the format gate: quick pass/fail smoke for CI --- *)

let format_bench () =
  heading "FMT" "Format gate: v3 compactness, cross-format and scanner equivalence";
  let n = 20_000 in
  let events = synth_events n in
  let filter = Filter.mount_point "/mnt/test" in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        incr failures;
        Printf.printf "  FAIL: %s\n" m)
      fmt
  in
  let with_file write f =
    let path = Filename.temp_file "iocov_fmt" ".trace" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        write path;
        f path)
  in
  let write_binary version path =
    let oc = open_out_bin path in
    let w = Iocov_trace.Binary_io.writer ~version oc in
    List.iter (Iocov_trace.Binary_io.sink w) events;
    Iocov_trace.Binary_io.flush w;
    close_out oc
  in
  let write_text path =
    Out_channel.with_open_text path (fun oc ->
        List.iter (Iocov_trace.Format_io.sink_channel oc) events)
  in
  with_file (write_binary 1) @@ fun v1 ->
  with_file (write_binary 2) @@ fun v2 ->
  with_file (write_binary 3) @@ fun v3 ->
  with_file write_text @@ fun txt ->
  let size p = (Unix.stat p).Unix.st_size in
  let s1 = size v1 and s2 = size v2 and s3 = size v3 and st = size txt in
  Printf.printf "  bytes: text %d, v1 %d, v2 %d, v3 %d (v3 = %.1f%% of v1)\n" st s1 s2
    s3
    (100.0 *. float_of_int s3 /. float_of_int s1);
  if s3 >= s1 then fail "v3 (%d B) is not smaller than v1 (%d B)" s3 s1;
  (* cross-format differential: every carrier yields the same snapshot *)
  let snap path =
    Snapshot.to_string
      (pipe_run ~stages:[ Stage.filter filter ] (Source.file path)).Sink.coverage
  in
  let ref_snap = snap txt in
  List.iter
    (fun (name, path) ->
      if snap path <> ref_snap then fail "%s snapshot diverges from text" name)
    [ ("v1", v1); ("v2", v2); ("v3", v3) ];
  (* scanner differential: fast and reference agree on every line *)
  let diverged = ref 0 in
  List.iter
    (fun e ->
      let line = Iocov_trace.Format_io.to_line e in
      match
        (Iocov_trace.Format_io.of_line line, Iocov_trace.Format_io.of_line_reference line)
      with
      | Ok x, Ok y
        when Iocov_trace.Format_io.to_line x = Iocov_trace.Format_io.to_line y ->
        ()
      | Error _, Error _ -> ()
      | _ -> incr diverged)
    events;
  if !diverged > 0 then fail "scanner diverges from reference on %d/%d lines" !diverged n;
  (* informational rates *)
  let lines = List.map Iocov_trace.Format_io.to_line events in
  let parse_ns f =
    let (), dt = timed_wall (fun () -> List.iter (fun l -> ignore (f l)) lines) in
    1e9 *. dt /. float_of_int n
  in
  Printf.printf "  text parse: fast %.0f ns/rec, reference %.0f ns/rec\n"
    (parse_ns (fun l -> Iocov_trace.Format_io.of_line l))
    (parse_ns (fun l -> Iocov_trace.Format_io.of_line_reference l));
  let ic = open_in_bin v3 in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match Iocov_trace.Binary_io.open_stream ic with
      | Error msg -> fail "v3 open_stream: %s" msg
      | Ok st ->
        let (), dt =
          timed_wall (fun () ->
              let continue = ref true in
              while !continue do
                match
                  Iocov_trace.Binary_io.drain_batch st
                    ~on_call:(fun _ _ -> ())
                    ~max:8192 ()
                with
                | Ok d ->
                  if d.Iocov_trace.Binary_io.dr_produced = 0 then continue := false
                | Error msg ->
                  fail "v3 drain: %s" msg;
                  continue := false
              done)
        in
        Printf.printf "  v3 drain: %s events/s\n"
          (Ascii.si_count (int_of_float (float_of_int n /. dt))));
  if !failures = 0 then Printf.printf "format gate: PASS\n%!"
  else begin
    Printf.printf "format gate: %d failure(s)\n%!" !failures;
    exit 1
  end

(* --- E14: the flight recorder — what watching a run costs --- *)

let e14_obs () =
  heading "E14" "Flight recorder: progress + ledger + timeline overhead on replay";
  let module Progress = Iocov_pipe.Progress in
  let module Ledger = Iocov_pipe.Ledger in
  let module Trace_event = Iocov_obs.Trace_event in
  let n = 1_000_000 in
  Printf.printf "generating a %s-event synthetic trace...\n%!" (Ascii.si_count n);
  let events = synth_events n in
  let filter = Filter.mount_point "/mnt/test" in
  let replay ?progress () =
    pipe_run
      ~config:(Driver.config ?progress ())
      ~stages:[ Stage.filter filter ]
      (Source.events events)
  in
  (* the CLI's default instrumentation: a progress snapshot every 10k
     events plus one ledger append per run *)
  let emitted_bytes = ref 0 in
  let progress =
    { Progress.every = Progress.default_every;
      format = Progress.Text;
      emit = (fun line -> emitted_bytes := !emitted_bytes + String.length line);
      budget = None }
  in
  let ledger_dir = Filename.temp_file "iocov_bench" ".ledger" in
  Sys.remove ledger_dir;
  let run_base () = ignore (replay ()) in
  let run_inst () =
    let product = replay ~progress () in
    let r =
      Ledger.make ~subcommand:"bench" ~label:"synthetic" ~flags:[] ~jobs:1
        ~counters:"dense" ~events:n ~kept:product.Sink.kept ~lost:0
        ~wall_s:0.0 ~stages:[] product.Sink.coverage
    in
    match Ledger.append ~dir:ledger_dir r with
    | Ok _ -> ()
    | Error msg -> failwith ("ledger append: " ^ msg)
  in
  let run_trace () = ignore (replay ~progress ())
  and timeline_events = ref 0
  and timeline_dropped = ref 0 in
  (* Interleaved min-of-9 with a GC barrier before each sample: the
     three configurations ride the same heap and scheduler drift, so a
     slow phase of the machine penalizes all of them alike rather than
     whichever block it landed on.  Min-of-k then discards the noise. *)
  let rounds = 9 in
  let base_dt = ref infinity and inst_dt = ref infinity and trace_dt = ref infinity in
  let sample best f =
    Gc.major ();
    let _, dt = timed_wall f in
    best := Float.min !best dt
  in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove (Ledger.path ~dir:ledger_dir) with Sys_error _ -> ());
      try Sys.rmdir ledger_dir with Sys_error _ -> ())
    (fun () ->
      run_base () (* warm-up *);
      for _ = 1 to rounds do
        sample base_dt run_base;
        sample inst_dt run_inst;
        Trace_event.start ();
        sample trace_dt run_trace;
        Trace_event.stop ();
        timeline_events := List.length (Trace_event.events ());
        timeline_dropped := Trace_event.dropped ();
        Trace_event.clear ()
      done);
  let base_dt = !base_dt and inst_dt = !inst_dt and trace_dt = !trace_dt in
  let timeline_events = !timeline_events and timeline_dropped = !timeline_dropped in
  let rate dt = float_of_int n /. dt in
  let pct dt = 100.0 *. (dt -. base_dt) /. base_dt in
  Printf.printf "  baseline replay:        %.3fs (%s events/s)\n" base_dt
    (Ascii.si_count (int_of_float (rate base_dt)));
  Printf.printf "  + progress + ledger:    %.3fs (%+.2f%%)\n" inst_dt (pct inst_dt);
  Printf.printf "  + timeline recording:   %.3fs (%+.2f%%, %d events, %d dropped)\n%!"
    trace_dt (pct trace_dt) timeline_events timeline_dropped;
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-obs/1\",\n  \"seed\": %d,\n  \
       \"trace_events\": %d,\n  \"progress_every\": %d,\n  \
       \"baseline\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"progress_ledger\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f, \
       \"overhead_pct\": %.2f },\n  \
       \"timeline\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f, \
       \"overhead_pct\": %.2f, \"timeline_events\": %d, \"timeline_dropped\": %d }\n}\n"
      !seed n Iocov_pipe.Progress.default_every base_dt (rate base_dt) inst_dt
      (rate inst_dt) (pct inst_dt) trace_dt (rate trace_dt) (pct trace_dt)
      timeline_events timeline_dropped
  in
  write_json "BENCH_obs.json" body

(* --- E16: the multi-tenant coverage service under a mixed workload --- *)

(* A YCSB-style mixed workload for `iocov serve`'s hub: N tenants
   ingesting distinct v3 traces concurrently while a query client
   interleaves digest/coverage/TCD reads against their epoch
   snapshots.  Three things are measured, two of them gated:

   - aggregate ingest throughput, gated within 2x of a single-stream
     fused replay of one trace (the epoch discipline's whole budget);
   - per-tenant digests, gated byte-identical to an offline
     [iocov analyze] of the same trace (the differential oracle);
   - query latency under ingest load (p50/p99) and the cost of one
     epoch publish (an O(cells) dense snapshot), reported. *)
let serve_bench () =
  heading "E16" "Serve: multi-tenant mixed ingest/query workload";
  let module Hub = Iocov_serve.Hub in
  let tenants = 8 in
  let per_tenant = max 20_000 (min 250_000 (!coverage_events / tenants)) in
  let total = tenants * per_tenant in
  let tenant_id i = Printf.sprintf "tenant%02d" i in
  Printf.printf "generating %d tenant traces x %s events...\n%!" tenants
    (Ascii.si_count per_tenant);
  (* distinct deterministic trace per tenant: rotate the harness seed *)
  let tenant_events =
    let base = !seed in
    let evs =
      Array.init tenants (fun i ->
          seed := base + (7 * i);
          synth_events per_tenant)
    in
    seed := base;
    evs
  in
  let write_trace events =
    let path = Filename.temp_file "iocov_bench" ".trace" in
    let oc = open_out_bin path in
    let w = Iocov_trace.Binary_io.writer ~version:3 oc in
    List.iter (Iocov_trace.Binary_io.sink w) events;
    Iocov_trace.Binary_io.flush w;
    close_out oc;
    path
  in
  let paths = Array.map write_trace tenant_events in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
  @@ fun () ->
  let filter = Filter.mount_point "/mnt/test" in
  (* offline truth: what `iocov analyze` would print for each trace *)
  let offline_digest path =
    Iocov_pipe.Ledger.digest
      (pipe_run ~stages:[ Stage.filter filter ] (Source.file path)).Sink.coverage
  in
  let offline = Array.map offline_digest paths in
  (* baseline: one fused single-stream replay, warm *)
  let replay path =
    timed_wall (fun () ->
        ignore (pipe_run ~stages:[ Stage.filter filter ] (Source.file path)))
  in
  ignore (replay paths.(0));
  let (), single_dt = replay paths.(0) in
  let single_rate = float_of_int per_tenant /. single_dt in
  Printf.printf "  single stream:  %.3fs (%s events/s, fused replay)\n%!" single_dt
    (Ascii.si_count (int_of_float single_rate));
  (* the mixed run: one ingest thread per tenant, one query client *)
  let hub = Hub.create ~mount:"/mnt/test" () in
  let remaining = Atomic.make tenants in
  let ingest_errors = ref [] in
  let err_lock = Mutex.create () in
  let ingest i () =
    (try
       let ic = open_in_bin paths.(i) in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           match Iocov_trace.Binary_io.open_stream ic with
           | Error msg -> failwith msg
           | Ok st ->
             let s = Hub.open_session hub ~tenant:(tenant_id i) () in
             Fun.protect
               ~finally:(fun () -> Hub.close_session s)
               (fun () ->
                 match Hub.ingest_stream s st with
                 | Ok () -> ()
                 | Error msg -> failwith msg))
     with e ->
       Mutex.lock err_lock;
       ingest_errors := Printf.sprintf "%s: %s" (tenant_id i) (Printexc.to_string e) :: !ingest_errors;
       Mutex.unlock err_lock);
    Atomic.decr remaining
  in
  let latencies = Hashtbl.create 4 in
  let lat_lock = Mutex.create () in
  let record kind dt =
    Mutex.lock lat_lock;
    (match Hashtbl.find_opt latencies kind with
     | Some r -> r := dt :: !r
     | None -> Hashtbl.add latencies kind (ref [ dt ]));
    Mutex.unlock lat_lock
  in
  let query_errs = ref 0 in
  let query_client () =
    let k = ref 0 in
    while Atomic.get remaining > 0 do
      let tenant = tenant_id (!k mod tenants) in
      let kind, q =
        match !k mod 3 with
        | 0 -> ("digest", Hub.Digest)
        | 1 -> ("coverage", Hub.Coverage)
        | _ -> ("tcd", Hub.Tcd "open.flags")
      in
      let t0 = Unix.gettimeofday () in
      (match Hub.query hub ~tenant q with
       | Ok _ -> record kind (Unix.gettimeofday () -. t0)
       | Error _ -> incr query_errs (* tenant not opened yet: not a latency *));
      incr k;
      Thread.delay 0.002
    done
  in
  let (), mixed_dt =
    timed_wall (fun () ->
        let workers = List.init tenants (fun i -> Thread.create (ingest i) ()) in
        let client = Thread.create query_client () in
        List.iter Thread.join workers;
        Thread.join client)
  in
  if !ingest_errors <> [] then begin
    List.iter (Printf.printf "  ingest FAILED: %s\n") !ingest_errors;
    exit 1
  end;
  let mixed_rate = float_of_int total /. mixed_dt in
  let slowdown = single_rate /. mixed_rate in
  Printf.printf "  mixed (%d tenants): %.3fs (%s events/s aggregate, %.2fx single)\n%!"
    tenants mixed_dt
    (Ascii.si_count (int_of_float mixed_rate))
    slowdown;
  (* the differential gate: every tenant's epoch digest must be byte-
     identical to the offline analyze of the same trace *)
  let per_tenant_rows =
    Array.to_list
      (Array.mapi
         (fun i off ->
           let served =
             match Hub.digest hub ~tenant:(tenant_id i) with
             | Some d -> d
             | None -> "<missing>"
           in
           (tenant_id i, served, off, served = off))
         offline)
  in
  let all_match = List.for_all (fun (_, _, _, m) -> m) per_tenant_rows in
  List.iter
    (fun (t, served, off, m) ->
      if not m then
        Printf.printf "  DIGEST MISMATCH %s: serve %s vs offline %s\n" t served off)
    per_tenant_rows;
  Printf.printf "  digests: %s (%d tenants vs offline analyze)\n"
    (if all_match then "identical" else "MISMATCH") tenants;
  (* query latency percentiles, in microseconds *)
  let percentile p xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    if Array.length a = 0 then 0.0
    else a.(min (Array.length a - 1)
              (int_of_float ((p *. float_of_int (Array.length a - 1)) +. 0.5)))
  in
  let kinds =
    List.filter_map
      (fun kind ->
        match Hashtbl.find_opt latencies kind with
        | None -> None
        | Some r ->
          let xs = !r in
          Some
            ( kind,
              List.length xs,
              1e6 *. percentile 0.5 xs,
              1e6 *. percentile 0.99 xs ))
      [ "digest"; "coverage"; "tcd" ]
  in
  List.iter
    (fun (kind, count, p50, p99) ->
      Printf.printf "  query %-8s  %5d ok   p50 %8.1f us   p99 %8.1f us\n" kind
        count p50 p99)
    kinds;
  (* publish overhead: one epoch is an O(cells) dense snapshot *)
  let snapshot_us =
    let dense = Coverage.Dense.create () in
    List.iter
      (fun e ->
        match e.Event.payload with
        | Event.Tracked call -> Coverage.Dense.observe dense call e.Event.outcome
        | _ -> ())
      tenant_events.(0);
    let reps = 1000 in
    let (), dt =
      timed_wall (fun () ->
          for _ = 1 to reps do
            ignore (Coverage.Dense.snapshot dense)
          done)
    in
    1e6 *. dt /. float_of_int reps
  in
  let publishes, generation =
    List.fold_left
      (fun (p, g) i ->
        match Hub.stats hub ~tenant:(tenant_id i) with
        | Some st -> (p + st.Hub.st_publishes, g + st.Hub.st_generation)
        | None -> (p, g))
      (0, 0)
      (List.init tenants Fun.id)
  in
  Printf.printf "  publish: %.1f us/snapshot, %d epochs published for %d commits\n%!"
    snapshot_us publishes generation;
  let within_budget = slowdown <= 2.0 in
  if not within_budget then
    Printf.printf "  THROUGHPUT GATE: aggregate is %.2fx slower than single-stream (budget 2x)\n"
      slowdown;
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-serve/1\",\n  \"seed\": %d,\n  \
       \"tenants\": %d,\n  \"events_per_tenant\": %d,\n  \"total_events\": %d,\n  \
       \"single_stream\": { \"elapsed_s\": %.4f, \"events_per_s\": %.0f },\n  \
       \"mixed\": { \"elapsed_s\": %.4f, \"aggregate_events_per_s\": %.0f, \
       \"slowdown_vs_single\": %.3f, \"within_2x\": %b },\n  \
       \"publish\": { \"snapshot_us\": %.2f, \"publishes\": %d, \"commits\": %d },\n  \
       \"queries\": { \"errors\": %d, \"kinds\": {\n%s\n  } },\n  \
       \"digest_match\": %b,\n  \"per_tenant\": [\n%s\n  ]\n}\n"
      !seed tenants per_tenant total single_dt single_rate mixed_dt mixed_rate
      slowdown within_budget snapshot_us publishes generation !query_errs
      (String.concat ",\n"
         (List.map
            (fun (kind, count, p50, p99) ->
              Printf.sprintf
                "    \"%s\": { \"count\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f }"
                kind count p50 p99)
            kinds))
      all_match
      (String.concat ",\n"
         (List.map
            (fun (t, served, off, m) ->
              Printf.sprintf
                "    { \"tenant\": \"%s\", \"digest\": \"%s\", \
                 \"offline_digest\": \"%s\", \"match\": %b }"
                (json_escape t) (json_escape served) (json_escape off) m)
            per_tenant_rows))
  in
  write_json "BENCH_serve.json" body;
  if not (all_match && within_budget) then begin
    Printf.printf "serve gate: FAIL\n%!";
    exit 1
  end;
  Printf.printf "serve gate: PASS\n%!"

(* --- E17: crash-state enumeration --- *)

let crash_bench () =
  heading "E17" "Crash-state enumeration: throughput, dedup, coverage vs bound";
  let module Engine = Iocov_crash.Engine in
  let module Vc = Iocov_vfs.Config in
  let bounds = [ 0; 2; 4 ] in
  let modes = Vc.all_journal_modes in
  let workloads = Engine.scenarios @ Iocov_suites.Crashmonkey.crash_scenarios in
  let rows = ref [] in
  List.iter
    (fun mode ->
      List.iter
        (fun bound ->
          let config = Vc.with_journal_mode mode Vc.default in
          let (reports, outcomes), dt =
            timed_wall (fun () ->
                let outcomes = Hashtbl.create 8 in
                let reports =
                  List.map
                    (fun sc ->
                      let r = Engine.run_scenario ~window:bound ~config sc in
                      List.iter
                        (fun (o, n) ->
                          if n > 0 then Hashtbl.replace outcomes o ())
                        r.Engine.rp_tally;
                      r)
                    workloads
                in
                (reports, Hashtbl.length outcomes))
          in
          let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
          let raw = sum (fun r -> r.Engine.rp_raw_states) in
          let images = sum (fun r -> r.Engine.rp_states) in
          let classified = sum (fun r -> r.Engine.rp_classified) in
          let violations = sum (fun r -> List.length r.Engine.rp_violations) in
          rows :=
            (Vc.journal_mode_to_string mode, bound, raw, images,
             float_of_int raw /. float_of_int (max 1 images),
             float_of_int raw /. dt, classified, outcomes, violations, dt)
            :: !rows)
        bounds)
    modes;
  let rows = List.rev !rows in
  print_endline
    (Ascii.table ~title:"crash-state enumeration sweep"
       ~headers:
         [ "mode"; "bound"; "states"; "images"; "dedup"; "states/s"; "cells";
           "outcomes"; "violations" ]
       (List.map
          (fun (m, b, raw, img, dd, rate, cls, oc, viol, _) ->
            [ m; string_of_int b; string_of_int raw; string_of_int img;
              Printf.sprintf "%.2f" dd; Printf.sprintf "%.0f" rate;
              string_of_int cls; Printf.sprintf "%d/5" oc; string_of_int viol ])
          rows));
  (* the gate: no oracle violations without faults, and raising the bound
     never loses states or outcome cells *)
  let clean = List.for_all (fun (_, _, _, _, _, _, _, _, v, _) -> v = 0) rows in
  let monotone =
    List.for_all
      (fun mode ->
        let m = Vc.journal_mode_to_string mode in
        let seq =
          List.filter_map
            (fun (m', b, raw, _, _, _, _, oc, _, _) ->
              if m' = m then Some (b, raw, oc) else None)
            rows
        in
        let sorted = List.sort compare seq in
        let rec ok = function
          | (_, r1, o1) :: ((_, r2, o2) :: _ as rest) ->
            r1 <= r2 && o1 <= o2 && ok rest
          | _ -> true
        in
        ok sorted)
      modes
  in
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-crash/1\",\n  \"workloads\": %d,\n  \
       \"bounds\": [%s],\n  \"rows\": [\n%s\n  ],\n  \"clean\": %b,\n  \
       \"monotone\": %b\n}\n"
      (List.length workloads)
      (String.concat ", " (List.map string_of_int bounds))
      (String.concat ",\n"
         (List.map
            (fun (m, b, raw, img, dd, rate, cls, oc, viol, dt) ->
              Printf.sprintf
                "    { \"mode\": \"%s\", \"bound\": %d, \"states\": %d, \
                 \"images\": %d, \"dedup\": %.2f, \"states_per_s\": %.0f, \
                 \"classified_cells\": %d, \"outcome_cells\": %d, \
                 \"violations\": %d, \"elapsed_s\": %.4f }"
                m b raw img dd rate cls oc viol dt)
            rows))
      clean monotone
  in
  write_json "BENCH_crash.json" body;
  if not (clean && monotone) then begin
    Printf.printf "crash gate: FAIL (clean=%b monotone=%b)\n%!" clean monotone;
    exit 1
  end;
  Printf.printf "crash gate: PASS\n%!"

(* --- E18: the config lattice — matrix observe cost, lazy shards, and
   the off-default errno surface --- *)

let config_bench () =
  heading "E18"
    "Config lattice: matrix observe throughput, lazy shard memory, off-default errno \
     cells";
  let module Vc = Iocov_vfs.Config in
  let module Plan = Iocov_core.Plan in
  (* 1. observe throughput: one config's stream through a Matrix shard
     vs a plain Dense accumulator — the lift must not tax the hot path *)
  let n = 200_000 in
  let events = synth_events n in
  let rev_pairs = ref [] in
  Event.iter_tracked events (fun c o -> rev_pairs := (c, o) :: !rev_pairs);
  let pairs = Array.of_list (List.rev !rev_pairs) in
  let m = Array.length pairs in
  Printf.printf "lattice: %d points (digest %s); %s tracked observations per pass\n%!"
    Vc.lattice_count Vc.lattice_digest (Ascii.si_count m);
  let run_single () =
    let d = Coverage.Dense.create () in
    let (), dt =
      timed_wall (fun () ->
          Array.iter (fun (c, o) -> Coverage.Dense.observe d c o) pairs)
    in
    (d, dt)
  in
  let run_matrix () =
    let mx = Coverage.Matrix.create ~configs:Vc.lattice_count in
    let (), dt =
      timed_wall (fun () ->
          Array.iter
            (fun (c, o) -> Coverage.Matrix.observe mx ~config_id:0 c o)
            pairs)
    in
    (mx, dt)
  in
  ignore (run_single ());
  ignore (run_matrix ());
  let d, single_dt = run_single () in
  let mx, matrix_dt = run_matrix () in
  let single_rate = float_of_int m /. single_dt in
  let matrix_rate = float_of_int m /. matrix_dt in
  let ratio = matrix_rate /. single_rate in
  let identical =
    match Coverage.Matrix.to_reference mx with
    | [ (0, shard0) ] -> Snapshot.equal (Coverage.Dense.to_reference d) shard0
    | _ -> false
  in
  Printf.printf "  dense single-config: %.3fs (%s observes/s)\n" single_dt
    (Ascii.si_count (int_of_float single_rate));
  Printf.printf "  matrix shard 0:      %.3fs (%s observes/s), %.2fx of single\n"
    matrix_dt (Ascii.si_count (int_of_float matrix_rate)) ratio;
  Printf.printf "  shard-0 snapshot vs single-config: %s\n%!"
    (if identical then "identical" else "DIFFERS");
  (* 2. lazy shard memory: touch 3 of the 18 configs, the other 15 must
     cost zero words *)
  let sparse = Coverage.Matrix.create ~configs:Vc.lattice_count in
  let touched = [ 0; 5; 9 ] in
  List.iter
    (fun config_id ->
      Array.iteri
        (fun i (c, o) ->
          if i < 1000 then Coverage.Matrix.observe sparse ~config_id c o)
        pairs)
    touched;
  let st = Coverage.Matrix.stats sparse in
  let lazy_ok = st.Coverage.Matrix.m_allocated = List.length touched in
  Printf.printf
    "  lazy shards: %d/%d allocated after touching %d configs (%s counter words)\n%!"
    st.Coverage.Matrix.m_allocated st.Coverage.Matrix.m_configs
    (List.length touched)
    (Ascii.si_count st.Coverage.Matrix.m_words);
  (* 3. the off-default errno surface: sweep every suite across the full
     lattice and collect errno output cells dark under the default point
     but lit under some other — the config-dependent error surface a
     single-config campaign cannot reach *)
  let points = Array.to_list Vc.lattice in
  let sweep_scale = 0.3 in
  let per_suite =
    List.map
      (fun suite ->
        let rows, dt =
          timed_wall (fun () ->
              Runner.run_lattice ~seed:!seed ~scale:sweep_scale ~points suite)
        in
        let named =
          List.map
            (fun ((pt : Vc.point), (r : Runner.result)) ->
              (pt.Vc.pt_name, r.Runner.coverage))
            rows
        in
        let cells = Report.off_baseline_errno_cells named in
        Printf.printf "  %-12s %2d off-default errno cells (%d-point sweep, %.2fs)\n%!"
          (Runner.suite_name suite) (List.length cells) (List.length points) dt;
        (suite, cells, dt))
      [ Runner.Crashmonkey; Runner.Xfstests; Runner.Ltp ]
  in
  let union =
    List.sort_uniq compare (List.concat_map (fun (_, cells, _) -> cells) per_suite)
  in
  List.iter
    (fun id -> Printf.printf "    %s\n" (Report.cell_label Iocov_core.Plan.cells.(id)))
    union;
  let offdef = List.length union in
  Printf.printf "  union: %d distinct errno cells reachable only off-default\n%!" offdef;
  let throughput_ok = ratio >= 0.2 in
  let surface_ok = offdef >= 5 in
  let body =
    Printf.sprintf
      "{\n  \"schema\": \"iocov-bench-config/1\",\n  \"seed\": %d,\n  \
       \"lattice_points\": %d,\n  \"lattice_digest\": \"%s\",\n  \
       \"tracked_observations\": %d,\n  \"single_thread\": {\n    \
       \"dense\": { \"elapsed_s\": %.4f, \"observes_per_s\": %.0f },\n    \
       \"matrix_shard\": { \"elapsed_s\": %.4f, \"observes_per_s\": %.0f },\n    \
       \"matrix_vs_dense\": %.3f,\n    \"snapshot_identical\": %b\n  },\n  \
       \"lazy_shards\": { \"touched\": %d, \"allocated\": %d, \"configs\": %d, \
       \"counter_words\": %d },\n  \"sweep_scale\": %.2f,\n  \"suites\": [\n%s\n  ],\n  \
       \"off_default_errno_cells\": [%s],\n  \
       \"off_default_errno_count\": %d,\n  \"throughput_ok\": %b,\n  \
       \"lazy_ok\": %b,\n  \"surface_ok\": %b\n}\n"
      !seed Vc.lattice_count Vc.lattice_digest m single_dt single_rate matrix_dt
      matrix_rate ratio identical (List.length touched)
      st.Coverage.Matrix.m_allocated st.Coverage.Matrix.m_configs
      st.Coverage.Matrix.m_words sweep_scale
      (String.concat ",\n"
         (List.map
            (fun (suite, cells, dt) ->
              Printf.sprintf
                "    { \"suite\": \"%s\", \"off_default_cells\": %d, \
                 \"elapsed_s\": %.2f }"
                (Runner.suite_name suite) (List.length cells) dt)
            per_suite))
      (String.concat ", "
         (List.map
            (fun id ->
              Printf.sprintf "\"%s\"" (Report.cell_label Iocov_core.Plan.cells.(id)))
            union))
      offdef throughput_ok lazy_ok surface_ok
  in
  write_json "BENCH_config.json" body;
  if not (identical && throughput_ok && lazy_ok && surface_ok) then begin
    Printf.printf
      "config gate: FAIL (identical=%b throughput_ok=%b lazy_ok=%b surface_ok=%b)\n%!"
      identical throughput_ok lazy_ok surface_ok;
    exit 1
  end;
  Printf.printf "config gate: PASS\n%!"

let () =
  if wanted "bugstudy" then e1_bugstudy ();
  if wanted "fig2" then e2_figure2 ();
  if wanted "table1" then e3_table1 ();
  if wanted "fig3" then e4_figure3 ();
  if wanted "fig4" then e5_figure4 ();
  if wanted "fig5" then e6_figure5 ();
  if wanted "syscalls" then e7_syscalls ();
  if wanted "differential" then e8_differential ();
  if wanted "tcd-ablation" then tcd_ablation ();
  if wanted "partition-ablation" then partition_ablation ();
  if wanted "variant-ablation" then variant_ablation ();
  if wanted "remaining" then s1_remaining_figures ();
  if wanted "ltp" then s2_ltp ();
  if wanted "reduction" then s3_reduction ();
  if wanted "fuzzer" then e10_fuzzer ();
  if !perf && wanted "perf" then perf_benches ();
  if wanted "parallel" then e11_parallel ();
  if wanted "coverage" then e12_coverage ();
  if wanted "robustness" then e13_robustness ();
  if wanted "format" then format_bench ();
  if wanted "obs" then e14_obs ();
  if wanted "serve" then serve_bench ();
  if wanted "crash" then crash_bench ();
  if wanted "config" then config_bench ();
  if !metrics_json <> "" then begin
    let report =
      Iocov_obs.Export.registry_report
        ~spans:(Iocov_obs.Span.roots ())
        Iocov_obs.Metrics.default
    in
    Out_channel.with_open_text !metrics_json (fun oc -> output_string oc report);
    Printf.printf "observability registry written to %s\n" !metrics_json
  end;
  print_newline ()
