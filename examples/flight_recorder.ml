(* The flight recorder end to end (DESIGN.md §14): run one pipeline
   with all three observers on — a trace-event timeline, the live
   progress sink, and the persistent run ledger — then replay the same
   seed and let the ledger prove the two runs covered identical cells.

     dune exec examples/flight_recorder.exe -- 0.1   # scale

   Exits 1 if any recorded artifact is malformed or the identical-seed
   diff is non-empty, so this doubles as a smoke test (wired into dune
   runtest). *)

module Ltp = Iocov_suites.Ltp
module Coverage = Iocov_core.Coverage
module Source = Iocov_pipe.Source
module Stage = Iocov_pipe.Stage
module Sink = Iocov_pipe.Sink
module Driver = Iocov_pipe.Driver
module Progress = Iocov_pipe.Progress
module Ledger = Iocov_pipe.Ledger
module Trace_event = Iocov_obs.Trace_event
module Json = Iocov_util.Json

let failures = ref 0

let expect what ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" what
  end

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.1 in
  let ledger_dir = Filename.temp_file "iocov_flight" ".ledger" in
  Sys.remove ledger_dir;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove (Ledger.path ~dir:ledger_dir) with Sys_error _ -> ());
      try Sys.rmdir ledger_dir with Sys_error _ -> ())
  @@ fun () ->
  let progress_lines = ref [] in
  (* One recorded run: timeline on, snapshots every 500 events, and a
     ledger record appended from the merged product. *)
  let recorded_run () =
    let feed emit =
      ignore
        (Ltp.run ~seed:7 ~scale ~dispatch:emit
           ~coverage:(Coverage.create ~metered:false ())
           ())
    in
    let progress =
      { Progress.every = 500; format = Progress.Text;
        emit = (fun line -> progress_lines := line :: !progress_lines);
        budget = None }
    in
    Trace_event.start ();
    let result =
      Driver.run
        ~config:(Driver.config ~jobs:2 ~progress ())
        ~stages:[ Stage.mount Ltp.mount ]
        ~sinks:[ Sink.summary ]
        (Source.live ~label:"LTP" feed)
    in
    Trace_event.stop ();
    let timeline = Trace_event.to_json () in
    Trace_event.clear ();
    match result with
    | Error msg ->
      Printf.printf "FAIL pipeline: %s\n" msg;
      exit 1
    | Ok { Driver.product; _ } ->
      let r =
        Ledger.make ~seed:7 ~subcommand:"example" ~label:"LTP"
          ~flags:[ ("scale", string_of_float scale) ] ~jobs:2 ~counters:"dense"
          ~events:product.Sink.events ~kept:product.Sink.kept ~lost:0 ~wall_s:0.0
          ~stages:[] product.Sink.coverage
      in
      (match Ledger.append ~dir:ledger_dir r with
       | Ok r -> (r, timeline, product)
       | Error msg ->
         Printf.printf "FAIL ledger append: %s\n" msg;
         exit 1)
  in
  let r1, timeline, product = recorded_run () in
  let r2, _, _ = recorded_run () in
  Printf.printf "recorded %d events into timeline + progress + ledger\n\n"
    product.Sink.events;
  (* the timeline is well-formed Chrome trace-event JSON *)
  (match Json.of_string timeline with
   | Error msg -> expect (Printf.sprintf "timeline parses (%s)" msg) false
   | Ok j ->
     (match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
        Printf.printf "timeline: %d trace events\n" (List.length evs);
        expect "timeline non-empty" (evs <> [])
      | _ -> expect "timeline has traceEvents array" false));
  (* the progress sink spoke, and closed with a final line *)
  let lines = List.rev !progress_lines in
  Printf.printf "progress: %d snapshot lines\n" (List.length lines);
  List.iter (fun l -> Printf.printf "  %s\n" l) lines;
  expect "progress emitted" (lines <> []);
  expect "final snapshot marked done"
    (match List.rev lines with
     | last :: _ -> String.length last >= 5 && String.sub last 0 5 = "done:"
     | [] -> false);
  (* the ledger holds both runs, and the identical seed covers
     identical cells *)
  let { Ledger.records; bad_lines } = Ledger.load ~dir:ledger_dir in
  expect "ledger holds two runs" (List.length records = 2);
  expect "ledger file is clean" (bad_lines = 0);
  let d = Ledger.diff r1 r2 in
  Printf.printf "\n%s\n" (Ledger.render_diff ~a:r1 ~b:r2 d);
  expect "identical seed, identical coverage"
    (d.Ledger.d_identical && d.Ledger.d_gained = [] && d.Ledger.d_lost = []);
  if !failures > 0 then exit 1;
  print_endline "all flight-recorder properties hold"
