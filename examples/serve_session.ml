(* The coverage service end to end (DESIGN.md §16): start an in-process
   `iocov serve` daemon on a Unix-domain socket, stream two tenants'
   binary traces into it concurrently, interrogate their epoch
   snapshots over the wire while ingestion runs, and let the shutdown
   outcome prove each tenant's digest is byte-identical to an offline
   replay of the same trace.

     dune exec examples/serve_session.exe -- 5000   # events per tenant

   Exits 1 if any reply is malformed or a digest diverges, so this
   doubles as a smoke test (wired into dune runtest). *)

open Iocov_syscall
module Event = Iocov_trace.Event
module Filter = Iocov_trace.Filter
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Ledger = Iocov_pipe.Ledger
module Hub = Iocov_serve.Hub
module Server = Iocov_serve.Server
module Prng = Iocov_util.Prng

let failures = ref 0

let expect what ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" what
  end

(* a small deterministic workload: opens, reads, writes under the
   mount, plus out-of-mount noise the filter must reject *)
let synth_events ~seed n =
  let rng = Prng.create ~seed in
  let rdonly = Open_flags.of_flags Open_flags.[ O_RDONLY ] in
  let creat = Open_flags.of_flags Open_flags.[ O_WRONLY; O_CREAT ] in
  List.init n (fun seq ->
      let inside = Prng.chance rng 0.8 in
      let path =
        if inside then
          Printf.sprintf "/mnt/test/d%d/f%d" (Prng.int rng 6) (Prng.int rng 120)
        else Printf.sprintf "/var/log/noise%d" (Prng.int rng 40)
      in
      let fd = 3 + Prng.int rng 30 in
      let call, outcome =
        match Prng.int rng 5 with
        | 0 ->
          (Model.open_ ~flags:(if Prng.bool rng then rdonly else creat)
             ~mode:0o644 path, Model.Ret fd)
        | 1 -> (Model.read ~fd ~count:(Prng.pow2_size rng ~max_log2:16) (),
                Model.Ret 4096)
        | 2 | 3 ->
          (Model.write ~variant:Model.Sys_write ~fd
             ~count:(Prng.pow2_size rng ~max_log2:18) (), Model.Ret 100)
        | _ -> (Model.open_ ~flags:rdonly ~mode:0 path, Model.Err Errno.ENOENT)
      in
      { Event.seq; timestamp_ns = seq * 57; pid = 200; comm = "example";
        payload = Event.Tracked call; outcome; path_hint = Some path })

let write_trace path events =
  let oc = open_out_bin path in
  let w = Binary_io.writer ~version:3 oc in
  List.iter (Binary_io.sink w) events;
  Binary_io.flush w;
  close_out oc

let filter = Filter.mount_point "/mnt/test"

(* the offline oracle: per-event filter + observe, then the ledger's
   CRC-32 digest — exactly what `iocov analyze` fingerprints *)
let offline_digest events =
  let cov = Coverage.create ~metered:false () in
  List.iter
    (fun e ->
      if Filter.keeps filter e then
        match e.Event.payload with
        | Event.Tracked call -> Coverage.observe cov call e.Event.outcome
        | Event.Aux _ -> ())
    events;
  Ledger.digest cov

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 5_000 in
  let dir = Filename.temp_file "iocov_serve_example" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let tenants = [ ("alice", 11); ("bob", 12) ] in
  let traces =
    List.map
      (fun (tenant, seed) ->
        let events = synth_events ~seed n in
        let path = Filename.concat dir (tenant ^ ".trace") in
        write_trace path events;
        (tenant, path, events))
      tenants
  in
  let sock = Filename.concat dir "iocov.sock" in
  let ready = Atomic.make false in
  let result = ref (Error "server never ran") in
  let daemon =
    Thread.create
      (fun () ->
        result :=
          Server.run
            ~on_ready:(fun () -> Atomic.set ready true)
            { Server.default_config with
              socket = Some sock; mount = Some "/mnt/test" })
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  Printf.printf "daemon listening on %s\n" sock;
  (* two tenants streaming concurrently, like two tracer hosts *)
  let clients =
    List.map
      (fun (tenant, path, _) ->
        Thread.create
          (fun () ->
            match Server.client_ingest ~socket:sock ~tenant path with
            | Ok summary -> Printf.printf "ingest %-5s: %s\n" tenant summary
            | Error msg -> expect (Printf.sprintf "ingest %s (%s)" tenant msg) false)
          ())
      traces
  in
  List.iter Thread.join clients;
  (* interrogate each tenant's epoch over the wire *)
  List.iter
    (fun (tenant, _, events) ->
      match
        Server.client_query ~socket:sock ~tenant [ "digest"; "stats"; "tcd" ]
      with
      | Error msg -> expect (Printf.sprintf "query %s (%s)" tenant msg) false
      | Ok [ digest; stats; tcd ] ->
        Printf.printf "\n[%s] digest %s\n%s" tenant (String.trim digest) stats;
        expect
          (Printf.sprintf "%s digest matches offline replay" tenant)
          (String.trim digest = offline_digest events);
        expect (tenant ^ " tcd report non-empty") (String.length tcd > 0)
      | Ok _ -> expect (tenant ^ " reply count") false)
    traces;
  (match Server.client_query ~socket:sock [ "tenants"; "shutdown" ] with
  | Ok [ roster; _ ] -> Printf.printf "\ntenants:\n%s" roster
  | Ok _ -> expect "roster reply count" false
  | Error msg -> expect (Printf.sprintf "shutdown (%s)" msg) false);
  Thread.join daemon;
  (match !result with
  | Error msg -> expect (Printf.sprintf "daemon outcome (%s)" msg) false
  | Ok outcome ->
    List.iter
      (fun o ->
        let offline =
          match List.find_opt (fun (t, _, _) -> t = o.Server.o_tenant) traces with
          | Some (_, _, events) -> offline_digest events
          | None -> "<unknown tenant>"
        in
        expect
          (Printf.sprintf "outcome %s digest byte-identical" o.Server.o_tenant)
          (Ledger.digest o.Server.o_coverage = offline))
      outcome.Server.o_tenants;
    expect "both tenants in the outcome" (List.length outcome.Server.o_tenants = 2));
  if !failures > 0 then exit 1;
  print_endline "\nall serve-session properties hold"
