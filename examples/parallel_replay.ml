(* Replay one suite's event stream through the sharded parallel
   pipeline and prove the determinism contract: coverage at any job
   count is byte-identical to the sequential run.

     dune exec examples/parallel_replay.exe -- 2 0.2   # jobs, scale

   Exits 1 on a coverage mismatch, so this doubles as a smoke test
   (wired into dune runtest at jobs=2). *)

module Runner = Iocov_suites.Runner
module Snapshot = Iocov_core.Snapshot
module Ascii = Iocov_util.Ascii

let () =
  let jobs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2 in
  let scale = if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.2 in
  let seed = 42 in
  let sequential = Runner.run ~seed ~scale Runner.Ltp in
  Printf.printf "sequential: %s events (%s kept) in %.2fs\n"
    (Ascii.si_count sequential.Runner.events_total)
    (Ascii.si_count sequential.Runner.events_kept)
    sequential.Runner.elapsed_s;
  let parallel = Runner.run ~seed ~scale ~jobs Runner.Ltp in
  Printf.printf "jobs=%d:     %s events (%s kept) in %.2fs\n" jobs
    (Ascii.si_count parallel.Runner.events_total)
    (Ascii.si_count parallel.Runner.events_kept)
    parallel.Runner.elapsed_s;
  let identical =
    Snapshot.equal sequential.Runner.coverage parallel.Runner.coverage
    && sequential.Runner.events_kept = parallel.Runner.events_kept
  in
  Printf.printf "coverage %s\n" (if identical then "identical" else "DIFFERS");
  exit (if identical then 0 else 1)
