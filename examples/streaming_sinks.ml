(* Multi-sink single-pass analysis (DESIGN.md §13): describe a run as
   one declarative pipeline — a live suite source, a mount-filter
   stage, and several sinks — and get coverage, a TCD sweep, the
   completeness ledger, and a saved snapshot out of ONE traversal of
   the event stream, instead of one run per consumer.

     dune exec examples/streaming_sinks.exe -- 0.1   # scale

   Exits 1 if the pipeline fails or the sinks disagree with the
   product, so this doubles as a smoke test (wired into dune runtest). *)

module Ltp = Iocov_suites.Ltp
module Coverage = Iocov_core.Coverage
module Report = Iocov_core.Report
module Snapshot = Iocov_core.Snapshot
module Source = Iocov_pipe.Source
module Stage = Iocov_pipe.Stage
module Sink = Iocov_pipe.Sink
module Driver = Iocov_pipe.Driver

let failures = ref 0

let expect what ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" what
  end

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.1 in
  let snap_path = Filename.temp_file "iocov_streaming" ".snap" in
  Fun.protect ~finally:(fun () -> Sys.remove snap_path) @@ fun () ->
  (* The suite is just a source: its tracer dispatch is the live feed.
     The suite's own observe path is bypassed with a throwaway
     accumulator — the pipeline accumulates. *)
  let feed emit =
    ignore
      (Ltp.run ~seed:7 ~scale ~dispatch:emit
         ~coverage:(Coverage.create ~metered:false ())
         ())
  in
  let pipeline =
    Driver.run
      ~config:(Driver.config ~jobs:2 ())
      ~stages:[ Stage.mount Ltp.mount; Stage.meter "ltp" ]
      ~sinks:
        [ Sink.summary; Sink.completeness;
          Sink.tcd ~targets:[ 1.0; 100.0; 10_000.0 ] ();
          Sink.snapshot ~path:snap_path; Sink.gauges ]
      (Source.live ~label:"LTP" feed)
  in
  match pipeline with
  | Error msg ->
    Printf.printf "FAIL pipeline: %s\n" msg;
    exit 1
  | Ok { Driver.product; sections } ->
    Printf.printf
      "one pass over %d events (%d kept, %d shards) fed %d sinks:\n\n"
      product.Sink.events product.Sink.kept product.Sink.shards
      (List.length sections + 1 (* gauges renders no section *));
    List.iter
      (fun (name, text) -> Printf.printf "--- %s ---\n%s\n" name text)
      sections;
    (* every section is a view of the same single-pass product *)
    expect "summary section matches product"
      (List.assoc "summary" sections
       = Report.suite_summary ~name:"LTP" product.Sink.coverage);
    expect "snapshot file round-trips"
      (match Snapshot.load_file snap_path with
       | Ok cov -> Snapshot.to_string cov = Snapshot.to_string product.Sink.coverage
       | Error _ -> false);
    expect "clean run" (Iocov_util.Anomaly.is_clean product.Sink.completeness);
    if !failures > 0 then exit 1;
    print_endline "all streaming-sink properties hold"
