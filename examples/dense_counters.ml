(* Run one suite with each coverage counter backend and prove the
   dense/reference equivalence end to end: same snapshot bytes, same
   report text, from the compiled-plan integer counters and from the
   reference hashed histograms.

     dune exec examples/dense_counters.exe -- 0.1 2   # scale, jobs

   Exits 1 on any divergence, so this doubles as a smoke test (wired
   into dune runtest at a small scale). *)

module Runner = Iocov_suites.Runner
module Replay = Iocov_par.Replay
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Ascii = Iocov_util.Ascii

let () =
  let scale = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.1 in
  let jobs = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2 in
  let seed = 42 in
  let run counters =
    Runner.run ~seed ~scale ~jobs ~counters Runner.Xfstests
  in
  let dense = run Replay.Dense in
  Printf.printf "dense:     %s events (%s kept) in %.2fs\n"
    (Ascii.si_count dense.Runner.events_total)
    (Ascii.si_count dense.Runner.events_kept)
    dense.Runner.elapsed_s;
  let reference = run Replay.Reference in
  Printf.printf "reference: %s events (%s kept) in %.2fs\n"
    (Ascii.si_count reference.Runner.events_total)
    (Ascii.si_count reference.Runner.events_kept)
    reference.Runner.elapsed_s;
  let same_snapshot = Snapshot.equal dense.Runner.coverage reference.Runner.coverage in
  let same_report =
    Report.suite_summary ~name:"xfstests" dense.Runner.coverage
    = Report.suite_summary ~name:"xfstests" reference.Runner.coverage
  in
  Printf.printf "snapshot %s, report %s\n"
    (if same_snapshot then "identical" else "DIFFERS")
    (if same_report then "identical" else "DIFFERS");
  exit (if same_snapshot && same_report then 0 else 1)
