(* Crash-state enumeration and journal replay, end to end (DESIGN.md §17).

   Runs every built-in crash scenario under all three journal modes,
   prints the per-mode outcome tallies, and exits non-zero if any
   fsync-durability violation appears (none should, without faults) or
   if the bounded enumerator disagrees with brute force on the smallest
   scenario's log.

     dune exec examples/crash_replay.exe [window]           *)

module Engine = Iocov_crash.Engine
module Config = Iocov_vfs.Config
module Partition = Iocov_core.Partition

let () =
  let window = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2 in
  let failures = ref 0 in
  List.iter
    (fun mode ->
      Printf.printf "== journal mode: %s ==\n" (Config.journal_mode_to_string mode);
      List.iter
        (fun scenario ->
          let config = Config.with_journal_mode mode Config.default in
          let report = Engine.run_scenario ~window ~config scenario in
          Printf.printf "  %-18s %3d records  %4d states (%d images)  " report.Engine.rp_name
            report.Engine.rp_records report.Engine.rp_raw_states report.Engine.rp_states;
          List.iter
            (fun (outcome, n) ->
              if n > 0 then
                Printf.printf "%s=%d " (Partition.crash_outcome_label outcome) n)
            report.Engine.rp_tally;
          print_newline ();
          if report.Engine.rp_violations <> [] then begin
            incr failures;
            List.iter (Printf.printf "  VIOLATION: %s\n") report.Engine.rp_violations
          end)
        Engine.scenarios)
    Config.all_journal_modes;
  (* bounded enumeration must equal brute force when the window spans
     the whole log (small log: the first scenario's tail) *)
  List.iter
    (fun mode ->
      let config = Config.with_journal_mode mode Config.default in
      let run = Engine.execute ~config (List.hd Engine.scenarios) in
      let records = run.Engine.run_records in
      (* brute force is exponential: restrict to a small suffix window *)
      let b0 = max run.Engine.run_b0 (Array.length records - 6) in
      let sets states =
        List.sort_uniq compare (List.map Engine.state_positions states)
      in
      let bounded =
        Engine.enumerate_states ~mode ~records ~b0 ~window:(Array.length records)
          ~torn:false ~fsync_skips_data:false ~block_size:4096 ()
      in
      let brute =
        Engine.brute_force_states ~mode ~records ~b0 ~window:(Array.length records)
          ~fsync_skips_data:false ()
      in
      if sets bounded <> sets brute then begin
        incr failures;
        Printf.printf "MISMATCH (%s): bounded %d sets vs brute-force %d sets\n"
          (Config.journal_mode_to_string mode)
          (List.length (sets bounded))
          (List.length (sets brute))
      end)
    Config.all_journal_modes;
  if !failures > 0 then begin
    Printf.printf "crash_replay: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "crash_replay: ok"
