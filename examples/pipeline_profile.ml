(* Profile the two simulated testers through the observability layer:
   run CrashMonkey and xfstests with the same seed, print each run's
   span tree, then line the stage timings up side by side.

     dune exec examples/pipeline_profile.exe -- 0.2   # scale factor *)

module Runner = Iocov_suites.Runner
module Span = Iocov_obs.Span
module Ascii = Iocov_util.Ascii

let profile suite ~scale =
  Span.reset ();
  let r = Runner.run ~seed:42 ~scale suite in
  match Span.roots () with
  | [ root ] -> (r, root)
  | roots -> (r, { Span.name = "?"; duration_s = 0.0; children = roots })

(* Stage rows relative to the suite root, so the two trees share keys:
   the root itself becomes "total". *)
let stages root =
  List.map
    (fun (path, (node : Span.node)) ->
      let name =
        match path with [] | [ _ ] -> "total" | _ :: rest -> String.concat "/" rest
      in
      (name, node.Span.duration_s))
    (Span.flatten root)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.2
  in
  let cm, cm_root = profile Runner.Crashmonkey ~scale in
  let xf, xf_root = profile Runner.Xfstests ~scale in
  Printf.printf "CrashMonkey: %d workloads in %.2fs\n%s\n" cm.Runner.workloads
    cm.Runner.elapsed_s (Span.render cm_root);
  Printf.printf "xfstests: %d workloads in %.2fs\n%s\n" xf.Runner.workloads
    xf.Runner.elapsed_s (Span.render xf_root);
  let cm_stages = stages cm_root and xf_stages = stages xf_root in
  let names =
    List.fold_left
      (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ])
      (List.map fst cm_stages) xf_stages
  in
  let cell stages name =
    match List.assoc_opt name stages with
    | Some d -> Printf.sprintf "%.3fs" d
    | None -> "-"
  in
  let rows =
    List.map (fun name -> [ name; cell cm_stages name; cell xf_stages name ]) names
  in
  print_endline
    (Ascii.table ~title:"stage durations, side by side"
       ~headers:[ "stage"; "CrashMonkey"; "xfstests" ]
       rows)
