(* End-to-end fault-tolerance demo (DESIGN.md §12): trace a suite to a
   v2 binary file, damage it, and show the three recovery layers —
   lenient skip-and-resync ingestion with an error budget, exact loss
   accounting, and checkpointed replay whose resumed coverage is
   byte-identical to an uninterrupted run.

     dune exec examples/corrupt_recovery.exe -- 0.05   # scale

   Exits 1 if any recovery property fails, so this doubles as a smoke
   test (wired into dune runtest). *)

module Anomaly = Iocov_util.Anomaly
module Filter = Iocov_trace.Filter
module Binary_io = Iocov_trace.Binary_io
module Coverage = Iocov_core.Coverage
module Snapshot = Iocov_core.Snapshot
module Report = Iocov_core.Report
module Ltp = Iocov_suites.Ltp
module Pool = Iocov_par.Pool
module Checkpoint = Iocov_par.Checkpoint
module Replay = Iocov_par.Replay

let failures = ref 0

let expect what ok =
  Printf.printf "  %s %s\n" (if ok then "ok:  " else "FAIL:") what;
  if not ok then incr failures

let with_temp suffix f =
  let path = Filename.temp_file "iocov_recover" suffix in
  Fun.protect (fun () -> f path) ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())

let flip path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  n

let () =
  let scale = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.05 in
  let filter = Filter.mount_point Ltp.mount in
  with_temp ".trace" @@ fun trace ->
  (* 1. trace the LTP suite straight into a v2 binary file; small
     chapters keep the blast radius of the damage we are about to do
     tightly bounded *)
  let oc = open_out_bin trace in
  (* v2 pinned: this demo is about the per-record-CRC blast radius.
     The v3 default amortizes the CRC over multi-record frames, so one
     flip voids a whole frame — far over this demo's 1% budget on a
     trace this small. *)
  let w = Binary_io.writer ~version:2 ~chapter:64 oc in
  let coverage = Coverage.create () in
  let _failures, _stats = Ltp.run ~seed:7 ~scale ~sink:(Binary_io.sink w) ~coverage () in
  Binary_io.flush w;
  close_out oc;

  (* 2. the clean reference: a strict parallel run.  Its event count is
     the authoritative size of the trace. *)
  let reference =
    match Replay.analyze_file ~pool:(Pool.create ~jobs:2 ()) ~filter trace with
    | Ok o -> o
    | Error msg ->
      Printf.eprintf "clean strict run failed: %s\n" msg;
      exit 1
  in
  let total = reference.Replay.events in
  Printf.printf "traced %d events to %s\n" total trace;
  expect "strict run is complete" (Anomaly.is_clean reference.Replay.completeness);

  (* 3. checkpointed replay: stop halfway, resume at a different job
     count, demand a byte-identical result *)
  print_endline "interrupt and resume:";
  with_temp ".ckpt" (fun ckpt ->
      let half = total / 2 in
      (match
         Replay.analyze_file ~pool:(Pool.create ~jobs:1 ())
           ~checkpoint:{ Replay.ckpt_path = ckpt; ckpt_every = max 1 (half / 4) }
           ~limit:half ~filter trace
       with
      | Ok o -> expect "interrupted run stopped at the limit" (o.Replay.events = half)
      | Error msg ->
        Printf.eprintf "interrupted run failed: %s\n" msg;
        exit 1);
      match Checkpoint.load ckpt with
      | Error msg ->
        Printf.eprintf "checkpoint load failed: %s\n" msg;
        exit 1
      | Ok ck -> (
        match
          Replay.analyze_file ~pool:(Pool.create ~jobs:4 ()) ~resume:(ckpt, ck) ~filter
            trace
        with
        | Ok o ->
          expect "resumed run saw every event" (o.Replay.events = total);
          expect "resumed coverage byte-identical"
            (Snapshot.to_string o.Replay.coverage
            = Snapshot.to_string reference.Replay.coverage)
        | Error msg ->
          Printf.eprintf "resumed run failed: %s\n" msg;
          exit 1));

  (* 4. damage the trace and recover under a 1% error budget *)
  print_endline "bit-flip recovery:";
  let size = flip trace (7 + (total / 3 * 5)) in
  ignore (flip trace (size / 2));
  (match
     Replay.analyze_file ~pool:(Pool.create ~jobs:2 ())
       ~ingest:(Replay.Lenient (Anomaly.Max_fraction 0.01))
       ~filter trace
   with
  | Ok o ->
    let c = o.Replay.completeness in
    expect "lenient run completed" true;
    expect "some damage was skipped" (c.Anomaly.records_skipped > 0);
    expect "every record read or accounted"
      (c.Anomaly.truncated
      || c.Anomaly.events_read + c.Anomaly.records_skipped = total);
    print_endline (Report.completeness ~name:"ltp" c)
  | Error msg ->
    Printf.eprintf "lenient run failed: %s\n" msg;
    exit 1);

  (* 5. strict mode must refuse the damaged trace *)
  (match Replay.analyze_file ~pool:(Pool.create ~jobs:2 ()) ~filter trace with
  | Ok _ -> expect "strict run rejects the damaged trace" false
  | Error msg -> expect (Printf.sprintf "strict run rejects it (%s)" msg) true);

  if !failures > 0 then begin
    Printf.printf "%d recovery properties FAILED\n" !failures;
    exit 1
  end;
  print_endline "all recovery properties hold"
